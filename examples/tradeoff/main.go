// Tradeoff explorer: for each immediate-forwarding probability p, find the
// smallest stay-awake probability q that crosses the 99% reliability
// boundary (via the grid's bond-percolation threshold), then print the
// energy-latency operating point PBBF offers there — the paper's Figure 12
// as an interactive table, plus the analytical equations behind it.
package main

import (
	"fmt"
	"os"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/percolation"
	"pbbf/internal/rng"
	"pbbf/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tradeoff:", err)
		os.Exit(1)
	}
}

func run() error {
	grid, err := topo.NewGrid(30, 30)
	if err != nil {
		return err
	}
	pc, err := percolation.CriticalBondRatio(grid, grid.Center(), 0.99, 200, rng.New(1))
	if err != nil {
		return err
	}
	fmt.Printf("99%%-reliability critical bond ratio on 30x30 grid: %.3f ± %.3f\n\n",
		pc.Mean, pc.CI95)

	timing := core.Timing{Active: time.Second, Frame: 10 * time.Second}
	lats := core.Latencies{L1: 1500 * time.Millisecond, L2: timing.Frame}

	fmt.Println("    p    min q   pedge   per-hop latency   relative energy")
	for _, p := range []float64{0.05, 0.15, 0.25, 0.375, 0.5, 0.625, 0.75, 0.9} {
		q := core.MinQForEdgeProbability(p, pc.Mean)
		params := core.Params{P: p, Q: q}
		perHop := core.ExpectedPerHopLatency(params, lats)
		fmt.Printf("%5.2f  %6.3f  %6.3f  %13.2f s  %15.2fx\n",
			p, q,
			core.EdgeProbability(p, q),
			perHop.Seconds(),
			core.EnergyIncreaseFactor(timing, q))
	}

	fmt.Println()
	fmt.Println("Reading the table: moving down trades energy (q rises to keep")
	fmt.Println("reliability) for latency (more hops are forwarded immediately).")
	return nil
}
