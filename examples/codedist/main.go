// Code distribution over a random sensor field (the paper's Section 5
// workload): 50 motes, density Δ=10, a randomly placed source pushing
// firmware updates at λ=0.01/s for 500 simulated seconds, with the full
// PSM+PBBF MAC, CSMA, and collisions.
package main

import (
	"fmt"
	"os"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/mac"
	"pbbf/internal/netsim"
	"pbbf/internal/rng"
	"pbbf/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "codedist:", err)
		os.Exit(1)
	}
}

func run() error {
	r := rng.New(7)
	diskCfg := topo.DiskConfig{N: 50, Range: 30, Area: topo.AreaForDensity(50, 30, 10)}
	field, err := topo.NewConnectedRandomDisk(diskCfg, r, 500)
	if err != nil {
		return err
	}
	fmt.Printf("field: %d motes, density Δ=%.1f (mean degree %.1f)\n\n",
		field.N(), diskCfg.Density(), field.AverageDegree())

	fmt.Println("protocol    received  mean latency  2-hop latency  energy/update")
	for _, params := range []core.Params{
		core.PSM(),
		{P: 0.25, Q: 0.5},
		{P: 0.5, Q: 0.75},
		core.AlwaysOn(),
	} {
		res, err := netsim.Run(netsim.Config{
			Topo:      field,
			Source:    topo.NodeID(0),
			MAC:       mac.DefaultConfig(params),
			Lambda:    0.01,
			Duration:  500 * time.Second,
			K:         1,
			TrackHops: []int{2},
			Seed:      7,
		})
		if err != nil {
			return err
		}
		twoHop := 0.0
		if acc := res.LatencyAtHop[2]; acc != nil && acc.N() > 0 {
			twoHop = acc.Mean()
		}
		fmt.Printf("%-10s  %7.1f%%  %9.2f s  %10.2f s  %11.2f J\n",
			params.Label(),
			res.UpdatesReceivedFraction*100,
			res.Latency.Mean(),
			twoHop,
			res.EnergyPerUpdateJ)
	}
	return nil
}
