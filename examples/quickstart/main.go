// Quickstart: broadcast one update across a small duty-cycled grid with
// PBBF and print the reliability, latency, and energy the protocol
// achieved, next to the PSM and always-on baselines.
package main

import (
	"fmt"
	"os"

	"pbbf/internal/core"
	"pbbf/internal/idealsim"
	"pbbf/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	grid, err := topo.NewGrid(25, 25)
	if err != nil {
		return err
	}

	configs := []core.Params{
		core.PSM(),       // plain 802.11 power-save mode
		{P: 0.5, Q: 0.6}, // PBBF just past the reliability boundary
		core.AlwaysOn(),  // no power saving at all
	}

	fmt.Println("protocol    coverage  per-hop latency  energy/update")
	for _, params := range configs {
		cfg := idealsim.Defaults(grid, grid.Center())
		cfg.Params = params
		cfg.Updates = 10
		cfg.Seed = 42
		res, err := idealsim.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s  %7.1f%%  %13.2f s  %11.2f J\n",
			params.Label(),
			res.MeanCoverage()*100,
			res.PerHopLatency.Mean(),
			res.EnergyPerUpdateJ)
	}

	fmt.Println()
	fmt.Println("PBBF trades a little energy (q keeps some nodes awake) for a")
	fmt.Println("large latency win over PSM while keeping coverage near 100%.")
	return nil
}
