// Adaptive PBBF: the paper's future-work extension (Section 6). Nodes
// start at a conservative operating point and adjust their own p and q —
// p rises when they overhear lots of traffic (neighbors are awake, so
// immediate broadcasts will land), q rises when sequence-number gaps show
// broadcasts are being missed. This example degrades the channel and
// compares a static setting against the adaptive controller.
package main

import (
	"fmt"
	"os"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/mac"
	"pbbf/internal/netsim"
	"pbbf/internal/rng"
	"pbbf/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive:", err)
		os.Exit(1)
	}
}

func run() error {
	r := rng.New(21)
	diskCfg := topo.DiskConfig{N: 40, Range: 30, Area: topo.AreaForDensity(40, 30, 10)}
	field, err := topo.NewConnectedRandomDisk(diskCfg, r, 500)
	if err != nil {
		return err
	}

	start := core.Params{P: 0.25, Q: 0.25}
	adaptiveCfg := core.DefaultAdaptiveConfig()
	adaptiveCfg.Initial = start

	fmt.Println("channel loss   static received   adaptive received")
	for _, loss := range []float64{0, 0.1, 0.2, 0.3} {
		static, err := runOnce(field, start, nil, loss)
		if err != nil {
			return err
		}
		adaptive, err := runOnce(field, start, &adaptiveCfg, loss)
		if err != nil {
			return err
		}
		fmt.Printf("%11.0f%%   %14.1f%%   %16.1f%%\n",
			loss*100, static*100, adaptive*100)
	}
	fmt.Println()
	fmt.Println("As loss grows, adaptive nodes detect sequence gaps and raise q,")
	fmt.Println("buying back reliability that the static setting loses.")
	return nil
}

func runOnce(field topo.Topology, params core.Params, adaptive *core.AdaptiveConfig, loss float64) (float64, error) {
	macCfg := mac.DefaultConfig(params)
	macCfg.Adaptive = adaptive
	res, err := netsim.Run(netsim.Config{
		Topo:     field,
		Source:   0,
		MAC:      macCfg,
		Lambda:   0.01,
		Duration: 600 * time.Second,
		K:        1,
		LossRate: loss,
		Seed:     21,
	})
	if err != nil {
		return 0, err
	}
	return res.UpdatesReceivedFraction, nil
}
