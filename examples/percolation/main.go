// Percolation explorer: reproduce the reliability analysis of Section 4.1
// — sweep the edge probability pedge = 1 − p(1 − q) across the critical
// point of a square grid and watch broadcast coverage jump from "almost
// nobody" to "almost everybody" (the bimodal behaviour gossip protocols
// inherit from percolation theory).
package main

import (
	"fmt"
	"os"
	"strings"

	"pbbf/internal/percolation"
	"pbbf/internal/rng"
	"pbbf/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "percolation:", err)
		os.Exit(1)
	}
}

func run() error {
	grid, err := topo.NewGrid(40, 40)
	if err != nil {
		return err
	}
	r := rng.New(99)

	fmt.Println("bond percolation on a 40x40 grid (source at center)")
	fmt.Println()
	fmt.Println("pedge   coverage   ")
	for pe := 0.30; pe <= 0.85+1e-9; pe += 0.05 {
		res, err := percolation.ReachedFraction(grid, grid.Center(), pe, 60, r)
		if err != nil {
			return err
		}
		bar := strings.Repeat("#", int(res.Mean*40+0.5))
		fmt.Printf("%5.2f   %7.1f%%  %s\n", pe, res.Mean*100, bar)
	}

	fmt.Println()
	for _, rel := range []float64{0.8, 0.9, 0.99, 1.0} {
		res, err := percolation.CriticalBondRatio(grid, grid.Center(), rel, 100, r)
		if err != nil {
			return err
		}
		fmt.Printf("critical bond ratio for %5.1f%% coverage: %.3f ± %.3f\n",
			rel*100, res.Mean, res.CI95)
	}
	fmt.Println()
	fmt.Println("The jump around pedge ≈ 0.5 is the square-lattice bond threshold;")
	fmt.Println("PBBF picks (p, q) so that 1 − p(1 − q) lands above it.")
	return nil
}
