//go:build race

// Package raceflag reports whether the race detector instrumented this
// build. Allocation-count assertions consult it: race instrumentation
// allocates shadow state on paths that are allocation-free in normal builds,
// so zero-alloc tests skip themselves under -race rather than fail on
// instrumentation noise.
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = true
