package store

import (
	"errors"
	"sync/atomic"

	"pbbf/internal/scenario"
)

// tiered chains stores front to back: Get walks the tiers in order and
// promotes a deep hit into every tier in front of it, Put writes through
// to all tiers. The canonical composition is Tiered(mem, disk) — an LRU
// working set in front of the durable record tree — but any depth works.
type tiered struct {
	tiers []Store

	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64
}

// Tiered composes stores front (fastest, checked first) to back (most
// durable, written through). Passing a single store returns it unchanged.
func Tiered(tiers ...Store) Store {
	if len(tiers) == 1 {
		return tiers[0]
	}
	return &tiered{tiers: tiers}
}

// Get returns the first tier's hit, falling through to deeper tiers on
// misses. A deep hit is promoted into the tiers in front of it, so a
// restarted server's first touch of a key pays one disk read and every
// later touch is a memory hit. Backend errors on a tier are returned only
// if no deeper tier can answer.
func (t *tiered) Get(key string) (res scenario.Result, ok bool, err error) {
	var firstErr error
	for i, tier := range t.tiers {
		res, ok, err := tier.Get(key)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if !ok {
			continue
		}
		for j := 0; j < i; j++ {
			if perr := t.tiers[j].Put(key, res); perr != nil && firstErr == nil {
				firstErr = perr // promotion failure is non-fatal: the hit stands
			}
		}
		t.hits.Add(1)
		return res, true, nil
	}
	t.misses.Add(1)
	return res, false, firstErr
}

// Put writes through to every tier. The first error is returned, but all
// tiers are attempted: a full disk must not stop the memory tier from
// serving, and vice versa.
func (t *tiered) Put(key string, res scenario.Result) error {
	var firstErr error
	for _, tier := range t.tiers {
		if err := tier.Put(key, res); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	t.puts.Add(1)
	return firstErr
}

// Len reports the deepest tier's count — the full result set; tiers in
// front hold working-set subsets of it.
func (t *tiered) Len() int { return t.tiers[len(t.tiers)-1].Len() }

// Stats reports the composite counters with each tier's snapshot attached.
func (t *tiered) Stats() Stats {
	s := Stats{
		Kind:    "tiered",
		Hits:    t.hits.Load(),
		Misses:  t.misses.Load(),
		Puts:    t.puts.Load(),
		Entries: t.Len(),
		Tiers:   make([]Stats, 0, len(t.tiers)),
	}
	for _, tier := range t.tiers {
		s.Tiers = append(s.Tiers, tier.Stats())
	}
	return s
}

// Close closes every tier, joining their errors.
func (t *tiered) Close() error {
	var errs []error
	for _, tier := range t.tiers {
		errs = append(errs, tier.Close())
	}
	return errors.Join(errs...)
}
