// Package store is the result-storage layer behind the serving API: a
// common contract for keeping computed point results addressable by their
// canonical scenario.PointKey, with interchangeable backends. The memory
// backend adapts the sharded LRU of internal/cache; the disk backend keeps
// one self-verifying record per key with atomic write-then-rename
// persistence and corrupt-record quarantine, so a restarted server serves
// byte-identical results without recomputing anything; Tiered composes
// them (memory in front of disk) and Flight adds singleflight compute
// de-duplication on top of any Store. internal/server depends only on the
// Store interface, so future shared backends (a store directory on shared
// storage, a remote result service) slot in without touching handlers.
package store

import (
	"pbbf/internal/scenario"
)

// Store is the storage contract for computed point results. Keys are
// canonical scenario.PointKey strings; because points are pure, a key
// fully determines its value, so implementations never need invalidation —
// only capacity management (memory) or durability bookkeeping (disk).
// Implementations must be safe for concurrent use.
type Store interface {
	// Get returns the result stored under key. The boolean reports whether
	// the key was present; err reports a backend failure (an I/O error, not
	// a miss — a corrupt record is quarantined and surfaces as a miss).
	Get(key string) (scenario.Result, bool, error)
	// Put stores a result under key. Storing the same key twice is
	// idempotent by construction: both writes carry the same pure value.
	Put(key string, res scenario.Result) error
	// Len returns the number of stored results.
	Len() int
	// Stats returns a point-in-time counter snapshot.
	Stats() Stats
	// Close releases the backend (flushes nothing: every Put is already
	// durable to the backend's guarantee when it returns).
	Close() error
}

// Stats is one backend's counter snapshot. Composite backends (Tiered)
// aggregate the top-level counters and carry each tier's own snapshot in
// Tiers, so /v1/stats and /metrics can report both the overall behavior
// and the per-tier breakdown.
type Stats struct {
	// Kind names the backend: "memory", "disk", or "tiered".
	Kind string `json:"kind"`
	// Hits and Misses count Get outcomes.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Puts counts stored results.
	Puts uint64 `json:"puts"`
	// Entries is the current stored-result count.
	Entries int `json:"entries"`
	// Evictions counts entries dropped by a capacity bound (memory tier).
	Evictions uint64 `json:"evictions,omitempty"`
	// Capacity and Shards describe the memory tier's LRU configuration.
	Capacity int `json:"capacity,omitempty"`
	Shards   int `json:"shards,omitempty"`
	// BytesWritten counts record bytes persisted (disk tier).
	BytesWritten uint64 `json:"bytes_written,omitempty"`
	// Quarantined counts corrupt records moved aside by Get (disk tier).
	Quarantined uint64 `json:"quarantined,omitempty"`
	// Errors counts backend failures (I/O errors on Get or Put).
	Errors uint64 `json:"errors,omitempty"`
	// Tiers holds the per-tier snapshots of a composite store, front first.
	Tiers []Stats `json:"tiers,omitempty"`
}
