package store

import (
	"sync"
	"sync/atomic"

	"pbbf/internal/scenario"
)

// Flight adds singleflight compute de-duplication on top of a Store: the
// first caller to miss on a key runs the computation and writes the result
// through, concurrent callers for the same key block and share the
// outcome. This is the seam the serving layer computes through — the store
// tiers only ever see completed results, so any Store composition works
// underneath without its own in-flight tracking.
type Flight struct {
	store Store

	mu       sync.Mutex
	inflight map[string]*call

	joins    atomic.Uint64
	computes atomic.Uint64
	active   atomic.Int64
}

// call is one in-flight computation; done closes when res/err are final.
type call struct {
	done chan struct{}
	res  scenario.Result
	err  error
}

// NewFlight wraps the store.
func NewFlight(s Store) *Flight {
	return &Flight{store: s, inflight: make(map[string]*call)}
}

// Store returns the wrapped store (for stats snapshots).
func (f *Flight) Store() Store { return f.store }

// Do returns the result stored under key, computing and storing it on a
// miss. cached reports whether the caller's result came without running
// compute here: a store hit, or a join onto another caller's computation
// that succeeded. The leader stores its result before publishing it, so a
// caller arriving after the flight ends hits the store. Compute errors are
// shared with joined callers but never stored — the next request retries.
func (f *Flight) Do(key string, compute func() (scenario.Result, error)) (res scenario.Result, cached bool, err error) {
	if res, ok, _ := f.store.Get(key); ok {
		return res, true, nil
	}
	f.mu.Lock()
	if c, ok := f.inflight[key]; ok {
		f.joins.Add(1)
		f.mu.Unlock()
		<-c.done
		return c.res, c.err == nil, c.err
	}
	c := &call{done: make(chan struct{})}
	f.inflight[key] = c
	f.mu.Unlock()

	f.computes.Add(1)
	f.active.Add(1)
	c.res, c.err = compute()
	f.active.Add(-1)
	if c.err == nil {
		// A store failure here must not fail the request — the result is in
		// hand; it surfaces through the store's error counters instead.
		f.store.Put(key, c.res) //nolint:errcheck
	}
	f.mu.Lock()
	delete(f.inflight, key)
	f.mu.Unlock()
	close(c.done)
	return c.res, false, c.err
}

// Joins counts callers that shared another caller's in-flight computation.
func (f *Flight) Joins() uint64 { return f.joins.Load() }

// Computes counts computations actually run (store misses that led).
func (f *Flight) Computes() uint64 { return f.computes.Load() }

// Active is the number of computations running right now — the in-flight
// points gauge of /metrics.
func (f *Flight) Active() int64 { return f.active.Load() }
