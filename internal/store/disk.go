package store

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"pbbf/internal/scenario"
)

// DiskVersion identifies the on-disk layout (manifest and record shape).
// Open refuses a directory written by an incompatible version instead of
// misreading it.
const DiskVersion = 1

// Disk is the durable Store backend: one content-addressed record file per
// canonical PointKey under a store directory. Layout:
//
//	dir/
//	  STORE.json            manifest: layout version (written at creation)
//	  objects/<hh>/<hash>   one JSON record per key, fanned out by the
//	                        first two hex digits of the key's FNV-128 hash
//	  quarantine/           corrupt records moved aside by Get
//
// Every record is written to a temp file in its final directory and
// renamed into place, so a record either exists completely or not at all —
// a crash mid-Put leaves at most a temp file, which Open sweeps away. Each
// record redundantly carries its key, the scenario ID and scale segments
// split out of that key, and a checksum of the result payload; Get
// verifies all of them and quarantines any record that disagrees with
// itself, so a corrupt or mis-filed record becomes a recomputable miss
// instead of a silently wrong result.
type Disk struct {
	dir string

	// renameMu serializes the exists-check + rename step of Put so the
	// entry counter stays exact under concurrent writers; record
	// marshalling and temp-file I/O happen outside it.
	renameMu sync.Mutex

	entries      atomic.Int64
	hits         atomic.Uint64
	misses       atomic.Uint64
	puts         atomic.Uint64
	bytesWritten atomic.Uint64
	quarantined  atomic.Uint64
	errors       atomic.Uint64
}

// manifest is the store directory's identity file.
type manifest struct {
	Version int `json:"version"`
}

// record is one stored result. Version, Key, Scenario, and Scale form the
// self-verifying header: Scenario and Scale must equal the segments
// SplitKey derives from Key, and Sum must match the result payload, or the
// record is quarantined on read.
type record struct {
	Version  int             `json:"version"`
	Key      string          `json:"key"`
	Scenario string          `json:"scenario"`
	Scale    string          `json:"scale"`
	Result   scenario.Result `json:"result"`
	// Sum is the FNV-1a 64-bit hash (hex) of the marshalled Result,
	// detecting torn or bit-rotted payloads that still parse as JSON.
	Sum string `json:"sum"`
}

const (
	manifestName  = "STORE.json"
	objectsDir    = "objects"
	quarantineDir = "quarantine"
	tmpPrefix     = ".tmp-"
)

// Open opens (creating if needed) a disk store rooted at dir. Reopening
// after a crash is safe: leftover temp files from interrupted Puts are
// removed, complete records are counted, and corrupt records are left in
// place to be quarantined lazily by the Get that touches them.
func Open(dir string) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	for _, sub := range []string{objectsDir, quarantineDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	d := &Disk{dir: dir}
	if err := d.checkManifest(); err != nil {
		return nil, err
	}
	n, err := d.sweep()
	if err != nil {
		return nil, err
	}
	d.entries.Store(int64(n))
	return d, nil
}

// checkManifest verifies an existing manifest's version or writes a fresh
// one (atomically, like every other file in the store).
func (d *Disk) checkManifest() error {
	path := filepath.Join(d.dir, manifestName)
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return fmt.Errorf("store: %s: unreadable manifest: %w", path, err)
		}
		if m.Version != DiskVersion {
			return fmt.Errorf("store: %s: layout version %d, this binary speaks %d", path, m.Version, DiskVersion)
		}
		return nil
	case os.IsNotExist(err):
		data, err := json.Marshal(manifest{Version: DiskVersion})
		if err != nil {
			return err
		}
		return writeFileAtomic(path, data)
	default:
		return fmt.Errorf("store: %w", err)
	}
}

// sweep counts complete records and removes temp files left by a crash
// mid-Put (they were never renamed into place, so they are garbage by
// construction).
func (d *Disk) sweep() (int, error) {
	n := 0
	root := filepath.Join(d.dir, objectsDir)
	err := filepath.WalkDir(root, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			return os.Remove(path)
		}
		n++
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("store: sweep: %w", err)
	}
	return n, nil
}

// recordPath maps a key to its record file: objects/<hh>/<hash>, with the
// 128-bit FNV-1a hash of the key as the name. The key itself is not
// filesystem-safe (it contains '|' and '='), and the record carries it in
// full, so a name collision — astronomically unlikely at 128 bits —
// degrades to a miss, never to a wrong result.
func (d *Disk) recordPath(key string) string {
	h := fnv.New128a()
	h.Write([]byte(key))
	name := fmt.Sprintf("%x", h.Sum(nil))
	return filepath.Join(d.dir, objectsDir, name[:2], name)
}

// resultSum is the checksum of a record's payload.
func resultSum(res scenario.Result) (string, error) {
	payload, err := json.Marshal(res)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(payload)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// Get reads and verifies the record stored under key. A missing record is
// a plain miss; a record that fails any self-check (unparsable JSON, wrong
// record version, checksum mismatch, or a header disagreeing with its own
// key) is moved to the quarantine directory and reported as a miss, so one
// corrupt file costs one recomputation instead of poisoning the store. A
// record whose key differs from the requested one (a hash collision) is
// left in place and reported as a miss.
func (d *Disk) Get(key string) (scenario.Result, bool, error) {
	path := d.recordPath(key)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		d.misses.Add(1)
		return scenario.Result{}, false, nil
	}
	if err != nil {
		d.errors.Add(1)
		return scenario.Result{}, false, fmt.Errorf("store: %w", err)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		d.quarantine(path, fmt.Sprintf("unparsable record: %v", err))
		return scenario.Result{}, false, nil
	}
	if rec.Key != key {
		// A different key hashed to the same name: that record is valid
		// for its own key, so it stays; this key is simply absent.
		d.misses.Add(1)
		return scenario.Result{}, false, nil
	}
	if reason := rec.verify(); reason != "" {
		d.quarantine(path, reason)
		return scenario.Result{}, false, nil
	}
	d.hits.Add(1)
	return rec.Result, true, nil
}

// verify runs the record's self-checks, returning a human-readable reason
// on the first failure and "" when the record is internally consistent.
func (rec record) verify() string {
	if rec.Version != DiskVersion {
		return fmt.Sprintf("record version %d, want %d", rec.Version, DiskVersion)
	}
	sum, err := resultSum(rec.Result)
	if err != nil || sum != rec.Sum {
		return fmt.Sprintf("checksum mismatch: recorded %s, derived %s", rec.Sum, sum)
	}
	id, scaleKey, _, err := scenario.SplitKey(rec.Key)
	if err != nil {
		return fmt.Sprintf("malformed key: %v", err)
	}
	if id != rec.Scenario || scaleKey != rec.Scale {
		return fmt.Sprintf("header (scenario=%s scale=%s) disagrees with key (scenario=%s scale=%s)",
			rec.Scenario, rec.Scale, id, scaleKey)
	}
	return ""
}

// quarantine moves a failed record out of the object tree (keeping its
// hashed name) so the next Get recomputes, and the operator can inspect
// what went wrong. Removal failures fall back to deletion; the one thing
// that must not happen is serving the record again.
func (d *Disk) quarantine(path, reason string) {
	d.quarantined.Add(1)
	d.misses.Add(1)
	d.entries.Add(-1)
	dst := filepath.Join(d.dir, quarantineDir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
		return
	}
	// Best-effort sidecar naming the failure, for post-mortems.
	os.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644)
}

// Put persists the result under key: marshal the self-verifying record,
// write it to a temp file in the final fan-out directory, then rename into
// place. The rename is atomic on POSIX filesystems, so concurrent readers
// see either no record or a complete one, and a crash at any instant
// leaves the store consistent.
func (d *Disk) Put(key string, res scenario.Result) error {
	id, scaleKey, _, err := scenario.SplitKey(key)
	if err != nil {
		d.errors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	sum, err := resultSum(res)
	if err != nil {
		d.errors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	data, err := json.Marshal(record{
		Version:  DiskVersion,
		Key:      key,
		Scenario: id,
		Scale:    scaleKey,
		Result:   res,
		Sum:      sum,
	})
	if err != nil {
		d.errors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	data = append(data, '\n')
	path := d.recordPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		d.errors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), tmpPrefix+filepath.Base(path)+"-*")
	if err != nil {
		d.errors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		d.errors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		d.errors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	d.renameMu.Lock()
	_, statErr := os.Stat(path)
	fresh := os.IsNotExist(statErr)
	if err := os.Rename(tmp.Name(), path); err != nil {
		d.renameMu.Unlock()
		os.Remove(tmp.Name())
		d.errors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if fresh {
		d.entries.Add(1)
	}
	d.renameMu.Unlock()
	d.puts.Add(1)
	d.bytesWritten.Add(uint64(len(data)))
	return nil
}

// Len returns the stored record count (maintained incrementally; exact
// as of the last Open plus this process's Puts and quarantines).
func (d *Disk) Len() int { return int(d.entries.Load()) }

// Stats snapshots the disk counters.
func (d *Disk) Stats() Stats {
	return Stats{
		Kind:         "disk",
		Hits:         d.hits.Load(),
		Misses:       d.misses.Load(),
		Puts:         d.puts.Load(),
		Entries:      d.Len(),
		BytesWritten: d.bytesWritten.Load(),
		Quarantined:  d.quarantined.Load(),
		Errors:       d.errors.Load(),
	}
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// Close releases nothing — every Put is durable when it returns — but is
// part of the contract so future backends holding descriptors or
// connections can hook it.
func (d *Disk) Close() error { return nil }

// writeFileAtomic writes data to path via temp-file-then-rename, the same
// crash-safety discipline Put uses.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), tmpPrefix+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
