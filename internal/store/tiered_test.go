package store

import (
	"sync"
	"testing"

	"pbbf/internal/scenario"
)

func newTestTiered(t *testing.T) (Store, *Memory, *Disk) {
	t.Helper()
	mem, err := NewMemory(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return Tiered(mem, disk), mem, disk
}

func TestTieredWriteThroughAndPromotion(t *testing.T) {
	ts, mem, disk := newTestTiered(t)
	key := testKey(t, "fig8", 1, 0.5)

	// Put writes through to both tiers.
	if err := ts.Put(key, scenario.Result{Y: 7}); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != 1 || disk.Len() != 1 {
		t.Fatalf("tiers after put: mem=%d disk=%d", mem.Len(), disk.Len())
	}

	// A fresh memory tier over the same disk (the restart shape): the
	// first Get is a disk hit that promotes, the second a memory hit.
	mem2, err := NewMemory(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := Tiered(mem2, disk)
	got, ok, err := ts2.Get(key)
	if !ok || err != nil || got.Y != 7 {
		t.Fatalf("cold get: %+v ok=%v err=%v", got, ok, err)
	}
	if mem2.Len() != 1 {
		t.Fatal("disk hit not promoted into the memory tier")
	}
	diskHits := disk.Stats().Hits
	if _, ok, _ := ts2.Get(key); !ok {
		t.Fatal("warm get missed")
	}
	if disk.Stats().Hits != diskHits {
		t.Fatal("warm get fell through to disk")
	}
}

func TestTieredMissAndStats(t *testing.T) {
	ts, _, _ := newTestTiered(t)
	if _, ok, err := ts.Get(testKey(t, "fig8", 9, 0.5)); ok || err != nil {
		t.Fatalf("empty tiered store: ok=%v err=%v", ok, err)
	}
	st := ts.Stats()
	if st.Kind != "tiered" || st.Misses != 1 || len(st.Tiers) != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Tiers[0].Kind != "memory" || st.Tiers[1].Kind != "disk" {
		t.Fatalf("tier order %+v", st.Tiers)
	}
}

func TestTieredSingleCollapses(t *testing.T) {
	mem, err := NewMemory(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s := Tiered(mem); s != Store(mem) {
		t.Fatal("single-tier composition did not collapse")
	}
}

func TestFlightStoreHitAndCompute(t *testing.T) {
	ts, _, _ := newTestTiered(t)
	f := NewFlight(ts)
	key := testKey(t, "fig8", 1, 0.5)
	computes := 0
	compute := func() (scenario.Result, error) {
		computes++
		return scenario.Result{Y: 5}, nil
	}
	res, cached, err := f.Do(key, compute)
	if err != nil || cached || res.Y != 5 || computes != 1 {
		t.Fatalf("first do: %+v cached=%v err=%v computes=%d", res, cached, err, computes)
	}
	res, cached, err = f.Do(key, compute)
	if err != nil || !cached || res.Y != 5 || computes != 1 {
		t.Fatalf("second do recomputed: %+v cached=%v err=%v computes=%d", res, cached, err, computes)
	}
	if f.Computes() != 1 {
		t.Fatalf("computes counter %d", f.Computes())
	}
}

// TestFlightSingleflight: concurrent callers for one key run compute once
// and all share the value; late callers hit the store.
func TestFlightSingleflight(t *testing.T) {
	ts, _, _ := newTestTiered(t)
	f := NewFlight(ts)
	key := testKey(t, "fig8", 2, 0.5)

	started := make(chan struct{})
	release := make(chan struct{})
	var computes int
	go f.Do(key, func() (scenario.Result, error) { //nolint:errcheck
		computes++
		close(started)
		<-release
		return scenario.Result{Y: 9}, nil
	})
	<-started

	const followers = 8
	var wg sync.WaitGroup
	results := make([]scenario.Result, followers)
	cachedFlags := make([]bool, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, cached, err := f.Do(key, func() (scenario.Result, error) {
				t.Error("follower computed")
				return scenario.Result{}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], cachedFlags[i] = res, cached
		}(i)
	}
	// Give followers time to join, then let the leader finish.
	for f.Joins() < followers {
		if f.Active() != 1 {
			t.Fatalf("active %d", f.Active())
		}
	}
	close(release)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computes %d", computes)
	}
	for i := range results {
		if results[i].Y != 9 || !cachedFlags[i] {
			t.Fatalf("follower %d: %+v cached=%v", i, results[i], cachedFlags[i])
		}
	}
	if f.Joins() != followers {
		t.Fatalf("joins %d", f.Joins())
	}
	if f.Active() != 0 {
		t.Fatalf("active after drain %d", f.Active())
	}
}

func TestFlightErrorNotStored(t *testing.T) {
	ts, _, _ := newTestTiered(t)
	f := NewFlight(ts)
	key := testKey(t, "fig8", 3, 0.5)
	boom := func() (scenario.Result, error) {
		return scenario.Result{}, errTest
	}
	if _, cached, err := f.Do(key, boom); err != errTest || cached {
		t.Fatalf("error do: cached=%v err=%v", cached, err)
	}
	if ts.Len() != 0 {
		t.Fatal("failed computation was stored")
	}
	// The next request retries and can succeed.
	res, cached, err := f.Do(key, func() (scenario.Result, error) {
		return scenario.Result{Y: 1}, nil
	})
	if err != nil || cached || res.Y != 1 {
		t.Fatalf("retry: %+v cached=%v err=%v", res, cached, err)
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "simulated compute failure" }
