package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pbbf/internal/scenario"
)

// testKey mints a real canonical PointKey: the disk store's self-checks
// split keys with scenario.SplitKey, so synthetic strings would not pass.
func testKey(t *testing.T, id string, seed uint64, x float64) string {
	t.Helper()
	s := scenario.Quick()
	s.Seed = seed
	return scenario.PointKey(id, s, scenario.Point{
		Series: "a", X: x, Params: map[string]float64{"q": x},
	})
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "fig8", 1, 0.5)
	if _, ok, err := d.Get(key); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	want := scenario.Result{Y: 42, EnergyJ: 1.5, LatencyS: 0.25, Delivery: 1}
	if err := d.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := d.Get(key)
	if !ok || err != nil || got != want {
		t.Fatalf("get: %+v ok=%v err=%v", got, ok, err)
	}
	if d.Len() != 1 {
		t.Fatalf("len %d", d.Len())
	}
	st := d.Stats()
	if st.Kind != "disk" || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.BytesWritten == 0 {
		t.Fatalf("stats %+v", st)
	}

	// Overwriting the same key is idempotent and does not grow the store.
	if err := d.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("len after re-put %d", d.Len())
	}
}

// TestDiskReopen is the durability core: a fresh process (a new Disk on
// the same directory) serves every record byte-for-byte, and leftover temp
// files from a Put interrupted by a crash are swept away.
func TestDiskReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = testKey(t, "fig8", uint64(i+1), 0.5)
		if err := d.Put(keys[i], scenario.Result{Y: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-Put: a temp file that never got renamed.
	torn := filepath.Join(dir, objectsDir, "ab")
	if err := os.MkdirAll(torn, 0o755); err != nil {
		t.Fatal(err)
	}
	tornFile := filepath.Join(torn, tmpPrefix+"crashed")
	if err := os.WriteFile(tornFile, []byte(`{"version":1,"key":"half`), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != len(keys) {
		t.Fatalf("reopened len %d, want %d", d2.Len(), len(keys))
	}
	if _, err := os.Stat(tornFile); !os.IsNotExist(err) {
		t.Fatalf("crash temp file survived reopen: %v", err)
	}
	for i, key := range keys {
		got, ok, err := d2.Get(key)
		if !ok || err != nil || got.Y != float64(i) {
			t.Fatalf("key %d after reopen: %+v ok=%v err=%v", i, got, ok, err)
		}
	}
}

func TestDiskManifestVersionGate(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future-version store accepted: %v", err)
	}
}

// corruptCases mutates a valid record in every way the self-checks must
// catch; each one must quarantine the file and turn the Get into a miss.
func TestDiskQuarantine(t *testing.T) {
	key := testKey(t, "fig8", 1, 0.5)
	cases := []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"truncated", func(data []byte) []byte { return data[:len(data)/2] }},
		{"not json", func(data []byte) []byte { return []byte("!!definitely not json!!") }},
		{"payload flipped", func(data []byte) []byte {
			return []byte(strings.Replace(string(data), `"y":42`, `"y":43`, 1))
		}},
		{"wrong record version", func(data []byte) []byte {
			return []byte(strings.Replace(string(data), `"version":1`, `"version":7`, 1))
		}},
		{"header disagrees with key", func(data []byte) []byte {
			return []byte(strings.Replace(string(data), `"scenario":"fig8"`, `"scenario":"fig9"`, 1))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Put(key, scenario.Result{Y: 42}); err != nil {
				t.Fatal(err)
			}
			path := d.recordPath(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := d.Get(key); ok || err != nil {
				t.Fatalf("corrupt record served: ok=%v err=%v", ok, err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt record still in object tree: %v", err)
			}
			moved, err := os.ReadDir(filepath.Join(dir, quarantineDir))
			if err != nil || len(moved) == 0 {
				t.Fatalf("quarantine empty: %v", err)
			}
			st := d.Stats()
			if st.Quarantined != 1 || st.Entries != 0 {
				t.Fatalf("stats after quarantine: %+v", st)
			}
			// The slot is recomputable: a fresh Put must serve again.
			if err := d.Put(key, scenario.Result{Y: 42}); err != nil {
				t.Fatal(err)
			}
			if got, ok, _ := d.Get(key); !ok || got.Y != 42 {
				t.Fatalf("slot not recomputable after quarantine: %+v ok=%v", got, ok)
			}
		})
	}
}

// TestDiskConcurrent hammers one store with mixed Get/Put across keys,
// including colliding writers on the same key — run under -race this is
// the concurrency proof for the serving path's shared store.
func TestDiskConcurrent(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const keyCount = 16
	keys := make([]string, keyCount)
	for i := range keys {
		keys[i] = testKey(t, "fig8", uint64(i+1), 0.5)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := keys[(w+i)%keyCount]
				want := float64((w + i) % keyCount)
				if i%3 == 0 {
					if err := d.Put(key, scenario.Result{Y: want}); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				got, ok, err := d.Get(key)
				if err != nil {
					t.Error(err)
					return
				}
				if ok && got.Y != want {
					t.Errorf("key %s: got %v want %v", key, got.Y, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != keyCount {
		t.Fatalf("len %d, want %d", d.Len(), keyCount)
	}
	if st := d.Stats(); st.Errors != 0 || st.Quarantined != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDiskRejectsMalformedKey(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("not a canonical key", scenario.Result{Y: 1}); err == nil {
		t.Fatal("malformed key accepted")
	}
	if st := d.Stats(); st.Errors != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// TestDiskLayoutFanOut pins the record fan-out: records land under
// objects/<hh>/ where <hh> is the first two hex digits of the key hash, so
// a million-point store never piles every file into one directory.
func TestDiskLayoutFanOut(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "fig8", 1, 0.5)
	path := d.recordPath(key)
	rel, err := filepath.Rel(d.Dir(), path)
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.Split(rel, string(filepath.Separator))
	if len(parts) != 3 || parts[0] != objectsDir || len(parts[1]) != 2 || !strings.HasPrefix(parts[2], parts[1]) {
		t.Fatalf("unexpected layout %q", rel)
	}
	if len(parts[2]) != 32 { // 128-bit hash in hex
		t.Fatalf("record name %q not a 128-bit hash", parts[2])
	}
}

func BenchmarkDiskGet(b *testing.B) {
	d, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	s := scenario.Quick()
	key := scenario.PointKey("fig8", s, scenario.Point{Series: "a", X: 0.5, Params: map[string]float64{"q": 0.5}})
	if err := d.Put(key, scenario.Result{Y: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := d.Get(key); !ok {
			b.Fatal("miss")
		}
	}
}

func ExampleOpen() {
	dir, _ := os.MkdirTemp("", "store")
	defer os.RemoveAll(dir)
	d, _ := Open(dir)
	s := scenario.Quick()
	key := scenario.PointKey("fig8", s, scenario.Point{Series: "a", X: 0, Params: map[string]float64{"q": 0}})
	d.Put(key, scenario.Result{Y: 3.5})
	res, ok, _ := d.Get(key)
	fmt.Println(ok, res.Y)
	// Output: true 3.5
}
