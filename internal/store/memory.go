package store

import (
	"sync/atomic"

	"pbbf/internal/cache"
	"pbbf/internal/scenario"
)

// Memory is the in-memory Store backend: the FNV-sharded, LRU-bounded
// result cache of internal/cache behind the Store contract. It is the
// fast tier of a Tiered store and the whole store of a server running
// without a -store directory.
type Memory struct {
	c    *cache.Cache[scenario.Result]
	puts atomic.Uint64
}

// NewMemory builds a memory store with the given shard count and total
// entry capacity (see cache.New for the constraints).
func NewMemory(shards, capacity int) (*Memory, error) {
	c, err := cache.New[scenario.Result](shards, capacity)
	if err != nil {
		return nil, err
	}
	return &Memory{c: c}, nil
}

// WrapCache adapts an existing result cache — the deprecated
// server.Config.Cache injection path — into a Store.
func WrapCache(c *cache.Cache[scenario.Result]) *Memory {
	return &Memory{c: c}
}

// Get looks the key up in the cache; it never blocks on in-flight entries.
func (m *Memory) Get(key string) (scenario.Result, bool, error) {
	res, ok := m.c.Get(key)
	return res, ok, nil
}

// Put stores the result, LRU-evicting as needed.
func (m *Memory) Put(key string, res scenario.Result) error {
	m.c.Put(key, res)
	m.puts.Add(1)
	return nil
}

// Len returns the cached entry count.
func (m *Memory) Len() int { return m.c.Len() }

// Stats maps the cache's counters onto the store snapshot shape.
func (m *Memory) Stats() Stats {
	cs := m.c.Stats()
	return Stats{
		Kind:      "memory",
		Hits:      cs.Hits,
		Misses:    cs.Misses,
		Puts:      m.puts.Load(),
		Entries:   cs.Entries,
		Evictions: cs.Evictions,
		Capacity:  cs.Capacity,
		Shards:    cs.Shards,
	}
}

// CacheStats exposes the underlying cache counters for the legacy "cache"
// key of /v1/stats, which predates the store layer.
func (m *Memory) CacheStats() cache.Stats { return m.c.Stats() }

// Close is a no-op: memory holds no external resources.
func (m *Memory) Close() error { return nil }
