// Package percolation implements the bond-percolation machinery behind the
// paper's reliability analysis (Section 4.1).
//
// PBBF's reliability is a bond percolation problem: each directed link is
// "open" with probability pedge = 1 − p·(1 − q) (Remark 1), and a broadcast
// from the source reaches the nodes in the source's open cluster. Two
// questions matter for the experiments:
//
//  1. Figure 6 — for a finite W×H grid, what fraction of occupied bonds is
//     needed before the source's cluster covers a target fraction
//     (80/90/99/100%) of the nodes? This is computed with the fast Monte
//     Carlo algorithm of Newman & Ziff: bonds are added one at a time in
//     random order while a union-find structure tracks cluster sizes, so a
//     full sweep over all bond counts costs O(M α(N)) per realization.
//
//  2. Figure 7 — given that critical ratio, which (p, q) pairs achieve it?
//     The inversion lives in internal/core (MinQForEdgeProbability); this
//     package also provides a direct check, ReachedFraction, that opens
//     each bond independently with probability pedge.
package percolation

import (
	"fmt"
	"math"

	"pbbf/internal/rng"
	"pbbf/internal/stats"
	"pbbf/internal/topo"
	"pbbf/internal/unionfind"
)

// Edge is an undirected bond between two nodes.
type Edge struct {
	A, B topo.NodeID
}

// Edges extracts the undirected edge list of a topology (each pair once).
func Edges(t topo.Topology) []Edge {
	var edges []Edge
	for id := 0; id < t.N(); id++ {
		for _, nb := range t.Neighbors(topo.NodeID(id)) {
			if topo.NodeID(id) < nb {
				edges = append(edges, Edge{A: topo.NodeID(id), B: nb})
			}
		}
	}
	return edges
}

// Result is a Monte Carlo estimate with a 95% confidence half-width.
type Result struct {
	Mean float64
	CI95 float64
	N    int
}

// CriticalBondRatio estimates, over trials random bond orderings, the mean
// fraction of occupied bonds at which the cluster containing src first
// covers at least reliability×N nodes (Newman–Ziff sweep). reliability must
// be in (0, 1].
func CriticalBondRatio(t topo.Topology, src topo.NodeID, reliability float64, trials int, r *rng.Source) (Result, error) {
	if reliability <= 0 || reliability > 1 {
		return Result{}, fmt.Errorf("percolation: reliability %v outside (0,1]", reliability)
	}
	if trials <= 0 {
		return Result{}, fmt.Errorf("percolation: trials must be positive, got %d", trials)
	}
	edges := Edges(t)
	if len(edges) == 0 {
		return Result{}, fmt.Errorf("percolation: topology has no edges")
	}
	target := int(math.Ceil(reliability * float64(t.N())))
	if target < 1 {
		target = 1
	}
	uf := unionfind.Must(t.N())
	order := make([]int, len(edges))
	for i := range order {
		order[i] = i
	}
	var acc stats.Accumulator
	for trial := 0; trial < trials; trial++ {
		uf.Reset()
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		added := 0
		reached := uf.SetSize(int(src)) >= target
		for _, idx := range order {
			if reached {
				break
			}
			e := edges[idx]
			uf.Union(int(e.A), int(e.B))
			added++
			if uf.SetSize(int(src)) >= target {
				reached = true
			}
		}
		if !reached {
			// All bonds added and still short: the target exceeds the
			// component containing src (disconnected topology). Count the
			// full bond set; the ratio is 1 by definition.
			added = len(edges)
		}
		acc.Add(float64(added) / float64(len(edges)))
	}
	return Result{Mean: acc.Mean(), CI95: acc.CI95(), N: acc.N()}, nil
}

// ReachedFraction opens each undirected bond independently with probability
// pedge and returns the average fraction of nodes in src's cluster over the
// given number of trials. This is the direct Monte Carlo counterpart of
// Remark 1, used to validate the p–q frontier.
func ReachedFraction(t topo.Topology, src topo.NodeID, pedge float64, trials int, r *rng.Source) (Result, error) {
	if pedge < 0 || pedge > 1 {
		return Result{}, fmt.Errorf("percolation: pedge %v outside [0,1]", pedge)
	}
	if trials <= 0 {
		return Result{}, fmt.Errorf("percolation: trials must be positive, got %d", trials)
	}
	edges := Edges(t)
	uf := unionfind.Must(t.N())
	var acc stats.Accumulator
	for trial := 0; trial < trials; trial++ {
		uf.Reset()
		for _, e := range edges {
			if r.Bool(pedge) {
				uf.Union(int(e.A), int(e.B))
			}
		}
		acc.Add(float64(uf.SetSize(int(src))) / float64(t.N()))
	}
	return Result{Mean: acc.Mean(), CI95: acc.CI95(), N: acc.N()}, nil
}

// ReliabilityProbability estimates the probability that a single broadcast
// reaches at least reliability×N nodes when bonds open with probability
// pedge — the quantity plotted on the y axis of Figures 4 and 5 in the
// percolation abstraction.
func ReliabilityProbability(t topo.Topology, src topo.NodeID, pedge, reliability float64, trials int, r *rng.Source) (Result, error) {
	if pedge < 0 || pedge > 1 {
		return Result{}, fmt.Errorf("percolation: pedge %v outside [0,1]", pedge)
	}
	if reliability <= 0 || reliability > 1 {
		return Result{}, fmt.Errorf("percolation: reliability %v outside (0,1]", reliability)
	}
	if trials <= 0 {
		return Result{}, fmt.Errorf("percolation: trials must be positive, got %d", trials)
	}
	edges := Edges(t)
	uf := unionfind.Must(t.N())
	target := int(math.Ceil(reliability * float64(t.N())))
	var acc stats.Accumulator
	for trial := 0; trial < trials; trial++ {
		uf.Reset()
		for _, e := range edges {
			if r.Bool(pedge) {
				uf.Union(int(e.A), int(e.B))
			}
		}
		if uf.SetSize(int(src)) >= target {
			acc.Add(1)
		} else {
			acc.Add(0)
		}
	}
	return Result{Mean: acc.Mean(), CI95: acc.CI95(), N: acc.N()}, nil
}

// SquareLatticeBondPc is the exact critical bond probability of the infinite
// square lattice (1/2, Kesten 1980), used as a sanity anchor in tests and in
// EXPERIMENTS.md commentary.
const SquareLatticeBondPc = 0.5
