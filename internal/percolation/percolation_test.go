package percolation

import (
	"testing"
	"testing/quick"

	"pbbf/internal/rng"
	"pbbf/internal/topo"
)

func TestEdgesGridCount(t *testing.T) {
	g := topo.MustGrid(10, 10)
	edges := Edges(g)
	// 10×10 grid: 10*9*2 = 180 edges.
	if len(edges) != 180 {
		t.Fatalf("edges = %d, want 180", len(edges))
	}
	seen := map[Edge]bool{}
	for _, e := range edges {
		if e.A >= e.B {
			t.Fatalf("edge %v not canonical", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestCriticalBondRatioValidation(t *testing.T) {
	g := topo.MustGrid(5, 5)
	r := rng.New(1)
	if _, err := CriticalBondRatio(g, g.Center(), 0, 10, r); err == nil {
		t.Fatal("reliability 0 accepted")
	}
	if _, err := CriticalBondRatio(g, g.Center(), 1.5, 10, r); err == nil {
		t.Fatal("reliability 1.5 accepted")
	}
	if _, err := CriticalBondRatio(g, g.Center(), 0.9, 0, r); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestCriticalBondRatioNearKesten(t *testing.T) {
	// On a 30×30 grid the bond ratio for full coverage sits above the
	// infinite-lattice pc=0.5 (finite-size effect: every node, including
	// degree-2 corners, must join). 50% coverage should cost well below
	// full coverage.
	g := topo.MustGrid(30, 30)
	r := rng.New(42)
	full, err := CriticalBondRatio(g, g.Center(), 1.0, 40, r)
	if err != nil {
		t.Fatal(err)
	}
	// Full coverage costs far more than the infinite-lattice pc=0.5: the
	// ratio is dominated by the last low-degree boundary node attaching
	// (coupon-collector effect), empirically ≈0.87 on 30×30.
	if full.Mean < 0.5 || full.Mean > 0.95 {
		t.Fatalf("100%% critical ratio %v outside [0.5, 0.95]", full.Mean)
	}
	half, err := CriticalBondRatio(g, g.Center(), 0.5, 40, r)
	if err != nil {
		t.Fatal(err)
	}
	if half.Mean >= full.Mean {
		t.Fatalf("50%% ratio %v not below 100%% ratio %v", half.Mean, full.Mean)
	}
	if half.Mean < 0.3 || half.Mean > 0.6 {
		t.Fatalf("50%% critical ratio %v outside [0.3, 0.6]", half.Mean)
	}
}

func TestCriticalBondRatioMonotoneInReliability(t *testing.T) {
	g := topo.MustGrid(20, 20)
	r := rng.New(7)
	prev := 0.0
	for _, rel := range []float64{0.8, 0.9, 0.99, 1.0} {
		res, err := CriticalBondRatio(g, g.Center(), rel, 60, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Mean < prev-0.02 { // allow tiny Monte Carlo noise
			t.Fatalf("critical ratio decreased: rel=%v got %v after %v", rel, res.Mean, prev)
		}
		prev = res.Mean
	}
}

func TestCriticalBondRatioTrivialTarget(t *testing.T) {
	// Reliability so low that the source alone satisfies it → 0 bonds.
	g := topo.MustGrid(10, 10)
	r := rng.New(3)
	res, err := CriticalBondRatio(g, g.Center(), 0.005, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != 0 {
		t.Fatalf("trivial target ratio = %v, want 0", res.Mean)
	}
}

func TestReachedFractionExtremes(t *testing.T) {
	g := topo.MustGrid(10, 10)
	r := rng.New(4)
	zero, err := ReachedFraction(g, g.Center(), 0, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Mean != 1.0/100 {
		t.Fatalf("pedge=0 fraction = %v, want 0.01 (source only)", zero.Mean)
	}
	one, err := ReachedFraction(g, g.Center(), 1, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if one.Mean != 1 {
		t.Fatalf("pedge=1 fraction = %v, want 1", one.Mean)
	}
}

func TestReachedFractionValidation(t *testing.T) {
	g := topo.MustGrid(5, 5)
	r := rng.New(1)
	if _, err := ReachedFraction(g, 0, -0.1, 5, r); err == nil {
		t.Fatal("negative pedge accepted")
	}
	if _, err := ReachedFraction(g, 0, 0.5, 0, r); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestReachedFractionThresholdBehavior(t *testing.T) {
	// Below pc the cluster is tiny; above it, nearly everything. This is
	// the bimodal behaviour the paper leans on.
	g := topo.MustGrid(30, 30)
	r := rng.New(5)
	low, err := ReachedFraction(g, g.Center(), 0.3, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	high, err := ReachedFraction(g, g.Center(), 0.8, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	if low.Mean > 0.2 {
		t.Fatalf("subcritical fraction %v too high", low.Mean)
	}
	if high.Mean < 0.9 {
		t.Fatalf("supercritical fraction %v too low", high.Mean)
	}
}

func TestReliabilityProbabilityThreshold(t *testing.T) {
	g := topo.MustGrid(20, 20)
	r := rng.New(6)
	low, err := ReliabilityProbability(g, g.Center(), 0.35, 0.9, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	high, err := ReliabilityProbability(g, g.Center(), 0.9, 0.9, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	if low.Mean > 0.1 {
		t.Fatalf("subcritical reliability prob %v", low.Mean)
	}
	if high.Mean < 0.95 {
		t.Fatalf("supercritical reliability prob %v", high.Mean)
	}
}

func TestReliabilityProbabilityValidation(t *testing.T) {
	g := topo.MustGrid(5, 5)
	r := rng.New(1)
	if _, err := ReliabilityProbability(g, 0, 2, 0.9, 5, r); err == nil {
		t.Fatal("pedge 2 accepted")
	}
	if _, err := ReliabilityProbability(g, 0, 0.5, 0, 5, r); err == nil {
		t.Fatal("reliability 0 accepted")
	}
	if _, err := ReliabilityProbability(g, 0, 0.5, 0.9, 0, r); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	g := topo.MustGrid(15, 15)
	a, err := CriticalBondRatio(g, g.Center(), 0.9, 20, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CriticalBondRatio(g, g.Center(), 0.9, 20, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean {
		t.Fatalf("same seed gave %v and %v", a.Mean, b.Mean)
	}
}

// Property: ReachedFraction is monotone (within noise) in pedge; we verify
// on coarse probes with generous trials.
func TestPropertyReachedFractionMonotone(t *testing.T) {
	check := func(seed uint64) bool {
		g := topo.MustGrid(15, 15)
		r := rng.New(seed)
		prev := -1.0
		for _, pe := range []float64{0.1, 0.4, 0.7, 1.0} {
			res, err := ReachedFraction(g, g.Center(), pe, 30, r)
			if err != nil {
				return false
			}
			if res.Mean < prev-0.05 {
				return false
			}
			prev = res.Mean
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: critical ratio estimates always lie in [0, 1].
func TestPropertyCriticalRatioBounded(t *testing.T) {
	check := func(seed uint64, rawRel uint8) bool {
		rel := float64(int(rawRel)%100+1) / 100
		g := topo.MustGrid(10, 10)
		res, err := CriticalBondRatio(g, g.Center(), rel, 5, rng.New(seed))
		if err != nil {
			return false
		}
		return res.Mean >= 0 && res.Mean <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCriticalBondRatio30(b *testing.B) {
	g := topo.MustGrid(30, 30)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = CriticalBondRatio(g, g.Center(), 0.99, 1, r)
	}
}
