// Package codedist implements the paper's example application (Section
// 5.1): code distribution over broadcast. One node is the update source;
// new updates are generated deterministically at rate λ, and every
// broadcast packet carries the k most recent updates, so a node can miss
// k−1 consecutive packets and still learn every update.
package codedist

import (
	"fmt"
	"time"
)

// Update is one code update generated at the source.
type Update struct {
	// Seq is the source-assigned sequence number, starting at 0.
	Seq int
	// GeneratedAt is the simulation time the update was created.
	GeneratedAt time.Duration
}

// Payload is the application content of one broadcast packet: the k most
// recent updates at generation time.
type Payload struct {
	Updates []Update
}

// Source generates updates and builds packet payloads.
type Source struct {
	k      int
	recent []Update
	next   int
}

// NewSource returns a source batching the k most recent updates per packet
// (Table 2 experiments use k=1).
func NewSource(k int) (*Source, error) {
	if k <= 0 {
		return nil, fmt.Errorf("codedist: k %d must be positive", k)
	}
	return &Source{k: k, recent: make([]Update, 0, k)}, nil
}

// Reset reinitializes the source in place for a new run with batch size k,
// keeping the recent-updates buffer.
func (s *Source) Reset(k int) error {
	if k <= 0 {
		return fmt.Errorf("codedist: k %d must be positive", k)
	}
	s.k = k
	s.recent = s.recent[:0]
	s.next = 0
	return nil
}

// Generate creates the next update at time now and returns the payload to
// broadcast (a copy; callers cannot alias internal state).
func (s *Source) Generate(now time.Duration) Payload {
	u := Update{Seq: s.next, GeneratedAt: now}
	s.next++
	s.recent = append(s.recent, u)
	if len(s.recent) > s.k {
		s.recent = s.recent[len(s.recent)-s.k:]
	}
	out := make([]Update, len(s.recent))
	copy(out, s.recent)
	return Payload{Updates: out}
}

// Generated returns the number of updates created so far.
func (s *Source) Generated() int { return s.next }

// Tracker records, per receiving node, when each update was first learned.
// Sequence numbers are dense from zero, so first-sight state lives in flat
// slices indexed by seq: observing a payload on the reception hot path is
// an array test, not a map probe.
type Tracker struct {
	latency  []time.Duration
	seen     []bool
	received int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{}
}

// Reset clears the tracker for reuse across runs, keeping the flat slices'
// capacity so a pooled tracker records a whole run without allocating.
func (t *Tracker) Reset() {
	t.seen = t.seen[:0]
	t.latency = t.latency[:0]
	t.received = 0
}

// maxSeq bounds the sequence numbers the tracker accepts. Sources number
// updates densely from zero, so a sequence outside [0, maxSeq) means a
// caller broke that invariant (hash or timestamp as Seq); fail loudly
// instead of growing the flat state toward OOM.
const maxSeq = 1 << 26

// Observe processes a received payload at time now, recording first-sight
// latency for updates not seen before.
func (t *Tracker) Observe(p Payload, now time.Duration) {
	for _, u := range p.Updates {
		if u.Seq < 0 || u.Seq >= maxSeq {
			panic(fmt.Sprintf("codedist: update sequence %d breaks the dense-seq invariant [0, %d)", u.Seq, maxSeq))
		}
		// Grow element-wise: appending zero values one at a time reuses
		// retained capacity (a Reset tracker re-records a run with no
		// allocation) where appending a make()-temporary would allocate
		// the temporary on every growth step.
		for len(t.seen) <= u.Seq {
			t.seen = append(t.seen, false)
			t.latency = append(t.latency, 0)
		}
		if !t.seen[u.Seq] {
			t.seen[u.Seq] = true
			t.latency[u.Seq] = now - u.GeneratedAt
			t.received++
		}
	}
}

// Received returns how many distinct updates the node has learned.
func (t *Tracker) Received() int { return t.received }

// Latency returns the first-sight latency of update seq.
func (t *Tracker) Latency(seq int) (time.Duration, bool) {
	if seq < 0 || seq >= len(t.seen) || !t.seen[seq] {
		return 0, false
	}
	return t.latency[seq], true
}

// Latencies returns all recorded (seq, latency) pairs as a map copy.
func (t *Tracker) Latencies() map[int]time.Duration {
	out := make(map[int]time.Duration, t.received)
	for seq, ok := range t.seen {
		if ok {
			out[seq] = t.latency[seq]
		}
	}
	return out
}
