// Package codedist implements the paper's example application (Section
// 5.1): code distribution over broadcast. One node is the update source;
// new updates are generated deterministically at rate λ, and every
// broadcast packet carries the k most recent updates, so a node can miss
// k−1 consecutive packets and still learn every update.
package codedist

import (
	"fmt"
	"time"
)

// Update is one code update generated at the source.
type Update struct {
	// Seq is the source-assigned sequence number, starting at 0.
	Seq int
	// GeneratedAt is the simulation time the update was created.
	GeneratedAt time.Duration
}

// Payload is the application content of one broadcast packet: the k most
// recent updates at generation time.
type Payload struct {
	Updates []Update
}

// Source generates updates and builds packet payloads.
type Source struct {
	k      int
	recent []Update
	next   int
}

// NewSource returns a source batching the k most recent updates per packet
// (Table 2 experiments use k=1).
func NewSource(k int) (*Source, error) {
	if k <= 0 {
		return nil, fmt.Errorf("codedist: k %d must be positive", k)
	}
	return &Source{k: k, recent: make([]Update, 0, k)}, nil
}

// Generate creates the next update at time now and returns the payload to
// broadcast (a copy; callers cannot alias internal state).
func (s *Source) Generate(now time.Duration) Payload {
	u := Update{Seq: s.next, GeneratedAt: now}
	s.next++
	s.recent = append(s.recent, u)
	if len(s.recent) > s.k {
		s.recent = s.recent[len(s.recent)-s.k:]
	}
	out := make([]Update, len(s.recent))
	copy(out, s.recent)
	return Payload{Updates: out}
}

// Generated returns the number of updates created so far.
func (s *Source) Generated() int { return s.next }

// Tracker records, per receiving node, when each update was first learned.
type Tracker struct {
	latency map[int]time.Duration
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{latency: make(map[int]time.Duration)}
}

// Observe processes a received payload at time now, recording first-sight
// latency for updates not seen before.
func (t *Tracker) Observe(p Payload, now time.Duration) {
	for _, u := range p.Updates {
		if _, ok := t.latency[u.Seq]; !ok {
			t.latency[u.Seq] = now - u.GeneratedAt
		}
	}
}

// Received returns how many distinct updates the node has learned.
func (t *Tracker) Received() int { return len(t.latency) }

// Latency returns the first-sight latency of update seq.
func (t *Tracker) Latency(seq int) (time.Duration, bool) {
	d, ok := t.latency[seq]
	return d, ok
}

// Latencies returns all recorded (seq, latency) pairs as a map copy.
func (t *Tracker) Latencies() map[int]time.Duration {
	out := make(map[int]time.Duration, len(t.latency))
	for k, v := range t.latency {
		out[k] = v
	}
	return out
}
