package codedist

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewSourceValidation(t *testing.T) {
	if _, err := NewSource(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewSource(-1); err == nil {
		t.Fatal("k=-1 accepted")
	}
}

func TestGenerateSequences(t *testing.T) {
	s, err := NewSource(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p := s.Generate(time.Duration(i) * time.Second)
		if len(p.Updates) != 1 {
			t.Fatalf("k=1 payload has %d updates", len(p.Updates))
		}
		if p.Updates[0].Seq != i {
			t.Fatalf("seq = %d, want %d", p.Updates[0].Seq, i)
		}
		if p.Updates[0].GeneratedAt != time.Duration(i)*time.Second {
			t.Fatalf("GeneratedAt = %v", p.Updates[0].GeneratedAt)
		}
	}
	if s.Generated() != 5 {
		t.Fatalf("Generated = %d", s.Generated())
	}
}

func TestKBatching(t *testing.T) {
	s, err := NewSource(3)
	if err != nil {
		t.Fatal(err)
	}
	var last Payload
	for i := 0; i < 5; i++ {
		last = s.Generate(time.Duration(i) * time.Second)
	}
	if len(last.Updates) != 3 {
		t.Fatalf("payload carries %d updates, want 3", len(last.Updates))
	}
	// Must be the 3 most recent: 2, 3, 4.
	for i, want := range []int{2, 3, 4} {
		if last.Updates[i].Seq != want {
			t.Fatalf("updates = %v", last.Updates)
		}
	}
}

func TestPayloadIsACopy(t *testing.T) {
	s, _ := NewSource(2)
	p1 := s.Generate(0)
	p1.Updates[0].Seq = 999
	p2 := s.Generate(time.Second)
	if p2.Updates[0].Seq == 999 {
		t.Fatal("payload aliases source state")
	}
}

func TestTrackerFirstSightLatency(t *testing.T) {
	tr := NewTracker()
	p := Payload{Updates: []Update{{Seq: 0, GeneratedAt: 10 * time.Second}}}
	tr.Observe(p, 14*time.Second)
	// Re-observing later must not overwrite the first-sight latency.
	tr.Observe(p, 30*time.Second)
	lat, ok := tr.Latency(0)
	if !ok || lat != 4*time.Second {
		t.Fatalf("latency = %v, %v", lat, ok)
	}
	if tr.Received() != 1 {
		t.Fatalf("received = %d", tr.Received())
	}
}

func TestTrackerBatchedCatchUp(t *testing.T) {
	// A node that misses packet 0 learns update 0 from packet 1 (k=2).
	tr := NewTracker()
	p := Payload{Updates: []Update{
		{Seq: 0, GeneratedAt: 0},
		{Seq: 1, GeneratedAt: 100 * time.Second},
	}}
	tr.Observe(p, 105*time.Second)
	if tr.Received() != 2 {
		t.Fatalf("received = %d, want 2", tr.Received())
	}
	lat0, _ := tr.Latency(0)
	if lat0 != 105*time.Second {
		t.Fatalf("catch-up latency = %v", lat0)
	}
}

func TestTrackerMissingUpdate(t *testing.T) {
	tr := NewTracker()
	if _, ok := tr.Latency(7); ok {
		t.Fatal("missing update reported present")
	}
}

func TestLatenciesCopy(t *testing.T) {
	tr := NewTracker()
	tr.Observe(Payload{Updates: []Update{{Seq: 0}}}, time.Second)
	m := tr.Latencies()
	m[0] = 0
	lat, _ := tr.Latency(0)
	if lat != time.Second {
		t.Fatal("Latencies exposed internal map")
	}
}

// Property: after n generations with batch size k, the payload always
// carries min(n, k) updates with contiguous trailing sequence numbers.
func TestPropertyBatchContents(t *testing.T) {
	check := func(rawK, rawN uint8) bool {
		k := int(rawK)%5 + 1
		n := int(rawN)%20 + 1
		s, err := NewSource(k)
		if err != nil {
			return false
		}
		var p Payload
		for i := 0; i < n; i++ {
			p = s.Generate(time.Duration(i) * time.Second)
		}
		want := k
		if n < k {
			want = n
		}
		if len(p.Updates) != want {
			return false
		}
		for i, u := range p.Updates {
			if u.Seq != n-want+i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTrackerRejectsSparseSeq pins the dense-seq invariant: sequence
// numbers outside [0, maxSeq) must fail loudly instead of growing the flat
// first-sight state toward OOM.
func TestTrackerRejectsSparseSeq(t *testing.T) {
	for _, seq := range []int{-1, maxSeq} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Observe with seq %d did not panic", seq)
				}
			}()
			NewTracker().Observe(Payload{Updates: []Update{{Seq: seq}}}, time.Second)
		}()
	}
}
