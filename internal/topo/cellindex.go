package topo

import (
	"math"
	"slices"
)

// CellIndex is a grid-bucket spatial index over a fixed set of points: the
// deployment square is divided into cells of side cellSize, and each point
// is filed under its cell. Range queries with radius <= cellSize touch at
// most the 3x3 block of cells around the query point instead of scanning
// every node, turning the O(N^2) pairwise neighbor construction of a random
// field into O(N * density).
//
// The index is flat — one counting-sort pass lays every bucket out in a
// single backing array — so building it costs O(N) time and three
// allocations regardless of field size.
type CellIndex struct {
	cellSize   float64
	cols, rows int
	// starts[c] .. starts[c+1] delimit cell c's slice of nodes.
	starts []int32
	nodes  []NodeID
	pts    []Point
}

// NewCellIndex buckets pts into cells of side cellSize covering [0,side) on
// both axes. cellSize must be positive; points outside the square are
// clamped into the border cells.
func NewCellIndex(pts []Point, side, cellSize float64) *CellIndex {
	ci := &CellIndex{}
	ci.build(pts, side, cellSize, nil)
	return ci
}

// build populates the index in place, reusing the starts/nodes arrays when
// their capacity allows — the pooled counterpart of NewCellIndex. fillScratch,
// when non-nil, supplies the counting-sort placement cursor's storage so a
// rebuilt index allocates nothing at steady state.
func (ci *CellIndex) build(pts []Point, side, cellSize float64, fillScratch *[]int32) {
	if cellSize <= 0 {
		panic("topo: cell size must be positive")
	}
	cols := int(side/cellSize) + 1
	if cols < 1 {
		cols = 1
	}
	ncells := cols * cols
	ci.cellSize = cellSize
	ci.cols, ci.rows = cols, cols
	ci.starts = grown(ci.starts, ncells+1)
	clear(ci.starts)
	ci.nodes = grown(ci.nodes, len(pts))
	ci.pts = pts
	// Counting sort: tally per cell, prefix-sum, then place.
	counts := ci.starts[1:] // reuse the starts array as the tally
	for _, p := range pts {
		counts[ci.cellOf(p)]++
	}
	for c := 1; c < len(counts); c++ {
		counts[c] += counts[c-1]
	}
	// starts is now the prefix sum shifted by one; fill buckets back to
	// front so each bucket ends up in ascending node order.
	var fill []int32
	if fillScratch != nil {
		*fillScratch = grown(*fillScratch, ncells)
		fill = *fillScratch
	} else {
		fill = make([]int32, ncells)
	}
	copy(fill, ci.starts[:ncells])
	for i, p := range pts {
		c := ci.cellOf(p)
		ci.nodes[fill[c]] = NodeID(i)
		fill[c]++
	}
}

// cellOf maps a point to its cell number, clamping out-of-square points.
func (ci *CellIndex) cellOf(p Point) int {
	cx := int(p.X / ci.cellSize)
	cy := int(p.Y / ci.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= ci.cols {
		cx = ci.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= ci.rows {
		cy = ci.rows - 1
	}
	return cy*ci.cols + cx
}

// ForEachWithin invokes fn for every indexed node within radius r of p
// (inclusive), in no particular order. r should be <= the index cell size
// for the 3x3 scan to be exhaustive; larger radii widen the scanned block
// accordingly, so correctness never depends on r.
func (ci *CellIndex) ForEachWithin(p Point, r float64, fn func(NodeID)) {
	span := int(math.Ceil(r / ci.cellSize))
	cx := int(p.X / ci.cellSize)
	cy := int(p.Y / ci.cellSize)
	for dy := -span; dy <= span; dy++ {
		y := cy + dy
		if y < 0 || y >= ci.rows {
			continue
		}
		for dx := -span; dx <= span; dx++ {
			x := cx + dx
			if x < 0 || x >= ci.cols {
				continue
			}
			c := y*ci.cols + x
			for _, id := range ci.nodes[ci.starts[c]:ci.starts[c+1]] {
				if ci.pts[id].Dist(p) <= r {
					fn(id)
				}
			}
		}
	}
}

// Within returns the indexed nodes within radius r of p in ascending ID
// order.
func (ci *CellIndex) Within(p Point, r float64) []NodeID {
	var out []NodeID
	ci.ForEachWithin(p, r, func(id NodeID) { out = append(out, id) })
	slices.Sort(out)
	return out
}
