// This file holds the non-uniform deployments. The paper evaluates only
// uniform random disks and square lattices; real sensor fields are rarely
// either. Field is a unit-disk graph over an arbitrary node placement in a
// rectangle, and the generators below produce the two deployment shapes the
// scenario-diversity extensions sweep: Gaussian-clustered fields (nodes
// scattered around a few deployment sites) and corridor/strip fields
// (pipelines, roads, tunnels — long thin regions whose broadcasts are
// forced through every gap).

package topo

import (
	"fmt"
	"math"
	"slices"

	"pbbf/internal/rng"
)

// Field is a unit-disk graph over an arbitrary placement of nodes in a
// width×height rectangle: an edge connects every pair of nodes within radio
// range. RandomDisk is the uniform square special case; Field backs the
// clustered and corridor deployments.
type Field struct {
	positions []Point
	neighbors [][]NodeID
	rangeM    float64
	w, h      float64
	index     *CellIndex
}

var _ Topology = (*Field)(nil)

// NewField builds the disk graph over the given placement. Positions are
// expected inside [0,w)×[0,h); the spatial index clamps strays into border
// cells, so out-of-rectangle points degrade performance, not correctness.
func NewField(positions []Point, w, h, rangeM float64) (*Field, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("topo: empty placement")
	}
	if rangeM <= 0 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("topo: range and extent must be positive, got R=%v w=%v h=%v", rangeM, w, h)
	}
	f := &Field{positions: positions, rangeM: rangeM, w: w, h: h}
	f.neighbors, f.index = diskAdjacency(positions, math.Max(w, h), rangeM)
	return f, nil
}

// diskAdjacency builds sorted unit-disk adjacency lists over positions via
// the grid-bucket index: each node scans only the cell block around it
// (O(N·Δ) total) and the whole adjacency lives in one backing array. This
// is the construction NewRandomDisk uses; both produce lists bit-identical
// to the original pairwise builder.
func diskAdjacency(positions []Point, extent, rangeM float64) ([][]NodeID, *CellIndex) {
	n := len(positions)
	index := NewCellIndex(positions, extent, rangeM)
	neighbors := make([][]NodeID, n)
	degree := make([]int32, n)
	total := 0
	for i := 0; i < n; i++ {
		k := 0
		index.ForEachWithin(positions[i], rangeM, func(NodeID) { k++ })
		degree[i] = int32(k - 1) // exclude self
		total += k - 1
	}
	backing := make([]NodeID, 0, total)
	for i := 0; i < n; i++ {
		start := len(backing)
		index.ForEachWithin(positions[i], rangeM, func(j NodeID) {
			if int(j) != i {
				backing = append(backing, j)
			}
		})
		list := backing[start : start+int(degree[i]) : start+int(degree[i])]
		slices.Sort(list)
		neighbors[i] = list
	}
	return neighbors, index
}

// N returns the node count.
func (f *Field) N() int { return len(f.positions) }

// Neighbors returns the nodes within radio range of id.
func (f *Field) Neighbors(id NodeID) []NodeID { return f.neighbors[id] }

// Position returns the node's placement.
func (f *Field) Position(id NodeID) Point { return f.positions[id] }

// Range returns the radio range in meters.
func (f *Field) Range() float64 { return f.rangeM }

// Width and Height return the deployment rectangle's extent.
func (f *Field) Width() float64  { return f.w }
func (f *Field) Height() float64 { return f.h }

// Index returns the field's grid-bucket spatial index.
func (f *Field) Index() *CellIndex { return f.index }

// AverageDegree returns the mean neighbor count, the empirical counterpart
// of the density Δ.
func (f *Field) AverageDegree() float64 {
	total := 0
	for _, n := range f.neighbors {
		total += len(n)
	}
	return float64(total) / float64(len(f.neighbors))
}

// ClusterConfig parameterizes a Gaussian-clustered deployment: nodes are
// scattered with a normal spread around a handful of cluster centers
// (deployment sites), instead of uniformly over the whole region.
type ClusterConfig struct {
	// N is the number of nodes.
	N int
	// Range is the radio range R in meters.
	Range float64
	// Area is the deployment region's area in m² (square region, as in
	// DiskConfig, so AreaForDensity applies unchanged).
	Area float64
	// Clusters is the number of cluster centers.
	Clusters int
	// Sigma is the per-axis standard deviation (meters) of node positions
	// around their cluster center. Small sigma relative to Range makes
	// tight, sparsely interconnected blobs; large sigma degenerates toward
	// the uniform field.
	Sigma float64
}

// Validate checks the configuration.
func (c ClusterConfig) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("topo: node count must be positive, got %d", c.N)
	}
	if c.Range <= 0 || c.Area <= 0 {
		return fmt.Errorf("topo: range and area must be positive, got R=%v A=%v", c.Range, c.Area)
	}
	if c.Clusters <= 0 || c.Clusters > c.N {
		return fmt.Errorf("topo: cluster count %d outside [1,%d]", c.Clusters, c.N)
	}
	if c.Sigma <= 0 {
		return fmt.Errorf("topo: cluster sigma %v must be positive", c.Sigma)
	}
	return nil
}

// NewGaussianClusters places cfg.Clusters centers uniformly at random in
// the square region, assigns nodes to centers round-robin (so clusters are
// balanced regardless of N), and scatters each node around its center with
// an isotropic Gaussian of standard deviation cfg.Sigma, clamped into the
// region. Clustered draws may be disconnected far more often than uniform
// ones; use NewConnectedField for the retry loop.
func NewGaussianClusters(cfg ClusterConfig, r *rng.Source) (*Field, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	side := math.Sqrt(cfg.Area)
	centers := make([]Point, cfg.Clusters)
	for i := range centers {
		centers[i] = Point{X: r.Float64() * side, Y: r.Float64() * side}
	}
	positions := make([]Point, cfg.N)
	for i := range positions {
		c := centers[i%cfg.Clusters]
		positions[i] = Point{
			X: clampTo(c.X+cfg.Sigma*r.NormFloat64(), side),
			Y: clampTo(c.Y+cfg.Sigma*r.NormFloat64(), side),
		}
	}
	return NewField(positions, side, side, cfg.Range)
}

// clampTo clamps v into [0, limit).
func clampTo(v, limit float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= limit {
		return math.Nextafter(limit, 0)
	}
	return v
}

// CorridorConfig parameterizes a corridor/strip deployment: the same area
// as a square field, stretched into a length/width ratio of Aspect. High
// aspect ratios force every broadcast through a chain of narrow gaps — the
// opposite stress from clustering.
type CorridorConfig struct {
	// N is the number of nodes.
	N int
	// Range is the radio range R in meters.
	Range float64
	// Area is the deployment area in m²; the rectangle is
	// sqrt(Area·Aspect) × sqrt(Area/Aspect), so density Δ = πR²N/A is
	// directly comparable with the square deployments.
	Area float64
	// Aspect is the length/width ratio, ≥ 1 (1 reproduces the square).
	Aspect float64
}

// Validate checks the configuration.
func (c CorridorConfig) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("topo: node count must be positive, got %d", c.N)
	}
	if c.Range <= 0 || c.Area <= 0 {
		return fmt.Errorf("topo: range and area must be positive, got R=%v A=%v", c.Range, c.Area)
	}
	if c.Aspect < 1 {
		return fmt.Errorf("topo: corridor aspect %v must be >= 1", c.Aspect)
	}
	return nil
}

// NewCorridor places nodes uniformly at random in the Aspect-stretched
// rectangle. Long corridors disconnect whenever a lengthwise gap exceeds
// the radio range; use NewConnectedField for the retry loop.
func NewCorridor(cfg CorridorConfig, r *rng.Source) (*Field, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := math.Sqrt(cfg.Area * cfg.Aspect)
	h := cfg.Area / w
	positions := make([]Point, cfg.N)
	for i := range positions {
		positions[i] = Point{X: r.Float64() * w, Y: r.Float64() * h}
	}
	return NewField(positions, w, h, cfg.Range)
}

// NewConnectedField retries gen until it returns a connected field, up to
// maxTries attempts — the Field counterpart of NewConnectedRandomDisk. The
// generator draws from r on every attempt, so each try sees a fresh
// placement.
func NewConnectedField(gen func(*rng.Source) (*Field, error), r *rng.Source, maxTries int) (*Field, error) {
	for try := 0; try < maxTries; try++ {
		f, err := gen(r)
		if err != nil {
			return nil, err
		}
		if Connected(f) {
			return f, nil
		}
	}
	return nil, fmt.Errorf("topo: no connected placement after %d tries", maxTries)
}
