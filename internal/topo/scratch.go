// This file holds Scratch, the pooled topology builder. Every generator in
// the package has a Scratch counterpart that performs the same random draws
// and produces bit-identical adjacency, but builds into buffers owned by the
// Scratch: positions, neighbor lists, the single backing array, the spatial
// index (including its counting-sort cursor), the BFS frontier, and the
// topology value itself are all reused across builds. A sweep running
// thousands of points through one Scratch constructs topologies with zero
// steady-state allocation.
//
// A Scratch holds ONE topology at a time: any build or BFS query invalidates
// the previously returned topology and distance slice. Scratches are not
// safe for concurrent use; give each worker its own.

package topo

import (
	"fmt"
	"math"
	"slices"

	"pbbf/internal/rng"
)

// grown returns s resized to length n, reusing its capacity when possible.
// The contents are unspecified; callers overwrite every element.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Scratch owns the reusable buffers for pooled topology construction and
// graph queries. The zero value is ready to use.
type Scratch struct {
	positions []Point
	centers   []Point
	neighbors [][]NodeID
	backing   []NodeID
	degree    []int32
	fill      []int32
	index     CellIndex
	disk      RandomDisk
	field     Field
	dist      []int
	queue     []NodeID
}

// NewScratch returns an empty scratch; buffers grow to fit on first use.
func NewScratch() *Scratch { return &Scratch{} }

// diskAdjacency is the package-level diskAdjacency building into the
// scratch's buffers: same cell-index scan, same single-backing-array layout,
// same ascending sort, so the lists are bit-identical to the unpooled
// construction.
func (sc *Scratch) diskAdjacency(positions []Point, extent, rangeM float64) ([][]NodeID, *CellIndex) {
	n := len(positions)
	sc.index.build(positions, extent, rangeM, &sc.fill)
	index := &sc.index
	sc.neighbors = grown(sc.neighbors, n)
	sc.degree = grown(sc.degree, n)
	neighbors, degree := sc.neighbors, sc.degree
	total := 0
	for i := 0; i < n; i++ {
		k := 0
		index.ForEachWithin(positions[i], rangeM, func(NodeID) { k++ })
		degree[i] = int32(k - 1) // exclude self
		total += k - 1
	}
	if cap(sc.backing) < total {
		sc.backing = make([]NodeID, 0, total)
	}
	backing := sc.backing[:0]
	for i := 0; i < n; i++ {
		start := len(backing)
		index.ForEachWithin(positions[i], rangeM, func(j NodeID) {
			if int(j) != i {
				backing = append(backing, j)
			}
		})
		list := backing[start : start+int(degree[i]) : start+int(degree[i])]
		slices.Sort(list)
		neighbors[i] = list
	}
	sc.backing = backing
	return neighbors, index
}

// RandomDisk is NewRandomDisk building into the scratch: identical draws
// (two Float64 per node, in node order) and identical adjacency. The
// returned topology is valid until the next build on sc.
func (sc *Scratch) RandomDisk(cfg DiskConfig, r *rng.Source) (*RandomDisk, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("topo: node count must be positive, got %d", cfg.N)
	}
	if cfg.Range <= 0 || cfg.Area <= 0 {
		return nil, fmt.Errorf("topo: range and area must be positive, got R=%v A=%v", cfg.Range, cfg.Area)
	}
	side := math.Sqrt(cfg.Area)
	sc.positions = grown(sc.positions, cfg.N)
	for i := range sc.positions {
		sc.positions[i] = Point{X: r.Float64() * side, Y: r.Float64() * side}
	}
	neighbors, index := sc.diskAdjacency(sc.positions, side, cfg.Range)
	sc.disk = RandomDisk{
		positions: sc.positions,
		neighbors: neighbors,
		rangeM:    cfg.Range,
		side:      side,
		index:     index,
	}
	return &sc.disk, nil
}

// ConnectedRandomDisk is NewConnectedRandomDisk on the scratch: the same
// retry loop over the same draws, with the connectivity check running on the
// scratch's BFS buffers.
func (sc *Scratch) ConnectedRandomDisk(cfg DiskConfig, r *rng.Source, maxTries int) (*RandomDisk, error) {
	for try := 0; try < maxTries; try++ {
		d, err := sc.RandomDisk(cfg, r)
		if err != nil {
			return nil, err
		}
		if sc.Connected(d) {
			return d, nil
		}
	}
	return nil, fmt.Errorf("topo: no connected placement for N=%d Δ=%.1f after %d tries",
		cfg.N, cfg.Density(), maxTries)
}

// GaussianClusters is NewGaussianClusters on the scratch: identical center
// and scatter draws, pooled placement and adjacency.
func (sc *Scratch) GaussianClusters(cfg ClusterConfig, r *rng.Source) (*Field, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	side := math.Sqrt(cfg.Area)
	sc.centers = grown(sc.centers, cfg.Clusters)
	for i := range sc.centers {
		sc.centers[i] = Point{X: r.Float64() * side, Y: r.Float64() * side}
	}
	sc.positions = grown(sc.positions, cfg.N)
	for i := range sc.positions {
		c := sc.centers[i%cfg.Clusters]
		sc.positions[i] = Point{
			X: clampTo(c.X+cfg.Sigma*r.NormFloat64(), side),
			Y: clampTo(c.Y+cfg.Sigma*r.NormFloat64(), side),
		}
	}
	return sc.buildField(sc.positions, side, side, cfg.Range)
}

// Corridor is NewCorridor on the scratch.
func (sc *Scratch) Corridor(cfg CorridorConfig, r *rng.Source) (*Field, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := math.Sqrt(cfg.Area * cfg.Aspect)
	h := cfg.Area / w
	sc.positions = grown(sc.positions, cfg.N)
	for i := range sc.positions {
		sc.positions[i] = Point{X: r.Float64() * w, Y: r.Float64() * h}
	}
	return sc.buildField(sc.positions, w, h, cfg.Range)
}

// buildField is NewField into the scratch's Field shell.
func (sc *Scratch) buildField(positions []Point, w, h, rangeM float64) (*Field, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("topo: empty placement")
	}
	if rangeM <= 0 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("topo: range and extent must be positive, got R=%v w=%v h=%v", rangeM, w, h)
	}
	neighbors, index := sc.diskAdjacency(positions, math.Max(w, h), rangeM)
	sc.field = Field{positions: positions, neighbors: neighbors, rangeM: rangeM, w: w, h: h, index: index}
	return &sc.field, nil
}

// ConnectedField is NewConnectedField on the scratch: gen should build into
// this same scratch, and connectivity is checked with the scratch's BFS
// buffers.
func (sc *Scratch) ConnectedField(gen func(*rng.Source) (*Field, error), r *rng.Source, maxTries int) (*Field, error) {
	for try := 0; try < maxTries; try++ {
		f, err := gen(r)
		if err != nil {
			return nil, err
		}
		if sc.Connected(f) {
			return f, nil
		}
	}
	return nil, fmt.Errorf("topo: no connected placement after %d tries", maxTries)
}

// HopDistances is the package-level HopDistances filling the scratch's
// buffers; identical BFS visit order. The returned slice is valid until the
// next build or query on sc.
func (sc *Scratch) HopDistances(t Topology, src NodeID) []int {
	n := t.N()
	sc.dist = grown(sc.dist, n)
	dist := sc.dist
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	if cap(sc.queue) < n {
		sc.queue = make([]NodeID, 0, n)
	}
	queue := append(sc.queue[:0], src)
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, nb := range t.Neighbors(cur) {
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	sc.queue = queue
	return dist
}

// Connected is the package-level Connected using the scratch's BFS buffers.
func (sc *Scratch) Connected(t Topology) bool {
	if t.N() == 0 {
		return false
	}
	for _, d := range sc.HopDistances(t, 0) {
		if d < 0 {
			return false
		}
	}
	return true
}
