// Package topo defines the network topologies the paper evaluates on:
// square-lattice grids (Section 4, analysis) and uniform random placements
// with a disk radio range (Section 5, ns-2-style simulation), plus the graph
// utilities (BFS hop distances, connectivity) the experiments need.
package topo

import (
	"fmt"
	"math"

	"pbbf/internal/rng"
)

// NodeID identifies a node within a topology; IDs are dense in [0, N).
type NodeID int

// Point is a position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(o Point) float64 {
	dx, dy := p.X-o.X, p.Y-o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Topology is a static connectivity graph over N nodes. Neighbor slices are
// owned by the topology and must not be mutated by callers.
type Topology interface {
	// N returns the number of nodes.
	N() int
	// Neighbors returns the nodes within communication range of id.
	Neighbors(id NodeID) []NodeID
	// Position returns the node's location (meters).
	Position(id NodeID) Point
}

// Grid is a W×H square lattice with 4-neighbor connectivity and no
// wrap-around, matching the paper's analysis topology ("a square lattice
// with no wrapping on the axes").
type Grid struct {
	w, h      int
	neighbors [][]NodeID
}

var _ Topology = (*Grid)(nil)

// NewGrid constructs a W×H grid. Spacing between lattice points is 1 meter;
// positions exist only so grids satisfy Topology.
func NewGrid(w, h int) (*Grid, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("topo: grid dimensions must be positive, got %dx%d", w, h)
	}
	g := &Grid{w: w, h: h, neighbors: make([][]NodeID, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := y*w + x
			nbrs := make([]NodeID, 0, 4)
			if x > 0 {
				nbrs = append(nbrs, NodeID(id-1))
			}
			if x < w-1 {
				nbrs = append(nbrs, NodeID(id+1))
			}
			if y > 0 {
				nbrs = append(nbrs, NodeID(id-w))
			}
			if y < h-1 {
				nbrs = append(nbrs, NodeID(id+w))
			}
			g.neighbors[id] = nbrs
		}
	}
	return g, nil
}

// MustGrid is NewGrid for statically known-good dimensions.
func MustGrid(w, h int) *Grid {
	g, err := NewGrid(w, h)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the node count (W*H).
func (g *Grid) N() int { return g.w * g.h }

// Width returns the grid width.
func (g *Grid) Width() int { return g.w }

// Height returns the grid height.
func (g *Grid) Height() int { return g.h }

// Neighbors returns the up-to-four lattice neighbors of id.
func (g *Grid) Neighbors(id NodeID) []NodeID { return g.neighbors[id] }

// Position returns lattice coordinates as a Point.
func (g *Grid) Position(id NodeID) Point {
	return Point{X: float64(int(id) % g.w), Y: float64(int(id) / g.w)}
}

// Center returns the node nearest the grid center; the paper places the
// broadcast source "as near to the center of the grid as possible".
func (g *Grid) Center() NodeID {
	return NodeID((g.h/2)*g.w + g.w/2)
}

// At returns the node at lattice coordinates (x, y).
func (g *Grid) At(x, y int) NodeID { return NodeID(y*g.w + x) }

// RandomDisk is a uniform random placement of N nodes in a square region,
// with an edge between every pair of nodes within radio range R. This is the
// unit-disk graph model the paper's ns-2 simulations use.
type RandomDisk struct {
	positions []Point
	neighbors [][]NodeID
	rangeM    float64
	side      float64
	index     *CellIndex
}

var _ Topology = (*RandomDisk)(nil)

// DiskConfig parameterizes RandomDisk generation. The paper fixes N and the
// radio range and varies the deployment area A to obtain a target density
// Δ = πR²N/A (Equation 13); AreaForDensity performs that inversion.
type DiskConfig struct {
	N     int     // number of nodes
	Range float64 // radio range R in meters
	Area  float64 // deployment area A in m² (square region)
}

// AreaForDensity returns the square deployment area that yields the target
// density delta for n nodes of the given radio range (Equation 13 inverted).
func AreaForDensity(n int, rangeM, delta float64) float64 {
	return math.Pi * rangeM * rangeM * float64(n) / delta
}

// Density returns Δ = πR²N/A for the configuration (Equation 13). Δ is
// approximately the expected number of one-hop neighbors of a node.
func (c DiskConfig) Density() float64 {
	return math.Pi * c.Range * c.Range * float64(c.N) / c.Area
}

// NewRandomDisk places nodes uniformly at random in a square of area
// cfg.Area and connects pairs within cfg.Range.
func NewRandomDisk(cfg DiskConfig, r *rng.Source) (*RandomDisk, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("topo: node count must be positive, got %d", cfg.N)
	}
	if cfg.Range <= 0 || cfg.Area <= 0 {
		return nil, fmt.Errorf("topo: range and area must be positive, got R=%v A=%v", cfg.Range, cfg.Area)
	}
	side := math.Sqrt(cfg.Area)
	d := &RandomDisk{
		positions: make([]Point, cfg.N),
		rangeM:    cfg.Range,
		side:      side,
	}
	for i := range d.positions {
		d.positions[i] = Point{X: r.Float64() * side, Y: r.Float64() * side}
	}
	// Adjacency via the grid-bucket index (shared with Field): each node
	// scans only the 3x3 cell block around it (O(N·Δ) total) instead of
	// every other node (O(N²)), and the whole adjacency lives in one
	// backing array. Lists are sorted ascending, matching the order the
	// pairwise construction produced, so topologies are bit-identical to
	// the original builder.
	d.neighbors, d.index = diskAdjacency(d.positions, side, cfg.Range)
	return d, nil
}

// Index returns the topology's grid-bucket spatial index, usable for range
// queries beyond the precomputed unit-disk adjacency (e.g. interference or
// mobility extensions).
func (d *RandomDisk) Index() *CellIndex { return d.index }

// NewConnectedRandomDisk retries NewRandomDisk until the graph is connected,
// up to maxTries attempts. The paper's scenarios are implicitly connected
// (disconnected deployments make reliability metrics meaningless).
func NewConnectedRandomDisk(cfg DiskConfig, r *rng.Source, maxTries int) (*RandomDisk, error) {
	for try := 0; try < maxTries; try++ {
		d, err := NewRandomDisk(cfg, r)
		if err != nil {
			return nil, err
		}
		if Connected(d) {
			return d, nil
		}
	}
	return nil, fmt.Errorf("topo: no connected placement for N=%d Δ=%.1f after %d tries",
		cfg.N, cfg.Density(), maxTries)
}

// N returns the node count.
func (d *RandomDisk) N() int { return len(d.positions) }

// Neighbors returns the nodes within radio range of id.
func (d *RandomDisk) Neighbors(id NodeID) []NodeID { return d.neighbors[id] }

// Position returns the node's placement.
func (d *RandomDisk) Position(id NodeID) Point { return d.positions[id] }

// Range returns the radio range in meters.
func (d *RandomDisk) Range() float64 { return d.rangeM }

// Side returns the side length of the square deployment region.
func (d *RandomDisk) Side() float64 { return d.side }

// AverageDegree returns the mean neighbor count, the empirical counterpart
// of Δ.
func (d *RandomDisk) AverageDegree() float64 {
	total := 0
	for _, n := range d.neighbors {
		total += len(n)
	}
	return float64(total) / float64(len(d.neighbors))
}

// HopDistances returns BFS hop counts from src to every node; unreachable
// nodes get -1.
func HopDistances(t Topology, src NodeID) []int {
	dist := make([]int, t.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, t.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.Neighbors(cur) {
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// Connected reports whether every node is reachable from node 0.
func Connected(t Topology) bool {
	if t.N() == 0 {
		return false
	}
	for _, d := range HopDistances(t, 0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// NodesAtHop returns the nodes whose BFS distance from src equals hops.
func NodesAtHop(t Topology, src NodeID, hops int) []NodeID {
	dist := HopDistances(t, src)
	var out []NodeID
	for id, d := range dist {
		if d == hops {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// EdgeCount returns the number of undirected edges.
func EdgeCount(t Topology) int {
	total := 0
	for id := 0; id < t.N(); id++ {
		total += len(t.Neighbors(NodeID(id)))
	}
	return total / 2
}
