package topo

import (
	"slices"
	"testing"
	"testing/quick"

	"pbbf/internal/rng"
)

// bruteWithin is the O(N) reference for range queries.
func bruteWithin(pts []Point, p Point, r float64) []NodeID {
	var out []NodeID
	for i, q := range pts {
		if q.Dist(p) <= r {
			out = append(out, NodeID(i))
		}
	}
	return out
}

func TestCellIndexMatchesBruteForce(t *testing.T) {
	check := func(seed uint64, rawN uint8) bool {
		r := rng.New(seed)
		n := int(rawN)%150 + 2
		side := 100.0
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: r.Float64() * side, Y: r.Float64() * side}
		}
		radius := 5 + r.Float64()*40
		idx := NewCellIndex(pts, side, radius)
		for trial := 0; trial < 10; trial++ {
			q := Point{X: r.Float64() * side, Y: r.Float64() * side}
			got := idx.Within(q, radius)
			want := bruteWithin(pts, q, radius)
			if !slices.Equal(got, want) {
				t.Logf("query %+v r=%v: got %v want %v", q, radius, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCellIndexRadiusLargerThanCell exercises queries whose radius exceeds
// the cell size, which must widen the scanned block rather than miss nodes.
func TestCellIndexRadiusLargerThanCell(t *testing.T) {
	r := rng.New(5)
	side := 100.0
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{X: r.Float64() * side, Y: r.Float64() * side}
	}
	idx := NewCellIndex(pts, side, 10)
	q := Point{X: 50, Y: 50}
	got := idx.Within(q, 35)
	want := bruteWithin(pts, q, 35)
	if !slices.Equal(got, want) {
		t.Fatalf("wide query: got %d nodes, want %d", len(got), len(want))
	}
}

// TestRandomDiskMatchesPairwiseBuilder pins the bucket-index construction
// to the original O(N^2) builder: identical positions, identical adjacency,
// identical neighbor order, for a spread of densities and sizes.
func TestRandomDiskMatchesPairwiseBuilder(t *testing.T) {
	for _, tc := range []struct {
		n     int
		delta float64
		seed  uint64
	}{
		{10, 6, 1}, {50, 10, 2}, {120, 14, 3}, {250, 8, 4},
	} {
		cfg := DiskConfig{N: tc.n, Range: 30, Area: AreaForDensity(tc.n, 30, tc.delta)}
		d, err := NewRandomDisk(cfg, rng.New(tc.seed))
		if err != nil {
			t.Fatal(err)
		}
		// Reference adjacency from the pairwise construction, which appends
		// in ascending-ID order by both loop directions.
		ref := make([][]NodeID, tc.n)
		for i := 0; i < tc.n; i++ {
			for j := i + 1; j < tc.n; j++ {
				if d.Position(NodeID(i)).Dist(d.Position(NodeID(j))) <= cfg.Range {
					ref[i] = append(ref[i], NodeID(j))
					ref[j] = append(ref[j], NodeID(i))
				}
			}
		}
		for i := 0; i < tc.n; i++ {
			if !slices.Equal(d.Neighbors(NodeID(i)), ref[i]) {
				t.Fatalf("n=%d Δ=%v: node %d adjacency %v, pairwise %v",
					tc.n, tc.delta, i, d.Neighbors(NodeID(i)), ref[i])
			}
		}
	}
}

func TestRandomDiskIndexExposed(t *testing.T) {
	cfg := DiskConfig{N: 40, Range: 30, Area: AreaForDensity(40, 30, 10)}
	d, err := NewRandomDisk(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	idx := d.Index()
	if idx == nil {
		t.Fatal("no index on RandomDisk")
	}
	// A range query at a node's own position must return the node plus its
	// unit-disk neighbors.
	for id := 0; id < d.N(); id++ {
		got := idx.Within(d.Position(NodeID(id)), d.Range())
		want := append([]NodeID{NodeID(id)}, d.Neighbors(NodeID(id))...)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("node %d: index query %v, adjacency %v", id, got, want)
		}
	}
}

func BenchmarkRandomDiskBuild500(b *testing.B) {
	cfg := DiskConfig{N: 500, Range: 30, Area: AreaForDensity(500, 30, 10)}
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewRandomDisk(cfg, r); err != nil {
			b.Fatal(err)
		}
	}
}
