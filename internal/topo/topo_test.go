package topo

import (
	"math"
	"testing"
	"testing/quick"

	"pbbf/internal/rng"
)

func TestNewGridValidation(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 3}, {3, -1}} {
		if _, err := NewGrid(dims[0], dims[1]); err == nil {
			t.Fatalf("NewGrid(%d,%d) succeeded", dims[0], dims[1])
		}
	}
}

func TestGridBasics(t *testing.T) {
	g := MustGrid(3, 4)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Width() != 3 || g.Height() != 4 {
		t.Fatalf("dims = %dx%d", g.Width(), g.Height())
	}
}

func TestGridCornerDegree(t *testing.T) {
	g := MustGrid(5, 5)
	corners := []NodeID{g.At(0, 0), g.At(4, 0), g.At(0, 4), g.At(4, 4)}
	for _, c := range corners {
		if got := len(g.Neighbors(c)); got != 2 {
			t.Fatalf("corner %d degree %d, want 2", c, got)
		}
	}
}

func TestGridEdgeDegree(t *testing.T) {
	g := MustGrid(5, 5)
	if got := len(g.Neighbors(g.At(2, 0))); got != 3 {
		t.Fatalf("edge node degree %d, want 3", got)
	}
	if got := len(g.Neighbors(g.At(2, 2))); got != 4 {
		t.Fatalf("interior node degree %d, want 4", got)
	}
}

func TestGridNeighborsSymmetric(t *testing.T) {
	g := MustGrid(7, 3)
	for id := 0; id < g.N(); id++ {
		for _, nb := range g.Neighbors(NodeID(id)) {
			found := false
			for _, back := range g.Neighbors(nb) {
				if back == NodeID(id) {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not symmetric", id, nb)
			}
		}
	}
}

func TestGridNoWrap(t *testing.T) {
	g := MustGrid(4, 4)
	// Node (3,0) must not neighbor (0,1) (which would be id 4, wrap-around).
	for _, nb := range g.Neighbors(g.At(3, 0)) {
		if nb == g.At(0, 1) {
			t.Fatal("grid wraps around x axis")
		}
	}
}

func TestGridCenter(t *testing.T) {
	g := MustGrid(5, 5)
	if g.Center() != g.At(2, 2) {
		t.Fatalf("center = %d", g.Center())
	}
	g2 := MustGrid(4, 4)
	if g2.Center() != g2.At(2, 2) {
		t.Fatalf("even center = %d", g2.Center())
	}
}

func TestGridPositions(t *testing.T) {
	g := MustGrid(3, 3)
	p := g.Position(g.At(2, 1))
	if p.X != 2 || p.Y != 1 {
		t.Fatalf("position = %+v", p)
	}
}

func TestGridEdgeCount(t *testing.T) {
	// W×H grid has W(H-1) + H(W-1) edges.
	g := MustGrid(10, 7)
	want := 10*6 + 7*9
	if got := EdgeCount(g); got != want {
		t.Fatalf("edges = %d, want %d", got, want)
	}
}

func TestHopDistancesGrid(t *testing.T) {
	g := MustGrid(5, 5)
	dist := HopDistances(g, g.At(0, 0))
	if dist[g.At(4, 4)] != 8 {
		t.Fatalf("corner-to-corner distance = %d, want 8", dist[g.At(4, 4)])
	}
	if dist[g.At(0, 0)] != 0 {
		t.Fatal("self distance nonzero")
	}
	// Manhattan distance on a full grid.
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			if dist[g.At(x, y)] != x+y {
				t.Fatalf("dist(%d,%d) = %d, want %d", x, y, dist[g.At(x, y)], x+y)
			}
		}
	}
}

func TestNodesAtHop(t *testing.T) {
	g := MustGrid(5, 5)
	nodes := NodesAtHop(g, g.Center(), 1)
	if len(nodes) != 4 {
		t.Fatalf("nodes at hop 1 from center = %d, want 4", len(nodes))
	}
	zero := NodesAtHop(g, g.Center(), 100)
	if len(zero) != 0 {
		t.Fatalf("nodes at hop 100 = %d, want 0", len(zero))
	}
}

func TestConnectedGrid(t *testing.T) {
	if !Connected(MustGrid(6, 6)) {
		t.Fatal("grid reported disconnected")
	}
}

func TestDiskConfigValidation(t *testing.T) {
	r := rng.New(1)
	bad := []DiskConfig{
		{N: 0, Range: 1, Area: 1},
		{N: 5, Range: 0, Area: 1},
		{N: 5, Range: 1, Area: 0},
	}
	for _, cfg := range bad {
		if _, err := NewRandomDisk(cfg, r); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestAreaForDensityRoundTrip(t *testing.T) {
	area := AreaForDensity(50, 30, 10)
	cfg := DiskConfig{N: 50, Range: 30, Area: area}
	if got := cfg.Density(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("density round trip = %v", got)
	}
}

func TestRandomDiskPositionsInBounds(t *testing.T) {
	r := rng.New(2)
	cfg := DiskConfig{N: 100, Range: 30, Area: AreaForDensity(100, 30, 10)}
	d, err := NewRandomDisk(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < d.N(); id++ {
		p := d.Position(NodeID(id))
		if p.X < 0 || p.X > d.Side() || p.Y < 0 || p.Y > d.Side() {
			t.Fatalf("node %d at %+v outside [0,%v]²", id, p, d.Side())
		}
	}
}

func TestRandomDiskEdgesRespectRange(t *testing.T) {
	r := rng.New(3)
	cfg := DiskConfig{N: 80, Range: 25, Area: AreaForDensity(80, 25, 12)}
	d, err := NewRandomDisk(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < d.N(); id++ {
		for _, nb := range d.Neighbors(NodeID(id)) {
			if dist := d.Position(NodeID(id)).Dist(d.Position(nb)); dist > cfg.Range+1e-9 {
				t.Fatalf("edge %d-%d spans %v > range %v", id, nb, dist, cfg.Range)
			}
		}
	}
	// And all in-range pairs are edges.
	for i := 0; i < d.N(); i++ {
		for j := i + 1; j < d.N(); j++ {
			inRange := d.Position(NodeID(i)).Dist(d.Position(NodeID(j))) <= cfg.Range
			isEdge := false
			for _, nb := range d.Neighbors(NodeID(i)) {
				if nb == NodeID(j) {
					isEdge = true
				}
			}
			if inRange != isEdge {
				t.Fatalf("pair %d,%d: inRange=%v isEdge=%v", i, j, inRange, isEdge)
			}
		}
	}
}

func TestRandomDiskDeterministic(t *testing.T) {
	cfg := DiskConfig{N: 50, Range: 30, Area: AreaForDensity(50, 30, 10)}
	d1, err := NewRandomDisk(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewRandomDisk(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < d1.N(); id++ {
		if d1.Position(NodeID(id)) != d2.Position(NodeID(id)) {
			t.Fatalf("node %d placed differently across identical seeds", id)
		}
	}
}

func TestRandomDiskAverageDegreeNearDensity(t *testing.T) {
	// With many nodes the empirical mean degree approaches Δ (boundary
	// effects bias it slightly low).
	r := rng.New(11)
	const delta = 12.0
	cfg := DiskConfig{N: 2000, Range: 20, Area: AreaForDensity(2000, 20, delta)}
	d, err := NewRandomDisk(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	got := d.AverageDegree()
	if got < delta*0.75 || got > delta*1.05 {
		t.Fatalf("average degree %v far from Δ=%v", got, delta)
	}
}

func TestNewConnectedRandomDisk(t *testing.T) {
	r := rng.New(5)
	cfg := DiskConfig{N: 50, Range: 30, Area: AreaForDensity(50, 30, 10)}
	d, err := NewConnectedRandomDisk(cfg, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !Connected(d) {
		t.Fatal("result not connected")
	}
}

func TestNewConnectedRandomDiskGivesUp(t *testing.T) {
	r := rng.New(6)
	// Δ≈0.03: essentially no edges, never connected.
	cfg := DiskConfig{N: 40, Range: 1, Area: AreaForDensity(40, 1, 0.03)}
	if _, err := NewConnectedRandomDisk(cfg, r, 3); err == nil {
		t.Fatal("expected failure for ultra-sparse config")
	}
}

func TestPointDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("dist = %v", d)
	}
}

// Property: BFS distances satisfy the triangle-ish property along edges —
// adjacent nodes differ by at most 1 hop — and distances grow from the root.
func TestPropertyBFSConsistency(t *testing.T) {
	check := func(seed uint64, rawW, rawH uint8) bool {
		w := int(rawW)%12 + 2
		h := int(rawH)%12 + 2
		g := MustGrid(w, h)
		src := NodeID(seed % uint64(g.N()))
		dist := HopDistances(g, src)
		if dist[src] != 0 {
			return false
		}
		for id := 0; id < g.N(); id++ {
			for _, nb := range g.Neighbors(NodeID(id)) {
				diff := dist[id] - dist[nb]
				if diff < -1 || diff > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: random disk graphs are undirected (symmetric neighbor lists).
func TestPropertyDiskSymmetric(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		cfg := DiskConfig{N: 40, Range: 30, Area: AreaForDensity(40, 30, 8)}
		d, err := NewRandomDisk(cfg, r)
		if err != nil {
			return false
		}
		for id := 0; id < d.N(); id++ {
			for _, nb := range d.Neighbors(NodeID(id)) {
				found := false
				for _, back := range d.Neighbors(nb) {
					if back == NodeID(id) {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGridBFS75(b *testing.B) {
	g := MustGrid(75, 75)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HopDistances(g, g.Center())
	}
}

func BenchmarkRandomDiskBuild(b *testing.B) {
	cfg := DiskConfig{N: 50, Range: 30, Area: AreaForDensity(50, 30, 10)}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = NewRandomDisk(cfg, r)
	}
}
