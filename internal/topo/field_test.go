package topo

import (
	"math"
	"testing"

	"pbbf/internal/rng"
)

func clusterCfg(n int, sigma float64) ClusterConfig {
	return ClusterConfig{
		N:        n,
		Range:    30,
		Area:     AreaForDensity(n, 30, 14),
		Clusters: 4,
		Sigma:    sigma,
	}
}

func corridorCfg(n int, aspect float64) CorridorConfig {
	return CorridorConfig{
		N:      n,
		Range:  30,
		Area:   AreaForDensity(n, 30, 16),
		Aspect: aspect,
	}
}

func TestFieldConfigValidation(t *testing.T) {
	r := rng.New(1)
	bad := []ClusterConfig{
		{N: 0, Range: 30, Area: 100, Clusters: 2, Sigma: 5},
		{N: 10, Range: 0, Area: 100, Clusters: 2, Sigma: 5},
		{N: 10, Range: 30, Area: 0, Clusters: 2, Sigma: 5},
		{N: 10, Range: 30, Area: 100, Clusters: 0, Sigma: 5},
		{N: 10, Range: 30, Area: 100, Clusters: 11, Sigma: 5},
		{N: 10, Range: 30, Area: 100, Clusters: 2, Sigma: 0},
	}
	for _, cfg := range bad {
		if _, err := NewGaussianClusters(cfg, r); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	badC := []CorridorConfig{
		{N: 0, Range: 30, Area: 100, Aspect: 4},
		{N: 10, Range: -1, Area: 100, Aspect: 4},
		{N: 10, Range: 30, Area: -5, Aspect: 4},
		{N: 10, Range: 30, Area: 100, Aspect: 0.5},
	}
	for _, cfg := range badC {
		if _, err := NewCorridor(cfg, r); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if _, err := NewField(nil, 10, 10, 30); err == nil {
		t.Fatal("empty placement accepted")
	}
}

// TestGaussianClustersSpread checks the generator's core statistic: the
// per-axis sample deviation of nodes around their cluster's sample mean
// approximates the configured sigma. Assignment is round-robin (node i →
// cluster i mod k, documented behaviour), so clusters are recoverable
// without exposing the drawn centers.
func TestGaussianClustersSpread(t *testing.T) {
	const n, k = 400, 4
	cfg := clusterCfg(n, 0)
	cfg.Area = 1e8 // huge region: clamping never bites, pure Gaussian spread
	cfg.Sigma = 25
	f, err := NewGaussianClusters(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < k; c++ {
		var xs, ys []float64
		for i := c; i < n; i += k {
			p := f.Position(NodeID(i))
			xs = append(xs, p.X)
			ys = append(ys, p.Y)
		}
		for axis, vals := range [][]float64{xs, ys} {
			sd := sampleStddev(vals)
			if sd < cfg.Sigma*0.8 || sd > cfg.Sigma*1.2 {
				t.Fatalf("cluster %d axis %d: sample stddev %.2f, want ≈%v", c, axis, sd, cfg.Sigma)
			}
		}
	}
}

func sampleStddev(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	return math.Sqrt(ss / float64(len(vals)-1))
}

// TestGaussianClustersConcentrateDegree: tight clusters pack nodes far
// denser than a uniform field of the same nominal density, so the average
// degree must be markedly higher.
func TestGaussianClustersConcentrateDegree(t *testing.T) {
	const n = 60
	tight, err := NewGaussianClusters(clusterCfg(n, 0.5*30), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := NewRandomDisk(DiskConfig{N: n, Range: 30, Area: AreaForDensity(n, 30, 14)}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if tight.AverageDegree() < 1.5*uniform.AverageDegree() {
		t.Fatalf("tight clusters degree %.1f not ≫ uniform %.1f",
			tight.AverageDegree(), uniform.AverageDegree())
	}
}

// TestCorridorGeometry: positions fill the stretched rectangle — the
// occupied bounding box's aspect tracks the configured aspect, and no
// position falls outside [0,w)×[0,h).
func TestCorridorGeometry(t *testing.T) {
	const n = 500
	cfg := corridorCfg(n, 16)
	f, err := NewCorridor(cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	wantW := math.Sqrt(cfg.Area * cfg.Aspect)
	wantH := cfg.Area / wantW
	if f.Width() != wantW || f.Height() != wantH {
		t.Fatalf("rectangle %vx%v, want %vx%v", f.Width(), f.Height(), wantW, wantH)
	}
	var maxX, maxY float64
	for i := 0; i < f.N(); i++ {
		p := f.Position(NodeID(i))
		if p.X < 0 || p.X >= wantW || p.Y < 0 || p.Y >= wantH {
			t.Fatalf("position %+v outside %vx%v", p, wantW, wantH)
		}
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	boxAspect := maxX / maxY
	if boxAspect < cfg.Aspect*0.7 || boxAspect > cfg.Aspect*1.4 {
		t.Fatalf("occupied bounding-box aspect %.1f, want ≈%v", boxAspect, cfg.Aspect)
	}
}

// TestCorridorAspectOneMatchesRandomDisk: a 1:1 corridor is exactly the
// paper's uniform square field — same rng draw sequence, same positions,
// same adjacency — so the new generator provably contains the old model.
func TestCorridorAspectOneMatchesRandomDisk(t *testing.T) {
	const n = 80
	corridor, err := NewCorridor(CorridorConfig{N: n, Range: 30, Area: AreaForDensity(n, 30, 10), Aspect: 1}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	disk, err := NewRandomDisk(DiskConfig{N: n, Range: 30, Area: AreaForDensity(n, 30, 10)}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := NodeID(i)
		if corridor.Position(id) != disk.Position(id) {
			t.Fatalf("node %d placed differently: %+v vs %+v", i, corridor.Position(id), disk.Position(id))
		}
		a, b := corridor.Neighbors(id), disk.Neighbors(id)
		if len(a) != len(b) {
			t.Fatalf("node %d degree %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("node %d adjacency differs at %d", i, j)
			}
		}
	}
}

// TestCorridorStretchesDiameter: at fixed density, a 16:1 corridor's hop
// diameter from node 0 must exceed the square's — the structural property
// the extcorridor scenario leans on.
func TestCorridorStretchesDiameter(t *testing.T) {
	maxHops := func(aspect float64) int {
		f, err := NewConnectedField(func(r *rng.Source) (*Field, error) {
			return NewCorridor(corridorCfg(100, aspect), r)
		}, rng.New(31), 500)
		if err != nil {
			t.Fatal(err)
		}
		best := 0
		for _, d := range HopDistances(f, 0) {
			if d > best {
				best = d
			}
		}
		return best
	}
	square, strip := maxHops(1), maxHops(16)
	if strip <= square {
		t.Fatalf("16:1 corridor diameter %d not beyond square's %d", strip, square)
	}
}

// TestConnectedFieldRate pins the empirical connectivity rate at the
// scenario operating points: every seed in a 30-seed sample must produce a
// connected field within the scenarios' 500-try budget, at the paper-scale
// node count and the extreme ends of each sweep. A failure here means the
// registered sweeps are at risk of erroring in CI.
func TestConnectedFieldRate(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep")
	}
	gens := map[string]func(*rng.Source) (*Field, error){
		"cluster sigma=0.5R": func(r *rng.Source) (*Field, error) {
			return NewGaussianClusters(clusterCfg(50, 0.5*30), r)
		},
		"cluster sigma=4R": func(r *rng.Source) (*Field, error) {
			return NewGaussianClusters(clusterCfg(50, 4*30), r)
		},
		"corridor aspect=16": func(r *rng.Source) (*Field, error) {
			return NewCorridor(corridorCfg(50, 16), r)
		},
	}
	for name, gen := range gens {
		for seed := uint64(1); seed <= 30; seed++ {
			f, err := NewConnectedField(gen, rng.New(seed), 500)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if !Connected(f) {
				t.Fatalf("%s seed %d: disconnected field returned", name, seed)
			}
		}
	}
}

// TestConnectedFieldGivesUp: an impossible generator (two nodes far out of
// range) exhausts its budget with an error instead of looping.
func TestConnectedFieldGivesUp(t *testing.T) {
	gen := func(*rng.Source) (*Field, error) {
		return NewField([]Point{{X: 0, Y: 0}, {X: 1000, Y: 1000}}, 2000, 2000, 30)
	}
	if _, err := NewConnectedField(gen, rng.New(1), 10); err == nil {
		t.Fatal("disconnected-by-construction generator succeeded")
	}
}
