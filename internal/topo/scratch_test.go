package topo

import (
	"testing"

	"pbbf/internal/raceflag"
	"pbbf/internal/rng"
)

// sameTopology fails unless a and b have identical node count, positions,
// and neighbor lists.
func sameTopology(t *testing.T, a, b Topology) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("N: %d vs %d", a.N(), b.N())
	}
	for id := 0; id < a.N(); id++ {
		if a.Position(NodeID(id)) != b.Position(NodeID(id)) {
			t.Fatalf("node %d position %v vs %v", id, a.Position(NodeID(id)), b.Position(NodeID(id)))
		}
		an, bn := a.Neighbors(NodeID(id)), b.Neighbors(NodeID(id))
		if len(an) != len(bn) {
			t.Fatalf("node %d degree %d vs %d", id, len(an), len(bn))
		}
		for k := range an {
			if an[k] != bn[k] {
				t.Fatalf("node %d neighbor[%d] %d vs %d", id, k, an[k], bn[k])
			}
		}
	}
}

// TestScratchRandomDiskMatchesFresh: building through a Scratch must perform
// the same draws and yield the same topology as the unpooled constructor —
// including on reuse, where the scratch's buffers are dirty from the prior
// (different-sized) build.
func TestScratchRandomDiskMatchesFresh(t *testing.T) {
	sc := NewScratch()
	for i, cfg := range []DiskConfig{
		{N: 120, Range: 30, Area: AreaForDensity(120, 30, 10)},
		{N: 60, Range: 30, Area: AreaForDensity(60, 30, 12)}, // shrink: reuse dirty buffers
		{N: 200, Range: 30, Area: AreaForDensity(200, 30, 8)},
	} {
		seed := uint64(1000 + i)
		fresh, err := NewConnectedRandomDisk(cfg, rng.New(seed), 500)
		if err != nil {
			t.Fatalf("fresh build %d: %v", i, err)
		}
		pooled, err := sc.ConnectedRandomDisk(cfg, rng.New(seed), 500)
		if err != nil {
			t.Fatalf("pooled build %d: %v", i, err)
		}
		sameTopology(t, fresh, pooled)
	}
}

func TestScratchGaussianClustersMatchesFresh(t *testing.T) {
	sc := NewScratch()
	cfg := ClusterConfig{N: 150, Range: 30, Area: AreaForDensity(150, 30, 14), Clusters: 4, Sigma: 45}
	gen := func(r *rng.Source) (*Field, error) { return NewGaussianClusters(cfg, r) }
	scGen := func(r *rng.Source) (*Field, error) { return sc.GaussianClusters(cfg, r) }
	for _, seed := range []uint64{7, 8} {
		fresh, err := NewConnectedField(gen, rng.New(seed), 500)
		if err != nil {
			t.Fatalf("fresh: %v", err)
		}
		pooled, err := sc.ConnectedField(scGen, rng.New(seed), 500)
		if err != nil {
			t.Fatalf("pooled: %v", err)
		}
		sameTopology(t, fresh, pooled)
	}
}

func TestScratchCorridorMatchesFresh(t *testing.T) {
	sc := NewScratch()
	cfg := CorridorConfig{N: 150, Range: 30, Area: AreaForDensity(150, 30, 16), Aspect: 8}
	gen := func(r *rng.Source) (*Field, error) { return NewCorridor(cfg, r) }
	scGen := func(r *rng.Source) (*Field, error) { return sc.Corridor(cfg, r) }
	for _, seed := range []uint64{21, 22} {
		fresh, err := NewConnectedField(gen, rng.New(seed), 500)
		if err != nil {
			t.Fatalf("fresh: %v", err)
		}
		pooled, err := sc.ConnectedField(scGen, rng.New(seed), 500)
		if err != nil {
			t.Fatalf("pooled: %v", err)
		}
		sameTopology(t, fresh, pooled)
	}
}

// TestScratchHopDistancesMatchesFresh checks the pooled BFS against the
// allocating one on an irregular graph, twice through the same buffers.
func TestScratchHopDistancesMatchesFresh(t *testing.T) {
	cfg := DiskConfig{N: 150, Range: 30, Area: AreaForDensity(150, 30, 10)}
	d, err := NewConnectedRandomDisk(cfg, rng.New(99), 500)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	for _, src := range []NodeID{0, 17, 149} {
		want := HopDistances(d, src)
		got := sc.HopDistances(d, src)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("src %d: dist[%d] = %d, want %d", src, i, got[i], want[i])
			}
		}
	}
	if !sc.Connected(d) {
		t.Fatal("pooled Connected reports false on a connected graph")
	}
}

// TestScratchSteadyStateAllocFree: after a warm-up build, rebuilding the
// same-shaped topology through the scratch must not allocate.
func TestScratchSteadyStateAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless under -race")
	}
	cfg := DiskConfig{N: 150, Range: 30, Area: AreaForDensity(150, 30, 10)}
	sc := NewScratch()
	r := rng.New(5)
	if _, err := sc.ConnectedRandomDisk(cfg, r, 500); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := sc.ConnectedRandomDisk(cfg, r, 500); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state ConnectedRandomDisk allocates %.0f times per build, want 0", allocs)
	}
}
