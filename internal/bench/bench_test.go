package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pbbf/internal/scenario"
	"pbbf/internal/stats"
)

// toyScenarios returns a minimal registry slice: one point-based scenario
// and one table scenario.
func toyScenarios() []scenario.Scenario {
	return []scenario.Scenario{
		{
			ID: "toy", Title: "toy sweep", Artifact: "extension",
			Summary: "benchmark fixture",
			Params:  []scenario.ParamDoc{{Name: "x", Desc: "sweep coordinate"}},
			XLabel:  "x", YLabel: "y",
			Points: func(scenario.Scale) ([]scenario.Point, error) {
				return []scenario.Point{
					{Series: "s", X: 1, Params: map[string]float64{"x": 1}},
					{Series: "s", X: 2, Params: map[string]float64{"x": 2}},
				}, nil
			},
			RunPoint: func(_ scenario.Scale, pt scenario.Point) (scenario.Result, error) {
				return scenario.Result{Y: pt.X * 2}, nil
			},
		},
		{
			ID: "toytable", Title: "toy table", Artifact: "extension",
			Summary: "benchmark fixture",
			TableFn: func(scenario.Scale) (*stats.Table, error) {
				tbl := &stats.Table{Title: "toy table"}
				tbl.AddSeries("s").Append(1, 1)
				return tbl, nil
			},
		},
	}
}

func testConfig() Config {
	return Config{Scale: scenario.Quick(), ScaleName: "quick", Workers: 1}
}

func TestRunProducesMeasurements(t *testing.T) {
	rep, err := Run(toyScenarios(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion || rep.Scale != "quick" || rep.Workers != 1 {
		t.Fatalf("report header: %+v", rep)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("got %d scenario results", len(rep.Scenarios))
	}
	toy := rep.Scenarios[0]
	if toy.ID != "toy" || toy.Points != 2 {
		t.Fatalf("toy result: %+v", toy)
	}
	if toy.WallNS <= 0 || toy.NSPerPoint <= 0 {
		t.Fatalf("unmeasured wall time: %+v", toy)
	}
	if table := rep.Scenarios[1]; table.Points != 1 {
		t.Fatalf("table scenario points = %d, want 1", table.Points)
	}
	if rep.TotalWallNS < toy.WallNS {
		t.Fatalf("total %d < scenario %d", rep.TotalWallNS, toy.WallNS)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep, err := Run(toyScenarios(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip changed the report:\nwrote %+v\nread  %+v", rep, back)
	}
}

func TestReadFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"bad.json":   "{not json",
		"empty.json": "{}",
	} {
		path := filepath.Join(dir, name)
		if err := writeFile(path, content); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFile(path); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// report builds a fixture whose entries sit well above the noise floor
// (scale factor 100x NoiseFloorNS) so Compare actually gates them.
func report(entries map[string]int64) *Report {
	r := &Report{SchemaVersion: SchemaVersion}
	for _, id := range []string{"a", "b", "c"} {
		ns, ok := entries[id]
		if !ok {
			continue
		}
		ns *= 100 * NoiseFloorNS / 1000
		r.Scenarios = append(r.Scenarios, ScenarioResult{ID: id, Points: 1, WallNS: ns, NSPerPoint: ns})
	}
	return r
}

// TestCompareNoiseFloor: a scenario whose baseline wall time is below the
// noise floor is recorded but never gated, however big its ratio.
func TestCompareNoiseFloor(t *testing.T) {
	tiny := ScenarioResult{ID: "tiny", Points: 1, WallNS: NoiseFloorNS - 1, NSPerPoint: NoiseFloorNS - 1}
	base := &Report{SchemaVersion: SchemaVersion, Scenarios: []ScenarioResult{tiny}}
	cur := &Report{SchemaVersion: SchemaVersion, Scenarios: []ScenarioResult{{
		ID: "tiny", Points: 1, WallNS: 50 * NoiseFloorNS, NSPerPoint: 50 * NoiseFloorNS,
	}}}
	regs, err := Compare(base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("sub-floor scenario gated: %+v", regs)
	}
}

// TestRunKeepsFastestRepeat checks the min-of-N policy through the public
// surface: with many repeats the recorded wall time is the minimum, so it
// can only go down as repeats increase on identical work.
func TestRunKeepsFastestRepeat(t *testing.T) {
	cfg := testConfig()
	cfg.Repeats = 1
	one, err := Run(toyScenarios(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Repeats = 5
	five, err := Run(toyScenarios(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if five.Scenarios[0].WallNS <= 0 {
		t.Fatalf("unmeasured: %+v", five.Scenarios[0])
	}
	// Not a strict inequality claim (machines are noisy), but the min of 5
	// exceeding 20x a single run would mean the min was not kept.
	if five.Scenarios[0].WallNS > 20*one.Scenarios[0].WallNS {
		t.Fatalf("min-of-5 wall %d vs single %d", five.Scenarios[0].WallNS, one.Scenarios[0].WallNS)
	}
}

func TestRunRejectsNegativeRepeats(t *testing.T) {
	cfg := testConfig()
	cfg.Repeats = -1
	if _, err := Run(toyScenarios(), cfg); err == nil {
		t.Fatal("negative repeats accepted")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := report(map[string]int64{"a": 1000, "b": 1000, "c": 1000})
	cur := report(map[string]int64{"a": 1290, "b": 1500, "c": 900})
	regs, err := Compare(base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].ID != "b" {
		t.Fatalf("regressions: %+v", regs)
	}
	if regs[0].Ratio < 1.49 || regs[0].Ratio > 1.51 {
		t.Fatalf("ratio = %v", regs[0].Ratio)
	}
}

func TestCompareMissingScenarioIsRegression(t *testing.T) {
	base := report(map[string]int64{"a": 1000, "b": 1000})
	cur := report(map[string]int64{"a": 1000})
	regs, err := Compare(base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].ID != "b" || regs[0].CurNSPerPoint != 0 {
		t.Fatalf("regressions: %+v", regs)
	}
}

func TestCompareNewScenarioIgnored(t *testing.T) {
	base := report(map[string]int64{"a": 1000})
	cur := report(map[string]int64{"a": 1000, "b": 99999})
	regs, err := Compare(base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("new scenario flagged: %+v", regs)
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	base := report(map[string]int64{"a": 1000})
	cur := report(map[string]int64{"a": 1000})
	cur.SchemaVersion = SchemaVersion + 1
	if _, err := Compare(base, cur, 0.30); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}
}

func TestCompareBadThreshold(t *testing.T) {
	base := report(map[string]int64{"a": 1000})
	if _, err := Compare(base, base, 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if _, err := Compare(base, base, -0.3); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = -2
	if _, err := Run(toyScenarios(), cfg); err == nil {
		t.Fatal("negative workers accepted")
	}
}

// allocReport builds a fixture with the given allocs-per-point entries,
// keeping wall times below NoiseFloorNS so only the allocation gate fires.
func allocReport(entries map[string]uint64) *Report {
	r := &Report{SchemaVersion: SchemaVersion}
	for _, id := range []string{"a", "b", "c"} {
		n, ok := entries[id]
		if !ok {
			continue
		}
		r.Scenarios = append(r.Scenarios, ScenarioResult{
			ID: id, Points: 1, WallNS: 1, NSPerPoint: 1, AllocsPerPoint: n,
		})
	}
	return r
}

func TestCompareFlagsAllocRegressions(t *testing.T) {
	base := allocReport(map[string]uint64{"a": 10 * AllocNoiseFloor, "b": 10 * AllocNoiseFloor})
	cur := allocReport(map[string]uint64{"a": 15 * AllocNoiseFloor, "b": 11 * AllocNoiseFloor})
	regs, err := Compare(base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].ID != "a" || regs[0].Metric != "allocs/point" {
		t.Fatalf("regressions: %+v", regs)
	}
	if regs[0].Ratio < 1.49 || regs[0].Ratio > 1.51 {
		t.Fatalf("ratio = %v", regs[0].Ratio)
	}
}

// TestCompareAllocNoiseFloor: a baseline below AllocNoiseFloor is never
// gated on allocations, however big the ratio — one stray runtime
// allocation would otherwise fail builds at random.
func TestCompareAllocNoiseFloor(t *testing.T) {
	base := allocReport(map[string]uint64{"a": AllocNoiseFloor - 1})
	cur := allocReport(map[string]uint64{"a": 100 * AllocNoiseFloor})
	regs, err := Compare(base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("sub-floor alloc count gated: %+v", regs)
	}
}

func TestCheckCeilings(t *testing.T) {
	rep := &Report{SchemaVersion: SchemaVersion, Scale: "bench"}
	for _, id := range FlagshipScenarios {
		rep.Scenarios = append(rep.Scenarios, ScenarioResult{
			ID: id, Points: 1, AllocsPerPoint: FlagshipAllocCeiling,
		})
	}
	if viols := CheckCeilings(rep); len(viols) != 0 {
		t.Fatalf("at-ceiling report flagged: %+v", viols)
	}
	rep.Scenarios[0].AllocsPerPoint = FlagshipAllocCeiling + 1
	viols := CheckCeilings(rep)
	if len(viols) != 1 || viols[0].ID != FlagshipScenarios[0] || viols[0].Missing {
		t.Fatalf("over-ceiling report: %+v", viols)
	}
}

// TestCheckCeilingsMissingFlagship: silently dropping a flagship scenario
// from the bench run must fail, exactly like a dropped baseline benchmark.
func TestCheckCeilingsMissingFlagship(t *testing.T) {
	rep := &Report{SchemaVersion: SchemaVersion, Scale: "bench"}
	viols := CheckCeilings(rep)
	if len(viols) != len(FlagshipScenarios) {
		t.Fatalf("got %d violations, want %d", len(viols), len(FlagshipScenarios))
	}
	for _, v := range viols {
		if !v.Missing {
			t.Fatalf("missing scenario not marked: %+v", v)
		}
	}
}

// TestCheckCeilingsOnlyAtBenchScale: the absolute budget is defined for the
// frozen bench workload; other scales aggregate different run counts per
// point and are exempt.
func TestCheckCeilingsOnlyAtBenchScale(t *testing.T) {
	rep := &Report{SchemaVersion: SchemaVersion, Scale: "quick"}
	if viols := CheckCeilings(rep); viols != nil {
		t.Fatalf("non-bench scale gated: %+v", viols)
	}
}

// writeFile is a test helper (kept out of the library surface).
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestCompareWorkloadMismatch(t *testing.T) {
	mk := func(mut func(*Report)) *Report {
		r := report(map[string]int64{"a": 1000})
		mut(r)
		return r
	}
	base := mk(func(*Report) {})
	for name, cur := range map[string]*Report{
		"scale":   mk(func(r *Report) { r.Scale = "paper" }),
		"workers": mk(func(r *Report) { r.Workers = 4 }),
		"seed":    mk(func(r *Report) { r.Seed = 99 }),
	} {
		if _, err := Compare(base, cur, 0.30); err == nil {
			t.Fatalf("%s mismatch accepted", name)
		}
	}
}

func TestRunOverheadPairsArms(t *testing.T) {
	rep, err := RunOverhead(toyScenarios(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scale != "quick" || rep.Workers != 1 || rep.Repeats != DefaultRepeats {
		t.Fatalf("report header: %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	toy := rep.Results[0]
	if toy.ID != "toy" || toy.Points != 2 {
		t.Fatalf("toy result: %+v", toy)
	}
	if toy.UntracedNSPerPoint <= 0 || toy.TracedNSPerPoint <= 0 || toy.Ratio <= 0 {
		t.Fatalf("arms not measured: %+v", toy)
	}
	// Toy scenarios finish in microseconds — far under the noise floor,
	// so they must be recorded but excluded from the gate.
	for _, r := range rep.Results {
		if r.Gated {
			t.Fatalf("%s gated below the noise floor: %+v", r.ID, r)
		}
	}
}

func TestRunOverheadRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Repeats = -1
	if _, err := RunOverhead(toyScenarios(), cfg); err == nil {
		t.Fatal("negative repeats accepted")
	}
	cfg = testConfig()
	cfg.Workers = -1
	if _, err := RunOverhead(toyScenarios(), cfg); err == nil {
		t.Fatal("negative workers accepted")
	}
}
