// Package bench is the repository's performance-tracking subsystem: it runs
// every registered scenario at the frozen bench scale, measures wall time,
// per-point cost, allocations, and simulator events fired, and serializes
// the result as a machine-readable report (BENCH.json). CI records the
// report as an artifact on every push and fails the build when a scenario
// regresses more than the configured threshold against the committed
// baseline, so the perf trajectory of the hot paths is visible — and
// enforced — over the repository's history.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"pbbf/internal/scenario"
	"pbbf/internal/sim"
	"pbbf/internal/trace"
)

// SchemaVersion identifies the report layout. Bump when fields change
// incompatibly; Compare refuses to diff reports with different versions.
// v2 added AllocsPerPoint and the allocation gate.
const SchemaVersion = 2

// NoiseFloorNS is the baseline wall time below which Compare records a
// scenario but does not gate it: sub-millisecond artifacts (the static
// tables) measure timer and scheduler noise, not simulator performance.
const NoiseFloorNS = 2_000_000

// AllocNoiseFloor is the baseline allocs-per-point below which Compare
// records but does not gate the allocation ratio: when a point costs a few
// hundred allocations, one stray runtime allocation (a timer, a map bucket
// split) swings the ratio past any reasonable threshold without meaning
// anything. Pooled scenarios sit far below this floor and are protected by
// the absolute FlagshipAllocCeiling instead.
const AllocNoiseFloor = 512

// FlagshipAllocCeiling is the absolute allocs-per-point budget for the
// flagship Section 5 scenarios at the frozen bench scale. The pooled netsim
// kernel runs steady-state points in a few dozen allocations (accumulator
// maps and result assembly; the simulation itself is allocation-free), so
// the ceiling failing means per-run state is being reallocated again.
const FlagshipAllocCeiling = 100

// FlagshipScenarios lists the scenario IDs held to FlagshipAllocCeiling:
// the ns-style simulator figures whose hot path the arena layer keeps
// allocation-free.
var FlagshipScenarios = []string{"fig13", "fig14", "fig15", "fig16", "fig17", "fig18"}

// DefaultRepeats is how many times Run measures each scenario when
// Config.Repeats is unset; the fastest repeat is recorded. Minimum-of-N is
// the standard defense against one-off scheduler hiccups inflating a
// measurement into a phantom regression.
const DefaultRepeats = 3

// ScenarioResult is one scenario's measurement.
type ScenarioResult struct {
	// ID is the scenario's registry handle.
	ID string `json:"id"`
	// Artifact is the paper artifact the scenario regenerates.
	Artifact string `json:"artifact"`
	// Points is the number of parameter points the run produced (1 for
	// table scenarios).
	Points int `json:"points"`
	// WallNS is the scenario's wall-clock time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// NSPerPoint is WallNS divided by Points — the regression metric.
	NSPerPoint int64 `json:"ns_per_point"`
	// Allocs counts heap allocations during the run.
	Allocs uint64 `json:"allocs"`
	// AllocsPerPoint is the minimum allocations-per-point seen across the
	// repeats — the allocation analogue of NSPerPoint. It is tracked
	// independently of the fastest repeat: the work is deterministic, so the
	// repeat with the fewest allocations is the one least polluted by
	// runtime background activity.
	AllocsPerPoint uint64 `json:"allocs_per_point"`
	// AllocBytes counts bytes allocated during the run.
	AllocBytes uint64 `json:"alloc_bytes"`
	// EventsFired counts discrete-event kernel events executed during the
	// run (0 for analytic scenarios that never touch a kernel).
	EventsFired uint64 `json:"events_fired"`
}

// Report is the full benchmark record serialized to BENCH.json.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	// CPU is the best-effort processor model of the recording machine and
	// NumCPU its logical core count. Absolute times are only comparable
	// between reports from similar hardware; these fields make a mismatch
	// diagnosable from the two files alone.
	CPU    string `json:"cpu,omitempty"`
	NumCPU int    `json:"num_cpu"`
	// Scale names the scenario scale the benchmark ran at.
	Scale string `json:"scale"`
	// Workers is the sweep worker-pool size used for every scenario.
	Workers int `json:"workers"`
	// Seed is the root seed (measurements must be reproducible).
	Seed uint64 `json:"seed"`
	// TotalWallNS is the end-to-end wall time across all scenarios.
	TotalWallNS int64            `json:"total_wall_ns"`
	Scenarios   []ScenarioResult `json:"scenarios"`
}

// Config parameterizes a benchmark run.
type Config struct {
	// Scale is the scenario scale to run at.
	Scale scenario.Scale
	// ScaleName labels the scale in the report.
	ScaleName string
	// Workers sizes the sweep pool per scenario. 1 (the default used by
	// the CLI) keeps timings and allocation counts scheduler-independent.
	Workers int
	// Repeats is how many times each scenario is measured; the fastest
	// repeat is recorded. 0 means DefaultRepeats.
	Repeats int
	// Progress, when non-nil, receives one line per finished scenario.
	Progress io.Writer
	// TraceProvider, when non-nil, attaches the event recorder to every
	// simulation run — the trace overhead gate: benchmarking with
	// trace.DiscardProvider against an untraced baseline bounds the cost
	// of full instrumentation. nil (the default) measures untraced runs.
	TraceProvider trace.Provider
}

// Run benchmarks every scenario in the registry sequentially and returns
// the report. Scenarios run one at a time — never concurrently with each
// other — so per-scenario wall time, allocation deltas, and event counts
// are attributable.
func Run(scenarios []scenario.Scenario, cfg Config) (*Report, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("bench: workers %d must be positive", cfg.Workers)
	}
	if cfg.Repeats == 0 {
		cfg.Repeats = DefaultRepeats
	}
	if cfg.Repeats < 0 {
		return nil, fmt.Errorf("bench: repeats %d must be positive", cfg.Repeats)
	}
	if err := cfg.Scale.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPU:           cpuModel(),
		NumCPU:        runtime.NumCPU(),
		Scale:         cfg.ScaleName,
		Workers:       cfg.Workers,
		Seed:          cfg.Scale.Seed,
		Scenarios:     make([]ScenarioResult, 0, len(scenarios)),
	}
	ctx := context.Background()
	if cfg.TraceProvider != nil {
		ctx = trace.WithProvider(ctx, cfg.TraceProvider)
	}
	var ms0, ms1 runtime.MemStats
	total := time.Now()
	for _, sc := range scenarios {
		// Measure Repeats times and keep the fastest: the work is
		// deterministic (fixed seed), so the minimum is the cleanest
		// estimate of the scenario's cost and is robust against one
		// repeat landing on a busy moment.
		var res ScenarioResult
		var minAllocs uint64
		for try := 0; try < cfg.Repeats; try++ {
			runtime.GC() // attribute floating garbage to this measurement
			runtime.ReadMemStats(&ms0)
			fired0 := sim.TotalFired()
			start := time.Now()
			outs, err := scenario.RunAllCtx(ctx, []scenario.Scenario{sc}, cfg.Scale,
				scenario.RunOptions{Workers: cfg.Workers})
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", sc.ID, err)
			}
			runtime.ReadMemStats(&ms1)
			points := len(outs[0].Points)
			if points == 0 {
				points = 1 // TableFn scenarios: one unit of work
			}
			// The allocation minimum is tracked across all repeats, not
			// taken from the fastest one: the repeat with the fewest
			// allocations is the one least polluted by runtime background
			// work, and it need not be the fastest.
			if allocs := ms1.Mallocs - ms0.Mallocs; try == 0 || allocs < minAllocs {
				minAllocs = allocs
			}
			if try > 0 && wall.Nanoseconds() >= res.WallNS {
				continue
			}
			res = ScenarioResult{
				ID:          sc.ID,
				Artifact:    sc.Artifact,
				Points:      points,
				WallNS:      wall.Nanoseconds(),
				NSPerPoint:  wall.Nanoseconds() / int64(points),
				Allocs:      ms1.Mallocs - ms0.Mallocs,
				AllocBytes:  ms1.TotalAlloc - ms0.TotalAlloc,
				EventsFired: sim.TotalFired() - fired0,
			}
		}
		res.AllocsPerPoint = minAllocs / uint64(res.Points)
		rep.Scenarios = append(rep.Scenarios, res)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%-12s %10.2fms %8d pts %12d ns/pt %8d allocs/pt %12d events\n",
				res.ID, float64(res.WallNS)/1e6, res.Points, res.NSPerPoint, res.AllocsPerPoint, res.EventsFired)
		}
	}
	rep.TotalWallNS = time.Since(total).Nanoseconds()
	return rep, nil
}

// OverheadResult is one scenario's paired traced-vs-untraced measurement
// from RunOverhead.
type OverheadResult struct {
	// ID is the scenario's registry handle.
	ID string `json:"id"`
	// Points is the number of parameter points per run.
	Points int `json:"points"`
	// UntracedNSPerPoint and TracedNSPerPoint are each arm's fastest
	// repeat.
	UntracedNSPerPoint int64 `json:"untraced_ns_per_point"`
	TracedNSPerPoint   int64 `json:"traced_ns_per_point"`
	// Ratio is Traced/Untraced (1.10 = full instrumentation costs 10%).
	Ratio float64 `json:"ratio"`
	// Gated is false when the untraced arm sits under NoiseFloorNS —
	// recorded for the report, excluded from the gate.
	Gated bool `json:"gated"`
}

// OverheadReport is the machine-readable record of a RunOverhead pass.
type OverheadReport struct {
	SchemaVersion int              `json:"schema_version"`
	Scale         string           `json:"scale"`
	Workers       int              `json:"workers"`
	Seed          uint64           `json:"seed"`
	Repeats       int              `json:"repeats"`
	Results       []OverheadResult `json:"results"`
}

// WriteFile serializes the overhead report as indented JSON.
func (r *OverheadReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunOverhead measures the cost of full event instrumentation: each
// scenario runs Repeats untraced/traced pairs — the traced arm records
// every event into trace.Discard — alternating within this one process,
// and each arm keeps its fastest repeat. Pairing the arms back to back
// cancels the machine drift (thermal state, background load, build
// cache) that makes two separate bench invocations incomparable, so the
// ratio can be gated far inside the cross-invocation noise floor.
// Config.TraceProvider is ignored; the arms define their own.
func RunOverhead(scenarios []scenario.Scenario, cfg Config) (*OverheadReport, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("bench: workers %d must be positive", cfg.Workers)
	}
	if cfg.Repeats == 0 {
		cfg.Repeats = DefaultRepeats
	}
	if cfg.Repeats < 0 {
		return nil, fmt.Errorf("bench: repeats %d must be positive", cfg.Repeats)
	}
	if err := cfg.Scale.Validate(); err != nil {
		return nil, err
	}
	rep := &OverheadReport{
		SchemaVersion: SchemaVersion,
		Scale:         cfg.ScaleName,
		Workers:       cfg.Workers,
		Seed:          cfg.Scale.Seed,
		Repeats:       cfg.Repeats,
		Results:       make([]OverheadResult, 0, len(scenarios)),
	}
	plain := context.Background()
	traced := trace.WithProvider(context.Background(), trace.DiscardProvider)
	for _, sc := range scenarios {
		var res OverheadResult
		for try := 0; try < cfg.Repeats; try++ {
			pWall, points, err := measureOnce(plain, sc, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", sc.ID, err)
			}
			tWall, _, err := measureOnce(traced, sc, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: %s (traced): %w", sc.ID, err)
			}
			if try == 0 {
				res = OverheadResult{ID: sc.ID, Points: points,
					UntracedNSPerPoint: pWall, TracedNSPerPoint: tWall}
			} else {
				res.UntracedNSPerPoint = min(res.UntracedNSPerPoint, pWall)
				res.TracedNSPerPoint = min(res.TracedNSPerPoint, tWall)
			}
		}
		// The fields hold total wall until here; the noise floor is a
		// wall-time bound, same as Compare's.
		res.Gated = res.UntracedNSPerPoint >= NoiseFloorNS
		res.UntracedNSPerPoint /= int64(res.Points)
		res.TracedNSPerPoint /= int64(res.Points)
		if res.UntracedNSPerPoint > 0 {
			res.Ratio = float64(res.TracedNSPerPoint) / float64(res.UntracedNSPerPoint)
		}
		rep.Results = append(rep.Results, res)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%-12s %12d ns/pt untraced %12d ns/pt traced %6.2fx\n",
				res.ID, res.UntracedNSPerPoint, res.TracedNSPerPoint, res.Ratio)
		}
	}
	return rep, nil
}

// measureOnce runs one scenario once under ctx and returns its total wall
// time in nanoseconds and point count (1 for table scenarios).
func measureOnce(ctx context.Context, sc scenario.Scenario, cfg Config) (int64, int, error) {
	runtime.GC() // attribute floating garbage consistently across arms
	start := time.Now()
	outs, err := scenario.RunAllCtx(ctx, []scenario.Scenario{sc}, cfg.Scale,
		scenario.RunOptions{Workers: cfg.Workers})
	wall := time.Since(start)
	if err != nil {
		return 0, 0, err
	}
	points := len(outs[0].Points)
	if points == 0 {
		points = 1 // TableFn scenarios: one unit of work
	}
	return wall.Nanoseconds(), points, nil
}

// cpuModel returns the processor model string on Linux (best effort; empty
// elsewhere or on read failure).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// WriteFile serializes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.SchemaVersion == 0 || len(r.Scenarios) == 0 {
		return nil, fmt.Errorf("bench: %s: not a benchmark report", path)
	}
	return &r, nil
}

// Regression is one scenario metric that got worse than the baseline
// allows. Metric says which gate fired: "ns/point" (wall time) or
// "allocs/point" (allocation count).
type Regression struct {
	ID string `json:"id"`
	// Metric names the gated measurement: "ns/point" or "allocs/point".
	Metric string `json:"metric"`
	// BaseNSPerPoint and CurNSPerPoint are the compared wall measurements
	// (zero for allocation regressions).
	BaseNSPerPoint int64 `json:"base_ns_per_point,omitempty"`
	CurNSPerPoint  int64 `json:"cur_ns_per_point,omitempty"`
	// BaseAllocsPerPoint and CurAllocsPerPoint are the compared allocation
	// measurements (zero for wall-time regressions).
	BaseAllocsPerPoint uint64 `json:"base_allocs_per_point,omitempty"`
	CurAllocsPerPoint  uint64 `json:"cur_allocs_per_point,omitempty"`
	// Ratio is Cur/Base (1.30 = 30% worse).
	Ratio float64 `json:"ratio"`
}

// Compare diffs current against base and returns every scenario whose
// ns/point or allocs/point grew by more than threshold (0.30 = fail above
// +30%). Each metric has its own noise floor (NoiseFloorNS,
// AllocNoiseFloor) below which the baseline is recorded but not gated.
// Scenarios present in the baseline but missing from the current run are
// reported as regressions with Ratio 0 — a silently dropped benchmark must
// not pass. New scenarios absent from the baseline are ignored.
func Compare(base, current *Report, threshold float64) ([]Regression, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("bench: threshold %v must be positive", threshold)
	}
	if base.SchemaVersion != current.SchemaVersion {
		return nil, fmt.Errorf("bench: schema mismatch: baseline v%d vs current v%d",
			base.SchemaVersion, current.SchemaVersion)
	}
	// ns/point is only meaningful between runs of the same workload: a
	// scale, worker, or seed mismatch would gate two different jobs.
	if base.Scale != current.Scale {
		return nil, fmt.Errorf("bench: scale mismatch: baseline %q vs current %q", base.Scale, current.Scale)
	}
	if base.Workers != current.Workers {
		return nil, fmt.Errorf("bench: workers mismatch: baseline %d vs current %d", base.Workers, current.Workers)
	}
	if base.Seed != current.Seed {
		return nil, fmt.Errorf("bench: seed mismatch: baseline %d vs current %d", base.Seed, current.Seed)
	}
	cur := make(map[string]ScenarioResult, len(current.Scenarios))
	for _, s := range current.Scenarios {
		cur[s.ID] = s
	}
	var regs []Regression
	for _, b := range base.Scenarios {
		c, ok := cur[b.ID]
		if !ok {
			regs = append(regs, Regression{ID: b.ID, Metric: "ns/point", BaseNSPerPoint: b.NSPerPoint})
			continue
		}
		if b.NSPerPoint > 0 && b.WallNS >= NoiseFloorNS {
			if ratio := float64(c.NSPerPoint) / float64(b.NSPerPoint); ratio > 1+threshold {
				regs = append(regs, Regression{
					ID:             b.ID,
					Metric:         "ns/point",
					BaseNSPerPoint: b.NSPerPoint,
					CurNSPerPoint:  c.NSPerPoint,
					Ratio:          ratio,
				})
			}
		}
		if b.AllocsPerPoint >= AllocNoiseFloor {
			if ratio := float64(c.AllocsPerPoint) / float64(b.AllocsPerPoint); ratio > 1+threshold {
				regs = append(regs, Regression{
					ID:                 b.ID,
					Metric:             "allocs/point",
					BaseAllocsPerPoint: b.AllocsPerPoint,
					CurAllocsPerPoint:  c.AllocsPerPoint,
					Ratio:              ratio,
				})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Ratio > regs[j].Ratio })
	return regs, nil
}

// CeilingViolation is one flagship scenario over its absolute allocation
// budget — or missing from the report entirely (AllocsPerPoint 0, Missing
// true), which must fail for the same reason a dropped benchmark does.
type CeilingViolation struct {
	ID             string `json:"id"`
	AllocsPerPoint uint64 `json:"allocs_per_point"`
	Ceiling        uint64 `json:"ceiling"`
	Missing        bool   `json:"missing,omitempty"`
}

// CheckCeilings enforces the absolute FlagshipAllocCeiling against a report.
// Unlike Compare it needs no baseline: the ceiling is a property of the
// pooled kernel, not a diff. It applies only to reports recorded at the
// frozen "bench" scale — at other scales points aggregate different run
// counts and the budget would not be comparable.
func CheckCeilings(rep *Report) []CeilingViolation {
	if rep.Scale != "bench" {
		return nil
	}
	byID := make(map[string]ScenarioResult, len(rep.Scenarios))
	for _, s := range rep.Scenarios {
		byID[s.ID] = s
	}
	var out []CeilingViolation
	for _, id := range FlagshipScenarios {
		s, ok := byID[id]
		if !ok {
			out = append(out, CeilingViolation{ID: id, Ceiling: FlagshipAllocCeiling, Missing: true})
			continue
		}
		if s.AllocsPerPoint > FlagshipAllocCeiling {
			out = append(out, CeilingViolation{ID: id, AllocsPerPoint: s.AllocsPerPoint, Ceiling: FlagshipAllocCeiling})
		}
	}
	return out
}
