package sim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"pbbf/internal/rng"
)

func TestRunOrdersEvents(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(3*time.Second, func() { order = append(order, 3) })
	k.Schedule(1*time.Second, func() { order = append(order, 1) })
	k.Schedule(2*time.Second, func() { order = append(order, 2) })
	if err := k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 10*time.Second {
		t.Fatalf("clock = %v after drain, want horizon", k.Now())
	}
}

func TestHorizonInclusive(t *testing.T) {
	k := NewKernel()
	fired := false
	k.Schedule(5*time.Second, func() { fired = true })
	if err := k.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event exactly at horizon did not fire")
	}
}

func TestHorizonExclusiveBeyond(t *testing.T) {
	k := NewKernel()
	fired := false
	k.Schedule(5*time.Second+time.Nanosecond, func() { fired = true })
	if err := k.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event after horizon fired")
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	// A second Run picks it up.
	if err := k.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event did not fire on resumed run")
	}
}

func TestNowDuringEvent(t *testing.T) {
	k := NewKernel()
	var at time.Duration
	k.Schedule(1500*time.Millisecond, func() { at = k.Now() })
	if err := k.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if at != 1500*time.Millisecond {
		t.Fatalf("Now inside event = %v", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	var hits []time.Duration
	k.Schedule(time.Second, func() {
		hits = append(hits, k.Now())
		k.Schedule(time.Second, func() {
			hits = append(hits, k.Now())
		})
	})
	if err := k.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0] != time.Second || hits[1] != 2*time.Second {
		t.Fatalf("hits = %v", hits)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	k := NewKernel()
	k.Schedule(time.Second, func() {
		k.Schedule(-5*time.Second, func() {
			if k.Now() != time.Second {
				t.Fatalf("clamped event fired at %v", k.Now())
			}
		})
	})
	if err := k.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		k.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if i == 3 {
				k.Stop()
			}
		})
	}
	err := k.Run(time.Minute)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	timer := k.Schedule(time.Second, func() { fired = true })
	if !timer.Pending() {
		t.Fatal("timer not pending after Schedule")
	}
	if !timer.Cancel() {
		t.Fatal("Cancel returned false")
	}
	if timer.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	if err := k.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunUntilIdle(t *testing.T) {
	k := NewKernel()
	total := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		total++
		if depth < 5 {
			k.Schedule(time.Hour, func() { spawn(depth + 1) })
		}
	}
	k.Schedule(0, func() { spawn(0) })
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Fatalf("total = %d, want 6", total)
	}
	if k.Now() != 5*time.Hour {
		t.Fatalf("clock = %v", k.Now())
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel()
	var ticks []time.Duration
	cancel := k.Ticker(time.Second, func() {
		ticks = append(ticks, k.Now())
	})
	k.Schedule(3500*time.Millisecond, func() { cancel() })
	if err := k.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i, at := range ticks {
		if want := time.Duration(i+1) * time.Second; at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerSelfCancel(t *testing.T) {
	k := NewKernel()
	n := 0
	var cancel func()
	cancel = k.Ticker(time.Second, func() {
		n++
		if n == 2 {
			cancel()
		}
	})
	if err := k.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ticker fired %d times after self-cancel at 2", n)
	}
}

// TestResumeAfterStopReusesPool verifies that events surviving a Stop keep
// firing on the next Run and that a recurring timer can be cancelled while
// the kernel is stopped — the pool must treat Stop as a pause, not a drain.
func TestResumeAfterStopReusesPool(t *testing.T) {
	k := NewKernel()
	ticks := 0
	cancel := k.Ticker(time.Second, func() {
		ticks++
		if ticks == 3 {
			k.Stop()
		}
	})
	if err := k.Run(time.Minute); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if ticks != 3 {
		t.Fatalf("ticks = %d before stop, want 3", ticks)
	}
	// Resume: the rescheduled tick (pooled slot) must still be live.
	if err := k.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Fatalf("ticks = %d after resume, want 5", ticks)
	}
	// Cancel between runs: no further ticks on the next resume.
	cancel()
	if err := k.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Fatalf("ticker fired %d times after cancel, want 5", ticks)
	}
}

// TestTickerSteadyStateAllocFree is the pooled-kernel headline: a recurring
// timer firing forever must not allocate per tick.
func TestTickerSteadyStateAllocFree(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Ticker(time.Second, func() { n++ })
	if err := k.Run(10 * time.Second); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := k.Run(k.Now() + 10*time.Second); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("recurring timer allocates %.1f times per 10 ticks", allocs)
	}
	if n == 0 {
		t.Fatal("ticker never fired")
	}
}

// TestTimerStaleAfterFire ensures a Timer whose pooled slot was recycled by
// a later event neither reports pending nor cancels the new occupant.
func TestTimerStaleAfterFire(t *testing.T) {
	k := NewKernel()
	stale := k.Schedule(time.Second, func() {})
	if err := k.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	fired := false
	k.Schedule(time.Second, func() { fired = true }) // reuses the slot
	if stale.Pending() {
		t.Fatal("fired timer reports pending")
	}
	if stale.Cancel() {
		t.Fatal("stale timer cancelled the slot's new event")
	}
	if err := k.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("new event lost")
	}
}

func TestTickerPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewKernel().Ticker(0, func() {})
}

// Property: for any batch of scheduled delays, Run fires them in
// non-decreasing time order and the clock matches each event's time.
func TestPropertyMonotonicClock(t *testing.T) {
	check := func(seed uint64, rawN uint8) bool {
		r := rng.New(seed)
		n := int(rawN)%100 + 1
		k := NewKernel()
		var last time.Duration = -1
		ok := true
		for i := 0; i < n; i++ {
			k.Schedule(time.Duration(r.Intn(1000))*time.Millisecond, func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		if err := k.RunUntilIdle(); err != nil {
			return false
		}
		return ok && k.Fired() == uint64(n)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	k := NewKernel()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(time.Duration(r.Intn(100))*time.Millisecond, func() {})
		if k.Pending() > 4096 {
			_ = k.Run(k.Now() + 50*time.Millisecond)
		}
	}
}
