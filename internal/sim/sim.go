// Package sim provides the discrete-event simulation kernel shared by the
// ideal (Section 4) and fine-grained (Section 5) simulators.
//
// The kernel is deliberately single-threaded: wireless MAC behaviour depends
// on exact event ordering, and a sequential event loop with a deterministic
// tie-break is both faster and reproducible. All simulated time is
// time.Duration from the start of the run.
package sim

import (
	"errors"
	"time"

	"pbbf/internal/eventq"
)

// ErrStopped is returned by Run when Stop was called before the horizon.
var ErrStopped = errors.New("sim: stopped")

// Kernel is a discrete-event simulation executive. Create with NewKernel.
type Kernel struct {
	queue   eventq.Queue
	now     time.Duration
	stopped bool
	fired   uint64
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() time.Duration { return k.now }

// Fired returns the number of events executed so far (diagnostics).
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of scheduled events not yet executed.
func (k *Kernel) Pending() int { return k.queue.Len() }

// Timer is a cancellable handle for a scheduled callback.
type Timer struct {
	kernel *Kernel
	event  *eventq.Event
}

// Cancel removes the timer from the schedule; safe to call repeatedly and
// after the timer fired. Reports whether a pending event was removed.
func (t *Timer) Cancel() bool {
	if t == nil || t.event == nil {
		return false
	}
	return t.kernel.queue.Cancel(t.event)
}

// Pending reports whether the timer is still scheduled.
func (t *Timer) Pending() bool { return t != nil && t.event != nil && !t.event.Cancelled() }

// At returns the absolute firing time the timer was scheduled for.
func (t *Timer) At() time.Duration { return t.event.At }

// Schedule runs fn after delay d (>= 0) of simulated time. A negative delay
// is clamped to zero so that "fire now" races cannot schedule into the past.
func (k *Kernel) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.ScheduleAt(k.now+d, fn)
}

// ScheduleAt runs fn at absolute time at; times before Now are clamped.
func (k *Kernel) ScheduleAt(at time.Duration, fn func()) *Timer {
	if at < k.now {
		at = k.now
	}
	return &Timer{kernel: k, event: k.queue.Push(at, fn)}
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the queue is empty or the
// clock would pass horizon. Events scheduled exactly at the horizon still
// execute. Returns ErrStopped if Stop was called, nil otherwise.
func (k *Kernel) Run(horizon time.Duration) error {
	k.stopped = false
	for {
		if k.stopped {
			return ErrStopped
		}
		head := k.queue.Peek()
		if head == nil {
			// Drained: advance the clock to the horizon so that a
			// subsequent Run continues from a consistent point.
			if k.now < horizon {
				k.now = horizon
			}
			return nil
		}
		if head.At > horizon {
			k.now = horizon
			return nil
		}
		e := k.queue.Pop()
		k.now = e.At
		k.fired++
		if e.Fn != nil {
			e.Fn()
		}
	}
}

// RunUntilIdle executes every scheduled event regardless of time. Intended
// for simulations that terminate naturally (e.g. a single broadcast flood).
func (k *Kernel) RunUntilIdle() error {
	k.stopped = false
	for {
		if k.stopped {
			return ErrStopped
		}
		e := k.queue.Pop()
		if e == nil {
			return nil
		}
		k.now = e.At
		k.fired++
		if e.Fn != nil {
			e.Fn()
		}
	}
}

// Ticker invokes fn every period until cancelled, starting at Now+period.
// It returns a cancel function. The callback may itself call the cancel
// function to stop future ticks.
func (k *Kernel) Ticker(period time.Duration, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: Ticker with non-positive period")
	}
	stopped := false
	var tick func()
	var timer *Timer
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			timer = k.Schedule(period, tick)
		}
	}
	timer = k.Schedule(period, tick)
	return func() {
		stopped = true
		timer.Cancel()
	}
}
