// Package sim provides the discrete-event simulation kernel shared by the
// ideal (Section 4) and fine-grained (Section 5) simulators.
//
// The kernel is deliberately single-threaded: wireless MAC behaviour depends
// on exact event ordering, and a sequential event loop with a deterministic
// tie-break is both faster and reproducible. All simulated time is
// time.Duration from the start of the run.
//
// Events are pooled: the kernel's queue (internal/eventq) recycles event
// slots, and Timer is a value-type handle, so steady-state scheduling — in
// particular recurring timers that fire and reschedule forever — performs
// no per-event allocation.
package sim

import (
	"errors"
	"sync/atomic"
	"time"

	"pbbf/internal/eventq"
)

// ErrStopped is returned by Run when Stop was called before the horizon.
var ErrStopped = errors.New("sim: stopped")

// totalFired counts events executed across every kernel in the process.
// Kernels flush their local counters when Run/RunUntilIdle returns, so the
// hot loop pays nothing; the benchmark runner reads deltas around runs.
var totalFired atomic.Uint64

// TotalFired returns the process-wide count of events executed by kernels
// whose Run/RunUntilIdle has returned. Intended for benchmark accounting.
func TotalFired() uint64 { return totalFired.Load() }

// Kernel is a discrete-event simulation executive. Create with NewKernel.
type Kernel struct {
	queue   eventq.Queue
	now     time.Duration
	stopped bool
	fired   uint64
	flushed uint64 // portion of fired already added to totalFired
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() time.Duration { return k.now }

// Reset returns the kernel to its initial state — clock at zero, no
// pending events — while keeping the event queue's pooled storage. The
// fired counter is flushed (not zeroed) first so TotalFired accounting
// stays monotonic across pooled runs. A reset kernel behaves exactly like
// a fresh NewKernel for scheduling and tie-break order.
func (k *Kernel) Reset() {
	k.flushFired()
	k.queue.Reset()
	k.now = 0
	k.stopped = false
}

// Fired returns the number of events executed so far (diagnostics).
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of scheduled events not yet executed.
func (k *Kernel) Pending() int { return k.queue.Len() }

// flushFired publishes events executed since the last flush to the
// process-wide counter.
func (k *Kernel) flushFired() {
	if d := k.fired - k.flushed; d > 0 {
		totalFired.Add(d)
		k.flushed = k.fired
	}
}

// Timer is a cancellable handle for a scheduled callback. It is a small
// value: copying it is cheap and the zero Timer is inert.
type Timer struct {
	kernel *Kernel
	handle eventq.Handle
	at     time.Duration
}

// Cancel removes the timer from the schedule; safe to call repeatedly and
// after the timer fired. Reports whether a pending event was removed.
func (t Timer) Cancel() bool {
	if t.kernel == nil {
		return false
	}
	return t.kernel.queue.Cancel(t.handle)
}

// Pending reports whether the timer is still scheduled.
func (t Timer) Pending() bool {
	return t.kernel != nil && t.kernel.queue.Pending(t.handle)
}

// At returns the absolute firing time the timer was scheduled for.
func (t Timer) At() time.Duration { return t.at }

// Schedule runs fn after delay d (>= 0) of simulated time. A negative delay
// is clamped to zero so that "fire now" races cannot schedule into the past.
func (k *Kernel) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return k.ScheduleAt(k.now+d, fn)
}

// ScheduleAt runs fn at absolute time at; times before Now are clamped.
func (k *Kernel) ScheduleAt(at time.Duration, fn func()) Timer {
	if at < k.now {
		at = k.now
	}
	return Timer{kernel: k, handle: k.queue.Push(at, fn), at: at}
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the queue is empty or the
// clock would pass horizon. Events scheduled exactly at the horizon still
// execute. Returns ErrStopped if Stop was called, nil otherwise.
func (k *Kernel) Run(horizon time.Duration) error {
	defer k.flushFired()
	k.stopped = false
	for {
		if k.stopped {
			return ErrStopped
		}
		at, ok := k.queue.PeekAt()
		if !ok {
			// Drained: advance the clock to the horizon so that a
			// subsequent Run continues from a consistent point.
			if k.now < horizon {
				k.now = horizon
			}
			return nil
		}
		if at > horizon {
			k.now = horizon
			return nil
		}
		_, fn, _ := k.queue.Pop()
		k.now = at
		k.fired++
		if fn != nil {
			fn()
		}
	}
}

// RunUntilIdle executes every scheduled event regardless of time. Intended
// for simulations that terminate naturally (e.g. a single broadcast flood).
func (k *Kernel) RunUntilIdle() error {
	defer k.flushFired()
	k.stopped = false
	for {
		if k.stopped {
			return ErrStopped
		}
		at, fn, ok := k.queue.Pop()
		if !ok {
			return nil
		}
		k.now = at
		k.fired++
		if fn != nil {
			fn()
		}
	}
}

// Ticker invokes fn every period until cancelled, starting at Now+period.
// It returns a cancel function. The callback may itself call the cancel
// function to stop future ticks. The tick closure is created once; each
// firing reschedules into a pooled event slot, so a long-lived ticker
// allocates nothing per tick.
func (k *Kernel) Ticker(period time.Duration, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: Ticker with non-positive period")
	}
	state := &tickerState{kernel: k, period: period, fn: fn}
	state.tick = state.run
	state.timer = k.Schedule(period, state.tick)
	return state.cancel
}

// tickerState carries a recurring timer's fixed closure and current handle.
type tickerState struct {
	kernel  *Kernel
	period  time.Duration
	fn      func()
	tick    func()
	timer   Timer
	stopped bool
}

func (s *tickerState) run() {
	if s.stopped {
		return
	}
	s.fn()
	if !s.stopped {
		s.timer = s.kernel.Schedule(s.period, s.tick)
	}
}

func (s *tickerState) cancel() {
	s.stopped = true
	s.timer.Cancel()
}
