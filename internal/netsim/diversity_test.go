package netsim

import (
	"reflect"
	"testing"

	"pbbf/internal/core"
	"pbbf/internal/mac"
)

func TestDiversityConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.LinkLossMean = -0.1 },
		func(c *Config) { c.LinkLossMean = 0.5 },
		func(c *Config) { c.ChurnFailFraction = -0.1 },
		func(c *Config) { c.ChurnFailFraction = 1 },
		func(c *Config) { c.Hetero.QSpread = -1 },
		func(c *Config) { c.Hetero.PSpread = 2 },
	}
	for i, mutate := range mutations {
		cfg := scenario(t, core.PSM(), 20, 10, 1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
	ok := scenario(t, core.PSM(), 20, 10, 1)
	ok.LinkLossMean = 0.3
	ok.ChurnFailFraction = 0.5
	ok.Hetero = mac.HeteroConfig{QSpread: 0.2}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChurnKillsExpectedCount(t *testing.T) {
	cfg := scenario(t, core.Params{P: 0.5, Q: 0.5}, 30, 10, 7)
	cfg.ChurnFailFraction = 0.3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frac := 0.3
	want := int(frac*float64(30-1) + 0.5)
	if res.NodesDied != want {
		t.Fatalf("NodesDied=%d, want %d", res.NodesDied, want)
	}
	if res.UpdatesGenerated == 0 {
		t.Fatal("source generated nothing — was the source killed?")
	}
}

func TestChurnReducesReliability(t *testing.T) {
	stable := scenario(t, core.Params{P: 0.5, Q: 0.25}, 30, 10, 11)
	resStable, err := Run(stable)
	if err != nil {
		t.Fatal(err)
	}
	churning := scenario(t, core.Params{P: 0.5, Q: 0.25}, 30, 10, 11)
	churning.ChurnFailFraction = 0.4
	resChurn, err := Run(churning)
	if err != nil {
		t.Fatal(err)
	}
	if resChurn.NodesDied == 0 {
		t.Fatal("no node died at 40% churn")
	}
	if resChurn.UpdatesReceivedFraction > resStable.UpdatesReceivedFraction+0.01 {
		t.Fatalf("churn improved reliability: %v -> %v",
			resStable.UpdatesReceivedFraction, resChurn.UpdatesReceivedFraction)
	}
}

func TestLinkLossReducesReliability(t *testing.T) {
	clean := scenario(t, core.Params{P: 0.5, Q: 0.25}, 30, 10, 13)
	resClean, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	lossy := scenario(t, core.Params{P: 0.5, Q: 0.25}, 30, 10, 13)
	lossy.LinkLossMean = 0.4
	resLossy, err := Run(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if resLossy.UpdatesReceivedFraction > resClean.UpdatesReceivedFraction+0.01 {
		t.Fatalf("40%% mean link loss improved reliability: %v -> %v",
			resClean.UpdatesReceivedFraction, resLossy.UpdatesReceivedFraction)
	}
}

// TestDiversityRunsDeterministic: every new model is replayable — two runs
// of the same seeded config produce identical Results, the property the
// serial-vs-parallel and distributed CI byte-diffs extend to whole sweeps.
func TestDiversityRunsDeterministic(t *testing.T) {
	build := func() Config {
		cfg := scenario(t, core.Params{P: 0.5, Q: 0.25}, 30, 10, 17)
		cfg.LinkLossMean = 0.2
		cfg.ChurnFailFraction = 0.2
		cfg.Hetero = mac.HeteroConfig{QSpread: 0.2}
		return cfg
	}
	a, err := Run(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(build())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestHeteroZeroSpreadMatchesHomogeneous: a zero-spread hetero config must
// reproduce the homogeneous run bit for bit (the conditional split rule:
// disabled features consume no randomness).
func TestHeteroZeroSpreadMatchesHomogeneous(t *testing.T) {
	base, err := Run(scenario(t, core.Params{P: 0.5, Q: 0.25}, 25, 10, 19))
	if err != nil {
		t.Fatal(err)
	}
	withZero := scenario(t, core.Params{P: 0.5, Q: 0.25}, 25, 10, 19)
	withZero.Hetero = mac.HeteroConfig{}
	got, err := Run(withZero)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatal("zero-valued hetero config perturbed the run")
	}
}

// TestHeteroSpreadChangesRun: a real spread must actually change per-node
// behaviour relative to the homogeneous run.
func TestHeteroSpreadChangesRun(t *testing.T) {
	base, err := Run(scenario(t, core.Params{P: 0.5, Q: 0.5}, 25, 10, 23))
	if err != nil {
		t.Fatal(err)
	}
	spread := scenario(t, core.Params{P: 0.5, Q: 0.5}, 25, 10, 23)
	spread.Hetero = mac.HeteroConfig{QSpread: 0.4}
	got, err := Run(spread)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(base, got) {
		t.Fatal("q jitter of ±0.4 left the run untouched")
	}
}
