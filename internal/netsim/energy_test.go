package netsim

import (
	"testing"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/energy"
	"pbbf/internal/mac"
	"pbbf/internal/rng"
	"pbbf/internal/topo"
	"pbbf/internal/trace"
)

// energyTestConfig builds a small finite-battery scenario.
func energyTestConfig(t *testing.T, opts EnergyOptions) Config {
	t.Helper()
	const n = 24
	d, err := topo.NewConnectedRandomDisk(topo.DiskConfig{
		N: n, Range: 30, Area: topo.AreaForDensity(n, 30, 10),
	}, rng.New(11), 500)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Topo:      d,
		Source:    topo.NodeID(n / 2),
		MAC:       mac.DefaultConfig(core.Params{P: 0.5, Q: 0.25}),
		Lambda:    0.01,
		Duration:  300 * time.Second,
		K:         1,
		TrackHops: []int{1, 2},
		Seed:      99,
		Energy:    opts,
	}
}

func TestEnergyOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		e    EnergyOptions
		ok   bool
	}{
		{"zero (infinite)", EnergyOptions{}, true},
		{"finite", EnergyOptions{InitialJ: 1}, true},
		{"finite jittered harvesting", EnergyOptions{InitialJ: 1, JitterFrac: 0.2, HarvestW: 0.01}, true},
		{"negative initial", EnergyOptions{InitialJ: -1}, false},
		{"jitter without battery", EnergyOptions{JitterFrac: 0.2}, false},
		{"jitter at 1", EnergyOptions{InitialJ: 1, JitterFrac: 1}, false},
		{"negative harvest", EnergyOptions{InitialJ: 1, HarvestW: -0.01}, false},
		{"harvest without battery", EnergyOptions{HarvestW: 0.01}, false},
	}
	for _, tc := range cases {
		cfg := energyTestConfig(t, tc.e)
		_, err := Run(cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%s: Run error = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestFiniteEnergyLifetimeMetrics: batteries sized to kill part of the
// fleet mid-run must produce depletion deaths (classified separately from
// churn) and internally consistent lifetime metrics.
func TestFiniteEnergyLifetimeMetrics(t *testing.T) {
	cfg := energyTestConfig(t, EnergyOptions{InitialJ: 0.4, JitterFrac: 0.2})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesDepleted == 0 {
		t.Fatal("no node depleted despite a 0.4 J battery over 300 s awake-heavy duty")
	}
	if res.NodesDied != 0 {
		t.Fatalf("NodesDied = %d without churn; depletion deaths must not count as churn", res.NodesDied)
	}
	horizon := cfg.Duration.Seconds()
	if res.TimeToFirstDeathS <= 0 || res.TimeToFirstDeathS >= horizon {
		t.Fatalf("TimeToFirstDeathS = %v, want inside (0, %v)", res.TimeToFirstDeathS, horizon)
	}
	if res.TimeToHalfDeadS < res.TimeToFirstDeathS {
		t.Fatalf("TimeToHalfDeadS %v < TimeToFirstDeathS %v", res.TimeToHalfDeadS, res.TimeToFirstDeathS)
	}
	if len(res.CoverageOverTime) == 0 {
		t.Fatal("no coverage samples")
	}
	if res.CoverageOverTime[0] != 1 {
		t.Fatalf("coverage at t=0 = %v, want 1", res.CoverageOverTime[0])
	}
	for i := 1; i < len(res.CoverageOverTime); i++ {
		if res.CoverageOverTime[i] > res.CoverageOverTime[i-1] {
			t.Fatalf("coverage increased at sample %d: %v", i, res.CoverageOverTime)
		}
	}
	n := float64(cfg.Topo.N())
	if got, want := res.CoverageOverTime[len(res.CoverageOverTime)-1], (n-float64(res.NodesDepleted))/n; got != want {
		t.Fatalf("final coverage %v inconsistent with %d depleted of %v nodes (want %v)",
			got, res.NodesDepleted, n, want)
	}
	if res.EnergyVarianceJ2 < 0 {
		t.Fatalf("energy variance %v negative", res.EnergyVarianceJ2)
	}
}

// TestInfiniteEnergyNoLifetimeMetrics: the legacy configuration must not
// grow lifetime metrics — no deaths, no coverage samples, zero times.
func TestInfiniteEnergyNoLifetimeMetrics(t *testing.T) {
	cfg := energyTestConfig(t, EnergyOptions{})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesDepleted != 0 || res.NodesDied != 0 {
		t.Fatalf("immortal run reported deaths: depleted %d, died %d", res.NodesDepleted, res.NodesDied)
	}
	if res.TimeToFirstDeathS != 0 || res.TimeToHalfDeadS != 0 || res.CoverageOverTime != nil {
		t.Fatalf("immortal run reported lifetime metrics: %+v", res)
	}
}

// deathTimes extracts node -> depletion-death time from a trace stream,
// checking each death carries the depleted cause.
func deathTimes(t *testing.T, events []trace.Event) map[int32]time.Duration {
	t.Helper()
	deaths := make(map[int32]time.Duration)
	for _, ev := range events {
		if ev.Kind != trace.KindDeath {
			continue
		}
		if ev.Value != trace.DeathCauseDepleted {
			t.Fatalf("death of node %d at %v carries cause %v, want depleted", ev.Node, ev.T, ev.Value)
		}
		if _, dup := deaths[ev.Node]; dup {
			t.Fatalf("node %d died twice", ev.Node)
		}
		deaths[ev.Node] = ev.T
	}
	return deaths
}

// TestDepletionSilencesNode: the acceptance invariant — after a node's
// depletion death event, the trace stream contains no further activity from
// it: no transmissions started, no receptions, no deliveries. (A tx_end at
// the death instant is the one allowed trailer: a frame committed to the
// air completes, and the death is polled right after it.)
func TestDepletionSilencesNode(t *testing.T) {
	cfg := energyTestConfig(t, EnergyOptions{InitialJ: 0.4, JitterFrac: 0.2})
	var slab trace.Slab
	cfg.Trace = &slab
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	deaths := deathTimes(t, slab.Events)
	if len(deaths) != res.NodesDepleted {
		t.Fatalf("trace has %d depletion deaths, result says %d", len(deaths), res.NodesDepleted)
	}
	if len(deaths) == 0 {
		t.Fatal("no depletion deaths to check")
	}
	dead := make(map[int32]bool)
	for _, ev := range slab.Events {
		if ev.Kind == trace.KindDeath {
			dead[ev.Node] = true
			continue
		}
		if !dead[ev.Node] {
			continue
		}
		switch ev.Kind {
		case trace.KindTxData, trace.KindTxATIM, trace.KindRxData, trace.KindRxATIM,
			trace.KindDuplicate, trace.KindDeliver, trace.KindWake:
			t.Fatalf("dead node %d (died %v) still active: %s at %v",
				ev.Node, deaths[ev.Node], ev.Kind, ev.T)
		}
	}
}

// TestMidTransmissionDepletion pins the edge case where the battery runs
// dry while a frame is on the air. Phase one runs with an effectively
// infinite (but finite-typed, so the RNG stream matches) battery and reads
// off the first data transmission: who sends, when, for how long, and the
// sender's consumption at tx start. Phase two sizes every battery to run
// dry exactly halfway through that airtime. The committed frame must
// complete — tx_end on time, billed at full transmit power — and the death
// must land at the tx_end instant, after it in stream order.
func TestMidTransmissionDepletion(t *testing.T) {
	const probeJ = 1000 // outlasts any 300 s run; keeps Energy.Enabled() true
	probe := energyTestConfig(t, EnergyOptions{InitialJ: probeJ})
	var probeSlab trace.Slab
	probe.Trace = &probeSlab
	if _, err := Run(probe); err != nil {
		t.Fatal(err)
	}
	var tx *trace.Event
	for i, ev := range probeSlab.Events {
		if ev.Kind == trace.KindTxData {
			tx = &probeSlab.Events[i]
			break
		}
	}
	if tx == nil {
		t.Fatal("probe run transmitted no data frame")
	}
	// The sender's cumulative consumption at tx start: the energy event of
	// its transmit transition at the same instant.
	spentJ := -1.0
	for _, ev := range probeSlab.Events {
		if ev.Kind == trace.KindEnergy && ev.Node == tx.Node && ev.T == tx.T &&
			ev.Peer == int32(energy.Transmit) {
			spentJ = ev.Value
			break
		}
	}
	if spentJ < 0 {
		t.Fatalf("no transmit energy transition for node %d at %v", tx.Node, tx.T)
	}
	airtime := time.Duration(tx.Value * float64(time.Second))
	txEnd := tx.T + airtime
	profile := probe.MAC.Profile
	if profile == (energy.Profile{}) {
		profile = energy.Mica2()
	}

	// Phase two: run dry halfway through that airtime. The stream is
	// identical up to the first depletion (same seeds, same draws), and the
	// first data transmitter is also the top consumer at that instant (its
	// extra ATIM transmissions put it ahead of the idling rest), so this
	// sender dies mid-air before any other node depletes.
	cutoff := energyTestConfig(t, EnergyOptions{InitialJ: spentJ + profile.TransmitW*airtime.Seconds()/2})
	var slab trace.Slab
	cutoff.Trace = &slab
	res, err := Run(cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesDepleted == 0 {
		t.Fatal("no node depleted")
	}
	txEndIdx, deathIdx := -1, -1
	for i, ev := range slab.Events {
		if ev.Node != tx.Node {
			continue
		}
		if ev.Kind == trace.KindTxEnd && ev.T == txEnd && txEndIdx < 0 {
			txEndIdx = i
		}
		if ev.Kind == trace.KindDeath {
			deathIdx = i
			if ev.T != txEnd {
				t.Fatalf("death at %v, want the tx_end instant %v", ev.T, txEnd)
			}
			if ev.Value != trace.DeathCauseDepleted {
				t.Fatalf("death cause %v, want depleted", ev.Value)
			}
		}
	}
	if txEndIdx < 0 {
		t.Fatalf("committed frame did not complete: no tx_end for node %d at %v", tx.Node, txEnd)
	}
	if deathIdx < 0 {
		t.Fatalf("node %d never died", tx.Node)
	}
	if deathIdx < txEndIdx {
		t.Fatal("death recorded before the frame left the air")
	}
	// Full billing: the transmit interval closes at tx_end with the entire
	// airtime charged at transmit power, even though the battery ran dry
	// halfway through it.
	for _, ev := range slab.Events {
		if ev.Kind == trace.KindEnergy && ev.Node == tx.Node && ev.T == txEnd {
			want := spentJ + profile.TransmitW*airtime.Seconds()
			if !almostEqualF(ev.Value, want, 1e-12) {
				t.Fatalf("billed %v J through tx_end, want %v (full airtime at PTX)", ev.Value, want)
			}
			break
		}
	}
}

func almostEqualF(a, b, eps float64) bool {
	d := a - b
	return d <= eps && d >= -eps
}
