package netsim

import (
	"time"

	"pbbf/internal/codedist"
	"pbbf/internal/mac"
	"pbbf/internal/phy"
	"pbbf/internal/rng"
	"pbbf/internal/sim"
	"pbbf/internal/stats"
	"pbbf/internal/topo"
)

// RunPool owns every reusable piece of one simulation run: the event
// kernel, the channel, a node fleet with its struct-of-arrays energy bank,
// per-node trackers, the code-distribution source, the link-loss table, the
// churn and BFS scratch buffers, and all the run-level callbacks — bound
// once and rescheduled forever. A sweep worker that runs thousands of
// points through one pool performs its steady-state simulation work with
// (near) zero allocation.
//
// Determinism: a pooled run draws exactly the random stream Run draws for
// the same Config, so results are byte-identical to the unpooled path. A
// RunPool is not safe for concurrent use; give each worker its own.
type RunPool struct {
	kernel   *sim.Kernel
	channel  *phy.Channel
	fleet    *mac.Fleet
	trackers []codedist.Tracker
	deliver  []mac.DeliveryFunc
	kills    []func()
	source   codedist.Source
	linkLoss phy.LinkLoss
	bfs      topo.Scratch

	// Random sources for the run and its conditionally-drawn features, all
	// reseeded in place (the per-node sources live in the fleet).
	base      rng.Source
	lossRNG   rng.Source
	fillRNG   rng.Source
	linkRNG   rng.Source
	heteroRNG rng.Source
	energyRNG rng.Source
	churnRNG  rng.Source

	permBuf []int
	victims []topo.NodeID
	deaths  []time.Duration

	// cfg is the in-flight run's configuration; the pre-bound generate and
	// beacon callbacks read it through the pool.
	cfg        Config
	generateFn func()
	endWindow  func()
	tick       func()
}

// NewRunPool returns a pool ready for its first Run.
func NewRunPool() *RunPool {
	p := &RunPool{kernel: sim.NewKernel(), fleet: mac.NewFleet()}
	p.generateFn = func() {
		now := p.kernel.Now()
		payload := p.source.Generate(now)
		p.trackers[p.cfg.Source].Observe(payload, now)
		p.fleet.Node(int(p.cfg.Source)).Broadcast(mac.Packet{
			Key:     mac.PacketKeyFor(p.cfg.Source, uint64(p.source.Generated()-1)),
			Payload: payload,
		})
	}
	p.endWindow = func() {
		for _, node := range p.fleet.Nodes() {
			node.EndATIMWindow()
		}
	}
	p.tick = func() {
		for _, node := range p.fleet.Nodes() {
			node.StartFrame()
		}
		p.kernel.Schedule(p.cfg.MAC.Timing.Active, p.endWindow)
		p.kernel.Schedule(p.cfg.MAC.Timing.Frame, p.tick)
	}
	return p
}

// deliverFor returns slot i's delivery upcall, binding closures for new
// slots once; they read the tracker through the pool, so they stay valid
// as the tracker slice grows.
func (p *RunPool) deliverFor(i int) mac.DeliveryFunc {
	for len(p.deliver) <= i {
		j := len(p.deliver)
		p.deliver = append(p.deliver, func(pkt mac.Packet, _ topo.NodeID, now time.Duration) {
			if payload, ok := pkt.Payload.(codedist.Payload); ok {
				p.trackers[j].Observe(payload, now)
			}
		})
	}
	return p.deliver[i]
}

// killFor returns slot i's pre-bound fail-stop callback.
func (p *RunPool) killFor(i int) func() {
	for len(p.kills) <= i {
		j := len(p.kills)
		p.kills = append(p.kills, func() { p.fleet.Node(j).Kill() })
	}
	return p.kills[i]
}

// Run executes one scenario on the pool's reused state. The sequence of
// operations — and in particular of random draws — mirrors the package
// Run function step for step; see the comments there for the rationale.
func (p *RunPool) Run(cfg Config) (*Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if err := cfg.validateNormalized(); err != nil {
		return nil, err
	}
	p.cfg = cfg
	kernel := p.kernel
	kernel.Reset()
	if p.channel == nil {
		p.channel = phy.NewChannel(kernel, cfg.Topo)
	} else {
		p.channel.Reset(cfg.Topo)
	}
	channel := p.channel
	channel.SetTrace(cfg.MAC.Trace)
	p.base.Reseed(cfg.Seed)
	base := &p.base
	if cfg.Loss.Rate > 0 {
		base.SplitInto(&p.lossRNG)
		if err := channel.SetLoss(cfg.Loss.Rate, &p.lossRNG); err != nil {
			return nil, err
		}
	}
	if cfg.Loss.LinkMean > 0 {
		base.SplitInto(&p.fillRNG)
		if err := p.linkLoss.FillUniform(cfg.Topo, cfg.Loss.LinkMean, &p.fillRNG); err != nil {
			return nil, err
		}
		base.SplitInto(&p.linkRNG)
		if err := channel.SetLinkLoss(&p.linkLoss, &p.linkRNG); err != nil {
			return nil, err
		}
	}
	var heteroRNG *rng.Source
	if cfg.Hetero.Enabled() {
		base.SplitInto(&p.heteroRNG)
		heteroRNG = &p.heteroRNG
	}
	var energyRNG *rng.Source
	if cfg.Energy.Enabled() {
		base.SplitInto(&p.energyRNG)
		energyRNG = &p.energyRNG
	}

	n := cfg.Topo.N()
	p.fleet.Reset(n, cfg.MAC.Profile, kernel.Now())
	if cap(p.trackers) < n {
		p.trackers = make([]codedist.Tracker, n)
	} else {
		p.trackers = p.trackers[:n]
	}
	for i := 0; i < n; i++ {
		p.trackers[i].Reset()
		nodeCfg := cfg.MAC
		if heteroRNG != nil {
			nodeCfg.Params = cfg.Hetero.Sample(cfg.MAC.Params, heteroRNG)
		}
		if energyRNG != nil {
			nodeCfg.Energy = cfg.Energy.Sample(energyRNG)
		}
		if err := p.fleet.InitNode(i, topo.NodeID(i), nodeCfg, kernel, channel, base, p.deliverFor(i)); err != nil {
			return nil, err
		}
	}

	if cfg.Churn.FailFraction > 0 {
		base.SplitInto(&p.churnRNG)
		churnRNG := &p.churnRNG
		deaths := int(cfg.Churn.FailFraction*float64(n-1) + 0.5)
		if cap(p.victims) < deaths {
			p.victims = make([]topo.NodeID, 0, deaths)
		}
		p.victims = p.victims[:0]
		p.permBuf = churnRNG.PermInto(p.permBuf, n)
		for _, id := range p.permBuf {
			if len(p.victims) == deaths {
				break
			}
			if topo.NodeID(id) != cfg.Source {
				p.victims = append(p.victims, topo.NodeID(id))
			}
		}
		for _, id := range p.victims {
			at := time.Duration(churnRNG.Float64() * float64(cfg.Duration))
			kernel.ScheduleAt(at, p.killFor(int(id)))
		}
	}

	if err := p.source.Reset(cfg.K); err != nil {
		return nil, err
	}
	interval := time.Duration(float64(time.Second) / cfg.Lambda)
	for at := time.Duration(0); at < cfg.Duration; at += interval {
		kernel.ScheduleAt(at, p.generateFn)
	}
	kernel.ScheduleAt(0, p.tick)

	if err := kernel.Run(cfg.Duration); err != nil {
		return nil, err
	}
	return p.harvest(), nil
}

// harvest computes the Result from final simulation state — the pooled
// counterpart of the package harvest function, with BFS running on the
// pool's scratch. The returned Result is freshly allocated and safe to
// retain across later runs.
func (p *RunPool) harvest() *Result {
	cfg := &p.cfg
	generated := p.source.Generated()
	res := &Result{
		UpdatesGenerated: generated,
		LatencyAtHop:     make(map[int]*stats.Accumulator, len(cfg.TrackHops)),
		NodesAtHop:       make(map[int]int, len(cfg.TrackHops)),
	}
	dist := p.bfs.HopDistances(cfg.Topo, cfg.Source)
	for _, h := range cfg.TrackHops {
		res.LatencyAtHop[h] = &stats.Accumulator{}
		for _, d := range dist {
			if d == h {
				res.NodesAtHop[h]++
			}
		}
	}

	var energyTotal, energySq float64
	var fraction stats.Accumulator
	nodes := p.fleet.Nodes()
	for i, node := range nodes {
		node.FinishMetering(cfg.Duration)
		e := node.EnergyAt(cfg.Duration)
		energyTotal += e
		energySq += e * e
		if node.Dead() {
			if node.Depleted() {
				res.NodesDepleted++
			} else {
				res.NodesDied++
			}
		}
		if topo.NodeID(i) == cfg.Source {
			continue
		}
		tr := &p.trackers[i]
		if generated > 0 {
			fraction.Add(float64(tr.Received()) / float64(generated))
		}
		// Iterate by sequence number: map order would make the floating-
		// point accumulation (and hence the run) nondeterministic.
		for seq := 0; seq < generated; seq++ {
			lat, ok := tr.Latency(seq)
			if !ok {
				continue
			}
			res.Latency.Add(lat.Seconds())
			if acc, ok := res.LatencyAtHop[dist[i]]; ok {
				acc.Add(lat.Seconds())
			}
		}
	}
	if generated > 0 {
		res.EnergyPerUpdateJ = energyTotal / float64(len(nodes)) / float64(generated)
	}
	mean := energyTotal / float64(len(nodes))
	res.EnergyVarianceJ2 = energySq/float64(len(nodes)) - mean*mean
	if cfg.Energy.Enabled() {
		p.deaths = lifetimeMetrics(res, cfg, nodes, p.deaths)
	}
	res.UpdatesReceivedFraction = fraction.Mean()
	res.FramesStarted, res.FramesDelivered, res.FramesCollided = p.channel.Stats()
	return res
}
