package netsim

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/mac"
	"pbbf/internal/raceflag"
	"pbbf/internal/rng"
	"pbbf/internal/topo"
)

// poolTestConfigs returns a config matrix exercising every conditional
// feature path (loss, link loss, churn, hetero, adaptive) over small
// fields, so pool-vs-fresh equivalence covers each RNG-split branch.
func poolTestConfigs(t *testing.T) []Config {
	t.Helper()
	mk := func(n int, seed uint64, mutate func(*Config)) Config {
		d, err := topo.NewConnectedRandomDisk(topo.DiskConfig{
			N: n, Range: 30, Area: topo.AreaForDensity(n, 30, 10),
		}, rng.New(seed), 500)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Topo:      d,
			Source:    topo.NodeID(n / 2),
			MAC:       mac.DefaultConfig(core.Params{P: 0.5, Q: 0.25}),
			Lambda:    0.01,
			Duration:  300 * time.Second,
			K:         1,
			TrackHops: []int{1, 2},
			Seed:      seed * 7,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		return cfg
	}
	adaptive := core.DefaultAdaptiveConfig()
	return []Config{
		mk(30, 1, nil),
		mk(24, 2, func(c *Config) { c.LossRate = 0.2 }),
		mk(24, 3, func(c *Config) { c.LinkLossMean = 0.2 }),
		mk(24, 4, func(c *Config) { c.ChurnFailFraction = 0.25 }),
		mk(24, 5, func(c *Config) { c.Hetero = mac.HeteroConfig{QSpread: 0.2} }),
		mk(20, 6, func(c *Config) { c.MAC.Adaptive = &adaptive }),
		mk(24, 7, func(c *Config) {
			// Batteries sized to deplete part of the fleet mid-run, so the
			// equivalence matrix covers the energy RNG split, depletion
			// deaths, and the lifetime metrics.
			c.Energy = EnergyOptions{InitialJ: 0.4, JitterFrac: 0.2, HarvestW: 0.002}
		}),
	}
}

// TestRunPoolMatchesRun: a pooled run must be observably identical to the
// unpooled Run for the same Config — same draws, same metrics — and stay
// identical when the pool is dirty from runs of other shapes and features.
func TestRunPoolMatchesRun(t *testing.T) {
	pool := NewRunPool()
	for i, cfg := range poolTestConfigs(t) {
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("config %d: fresh run: %v", i, err)
		}
		got, err := pool.Run(cfg)
		if err != nil {
			t.Fatalf("config %d: pooled run: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("config %d: pooled result diverges\nfresh:  %+v\npooled: %+v", i, want, got)
		}
	}
}

// TestRunPoolRepeatIdentical: the same scenario twice through one pool must
// return equal results — reused state cannot leak between runs.
func TestRunPoolRepeatIdentical(t *testing.T) {
	pool := NewRunPool()
	for i, cfg := range poolTestConfigs(t) {
		first, err := pool.Run(cfg)
		if err != nil {
			t.Fatalf("config %d: first run: %v", i, err)
		}
		second, err := pool.Run(cfg)
		if err != nil {
			t.Fatalf("config %d: second run: %v", i, err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("config %d: rerun diverges\nfirst:  %+v\nsecond: %+v", i, first, second)
		}
	}
}

// TestRunPoolConcurrentWorkers: one pool per goroutine is the sweep
// deployment model; every worker must reproduce the single-threaded result.
// Run with -race in CI.
func TestRunPoolConcurrentWorkers(t *testing.T) {
	cfgs := poolTestConfigs(t)
	want := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := NewRunPool()
			for i, cfg := range cfgs {
				got, err := pool.Run(cfg)
				if err != nil {
					errs[w] = err
					return
				}
				if !reflect.DeepEqual(want[i], got) {
					t.Errorf("worker %d config %d: result diverges", w, i)
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestRunPoolSteadyStateAllocs: after warm-up, a pooled run's allocations
// must stay within a small constant budget — the per-run leftovers (result
// maps, payload copies, records dropped by the kernel reset) — independent
// of event count.
func TestRunPoolSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless under -race")
	}
	cfg := poolTestConfigs(t)[0]
	pool := NewRunPool()
	if _, err := pool.Run(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := pool.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// The budget covers the freshly-built Result (its maps and accumulator
	// pointers), one payload copy + interface box per generated update, and
	// the handful of pooled records the end-of-run kernel reset drops.
	const budget = 60
	if allocs > budget {
		t.Fatalf("steady-state pooled run allocates %.0f times, budget %d", allocs, budget)
	}
}
