package netsim

import (
	"testing"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/mac"
	"pbbf/internal/rng"
	"pbbf/internal/topo"
)

// scenario builds the paper's Table 2 deployment: 50 nodes, Δ=10, with the
// source near the field center, shrunk where noted for test speed.
func scenario(t *testing.T, params core.Params, n int, delta float64, seed uint64) Config {
	t.Helper()
	r := rng.New(seed)
	cfg := topo.DiskConfig{N: n, Range: 30, Area: topo.AreaForDensity(n, 30, delta)}
	field, err := topo.NewConnectedRandomDisk(cfg, r, 200)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Topo:      field,
		Source:    0,
		MAC:       mac.DefaultConfig(params),
		Lambda:    0.01,
		Duration:  300 * time.Second,
		K:         1,
		TrackHops: []int{2},
		Seed:      seed,
	}
}

func TestValidate(t *testing.T) {
	good := scenario(t, core.PSM(), 20, 10, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Topo = nil },
		func(c *Config) { c.Source = -1 },
		func(c *Config) { c.Source = topo.NodeID(c.Topo.N()) },
		func(c *Config) { c.MAC.BitrateBps = 0 },
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.K = 0 },
	}
	for i, mutate := range mutations {
		cfg := scenario(t, core.PSM(), 20, 10, 1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestPSMHighReliability(t *testing.T) {
	res, err := Run(scenario(t, core.PSM(), 30, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdatesGenerated != 3 {
		t.Fatalf("updates generated = %d, want 3 (300s at 0.01/s)", res.UpdatesGenerated)
	}
	if res.UpdatesReceivedFraction < 0.95 {
		t.Fatalf("PSM reliability %v, want ≈1", res.UpdatesReceivedFraction)
	}
}

func TestNoPSMLowLatencyHighEnergy(t *testing.T) {
	psm, err := Run(scenario(t, core.PSM(), 30, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(scenario(t, core.AlwaysOn(), 30, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	if on.Latency.Mean() >= psm.Latency.Mean() {
		t.Fatalf("always-on latency %v not below PSM %v", on.Latency.Mean(), psm.Latency.Mean())
	}
	if on.EnergyPerUpdateJ <= psm.EnergyPerUpdateJ {
		t.Fatalf("always-on energy %v not above PSM %v", on.EnergyPerUpdateJ, psm.EnergyPerUpdateJ)
	}
	// Figure 13: PSM saves almost 2 J/update versus no PSM (the gap is
	// well under the 10x duty-cycle ratio because PSM receivers of ATIMs
	// legitimately stay awake whole beacon intervals during propagation).
	if on.EnergyPerUpdateJ-psm.EnergyPerUpdateJ < 1.5 {
		t.Fatalf("energy gap too small: on=%v psm=%v", on.EnergyPerUpdateJ, psm.EnergyPerUpdateJ)
	}
}

func TestEnergyGrowsWithQ(t *testing.T) {
	low, err := Run(scenario(t, core.Params{P: 0.25, Q: 0.1}, 25, 10, 4))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(scenario(t, core.Params{P: 0.25, Q: 0.9}, 25, 10, 4))
	if err != nil {
		t.Fatal(err)
	}
	if high.EnergyPerUpdateJ <= low.EnergyPerUpdateJ {
		t.Fatalf("energy did not grow with q: %v -> %v",
			low.EnergyPerUpdateJ, high.EnergyPerUpdateJ)
	}
}

func TestPBBFHighQBeatsPSMLatency(t *testing.T) {
	// Figure 14/15: for large q and moderate p, PBBF's latency drops well
	// below PSM's.
	psm, err := Run(scenario(t, core.PSM(), 30, 12, 5))
	if err != nil {
		t.Fatal(err)
	}
	pbbf, err := Run(scenario(t, core.Params{P: 0.5, Q: 0.9}, 30, 12, 5))
	if err != nil {
		t.Fatal(err)
	}
	if pbbf.Latency.Mean() >= psm.Latency.Mean() {
		t.Fatalf("PBBF(0.5, 0.9) latency %v not below PSM %v",
			pbbf.Latency.Mean(), psm.Latency.Mean())
	}
}

func TestTrackedHopsPopulated(t *testing.T) {
	cfg := scenario(t, core.PSM(), 40, 10, 6)
	cfg.TrackHops = []int{1, 2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range cfg.TrackHops {
		if res.NodesAtHop[h] == 0 {
			t.Skipf("scenario has no nodes at hop %d", h)
		}
		if res.LatencyAtHop[h].N() == 0 {
			t.Fatalf("no latency samples at hop %d", h)
		}
	}
	// 2-hop PSM latency ≈ AW + BI (Figure 14): allow a generous band.
	mean := res.LatencyAtHop[2].Mean()
	if mean < 5 || mean > 25 {
		t.Fatalf("2-hop PSM latency %v s, want ≈11", mean)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(scenario(t, core.Params{P: 0.25, Q: 0.5}, 25, 10, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(scenario(t, core.Params{P: 0.25, Q: 0.5}, 25, 10, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyPerUpdateJ != b.EnergyPerUpdateJ ||
		a.UpdatesReceivedFraction != b.UpdatesReceivedFraction ||
		a.Latency.Mean() != b.Latency.Mean() {
		t.Fatal("identical seeds diverged")
	}
}

func TestChannelCountersPopulated(t *testing.T) {
	res, err := Run(scenario(t, core.PSM(), 25, 10, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesStarted == 0 || res.FramesDelivered == 0 {
		t.Fatalf("channel counters empty: started=%d delivered=%d",
			res.FramesStarted, res.FramesDelivered)
	}
}

func TestHigherDensityImprovesPBBFReliability(t *testing.T) {
	// Figure 18: more neighbors → more redundant copies → better coverage
	// for lossy PBBF settings.
	sparse, err := Run(scenario(t, core.Params{P: 0.5, Q: 0.25}, 40, 8, 9))
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Run(scenario(t, core.Params{P: 0.5, Q: 0.25}, 40, 16, 9))
	if err != nil {
		t.Fatal(err)
	}
	if dense.UpdatesReceivedFraction < sparse.UpdatesReceivedFraction-0.05 {
		t.Fatalf("density hurt reliability: Δ8=%v Δ16=%v",
			sparse.UpdatesReceivedFraction, dense.UpdatesReceivedFraction)
	}
}

func BenchmarkRun50Nodes(b *testing.B) {
	r := rng.New(1)
	cfg := topo.DiskConfig{N: 50, Range: 30, Area: topo.AreaForDensity(50, 30, 10)}
	field, err := topo.NewConnectedRandomDisk(cfg, r, 200)
	if err != nil {
		b.Fatal(err)
	}
	run := Config{
		Topo:     field,
		Source:   0,
		MAC:      mac.DefaultConfig(core.Params{P: 0.25, Q: 0.25}),
		Lambda:   0.01,
		Duration: 500 * time.Second,
		K:        1,
		Seed:     1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(run); err != nil {
			b.Fatal(err)
		}
	}
}
