package netsim

import (
	"testing"

	"pbbf/internal/core"
)

func TestLossRateValidation(t *testing.T) {
	cfg := scenario(t, core.PSM(), 20, 10, 1)
	cfg.LossRate = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative loss accepted")
	}
	cfg.LossRate = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("loss rate 1 accepted")
	}
	cfg.LossRate = 0.5
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLossReducesReliability(t *testing.T) {
	clean := scenario(t, core.Params{P: 0.5, Q: 0.25}, 30, 10, 11)
	resClean, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	lossy := scenario(t, core.Params{P: 0.5, Q: 0.25}, 30, 10, 11)
	lossy.LossRate = 0.4
	resLossy, err := Run(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if resLossy.UpdatesReceivedFraction > resClean.UpdatesReceivedFraction+0.01 {
		t.Fatalf("40%% loss improved reliability: %v -> %v",
			resClean.UpdatesReceivedFraction, resLossy.UpdatesReceivedFraction)
	}
}

func TestKBatchingImprovesLossyReliability(t *testing.T) {
	k1 := scenario(t, core.Params{P: 0.5, Q: 0.1}, 30, 10, 12)
	k1.LossRate = 0.2
	res1, err := Run(k1)
	if err != nil {
		t.Fatal(err)
	}
	k4 := scenario(t, core.Params{P: 0.5, Q: 0.1}, 30, 10, 12)
	k4.LossRate = 0.2
	k4.K = 4
	res4, err := Run(k4)
	if err != nil {
		t.Fatal(err)
	}
	if res4.UpdatesReceivedFraction < res1.UpdatesReceivedFraction-0.02 {
		t.Fatalf("k=4 fraction %v below k=1 fraction %v under loss",
			res4.UpdatesReceivedFraction, res1.UpdatesReceivedFraction)
	}
}

func TestAdaptiveMACIntegration(t *testing.T) {
	cfg := scenario(t, core.Params{P: 0.25, Q: 0.25}, 25, 10, 13)
	ac := core.DefaultAdaptiveConfig()
	ac.Initial = cfg.MAC.Params
	cfg.MAC.Adaptive = &ac
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdatesGenerated == 0 {
		t.Fatal("no updates generated")
	}
	if res.UpdatesReceivedFraction <= 0 || res.UpdatesReceivedFraction > 1 {
		t.Fatalf("received fraction %v out of range", res.UpdatesReceivedFraction)
	}
}

func TestAdaptiveMACDeterministic(t *testing.T) {
	run := func() float64 {
		cfg := scenario(t, core.Params{P: 0.25, Q: 0.25}, 25, 10, 14)
		ac := core.DefaultAdaptiveConfig()
		ac.Initial = cfg.MAC.Params
		cfg.MAC.Adaptive = &ac
		cfg.LossRate = 0.2
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.UpdatesReceivedFraction
	}
	if run() != run() {
		t.Fatal("adaptive lossy runs with identical seeds diverged")
	}
}
