package netsim

import (
	"math"
	"testing"

	"pbbf/internal/core"
	"pbbf/internal/protocol"
)

// protoScenario is the shared arena: one seeded connected field, one
// source, one workload — only cfg.Protocol varies between the runs under
// comparison.
func protoScenario(t *testing.T, spec protocol.Spec, seed uint64) Config {
	t.Helper()
	cfg := scenario(t, core.Params{P: 0.25, Q: 0.25}, 30, 10, seed)
	cfg.Protocol = spec
	return cfg
}

// TestRivalProtocolsDeliver checks the floor every protocol must clear:
// each rival floods most of a connected 30-node field.
func TestRivalProtocolsDeliver(t *testing.T) {
	specs := []protocol.Spec{
		{Name: protocol.NameSleepSched},
		{Name: protocol.NameOLA, RelayThreshold: 10},
	}
	for _, spec := range specs {
		res, err := Run(protoScenario(t, spec, 11))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if res.UpdatesReceivedFraction < 0.8 {
			t.Errorf("%s delivered only %v of updates", spec.Name, res.UpdatesReceivedFraction)
		}
	}
}

// TestProtocolEnergyLatencyOrdering pins each rival to its corner of the
// trade-off space: sleepsched (duty cycle 1/4) must spend less energy than
// always-awake OLA, and OLA — which relays within one CSMA backoff — must
// beat sleepsched's O(W)-intervals-per-hop latency by a wide margin.
func TestProtocolEnergyLatencyOrdering(t *testing.T) {
	run := func(spec protocol.Spec) *Result {
		t.Helper()
		res, err := Run(protoScenario(t, spec, 12))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		return res
	}
	sleep := run(protocol.Spec{Name: protocol.NameSleepSched})
	ola := run(protocol.Spec{Name: protocol.NameOLA, RelayThreshold: 10})
	if sleep.EnergyPerUpdateJ >= ola.EnergyPerUpdateJ {
		t.Errorf("sleepsched (duty-cycled) should cost less than always-on OLA: %v vs %v J/update",
			sleep.EnergyPerUpdateJ, ola.EnergyPerUpdateJ)
	}
	if sleep.Latency.N() == 0 || ola.Latency.N() == 0 {
		t.Fatal("both protocols should record latencies")
	}
	if ola.Latency.Mean() >= sleep.Latency.Mean()/2 {
		t.Errorf("OLA should be far faster than sleepsched: %v vs %v s",
			ola.Latency.Mean(), sleep.Latency.Mean())
	}
}

// TestRivalProtocolsDeterministic replays each rival and requires bitwise
// identical results — the same determinism contract PBBF runs satisfy.
func TestRivalProtocolsDeterministic(t *testing.T) {
	for _, spec := range []protocol.Spec{
		{Name: protocol.NameSleepSched, WakePeriod: 2},
		{Name: protocol.NameOLA},
	} {
		a, err := Run(protoScenario(t, spec, 13))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		b, err := Run(protoScenario(t, spec, 13))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if a.EnergyPerUpdateJ != b.EnergyPerUpdateJ ||
			a.UpdatesReceivedFraction != b.UpdatesReceivedFraction ||
			a.Latency.Mean() != b.Latency.Mean() {
			t.Errorf("%s not deterministic: %+v vs %+v", spec.Name, a, b)
		}
	}
}

// TestRivalProtocolsPooledMatchesUnpooled extends the pooled-equals-unpooled
// determinism guarantee to protocol dispatch: RunPool must produce the exact
// results of Run for every rival, not only for PBBF.
func TestRivalProtocolsPooledMatchesUnpooled(t *testing.T) {
	pool := NewRunPool()
	for _, spec := range []protocol.Spec{
		{Name: protocol.NameSleepSched},
		{Name: protocol.NameOLA, RelayThreshold: 2},
	} {
		cfg := protoScenario(t, spec, 14)
		plain, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		pooled, err := pool.Run(cfg)
		if err != nil {
			t.Fatalf("%s pooled: %v", spec.Name, err)
		}
		if plain.EnergyPerUpdateJ != pooled.EnergyPerUpdateJ ||
			plain.UpdatesReceivedFraction != pooled.UpdatesReceivedFraction ||
			plain.Latency.Mean() != pooled.Latency.Mean() {
			t.Errorf("%s: pooled diverged from unpooled: %+v vs %+v", spec.Name, plain, pooled)
		}
	}
}

// TestDeprecatedKnobAliases pins the option-struct migration contract: the
// deprecated flat fields behave exactly like their option-struct spellings,
// and conflicting non-zero values are rejected rather than silently picked
// between.
func TestDeprecatedKnobAliases(t *testing.T) {
	base := scenario(t, core.Params{P: 0.25, Q: 0.25}, 20, 10, 15)

	alias := base
	alias.LossRate = 0.2
	structured := base
	structured.Loss.Rate = 0.2
	a, err := Run(alias)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(structured)
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyPerUpdateJ != b.EnergyPerUpdateJ || a.UpdatesReceivedFraction != b.UpdatesReceivedFraction {
		t.Fatalf("deprecated LossRate diverged from Loss.Rate: %+v vs %+v", a, b)
	}

	conflicts := []func(*Config){
		func(c *Config) { c.LossRate = 0.1; c.Loss.Rate = 0.2 },
		func(c *Config) { c.LinkLossMean = 0.1; c.Loss.LinkMean = 0.2 },
		func(c *Config) { c.ChurnFailFraction = 0.1; c.Churn.FailFraction = 0.2 },
	}
	for i, mutate := range conflicts {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("conflict %d accepted", i)
		}
	}
	// Agreeing values are not a conflict: the alias simply restates the
	// struct field.
	agree := base
	agree.ChurnFailFraction = 0.1
	agree.Churn.FailFraction = 0.1
	if err := agree.Validate(); err != nil {
		t.Errorf("agreeing alias rejected: %v", err)
	}
	if math.IsNaN(a.EnergyPerUpdateJ) {
		t.Fatal("lossy run produced NaN energy")
	}
}
