// Package netsim runs the fine-grained Section 5 simulations: a random
// sensor field, the full PSM+PBBF MAC over a collision-prone channel, and
// the code distribution application on top. It produces the metrics behind
// Figures 13–18: per-update energy, per-hop-distance update latency, and
// the fraction of updates received.
//
// The paper used ns-2 with a modified 802.11 PSM MAC; this package is the
// equivalent substrate built on internal/sim + internal/phy + internal/mac
// (see README.md for the architecture and docs/EXPERIMENTS.md for the
// figures it backs).
package netsim

import (
	"fmt"
	"slices"
	"time"

	"pbbf/internal/codedist"
	"pbbf/internal/mac"
	"pbbf/internal/phy"
	"pbbf/internal/protocol"
	"pbbf/internal/rng"
	"pbbf/internal/sim"
	"pbbf/internal/stats"
	"pbbf/internal/topo"
	"pbbf/internal/trace"
)

// LossOptions groups the channel-loss knobs — one option struct per fault/
// diversity family is the Config idiom.
type LossOptions struct {
	// Rate injects independent per-reception frame loss at the PHY
	// (0 = the paper's collision-only channel).
	Rate float64
	// LinkMean, when positive, draws a persistent loss rate for every
	// link uniformly in [0, 2·LinkMean) — link quality diversity on
	// top of (or instead of) the iid Rate. Must stay below 0.5.
	LinkMean float64
}

// ChurnOptions groups the fail-stop churn knobs.
type ChurnOptions struct {
	// FailFraction, when positive, kills this fraction of non-source
	// nodes (fail-stop, permanent) at seeded uniform times during the run.
	FailFraction float64
}

// EnergyOptions groups the finite-battery knobs. The zero value is the
// paper's infinite battery: no extra random draws, byte-identical runs.
type EnergyOptions struct {
	// InitialJ is the mean per-node initial battery capacity in joules;
	// 0 keeps every battery infinite.
	InitialJ float64
	// JitterFrac, when positive, spreads per-node capacities uniformly in
	// [InitialJ·(1−JitterFrac), InitialJ·(1+JitterFrac)) from a dedicated
	// seeded split — a field of mixed battery ages instead of one
	// factory-fresh fleet. Must stay below 1 so every node keeps a
	// positive (finite) budget.
	JitterFrac float64
	// HarvestW recharges every battery at a constant rate, clamped at its
	// capacity.
	HarvestW float64
}

// Enabled reports whether batteries are finite.
func (e EnergyOptions) Enabled() bool { return e.InitialJ > 0 }

// Validate checks the options.
func (e EnergyOptions) Validate() error {
	if e.InitialJ < 0 {
		return fmt.Errorf("netsim: initial energy %v must be non-negative", e.InitialJ)
	}
	if e.JitterFrac < 0 || e.JitterFrac >= 1 {
		return fmt.Errorf("netsim: energy jitter %v outside [0,1)", e.JitterFrac)
	}
	if e.JitterFrac > 0 && e.InitialJ == 0 {
		return fmt.Errorf("netsim: energy jitter %v requires a positive initial energy", e.JitterFrac)
	}
	if e.HarvestW < 0 {
		return fmt.Errorf("netsim: harvest rate %v must be non-negative", e.HarvestW)
	}
	if e.HarvestW > 0 && e.InitialJ == 0 {
		return fmt.Errorf("netsim: harvest rate %v requires a positive initial energy", e.HarvestW)
	}
	return nil
}

// Sample draws one node's battery options, consuming one draw from r only
// when jitter is configured (the hetero sampler pattern), so homogeneous
// fleets keep deterministic per-node streams.
func (e EnergyOptions) Sample(r *rng.Source) mac.EnergyOptions {
	out := mac.EnergyOptions{InitialJ: e.InitialJ, HarvestW: e.HarvestW}
	if e.JitterFrac > 0 {
		out.InitialJ = e.InitialJ * (1 + (2*r.Float64()-1)*e.JitterFrac)
	}
	return out
}

// Config parameterizes one scenario run (one topology, one seed).
type Config struct {
	// Topo is the deployment; Section 5 uses 50 nodes placed uniformly at
	// random with density Δ (Table 2).
	Topo topo.Topology
	// Source is the broadcast/code-distribution origin.
	Source topo.NodeID
	// MAC holds the PSM timing, PBBF knobs, bit rate, and frame sizes.
	MAC mac.Config
	// Protocol selects the broadcast protocol every node runs
	// (internal/protocol); the zero value is PBBF. It is threaded into
	// MAC.Protocol, and setting both to different protocols is an error.
	Protocol protocol.Spec
	// Lambda is the update generation rate (Table 1: 0.01 updates/s).
	Lambda float64
	// Duration is the simulated time (Section 5: 500 s).
	Duration time.Duration
	// K is the number of recent updates batched per packet (Table 2: 1).
	K int
	// TrackHops lists BFS distances from the source at which latency is
	// reported separately (Figures 14/15 use 2 and 5).
	TrackHops []int
	// Loss groups the channel-loss knobs.
	Loss LossOptions
	// Churn groups the fail-stop churn knobs.
	Churn ChurnOptions
	// Hetero, when enabled, jitters each node's PBBF operating point
	// around MAC.Params from a seeded per-node distribution —
	// heterogeneous duty cycles instead of one global wake probability.
	Hetero mac.HeteroConfig
	// Energy, when enabled, gives every node a finite battery (mean
	// initial capacity, optional per-node jitter, optional harvesting)
	// with fail-stop death on depletion; Result then reports the
	// network-lifetime metrics. The per-node budgets are threaded into
	// each node's MAC config, so setting this alongside a non-zero
	// MAC.Energy is a conflict.
	Energy EnergyOptions
	// Trace, when non-nil, receives the run's event stream (every node's
	// tx/rx/sleep/wake/energy events plus channel drops). Tracing is pure
	// observation: traced and untraced runs produce identical Results,
	// and a nil sink adds no allocations to the hot path.
	Trace trace.Sink
	// Seed drives every coin in the run.
	Seed uint64

	// Deprecated: LossRate is Loss.Rate under the pre-option-struct API.
	// The aliases below are folded into their option structs by every
	// entry point (conflicting non-zero assignments are an error) and are
	// kept so existing callers — and the seeded point identities derived
	// from them — stay valid.
	LossRate float64
	// Deprecated: LinkLossMean is Loss.LinkMean.
	LinkLossMean float64
	// Deprecated: ChurnFailFraction is Churn.FailFraction.
	ChurnFailFraction float64
}

// normalized folds the deprecated alias fields into their option structs
// and threads Protocol into the MAC config, rejecting conflicting
// assignments. Every entry point (Run, RunPool.Run, Validate) operates on
// the normalized form, so both spellings behave identically.
func (c Config) normalized() (Config, error) {
	if c.LossRate != 0 {
		if c.Loss.Rate != 0 && c.Loss.Rate != c.LossRate {
			return c, fmt.Errorf("netsim: deprecated LossRate %v conflicts with Loss.Rate %v", c.LossRate, c.Loss.Rate)
		}
		c.Loss.Rate = c.LossRate
		c.LossRate = 0
	}
	if c.LinkLossMean != 0 {
		if c.Loss.LinkMean != 0 && c.Loss.LinkMean != c.LinkLossMean {
			return c, fmt.Errorf("netsim: deprecated LinkLossMean %v conflicts with Loss.LinkMean %v", c.LinkLossMean, c.Loss.LinkMean)
		}
		c.Loss.LinkMean = c.LinkLossMean
		c.LinkLossMean = 0
	}
	if c.ChurnFailFraction != 0 {
		if c.Churn.FailFraction != 0 && c.Churn.FailFraction != c.ChurnFailFraction {
			return c, fmt.Errorf("netsim: deprecated ChurnFailFraction %v conflicts with Churn.FailFraction %v",
				c.ChurnFailFraction, c.Churn.FailFraction)
		}
		c.Churn.FailFraction = c.ChurnFailFraction
		c.ChurnFailFraction = 0
	}
	if c.Protocol != (protocol.Spec{}) {
		if c.MAC.Protocol != (protocol.Spec{}) && c.MAC.Protocol != c.Protocol {
			return c, fmt.Errorf("netsim: Protocol %q conflicts with MAC.Protocol %q",
				c.Protocol.Name, c.MAC.Protocol.Name)
		}
		c.MAC.Protocol = c.Protocol
	}
	if c.Trace != nil {
		if c.MAC.Trace != nil && c.MAC.Trace != c.Trace {
			return c, fmt.Errorf("netsim: Trace conflicts with MAC.Trace")
		}
		c.MAC.Trace = c.Trace
	}
	if c.Energy != (EnergyOptions{}) && c.MAC.Energy != (mac.EnergyOptions{}) {
		// Energy folds per node (jitter draws a budget for each), not
		// here; a hand-set MAC budget would be silently overwritten.
		return c, fmt.Errorf("netsim: Energy conflicts with MAC.Energy; set one")
	}
	return c, nil
}

// Validate checks the configuration (after alias normalization).
func (c Config) Validate() error {
	c, err := c.normalized()
	if err != nil {
		return err
	}
	return c.validateNormalized()
}

// validateNormalized checks a configuration normalized has already folded.
func (c Config) validateNormalized() error {
	if c.Topo == nil || c.Topo.N() == 0 {
		return fmt.Errorf("netsim: empty topology")
	}
	if int(c.Source) < 0 || int(c.Source) >= c.Topo.N() {
		return fmt.Errorf("netsim: source %d outside [0,%d)", c.Source, c.Topo.N())
	}
	if err := c.MAC.Validate(); err != nil {
		return err
	}
	if c.Lambda <= 0 {
		return fmt.Errorf("netsim: lambda %v must be positive", c.Lambda)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("netsim: duration %v must be positive", c.Duration)
	}
	if c.K <= 0 {
		return fmt.Errorf("netsim: k %d must be positive", c.K)
	}
	if c.Loss.Rate < 0 || c.Loss.Rate >= 1 {
		return fmt.Errorf("netsim: loss rate %v outside [0,1)", c.Loss.Rate)
	}
	if c.Loss.LinkMean < 0 || c.Loss.LinkMean >= 0.5 {
		return fmt.Errorf("netsim: mean link loss %v outside [0,0.5)", c.Loss.LinkMean)
	}
	if c.Churn.FailFraction < 0 || c.Churn.FailFraction >= 1 {
		return fmt.Errorf("netsim: churn fraction %v outside [0,1)", c.Churn.FailFraction)
	}
	if err := c.Hetero.Validate(); err != nil {
		return err
	}
	if err := c.Energy.Validate(); err != nil {
		return err
	}
	return nil
}

// Result aggregates one run's metrics.
type Result struct {
	// UpdatesGenerated is the number of updates the source created.
	UpdatesGenerated int
	// EnergyPerUpdateJ is mean per-node energy divided by updates.
	EnergyPerUpdateJ float64
	// UpdatesReceivedFraction is the mean over non-source nodes of
	// (updates received / updates generated) — Figures 16/18.
	UpdatesReceivedFraction float64
	// Latency accumulates first-sight update latency (seconds) over all
	// non-source nodes — Figure 17.
	Latency stats.Accumulator
	// LatencyAtHop holds the same metric restricted to nodes at each
	// tracked BFS distance — Figures 14/15.
	LatencyAtHop map[int]*stats.Accumulator
	// NodesAtHop counts nodes at each tracked distance in this scenario.
	NodesAtHop map[int]int
	// NodesDied counts externally injected (churn) fail-stop deaths
	// during the run; depletion deaths are counted separately so churn
	// scenarios report unchanged numbers under the finite-energy API.
	NodesDied int
	// NodesDepleted counts battery-depletion deaths (finite-energy runs).
	NodesDepleted int
	// Network-lifetime metrics, populated only for finite-energy runs
	// (Config.Energy enabled); the times cover deaths of either cause and
	// are censored at the horizon — a network that never reached the
	// event reports Duration.
	//
	// TimeToFirstDeathS is when the first node died.
	TimeToFirstDeathS float64
	// TimeToHalfDeadS is when half the nodes (rounded up) were dead.
	TimeToHalfDeadS float64
	// CoverageOverTime samples the alive-node fraction at 11 evenly
	// spaced instants from t=0 through the horizon.
	CoverageOverTime []float64
	// EnergyVarianceJ2 is the population variance of per-node consumed
	// joules — the load-balance axis of the max-lifetime literature.
	EnergyVarianceJ2 float64
	// Channel-level counters (diagnostics).
	FramesStarted, FramesDelivered, FramesCollided int
}

// lifetimeMetrics fills the network-lifetime fields of res from the
// fleet's death times. buf is scratch for the sorted times; the
// possibly-grown buffer is returned so a pooled caller can reuse it.
func lifetimeMetrics(res *Result, cfg *Config, nodes []*mac.Node, buf []time.Duration) []time.Duration {
	buf = buf[:0]
	for _, node := range nodes {
		if node.Dead() {
			buf = append(buf, node.DiedAt())
		}
	}
	slices.Sort(buf)
	horizon := cfg.Duration.Seconds()
	res.TimeToFirstDeathS = horizon
	res.TimeToHalfDeadS = horizon
	if len(buf) > 0 {
		res.TimeToFirstDeathS = buf[0].Seconds()
	}
	n := len(nodes)
	if half := (n + 1) / 2; len(buf) >= half {
		res.TimeToHalfDeadS = buf[half-1].Seconds()
	}
	const coverageSamples = 11
	res.CoverageOverTime = make([]float64, coverageSamples)
	k := 0
	for s := 0; s < coverageSamples; s++ {
		t := time.Duration(float64(cfg.Duration) * float64(s) / float64(coverageSamples-1))
		for k < len(buf) && buf[k] <= t {
			k++
		}
		res.CoverageOverTime[s] = float64(n-k) / float64(n)
	}
	return buf
}

// Run executes one scenario.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if err := cfg.validateNormalized(); err != nil {
		return nil, err
	}
	kernel := sim.NewKernel()
	channel := phy.NewChannel(kernel, cfg.Topo)
	channel.SetTrace(cfg.MAC.Trace)
	base := rng.New(cfg.Seed)
	if cfg.Loss.Rate > 0 {
		if err := channel.SetLoss(cfg.Loss.Rate, base.Split()); err != nil {
			return nil, err
		}
	}
	// Every diversity feature draws its splits conditionally, so runs with
	// the feature off consume the exact random stream they always did —
	// existing scenarios stay byte-identical.
	if cfg.Loss.LinkMean > 0 {
		table, err := phy.NewUniformLinkLoss(cfg.Topo, cfg.Loss.LinkMean, base.Split())
		if err != nil {
			return nil, err
		}
		if err := channel.SetLinkLoss(table, base.Split()); err != nil {
			return nil, err
		}
	}
	var heteroRNG *rng.Source
	if cfg.Hetero.Enabled() {
		heteroRNG = base.Split()
	}
	var energyRNG *rng.Source
	if cfg.Energy.Enabled() {
		energyRNG = base.Split()
	}

	n := cfg.Topo.N()
	trackers := make([]*codedist.Tracker, n)
	nodes := make([]*mac.Node, n)
	for i := 0; i < n; i++ {
		trackers[i] = codedist.NewTracker()
		tracker := trackers[i]
		nodeCfg := cfg.MAC
		if heteroRNG != nil {
			nodeCfg.Params = cfg.Hetero.Sample(cfg.MAC.Params, heteroRNG)
		}
		if energyRNG != nil {
			nodeCfg.Energy = cfg.Energy.Sample(energyRNG)
		}
		node, err := mac.NewNode(topo.NodeID(i), nodeCfg, kernel, channel, base.Split(),
			func(pkt mac.Packet, _ topo.NodeID, now time.Duration) {
				if payload, ok := pkt.Payload.(codedist.Payload); ok {
					tracker.Observe(payload, now)
				}
			})
		if err != nil {
			return nil, err
		}
		nodes[i] = node
	}

	// Churn: pick the victims and their death times from one dedicated
	// split, then schedule the fail-stop kills. The source is never killed
	// (a dead source makes the delivery metric meaningless).
	if cfg.Churn.FailFraction > 0 {
		churnRNG := base.Split()
		deaths := int(cfg.Churn.FailFraction*float64(n-1) + 0.5)
		victims := make([]topo.NodeID, 0, deaths)
		for _, id := range churnRNG.Perm(n) {
			if len(victims) == deaths {
				break
			}
			if topo.NodeID(id) != cfg.Source {
				victims = append(victims, topo.NodeID(id))
			}
		}
		for _, id := range victims {
			at := time.Duration(churnRNG.Float64() * float64(cfg.Duration))
			kernel.ScheduleAt(at, nodes[id].Kill)
		}
	}

	// Update generation: deterministic at rate λ, starting at t=0 (frame
	// boundaries, so updates arrive during the ATIM window). These events
	// are scheduled before the frame ticks and therefore fire first at
	// equal timestamps, letting the source announce in the same window.
	source, err := codedist.NewSource(cfg.K)
	if err != nil {
		return nil, err
	}
	// The generate/tick/window callbacks are created once and rescheduled
	// into pooled event slots, so the whole beacon machinery runs
	// allocation-free regardless of horizon length.
	generate := func() {
		payload := source.Generate(kernel.Now())
		trackers[cfg.Source].Observe(payload, kernel.Now())
		nodes[cfg.Source].Broadcast(mac.Packet{
			Key:     mac.PacketKeyFor(cfg.Source, uint64(source.Generated()-1)),
			Payload: payload,
		})
	}
	interval := time.Duration(float64(time.Second) / cfg.Lambda)
	for at := time.Duration(0); at < cfg.Duration; at += interval {
		kernel.ScheduleAt(at, generate)
	}

	// Beacon schedule: one recurring frame tick fans StartFrame out over
	// the reusable node slice at each beacon, then EndATIMWindow when the
	// window closes. Nodes are visited in ID order, keeping runs
	// deterministic.
	endWindow := func() {
		for _, node := range nodes {
			node.EndATIMWindow()
		}
	}
	var tick func()
	tick = func() {
		for _, node := range nodes {
			node.StartFrame()
		}
		kernel.Schedule(cfg.MAC.Timing.Active, endWindow)
		kernel.Schedule(cfg.MAC.Timing.Frame, tick)
	}
	kernel.ScheduleAt(0, tick)

	if err := kernel.Run(cfg.Duration); err != nil {
		return nil, err
	}

	return harvest(cfg, nodes, trackers, channel, source.Generated()), nil
}

// harvest computes the Result from final simulation state.
func harvest(cfg Config, nodes []*mac.Node, trackers []*codedist.Tracker,
	channel *phy.Channel, generated int) *Result {
	res := &Result{
		UpdatesGenerated: generated,
		LatencyAtHop:     make(map[int]*stats.Accumulator, len(cfg.TrackHops)),
		NodesAtHop:       make(map[int]int, len(cfg.TrackHops)),
	}
	dist := topo.HopDistances(cfg.Topo, cfg.Source)
	for _, h := range cfg.TrackHops {
		res.LatencyAtHop[h] = &stats.Accumulator{}
		for _, d := range dist {
			if d == h {
				res.NodesAtHop[h]++
			}
		}
	}

	var energyTotal, energySq float64
	var fraction stats.Accumulator
	for i, node := range nodes {
		node.FinishMetering(cfg.Duration)
		e := node.EnergyAt(cfg.Duration)
		energyTotal += e
		energySq += e * e
		if node.Dead() {
			if node.Depleted() {
				res.NodesDepleted++
			} else {
				res.NodesDied++
			}
		}
		if topo.NodeID(i) == cfg.Source {
			continue
		}
		tr := trackers[i]
		if generated > 0 {
			fraction.Add(float64(tr.Received()) / float64(generated))
		}
		// Iterate by sequence number: map order would make the floating-
		// point accumulation (and hence the run) nondeterministic.
		for seq := 0; seq < generated; seq++ {
			lat, ok := tr.Latency(seq)
			if !ok {
				continue
			}
			res.Latency.Add(lat.Seconds())
			if acc, ok := res.LatencyAtHop[dist[i]]; ok {
				acc.Add(lat.Seconds())
			}
		}
	}
	if generated > 0 {
		res.EnergyPerUpdateJ = energyTotal / float64(len(nodes)) / float64(generated)
	}
	mean := energyTotal / float64(len(nodes))
	res.EnergyVarianceJ2 = energySq/float64(len(nodes)) - mean*mean
	if cfg.Energy.Enabled() {
		lifetimeMetrics(res, &cfg, nodes, nil)
	}
	res.UpdatesReceivedFraction = fraction.Mean()
	res.FramesStarted, res.FramesDelivered, res.FramesCollided = channel.Stats()
	return res
}
