package netsim

import (
	"reflect"
	"testing"

	"pbbf/internal/raceflag"
	"pbbf/internal/trace"
)

// TestTraceNeutrality: attaching a trace sink must not change anything the
// simulation computes — recording draws no randomness and mutates no
// state — and the pooled and unpooled paths must emit the exact same
// event stream for the same Config.
func TestTraceNeutrality(t *testing.T) {
	for i, cfg := range poolTestConfigs(t) {
		baseline, err := Run(cfg)
		if err != nil {
			t.Fatalf("config %d: untraced run: %v", i, err)
		}

		var freshSlab trace.Slab
		traced := cfg
		traced.Trace = &freshSlab
		got, err := Run(traced)
		if err != nil {
			t.Fatalf("config %d: traced run: %v", i, err)
		}
		if !reflect.DeepEqual(baseline, got) {
			t.Errorf("config %d: tracing changed the result\nuntraced: %+v\ntraced:   %+v", i, baseline, got)
		}
		if len(freshSlab.Events) == 0 {
			t.Fatalf("config %d: traced run recorded no events", i)
		}

		var pooledSlab trace.Slab
		traced.Trace = &pooledSlab
		pool := NewRunPool()
		if _, err := pool.Run(traced); err != nil {
			t.Fatalf("config %d: pooled traced run: %v", i, err)
		}
		if !reflect.DeepEqual(freshSlab.Events, pooledSlab.Events) {
			t.Errorf("config %d: pooled run emits a different event stream (%d vs %d events)",
				i, len(pooledSlab.Events), len(freshSlab.Events))
		}
	}
}

// TestTraceNilSinkAllocFree: the nil-sink fast path must add zero
// allocations — a steady-state pooled run with tracing disabled allocates
// exactly as much as one recording into the global Discard sink, and both
// stay inside the pooled kernel's per-run budget. Events are passed by
// value through a pre-bound sink interface, so the instrumentation itself
// never touches the heap.
func TestTraceNilSinkAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless under -race")
	}
	cfg := poolTestConfigs(t)[0]
	pool := NewRunPool()
	if _, err := pool.Run(cfg); err != nil {
		t.Fatal(err)
	}
	nilAllocs := testing.AllocsPerRun(5, func() {
		if _, err := pool.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	traced := cfg
	traced.Trace = trace.Discard
	if _, err := pool.Run(traced); err != nil {
		t.Fatal(err)
	}
	discardAllocs := testing.AllocsPerRun(5, func() {
		if _, err := pool.Run(traced); err != nil {
			t.Fatal(err)
		}
	})
	if nilAllocs != discardAllocs {
		t.Errorf("tracing machinery allocates: %.0f allocs/run untraced vs %.0f with the discard sink",
			nilAllocs, discardAllocs)
	}
}
