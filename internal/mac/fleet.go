package mac

import (
	"time"

	"pbbf/internal/energy"
	"pbbf/internal/phy"
	"pbbf/internal/rng"
	"pbbf/internal/sim"
	"pbbf/internal/topo"
)

// Fleet is a pooled set of MAC nodes sharing one struct-of-arrays energy
// bank. Nodes are heap-allocated once per slot and reinitialized in place
// across runs — their addresses must stay stable because the CSMA state
// machine's pre-bound closures and the channel's receiver table capture
// node pointers. Per-node random sources live in one flat slice seeded by
// SplitInto, so a reused fleet draws exactly the streams a fresh
// construction would.
//
// Usage per run: Reset, then InitNode for every slot in ID order.
type Fleet struct {
	nodes []*Node
	rngs  []rng.Source
	bank  *energy.Bank
}

// NewFleet returns an empty fleet; it grows to fit on first Reset.
func NewFleet() *Fleet { return &Fleet{bank: energy.NewBank()} }

// Reset sizes the fleet for n nodes with a shared power profile, all
// accounts opening in the idle state at time now. Existing node objects
// (and their retained buffers) are kept; new slots are filled with fresh
// nodes. Every slot must be reinitialized with InitNode before use.
func (f *Fleet) Reset(n int, profile energy.Profile, now time.Duration) {
	f.bank.Init(n, energy.Config{Profile: profile, Initial: energy.Idle, Start: now})
	nodes := f.nodes
	if cap(nodes) >= n {
		nodes = nodes[:n]
	} else {
		nodes = append(nodes[:cap(nodes)], make([]*Node, n-cap(nodes))...)
	}
	for i := range nodes {
		if nodes[i] == nil {
			nodes[i] = &Node{}
		}
	}
	f.nodes = nodes
	if cap(f.rngs) >= n {
		f.rngs = f.rngs[:n]
	} else {
		f.rngs = make([]rng.Source, n)
	}
}

// InitNode reinitializes slot i for a new run, drawing the node's random
// source from base exactly as NewNode(.., base.Split(), ..) would.
func (f *Fleet) InitNode(i int, id topo.NodeID, cfg Config, kernel *sim.Kernel,
	channel *phy.Channel, base *rng.Source, deliver DeliveryFunc) error {
	base.SplitInto(&f.rngs[i])
	return f.nodes[i].init(id, cfg, kernel, channel, f.bank, i, &f.rngs[i], deliver)
}

// Nodes returns the fleet's node slice, valid until the next Reset. Callers
// must not mutate it.
func (f *Fleet) Nodes() []*Node { return f.nodes }

// Node returns the node in slot i.
func (f *Fleet) Node(i int) *Node { return f.nodes[i] }

// Bank returns the fleet's shared energy bank.
func (f *Fleet) Bank() *energy.Bank { return f.bank }
