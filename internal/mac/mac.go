// Package mac implements the fine-grained MAC layer of the Section 5
// simulations: IEEE 802.11 power-save mode (PSM) with ATIM windows,
// CSMA/CA channel access, and PBBF integrated exactly as in Figure 3.
//
// # Protocol model
//
// Time is divided into beacon intervals (BI = Tframe); nodes are perfectly
// synchronized (the paper assumes this too). The first Tactive of each BI
// is the ATIM window, during which every node is awake and data frames may
// not be sent. A node with queued broadcast traffic transmits a broadcast
// ATIM during the window; every node that decodes the ATIM stays awake for
// the whole beacon interval to receive the announced data, which is
// transmitted after the window ends (Figure 1 of the paper).
//
// PBBF modifies two decisions (Figure 3):
//
//   - Sleep-Decision-Handler: at the end of the ATIM window a node with no
//     traffic stays awake anyway with probability q.
//   - Receive-Broadcast: a node receiving a new broadcast data frame
//     rebroadcasts it immediately with probability p (CSMA, no ATIM, even
//     during the sleep period); otherwise it queues the packet for
//     announcement in the next ATIM window.
//
// # Channel access
//
// Broadcast frames use carrier sense with a DIFS and a uniform random
// backoff drawn from a fixed contention window; there are no ACKs, RTS/CTS,
// or retransmissions for broadcasts, matching 802.11 broadcast semantics.
// Backoff freezing is simplified to re-contention: if the medium is busy
// when the backoff expires, the node re-draws a backoff. Collisions emerge
// naturally when two nodes draw overlapping slots or are hidden from each
// other.
package mac

import (
	"fmt"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/energy"
	"pbbf/internal/phy"
	"pbbf/internal/protocol"
	"pbbf/internal/rng"
	"pbbf/internal/sim"
	"pbbf/internal/topo"
	"pbbf/internal/trace"
)

// Config parameterizes the MAC.
type Config struct {
	// Timing is the PSM schedule: Active = ATIM window, Frame = beacon
	// interval (Table 1: 1 s / 10 s).
	Timing core.Timing
	// Params are the PBBF knobs.
	Params core.Params
	// BitrateBps is the radio bit rate (Section 5: 19.2 kbps).
	BitrateBps int
	// DataFrameBytes is the total size of one data frame (Table 2: 64 B).
	DataFrameBytes int
	// ATIMFrameBytes is the size of an ATIM announcement frame.
	ATIMFrameBytes int
	// DIFS is the inter-frame space sensed idle before backoff.
	DIFS time.Duration
	// Slot is the backoff slot duration.
	Slot time.Duration
	// CWSlots is the contention window: backoff is uniform in [0, CWSlots).
	CWSlots int
	// Profile is the radio power model.
	Profile energy.Profile
	// Energy, when enabled, bounds the node's battery: InitialJ joules at
	// t=0, drained by Profile's draw, optionally harvested back, and
	// fail-stop death on depletion. The zero value is the paper's
	// infinite battery.
	Energy EnergyOptions
	// Adaptive, when non-nil, replaces the static Params with a per-node
	// controller that adjusts p from overheard activity and q from
	// detected broadcast losses — the paper's future-work extension
	// (Section 6). Params still seeds validation and labels. Requires the
	// default PBBF protocol.
	Adaptive *core.AdaptiveConfig
	// Protocol selects the broadcast protocol the node's decisions
	// dispatch through (internal/protocol). The zero value is PBBF — the
	// paper's protocol, byte-identical to the pre-interface MAC.
	Protocol protocol.Spec
	// Trace, when non-nil, receives the node's event stream (tx/rx,
	// sleep/wake, energy transitions, death). Recording is pure
	// observation: it draws no randomness and changes no decision, so a
	// traced run computes byte-identical results to an untraced one.
	Trace trace.Sink
}

// DefaultConfig returns the Section 5 parameters (Tables 1 and 2) with the
// given PBBF knobs.
func DefaultConfig(params core.Params) Config {
	return Config{
		Timing:         core.Timing{Active: time.Second, Frame: 10 * time.Second},
		Params:         params,
		BitrateBps:     19200,
		DataFrameBytes: 64,
		ATIMFrameBytes: 28,
		DIFS:           5 * time.Millisecond,
		Slot:           time.Millisecond,
		CWSlots:        32,
		Profile:        energy.Mica2(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.BitrateBps <= 0 {
		return fmt.Errorf("mac: bitrate %d must be positive", c.BitrateBps)
	}
	if c.DataFrameBytes <= 0 || c.ATIMFrameBytes <= 0 {
		return fmt.Errorf("mac: frame sizes must be positive, got data=%d atim=%d",
			c.DataFrameBytes, c.ATIMFrameBytes)
	}
	if c.DIFS < 0 || c.Slot <= 0 || c.CWSlots <= 0 {
		return fmt.Errorf("mac: bad contention parameters DIFS=%v slot=%v cw=%d",
			c.DIFS, c.Slot, c.CWSlots)
	}
	if c.ATIMAirtime() >= c.Timing.Active {
		return fmt.Errorf("mac: ATIM airtime %v does not fit the ATIM window %v",
			c.ATIMAirtime(), c.Timing.Active)
	}
	if err := c.Energy.Validate(); err != nil {
		return err
	}
	if err := c.Protocol.Validate(); err != nil {
		return err
	}
	if c.Adaptive != nil {
		if !c.Protocol.IsPBBF() {
			return fmt.Errorf("mac: adaptive control tunes the PBBF coins and requires the pbbf protocol, got %q",
				c.Protocol.Name)
		}
		if err := c.Adaptive.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// airtime converts a frame size to on-air time at the configured bit rate.
func (c Config) airtime(bytes int) time.Duration {
	return time.Duration(float64(bytes*8) / float64(c.BitrateBps) * float64(time.Second))
}

// DataAirtime returns the on-air time of a data frame (64 B at 19.2 kbps ≈
// 26.7 ms).
func (c Config) DataAirtime() time.Duration { return c.airtime(c.DataFrameBytes) }

// ATIMAirtime returns the on-air time of an ATIM frame.
func (c Config) ATIMAirtime() time.Duration { return c.airtime(c.ATIMFrameBytes) }

// PacketKeyFor builds the duplicate-suppression key for a broadcast
// originated by the given node with an origin-local sequence number.
func PacketKeyFor(origin topo.NodeID, seq uint64) core.PacketKey {
	return core.PacketKey{Origin: int(origin), Seq: seq}
}

// Packet is a broadcast MAC SDU — an alias of protocol.Packet, so packets
// cross the MAC/protocol boundary without conversion.
type Packet = protocol.Packet

// frameKind discriminates the two on-air frame types.
type frameKind int

const (
	frameATIM frameKind = iota + 1
	frameData
)

// wire is the channel payload. Frames travel as *wire so that putting one
// on the air boxes a pointer (allocation-free) instead of copying the
// struct into the interface; the transmitting node owns the record and
// recycles it once the frame leaves the air.
type wire struct {
	kind frameKind
	pkt  Packet // valid for frameData only
}

// DeliveryFunc is the application upcall, invoked once per *new* packet.
type DeliveryFunc func(pkt Packet, from topo.NodeID, now time.Duration)

// Stats counts per-node MAC events.
type Stats struct {
	ATIMSent      int
	ATIMReceived  int
	ATIMAborted   int // ATIM could not fit in the window and was deferred
	DataSent      int
	ImmediateSent int // subset of DataSent the protocol marked immediate (PBBF: the p coin)
	DataReceived  int
	Duplicates    int
	StayAwakeWins int // the protocol's window-end decision kept the node awake (PBBF: the q coin)
}

// Node is one PSM+PBBF MAC instance. Create with NewNode; the simulation
// driver must call StartFrame at every beacon and EndATIMWindow when the
// ATIM window closes.
type Node struct {
	id      topo.NodeID
	cfg     Config
	kernel  *sim.Kernel
	channel *phy.Channel
	rng     *rng.Source
	deliver DeliveryFunc
	seen    *core.DuplicateFilter

	// Energy accounting lives in a struct-of-arrays Bank shared by the
	// node's Fleet; slot is this node's account. Standalone nodes own a
	// private single-slot bank.
	bank *energy.Bank
	slot int

	// trace is the optional event sink (Config.Trace); nil when disabled,
	// and every recording site guards on that so the disabled path costs
	// one predictable branch and zero allocations.
	trace trace.Sink

	awake    bool
	dead     bool // fail-stop: node left the network permanently
	depleted bool // the death was a drained battery, not injected churn
	mustStay bool // ATIM sent/received or traffic pending this BI
	atimOK   bool // this frame's ATIM made it onto the air
	diedAt   time.Duration

	pendingNormal []Packet // waiting for the next ATIM window
	announced     []Packet // announced this BI; data goes out after the window

	txQueue []wire
	txBusy  bool

	// Pre-bound callbacks for the CSMA state machine. Scheduling these hot
	// closures (once per backoff / per frame) out of fields instead of
	// fresh literals keeps the event loop allocation-free.
	attemptTxFn    func()
	afterBackoffFn func()
	txDoneFn       func()
	sendATIMFn     func()
	// onAir is the node's single in-flight frame record, reused across
	// transmissions (the MAC serializes its own transmissions).
	onAir wire
	// relPool recycles the deferred-release records EndATIMWindow schedules
	// for announced data frames.
	relPool []*releaseRec
	// timerPool recycles protocol timer records (ScheduleTimer).
	timerPool []*timerRec

	// proto makes the node's broadcast decisions; usesATIM caches whether
	// it runs the PSM/ATIM substrate. Non-default protocol instances carry
	// per-node state, so they are cached per node (protoCache) and
	// reconfigured in place across pooled runs; PBBF is a shared stateless
	// singleton and never touches the cache.
	proto      protocol.Protocol
	usesATIM   bool
	protoCache map[string]protocol.Protocol

	// Adaptive-mode state (nil/zero when running static PBBF). The
	// controller and maps are cached across pooled re-initializations so an
	// adaptive fleet reruns without reallocating them.
	adaptive      *core.AdaptiveController
	adaptiveCache *core.AdaptiveController
	frameRx       int              // frames decoded in the current beacon interval
	lastSeq       map[int]uint64   // per-origin highest data sequence seen
	seqSeen       map[int]struct{} // origins with at least one sequence recorded

	stats Stats
}

var (
	_ phy.Receiver     = (*Node)(nil)
	_ protocol.NodeAPI = (*Node)(nil)
)

// NewNode constructs a MAC node and registers it with the channel. The
// node starts awake (simulation begins at a beacon). Standalone nodes own a
// private energy bank; fleets share one (see Fleet).
func NewNode(id topo.NodeID, cfg Config, kernel *sim.Kernel, channel *phy.Channel,
	r *rng.Source, deliver DeliveryFunc) (*Node, error) {
	n := &Node{}
	bank := energy.NewBank()
	bank.Init(1, energy.Config{Profile: cfg.Profile, Initial: energy.Idle, Start: kernel.Now()})
	if err := n.init(id, cfg, kernel, channel, bank, 0, r, deliver); err != nil {
		return nil, err
	}
	return n, nil
}

// init (re)initializes the node in place for a new run — NewNode's body,
// reusing every retained allocation: the duplicate filter's bitsets, the
// pending/announced/tx queues' capacity, the pre-bound CSMA closures, the
// release-record pool, and the adaptive controller with its maps. The
// caller's bank slot must already be sized and reset.
func (n *Node) init(id topo.NodeID, cfg Config, kernel *sim.Kernel, channel *phy.Channel,
	bank *energy.Bank, slot int, r *rng.Source, deliver DeliveryFunc) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if deliver == nil {
		return fmt.Errorf("mac: nil delivery callback")
	}
	n.id = id
	n.cfg = cfg
	n.kernel = kernel
	n.channel = channel
	n.rng = r
	n.bank = bank
	n.slot = slot
	n.trace = cfg.Trace
	n.deliver = deliver
	if n.seen == nil {
		n.seen = core.NewDuplicateFilter()
	} else {
		n.seen.Reset()
	}
	n.awake = true
	n.dead = false
	n.depleted = false
	n.diedAt = 0
	n.mustStay = false
	n.atimOK = false
	bank.SetBudget(slot, cfg.Energy.Budget())
	n.pendingNormal = n.pendingNormal[:0] // nil-safe; Kill may have dropped it
	n.announced = n.announced[:0]
	n.txQueue = n.txQueue[:0]
	n.txBusy = false
	if n.attemptTxFn == nil {
		n.attemptTxFn = n.attemptTx
		n.afterBackoffFn = n.afterBackoff
		n.txDoneFn = n.txDone
		n.sendATIMFn = n.sendATIM
	}
	n.onAir = wire{}
	if cfg.Adaptive != nil {
		if n.adaptiveCache == nil {
			n.adaptiveCache = &core.AdaptiveController{}
			n.lastSeq = make(map[int]uint64)
			n.seqSeen = make(map[int]struct{})
		}
		if err := n.adaptiveCache.Reset(*cfg.Adaptive); err != nil {
			return err
		}
		n.adaptive = n.adaptiveCache
		clear(n.lastSeq)
		clear(n.seqSeen)
	} else {
		n.adaptive = nil
	}
	n.frameRx = 0
	n.stats = Stats{}
	if cfg.Protocol.IsPBBF() {
		n.proto = protocol.PBBF
	} else {
		name := cfg.Protocol.Canonical()
		if n.protoCache == nil {
			n.protoCache = make(map[string]protocol.Protocol, 1)
		}
		p := n.protoCache[name]
		if p == nil {
			var err error
			if p, err = protocol.New(cfg.Protocol); err != nil {
				return err
			}
			n.protoCache[name] = p
		}
		n.proto = p
	}
	n.usesATIM = n.proto.UsesATIM()
	if err := n.proto.Reset(n, cfg.Protocol); err != nil {
		return err
	}
	channel.Register(id, n)
	return nil
}

// Params returns the node's current PBBF operating point: the static
// configuration, or the adaptive controller's live values.
func (n *Node) Params() core.Params {
	if n.adaptive != nil {
		return n.adaptive.Params()
	}
	return n.cfg.Params
}

// ID returns the node's identifier.
func (n *Node) ID() topo.NodeID { return n.id }

// Stats returns a copy of the node's MAC counters.
func (n *Node) Stats() Stats { return n.stats }

// Awake reports whether the radio is on.
func (n *Node) Awake() bool { return n.awake }

// Dead reports whether the node has been removed by Kill.
func (n *Node) Dead() bool { return n.dead }

// Kill removes the node from the network permanently (fail-stop churn):
// the radio turns off, queued traffic is dropped, and every later MAC
// entry point — beacons, deliveries, application broadcasts, pending CSMA
// callbacks — becomes a no-op. A frame already on the air when the node
// dies completes normally and is billed at transmit power until its
// airtime ends (the radio was committed to it); from then on the meter
// sits at sleep power, modelling a depleted battery rather than a node
// that vanished retroactively.
func (n *Node) Kill() { n.kill(false) }

// kill is the fail-stop machinery behind Kill (injected churn) and
// pollDepletion (a drained battery); depleted selects the death cause the
// trace event carries.
func (n *Node) kill(depleted bool) {
	if n.dead {
		return
	}
	n.dead = true
	n.depleted = depleted
	n.diedAt = n.kernel.Now()
	if n.trace != nil {
		ev := trace.Event{T: n.kernel.Now(), Kind: trace.KindDeath, Node: int32(n.id), Peer: -1}
		if depleted {
			ev.Value = trace.DeathCauseDepleted
		}
		n.trace.Record(ev)
	}
	n.setAwake(false)
	if !n.channel.Transmitting(n.id) {
		n.setState(energy.Sleep, n.kernel.Now())
	} // else txDone drops the meter to sleep when the frame leaves the air
	n.mustStay = false
	n.pendingNormal = nil
	n.announced = nil
	n.txQueue = nil
	n.txBusy = false
}

// pollDepletion checks the battery at a state-transition site and applies
// the fail-stop death when it has run dry, reporting whether the node is
// dead afterwards. With an infinite battery (the legacy configuration) the
// check is one predictable branch and draws nothing, so untouched runs
// stay byte-identical.
func (n *Node) pollDepletion() bool {
	if n.dead {
		return true
	}
	if !n.bank.Finite(n.slot) {
		return false
	}
	if n.bank.Depleted(n.slot, n.kernel.Now()) {
		n.kill(true)
		return true
	}
	return false
}

// Depleted reports whether the node died of a drained battery.
func (n *Node) Depleted() bool { return n.depleted }

// DiedAt returns when the node died; meaningful only when Dead.
func (n *Node) DiedAt() time.Duration { return n.diedAt }

// EnergyAt returns the node's cumulative energy use at time now.
func (n *Node) EnergyAt(now time.Duration) float64 { return n.bank.EnergyAt(n.slot, now) }

// TimeIn returns the node's closed-interval time spent in radio state s;
// call FinishMetering first for totals through the end of a run.
func (n *Node) TimeIn(s energy.State) time.Duration { return n.bank.TimeIn(n.slot, s) }

// Listening reports whether the node's radio can decode a frame right now
// (awake and not transmitting), as registered with the channel.
func (n *Node) Listening() bool {
	return n.channel.Listening(n.id)
}

// setAwake flips the radio state and mirrors it into the channel's flat
// listening table (the per-frame fan-out reads the channel copy). Already-
// matching states return early — the call was always idempotent, and the
// early return keeps the trace stream to true transitions.
func (n *Node) setAwake(awake bool) {
	if awake == n.awake {
		return
	}
	n.awake = awake
	n.channel.SetListening(n.id, awake)
	if n.trace != nil {
		kind := trace.KindWake
		if !awake {
			kind = trace.KindSleep
		}
		n.trace.Record(trace.Event{T: n.kernel.Now(), Kind: kind, Node: int32(n.id), Peer: -1})
	}
}

// setState switches the node's energy account to s and mirrors the
// transition into the trace stream (the new radio state plus cumulative
// joules through this instant).
func (n *Node) setState(s energy.State, now time.Duration) {
	n.bank.SetState(n.slot, s, now)
	if n.trace != nil {
		n.trace.Record(trace.Event{
			T: now, Kind: trace.KindEnergy, Node: int32(n.id),
			Peer: int32(s), Value: n.bank.Joules(n.slot),
		})
	}
}

// Broadcast originates a new broadcast from this node (application call);
// the protocol decides how it leaves (PBBF: the p coin applies at
// origination too — Figure 2).
func (n *Node) Broadcast(pkt Packet) {
	if n.dead {
		return
	}
	n.seen.MarkSeen(pkt.Key) // never re-forward our own packet
	n.proto.OnOriginate(n, pkt)
}

// wakeForTraffic turns the radio on mid-interval (Figure 3: DataToSend
// keeps a node awake). Only originators can hit this while asleep — a
// sleeping node cannot receive.
func (n *Node) wakeForTraffic() {
	n.mustStay = true
	if !n.awake {
		n.setAwake(true)
		n.setState(energy.Idle, n.kernel.Now())
	}
}

// The methods below complete the protocol.NodeAPI surface (ID and Params
// are defined above): the primitives protocols decide over. They are the
// only way protocol code touches the node.

// Now returns the current simulation time.
func (n *Node) Now() time.Duration { return n.kernel.Now() }

// Rand returns the node's random source.
func (n *Node) Rand() *rng.Source { return n.rng }

// Timing returns the PSM schedule.
func (n *Node) Timing() core.Timing { return n.cfg.Timing }

// SendNow queues a protocol-immediate data frame, waking the radio if
// needed (PBBF's p-coin path).
func (n *Node) SendNow(pkt Packet) {
	if n.dead {
		return
	}
	n.wakeForTraffic()
	n.enqueueTx(wire{kind: frameData, pkt: pkt}, true)
}

// Send queues a data frame without waking the radio or marking it
// immediate (scheduled protocol retransmissions).
func (n *Node) Send(pkt Packet) {
	n.enqueueTx(wire{kind: frameData, pkt: pkt}, false)
}

// Announce defers a packet to the next ATIM window.
func (n *Node) Announce(pkt Packet) {
	n.pendingNormal = append(n.pendingNormal, pkt)
}

// DeliverToApp hands a decoded packet to the application (and the
// adaptive loss observer, when enabled).
func (n *Node) DeliverToApp(pkt Packet, from topo.NodeID) {
	if n.trace != nil {
		n.trace.Record(trace.Event{
			T: n.kernel.Now(), Kind: trace.KindDeliver,
			Node: int32(n.id), Peer: int32(from),
			Origin: int32(pkt.Key.Origin), Seq: uint32(pkt.Key.Seq),
			Value: float64(pkt.Hops),
		})
	}
	n.observeSequence(pkt.Key)
	n.deliver(pkt, from, n.kernel.Now())
}

// SetAwake flips the radio under protocol control, metering the
// transition; a no-op when the state already matches or the node is dead.
func (n *Node) SetAwake(awake bool) {
	if n.dead || awake == n.awake {
		return
	}
	n.setAwake(awake)
	state := energy.Idle
	if !awake {
		state = energy.Sleep
	}
	n.setState(state, n.kernel.Now())
}

// StayThisFrame pins the node awake for the rest of the beacon interval.
func (n *Node) StayThisFrame() { n.mustStay = true }

// TxSlack returns the worst-case release-to-airtime-end span of one data
// transmission: the margin protocols leave when drawing send offsets.
func (n *Node) TxSlack() time.Duration {
	return n.cfg.DataAirtime() + n.cfg.DIFS + time.Duration(n.cfg.CWSlots)*n.cfg.Slot
}

// ScheduleTimer arranges a protocol OnTimer(tag) callback after delay,
// through a pooled record so steady-state timer traffic allocates nothing.
func (n *Node) ScheduleTimer(delay time.Duration, tag int) {
	rec := n.acquireTimer()
	rec.tag = tag
	n.kernel.Schedule(delay, rec.fire)
}

// timerRec is a pooled protocol timer: one pending OnTimer callback with
// its fire closure bound once.
type timerRec struct {
	n    *Node
	tag  int
	fire func()
}

// acquireTimer takes a timer record from the node's pool.
func (n *Node) acquireTimer() *timerRec {
	if k := len(n.timerPool); k > 0 {
		rec := n.timerPool[k-1]
		n.timerPool = n.timerPool[:k-1]
		return rec
	}
	rec := &timerRec{n: n}
	rec.fire = rec.run
	return rec
}

// run recycles the record and forwards to the protocol; timers on dead
// nodes are dropped.
func (rec *timerRec) run() {
	n, tag := rec.n, rec.tag
	n.timerPool = append(n.timerPool, rec)
	if n.dead {
		return
	}
	n.proto.OnTimer(n, tag)
}

// StartFrame begins a new beacon interval. Under a PSM protocol
// (UsesATIM) every node wakes for the ATIM window, pending normal traffic
// is promoted for announcement, and the ATIM (if any) contends for the
// channel; protocols without the PSM substrate own the radio schedule and
// only get their OnFrameStart hook.
func (n *Node) StartFrame() {
	if n.pollDepletion() {
		return
	}
	if n.usesATIM {
		now := n.kernel.Now()
		n.setAwake(true)
		n.setState(energy.Idle, now)
		n.mustStay = false
		n.atimOK = false
		if n.adaptive != nil {
			// Feed last interval's overheard traffic into the p controller.
			n.adaptive.ObserveActivity(n.frameRx)
			n.frameRx = 0
		}
		if len(n.pendingNormal) > 0 {
			n.announced = append(n.announced, n.pendingNormal...)
			n.pendingNormal = n.pendingNormal[:0]
		}
		if len(n.announced) > 0 {
			n.mustStay = true
			// Draw the ATIM transmission time uniformly within the window.
			// Announcers are beacon-synchronized, so contending at the window
			// start would make hidden-terminal ATIM collisions near-certain;
			// spreading keeps the collision rate at the level the paper's
			// ns-2 PSM exhibits (PSM reliability ≈ 1).
			slack := n.cfg.ATIMAirtime() + n.cfg.DIFS + time.Duration(n.cfg.CWSlots)*n.cfg.Slot
			span := n.cfg.Timing.Active - slack
			if span < 0 {
				span = 0
			}
			offset := time.Duration(n.rng.Float64() * float64(span))
			n.kernel.Schedule(offset, n.sendATIMFn)
		}
	}
	n.proto.OnFrameStart(n)
}

// sendATIM queues this frame's ATIM announcement (scheduled by StartFrame).
func (n *Node) sendATIM() {
	n.enqueueTx(wire{kind: frameATIM}, false)
}

// EndATIMWindow closes the ATIM window: the protocol's sleep decision
// (PBBF: the Sleep-Decision-Handler of Figure 3) and, if the node
// announced traffic, the release of data frames to contend for the
// channel. A no-op for protocols without the PSM substrate.
func (n *Node) EndATIMWindow() {
	if n.pollDepletion() || !n.usesATIM {
		return
	}
	now := n.kernel.Now()
	stay := n.mustStay || n.txBusy || len(n.txQueue) > 0
	if !stay && n.proto.OnWindowEnd(n) {
		stay = true
		n.stats.StayAwakeWins++
	}
	if !stay {
		n.setAwake(false)
		n.setState(energy.Sleep, now)
	}
	if n.atimOK && len(n.announced) > 0 {
		// Announced receivers stay awake for the whole beacon interval, so
		// the data transmission time is drawn uniformly across it. As with
		// ATIMs, this de-synchronizes the per-hop rebroadcast storm (every
		// node at hop distance h forwards in the same beacon interval).
		slack := n.cfg.DataAirtime() + n.cfg.DIFS + time.Duration(n.cfg.CWSlots)*n.cfg.Slot
		span := n.cfg.Timing.Sleep() - slack
		if span < 0 {
			span = 0
		}
		for _, pkt := range n.announced {
			offset := time.Duration(n.rng.Float64() * float64(span))
			rec := n.acquireRelease()
			rec.pkt = pkt
			n.kernel.Schedule(offset, rec.fire)
		}
		n.announced = n.announced[:0]
	} else if len(n.announced) > 0 {
		// The ATIM never made it out (contention): neighbors were not told
		// to stay awake, so sending data now would be pointless. Re-queue
		// for the next window.
		n.stats.ATIMAborted++
		n.pendingNormal = append(n.pendingNormal, n.announced...)
		n.announced = n.announced[:0]
	}
}

// releaseRec is a pooled deferred-release record: one announced data frame
// waiting out its post-window transmission offset. Its fire closure is
// bound once, so releasing announced traffic allocates nothing in steady
// state.
type releaseRec struct {
	n    *Node
	pkt  Packet
	fire func()
}

// acquireRelease takes a release record from the node's pool.
func (n *Node) acquireRelease() *releaseRec {
	if k := len(n.relPool); k > 0 {
		rec := n.relPool[k-1]
		n.relPool = n.relPool[:k-1]
		return rec
	}
	rec := &releaseRec{n: n}
	rec.fire = rec.run
	return rec
}

// run queues the held data frame for CSMA transmission and recycles the
// record.
func (rec *releaseRec) run() {
	n, pkt := rec.n, rec.pkt
	rec.pkt = Packet{}
	n.relPool = append(n.relPool, rec)
	n.enqueueTx(wire{kind: frameData, pkt: pkt}, false)
}

// Deliver implements phy.Receiver.
func (n *Node) Deliver(f phy.Frame) {
	if n.dead {
		return
	}
	w, ok := f.Payload.(*wire)
	if !ok {
		return // foreign payload: ignore
	}
	switch w.kind {
	case frameATIM:
		n.stats.ATIMReceived++
		n.frameRx++
		if n.trace != nil {
			n.trace.Record(trace.Event{
				T: n.kernel.Now(), Kind: trace.KindRxATIM,
				Node: int32(n.id), Peer: int32(f.Sender),
			})
		}
		// Stay awake the whole beacon interval to receive announced data.
		n.mustStay = true
	case frameData:
		n.stats.DataReceived++
		n.frameRx++
		first := n.seen.MarkSeen(w.pkt.Key)
		if !first {
			n.stats.Duplicates++
		}
		if n.trace != nil {
			kind := trace.KindRxData
			if !first {
				kind = trace.KindDuplicate
			}
			n.trace.Record(trace.Event{
				T: n.kernel.Now(), Kind: kind,
				Node: int32(n.id), Peer: int32(f.Sender),
				Origin: int32(w.pkt.Key.Origin), Seq: uint32(w.pkt.Key.Seq),
			})
		}
		pkt := w.pkt
		pkt.Hops++
		// Duplicates reach the protocol too (firstCopy=false): OLA-style
		// schemes accumulate energy across every copy. PBBF returns
		// immediately on a duplicate, exactly as the pre-interface MAC did.
		n.proto.OnReceive(n, pkt, f.Sender, first)
	}
}

// observeSequence feeds the adaptive q controller: a gap in an origin's
// sequence numbers means broadcasts were missed (Section 6: "a node
// detecting a large fraction of broadcast packets are not being
// received").
func (n *Node) observeSequence(key core.PacketKey) {
	if n.adaptive == nil {
		return
	}
	if _, ok := n.seqSeen[key.Origin]; ok {
		last := n.lastSeq[key.Origin]
		if key.Seq > last {
			for missed := last + 1; missed < key.Seq; missed++ {
				n.adaptive.ObserveDelivery(false)
			}
			n.lastSeq[key.Origin] = key.Seq
		}
	} else {
		n.seqSeen[key.Origin] = struct{}{}
		n.lastSeq[key.Origin] = key.Seq
	}
	n.adaptive.ObserveDelivery(true)
}

// enqueueTx appends a frame to the node's transmit queue and starts the
// CSMA machinery if idle. immediate marks p-coin data frames for stats.
func (n *Node) enqueueTx(w wire, immediate bool) {
	if n.dead {
		return // deferred releases may fire after a fail-stop death
	}
	if immediate {
		n.stats.ImmediateSent++
	}
	n.txQueue = append(n.txQueue, w)
	if !n.txBusy {
		n.txBusy = true
		n.attemptTx()
	}
}

// frameStart returns the beginning of the beacon interval containing t.
func (n *Node) frameStart(t time.Duration) time.Duration {
	return t / n.cfg.Timing.Frame * n.cfg.Timing.Frame
}

// inATIMWindow reports whether t is inside the ATIM window of its frame.
func (n *Node) inATIMWindow(t time.Duration) bool {
	return t-n.frameStart(t) < n.cfg.Timing.Active
}

// attemptTx runs one CSMA attempt for the head of the transmit queue.
func (n *Node) attemptTx() {
	if n.dead {
		return
	}
	if len(n.txQueue) == 0 {
		n.txBusy = false
		return
	}
	now := n.kernel.Now()
	head := n.txQueue[0]

	if n.usesATIM && head.kind == frameData && n.inATIMWindow(now) {
		// Data may not be sent during the ATIM window; wait it out.
		windowEnd := n.frameStart(now) + n.cfg.Timing.Active
		n.kernel.ScheduleAt(windowEnd, n.attemptTxFn)
		return
	}

	backoff := n.cfg.DIFS + time.Duration(n.rng.Intn(n.cfg.CWSlots))*n.cfg.Slot

	if head.kind == frameATIM {
		windowEnd := n.frameStart(now) + n.cfg.Timing.Active
		if !n.inATIMWindow(now) || now+backoff+n.cfg.ATIMAirtime() > windowEnd {
			// Can't fit this window; EndATIMWindow will re-queue the
			// packets. Drop the ATIM frame itself.
			n.txQueue = n.txQueue[0:copy(n.txQueue, n.txQueue[1:])]
			n.attemptTx()
			return
		}
	}

	if n.channel.CarrierBusy(n.id) {
		n.kernel.Schedule(backoff, n.attemptTxFn)
		return
	}
	n.kernel.Schedule(backoff, n.afterBackoffFn)
}

// afterBackoff fires when the contention backoff expires: transmit if the
// medium stayed idle, otherwise re-contend.
func (n *Node) afterBackoff() {
	if n.dead {
		return
	}
	if n.channel.CarrierBusy(n.id) {
		n.attemptTx() // medium got busy during backoff: re-contend
		return
	}
	n.transmitHead()
}

// transmitHead puts the head frame on the air.
func (n *Node) transmitHead() {
	if len(n.txQueue) == 0 {
		n.txBusy = false
		return
	}
	n.onAir = n.txQueue[0]
	n.txQueue = n.txQueue[0:copy(n.txQueue, n.txQueue[1:])]
	var airtime time.Duration
	switch n.onAir.kind {
	case frameATIM:
		airtime = n.cfg.ATIMAirtime()
		n.stats.ATIMSent++
		n.atimOK = true
		if n.trace != nil {
			n.trace.Record(trace.Event{
				T: n.kernel.Now(), Kind: trace.KindTxATIM,
				Node: int32(n.id), Peer: -1, Value: airtime.Seconds(),
			})
		}
	case frameData:
		airtime = n.cfg.DataAirtime()
		n.stats.DataSent++
		if n.trace != nil {
			n.trace.Record(trace.Event{
				T: n.kernel.Now(), Kind: trace.KindTxData,
				Node: int32(n.id), Peer: -1,
				Origin: int32(n.onAir.pkt.Key.Origin), Seq: uint32(n.onAir.pkt.Key.Seq),
				Value: airtime.Seconds(),
			})
		}
	}
	n.setState(energy.Transmit, n.kernel.Now())
	err := n.channel.Transmit(phy.Frame{Sender: n.id, Payload: &n.onAir, Airtime: airtime}, n.txDoneFn)
	if err != nil {
		// The MAC serializes its own transmissions, so this is a bug, not
		// a runtime condition; surface it loudly in simulation runs.
		panic(fmt.Sprintf("mac: node %d transmit: %v", n.id, err))
	}
}

// txDone runs when this node's frame leaves the air: back to idle power and
// on to the next queued frame.
func (n *Node) txDone() {
	if n.trace != nil {
		n.trace.Record(trace.Event{T: n.kernel.Now(), Kind: trace.KindTxEnd, Node: int32(n.id), Peer: -1})
	}
	if n.dead {
		// Died mid-airtime: the transmission was billed to completion;
		// now the dead radio rests at sleep power.
		n.setState(energy.Sleep, n.kernel.Now())
		return
	}
	n.setState(energy.Idle, n.kernel.Now())
	// A battery can run dry mid-transmission; the committed frame completes
	// and is billed in full (the radio's capacitors carry it out), and the
	// depletion fires here — after the tx_end event, so the trace never
	// shows a dead node transmitting.
	if n.pollDepletion() {
		return
	}
	n.attemptTx()
}

// FinishMetering closes the node's energy accounting at time now.
func (n *Node) FinishMetering(now time.Duration) {
	n.bank.Finish(n.slot, now)
}
