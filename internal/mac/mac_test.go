package mac

import (
	"testing"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/energy"
	"pbbf/internal/phy"
	"pbbf/internal/protocol"
	"pbbf/internal/rng"
	"pbbf/internal/sim"
	"pbbf/internal/topo"
)

// harness wires a grid of MAC nodes to a channel and drives the beacon
// schedule, recording application deliveries.
type harness struct {
	t       *testing.T
	cfg     Config
	kernel  *sim.Kernel
	channel *phy.Channel
	nodes   []*Node
	// got[node] lists (packet, time) deliveries.
	got [][]delivered
}

type delivered struct {
	pkt Packet
	at  time.Duration
}

func newHarness(t *testing.T, w, h int, cfg Config, seed uint64) *harness {
	t.Helper()
	g := topo.MustGrid(w, h)
	hn := &harness{
		t:      t,
		kernel: sim.NewKernel(),
		got:    make([][]delivered, g.N()),
		nodes:  make([]*Node, g.N()),
	}
	hn.channel = phy.NewChannel(hn.kernel, g)
	base := rng.New(seed)
	for i := 0; i < g.N(); i++ {
		i := i
		node, err := NewNode(topo.NodeID(i), cfg, hn.kernel, hn.channel, base.Split(),
			func(pkt Packet, _ topo.NodeID, now time.Duration) {
				hn.got[i] = append(hn.got[i], delivered{pkt: pkt, at: now})
			})
		if err != nil {
			t.Fatal(err)
		}
		hn.nodes[i] = node
	}
	hn.cfg = cfg
	return hn
}

// run schedules the beacon ticks and executes the simulation. It is called
// after the test has scheduled its application events, so that (as in
// netsim) application events at a frame boundary precede the frame snapshot.
func (h *harness) run(d time.Duration) {
	h.t.Helper()
	var tick func()
	tick = func() {
		for _, n := range h.nodes {
			n.StartFrame()
		}
		h.kernel.Schedule(h.cfg.Timing.Active, func() {
			for _, n := range h.nodes {
				n.EndATIMWindow()
			}
		})
		h.kernel.Schedule(h.cfg.Timing.Frame, tick)
	}
	h.kernel.ScheduleAt(0, tick)
	if err := h.kernel.Run(d); err != nil {
		h.t.Fatal(err)
	}
}

func (h *harness) receivedCount() int {
	total := 0
	for _, g := range h.got {
		total += len(g)
	}
	return total
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig(core.PSM()).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Timing.Active = 0 },
		func(c *Config) { c.Params.P = -1 },
		func(c *Config) { c.BitrateBps = 0 },
		func(c *Config) { c.DataFrameBytes = 0 },
		func(c *Config) { c.ATIMFrameBytes = 0 },
		func(c *Config) { c.Slot = 0 },
		func(c *Config) { c.CWSlots = 0 },
		func(c *Config) { c.DIFS = -time.Second },
		// ATIM frame longer than the window.
		func(c *Config) { c.ATIMFrameBytes = 1 << 20 },
		// Unknown protocol and bad protocol knobs.
		func(c *Config) { c.Protocol.Name = "flooding" },
		func(c *Config) { c.Protocol = protocol.Spec{Name: protocol.NameSleepSched, WakePeriod: -1} },
		// Adaptive control tunes the PBBF coins; rival protocols have none.
		func(c *Config) {
			c.Adaptive = &core.AdaptiveConfig{}
			c.Protocol = protocol.Spec{Name: protocol.NameOLA}
		},
		// Bad battery budgets.
		func(c *Config) { c.Energy = EnergyOptions{InitialJ: -1} },
		func(c *Config) { c.Energy = EnergyOptions{HarvestW: 0.01} },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig(core.PSM())
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestAirtimes(t *testing.T) {
	cfg := DefaultConfig(core.PSM())
	// 64 B at 19.2 kbps = 26.66 ms.
	if got := cfg.DataAirtime(); got < 26*time.Millisecond || got > 27*time.Millisecond {
		t.Fatalf("data airtime = %v", got)
	}
	if got := cfg.ATIMAirtime(); got >= cfg.DataAirtime() {
		t.Fatalf("ATIM airtime %v not shorter than data %v", got, cfg.DataAirtime())
	}
}

func TestNewNodeRejectsNilDelivery(t *testing.T) {
	g := topo.MustGrid(2, 1)
	k := sim.NewKernel()
	c := phy.NewChannel(k, g)
	if _, err := NewNode(0, DefaultConfig(core.PSM()), k, c, rng.New(1), nil); err == nil {
		t.Fatal("nil delivery accepted")
	}
}

func TestPSMBroadcastReachesAllInOneBeacon(t *testing.T) {
	// 2×1 grid: source announces at frame 0, data right after the window.
	cfg := DefaultConfig(core.PSM())
	h := newHarness(t, 2, 1, cfg, 1)
	h.kernel.ScheduleAt(0, func() {
		h.nodes[0].Broadcast(Packet{Key: PacketKeyFor(0, 0), Payload: "update"})
	})
	h.run(cfg.Timing.Frame)
	if len(h.got[1]) != 1 {
		t.Fatalf("node 1 deliveries = %v", h.got[1])
	}
	d := h.got[1][0]
	// Delivery must land after the ATIM window but within the first BI.
	if d.at < cfg.Timing.Active || d.at > cfg.Timing.Frame {
		t.Fatalf("delivery at %v, want within (AW, BI)", d.at)
	}
	if d.pkt.Hops != 1 {
		t.Fatalf("hops = %d, want 1", d.pkt.Hops)
	}
	if d.pkt.Payload != "update" {
		t.Fatalf("payload = %v", d.pkt.Payload)
	}
}

func TestPSMMultiHopTakesOneBeaconPerHop(t *testing.T) {
	cfg := DefaultConfig(core.PSM())
	h := newHarness(t, 4, 1, cfg, 2)
	h.kernel.ScheduleAt(0, func() {
		h.nodes[0].Broadcast(Packet{Key: PacketKeyFor(0, 0)})
	})
	h.run(5 * cfg.Timing.Frame)
	for hop := 1; hop <= 3; hop++ {
		if len(h.got[hop]) != 1 {
			t.Fatalf("node %d deliveries = %d", hop, len(h.got[hop]))
		}
		at := h.got[hop][0].at
		lo := time.Duration(hop-1)*cfg.Timing.Frame + cfg.Timing.Active
		hi := time.Duration(hop) * cfg.Timing.Frame
		if at < lo || at > hi {
			t.Fatalf("hop %d delivered at %v, want in [%v, %v]", hop, at, lo, hi)
		}
	}
}

func TestPSMFullCoverageOnGrid(t *testing.T) {
	cfg := DefaultConfig(core.PSM())
	h := newHarness(t, 5, 5, cfg, 3)
	h.kernel.ScheduleAt(0, func() {
		h.nodes[12].Broadcast(Packet{Key: PacketKeyFor(12, 0)})
	})
	h.run(15 * cfg.Timing.Frame)
	for i := range h.got {
		if i == 12 {
			continue
		}
		if len(h.got[i]) != 1 {
			t.Fatalf("node %d received %d copies (app-level), want exactly 1", i, len(h.got[i]))
		}
	}
}

func TestDuplicatesSuppressed(t *testing.T) {
	// On a 3×3 grid, interior nodes hear several rebroadcasts but the app
	// sees each packet once; the MAC counts the duplicates.
	cfg := DefaultConfig(core.PSM())
	h := newHarness(t, 3, 3, cfg, 4)
	h.kernel.ScheduleAt(0, func() {
		h.nodes[4].Broadcast(Packet{Key: PacketKeyFor(4, 0)})
	})
	h.run(10 * cfg.Timing.Frame)
	dups := 0
	for _, n := range h.nodes {
		dups += n.Stats().Duplicates
	}
	if dups == 0 {
		t.Fatal("no duplicates recorded on a dense grid")
	}
}

func TestAlwaysOnImmediateDelivery(t *testing.T) {
	// p=1, q=1: forwarding never waits for a beacon; the whole 4-node line
	// is covered within the first beacon interval.
	cfg := DefaultConfig(core.AlwaysOn())
	h := newHarness(t, 4, 1, cfg, 5)
	h.kernel.ScheduleAt(0, func() {
		h.nodes[0].Broadcast(Packet{Key: PacketKeyFor(0, 0)})
	})
	h.run(cfg.Timing.Frame)
	for i := 1; i < 4; i++ {
		if len(h.got[i]) != 1 {
			t.Fatalf("node %d not covered in first BI under always-on", i)
		}
	}
	last := h.got[3][0].at
	if last > cfg.Timing.Active+time.Second {
		t.Fatalf("3-hop always-on delivery at %v, want shortly after the window", last)
	}
}

func TestImmediateBroadcastMissesSleepers(t *testing.T) {
	// p=1, q=0: the source's immediate data goes out right after the ATIM
	// window with no announcement, so every neighbor is asleep and the
	// broadcast dies at hop 1. (The source had no prior traffic, so no
	// node stayed awake.)
	cfg := DefaultConfig(core.Params{P: 1, Q: 0})
	h := newHarness(t, 3, 1, cfg, 6)
	h.kernel.ScheduleAt(cfg.Timing.Active+time.Second, func() {
		// Originate mid-sleep-period: immediate send, everyone asleep.
		h.nodes[0].Broadcast(Packet{Key: PacketKeyFor(0, 0)})
	})
	h.run(3 * cfg.Timing.Frame)
	if h.receivedCount() != 0 {
		t.Fatalf("sleeping neighbors received an unannounced broadcast: %d", h.receivedCount())
	}
}

func TestQKeepsReceiversAwake(t *testing.T) {
	// p=1, q=1: neighbors stay awake through the sleep period and catch
	// the unannounced immediate broadcast.
	cfg := DefaultConfig(core.Params{P: 1, Q: 1})
	h := newHarness(t, 3, 1, cfg, 7)
	h.kernel.ScheduleAt(cfg.Timing.Active+time.Second, func() {
		h.nodes[0].Broadcast(Packet{Key: PacketKeyFor(0, 0)})
	})
	h.run(2 * cfg.Timing.Frame)
	if len(h.got[1]) != 1 || len(h.got[2]) != 1 {
		t.Fatalf("awake neighbors missed immediate broadcast: %d/%d",
			len(h.got[1]), len(h.got[2]))
	}
}

func TestEnergyOrdering(t *testing.T) {
	// Over several beacons with no traffic: PSM sleeps 90% of the time,
	// q=0.5 about half the sleep periods, always-on never.
	run := func(params core.Params, seed uint64) float64 {
		cfg := DefaultConfig(params)
		h := newHarness(t, 3, 3, cfg, seed)
		h.run(20 * cfg.Timing.Frame)
		var total float64
		for _, n := range h.nodes {
			n.FinishMetering(h.kernel.Now())
			total += n.EnergyAt(h.kernel.Now())
		}
		return total
	}
	psm := run(core.PSM(), 8)
	mid := run(core.Params{P: 0.5, Q: 0.5}, 8)
	on := run(core.AlwaysOn(), 8)
	if !(psm < mid && mid < on) {
		t.Fatalf("energy ordering violated: PSM=%v mid=%v on=%v", psm, mid, on)
	}
	// PSM duty cycle is 10%: expect roughly 10x less than always-on.
	if psm > on*0.2 {
		t.Fatalf("PSM energy %v too close to always-on %v", psm, on)
	}
}

func TestStayAwakeStatIncrements(t *testing.T) {
	cfg := DefaultConfig(core.Params{P: 0, Q: 1})
	h := newHarness(t, 2, 1, cfg, 9)
	h.run(5 * cfg.Timing.Frame)
	if h.nodes[0].Stats().StayAwakeWins == 0 {
		t.Fatal("q=1 never won a stay-awake coin")
	}
}

func TestATIMWindowBlocksData(t *testing.T) {
	// An immediate broadcast originated during the ATIM window must not
	// hit the air until the window ends.
	cfg := DefaultConfig(core.Params{P: 1, Q: 1})
	h := newHarness(t, 2, 1, cfg, 10)
	h.kernel.ScheduleAt(10*time.Millisecond, func() {
		h.nodes[0].Broadcast(Packet{Key: PacketKeyFor(0, 0)})
	})
	h.run(cfg.Timing.Frame)
	if len(h.got[1]) != 1 {
		t.Fatalf("delivery count = %d", len(h.got[1]))
	}
	if at := h.got[1][0].at; at < cfg.Timing.Active {
		t.Fatalf("data delivered during ATIM window at %v", at)
	}
}

func TestHopsIncrement(t *testing.T) {
	cfg := DefaultConfig(core.PSM())
	h := newHarness(t, 3, 1, cfg, 11)
	h.kernel.ScheduleAt(0, func() {
		h.nodes[0].Broadcast(Packet{Key: PacketKeyFor(0, 0)})
	})
	h.run(4 * cfg.Timing.Frame)
	if h.got[1][0].pkt.Hops != 1 {
		t.Fatalf("1-hop packet hops = %d", h.got[1][0].pkt.Hops)
	}
	if h.got[2][0].pkt.Hops != 2 {
		t.Fatalf("2-hop packet hops = %d", h.got[2][0].pkt.Hops)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, float64) {
		cfg := DefaultConfig(core.Params{P: 0.5, Q: 0.5})
		h := newHarness(t, 4, 4, cfg, 42)
		h.kernel.ScheduleAt(0, func() {
			h.nodes[5].Broadcast(Packet{Key: PacketKeyFor(5, 0)})
		})
		h.run(10 * cfg.Timing.Frame)
		var e float64
		for _, n := range h.nodes {
			e += n.EnergyAt(h.kernel.Now())
		}
		return h.receivedCount(), e
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", c1, e1, c2, e2)
	}
}

func TestMeterStatesTracked(t *testing.T) {
	cfg := DefaultConfig(core.PSM())
	h := newHarness(t, 2, 1, cfg, 12)
	h.kernel.ScheduleAt(0, func() {
		h.nodes[0].Broadcast(Packet{Key: PacketKeyFor(0, 0)})
	})
	h.run(3 * cfg.Timing.Frame)
	h.nodes[0].FinishMetering(h.kernel.Now())
	if h.nodes[0].TimeIn(energy.Transmit) == 0 {
		t.Fatal("transmitter recorded no TX time")
	}
	if h.nodes[0].TimeIn(energy.Sleep) == 0 {
		t.Fatal("PSM node recorded no sleep time")
	}
	if h.nodes[0].TimeIn(energy.Idle) == 0 {
		t.Fatal("node recorded no idle time")
	}
}
