package mac

import (
	"testing"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/rng"
)

func TestHeteroConfigValidate(t *testing.T) {
	good := []HeteroConfig{{}, {QSpread: 0.3}, {QSpread: 1, PSpread: 1}}
	for _, h := range good {
		if err := h.Validate(); err != nil {
			t.Fatalf("config %+v rejected: %v", h, err)
		}
	}
	bad := []HeteroConfig{{QSpread: -0.1}, {QSpread: 1.5}, {PSpread: -1}, {PSpread: 2}}
	for _, h := range bad {
		if err := h.Validate(); err == nil {
			t.Fatalf("config %+v accepted", h)
		}
	}
	if (HeteroConfig{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if !(HeteroConfig{QSpread: 0.1}).Enabled() {
		t.Fatal("q-jittered config reports disabled")
	}
}

func TestHeteroSampleBoundsAndMean(t *testing.T) {
	h := HeteroConfig{QSpread: 0.2}
	base := core.Params{P: 0.5, Q: 0.3}
	r := rng.New(17)
	var sum float64
	const draws = 4000
	for i := 0; i < draws; i++ {
		got := h.Sample(base, r)
		if got.P != base.P {
			t.Fatalf("p jittered with PSpread=0: %v", got.P)
		}
		if got.Q < base.Q-h.QSpread-1e-12 || got.Q > base.Q+h.QSpread+1e-12 {
			t.Fatalf("q %v outside %v±%v", got.Q, base.Q, h.QSpread)
		}
		sum += got.Q
	}
	if mean := sum / draws; mean < base.Q-0.01 || mean > base.Q+0.01 {
		t.Fatalf("sample mean q %v drifted from base %v (jitter window is inside [0,1])", mean, base.Q)
	}
}

func TestHeteroSampleClampsAtBorders(t *testing.T) {
	h := HeteroConfig{QSpread: 0.5, PSpread: 0.5}
	r := rng.New(23)
	for i := 0; i < 2000; i++ {
		got := h.Sample(core.Params{P: 0.9, Q: 0.1}, r)
		if got.Q < 0 || got.Q > 1 || got.P < 0 || got.P > 1 {
			t.Fatalf("sample %+v escaped [0,1]", got)
		}
	}
}

func TestHeteroSampleDeterministic(t *testing.T) {
	h := HeteroConfig{QSpread: 0.2, PSpread: 0.1}
	base := core.Params{P: 0.5, Q: 0.5}
	a, b := rng.New(7), rng.New(7)
	for i := 0; i < 100; i++ {
		if h.Sample(base, a) != h.Sample(base, b) {
			t.Fatalf("draw %d diverged for equal seeds", i)
		}
	}
}

// TestKillSilencesNode: a killed node stops originating, forwarding,
// receiving, and waking for beacons; the survivors keep running.
func TestKillSilencesNode(t *testing.T) {
	cfg := DefaultConfig(core.Params{P: 1, Q: 1}) // always forward, always awake
	h := newHarness(t, 3, 1, cfg, 1)

	// Kill the middle node before any traffic: the chain 0-1-2 is cut.
	h.kernel.ScheduleAt(time.Second, h.nodes[1].Kill)
	h.kernel.ScheduleAt(2*time.Second, func() {
		h.nodes[0].Broadcast(Packet{Key: PacketKeyFor(0, 0)})
	})
	h.run(40 * time.Second)

	dead := h.nodes[1]
	if !dead.Dead() || dead.Awake() {
		t.Fatalf("killed node state: dead=%v awake=%v", dead.Dead(), dead.Awake())
	}
	if s := dead.Stats(); s.DataSent != 0 || s.DataReceived != 0 || s.ATIMSent != 0 {
		t.Fatalf("killed node participated: %+v", s)
	}
	if len(h.got[1]) != 0 {
		t.Fatal("killed node delivered to the application")
	}
	if len(h.got[2]) != 0 {
		t.Fatal("packet crossed the dead relay")
	}
	if s := h.nodes[0].Stats(); s.DataSent == 0 {
		t.Fatal("survivor never transmitted")
	}

	// Kill is idempotent and Broadcast on a dead node is a no-op.
	dead.Kill()
	dead.Broadcast(Packet{Key: PacketKeyFor(1, 0)})
	if s := dead.Stats(); s.ImmediateSent != 0 {
		t.Fatalf("dead node accepted a broadcast: %+v", s)
	}
}

// TestKillFreezesEnergyAtSleepPower: after death the meter accrues only
// sleep-level power, so a node dead for most of the run spends far less
// than a survivor.
func TestKillFreezesEnergyAtSleepPower(t *testing.T) {
	cfg := DefaultConfig(core.Params{P: 0, Q: 1}) // all awake all the time
	h := newHarness(t, 2, 1, cfg, 3)
	const horizon = 100 * time.Second
	h.kernel.ScheduleAt(10*time.Second, h.nodes[1].Kill)
	h.run(horizon)
	for _, n := range h.nodes {
		n.FinishMetering(horizon)
	}
	alive, dead := h.nodes[0].EnergyAt(horizon), h.nodes[1].EnergyAt(horizon)
	if dead >= alive/2 {
		t.Fatalf("dead node burned %.3f J vs survivor %.3f J — meter not asleep", dead, alive)
	}
}
