package mac

import (
	"fmt"

	"pbbf/internal/core"
	"pbbf/internal/rng"
)

// HeteroConfig draws per-node PBBF operating points from a seeded
// distribution around a shared base, replacing the paper's single global
// wake probability with heterogeneous per-node duty cycles: a field of
// mixed hardware revisions or battery states where each node runs its own
// q (and optionally p). Sampling is mean-preserving as long as the jitter
// window stays inside [0,1]; clamping at the borders skews the mean.
type HeteroConfig struct {
	// QSpread is the half-width of the uniform jitter applied to the base
	// stay-awake probability q: node values are drawn from
	// [q-QSpread, q+QSpread], clamped to [0,1].
	QSpread float64
	// PSpread is the same half-width for the immediate-rebroadcast
	// probability p (0 keeps p homogeneous).
	PSpread float64
}

// Validate checks the configuration.
func (h HeteroConfig) Validate() error {
	if h.QSpread < 0 || h.QSpread > 1 {
		return fmt.Errorf("mac: hetero q spread %v outside [0,1]", h.QSpread)
	}
	if h.PSpread < 0 || h.PSpread > 1 {
		return fmt.Errorf("mac: hetero p spread %v outside [0,1]", h.PSpread)
	}
	return nil
}

// Enabled reports whether any jitter is configured.
func (h HeteroConfig) Enabled() bool { return h.QSpread > 0 || h.PSpread > 0 }

// Sample returns base with q (and p, when PSpread > 0) independently
// jittered for one node. Each call consumes at most two draws from r, in
// (q, p) order, so per-node parameter streams are deterministic.
func (h HeteroConfig) Sample(base core.Params, r *rng.Source) core.Params {
	out := base
	if h.QSpread > 0 {
		out.Q = clampUnit(base.Q + (2*r.Float64()-1)*h.QSpread)
	}
	if h.PSpread > 0 {
		out.P = clampUnit(base.P + (2*r.Float64()-1)*h.PSpread)
	}
	return out
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
