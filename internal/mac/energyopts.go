package mac

import (
	"fmt"

	"pbbf/internal/energy"
)

// EnergyOptions gives the node a finite battery: the radio's consumption
// drains it, an optional harvest rate recharges it (clamped at capacity),
// and the MAC polls depletion at its state-transition sites — beacon
// starts, ATIM window ends, and transmission completions — killing the
// node fail-stop (the Kill machinery) the moment the charge is gone. The
// zero value is the paper's infinite battery and changes nothing.
type EnergyOptions struct {
	// InitialJ is the battery's initial capacity in joules; 0 keeps the
	// legacy infinite battery.
	InitialJ float64
	// HarvestW recharges the battery at a constant rate, clamped at
	// InitialJ. Requires a finite battery.
	HarvestW float64
}

// Enabled reports whether the node's battery is finite.
func (e EnergyOptions) Enabled() bool { return e.InitialJ > 0 }

// Budget converts the options to the energy package's battery budget.
func (e EnergyOptions) Budget() energy.Budget {
	return energy.Budget{CapacityJ: e.InitialJ, HarvestW: e.HarvestW}
}

// Validate checks the options.
func (e EnergyOptions) Validate() error {
	if err := e.Budget().Validate(); err != nil {
		return fmt.Errorf("mac: %w", err)
	}
	return nil
}
