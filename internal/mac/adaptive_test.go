package mac

import (
	"testing"
	"time"

	"pbbf/internal/core"
)

func adaptiveConfig(initial core.Params) Config {
	cfg := DefaultConfig(initial)
	ac := core.DefaultAdaptiveConfig()
	ac.Initial = initial
	cfg.Adaptive = &ac
	return cfg
}

func TestAdaptiveConfigValidated(t *testing.T) {
	cfg := DefaultConfig(core.PSM())
	bad := core.DefaultAdaptiveConfig()
	bad.Step = -1
	cfg.Adaptive = &bad
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid adaptive config accepted")
	}
}

func TestParamsStaticVsAdaptive(t *testing.T) {
	static := newHarness(t, 2, 1, DefaultConfig(core.Params{P: 0.3, Q: 0.4}), 1)
	if got := static.nodes[0].Params(); got != (core.Params{P: 0.3, Q: 0.4}) {
		t.Fatalf("static params = %+v", got)
	}
	adaptive := newHarness(t, 2, 1, adaptiveConfig(core.Params{P: 0.3, Q: 0.4}), 1)
	if got := adaptive.nodes[0].Params(); got != (core.Params{P: 0.3, Q: 0.4}) {
		t.Fatalf("adaptive initial params = %+v", got)
	}
}

func TestAdaptiveQuietNetworkLowersP(t *testing.T) {
	// 20 beacon intervals with no traffic at all: activity EWMA sits at 0,
	// so the controller walks p down.
	cfg := adaptiveConfig(core.Params{P: 0.5, Q: 0.25})
	h := newHarness(t, 3, 3, cfg, 2)
	h.run(20 * cfg.Timing.Frame)
	got := h.nodes[4].Params()
	if got.P >= 0.5 {
		t.Fatalf("p did not decay in a quiet network: %v", got.P)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveGapRaisesQ(t *testing.T) {
	// Source emits sequences 0 and 5 as immediate-only broadcasts the
	// neighbor happens to catch; the gap (1..4 missing) must push the
	// neighbor's q up.
	cfg := adaptiveConfig(core.Params{P: 0, Q: 1}) // neighbor always awake
	h := newHarness(t, 2, 1, cfg, 3)
	h.kernel.ScheduleAt(0, func() {
		h.nodes[0].Broadcast(Packet{Key: PacketKeyFor(0, 0)})
	})
	h.kernel.ScheduleAt(3*cfg.Timing.Frame, func() {
		h.nodes[0].Broadcast(Packet{Key: PacketKeyFor(0, 5)})
	})
	h.run(6 * cfg.Timing.Frame)
	if len(h.got[1]) != 2 {
		t.Fatalf("neighbor deliveries = %d, want 2", len(h.got[1]))
	}
	got := h.nodes[1].Params()
	if got.Q <= 0.95 {
		// q starts at 1 (clamped); gaps must keep it pinned high while a
		// clean stream would have decayed it. Re-run a clean stream to
		// contrast.
		t.Fatalf("q fell to %v despite sequence gaps", got.Q)
	}
	clean := newHarness(t, 2, 1, cfg, 3)
	for seq := uint64(0); seq < 6; seq++ {
		at := time.Duration(seq) * clean.cfg.Timing.Frame
		clean.kernel.ScheduleAt(at, func() {
			clean.nodes[0].Broadcast(Packet{Key: PacketKeyFor(0, seq)})
		})
	}
	clean.run(8 * clean.cfg.Timing.Frame)
	if cleanQ := clean.nodes[1].Params().Q; cleanQ >= got.Q {
		t.Fatalf("clean stream q %v not below gappy stream q %v", cleanQ, got.Q)
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	run := func() core.Params {
		cfg := adaptiveConfig(core.Params{P: 0.25, Q: 0.25})
		h := newHarness(t, 3, 3, cfg, 9)
		h.kernel.ScheduleAt(0, func() {
			h.nodes[4].Broadcast(Packet{Key: PacketKeyFor(4, 0)})
		})
		h.run(10 * cfg.Timing.Frame)
		return h.nodes[0].Params()
	}
	if run() != run() {
		t.Fatal("adaptive runs with identical seeds diverged")
	}
}
