package mac

import (
	"testing"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/phy"
	"pbbf/internal/raceflag"
	"pbbf/internal/rng"
	"pbbf/internal/sim"
	"pbbf/internal/topo"
)

// TestFleetSteadyStateZeroAlloc pins the MAC hot path to zero allocations:
// after one warm-up run, repeating a full simulated run — fleet reset,
// per-node reinitialization, a broadcast, and the complete frame/ATIM
// beacon schedule — on the same pooled state must not allocate at all. The
// frame tick and ATIM-window closures are bound once outside the measured
// loop, exactly as netsim.RunPool binds them, so anything this test counts
// is an allocation a pooled simulation would pay per run.
func TestFleetSteadyStateZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	g := topo.MustGrid(4, 4)
	cfg := DefaultConfig(core.Params{P: 0.5, Q: 0.5})
	kernel := sim.NewKernel()
	channel := phy.NewChannel(kernel, g)
	fleet := NewFleet()
	base := rng.New(7)
	deliver := func(Packet, topo.NodeID, time.Duration) {}
	var tick func()
	endWindow := func() {
		for _, n := range fleet.Nodes() {
			n.EndATIMWindow()
		}
	}
	tick = func() {
		for _, n := range fleet.Nodes() {
			n.StartFrame()
		}
		kernel.Schedule(cfg.Timing.Active, endWindow)
		kernel.Schedule(cfg.Timing.Frame, tick)
	}
	var seq uint64
	runOnce := func() {
		kernel.Reset()
		channel.Reset(g)
		base.Reseed(7)
		fleet.Reset(g.N(), cfg.Profile, kernel.Now())
		for i := 0; i < g.N(); i++ {
			if err := fleet.InitNode(i, topo.NodeID(i), cfg, kernel, channel, base, deliver); err != nil {
				t.Fatal(err)
			}
		}
		seq++
		fleet.Node(0).Broadcast(Packet{Key: core.PacketKey{Origin: 0, Seq: seq}})
		kernel.ScheduleAt(0, tick)
		if err := kernel.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	runOnce() // warm the slabs, queues, and per-node buffers
	runOnce() // settle any second-run growth (e.g. heap doubling)
	if allocs := testing.AllocsPerRun(5, runOnce); allocs > 0 {
		t.Fatalf("steady-state MAC run allocated %v times, want 0", allocs)
	}
}
