// Package stats provides the small statistics and tabulation toolkit the
// experiment harness uses: streaming accumulators, confidence intervals,
// x/y series, and rendering of figure data as aligned text tables or CSV.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Accumulator collects samples and reports summary statistics in streaming
// fashion (Welford's algorithm, numerically stable).
type Accumulator struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasSamples bool
}

// Add incorporates one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
	if !a.hasSamples || x < a.min {
		a.min = x
	}
	if !a.hasSamples || x > a.max {
		a.max = x
	}
	a.hasSamples = true
}

// AddN incorporates x as if added n times.
func (a *Accumulator) AddN(x float64, n int) {
	for i := 0; i < n; i++ {
		a.Add(x)
	}
}

// N returns the sample count.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 if empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 if fewer than 2 samples).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample (0 if empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 if empty).
func (a *Accumulator) Max() float64 { return a.max }

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval on the mean. With fewer than 2 samples it returns 0.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.StdDev() / math.Sqrt(float64(a.n))
}

// Merge folds other's samples into a.
func (a *Accumulator) Merge(other *Accumulator) {
	if other.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *other
		return
	}
	total := a.n + other.n
	delta := other.mean - a.mean
	mean := a.mean + delta*float64(other.n)/float64(total)
	m2 := a.m2 + other.m2 + delta*delta*float64(a.n)*float64(other.n)/float64(total)
	min, max := a.min, a.max
	if other.min < min {
		min = other.min
	}
	if other.max > max {
		max = other.max
	}
	*a = Accumulator{n: total, mean: mean, m2: m2, min: min, max: max, hasSamples: true}
}

// Quantile returns the q-quantile (0<=q<=1) of the samples using linear
// interpolation. Unlike Accumulator it needs the full sample set.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Series is a named sequence of (x, y) points — one plotted line of a paper
// figure.
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value for the given x, or (0, false) when absent.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Table is the machine-readable form of one paper figure or table: a shared
// x column plus one y column per series.
type Table struct {
	// Title identifies the figure, e.g. "Figure 8: average energy consumption".
	Title string `json:"title"`
	// XLabel names the x column, e.g. "q".
	XLabel string `json:"x_label"`
	// YLabel names the measured quantity (units included).
	YLabel string `json:"y_label"`
	// Series holds one column per plotted line.
	Series []*Series `json:"series"`
}

// AddSeries creates, registers, and returns a new named series.
func (t *Table) AddSeries(name string) *Series {
	s := &Series{Name: name}
	t.Series = append(t.Series, s)
	return s
}

// SeriesByName returns the series with the given name, or nil.
func (t *Table) SeriesByName(name string) *Series {
	for _, s := range t.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// xValues returns the sorted union of all series' x coordinates.
func (t *Table) xValues() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range t.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// Render formats the table with aligned columns for terminal output.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	if t.YLabel != "" {
		fmt.Fprintf(&b, "# y: %s\n", t.YLabel)
	}
	xs := t.xValues()
	headers := make([]string, 0, len(t.Series)+1)
	headers = append(headers, t.XLabel)
	for _, s := range t.Series {
		headers = append(headers, s.Name)
	}
	rows := make([][]string, 0, len(xs)+1)
	rows = append(rows, headers)
	for _, x := range xs {
		row := make([]string, 0, len(headers))
		row = append(row, trimFloat(x))
		for _, s := range t.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, trimFloat(y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(headers))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for _, x := range t.xValues() {
		b.WriteString(trimFloat(x))
		for _, s := range t.Series {
			b.WriteByte(',')
			if y, ok := s.YAt(x); ok {
				b.WriteString(trimFloat(y))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// trimFloat renders a float compactly with up to 4 significant decimals.
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%.0f", v)
	}
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}
