package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pbbf/internal/rng"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.CI95() != 0 {
		t.Fatal("empty accumulator not all-zero")
	}
}

func TestAccumulatorKnownValues(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("n = %d", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", a.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almostEqual(a.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorSingleSample(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatal("single-sample stats wrong")
	}
	if a.Min() != 3.5 || a.Max() != 3.5 {
		t.Fatal("single-sample min/max wrong")
	}
}

func TestAccumulatorAddN(t *testing.T) {
	var a, b Accumulator
	a.AddN(2, 3)
	for i := 0; i < 3; i++ {
		b.Add(2)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Fatal("AddN diverges from repeated Add")
	}
}

func TestCI95ShrinksWithSamples(t *testing.T) {
	r := rng.New(1)
	var small, large Accumulator
	for i := 0; i < 10; i++ {
		small.Add(r.NormFloat64())
	}
	for i := 0; i < 1000; i++ {
		large.Add(r.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: small=%v large=%v", small.CI95(), large.CI95())
	}
}

func TestMerge(t *testing.T) {
	r := rng.New(2)
	var all, left, right Accumulator
	for i := 0; i < 500; i++ {
		x := r.Float64() * 10
		all.Add(x)
		if i%2 == 0 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != all.N() {
		t.Fatalf("merged n = %d, want %d", left.N(), all.N())
	}
	if !almostEqual(left.Mean(), all.Mean(), 1e-9) {
		t.Fatalf("merged mean %v vs %v", left.Mean(), all.Mean())
	}
	if !almostEqual(left.Variance(), all.Variance(), 1e-9) {
		t.Fatalf("merged variance %v vs %v", left.Variance(), all.Variance())
	}
	if left.Min() != all.Min() || left.Max() != all.Max() {
		t.Fatal("merged min/max wrong")
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var a, empty Accumulator
	a.Add(1)
	a.Merge(&empty)
	if a.N() != 1 {
		t.Fatal("merge with empty changed count")
	}
	var b Accumulator
	b.Merge(&a)
	if b.N() != 1 || b.Mean() != 1 {
		t.Fatal("merge into empty lost data")
	}
}

// Property: merging any split equals adding everything to one accumulator.
func TestPropertyMergeEquivalence(t *testing.T) {
	check := func(seed uint64, cut uint8) bool {
		r := rng.New(seed)
		n := 100
		k := int(cut) % n
		var whole, a, b Accumulator
		for i := 0; i < n; i++ {
			x := r.NormFloat64() * 5
			whole.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.N() == whole.N() &&
			almostEqual(a.Mean(), whole.Mean(), 1e-9) &&
			almostEqual(a.Variance(), whole.Variance(), 1e-7)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(samples, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
	if got := Quantile([]float64{1, 2}, 0.5); !almostEqual(got, 1.5, 1e-12) {
		t.Fatalf("interpolated median = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	samples := []float64{3, 1, 2}
	Quantile(samples, 0.5)
	if samples[0] != 3 || samples[1] != 1 || samples[2] != 2 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(0.1, 5)
	s.Append(0.2, 7)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if y, ok := s.YAt(0.2); !ok || y != 7 {
		t.Fatalf("YAt(0.2) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(0.3); ok {
		t.Fatal("YAt on missing x returned ok")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "Figure X", XLabel: "q", YLabel: "J"}
	a := tbl.AddSeries("PSM")
	b := tbl.AddSeries("NoPSM")
	a.Append(0, 1)
	a.Append(0.5, 2)
	b.Append(0.5, 3)
	out := tbl.Render()
	for _, want := range []string{"Figure X", "q", "PSM", "NoPSM", "0.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Missing cell renders as "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing-cell marker absent:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Title: "T", XLabel: "x"}
	s := tbl.AddSeries("a,b")
	s.Append(1, 2)
	csv := tbl.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != `x,"a,b"` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,2" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestTableSeriesByName(t *testing.T) {
	tbl := &Table{}
	s := tbl.AddSeries("hello")
	if tbl.SeriesByName("hello") != s {
		t.Fatal("lookup failed")
	}
	if tbl.SeriesByName("nope") != nil {
		t.Fatal("lookup of missing series non-nil")
	}
}

func TestTableXUnionSorted(t *testing.T) {
	tbl := &Table{XLabel: "x"}
	a := tbl.AddSeries("a")
	b := tbl.AddSeries("b")
	a.Append(3, 1)
	a.Append(1, 1)
	b.Append(2, 1)
	xs := tbl.xValues()
	if len(xs) != 3 || xs[0] != 1 || xs[1] != 2 || xs[2] != 3 {
		t.Fatalf("xValues = %v", xs)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1, "1"},
		{1.5, "1.5"},
		{0.1234567, "0.1235"},
		{-2, "-2"},
		{0.5000, "0.5"},
	}
	for _, c := range cases {
		if got := trimFloat(c.in); got != c.want {
			t.Fatalf("trimFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func BenchmarkAccumulatorAdd(b *testing.B) {
	var a Accumulator
	for i := 0; i < b.N; i++ {
		a.Add(float64(i))
	}
}
