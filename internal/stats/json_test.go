package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestTableJSONRoundTrip checks that a Table survives the JSON encoding
// the CLI's -format json path uses, byte-exact on every series.
func TestTableJSONRoundTrip(t *testing.T) {
	tbl := &Table{Title: "Figure X", XLabel: "q", YLabel: "joules"}
	a := tbl.AddSeries("PBBF-0.5")
	a.Append(0, 1.25)
	a.Append(0.5, 2.5)
	tbl.AddSeries("PSM").Append(0, 0.3)

	blob, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tbl, &back) {
		t.Fatalf("round trip changed table:\n%+v\nvs\n%+v", tbl, &back)
	}
	// The schema is part of the dashboard contract: lower-case keys.
	for _, key := range []string{`"title"`, `"x_label"`, `"series"`, `"name"`} {
		if !strings.Contains(string(blob), key) {
			t.Fatalf("JSON missing %s: %s", key, blob)
		}
	}
}
