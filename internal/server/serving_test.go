package server

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbbf/internal/cache"
	"pbbf/internal/scenario"
	"pbbf/internal/store"
)

// countingRegistry is testRegistry's "fast" scenario with a computation
// counter, so tests can prove how many points were actually simulated.
func countingRegistry(t *testing.T, computes *atomic.Int64) *scenario.Registry {
	t.Helper()
	reg := scenario.NewRegistry()
	reg.MustRegister(scenario.Scenario{
		ID: "fast", Title: "fast scenario", Artifact: "extension",
		Summary: "server test scenario",
		Params:  []scenario.ParamDoc{{Name: "x", Desc: "x coordinate"}},
		XLabel:  "x", YLabel: "y",
		Points: func(s scenario.Scale) ([]scenario.Point, error) {
			var pts []scenario.Point
			for _, series := range []string{"a", "b"} {
				for x := 0.0; x < 3; x++ {
					pts = append(pts, scenario.Point{
						Series: series, X: x, Params: map[string]float64{"x": x},
					})
				}
			}
			return pts, nil
		},
		RunPoint: func(s scenario.Scale, pt scenario.Point) (scenario.Result, error) {
			computes.Add(1)
			return scenario.Result{Y: pt.X * 10, Delivery: 1}, nil
		},
	})
	return reg
}

// rawRun posts a run request and returns the raw NDJSON lines verbatim —
// the byte-identity currency of the restart-recovery test.
func rawRun(t *testing.T, url, body string) []string {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestRestartRecovery is the tentpole acceptance check: a server killed
// and restarted on the same store directory serves byte-identical results
// without recomputing a single point, proven by the scenario's own compute
// counter, the flight counters, and the disk tier's hit counters.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	body := `{"experiment":"fast","scale":"quick","workers":2}`

	var computes1 atomic.Int64
	srv1, err := New(Options{
		Registry: countingRegistry(t, &computes1),
		Disk:     StoreOptions{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)

	cold := rawRun(t, ts1.URL, body)
	if computes1.Load() != 6 {
		t.Fatalf("cold run computed %d points, want 6", computes1.Load())
	}
	// The warm run on the same process is the reference stream: every
	// point served from the store, flagged cached.
	warm := rawRun(t, ts1.URL, body)
	if computes1.Load() != 6 {
		t.Fatalf("warm run recomputed: %d", computes1.Load())
	}
	if len(cold) != len(warm) {
		t.Fatalf("stream shapes differ: %d vs %d lines", len(cold), len(warm))
	}
	for _, line := range warm[1 : len(warm)-1] {
		if !strings.Contains(line, `"cached":true`) {
			t.Fatalf("warm line not cached: %s", line)
		}
	}

	// Kill the first server. Its memory tier dies with it; only the store
	// directory survives.
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	var computes2 atomic.Int64
	srv2, err := New(Options{
		Registry: countingRegistry(t, &computes2),
		Disk:     StoreOptions{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Close()

	restarted := rawRun(t, ts2.URL, body)
	if computes2.Load() != 0 {
		t.Fatalf("restarted server simulated %d points, want 0", computes2.Load())
	}
	// Byte identity, excluding the final done line (it carries wall time
	// and live counters by design).
	if len(restarted) != len(warm) {
		t.Fatalf("restarted stream has %d lines, want %d", len(restarted), len(warm))
	}
	for i := range warm[:len(warm)-1] {
		if restarted[i] != warm[i] {
			t.Fatalf("line %d differs after restart:\n  warm:      %s\n  restarted: %s", i, warm[i], restarted[i])
		}
	}

	// The counters must prove where the bytes came from: zero flight
	// computes, six disk hits promoted into memory.
	var st statsResponse
	getJSON(t, ts2.URL+"/v1/stats", &st)
	if st.FlightV1.Computes != 0 {
		t.Fatalf("flight computed after restart: %+v", st.FlightV1)
	}
	if st.StoreV1.Kind != "tiered" || len(st.StoreV1.Tiers) != 2 {
		t.Fatalf("store shape: %+v", st.StoreV1)
	}
	disk := st.StoreV1.Tiers[1]
	if disk.Kind != "disk" || disk.Hits != 6 || disk.Entries != 6 {
		t.Fatalf("disk tier after restart: %+v", disk)
	}
	if st.Cache.Entries != 6 {
		t.Fatalf("disk hits not promoted to memory: %+v", st.Cache)
	}

	// And the promoted working set serves the next run from memory.
	diskHits := disk.Hits
	rawRun(t, ts2.URL, body)
	getJSON(t, ts2.URL+"/v1/stats", &st)
	if st.StoreV1.Tiers[1].Hits != diskHits {
		t.Fatalf("second restarted run fell through to disk: %+v", st.StoreV1.Tiers[1])
	}
}

// TestRateLimit429 drives one client through its token bucket: Burst
// requests pass, the next answers 429 with a positive Retry-After, and
// the denial shows up in /v1/stats.
func TestRateLimit429(t *testing.T) {
	srv, err := New(Options{
		Registry: testRegistry(t),
		Limits:   LimitOptions{RatePerSec: 0.5, Burst: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"experiment":"statictbl","scale":"quick"}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d inside burst: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After %q", resp.Header.Get("Retry-After"))
	}
	// Reads are not rate limited — only the run path spends tokens.
	var st statsResponse
	if r := getJSON(t, ts.URL+"/v1/stats", &st); r.StatusCode != http.StatusOK {
		t.Fatalf("stats throttled: %d", r.StatusCode)
	}
	if !st.LimitsV1.RateLimitEnabled || st.LimitsV1.RateLimited != 1 || st.LimitsV1.Clients != 1 {
		t.Fatalf("limit stats: %+v", st.LimitsV1)
	}
}

// TestBackpressureShed fills the admission gate — one running, one
// queued — and checks the next arrival is shed immediately with 429 +
// Retry-After rather than queued without bound.
func TestBackpressureShed(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	reg := scenario.NewRegistry()
	reg.MustRegister(scenario.Scenario{
		ID: "slow", Title: "slow", Artifact: "extension", Summary: "blocks",
		Params: []scenario.ParamDoc{{Name: "x", Desc: "x"}},
		XLabel: "x", YLabel: "y",
		Points: func(scenario.Scale) ([]scenario.Point, error) {
			return []scenario.Point{{Series: "a", X: 1, Params: map[string]float64{"x": 1}}}, nil
		},
		RunPoint: func(scenario.Scale, scenario.Point) (scenario.Result, error) {
			started <- struct{}{}
			<-release
			return scenario.Result{Y: 1}, nil
		},
	})
	srv, err := New(Options{
		Registry: reg,
		Limits:   LimitOptions{MaxConcurrentRuns: 1, RunQueueDepth: 1, RetryAfter: 3 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer close(release)

	// Distinct seeds so the queued run cannot be served from the cache.
	post := func(seed int) (*http.Response, error) {
		body := `{"experiment":"slow","scale":"quick","seed":` + strconv.Itoa(seed) + `}`
		return http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupies the single run slot
		defer wg.Done()
		if resp, err := post(1); err == nil {
			io.ReadAll(resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}()
	<-started

	wg.Add(1)
	go func() { // fills the queue
		defer wg.Done()
		if resp, err := post(2); err == nil {
			io.ReadAll(resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}()
	// Wait until the second run is visibly queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st statsResponse
		getJSON(t, ts.URL+"/v1/stats", &st)
		if st.LimitsV1.Waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second run never queued: %+v", st.LimitsV1)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := post(3) // beyond the queue: shed
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "3" {
		t.Fatalf("Retry-After %q, want 3", resp.Header.Get("Retry-After"))
	}

	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.LimitsV1.Shed != 1 || st.LimitsV1.Running != 1 || st.LimitsV1.MaxConcurrentRuns != 1 || st.LimitsV1.QueueDepth != 1 {
		t.Fatalf("limit stats: %+v", st.LimitsV1)
	}
}

// TestMetricsEndpoint exercises /metrics after real traffic: the
// Prometheus text format, per-route counters and histograms, and the
// store/flight/limit families.
func TestMetricsEndpoint(t *testing.T) {
	srv, err := New(Options{Registry: testRegistry(t), Disk: StoreOptions{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	postRun(t, ts, `{"experiment":"fast","scale":"quick"}`)
	postRun(t, ts, `{"experiment":"fast","scale":"quick"}`)
	resp, err := http.Get(ts.URL + "/v1/scenarios/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`pbbf_http_requests_total{route="POST /v1/run",method="POST",code="200"} 2`,
		`pbbf_http_requests_total{route="GET /v1/scenarios/{id}",method="GET",code="404"} 1`,
		`pbbf_http_request_duration_seconds_bucket{route="POST /v1/run",le="+Inf"} 2`,
		`pbbf_http_request_duration_seconds_count{route="POST /v1/run"} 2`,
		"# TYPE pbbf_http_request_duration_seconds histogram",
		`pbbf_store_hits_total{tier="memory"} 6`,
		`pbbf_store_puts_total{tier="disk"} 6`,
		`pbbf_store_quarantined_total{tier="disk"} 0`,
		"pbbf_flight_computes_total 6",
		"pbbf_points_inflight 0",
		"pbbf_runs_total 2",
		"pbbf_points_served_total 12", // 2 runs x 6 points
		"pbbf_rate_limited_total 0",
		"pbbf_runs_shed_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestOptionsValidation pins the normalized() contract: deprecated
// aliases fold in, conflicting spellings are rejected, bad bounds are
// rejected.
func TestOptionsValidation(t *testing.T) {
	reg := scenario.NewRegistry()
	c, err := cache.New[scenario.Result](2, 16)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := store.NewMemory(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		opts Options
	}{
		{"nil registry", Options{}},
		{"cache conflicts with results", Options{Registry: reg, Cache: c, Results: mem}},
		{"cache conflicts with mem sizing", Options{Registry: reg, Cache: c, Mem: CacheOptions{Shards: 4}}},
		{"results conflicts with mem", Options{Registry: reg, Results: mem, Mem: CacheOptions{Shards: 4}}},
		{"results conflicts with disk", Options{Registry: reg, Results: mem, Disk: StoreOptions{Dir: "x"}}},
		{"negative rate", Options{Registry: reg, Limits: LimitOptions{RatePerSec: -1}}},
		{"negative burst", Options{Registry: reg, Limits: LimitOptions{Burst: -1}}},
		{"negative queue", Options{Registry: reg, Limits: LimitOptions{RunQueueDepth: -1}}},
		{"negative retry-after", Options{Registry: reg, Limits: LimitOptions{RetryAfter: -time.Second}}},
		{"negative shards", Options{Registry: reg, Mem: CacheOptions{Shards: -1}}},
	}
	for _, tc := range bad {
		if _, err := New(tc.opts); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// The deprecated Cache injection still works and surfaces in stats.
	srv, err := New(Config{Registry: testRegistry(t), Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	postRun(t, ts, `{"experiment":"fast","scale":"quick"}`)
	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.SchemaVersion != StatsSchemaVersion || st.Cache.Shards != 2 || st.Cache.Misses != 6 {
		t.Fatalf("injected cache not serving: %+v", st)
	}
	if c.Len() != 6 {
		t.Fatalf("injected cache bypassed: len %d", c.Len())
	}

	// An injected Results store replaces the whole composition.
	srv2, err := New(Options{Registry: testRegistry(t), Results: mem})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	postRun(t, ts2, `{"experiment":"fast","scale":"quick"}`)
	if mem.Len() != 6 {
		t.Fatalf("injected store bypassed: len %d", mem.Len())
	}
	getJSON(t, ts2.URL+"/v1/stats", &st)
	if st.StoreV1.Kind != "memory" || st.Cache.Shards != 0 {
		t.Fatalf("injected store stats: %+v", st)
	}
}

// TestRunGateContextCancel: a caller that gives up while queued releases
// its queue slot instead of leaking it.
func TestRunGateContextCancel(t *testing.T) {
	g := newRunGate(1, 4)
	release, ok := g.acquire(t.Context())
	if !ok {
		t.Fatal("first acquire failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := g.acquire(ctx); ok {
		t.Fatal("acquire succeeded with canceled context and full slots")
	}
	if g.waiting.Load() != 0 {
		t.Fatalf("queue slot leaked: waiting %d", g.waiting.Load())
	}
	release()
	release2, ok := g.acquire(t.Context())
	if !ok {
		t.Fatal("slot not released")
	}
	release2()
}
