package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"pbbf/internal/dist"
	"pbbf/internal/store"
)

// latencyBuckets are the request-duration histogram bounds in seconds,
// spanning cache hits (sub-millisecond) through paper-scale sweep streams
// (tens of seconds). An implicit +Inf bucket follows the last bound.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10}

// metricSet accumulates per-route request counters and latency
// histograms. Everything else /metrics exposes — store, flight, limiter
// — is read live from the owning component at scrape time, so those
// counters exist exactly once instead of being mirrored here.
type metricSet struct {
	mu        sync.Mutex
	requests  map[requestKey]uint64
	durations map[string]*histogram // by route
}

// requestKey labels one requests-total series. Routes are mux patterns
// ("POST /v1/run"), never raw paths, so the label set stays bounded.
type requestKey struct {
	route  string
	method string
	code   int
}

// histogram is a fixed-bucket latency histogram in Prometheus's
// cumulative-exposition shape.
type histogram struct {
	counts []uint64 // per bucket; last is +Inf
	sum    float64
	total  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(seconds float64) {
	i := 0
	for i < len(latencyBuckets) && seconds > latencyBuckets[i] {
		i++
	}
	h.counts[i]++
	h.sum += seconds
	h.total++
}

func newMetricSet() *metricSet {
	return &metricSet{
		requests:  make(map[requestKey]uint64),
		durations: make(map[string]*histogram),
	}
}

func (m *metricSet) observe(route, method string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{route, method, code}]++
	h := m.durations[route]
	if h == nil {
		h = newHistogram()
		m.durations[route] = h
	}
	h.observe(d.Seconds())
}

// escapeLabel escapes a Prometheus label value (backslash, quote,
// newline are the only special characters in the text exposition).
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// handleMetrics serves the Prometheus text exposition (version 0.0.4).
// Hand-rolled: the repo takes no dependencies, and the format is lines.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	s.metrics.writeRequests(&b)
	s.writeServingMetrics(&b)
	if s.coord != nil {
		writeCoordinatorMetrics(&b, s.coord.Snapshot())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String())) //nolint:errcheck // response already committed
}

// writeRequests emits the per-route counter and histogram families in
// sorted series order, so scrapes are diffable.
func (m *metricSet) writeRequests(b *strings.Builder) {
	m.mu.Lock()
	defer m.mu.Unlock()

	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		if keys[i].method != keys[j].method {
			return keys[i].method < keys[j].method
		}
		return keys[i].code < keys[j].code
	})
	b.WriteString("# HELP pbbf_http_requests_total Requests served, by mux route, method, and status code.\n")
	b.WriteString("# TYPE pbbf_http_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(b, "pbbf_http_requests_total{route=%q,method=%q,code=\"%d\"} %d\n",
			escapeLabel(k.route), escapeLabel(k.method), k.code, m.requests[k])
	}

	routes := make([]string, 0, len(m.durations))
	for route := range m.durations {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	b.WriteString("# HELP pbbf_http_request_duration_seconds Request latency, by mux route.\n")
	b.WriteString("# TYPE pbbf_http_request_duration_seconds histogram\n")
	for _, route := range routes {
		h := m.durations[route]
		label := escapeLabel(route)
		cum := uint64(0)
		for i, bound := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(b, "pbbf_http_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", label, bound, cum)
		}
		fmt.Fprintf(b, "pbbf_http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", label, h.total)
		fmt.Fprintf(b, "pbbf_http_request_duration_seconds_sum{route=%q} %g\n", label, h.sum)
		fmt.Fprintf(b, "pbbf_http_request_duration_seconds_count{route=%q} %d\n", label, h.total)
	}
}

// writeServingMetrics emits the serving-path families read live from the
// store, flight, and limit layers.
func (s *Server) writeServingMetrics(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP pbbf_uptime_seconds Seconds since the server started.\n# TYPE pbbf_uptime_seconds gauge\npbbf_uptime_seconds %g\n", time.Since(s.start).Seconds())
	fmt.Fprintf(b, "# HELP pbbf_runs_total POST /v1/run requests admitted.\n# TYPE pbbf_runs_total counter\npbbf_runs_total %d\n", s.runs.Load())
	fmt.Fprintf(b, "# HELP pbbf_points_served_total Result points streamed to clients.\n# TYPE pbbf_points_served_total counter\npbbf_points_served_total %d\n", s.pointsServed.Load())

	cs := s.cacheStats()
	fmt.Fprintf(b, "# HELP pbbf_cache_hits_total Memory-tier cache hits.\n# TYPE pbbf_cache_hits_total counter\npbbf_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(b, "# HELP pbbf_cache_misses_total Memory-tier cache misses.\n# TYPE pbbf_cache_misses_total counter\npbbf_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(b, "# HELP pbbf_cache_evictions_total Memory-tier LRU evictions.\n# TYPE pbbf_cache_evictions_total counter\npbbf_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(b, "# HELP pbbf_cache_entries Memory-tier resident entries.\n# TYPE pbbf_cache_entries gauge\npbbf_cache_entries %d\n", cs.Entries)

	fmt.Fprintf(b, "# HELP pbbf_flight_computes_total Point computations actually run (store misses that led a flight).\n# TYPE pbbf_flight_computes_total counter\npbbf_flight_computes_total %d\n", s.flight.Computes())
	fmt.Fprintf(b, "# HELP pbbf_flight_joins_total Requests that joined another caller's in-flight computation.\n# TYPE pbbf_flight_joins_total counter\npbbf_flight_joins_total %d\n", s.flight.Joins())
	fmt.Fprintf(b, "# HELP pbbf_points_inflight Point computations running right now.\n# TYPE pbbf_points_inflight gauge\npbbf_points_inflight %d\n", s.flight.Active())

	writeStoreMetrics(b, s.results.Stats())

	ls := s.limitStats()
	fmt.Fprintf(b, "# HELP pbbf_rate_limited_total Requests denied by a client token bucket.\n# TYPE pbbf_rate_limited_total counter\npbbf_rate_limited_total %d\n", ls.RateLimited)
	fmt.Fprintf(b, "# HELP pbbf_rate_limit_clients Client buckets currently tracked.\n# TYPE pbbf_rate_limit_clients gauge\npbbf_rate_limit_clients %d\n", ls.Clients)
	fmt.Fprintf(b, "# HELP pbbf_runs_shed_total Runs shed because the admission queue was full.\n# TYPE pbbf_runs_shed_total counter\npbbf_runs_shed_total %d\n", ls.Shed)
	fmt.Fprintf(b, "# HELP pbbf_runs_running Runs holding an admission slot.\n# TYPE pbbf_runs_running gauge\npbbf_runs_running %d\n", ls.Running)
	fmt.Fprintf(b, "# HELP pbbf_runs_waiting Runs queued for an admission slot.\n# TYPE pbbf_runs_waiting gauge\npbbf_runs_waiting %d\n", ls.Waiting)
}

// writeCoordinatorMetrics emits the distributed-sweep families from one
// coordinator snapshot: queue position, requeue/stale counters, the
// worker population by state, and per-worker point counters (labeled by
// worker ID — bounded by the fleet size, which the operator controls).
func writeCoordinatorMetrics(b *strings.Builder, snap dist.WorkersResponse) {
	q := snap.Queue
	fmt.Fprintf(b, "# HELP pbbf_coord_points_pending Points awaiting a lease.\n# TYPE pbbf_coord_points_pending gauge\npbbf_coord_points_pending %d\n", q.Pending)
	fmt.Fprintf(b, "# HELP pbbf_coord_points_leased Points currently leased to workers.\n# TYPE pbbf_coord_points_leased gauge\npbbf_coord_points_leased %d\n", q.Leased)
	fmt.Fprintf(b, "# HELP pbbf_coord_points_completed_total Points resolved successfully.\n# TYPE pbbf_coord_points_completed_total counter\npbbf_coord_points_completed_total %d\n", q.Done)
	fmt.Fprintf(b, "# HELP pbbf_coord_points_failed_total Points resolved as permanent failures.\n# TYPE pbbf_coord_points_failed_total counter\npbbf_coord_points_failed_total %d\n", q.Failed)
	fmt.Fprintf(b, "# HELP pbbf_coord_points_total Points enqueued over the sweep's lifetime.\n# TYPE pbbf_coord_points_total counter\npbbf_coord_points_total %d\n", q.Total)
	fmt.Fprintf(b, "# HELP pbbf_coord_requeues_total Leases returned to the queue (expiry, worker death, quarantine, retryable failure).\n# TYPE pbbf_coord_requeues_total counter\npbbf_coord_requeues_total %d\n", q.Requeues)
	fmt.Fprintf(b, "# HELP pbbf_coord_stale_results_total Duplicate or late results ignored.\n# TYPE pbbf_coord_stale_results_total counter\npbbf_coord_stale_results_total %d\n", q.StaleResults)
	closed := 0
	if q.Closed {
		closed = 1
	}
	fmt.Fprintf(b, "# HELP pbbf_coord_closed Whether the sweep has completed and workers are being dismissed.\n# TYPE pbbf_coord_closed gauge\npbbf_coord_closed %d\n", closed)

	var live, dead, quarantined int
	for _, w := range snap.Workers {
		switch {
		case w.Quarantined:
			quarantined++
		case w.Alive:
			live++
		default:
			dead++
		}
	}
	b.WriteString("# HELP pbbf_coord_workers Registered workers, by state.\n# TYPE pbbf_coord_workers gauge\n")
	fmt.Fprintf(b, "pbbf_coord_workers{state=\"live\"} %d\n", live)
	fmt.Fprintf(b, "pbbf_coord_workers{state=\"dead\"} %d\n", dead)
	fmt.Fprintf(b, "pbbf_coord_workers{state=\"quarantined\"} %d\n", quarantined)

	workers := make([]dist.WorkerInfo, len(snap.Workers))
	copy(workers, snap.Workers)
	sort.Slice(workers, func(i, j int) bool { return workers[i].ID < workers[j].ID })
	b.WriteString("# HELP pbbf_coord_worker_completed_total Points completed, by worker.\n# TYPE pbbf_coord_worker_completed_total counter\n")
	for _, w := range workers {
		fmt.Fprintf(b, "pbbf_coord_worker_completed_total{worker=%q} %d\n", escapeLabel(w.ID), w.Completed)
	}
	b.WriteString("# HELP pbbf_coord_worker_failed_total Points failed, by worker.\n# TYPE pbbf_coord_worker_failed_total counter\n")
	for _, w := range workers {
		fmt.Fprintf(b, "pbbf_coord_worker_failed_total{worker=%q} %d\n", escapeLabel(w.ID), w.Failed)
	}
}

// writeStoreMetrics flattens the store snapshot into per-tier series. A
// tiered store contributes one series per tier labeled by its kind; a
// single-tier store is its own only tier.
func writeStoreMetrics(b *strings.Builder, st store.Stats) {
	tiers := st.Tiers
	if len(tiers) == 0 {
		tiers = []store.Stats{st}
	}
	families := []struct {
		name, help, typ string
		value           func(store.Stats) uint64
	}{
		{"pbbf_store_hits_total", "Store lookups served, by tier.", "counter", func(t store.Stats) uint64 { return t.Hits }},
		{"pbbf_store_misses_total", "Store lookups missed, by tier.", "counter", func(t store.Stats) uint64 { return t.Misses }},
		{"pbbf_store_puts_total", "Results written, by tier.", "counter", func(t store.Stats) uint64 { return t.Puts }},
		{"pbbf_store_entries", "Resident records, by tier.", "gauge", func(t store.Stats) uint64 { return uint64(t.Entries) }},
		{"pbbf_store_bytes_written_total", "Record bytes written, by tier.", "counter", func(t store.Stats) uint64 { return t.BytesWritten }},
		{"pbbf_store_quarantined_total", "Corrupt records quarantined, by tier.", "counter", func(t store.Stats) uint64 { return t.Quarantined }},
		{"pbbf_store_errors_total", "Store backend errors, by tier.", "counter", func(t store.Stats) uint64 { return t.Errors }},
	}
	for _, f := range families {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, tier := range tiers {
			fmt.Fprintf(b, "%s{tier=%q} %d\n", f.name, escapeLabel(tier.Kind), f.value(tier))
		}
	}
}
