package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pbbf/internal/dist"
	"pbbf/internal/scenario"
)

// TestPprofDisabledByDefault: the debug surface must not exist unless the
// operator asked for it — the handlers are unauthenticated.
func TestPprofDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/pprof/ status %d without EnablePprof, want 404", resp.StatusCode)
	}
}

// TestPprofEnabled: with EnablePprof the index and the named profiles
// answer on the server's own mux.
func TestPprofEnabled(t *testing.T) {
	srv, err := New(Options{Registry: testRegistry(t), EnablePprof: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s status %d: %s", path, resp.StatusCode, body)
		}
	}
}

// TestCoordinatorMetrics drives one point through the coordinator and
// checks that /metrics exposes the pbbf_coord_* families: queue gauges
// and counters, the worker population by state, and per-worker counters.
func TestCoordinatorMetrics(t *testing.T) {
	reg := testRegistry(t)
	coord := dist.NewCoordinator(dist.Config{LeaseTTL: 5 * time.Second})
	srv, err := New(Options{Registry: reg, Coordinator: coord})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	w := coord.Register("metrics-worker")
	sc, err := reg.ByID("fast")
	if err != nil {
		t.Fatal(err)
	}
	pt := scenario.Point{Series: "a", X: 2, Params: map[string]float64{"x": 2}}
	spec := scenario.NewPointSpec(sc, scenario.Quick(), pt)
	doErr := make(chan error, 1)
	go func() {
		_, err := coord.Do(context.Background(), spec)
		doErr <- err
	}()
	var grant dist.LeaseResponse
	for i := 0; i < 200 && len(grant.Points) == 0; i++ {
		time.Sleep(5 * time.Millisecond)
		if grant, err = coord.Lease(dist.LeaseRequest{WorkerID: w.WorkerID}); err != nil {
			t.Fatal(err)
		}
	}
	if len(grant.Points) != 1 {
		t.Fatalf("lease grant: %+v", grant)
	}

	// Mid-flight: the point is leased, the worker is live.
	scrape := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	mid := scrape()
	for _, want := range []string{
		"pbbf_coord_points_leased 1",
		"pbbf_coord_points_pending 0",
		`pbbf_coord_workers{state="live"} 1`,
		`pbbf_coord_workers{state="dead"} 0`,
		`pbbf_coord_workers{state="quarantined"} 0`,
		"pbbf_coord_closed 0",
	} {
		if !strings.Contains(mid, want) {
			t.Errorf("mid-flight /metrics missing %q", want)
		}
	}

	if _, err := coord.Result(dist.ResultRequest{
		WorkerID: w.WorkerID, LeaseID: grant.LeaseID,
		Results: []dist.PointResult{{Key: spec.Key, Result: scenario.Result{Y: 20}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-doErr; err != nil {
		t.Fatal(err)
	}

	done := scrape()
	wid := fmt.Sprintf("%q", w.WorkerID)
	for _, want := range []string{
		"pbbf_coord_points_completed_total 1",
		"pbbf_coord_points_failed_total 0",
		"pbbf_coord_points_leased 0",
		"pbbf_coord_requeues_total 0",
		"pbbf_coord_stale_results_total 0",
		"pbbf_coord_worker_completed_total{worker=" + wid + "} 1",
		"pbbf_coord_worker_failed_total{worker=" + wid + "} 0",
	} {
		if !strings.Contains(done, want) {
			t.Errorf("post-run /metrics missing %q", want)
		}
	}

	// The exposition stays parseable: every non-comment line ends in a
	// numeric sample value (label values may contain spaces).
	for _, line := range strings.Split(strings.TrimSpace(done), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed metrics line %q", line)
		}
		if !json.Valid([]byte(line[i+1:])) {
			t.Fatalf("non-numeric metric value in %q", line)
		}
	}
}

// TestMetricsWithoutCoordinator: a plain serve process exposes no
// pbbf_coord_* families — the section appears only when the coordinator
// exists.
func TestMetricsWithoutCoordinator(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "pbbf_coord_") {
		t.Fatal("coordinator families leaked into a coordinator-less /metrics")
	}
}
