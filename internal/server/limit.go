package server

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// maxTrackedClients bounds the rate limiter's bucket map. When a sweep
// cannot shrink it below the bound (that many clients genuinely active in
// one refill window), new clients still get fresh buckets — the map grows
// past the bound rather than throttling innocents — and the next sweep
// retries.
const maxTrackedClients = 16384

// rateLimiter is a per-client token bucket: each client IP accrues
// RatePerSec tokens up to Burst, and one POST /v1/run spends one token. A
// denied request learns how long until the bucket refills, which becomes
// the 429's Retry-After.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket depth

	mu      sync.Mutex
	buckets map[string]*bucket

	limited atomic.Uint64
}

// bucket is one client's token balance at its last touch.
type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(ratePerSec float64, burst int) *rateLimiter {
	return &rateLimiter{
		rate:    ratePerSec,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token from client's bucket. When the bucket is empty it
// reports the wait until one token exists — the client's Retry-After.
func (l *rateLimiter) allow(client string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= maxTrackedClients {
			l.sweepLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	l.limited.Add(1)
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// sweepLocked drops buckets idle long enough to have refilled completely —
// indistinguishable from a fresh bucket, so nothing is lost by forgetting
// them.
func (l *rateLimiter) sweepLocked(now time.Time) {
	full := time.Duration(l.burst / l.rate * float64(time.Second))
	for client, b := range l.buckets {
		if now.Sub(b.last) >= full {
			delete(l.buckets, client)
		}
	}
}

func (l *rateLimiter) clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// runGate is the bounded admission queue of the run path: at most `cap`
// runs execute at once, at most `depth` wait for a slot, and arrivals
// beyond that are shed immediately — overload turns into fast 429s, not an
// unbounded goroutine pile-up.
type runGate struct {
	slots chan struct{}
	depth int64

	waiting atomic.Int64
	running atomic.Int64
	shed    atomic.Uint64
}

func newRunGate(maxConcurrent, queueDepth int) *runGate {
	return &runGate{
		slots: make(chan struct{}, maxConcurrent),
		depth: int64(queueDepth),
	}
}

// acquire claims a run slot, waiting in the bounded queue if none is free.
// It returns the slot's release func, or ok=false when the queue is full
// (the request is shed) or ctx ends first (the client gave up).
func (g *runGate) acquire(ctx context.Context) (release func(), ok bool) {
	select {
	case g.slots <- struct{}{}: // fast path: free slot, no queueing
	default:
		if g.waiting.Add(1) > g.depth {
			g.waiting.Add(-1)
			g.shed.Add(1)
			return nil, false
		}
		select {
		case g.slots <- struct{}{}:
			g.waiting.Add(-1)
		case <-ctx.Done():
			g.waiting.Add(-1)
			return nil, false
		}
	}
	g.running.Add(1)
	return func() {
		g.running.Add(-1)
		<-g.slots
	}, true
}

// clientKey identifies the requesting client for rate limiting: the host
// part of the remote address, so one client's ports share one bucket.
func clientKey(remoteAddr string) string {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		return remoteAddr
	}
	return host
}

// admitRun runs the request through the limit chain — per-client token
// bucket, then the bounded admission queue — answering 429 + Retry-After
// itself on rejection. On admission the caller must invoke release when
// the run ends.
func (s *Server) admitRun(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.limiter != nil {
		allowed, retry := s.limiter.allow(clientKey(r.RemoteAddr), time.Now())
		if !allowed {
			s.writeThrottled(w, retry, fmt.Errorf("client %s exceeded the run rate limit", clientKey(r.RemoteAddr)))
			return nil, false
		}
	}
	if s.gate == nil {
		return func() {}, true
	}
	release, ok = s.gate.acquire(r.Context())
	if !ok {
		s.writeThrottled(w, s.retryAfter, fmt.Errorf("server run queue is full"))
		return nil, false
	}
	return release, true
}

// writeThrottled answers 429 Too Many Requests. Every 429 carries a
// Retry-After in whole seconds (rounded up, at least 1) so well-behaved
// clients can pace themselves instead of hammering.
func (s *Server) writeThrottled(w http.ResponseWriter, retryAfter time.Duration, err error) {
	if retryAfter <= 0 {
		retryAfter = s.retryAfter
	}
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeError(w, http.StatusTooManyRequests, err)
}

// limitStats snapshots the limit chain for /v1/stats.
type limitStats struct {
	// RateLimitEnabled reports whether per-client buckets are configured.
	RateLimitEnabled bool `json:"rate_limit_enabled"`
	// RateLimited counts requests denied by a client's token bucket.
	RateLimited uint64 `json:"rate_limited"`
	// Clients is the number of client buckets currently tracked.
	Clients int `json:"clients"`
	// Shed counts requests dropped because the admission queue was full.
	Shed uint64 `json:"shed"`
	// Running and Waiting are the admission gate's current occupancy.
	Running int64 `json:"running"`
	Waiting int64 `json:"waiting"`
	// MaxConcurrentRuns and QueueDepth echo the configured bounds
	// (0 when the gate is disabled).
	MaxConcurrentRuns int `json:"max_concurrent_runs"`
	QueueDepth        int `json:"queue_depth"`
	// RetryAfterS is the advisory backpressure delay in seconds.
	RetryAfterS float64 `json:"retry_after_s"`
}

func (s *Server) limitStats() limitStats {
	ls := limitStats{RetryAfterS: s.retryAfter.Seconds()}
	if s.limiter != nil {
		ls.RateLimitEnabled = true
		ls.RateLimited = s.limiter.limited.Load()
		ls.Clients = s.limiter.clients()
	}
	if s.gate != nil {
		ls.Shed = s.gate.shed.Load()
		ls.Running = s.gate.running.Load()
		ls.Waiting = s.gate.waiting.Load()
		ls.MaxConcurrentRuns = cap(s.gate.slots)
		ls.QueueDepth = int(s.gate.depth)
	}
	return ls
}
