package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pbbf/internal/dist"
	"pbbf/internal/scenario"
	"pbbf/internal/stats"
)

// testRegistry returns a registry with one fast point-based scenario and
// one static table, so server tests never pay simulation cost.
func testRegistry(t *testing.T) *scenario.Registry {
	t.Helper()
	reg := scenario.NewRegistry()
	reg.MustRegister(scenario.Scenario{
		ID: "fast", Title: "fast scenario", Artifact: "extension",
		Summary: "server test scenario",
		Params:  []scenario.ParamDoc{{Name: "x", Desc: "x coordinate"}},
		XLabel:  "x", YLabel: "y",
		Points: func(s scenario.Scale) ([]scenario.Point, error) {
			var pts []scenario.Point
			for _, series := range []string{"a", "b"} {
				for x := 0.0; x < 3; x++ {
					pts = append(pts, scenario.Point{
						Series: series, X: x, Params: map[string]float64{"x": x},
					})
				}
			}
			return pts, nil
		},
		RunPoint: func(s scenario.Scale, pt scenario.Point) (scenario.Result, error) {
			return scenario.Result{Y: pt.X * 10, Delivery: 1}, nil
		},
	})
	reg.MustRegister(scenario.Scenario{
		ID: "statictbl", Title: "static table", Artifact: "Table 9",
		Summary: "server test table",
		TableFn: func(scenario.Scale) (*stats.Table, error) {
			tbl := &stats.Table{Title: "static", XLabel: "x", YLabel: "y"}
			tbl.AddSeries("s").Append(1, 2)
			return tbl, nil
		},
	})
	return reg
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Registry: testRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

func TestScenariosList(t *testing.T) {
	_, ts := newTestServer(t)
	var got scenariosResponse
	resp := getJSON(t, ts.URL+"/v1/scenarios", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got.Scenarios) != 2 || got.Scenarios[0].ID != "fast" || got.Scenarios[1].ID != "statictbl" {
		t.Fatalf("scenarios: %+v", got.Scenarios)
	}
	if len(got.Scales) == 0 || got.Scales[0] != "quick" {
		t.Fatalf("scales: %v", got.Scales)
	}
}

func TestScenarioByID(t *testing.T) {
	_, ts := newTestServer(t)
	var sc scenario.Scenario
	resp := getJSON(t, ts.URL+"/v1/scenarios/fast", &sc)
	if resp.StatusCode != http.StatusOK || sc.ID != "fast" || sc.Summary == "" {
		t.Fatalf("status %d scenario %+v", resp.StatusCode, sc)
	}
}

func TestErrorStatusCodes(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		method, path, body string
		want               int
		jsonBody           bool // API errors carry a JSON {"error": ...} body
	}{
		{"GET", "/v1/scenarios/nope", "", http.StatusNotFound, true},
		{"GET", "/nope", "", http.StatusNotFound, false},
		{"POST", "/v1/scenarios", "", http.StatusMethodNotAllowed, false},
		{"GET", "/v1/run", "", http.StatusMethodNotAllowed, false},
		{"POST", "/v1/run", "{not json", http.StatusBadRequest, true},
		{"POST", "/v1/run", `{"unknown_field":1}`, http.StatusBadRequest, true},
		{"POST", "/v1/run", `{"scale":"quick"}`, http.StatusBadRequest, true},                    // missing experiment
		{"POST", "/v1/run", `{"experiment":"fast","scale":"huge"}`, http.StatusBadRequest, true}, // unknown scale
		{"POST", "/v1/run", `{"experiment":"nope","scale":"quick"}`, http.StatusNotFound, true},  // unknown scenario
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != c.want {
			t.Fatalf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
		if c.jsonBody {
			var e errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("%s %s: error body not JSON: %v", c.method, c.path, err)
			}
		}
		resp.Body.Close()
	}
}

// postRun issues a run request and parses the NDJSON stream into raw lines.
func postRun(t *testing.T, ts *httptest.Server, body string) []map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestRunStreamsDeterministicOrder(t *testing.T) {
	_, ts := newTestServer(t)
	lines := postRun(t, ts, `{"experiment":"fast","scale":"quick","workers":4}`)
	if len(lines) != 8 { // run header + 6 points + done
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if lines[0]["type"] != "run" || lines[0]["jobs"] != float64(6) || lines[0]["scenarios"] != float64(1) {
		t.Fatalf("header: %v", lines[0])
	}
	last := lines[len(lines)-1]
	if last["type"] != "done" || last["jobs"] != float64(6) {
		t.Fatalf("done line: %v", last)
	}
	// Points must arrive in enumeration order (series a x=0,1,2 then b),
	// whatever order the 4 workers finished them in.
	wantSeries := []string{"a", "a", "a", "b", "b", "b"}
	for i, line := range lines[1:7] {
		if line["type"] != "point" || line["scenario"] != "fast" {
			t.Fatalf("line %d: %v", i+1, line)
		}
		if line["series"] != wantSeries[i] || line["x"] != float64(i%3) {
			t.Fatalf("line %d out of order: %v", i+1, line)
		}
		res := line["result"].(map[string]any)
		if res["y"] != float64(i%3*10) {
			t.Fatalf("line %d result: %v", i+1, line)
		}
	}
}

func TestRunStreamsTableScenario(t *testing.T) {
	_, ts := newTestServer(t)
	lines := postRun(t, ts, `{"experiment":"statictbl","scale":"quick"}`)
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if lines[1]["type"] != "table" || lines[1]["scenario"] != "statictbl" {
		t.Fatalf("table line: %v", lines[1])
	}
	tbl := lines[1]["table"].(map[string]any)
	if tbl["title"] != "static" {
		t.Fatalf("table content: %v", tbl)
	}
}

func TestRunAllSelector(t *testing.T) {
	_, ts := newTestServer(t)
	lines := postRun(t, ts, `{"experiment":"all","scale":"quick"}`)
	if lines[0]["scenarios"] != float64(2) || lines[0]["jobs"] != float64(7) {
		t.Fatalf("header: %v", lines[0])
	}
	if lines[len(lines)-1]["type"] != "done" {
		t.Fatalf("missing done line: %v", lines[len(lines)-1])
	}
}

// TestRepeatRunHitsCache is the acceptance check: a repeated identical run
// is served from the cache, visible in both the per-line cached flags and
// the /v1/stats counters.
func TestRepeatRunHitsCache(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"experiment":"fast","scale":"quick"}`

	first := postRun(t, ts, body)
	for _, line := range first[1:7] {
		if line["cached"] != false {
			t.Fatalf("first run served from an empty cache: %v", line)
		}
	}
	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Cache.Misses != 6 || st.Cache.Hits != 0 || st.Cache.Entries != 6 {
		t.Fatalf("stats after first run: %+v", st.Cache)
	}

	second := postRun(t, ts, body)
	for _, line := range second[1:7] {
		if line["cached"] != true {
			t.Fatalf("repeated run recomputed: %v", line)
		}
	}
	done := second[len(second)-1]
	if done["cached_points"] != float64(6) {
		t.Fatalf("done line: %v", done)
	}
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Cache.Hits != 6 || st.Cache.Misses != 6 {
		t.Fatalf("stats after repeat: %+v", st.Cache)
	}
	if st.Runs != 2 || st.PointsServed != 12 {
		t.Fatalf("run counters: %+v", st)
	}

	// A different seed is a different computation — no cache hits.
	third := postRun(t, ts, `{"experiment":"fast","scale":"quick","seed":2}`)
	for _, line := range third[1:7] {
		if line["cached"] != false {
			t.Fatalf("different seed served stale result: %v", line)
		}
	}
}

func TestRunStreamErrorLine(t *testing.T) {
	reg := scenario.NewRegistry()
	reg.MustRegister(scenario.Scenario{
		ID: "failing", Title: "failing", Artifact: "extension", Summary: "fails",
		Params: []scenario.ParamDoc{{Name: "x", Desc: "x"}},
		XLabel: "x", YLabel: "y",
		Points: func(scenario.Scale) ([]scenario.Point, error) {
			return []scenario.Point{{Series: "a", X: 1, Params: map[string]float64{"x": 1}}}, nil
		},
		RunPoint: func(scenario.Scale, scenario.Point) (scenario.Result, error) {
			return scenario.Result{}, fmt.Errorf("simulated failure")
		},
	})
	srv, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	lines := postRun(t, ts, `{"experiment":"failing","scale":"quick"}`)
	last := lines[len(lines)-1]
	if last["type"] != "error" {
		t.Fatalf("stream did not end with an error line: %v", lines)
	}
	msg := last["error"].(string)
	if !strings.Contains(msg, "failing: point series") || !strings.Contains(msg, "simulated failure") {
		t.Fatalf("error not attributed: %q", msg)
	}
}

func TestStatsEndpointShape(t *testing.T) {
	_, ts := newTestServer(t)
	var st statsResponse
	resp := getJSON(t, ts.URL+"/v1/stats", &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if st.Cache.Shards != DefaultCacheShards || st.Cache.Capacity != DefaultCacheCapacity {
		t.Fatalf("cache config not surfaced: %+v", st.Cache)
	}
	if st.UptimeS < 0 {
		t.Fatalf("uptime %v", st.UptimeS)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil registry accepted")
	}
}

func TestGracefulShutdown(t *testing.T) {
	srv, err := New(Config{Registry: testRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var (
		logMu sync.Mutex
		logs  bytes.Buffer
	)
	logw := writerFunc(func(p []byte) (int, error) {
		logMu.Lock()
		defer logMu.Unlock()
		return logs.Write(p)
	})
	served := make(chan error, 1)
	go func() { served <- srv.ListenAndServe(ctx, "127.0.0.1:0", logw) }()

	// Wait for the listen log line to learn the bound address.
	var addr string
	for i := 0; i < 200 && addr == ""; i++ {
		time.Sleep(10 * time.Millisecond)
		logMu.Lock()
		if s := logs.String(); strings.Contains(s, "http://") {
			addr = "http://" + strings.TrimSpace(strings.SplitAfter(s, "http://")[1])
		}
		logMu.Unlock()
	}
	if addr == "" {
		t.Fatalf("server never logged its address: %q", logs.String())
	}
	resp, err := http.Get(addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("graceful shutdown timed out")
	}
	if _, err := http.Get(addr + "/v1/stats"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var h healthResponse
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if h.Status != "ok" || h.UptimeS < 0 || h.Scenarios != 2 {
		t.Fatalf("health: %+v", h)
	}
}

// TestWorkEndpointsWithoutCoordinator: plain `pbbf serve` has no
// distributed sweep; every work endpoint must answer 503 with a JSON
// error, so a misdirected worker fails with a message instead of a hang.
func TestWorkEndpointsWithoutCoordinator(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct{ method, path string }{
		{"POST", "/v1/workers"},
		{"GET", "/v1/workers"},
		{"POST", "/v1/workers/w1/heartbeat"},
		{"POST", "/v1/work/lease"},
		{"POST", "/v1/work/result"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Fatalf("%s %s: error body not JSON: %v", c.method, c.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s %s: status %d, want 503", c.method, c.path, resp.StatusCode)
		}
	}
}

// TestWorkerLifecycleOverHTTP drives the coordination endpoints the way a
// worker does: register, poll an empty queue, lease a point submitted
// through the coordinator, report its result, observe it in /v1/workers,
// and drain after close.
func TestWorkerLifecycleOverHTTP(t *testing.T) {
	reg := testRegistry(t)
	coord := dist.NewCoordinator(dist.Config{LeaseTTL: 5 * time.Second})
	srv, err := New(Config{Registry: reg, Coordinator: coord})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	postJSON := func(path, body string, into any) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("POST %s: %v", path, err)
			}
		}
		return resp
	}

	var regResp dist.RegisterResponse
	postJSON("/v1/workers", `{"name":"httpw"}`, &regResp)
	if regResp.WorkerID == "" || regResp.LeaseTTLMS != 5000 {
		t.Fatalf("register: %+v", regResp)
	}

	// Empty queue: the lease answers with a retry delay, not points.
	var idle dist.LeaseResponse
	postJSON("/v1/work/lease", `{"worker_id":"`+regResp.WorkerID+`"}`, &idle)
	if idle.RetryMS <= 0 || len(idle.Points) != 0 {
		t.Fatalf("idle lease: %+v", idle)
	}

	// Submit one point through the coordinator and serve it over HTTP.
	sc, err := reg.ByID("fast")
	if err != nil {
		t.Fatal(err)
	}
	scale := scenario.Quick()
	pt := scenario.Point{Series: "a", X: 1, Params: map[string]float64{"x": 1}}
	spec := scenario.NewPointSpec(sc, scale, pt)
	doErr := make(chan error, 1)
	go func() {
		res, err := coord.Do(context.Background(), spec)
		if err == nil && res.Y != 42 {
			err = fmt.Errorf("result %+v", res)
		}
		doErr <- err
	}()
	var grant dist.LeaseResponse
	for i := 0; i < 200 && len(grant.Points) == 0; i++ {
		time.Sleep(5 * time.Millisecond)
		postJSON("/v1/work/lease", `{"worker_id":"`+regResp.WorkerID+`"}`, &grant)
	}
	if len(grant.Points) != 1 || grant.Points[0].Key != spec.Key {
		t.Fatalf("grant: %+v", grant)
	}

	// Heartbeat while "computing".
	resp := postJSON("/v1/workers/"+regResp.WorkerID+"/heartbeat", "{}", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("heartbeat status %d", resp.StatusCode)
	}
	if resp := postJSON("/v1/workers/w999/heartbeat", "{}", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown worker heartbeat status %d", resp.StatusCode)
	}

	var ack dist.ResultResponse
	body, err := json.Marshal(dist.ResultRequest{
		WorkerID: regResp.WorkerID, LeaseID: grant.LeaseID,
		Results: []dist.PointResult{{Key: spec.Key, Result: scenario.Result{Y: 42}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	postJSON("/v1/work/result", string(body), &ack)
	if ack.Accepted != 1 || ack.Stale != 0 {
		t.Fatalf("ack: %+v", ack)
	}
	if err := <-doErr; err != nil {
		t.Fatal(err)
	}

	var workers dist.WorkersResponse
	getJSON(t, ts.URL+"/v1/workers", &workers)
	if len(workers.Workers) != 1 || workers.Workers[0].Name != "httpw" || workers.Workers[0].Completed != 1 {
		t.Fatalf("workers: %+v", workers)
	}
	if workers.Queue.Done != 1 || workers.Queue.Pending != 0 {
		t.Fatalf("queue: %+v", workers.Queue)
	}

	coord.Close()
	var done dist.LeaseResponse
	postJSON("/v1/work/lease", `{"worker_id":"`+regResp.WorkerID+`"}`, &done)
	if !done.Done {
		t.Fatalf("post-close lease: %+v", done)
	}

	// Malformed bodies are 400s, not panics.
	if resp := postJSON("/v1/work/lease", "{not json", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad lease body status %d", resp.StatusCode)
	}
}

// TestAccessLog: with AccessLog configured every request writes one JSON
// line carrying method, path, status, and timing; without it, nothing is
// logged (the default).
func TestAccessLog(t *testing.T) {
	var (
		mu  sync.Mutex
		buf bytes.Buffer
	)
	srv, err := New(Config{
		Registry: testRegistry(t),
		AccessLog: writerFunc(func(p []byte) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			return buf.Write(p)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/scenarios/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The NDJSON streaming path must keep flushing through the recorder.
	lines := postRun(t, ts, `{"experiment":"fast","scale":"quick"}`)
	if lines[len(lines)-1]["type"] != "done" {
		t.Fatalf("streamed run broke under access logging: %v", lines)
	}

	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	records := strings.Split(strings.TrimSpace(logged), "\n")
	if len(records) != 3 {
		t.Fatalf("got %d access-log lines:\n%s", len(records), logged)
	}
	type rec struct {
		Method     string  `json:"method"`
		Path       string  `json:"path"`
		Status     int     `json:"status"`
		Bytes      int64   `json:"bytes"`
		DurationMS float64 `json:"duration_ms"`
		Remote     string  `json:"remote"`
	}
	var r rec
	if err := json.Unmarshal([]byte(records[0]), &r); err != nil {
		t.Fatalf("access line not JSON: %v\n%s", err, records[0])
	}
	if r.Method != "GET" || r.Path != "/healthz" || r.Status != 200 || r.Bytes <= 0 || r.Remote == "" {
		t.Fatalf("healthz record: %+v", r)
	}
	if err := json.Unmarshal([]byte(records[1]), &r); err != nil {
		t.Fatal(err)
	}
	if r.Status != 404 || r.Path != "/v1/scenarios/nope" {
		t.Fatalf("404 record: %+v", r)
	}
	if err := json.Unmarshal([]byte(records[2]), &r); err != nil {
		t.Fatal(err)
	}
	if r.Method != "POST" || r.Path != "/v1/run" || r.Status != 200 {
		t.Fatalf("run record: %+v", r)
	}
}
