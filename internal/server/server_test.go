package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pbbf/internal/scenario"
	"pbbf/internal/stats"
)

// testRegistry returns a registry with one fast point-based scenario and
// one static table, so server tests never pay simulation cost.
func testRegistry(t *testing.T) *scenario.Registry {
	t.Helper()
	reg := scenario.NewRegistry()
	reg.MustRegister(scenario.Scenario{
		ID: "fast", Title: "fast scenario", Artifact: "extension",
		Summary: "server test scenario",
		Params:  []scenario.ParamDoc{{Name: "x", Desc: "x coordinate"}},
		XLabel:  "x", YLabel: "y",
		Points: func(s scenario.Scale) ([]scenario.Point, error) {
			var pts []scenario.Point
			for _, series := range []string{"a", "b"} {
				for x := 0.0; x < 3; x++ {
					pts = append(pts, scenario.Point{
						Series: series, X: x, Params: map[string]float64{"x": x},
					})
				}
			}
			return pts, nil
		},
		RunPoint: func(s scenario.Scale, pt scenario.Point) (scenario.Result, error) {
			return scenario.Result{Y: pt.X * 10, Delivery: 1}, nil
		},
	})
	reg.MustRegister(scenario.Scenario{
		ID: "statictbl", Title: "static table", Artifact: "Table 9",
		Summary: "server test table",
		TableFn: func(scenario.Scale) (*stats.Table, error) {
			tbl := &stats.Table{Title: "static", XLabel: "x", YLabel: "y"}
			tbl.AddSeries("s").Append(1, 2)
			return tbl, nil
		},
	})
	return reg
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Registry: testRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

func TestScenariosList(t *testing.T) {
	_, ts := newTestServer(t)
	var got scenariosResponse
	resp := getJSON(t, ts.URL+"/v1/scenarios", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got.Scenarios) != 2 || got.Scenarios[0].ID != "fast" || got.Scenarios[1].ID != "statictbl" {
		t.Fatalf("scenarios: %+v", got.Scenarios)
	}
	if len(got.Scales) == 0 || got.Scales[0] != "quick" {
		t.Fatalf("scales: %v", got.Scales)
	}
}

func TestScenarioByID(t *testing.T) {
	_, ts := newTestServer(t)
	var sc scenario.Scenario
	resp := getJSON(t, ts.URL+"/v1/scenarios/fast", &sc)
	if resp.StatusCode != http.StatusOK || sc.ID != "fast" || sc.Summary == "" {
		t.Fatalf("status %d scenario %+v", resp.StatusCode, sc)
	}
}

func TestErrorStatusCodes(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		method, path, body string
		want               int
		jsonBody           bool // API errors carry a JSON {"error": ...} body
	}{
		{"GET", "/v1/scenarios/nope", "", http.StatusNotFound, true},
		{"GET", "/nope", "", http.StatusNotFound, false},
		{"POST", "/v1/scenarios", "", http.StatusMethodNotAllowed, false},
		{"GET", "/v1/run", "", http.StatusMethodNotAllowed, false},
		{"POST", "/v1/run", "{not json", http.StatusBadRequest, true},
		{"POST", "/v1/run", `{"unknown_field":1}`, http.StatusBadRequest, true},
		{"POST", "/v1/run", `{"scale":"quick"}`, http.StatusBadRequest, true},                    // missing experiment
		{"POST", "/v1/run", `{"experiment":"fast","scale":"huge"}`, http.StatusBadRequest, true}, // unknown scale
		{"POST", "/v1/run", `{"experiment":"nope","scale":"quick"}`, http.StatusNotFound, true},  // unknown scenario
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != c.want {
			t.Fatalf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
		if c.jsonBody {
			var e errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("%s %s: error body not JSON: %v", c.method, c.path, err)
			}
		}
		resp.Body.Close()
	}
}

// postRun issues a run request and parses the NDJSON stream into raw lines.
func postRun(t *testing.T, ts *httptest.Server, body string) []map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestRunStreamsDeterministicOrder(t *testing.T) {
	_, ts := newTestServer(t)
	lines := postRun(t, ts, `{"experiment":"fast","scale":"quick","workers":4}`)
	if len(lines) != 8 { // run header + 6 points + done
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if lines[0]["type"] != "run" || lines[0]["jobs"] != float64(6) || lines[0]["scenarios"] != float64(1) {
		t.Fatalf("header: %v", lines[0])
	}
	last := lines[len(lines)-1]
	if last["type"] != "done" || last["jobs"] != float64(6) {
		t.Fatalf("done line: %v", last)
	}
	// Points must arrive in enumeration order (series a x=0,1,2 then b),
	// whatever order the 4 workers finished them in.
	wantSeries := []string{"a", "a", "a", "b", "b", "b"}
	for i, line := range lines[1:7] {
		if line["type"] != "point" || line["scenario"] != "fast" {
			t.Fatalf("line %d: %v", i+1, line)
		}
		if line["series"] != wantSeries[i] || line["x"] != float64(i%3) {
			t.Fatalf("line %d out of order: %v", i+1, line)
		}
		res := line["result"].(map[string]any)
		if res["y"] != float64(i%3*10) {
			t.Fatalf("line %d result: %v", i+1, line)
		}
	}
}

func TestRunStreamsTableScenario(t *testing.T) {
	_, ts := newTestServer(t)
	lines := postRun(t, ts, `{"experiment":"statictbl","scale":"quick"}`)
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if lines[1]["type"] != "table" || lines[1]["scenario"] != "statictbl" {
		t.Fatalf("table line: %v", lines[1])
	}
	tbl := lines[1]["table"].(map[string]any)
	if tbl["title"] != "static" {
		t.Fatalf("table content: %v", tbl)
	}
}

func TestRunAllSelector(t *testing.T) {
	_, ts := newTestServer(t)
	lines := postRun(t, ts, `{"experiment":"all","scale":"quick"}`)
	if lines[0]["scenarios"] != float64(2) || lines[0]["jobs"] != float64(7) {
		t.Fatalf("header: %v", lines[0])
	}
	if lines[len(lines)-1]["type"] != "done" {
		t.Fatalf("missing done line: %v", lines[len(lines)-1])
	}
}

// TestRepeatRunHitsCache is the acceptance check: a repeated identical run
// is served from the cache, visible in both the per-line cached flags and
// the /v1/stats counters.
func TestRepeatRunHitsCache(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"experiment":"fast","scale":"quick"}`

	first := postRun(t, ts, body)
	for _, line := range first[1:7] {
		if line["cached"] != false {
			t.Fatalf("first run served from an empty cache: %v", line)
		}
	}
	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Cache.Misses != 6 || st.Cache.Hits != 0 || st.Cache.Entries != 6 {
		t.Fatalf("stats after first run: %+v", st.Cache)
	}

	second := postRun(t, ts, body)
	for _, line := range second[1:7] {
		if line["cached"] != true {
			t.Fatalf("repeated run recomputed: %v", line)
		}
	}
	done := second[len(second)-1]
	if done["cached_points"] != float64(6) {
		t.Fatalf("done line: %v", done)
	}
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Cache.Hits != 6 || st.Cache.Misses != 6 {
		t.Fatalf("stats after repeat: %+v", st.Cache)
	}
	if st.Runs != 2 || st.PointsServed != 12 {
		t.Fatalf("run counters: %+v", st)
	}

	// A different seed is a different computation — no cache hits.
	third := postRun(t, ts, `{"experiment":"fast","scale":"quick","seed":2}`)
	for _, line := range third[1:7] {
		if line["cached"] != false {
			t.Fatalf("different seed served stale result: %v", line)
		}
	}
}

func TestRunStreamErrorLine(t *testing.T) {
	reg := scenario.NewRegistry()
	reg.MustRegister(scenario.Scenario{
		ID: "failing", Title: "failing", Artifact: "extension", Summary: "fails",
		Params: []scenario.ParamDoc{{Name: "x", Desc: "x"}},
		XLabel: "x", YLabel: "y",
		Points: func(scenario.Scale) ([]scenario.Point, error) {
			return []scenario.Point{{Series: "a", X: 1, Params: map[string]float64{"x": 1}}}, nil
		},
		RunPoint: func(scenario.Scale, scenario.Point) (scenario.Result, error) {
			return scenario.Result{}, fmt.Errorf("simulated failure")
		},
	})
	srv, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	lines := postRun(t, ts, `{"experiment":"failing","scale":"quick"}`)
	last := lines[len(lines)-1]
	if last["type"] != "error" {
		t.Fatalf("stream did not end with an error line: %v", lines)
	}
	msg := last["error"].(string)
	if !strings.Contains(msg, "failing: point series") || !strings.Contains(msg, "simulated failure") {
		t.Fatalf("error not attributed: %q", msg)
	}
}

func TestStatsEndpointShape(t *testing.T) {
	_, ts := newTestServer(t)
	var st statsResponse
	resp := getJSON(t, ts.URL+"/v1/stats", &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if st.Cache.Shards != DefaultCacheShards || st.Cache.Capacity != DefaultCacheCapacity {
		t.Fatalf("cache config not surfaced: %+v", st.Cache)
	}
	if st.UptimeS < 0 {
		t.Fatalf("uptime %v", st.UptimeS)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil registry accepted")
	}
}

func TestGracefulShutdown(t *testing.T) {
	srv, err := New(Config{Registry: testRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var (
		logMu sync.Mutex
		logs  bytes.Buffer
	)
	logw := writerFunc(func(p []byte) (int, error) {
		logMu.Lock()
		defer logMu.Unlock()
		return logs.Write(p)
	})
	served := make(chan error, 1)
	go func() { served <- srv.ListenAndServe(ctx, "127.0.0.1:0", logw) }()

	// Wait for the listen log line to learn the bound address.
	var addr string
	for i := 0; i < 200 && addr == ""; i++ {
		time.Sleep(10 * time.Millisecond)
		logMu.Lock()
		if s := logs.String(); strings.Contains(s, "http://") {
			addr = "http://" + strings.TrimSpace(strings.SplitAfter(s, "http://")[1])
		}
		logMu.Unlock()
	}
	if addr == "" {
		t.Fatalf("server never logged its address: %q", logs.String())
	}
	resp, err := http.Get(addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("graceful shutdown timed out")
	}
	if _, err := http.Get(addr + "/v1/stats"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
