// Package server exposes the scenario engine over HTTP: scenario metadata
// discovery, streamed scenario runs, Prometheus-text metrics, and
// operational statistics. Every point computed through POST /v1/run flows
// through a store.Store keyed by canonical scenario.PointKey — by default
// a sharded in-memory LRU, optionally tiered over a durable on-disk record
// store so a restarted server serves byte-identical results with zero
// simulation work — with singleflight de-duplication of concurrent
// identical requests. Overload is shed, not queued without bound: each
// client has a token bucket and the run path has a bounded admission
// queue; both answer 429 with Retry-After. Run results stream back as
// NDJSON in deterministic point-enumeration order, each line flushed as
// the point completes, so a paper-scale sweep is observable while it runs.
// See docs/SERVING.md.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pbbf/internal/cache"
	"pbbf/internal/dist"
	"pbbf/internal/protocol"
	"pbbf/internal/scenario"
	"pbbf/internal/stats"
	"pbbf/internal/store"
)

// DefaultCacheShards and DefaultCacheCapacity size the memory tier when
// CacheOptions leaves them zero: enough shards that the per-shard locks
// stay uncontended at typical core counts, enough entries for several full
// quick-scale registry runs.
const (
	DefaultCacheShards   = 16
	DefaultCacheCapacity = 4096
)

// CacheOptions sizes the in-memory result tier.
type CacheOptions struct {
	// Shards is the independently locked shard count; 0 means
	// DefaultCacheShards.
	Shards int
	// Entries is the total LRU entry bound; 0 means DefaultCacheCapacity.
	Entries int
}

// StoreOptions configures the durable result tier.
type StoreOptions struct {
	// Dir is the on-disk result store directory (see internal/store).
	// Empty disables the disk tier: results live in memory only and die
	// with the process.
	Dir string
}

// DefaultMaxConcurrentRuns returns the default admission bound of the run
// path: enough concurrent runs to saturate the cores several times over
// (runs spend time streaming, not only computing), few enough that an
// overload burst degrades into fast 429s instead of a goroutine pile-up.
func DefaultMaxConcurrentRuns() int { return 4 * runtime.GOMAXPROCS(0) }

// DefaultRunQueueDepth is how many runs may wait for an admission slot
// before further arrivals are shed with 429.
const DefaultRunQueueDepth = 64

// DefaultRetryAfter is the advisory Retry-After carried by backpressure
// 429s (rate-limit 429s compute their own from the bucket's refill time).
const DefaultRetryAfter = 1 * time.Second

// LimitOptions bounds what one client — and the server as a whole — may
// ask of the run path. The zero value enables backpressure at the
// defaults and leaves per-client rate limiting off.
type LimitOptions struct {
	// RatePerSec is each client's sustained POST /v1/run budget (token
	// bucket refill rate, keyed by client IP). 0 disables rate limiting;
	// negative is an error.
	RatePerSec float64
	// Burst is the bucket depth — how many requests a client may issue
	// back-to-back before the rate applies. 0 means max(1, RatePerSec).
	Burst int
	// MaxConcurrentRuns bounds runs executing at once. 0 means
	// DefaultMaxConcurrentRuns; negative disables the admission gate.
	MaxConcurrentRuns int
	// RunQueueDepth bounds runs waiting for an admission slot; arrivals
	// beyond it are shed immediately with 429. 0 means
	// DefaultRunQueueDepth.
	RunQueueDepth int
	// RetryAfter is the advisory delay on backpressure 429s. 0 means
	// DefaultRetryAfter.
	RetryAfter time.Duration
}

// Options is the validated server configuration: the registry plus one
// option struct per concern, following the conflict-rejecting normalized()
// idiom of netsim.Config. Deprecated flat aliases from the pre-store API
// are folded in by normalized(); setting both spellings to conflicting
// values is an error, never a silent preference.
type Options struct {
	// Registry holds the scenarios the server can run. Required.
	Registry *scenario.Registry
	// Results overrides the assembled result store entirely (tests,
	// future shared/replicated backends). When set, Mem and Disk must be
	// zero. When nil, the store is built from Mem and Disk: a sharded LRU,
	// tiered over a disk store when Disk.Dir is set.
	Results store.Store
	// Mem sizes the in-memory result tier.
	Mem CacheOptions
	// Disk configures the durable result tier.
	Disk StoreOptions
	// Limits bounds the run path (per-client rate, admission queue).
	Limits LimitOptions
	// MaxWorkers caps the per-request sweep pool; <= 0 means GOMAXPROCS.
	MaxWorkers int
	// Coordinator, when non-nil, backs the distributed-sweep work
	// endpoints (/v1/work/*, /v1/workers) — the `pbbf sweep -distribute`
	// mode. When nil (plain `pbbf serve`), those endpoints answer 503.
	Coordinator *dist.Coordinator
	// AccessLog, when non-nil, receives one structured JSON line per
	// request (method, path, status, bytes, duration, remote address) —
	// the `-verbose` flag.
	AccessLog io.Writer
	// EnablePprof registers the net/http/pprof debug handlers under
	// /debug/pprof/. The handlers are unauthenticated and expose process
	// internals (goroutine dumps, heap contents, CPU profiles); enable
	// them only on loopback or otherwise-trusted listeners. Off by
	// default.
	EnablePprof bool

	// Deprecated: Cache injects a prebuilt memory cache — the pre-store
	// API. It conflicts with Results and with non-zero Mem sizing; use
	// Mem (sizing) or Results (injection) instead.
	Cache *cache.Cache[scenario.Result]
}

// Config is the pre-options name of Options.
//
// Deprecated: construct Options directly; Config remains so existing
// callers keep compiling.
type Config = Options

// normalized folds the deprecated aliases into their option structs,
// rejects conflicting assignments, and fills defaults — the same pass
// netsim.Config runs before use, so both spellings behave identically.
func (o Options) normalized() (Options, error) {
	if o.Registry == nil {
		return o, fmt.Errorf("server: nil registry")
	}
	if o.Cache != nil {
		if o.Results != nil {
			return o, fmt.Errorf("server: deprecated Cache conflicts with Results")
		}
		if o.Mem != (CacheOptions{}) {
			return o, fmt.Errorf("server: deprecated Cache conflicts with Mem sizing %+v", o.Mem)
		}
	}
	if o.Results != nil && (o.Mem != (CacheOptions{}) || o.Disk != (StoreOptions{})) {
		return o, fmt.Errorf("server: Results store conflicts with Mem/Disk options")
	}
	if o.Mem.Shards == 0 {
		o.Mem.Shards = DefaultCacheShards
	}
	if o.Mem.Entries == 0 {
		o.Mem.Entries = DefaultCacheCapacity
	}
	if o.Mem.Shards < 0 || o.Mem.Entries < 0 {
		return o, fmt.Errorf("server: cache sizing %d shards / %d entries must be positive", o.Mem.Shards, o.Mem.Entries)
	}
	if o.Limits.RatePerSec < 0 {
		return o, fmt.Errorf("server: rate limit %v must be >= 0", o.Limits.RatePerSec)
	}
	if o.Limits.Burst < 0 {
		return o, fmt.Errorf("server: rate burst %d must be >= 0", o.Limits.Burst)
	}
	if o.Limits.Burst == 0 {
		o.Limits.Burst = int(o.Limits.RatePerSec)
		if o.Limits.Burst < 1 {
			o.Limits.Burst = 1
		}
	}
	if o.Limits.MaxConcurrentRuns == 0 {
		o.Limits.MaxConcurrentRuns = DefaultMaxConcurrentRuns()
	}
	if o.Limits.RunQueueDepth == 0 {
		o.Limits.RunQueueDepth = DefaultRunQueueDepth
	}
	if o.Limits.RunQueueDepth < 0 {
		return o, fmt.Errorf("server: run queue depth %d must be >= 0", o.Limits.RunQueueDepth)
	}
	if o.Limits.RetryAfter == 0 {
		o.Limits.RetryAfter = DefaultRetryAfter
	}
	if o.Limits.RetryAfter < 0 {
		return o, fmt.Errorf("server: retry-after %v must be positive", o.Limits.RetryAfter)
	}
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	return o, nil
}

// buildStore assembles the result store a normalized Options describes.
// memStats additionally reports the memory tier's cache counters when the
// composition has one (the legacy "cache" key of /v1/stats).
func (o Options) buildStore() (results store.Store, memStats func() cache.Stats, err error) {
	if o.Results != nil {
		return o.Results, nil, nil
	}
	var mem *store.Memory
	if o.Cache != nil {
		mem = store.WrapCache(o.Cache)
	} else if mem, err = store.NewMemory(o.Mem.Shards, o.Mem.Entries); err != nil {
		return nil, nil, err
	}
	if o.Disk.Dir == "" {
		return mem, mem.CacheStats, nil
	}
	disk, err := store.Open(o.Disk.Dir)
	if err != nil {
		return nil, nil, err
	}
	return store.Tiered(mem, disk), mem.CacheStats, nil
}

// Server is the HTTP front end. It implements http.Handler; use
// ListenAndServe for a managed listener with graceful shutdown.
type Server struct {
	reg        *scenario.Registry
	results    store.Store
	flight     *store.Flight
	memStats   func() cache.Stats // nil when no memory tier is visible
	maxWorkers int
	coord      *dist.Coordinator
	mux        *http.ServeMux
	start      time.Time

	limiter    *rateLimiter // nil when rate limiting is off
	gate       *runGate     // nil when the admission gate is off
	retryAfter time.Duration

	metrics *metricSet

	accessMu  sync.Mutex
	accessLog io.Writer

	runs         atomic.Uint64
	pointsServed atomic.Uint64
}

// New validates the configuration and assembles the server and its routes.
func New(o Options) (*Server, error) {
	o, err := o.normalized()
	if err != nil {
		return nil, err
	}
	results, memStats, err := o.buildStore()
	if err != nil {
		return nil, err
	}
	s := &Server{
		reg:        o.Registry,
		results:    results,
		flight:     store.NewFlight(results),
		memStats:   memStats,
		maxWorkers: o.MaxWorkers,
		coord:      o.Coordinator,
		retryAfter: o.Limits.RetryAfter,
		accessLog:  o.AccessLog,
		mux:        http.NewServeMux(),
		start:      time.Now(),
	}
	if o.Limits.RatePerSec > 0 {
		s.limiter = newRateLimiter(o.Limits.RatePerSec, o.Limits.Burst)
	}
	if o.Limits.MaxConcurrentRuns > 0 {
		s.gate = newRunGate(o.Limits.MaxConcurrentRuns, o.Limits.RunQueueDepth)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	s.mux.HandleFunc("GET /v1/protocols", s.handleProtocols)
	s.mux.HandleFunc("GET /v1/scenarios/{id}", s.handleScenario)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/workers", s.handleWorkerRegister)
	s.mux.HandleFunc("GET /v1/workers", s.handleWorkersList)
	s.mux.HandleFunc("POST /v1/workers/{id}/heartbeat", s.handleWorkerHeartbeat)
	s.mux.HandleFunc("POST /v1/work/lease", s.handleWorkLease)
	s.mux.HandleFunc("POST /v1/work/result", s.handleWorkResult)
	if o.EnablePprof {
		// Registered on the private mux, not http.DefaultServeMux, so the
		// debug surface exists only when asked for. No method pattern:
		// /debug/pprof/symbol accepts POST too.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.metrics = newMetricSet()
	// Unregistered routes fall through to the mux's own handling, which
	// also answers wrong-method requests with 405 + Allow.
	return s, nil
}

// Close releases the result store (the disk tier's contract).
func (s *Server) Close() error { return s.results.Close() }

// ServeHTTP dispatches to the API routes, recording per-route metrics for
// every request and logging each one when an access log is configured.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(rec, r)
	elapsed := time.Since(start)
	// r.Pattern is the mux pattern that matched, set by ServeHTTP —
	// "POST /v1/run", not the raw path — so metric labels stay bounded.
	route := r.Pattern
	if route == "" {
		route = "unmatched"
	}
	s.metrics.observe(route, r.Method, rec.status, elapsed)
	if s.accessLog == nil {
		return
	}
	line, err := json.Marshal(accessLine{
		Method:     r.Method,
		Path:       r.URL.Path,
		Status:     rec.status,
		Bytes:      rec.bytes,
		DurationMS: float64(elapsed.Microseconds()) / 1000,
		Remote:     r.RemoteAddr,
	})
	if err != nil {
		return
	}
	s.accessMu.Lock()
	s.accessLog.Write(append(line, '\n')) //nolint:errcheck // logging is best-effort
	s.accessMu.Unlock()
}

// accessLine is one structured access-log record.
type accessLine struct {
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Status     int     `json:"status"`
	Bytes      int64   `json:"bytes"`
	DurationMS float64 `json:"duration_ms"`
	Remote     string  `json:"remote"`
}

// statusRecorder captures the response status and size for the access
// log. Unwrap exposes the underlying writer so http.ResponseController
// (the NDJSON stream's flusher) keeps working through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// ListenAndServe serves the API on addr until ctx is cancelled, then shuts
// down gracefully (in-flight requests get ShutdownTimeout to finish). The
// bound address is logged to logw before serving, so callers binding
// ":0" learn the chosen port.
func (s *Server) ListenAndServe(ctx context.Context, addr string, logw io.Writer) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.serve(ctx, l, logw)
}

// ServeListener is ListenAndServe on an existing listener, for callers
// that must know the bound address before serving (`pbbf sweep
// -distribute 127.0.0.1:0` announces the coordinator address itself).
func (s *Server) ServeListener(ctx context.Context, l net.Listener, logw io.Writer) error {
	return s.serve(ctx, l, logw)
}

// ShutdownTimeout is how long graceful shutdown waits for in-flight
// requests (streamed runs included) before giving up.
const ShutdownTimeout = 10 * time.Second

func (s *Server) serve(ctx context.Context, l net.Listener, logw io.Writer) error {
	hs := &http.Server{Handler: s}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), ShutdownTimeout)
		defer cancel()
		done <- hs.Shutdown(sctx)
	}()
	if logw != nil {
		fmt.Fprintf(logw, "pbbf serve: listening on http://%s\n", l.Addr())
	}
	err := hs.Serve(l)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if ctx.Err() == nil {
		return nil
	}
	if err := <-done; err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	if logw != nil {
		fmt.Fprintln(logw, "pbbf serve: shut down cleanly")
	}
	return nil
}

// scenariosResponse is the GET /v1/scenarios payload. Each scenario entry
// carries the protocols it exercises; Protocols lists every name the run
// endpoint accepts.
type scenariosResponse struct {
	Scenarios []scenario.Scenario `json:"scenarios"`
	Scales    []string            `json:"scales"`
	Protocols []string            `json:"protocols"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, scenariosResponse{
		Scenarios: s.reg.All(),
		Scales:    scenario.ScaleNames(),
		Protocols: protocol.Names(),
	})
}

// protocolsResponse is the GET /v1/protocols payload: every registered
// broadcast protocol with its knob documentation.
type protocolsResponse struct {
	Protocols []protocol.Info `json:"protocols"`
}

func (s *Server) handleProtocols(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, protocolsResponse{Protocols: protocol.Infos()})
}

func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	sc, err := s.reg.ByID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, sc)
}

// StatsSchemaVersion is the statsResponse schema generation; it bumps
// when a versioned key changes shape, never when one is added.
const StatsSchemaVersion = 2

// statsResponse is the GET /v1/stats payload. New stat families land
// under versioned keys (store_v1, flight_v1, limits_v1) so their shapes
// can evolve by adding a _v2 sibling instead of mutating in place; the
// unversioned cache key is the pre-store memory-tier snapshot, kept for
// existing consumers.
type statsResponse struct {
	SchemaVersion int     `json:"schema_version"`
	UptimeS       float64 `json:"uptime_s"`
	Runs          uint64  `json:"runs"`
	PointsServed  uint64  `json:"points_served"`
	// Cache is the memory tier's counters — the original stats shape.
	// Zero when the server runs on an injected Results store with no
	// visible memory tier.
	Cache    cache.Stats `json:"cache"`
	StoreV1  store.Stats `json:"store_v1"`
	FlightV1 flightStats `json:"flight_v1"`
	LimitsV1 limitStats  `json:"limits_v1"`
}

// flightStats snapshots the singleflight layer.
type flightStats struct {
	// Computes counts simulations actually run (store misses that led).
	Computes uint64 `json:"computes"`
	// Joins counts requests that shared another caller's computation.
	Joins uint64 `json:"joins"`
	// Active is the number of point computations running right now.
	Active int64 `json:"active"`
}

func (s *Server) flightStats() flightStats {
	return flightStats{
		Computes: s.flight.Computes(),
		Joins:    s.flight.Joins(),
		Active:   s.flight.Active(),
	}
}

func (s *Server) cacheStats() cache.Stats {
	if s.memStats == nil {
		return cache.Stats{}
	}
	return s.memStats()
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		SchemaVersion: StatsSchemaVersion,
		UptimeS:       time.Since(s.start).Seconds(),
		Runs:          s.runs.Load(),
		PointsServed:  s.pointsServed.Load(),
		Cache:         s.cacheStats(),
		StoreV1:       s.results.Stats(),
		FlightV1:      s.flightStats(),
		LimitsV1:      s.limitStats(),
	})
}

// RunRequest is the POST /v1/run body.
type RunRequest struct {
	// Experiment selects one scenario ID or "all".
	Experiment string `json:"experiment"`
	// Scale names the scale preset ("quick", "paper", "bench", "large").
	Scale string `json:"scale"`
	// Seed is the root random seed; 0 means the preset default.
	Seed uint64 `json:"seed"`
	// Workers sizes the sweep pool, clamped to the server's maximum;
	// <= 0 selects the maximum.
	Workers int `json:"workers"`
	// Protocol selects the broadcast protocol for network scenarios;
	// empty means PBBF. See GET /v1/protocols.
	Protocol string `json:"protocol,omitempty"`
	// EnergyJ gives every node of a network scenario a finite battery with
	// this mean initial capacity in joules; 0 (the default) keeps the
	// paper's infinite battery.
	EnergyJ float64 `json:"energy_j,omitempty"`
	// HarvestW recharges finite batteries at a constant per-node rate in
	// watts (requires energy_j > 0).
	HarvestW float64 `json:"harvest_w,omitempty"`
}

// Stream line types. Every NDJSON line carries "type" so clients can
// dispatch without peeking at other fields.
type runHeader struct {
	Type       string  `json:"type"` // "run"
	Experiment string  `json:"experiment"`
	Scale      string  `json:"scale"`
	Seed       uint64  `json:"seed"`
	Protocol   string  `json:"protocol,omitempty"`
	EnergyJ    float64 `json:"energy_j,omitempty"`
	HarvestW   float64 `json:"harvest_w,omitempty"`
	Workers    int     `json:"workers"`
	Scenarios  int     `json:"scenarios"`
	Jobs       int     `json:"jobs"`
}

type pointLine struct {
	Type     string `json:"type"` // "point"
	Scenario string `json:"scenario"`
	scenario.PointOutput
	Cached bool `json:"cached"`
}

type tableLine struct {
	Type     string       `json:"type"` // "table"
	Scenario string       `json:"scenario"`
	Table    *stats.Table `json:"table"`
}

type doneLine struct {
	Type         string      `json:"type"` // "done"
	Jobs         int         `json:"jobs"`
	CachedPoints int         `json:"cached_points"`
	WallMS       float64     `json:"wall_ms"`
	Cache        cache.Stats `json:"cache"`
	Store        store.Stats `json:"store_v1"`
}

type errorLine struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admitRun(w, r)
	if !ok {
		return
	}
	defer release()
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if req.Experiment == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing experiment (scenario id or \"all\")"))
		return
	}
	scale, err := scenario.ByName(req.Scale)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Seed != 0 {
		scale.Seed = req.Seed
	}
	if req.Protocol != "" {
		sp, err := protocol.SpecFor(req.Protocol)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		scale.Protocol = sp.Canonical()
	}
	scale.EnergyJ = req.EnergyJ
	scale.HarvestW = req.HarvestW
	if err := scale.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	workers := req.Workers
	if workers <= 0 || workers > s.maxWorkers {
		workers = s.maxWorkers
	}

	var selected []scenario.Scenario
	if req.Experiment == "all" {
		selected = s.reg.All()
	} else {
		sc, err := s.reg.ByID(req.Experiment)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		selected = []scenario.Scenario{sc}
	}

	// Count the run's jobs up front so the stream header states the total
	// before any point lands. Enumeration is cheap (no simulation); a
	// failure here is reported as a regular status code, not mid-stream.
	jobs := 0
	for _, sc := range selected {
		if sc.TableFn != nil {
			jobs++
			continue
		}
		pts, err := sc.Points(scale)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("%s: %w", sc.ID, err))
			return
		}
		jobs += len(pts)
	}

	s.runs.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	writeLine := func(v any) {
		enc.Encode(v) //nolint:errcheck // a dead client surfaces via ctx
		rc.Flush()    //nolint:errcheck
	}
	writeLine(runHeader{
		Type: "run", Experiment: req.Experiment, Scale: req.Scale,
		Seed: scale.Seed, Protocol: scale.Protocol,
		EnergyJ: scale.EnergyJ, HarvestW: scale.HarvestW,
		Workers: workers, Scenarios: len(selected), Jobs: jobs,
	})

	// Stream results in deterministic enumeration order: OnPoint delivers
	// completion order, the reorder buffer holds early finishers until
	// their predecessors land. OnPoint calls are serialized by the engine,
	// so the buffer needs no locking.
	cachedPoints := 0
	next := 0
	pending := make(map[int]any)
	emit := func(ev scenario.PointEvent) {
		var line any
		if ev.Point != nil {
			line = pointLine{Type: "point", Scenario: ev.ScenarioID, PointOutput: *ev.Point, Cached: ev.Cached}
		} else {
			line = tableLine{Type: "table", Scenario: ev.ScenarioID, Table: ev.Table}
		}
		pending[ev.Index] = line
		if ev.Cached {
			cachedPoints++
		}
		s.pointsServed.Add(1)
		for {
			line, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			next++
			writeLine(line)
		}
	}

	start := time.Now()
	_, err = scenario.RunAllCtx(r.Context(), selected, scale, scenario.RunOptions{
		Workers: workers,
		Intercept: func(sc scenario.Scenario, pt scenario.Point, compute func() (scenario.Result, error)) (scenario.Result, bool, error) {
			return s.flight.Do(scenario.PointKey(sc.ID, scale, pt), compute)
		},
		OnPoint: emit,
	})
	if err != nil {
		// The stream already committed status 200; the error travels as
		// the final NDJSON line instead.
		writeLine(errorLine{Type: "error", Error: err.Error()})
		return
	}
	writeLine(doneLine{
		Type: "done", Jobs: jobs, CachedPoints: cachedPoints,
		WallMS: float64(time.Since(start).Microseconds()) / 1000,
		Cache:  s.cacheStats(),
		Store:  s.results.Stats(),
	})
}

// healthResponse is the GET /healthz payload — the liveness/readiness
// probe for load balancers and distributed-sweep workers.
type healthResponse struct {
	Status    string  `json:"status"`
	UptimeS   float64 `json:"uptime_s"`
	Scenarios int     `json:"scenarios"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:    "ok",
		UptimeS:   time.Since(s.start).Seconds(),
		Scenarios: s.reg.Len(),
	})
}

// coordinator gates the distributed-sweep endpoints: plain `pbbf serve`
// has no coordinator and answers 503, telling workers they dialed a
// server that is not running a distributed sweep.
func (s *Server) coordinator(w http.ResponseWriter) (*dist.Coordinator, bool) {
	if s.coord == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no distributed sweep active on this server"))
		return nil, false
	}
	return s.coord, true
}

// decodeJSON parses a request body strictly, answering 400 on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	return true
}

// writeDistError maps the coordinator's sentinel errors to status codes:
// an unknown worker must re-register (404), a quarantined worker must
// exit (403).
func writeDistError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, dist.ErrUnknownWorker):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, dist.ErrQuarantined):
		writeError(w, http.StatusForbidden, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	coord, ok := s.coordinator(w)
	if !ok {
		return
	}
	var req dist.RegisterRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, coord.Register(req.Name))
}

func (s *Server) handleWorkersList(w http.ResponseWriter, _ *http.Request) {
	coord, ok := s.coordinator(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, coord.Snapshot())
}

func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	coord, ok := s.coordinator(w)
	if !ok {
		return
	}
	if err := coord.Heartbeat(r.PathValue("id")); err != nil {
		writeDistError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleWorkLease(w http.ResponseWriter, r *http.Request) {
	coord, ok := s.coordinator(w)
	if !ok {
		return
	}
	var req dist.LeaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := coord.Lease(req)
	if err != nil {
		writeDistError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkResult(w http.ResponseWriter, r *http.Request) {
	coord, ok := s.coordinator(w)
	if !ok {
		return
	}
	var req dist.ResultRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := coord.Result(req)
	if err != nil {
		writeDistError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// errorResponse is the JSON error body of every non-200 response.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
