package phy

import (
	"testing"
	"time"

	"pbbf/internal/rng"
	"pbbf/internal/sim"
	"pbbf/internal/topo"
)

func TestSetLossValidation(t *testing.T) {
	g := topo.MustGrid(2, 1)
	c := NewChannel(nil, g)
	if err := c.SetLoss(-0.1, rng.New(1)); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := c.SetLoss(1, rng.New(1)); err == nil {
		t.Fatal("rate 1 accepted")
	}
	if err := c.SetLoss(0.5, nil); err == nil {
		t.Fatal("nil rng accepted with positive rate")
	}
	if err := c.SetLoss(0, nil); err != nil {
		t.Fatalf("disabling loss rejected: %v", err)
	}
	if err := c.SetLoss(0.5, rng.New(1)); err != nil {
		t.Fatal(err)
	}
}

func TestLossDropsExpectedFraction(t *testing.T) {
	g := topo.MustGrid(2, 1)
	k := sim.NewKernel()
	c := NewChannel(k, g)
	got := 0
	c.Register(0, &stubReceiver{})
	c.Register(1, &funcReceiver{fn: func(Frame) { got++ }})
	if err := c.SetLoss(0.4, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	const sends = 2000
	for i := 0; i < sends; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		k.ScheduleAt(at, func() {
			if err := c.Transmit(Frame{Sender: 0, Airtime: time.Millisecond}, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	frac := float64(got) / sends
	if frac < 0.55 || frac > 0.65 {
		t.Fatalf("delivered fraction %v, want ≈0.6 at 40%% loss", frac)
	}
	if c.Faded() != sends-got {
		t.Fatalf("faded count %d, want %d", c.Faded(), sends-got)
	}
}

func TestZeroLossDeliversEverything(t *testing.T) {
	g := topo.MustGrid(2, 1)
	k := sim.NewKernel()
	c := NewChannel(k, g)
	got := 0
	c.Register(0, &stubReceiver{})
	c.Register(1, &funcReceiver{fn: func(Frame) { got++ }})
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		k.ScheduleAt(at, func() {
			if err := c.Transmit(Frame{Sender: 0, Airtime: time.Millisecond}, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got != 100 || c.Faded() != 0 {
		t.Fatalf("got=%d faded=%d", got, c.Faded())
	}
}

// funcReceiver adapts a function to the Receiver interface.
type funcReceiver struct {
	fn func(Frame)
}

func (f *funcReceiver) Deliver(fr Frame) {
	f.fn(fr)
}
