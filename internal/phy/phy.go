// Package phy models the wireless channel for the fine-grained simulator
// (Section 5): unit-disk propagation over a topology, carrier sensing, and
// per-receiver collision detection.
//
// The model matches the abstraction level of the ns-2 802.11 stack the
// paper used: a frame occupies the channel at every neighbor of the sender
// for its full on-air time; a receiver that hears two temporally
// overlapping frames decodes neither (no capture effect); a receiver that
// is not listening when a frame starts never decodes it. Propagation delay
// is negligible at sensor ranges and is modelled as zero.
package phy

import (
	"fmt"
	"time"

	"pbbf/internal/rng"
	"pbbf/internal/sim"
	"pbbf/internal/topo"
	"pbbf/internal/trace"
)

// Frame is one on-air transmission. Payload is opaque to the channel.
type Frame struct {
	// Sender is the transmitting node.
	Sender topo.NodeID
	// Payload is the MAC frame content.
	Payload any
	// Airtime is the frame's on-air duration.
	Airtime time.Duration
}

// Receiver is the per-node upcall surface the MAC registers with the
// channel. Radio state (listening or not) lives in the channel itself —
// the MAC reports sleep/wake transitions via SetListening — so the
// per-neighbor fan-out on every frame reads a flat bool slice instead of
// calling back through an interface.
type Receiver interface {
	// Deliver hands a successfully decoded frame to the node.
	Deliver(f Frame)
}

// reception tracks one in-progress decode at a receiver. Records live
// inline in the channel's per-node slice (active marks occupancy) so
// starting a decode allocates nothing.
type reception struct {
	frame     Frame
	active    bool
	corrupted bool
}

// txEnd is the pooled end-of-airtime record for one transmission. Its
// fire closure is bound once when the record is created, so concurrent
// transmissions each reuse a pooled record and a pooled event slot with no
// per-transmit allocation.
type txEnd struct {
	c         *Channel
	frame     Frame
	neighbors []topo.NodeID
	onDone    func()
	fire      func()
}

// Channel connects the nodes of a topology. Create with NewChannel, then
// Register a Receiver for every node before any Transmit call.
type Channel struct {
	kernel    *sim.Kernel
	topo      topo.Topology
	receivers []Receiver
	// busy counts in-range active transmissions per node (carrier sense).
	busy []int
	// rx is the frame currently being decoded at each node, if any.
	rx []reception
	// transmitting marks nodes whose own radio is in TX mode.
	transmitting []bool
	// listening marks nodes whose radio is awake (set by the MAC); a node
	// decodes only while listening and not transmitting.
	listening []bool
	// endPool recycles txEnd records across transmissions.
	endPool []*txEnd

	// lossRate drops otherwise-successful receptions independently with
	// this probability (fading/noise injection; 0 = ideal channel).
	lossRate float64
	lossRNG  *rng.Source

	// linkLoss, when non-nil, additionally drops receptions with a
	// persistent per-link probability (link quality diversity; see
	// LinkLoss).
	linkLoss *LinkLoss
	linkRNG  *rng.Source

	// trace, when non-nil, receives reception-drop events (collisions,
	// fading) — the channel-side slice of the simulation event stream.
	trace trace.Sink

	// Stats counters (whole-network, for diagnostics and tests).
	started   int
	delivered int
	collided  int
	faded     int
	linkFaded int
}

// NewChannel returns a channel over the given topology.
func NewChannel(kernel *sim.Kernel, t topo.Topology) *Channel {
	c := &Channel{kernel: kernel}
	c.Reset(t)
	return c
}

// Reset rebinds the channel to a (possibly different) topology and clears
// every per-run state: receivers, carrier-sense counts, in-progress
// decodes, radio states, loss injection, and counters. The per-node slices
// and the txEnd record pool are kept, so a pooled channel reruns without
// per-run allocation once its slices have grown to the largest topology
// seen. A reset channel is indistinguishable from a fresh NewChannel.
func (c *Channel) Reset(t topo.Topology) {
	c.topo = t
	n := t.N()
	if cap(c.receivers) < n {
		c.receivers = make([]Receiver, n)
		c.busy = make([]int, n)
		c.rx = make([]reception, n)
		c.transmitting = make([]bool, n)
		c.listening = make([]bool, n)
	} else {
		c.receivers = c.receivers[:n]
		c.busy = c.busy[:n]
		c.rx = c.rx[:n]
		c.transmitting = c.transmitting[:n]
		c.listening = c.listening[:n]
	}
	clear(c.receivers)
	clear(c.busy)
	clear(c.rx)
	clear(c.transmitting)
	clear(c.listening)
	c.lossRate, c.lossRNG = 0, nil
	c.linkLoss, c.linkRNG = nil, nil
	c.trace = nil
	c.started, c.delivered, c.collided, c.faded, c.linkFaded = 0, 0, 0, 0, 0
}

// SetTrace installs the channel's event sink (nil disables tracing).
// Recording is pure observation; traced and untraced runs are identical.
func (c *Channel) SetTrace(s trace.Sink) { c.trace = s }

// Register installs the receiver upcall for a node. Registered nodes start
// listening (simulations begin with every radio awake); the MAC flips the
// state with SetListening as nodes sleep and wake.
func (c *Channel) Register(id topo.NodeID, r Receiver) {
	c.receivers[id] = r
	c.listening[id] = true
}

// SetListening records whether the node's radio is awake. A node decodes a
// frame only if it is listening — and not transmitting — for the frame's
// entire airtime.
func (c *Channel) SetListening(id topo.NodeID, on bool) {
	c.listening[id] = on
}

// Listening reports the node's radio state as the channel sees it: awake
// and not mid-transmission.
func (c *Channel) Listening(id topo.NodeID) bool {
	return c.listening[id] && !c.transmitting[id]
}

// canHear reports whether the node can decode right now.
func (c *Channel) canHear(nb topo.NodeID) bool {
	return c.listening[nb] && !c.transmitting[nb] && c.receivers[nb] != nil
}

// CarrierBusy reports whether node senses energy on the channel (an
// in-range transmission is in progress). A node's own transmission also
// counts as busy.
func (c *Channel) CarrierBusy(id topo.NodeID) bool {
	return c.busy[id] > 0 || c.transmitting[id]
}

// Transmitting reports whether the node's radio is currently in TX mode.
func (c *Channel) Transmitting(id topo.NodeID) bool { return c.transmitting[id] }

// SetLoss enables independent per-reception frame loss with the given
// probability (failure injection for robustness experiments). rate must be
// in [0, 1); r must be non-nil when rate > 0.
func (c *Channel) SetLoss(rate float64, r *rng.Source) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("phy: loss rate %v outside [0,1)", rate)
	}
	if rate > 0 && r == nil {
		return fmt.Errorf("phy: loss injection requires a random source")
	}
	c.lossRate = rate
	c.lossRNG = r
	return nil
}

// Stats returns cumulative counts of frames started, frames delivered
// (across all receivers), and receptions lost to collisions.
func (c *Channel) Stats() (started, delivered, collided int) {
	return c.started, c.delivered, c.collided
}

// Faded returns how many receptions were dropped by loss injection.
func (c *Channel) Faded() int { return c.faded }

// LinkFaded returns how many receptions were dropped by the per-link loss
// table.
func (c *Channel) LinkFaded() int { return c.linkFaded }

// Transmit puts f on the air now. onDone, if non-nil, runs when the frame's
// airtime ends (after deliveries). Returns an error if the sender is
// already transmitting — the MAC must serialize its own transmissions.
func (c *Channel) Transmit(f Frame, onDone func()) error {
	if f.Airtime <= 0 {
		return fmt.Errorf("phy: airtime %v must be positive", f.Airtime)
	}
	if c.transmitting[f.Sender] {
		return fmt.Errorf("phy: node %d already transmitting", f.Sender)
	}
	c.started++
	c.transmitting[f.Sender] = true
	neighbors := c.topo.Neighbors(f.Sender)
	for _, nb := range neighbors {
		c.busy[nb]++
		switch {
		case c.rx[nb].active:
			// Overlap with an in-progress decode: both are lost.
			c.rx[nb].corrupted = true
		case c.busy[nb] == 1 && c.canHear(nb):
			c.rx[nb] = reception{frame: f, active: true}
		default:
			// Channel already busy or radio not listening: frame lost at
			// this receiver. Nothing to record; busy bookkeeping suffices.
		}
	}
	end := c.acquireEnd()
	end.frame = f
	end.neighbors = neighbors
	end.onDone = onDone
	c.kernel.Schedule(f.Airtime, end.fire)
	return nil
}

// acquireEnd takes a txEnd record from the pool, creating one (with its
// bound fire closure) only when the pool is empty.
func (c *Channel) acquireEnd() *txEnd {
	if n := len(c.endPool); n > 0 {
		end := c.endPool[n-1]
		c.endPool = c.endPool[:n-1]
		return end
	}
	end := &txEnd{c: c}
	end.fire = end.run
	return end
}

// run completes one transmission: clears carrier sense, resolves every
// in-progress decode of this frame, and recycles the record.
func (end *txEnd) run() {
	c, f := end.c, end.frame
	c.transmitting[f.Sender] = false
	for _, nb := range end.neighbors {
		c.busy[nb]--
		r := &c.rx[nb]
		if !r.active || r.frame.Sender != f.Sender {
			continue
		}
		corrupted := r.corrupted
		*r = reception{}
		if corrupted {
			c.collided++
			c.traceDrop(trace.KindDropCollision, nb, f.Sender)
			continue
		}
		if c.canHear(nb) {
			if c.lossRate > 0 && c.lossRNG.Bool(c.lossRate) {
				c.faded++
				c.traceDrop(trace.KindDropFade, nb, f.Sender)
				continue
			}
			if c.linkLoss != nil {
				if rate := c.linkLoss.Rate(f.Sender, nb); rate > 0 && c.linkRNG.Bool(rate) {
					c.linkFaded++
					c.traceDrop(trace.KindDropLinkFade, nb, f.Sender)
					continue
				}
			}
			c.delivered++
			c.receivers[nb].Deliver(f)
		}
	}
	onDone := end.onDone
	end.frame = Frame{}
	end.neighbors = nil
	end.onDone = nil
	c.endPool = append(c.endPool, end)
	if onDone != nil {
		onDone()
	}
}

// traceDrop records one lost reception, guarding the disabled path down
// to a single branch.
func (c *Channel) traceDrop(kind trace.Kind, nb, sender topo.NodeID) {
	if c.trace == nil {
		return
	}
	c.trace.Record(trace.Event{T: c.kernel.Now(), Kind: kind, Node: int32(nb), Peer: int32(sender)})
}
