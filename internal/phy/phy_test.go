package phy

import (
	"testing"
	"time"

	"pbbf/internal/sim"
	"pbbf/internal/topo"
)

// stubReceiver records deliveries; radio state lives in the channel and is
// toggled with Channel.SetListening.
type stubReceiver struct {
	got []Frame
}

func (s *stubReceiver) Deliver(f Frame) { s.got = append(s.got, f) }

// line3 builds a 3-node line topology 0-1-2 (grid 3×1).
func line3(t *testing.T) (*sim.Kernel, *Channel, []*stubReceiver) {
	t.Helper()
	g := topo.MustGrid(3, 1)
	k := sim.NewKernel()
	c := NewChannel(k, g)
	rx := make([]*stubReceiver, 3)
	for i := range rx {
		rx[i] = &stubReceiver{}
		c.Register(topo.NodeID(i), rx[i])
	}
	return k, c, rx
}

func TestDeliveryToNeighbors(t *testing.T) {
	k, c, rx := line3(t)
	err := c.Transmit(Frame{Sender: 1, Payload: "hello", Airtime: 10 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Node 1's neighbors are 0 and 2.
	for _, id := range []int{0, 2} {
		if len(rx[id].got) != 1 || rx[id].got[0].Payload != "hello" {
			t.Fatalf("node %d got %v", id, rx[id].got)
		}
	}
	if len(rx[1].got) != 0 {
		t.Fatal("sender received its own frame")
	}
}

func TestNoDeliveryOutOfRange(t *testing.T) {
	k, c, rx := line3(t)
	if err := c.Transmit(Frame{Sender: 0, Airtime: time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(rx[2].got) != 0 {
		t.Fatal("node 2 heard a 2-hop transmission")
	}
	if len(rx[1].got) != 1 {
		t.Fatal("node 1 missed an in-range transmission")
	}
}

func TestSleepingReceiverMissesFrame(t *testing.T) {
	k, c, rx := line3(t)
	c.SetListening(0, false)
	if err := c.Transmit(Frame{Sender: 1, Airtime: time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(rx[0].got) != 0 {
		t.Fatal("sleeping node received a frame")
	}
	if len(rx[2].got) != 1 {
		t.Fatal("awake node missed the frame")
	}
}

func TestWakeMidFrameStillMisses(t *testing.T) {
	k, c, rx := line3(t)
	c.SetListening(0, false)
	if err := c.Transmit(Frame{Sender: 1, Airtime: 10 * time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	k.Schedule(5*time.Millisecond, func() { c.SetListening(0, true) })
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(rx[0].got) != 0 {
		t.Fatal("node that woke mid-frame decoded it")
	}
}

func TestSleepMidFrameLosesFrame(t *testing.T) {
	k, c, rx := line3(t)
	if err := c.Transmit(Frame{Sender: 1, Airtime: 10 * time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	k.Schedule(5*time.Millisecond, func() { c.SetListening(0, false) })
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(rx[0].got) != 0 {
		t.Fatal("node that slept mid-frame decoded it")
	}
}

func TestCollisionAtSharedReceiver(t *testing.T) {
	// 0 and 2 both transmit; node 1 hears both and decodes neither.
	k, c, rx := line3(t)
	if err := c.Transmit(Frame{Sender: 0, Airtime: 10 * time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	k.Schedule(2*time.Millisecond, func() {
		if err := c.Transmit(Frame{Sender: 2, Airtime: 10 * time.Millisecond}, nil); err != nil {
			t.Fatal(err)
		}
	})
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(rx[1].got) != 0 {
		t.Fatalf("node 1 decoded despite collision: %v", rx[1].got)
	}
	_, _, collided := c.Stats()
	if collided == 0 {
		t.Fatal("collision not counted")
	}
}

func TestHiddenTerminal(t *testing.T) {
	// Line of 5: nodes 0 and 2 are hidden from each other w.r.t. node 1.
	g := topo.MustGrid(5, 1)
	k := sim.NewKernel()
	c := NewChannel(k, g)
	rx := make([]*stubReceiver, 5)
	for i := range rx {
		rx[i] = &stubReceiver{}
		c.Register(topo.NodeID(i), rx[i])
	}
	if err := c.Transmit(Frame{Sender: 0, Airtime: 10 * time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	k.Schedule(time.Millisecond, func() {
		// Node 2 senses idle (node 0 is out of its range) and transmits,
		// colliding at node 1 but delivering cleanly to node 3.
		if c.CarrierBusy(2) {
			t.Fatal("node 2 should not sense node 0")
		}
		if err := c.Transmit(Frame{Sender: 2, Airtime: 10 * time.Millisecond}, nil); err != nil {
			t.Fatal(err)
		}
	})
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(rx[1].got) != 0 {
		t.Fatal("hidden-terminal collision not detected at node 1")
	}
	if len(rx[3].got) != 1 {
		t.Fatal("node 3 should have decoded node 2's frame")
	}
}

func TestCarrierBusyDuringTransmission(t *testing.T) {
	k, c, _ := line3(t)
	if err := c.Transmit(Frame{Sender: 0, Airtime: 10 * time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	k.Schedule(5*time.Millisecond, func() {
		if !c.CarrierBusy(1) {
			t.Fatal("neighbor does not sense ongoing transmission")
		}
		if !c.CarrierBusy(0) {
			t.Fatal("sender does not sense its own transmission")
		}
	})
	k.Schedule(15*time.Millisecond, func() {
		if c.CarrierBusy(1) || c.CarrierBusy(0) {
			t.Fatal("carrier still busy after airtime")
		}
	})
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleTransmitRejected(t *testing.T) {
	_, c, _ := line3(t)
	if err := c.Transmit(Frame{Sender: 0, Airtime: 10 * time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Transmit(Frame{Sender: 0, Airtime: time.Millisecond}, nil); err == nil {
		t.Fatal("concurrent transmit from one node accepted")
	}
}

func TestZeroAirtimeRejected(t *testing.T) {
	_, c, _ := line3(t)
	if err := c.Transmit(Frame{Sender: 0, Airtime: 0}, nil); err == nil {
		t.Fatal("zero airtime accepted")
	}
}

func TestOnDoneRunsAfterDeliveries(t *testing.T) {
	k, c, rx := line3(t)
	doneSeen := false
	err := c.Transmit(Frame{Sender: 1, Airtime: time.Millisecond}, func() {
		doneSeen = true
		if len(rx[0].got) != 1 {
			t.Fatal("onDone ran before delivery")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !doneSeen {
		t.Fatal("onDone never ran")
	}
}

func TestBackToBackFramesBothDeliver(t *testing.T) {
	k, c, rx := line3(t)
	if err := c.Transmit(Frame{Sender: 1, Payload: 1, Airtime: 5 * time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	k.Schedule(6*time.Millisecond, func() {
		if err := c.Transmit(Frame{Sender: 1, Payload: 2, Airtime: 5 * time.Millisecond}, nil); err != nil {
			t.Fatal(err)
		}
	})
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(rx[0].got) != 2 {
		t.Fatalf("node 0 got %d frames, want 2", len(rx[0].got))
	}
	started, delivered, collided := c.Stats()
	if started != 2 || collided != 0 {
		t.Fatalf("stats: started=%d collided=%d", started, collided)
	}
	if delivered != 4 { // two frames × two neighbors
		t.Fatalf("delivered = %d, want 4", delivered)
	}
}

func TestTransmittingNodeCannotReceive(t *testing.T) {
	// Nodes 0 and 1 transmit simultaneously: neither decodes the other.
	k, c, rx := line3(t)
	if err := c.Transmit(Frame{Sender: 0, Airtime: 10 * time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	// The channel itself knows node 1 is transmitting, so no stub state is
	// needed: a transmitting radio never decodes.
	if err := c.Transmit(Frame{Sender: 1, Airtime: 10 * time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(rx[1].got) != 0 {
		t.Fatal("transmitting node decoded a frame")
	}
}
