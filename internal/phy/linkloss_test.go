package phy

import (
	"testing"
	"time"

	"pbbf/internal/rng"
	"pbbf/internal/sim"
	"pbbf/internal/topo"
)

func TestLinkLossValidation(t *testing.T) {
	g := topo.MustGrid(2, 2)
	if _, err := NewUniformLinkLoss(g, -0.1, rng.New(1)); err == nil {
		t.Fatal("negative mean accepted")
	}
	if _, err := NewUniformLinkLoss(g, 0.5, rng.New(1)); err == nil {
		t.Fatal("mean 0.5 accepted (rates could reach 1)")
	}
	if _, err := NewUniformLinkLoss(g, 0.2, nil); err == nil {
		t.Fatal("nil rng accepted with positive mean")
	}
	if _, err := NewUniformLinkLoss(g, 0, nil); err != nil {
		t.Fatal("zero mean should not need a random source")
	}

	c := NewChannel(nil, g)
	ll, err := NewUniformLinkLoss(g, 0.2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetLinkLoss(ll, nil); err == nil {
		t.Fatal("nil rng accepted with lossy table")
	}
	if err := c.SetLinkLoss(ll, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	empty, err := NewUniformLinkLoss(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetLinkLoss(empty, nil); err != nil {
		t.Fatalf("lossless table rejected: %v", err)
	}
}

func TestLinkLossRatesSymmetricAndBounded(t *testing.T) {
	g := topo.MustGrid(10, 10)
	const mean = 0.2
	ll, err := NewUniformLinkLoss(g, mean, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if ll.Links() != topo.EdgeCount(g) {
		t.Fatalf("table has %d links, grid has %d edges", ll.Links(), topo.EdgeCount(g))
	}
	var sum float64
	var count int
	for id := 0; id < g.N(); id++ {
		a := topo.NodeID(id)
		for _, b := range g.Neighbors(a) {
			r := ll.Rate(a, b)
			if r != ll.Rate(b, a) {
				t.Fatalf("asymmetric rate for link %d-%d", a, b)
			}
			if r < 0 || r >= 2*mean {
				t.Fatalf("rate %v outside [0, %v)", r, 2*mean)
			}
			if b > a {
				sum += r
				count++
			}
		}
	}
	if avg := sum / float64(count); avg < 0.17 || avg > 0.23 {
		t.Fatalf("empirical mean rate %v, want ≈%v", avg, mean)
	}
	// Unknown pairs carry no loss.
	if ll.Rate(0, topo.NodeID(g.N()-1)) != 0 {
		t.Fatal("non-adjacent pair has a rate")
	}
}

func TestLinkLossDeterministic(t *testing.T) {
	g := topo.MustGrid(8, 8)
	a, err := NewUniformLinkLoss(g, 0.3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewUniformLinkLoss(g, 0.3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < g.N(); id++ {
		n := topo.NodeID(id)
		for _, nb := range g.Neighbors(n) {
			if a.Rate(n, nb) != b.Rate(n, nb) {
				t.Fatalf("same seed drew different rate for %d-%d", n, nb)
			}
		}
	}
}

// TestLinkLossDropsExpectedFraction drives one 2-node link whose drawn
// rate is known and checks the delivered fraction and the LinkFaded
// counter, mirroring the SetLoss test.
func TestLinkLossDropsExpectedFraction(t *testing.T) {
	g := topo.MustGrid(2, 1)
	k := sim.NewKernel()
	c := NewChannel(k, g)
	got := 0
	c.Register(0, &stubReceiver{})
	c.Register(1, &funcReceiver{fn: func(Frame) { got++ }})
	ll, err := NewUniformLinkLoss(g, 0.3, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	rate := ll.Rate(0, 1)
	if rate <= 0 || rate >= 0.6 {
		t.Fatalf("drawn rate %v outside (0, 0.6)", rate)
	}
	if err := c.SetLinkLoss(ll, rng.New(12)); err != nil {
		t.Fatal(err)
	}
	const sends = 3000
	for i := 0; i < sends; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		k.ScheduleAt(at, func() {
			if err := c.Transmit(Frame{Sender: 0, Airtime: time.Millisecond}, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := 1 - rate
	frac := float64(got) / sends
	if frac < want-0.05 || frac > want+0.05 {
		t.Fatalf("delivered fraction %v, want ≈%v at link rate %v", frac, want, rate)
	}
	if c.LinkFaded() != sends-got {
		t.Fatalf("linkFaded=%d, want %d", c.LinkFaded(), sends-got)
	}
	if c.Faded() != 0 {
		t.Fatalf("iid faded counter moved (%d) with only link loss configured", c.Faded())
	}
}
