package phy

import (
	"fmt"

	"pbbf/internal/rng"
	"pbbf/internal/topo"
)

// LinkLoss assigns every undirected link of a topology its own persistent
// frame-loss probability, drawn once from a seeded distribution. Unlike the
// channel-wide SetLoss rate — which models iid fading that every reception
// samples identically — a LinkLoss table models *link quality diversity*:
// some links are permanently bad (foliage, multipath, marginal range) while
// others are clean, so a broadcast's fate depends on which links it happens
// to traverse. The table is symmetric (loss is a property of the link, not
// the direction) and immutable after construction, so sharing one table
// across a run is race-free and replayable.
type LinkLoss struct {
	rates map[uint64]float64
	mean  float64
}

// linkKey packs an undirected node pair into one map key.
func linkKey(a, b topo.NodeID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(uint32(b))
}

// NewUniformLinkLoss draws a loss rate for every edge of t uniformly in
// [0, 2·mean), so the configured mean is the expected per-link rate and
// individual links span clean to nearly-twice-mean. mean must be in
// [0, 0.5) so every drawn rate stays below 1. Edges are visited in
// ascending (node, neighbor) order, making the table a pure function of
// the topology and the random source.
func NewUniformLinkLoss(t topo.Topology, mean float64, r *rng.Source) (*LinkLoss, error) {
	ll := &LinkLoss{}
	if err := ll.FillUniform(t, mean, r); err != nil {
		return nil, err
	}
	return ll, nil
}

// FillUniform redraws the table in place with NewUniformLinkLoss's exact
// construction — same edge order, same draws — reusing the rate map's
// storage. Pools call it once per run; a filled table is then treated as
// immutable for the run, so sharing it stays race-free and replayable.
func (ll *LinkLoss) FillUniform(t topo.Topology, mean float64, r *rng.Source) error {
	if mean < 0 || mean >= 0.5 {
		return fmt.Errorf("phy: mean link loss %v outside [0,0.5)", mean)
	}
	if mean > 0 && r == nil {
		return fmt.Errorf("phy: link loss requires a random source")
	}
	if ll.rates == nil {
		ll.rates = make(map[uint64]float64)
	} else {
		clear(ll.rates)
	}
	ll.mean = mean
	if mean == 0 {
		return nil
	}
	for id := 0; id < t.N(); id++ {
		a := topo.NodeID(id)
		for _, b := range t.Neighbors(a) {
			if b < a {
				continue // drawn when the lower endpoint was visited
			}
			ll.rates[linkKey(a, b)] = r.Float64() * 2 * mean
		}
	}
	return nil
}

// Rate returns the link's loss probability (0 for unknown pairs).
func (ll *LinkLoss) Rate(a, b topo.NodeID) float64 {
	return ll.rates[linkKey(a, b)]
}

// Mean returns the configured mean rate.
func (ll *LinkLoss) Mean() float64 { return ll.mean }

// Links returns how many links carry a drawn rate.
func (ll *LinkLoss) Links() int { return len(ll.rates) }

// SetLinkLoss installs a per-link loss table on the channel: an otherwise
// successful reception over link (sender, receiver) is independently
// dropped with the link's rate. Composes with SetLoss — the channel-wide
// rate is applied first, then the link's. r must be non-nil when ll holds
// any lossy link.
func (c *Channel) SetLinkLoss(ll *LinkLoss, r *rng.Source) error {
	if ll != nil && ll.Links() > 0 && r == nil {
		return fmt.Errorf("phy: link loss requires a random source")
	}
	c.linkLoss = ll
	c.linkRNG = r
	return nil
}
