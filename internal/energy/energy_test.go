package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"pbbf/internal/rng"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMica2Values(t *testing.T) {
	p := Mica2()
	if p.TransmitW != 0.081 {
		t.Fatalf("PTX = %v", p.TransmitW)
	}
	if p.ReceiveW != 0.030 || p.IdleW != 0.030 {
		t.Fatalf("PI = %v/%v", p.ReceiveW, p.IdleW)
	}
	if p.SleepW != 3e-6 {
		t.Fatalf("PS = %v", p.SleepW)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		Sleep:     "sleep",
		Idle:      "idle",
		Receive:   "receive",
		Transmit:  "transmit",
		State(99): "State(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestProfilePowerUnknownState(t *testing.T) {
	if got := Mica2().Power(State(0)); got != 0 {
		t.Fatalf("unknown state power = %v", got)
	}
}

func TestMeterSingleState(t *testing.T) {
	m := NewMeter(Mica2(), Idle, 0)
	got := m.EnergyAt(10 * time.Second)
	if !almostEqual(got, 0.3, 1e-9) {
		t.Fatalf("10s idle = %v J, want 0.3", got)
	}
}

func TestMeterTransitions(t *testing.T) {
	m := NewMeter(Mica2(), Idle, 0)
	m.SetState(Transmit, 1*time.Second) // 1s idle
	m.SetState(Sleep, 2*time.Second)    // 1s transmit
	m.SetState(Idle, 12*time.Second)    // 10s sleep
	got := m.EnergyAt(13 * time.Second) // 1s idle
	want := 0.030 + 0.081 + 10*3e-6 + 0.030
	if !almostEqual(got, want, 1e-9) {
		t.Fatalf("energy = %v, want %v", got, want)
	}
}

func TestMeterTimeIn(t *testing.T) {
	m := NewMeter(Mica2(), Sleep, 0)
	m.SetState(Idle, 5*time.Second)
	m.SetState(Sleep, 7*time.Second)
	m.Finish(10 * time.Second)
	if got := m.TimeIn(Sleep); got != 8*time.Second {
		t.Fatalf("sleep time = %v", got)
	}
	if got := m.TimeIn(Idle); got != 2*time.Second {
		t.Fatalf("idle time = %v", got)
	}
	if got := m.TimeIn(Transmit); got != 0 {
		t.Fatalf("transmit time = %v", got)
	}
	if got := m.TimeIn(State(42)); got != 0 {
		t.Fatalf("bogus state time = %v", got)
	}
}

func TestMeterSameStateNoOp(t *testing.T) {
	m := NewMeter(Mica2(), Idle, 0)
	m.SetState(Idle, 5*time.Second)
	got := m.EnergyAt(10 * time.Second)
	if !almostEqual(got, 0.3, 1e-9) {
		t.Fatalf("energy = %v", got)
	}
}

func TestMeterClockRegressionClamped(t *testing.T) {
	m := NewMeter(Mica2(), Idle, 10*time.Second)
	// Same-timestamp callbacks may call with an equal or (never truly
	// earlier) clamped time; energy must not go negative.
	m.SetState(Sleep, 10*time.Second)
	if got := m.EnergyAt(10 * time.Second); got != 0 {
		t.Fatalf("energy = %v, want 0", got)
	}
}

func TestDutyCycleEnergy(t *testing.T) {
	p := Mica2()
	// Table 1: Tactive=1s, Tframe=10s → 10% duty.
	got := DutyCycleEnergy(p, time.Second, 10*time.Second)
	want := 0.030*0.1 + 3e-6*0.9
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("duty cycle power = %v, want %v", got, want)
	}
	if DutyCycleEnergy(p, time.Second, 0) != 0 {
		t.Fatal("zero frame did not return 0")
	}
}

func TestDutyCycleAlwaysOn(t *testing.T) {
	p := Mica2()
	got := DutyCycleEnergy(p, 10*time.Second, 10*time.Second)
	if !almostEqual(got, p.IdleW, 1e-12) {
		t.Fatalf("always-on power = %v", got)
	}
}

// Property: total energy equals sum over states of power×time, and total
// tracked time equals the metering horizon.
func TestPropertyEnergyConservation(t *testing.T) {
	states := []State{Sleep, Idle, Receive, Transmit}
	check := func(seed uint64) bool {
		r := rng.New(seed)
		p := Mica2()
		m := NewMeter(p, Idle, 0)
		now := time.Duration(0)
		for i := 0; i < 50; i++ {
			now += time.Duration(r.Intn(5000)) * time.Millisecond
			m.SetState(states[r.Intn(len(states))], now)
		}
		now += time.Second
		m.Finish(now)
		var wantJ float64
		var total time.Duration
		for _, s := range states {
			wantJ += p.Power(s) * m.TimeIn(s).Seconds()
			total += m.TimeIn(s)
		}
		return almostEqual(m.EnergyAt(now), wantJ, 1e-9) && total == now
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy is monotone non-decreasing in time.
func TestPropertyMonotoneEnergy(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		m := NewMeter(Mica2(), Sleep, 0)
		now := time.Duration(0)
		prev := 0.0
		states := []State{Sleep, Idle, Receive, Transmit}
		for i := 0; i < 30; i++ {
			now += time.Duration(r.Intn(1000)+1) * time.Millisecond
			e := m.EnergyAt(now)
			if e < prev-1e-12 {
				return false
			}
			prev = e
			m.SetState(states[r.Intn(len(states))], now)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMeterSetState(b *testing.B) {
	m := NewMeter(Mica2(), Idle, 0)
	for i := 0; i < b.N; i++ {
		m.SetState(State(i%4+1), time.Duration(i)*time.Millisecond)
	}
}
