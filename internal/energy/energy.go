// Package energy models the sensor radio's power consumption. A Meter
// integrates power over the time a node spends in each radio state,
// reproducing the accounting behind the paper's "Joules consumed per update"
// metric with the Mica2 Mote power levels from Table 1.
package energy

import (
	"fmt"
	"math"
	"time"
)

// State is a radio power state.
type State int

// Radio power states. Receive and idle listening draw the same power on the
// Mica2 (the paper's PI covers both), but they are tracked separately so
// experiments can report an RX/idle breakdown.
const (
	Sleep State = iota + 1
	Idle
	Receive
	Transmit
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Sleep:
		return "sleep"
	case Idle:
		return "idle"
	case Receive:
		return "receive"
	case Transmit:
		return "transmit"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Profile gives the radio's power draw per state, in watts.
type Profile struct {
	TransmitW float64 // PTX
	ReceiveW  float64 // PI covers receive and idle listening
	IdleW     float64
	SleepW    float64 // PS
}

// Mica2 returns the power profile from Table 1 of the paper
// (Mica2 Mote: PTX=81 mW, PI=30 mW, PS=3 µW).
func Mica2() Profile {
	return Profile{
		TransmitW: 0.081,
		ReceiveW:  0.030,
		IdleW:     0.030,
		SleepW:    3e-6,
	}
}

// Power returns the draw in watts for the given state.
func (p Profile) Power(s State) float64 {
	switch s {
	case Sleep:
		return p.SleepW
	case Idle:
		return p.IdleW
	case Receive:
		return p.ReceiveW
	case Transmit:
		return p.TransmitW
	default:
		return 0
	}
}

// Meter integrates a single node's energy use across radio state changes.
// It is driven by the simulation clock: every state change (and final
// reading) supplies the current simulated time. A Meter with a finite
// Budget additionally tracks the remaining battery charge — drained by the
// same intervals the consumption accounting closes, recharged at the
// harvest rate, clamped at capacity — and answers depletion queries.
type Meter struct {
	profile Profile
	state   State
	since   time.Duration
	joules  float64
	inState [Transmit + 1]time.Duration

	// Battery (zero Budget = infinite, all three stay 0).
	capacityJ float64
	harvestW  float64
	level     float64
}

// New returns a meter configured by cfg — the primary constructor; the
// battery opens fully charged at Budget.CapacityJ.
func New(cfg Config) *Meter {
	return &Meter{
		profile:   cfg.Profile,
		state:     cfg.Initial,
		since:     cfg.Start,
		capacityJ: cfg.Budget.CapacityJ,
		harvestW:  cfg.Budget.HarvestW,
		level:     cfg.Budget.CapacityJ,
	}
}

// NewMeter returns an infinite-battery meter that starts in the given state
// at time start.
//
// Deprecated: use New with a Config.
func NewMeter(profile Profile, initial State, start time.Duration) *Meter {
	return New(Config{Profile: profile, Initial: initial, Start: start})
}

// State returns the current radio state.
func (m *Meter) State() State { return m.state }

// SetState closes the current state interval at time now and switches to s.
// Setting the same state is a no-op for the accounting but still valid.
func (m *Meter) SetState(s State, now time.Duration) {
	m.accrue(now)
	m.state = s
}

// accrue charges the open interval [since, now) to the current state.
func (m *Meter) accrue(now time.Duration) {
	if now < m.since {
		// Events at identical timestamps can arrive in callback order that
		// appears to go "backwards" by zero; true regressions are bugs.
		now = m.since
	}
	dt := now - m.since
	power := m.profile.Power(m.state)
	m.joules += power * dt.Seconds()
	if m.capacityJ > 0 {
		m.level = charge(m.level, m.capacityJ, m.harvestW, power, dt.Seconds())
	}
	if m.state >= Sleep && m.state <= Transmit {
		m.inState[m.state] += dt
	}
	m.since = now
}

// Finite reports whether the meter's battery can run out.
func (m *Meter) Finite() bool { return m.capacityJ > 0 }

// RemainingAt returns the battery charge in joules at time now, including
// the currently open interval (clamped at capacity); +Inf for an infinite
// battery. Negative values mean the battery ran dry before now.
func (m *Meter) RemainingAt(now time.Duration) float64 {
	if m.capacityJ == 0 {
		return math.Inf(1)
	}
	return charge(m.level, m.capacityJ, m.harvestW, m.profile.Power(m.state), (now - m.since).Seconds())
}

// Depleted reports whether a finite battery has run out by time now.
func (m *Meter) Depleted(now time.Duration) bool {
	return m.capacityJ > 0 && m.RemainingAt(now) <= 0
}

// EnergyAt returns total joules consumed up to time now, including the
// currently open interval.
func (m *Meter) EnergyAt(now time.Duration) float64 {
	return m.joules + m.profile.Power(m.state)*(now-m.since).Seconds()
}

// TimeIn returns the closed-interval time spent in state s. Call SetState
// (or Finish) first if the open interval should be included.
func (m *Meter) TimeIn(s State) time.Duration {
	if s < Sleep || s > Transmit {
		return 0
	}
	return m.inState[s]
}

// Finish closes the open interval at time now; subsequent TimeIn calls
// include everything up to now.
func (m *Meter) Finish(now time.Duration) {
	m.accrue(now)
}

// DutyCycleEnergy returns the analytical per-node average power (watts) of a
// duty-cycled radio that is awake (idle) for active out of every frame and
// asleep otherwise — the model behind Equation 3 of the paper generalized to
// non-zero sleep power.
func DutyCycleEnergy(p Profile, active, frame time.Duration) float64 {
	if frame <= 0 {
		return 0
	}
	awake := active.Seconds() / frame.Seconds()
	return p.IdleW*awake + p.SleepW*(1-awake)
}
