package energy

import (
	"math"
	"time"
)

// Bank is the struct-of-arrays counterpart of Meter: one energy account per
// node of a simulation, with the per-node clock (since), accumulated joules,
// and radio state each living in its own flat slice. The hot accounting path
// of a large field — thousands of SetState calls per beacon interval —
// then walks dense arrays instead of chasing per-node Meter pointers, and a
// pooled simulation reuses one Bank across runs with a single Init.
//
// The accounting arithmetic is exactly Meter's: every state change closes
// the open interval [since, now) at the old state's power draw. A Bank slot
// and a Meter fed the same state changes report bit-identical joules.
type Bank struct {
	profile Profile
	state   []State
	since   []time.Duration
	joules  []float64
	inState [][Transmit + 1]time.Duration

	// Per-node battery (all-zero slots are infinite batteries).
	capacity []float64
	harvestW []float64
	level    []float64
}

// NewBank returns an empty bank; size it with Init.
func NewBank() *Bank { return &Bank{} }

// Init sizes the bank for n nodes from cfg — every account opens in
// cfg.Initial at cfg.Start with cfg.Budget's battery — reusing the slices
// when capacity allows. Per-node budgets (heterogeneous capacities) are
// applied afterwards with SetBudget.
func (b *Bank) Init(n int, cfg Config) {
	b.profile = cfg.Profile
	if cap(b.state) < n {
		b.state = make([]State, n)
		b.since = make([]time.Duration, n)
		b.joules = make([]float64, n)
		b.inState = make([][Transmit + 1]time.Duration, n)
		b.capacity = make([]float64, n)
		b.harvestW = make([]float64, n)
		b.level = make([]float64, n)
	} else {
		b.state = b.state[:n]
		b.since = b.since[:n]
		b.joules = b.joules[:n]
		b.inState = b.inState[:n]
		b.capacity = b.capacity[:n]
		b.harvestW = b.harvestW[:n]
		b.level = b.level[:n]
	}
	for i := 0; i < n; i++ {
		b.state[i] = cfg.Initial
		b.since[i] = cfg.Start
		b.capacity[i] = cfg.Budget.CapacityJ
		b.harvestW[i] = cfg.Budget.HarvestW
		b.level[i] = cfg.Budget.CapacityJ
	}
	clear(b.joules)
	clear(b.inState)
}

// Reset sizes the bank for n infinite-battery nodes, all starting in the
// given state at time start.
//
// Deprecated: use Init with a Config.
func (b *Bank) Reset(n int, profile Profile, initial State, start time.Duration) {
	b.Init(n, Config{Profile: profile, Initial: initial, Start: start})
}

// SetBudget replaces node i's battery budget, recharged to full. Call it
// after Init and before the account accrues — typically while constructing
// a fleet with per-node jittered capacities.
func (b *Bank) SetBudget(i int, bg Budget) {
	b.capacity[i] = bg.CapacityJ
	b.harvestW[i] = bg.HarvestW
	b.level[i] = bg.CapacityJ
}

// N returns the number of accounts.
func (b *Bank) N() int { return len(b.state) }

// Profile returns the shared power profile.
func (b *Bank) Profile() Profile { return b.profile }

// State returns node i's current radio state.
func (b *Bank) State(i int) State { return b.state[i] }

// SetState closes node i's current state interval at time now and switches
// to s — Meter.SetState on the slot.
func (b *Bank) SetState(i int, s State, now time.Duration) {
	b.accrue(i, now)
	b.state[i] = s
}

// accrue charges node i's open interval [since, now) to its current state.
func (b *Bank) accrue(i int, now time.Duration) {
	if now < b.since[i] {
		// Events at identical timestamps can arrive in callback order that
		// appears to go "backwards" by zero; true regressions are bugs.
		now = b.since[i]
	}
	dt := now - b.since[i]
	power := b.profile.Power(b.state[i])
	b.joules[i] += power * dt.Seconds()
	if b.capacity[i] > 0 {
		b.level[i] = charge(b.level[i], b.capacity[i], b.harvestW[i], power, dt.Seconds())
	}
	if s := b.state[i]; s >= Sleep && s <= Transmit {
		b.inState[i][s] += dt
	}
	b.since[i] = now
}

// Finite reports whether node i's battery can run out.
func (b *Bank) Finite(i int) bool { return b.capacity[i] > 0 }

// RemainingAt returns node i's battery charge in joules at time now,
// including the currently open interval (clamped at capacity); +Inf for an
// infinite battery.
func (b *Bank) RemainingAt(i int, now time.Duration) float64 {
	if b.capacity[i] == 0 {
		return math.Inf(1)
	}
	return charge(b.level[i], b.capacity[i], b.harvestW[i], b.profile.Power(b.state[i]),
		(now - b.since[i]).Seconds())
}

// Depleted reports whether node i's finite battery has run out by time now.
func (b *Bank) Depleted(i int, now time.Duration) bool {
	return b.capacity[i] > 0 && b.RemainingAt(i, now) <= 0
}

// EnergyAt returns node i's total joules consumed up to time now, including
// the currently open interval.
func (b *Bank) EnergyAt(i int, now time.Duration) float64 {
	return b.joules[i] + b.profile.Power(b.state[i])*(now-b.since[i]).Seconds()
}

// Joules returns node i's joules accumulated through the last closed
// interval — the cheap accessor trace instrumentation reads after a
// SetState call, when the open interval contributes nothing yet.
func (b *Bank) Joules(i int) float64 { return b.joules[i] }

// TimeIn returns node i's closed-interval time spent in state s.
func (b *Bank) TimeIn(i int, s State) time.Duration {
	if s < Sleep || s > Transmit {
		return 0
	}
	return b.inState[i][s]
}

// Finish closes node i's open interval at time now.
func (b *Bank) Finish(i int, now time.Duration) {
	b.accrue(i, now)
}
