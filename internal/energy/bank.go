package energy

import "time"

// Bank is the struct-of-arrays counterpart of Meter: one energy account per
// node of a simulation, with the per-node clock (since), accumulated joules,
// and radio state each living in its own flat slice. The hot accounting path
// of a large field — thousands of SetState calls per beacon interval —
// then walks dense arrays instead of chasing per-node Meter pointers, and a
// pooled simulation reuses one Bank across runs with a single Reset.
//
// The accounting arithmetic is exactly Meter's: every state change closes
// the open interval [since, now) at the old state's power draw. A Bank slot
// and a Meter fed the same state changes report bit-identical joules.
type Bank struct {
	profile Profile
	state   []State
	since   []time.Duration
	joules  []float64
	inState [][Transmit + 1]time.Duration
}

// NewBank returns an empty bank; size it with Reset.
func NewBank() *Bank { return &Bank{} }

// Reset sizes the bank for n nodes, all starting in the given state at time
// start, reusing the slices when capacity allows.
func (b *Bank) Reset(n int, profile Profile, initial State, start time.Duration) {
	b.profile = profile
	if cap(b.state) < n {
		b.state = make([]State, n)
		b.since = make([]time.Duration, n)
		b.joules = make([]float64, n)
		b.inState = make([][Transmit + 1]time.Duration, n)
	} else {
		b.state = b.state[:n]
		b.since = b.since[:n]
		b.joules = b.joules[:n]
		b.inState = b.inState[:n]
	}
	for i := 0; i < n; i++ {
		b.state[i] = initial
		b.since[i] = start
	}
	clear(b.joules)
	clear(b.inState)
}

// N returns the number of accounts.
func (b *Bank) N() int { return len(b.state) }

// Profile returns the shared power profile.
func (b *Bank) Profile() Profile { return b.profile }

// State returns node i's current radio state.
func (b *Bank) State(i int) State { return b.state[i] }

// SetState closes node i's current state interval at time now and switches
// to s — Meter.SetState on the slot.
func (b *Bank) SetState(i int, s State, now time.Duration) {
	b.accrue(i, now)
	b.state[i] = s
}

// accrue charges node i's open interval [since, now) to its current state.
func (b *Bank) accrue(i int, now time.Duration) {
	if now < b.since[i] {
		// Events at identical timestamps can arrive in callback order that
		// appears to go "backwards" by zero; true regressions are bugs.
		now = b.since[i]
	}
	dt := now - b.since[i]
	b.joules[i] += b.profile.Power(b.state[i]) * dt.Seconds()
	if s := b.state[i]; s >= Sleep && s <= Transmit {
		b.inState[i][s] += dt
	}
	b.since[i] = now
}

// EnergyAt returns node i's total joules consumed up to time now, including
// the currently open interval.
func (b *Bank) EnergyAt(i int, now time.Duration) float64 {
	return b.joules[i] + b.profile.Power(b.state[i])*(now-b.since[i]).Seconds()
}

// Joules returns node i's joules accumulated through the last closed
// interval — the cheap accessor trace instrumentation reads after a
// SetState call, when the open interval contributes nothing yet.
func (b *Bank) Joules(i int) float64 { return b.joules[i] }

// TimeIn returns node i's closed-interval time spent in state s.
func (b *Bank) TimeIn(i int, s State) time.Duration {
	if s < Sleep || s > Transmit {
		return 0
	}
	return b.inState[i][s]
}

// Finish closes node i's open interval at time now.
func (b *Bank) Finish(i int, now time.Duration) {
	b.accrue(i, now)
}
