package energy

import (
	"math"
	"testing"
	"time"
)

func TestBudgetValidate(t *testing.T) {
	cases := []struct {
		name string
		b    Budget
		ok   bool
	}{
		{"zero (infinite)", Budget{}, true},
		{"finite", Budget{CapacityJ: 2}, true},
		{"finite with harvest", Budget{CapacityJ: 2, HarvestW: 0.01}, true},
		{"negative capacity", Budget{CapacityJ: -1}, false},
		{"NaN capacity", Budget{CapacityJ: math.NaN()}, false},
		{"inf capacity", Budget{CapacityJ: math.Inf(1)}, false},
		{"negative harvest", Budget{CapacityJ: 1, HarvestW: -0.1}, false},
		{"NaN harvest", Budget{CapacityJ: 1, HarvestW: math.NaN()}, false},
		{"harvest without battery", Budget{HarvestW: 0.01}, false},
	}
	for _, tc := range cases {
		if err := tc.b.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestMeterInfiniteNeverDepletes(t *testing.T) {
	m := NewMeter(Mica2(), Transmit, 0)
	if m.Finite() {
		t.Fatal("deprecated constructor produced a finite battery")
	}
	if !math.IsInf(m.RemainingAt(1e6*time.Second), 1) {
		t.Fatalf("remaining = %v, want +Inf", m.RemainingAt(1e6*time.Second))
	}
	if m.Depleted(1e6 * time.Second) {
		t.Fatal("infinite battery depleted")
	}
}

func TestMeterDepletion(t *testing.T) {
	// 0.3 J at idle (0.030 W) runs dry at exactly t=10s.
	m := New(Config{Profile: Mica2(), Initial: Idle, Budget: Budget{CapacityJ: 0.3}})
	if !m.Finite() {
		t.Fatal("finite battery reported infinite")
	}
	if got := m.RemainingAt(5 * time.Second); !almostEqual(got, 0.15, 1e-12) {
		t.Fatalf("remaining at 5s = %v, want 0.15", got)
	}
	if m.Depleted(9 * time.Second) {
		t.Fatal("depleted before the budget ran out")
	}
	if !m.Depleted(10 * time.Second) {
		t.Fatal("not depleted at exhaustion")
	}
	// Consumption accounting is independent of the battery: it keeps
	// integrating past depletion (the MAC kills the node; the meter only
	// answers questions).
	if got := m.EnergyAt(20 * time.Second); !almostEqual(got, 0.6, 1e-9) {
		t.Fatalf("energy at 20s = %v, want 0.6", got)
	}
}

// The open interval must count against the battery even before any SetState
// closes it, so a depletion poll between state changes sees the drain.
func TestMeterRemainingOpenInterval(t *testing.T) {
	m := New(Config{Profile: Mica2(), Initial: Transmit, Budget: Budget{CapacityJ: 0.081}})
	if m.Depleted(500 * time.Millisecond) {
		t.Fatal("depleted at half the transmit budget")
	}
	if !m.Depleted(time.Second) {
		t.Fatal("open transmit interval not drained")
	}
}

func TestMeterHarvestClampAtCapacity(t *testing.T) {
	// Sleeping (3 µW) under a 1 mW harvest: the battery charges, hits the
	// 0.01 J ceiling within ~10 s, and must clamp there — not bank surplus.
	cfg := Config{Profile: Mica2(), Initial: Sleep, Budget: Budget{CapacityJ: 0.01, HarvestW: 1e-3}}
	m := New(cfg)
	m.SetState(Sleep, 1000*time.Second) // long clamped interval, closed
	if got := m.RemainingAt(1000 * time.Second); !almostEqual(got, 0.01, 1e-12) {
		t.Fatalf("remaining after clamped harvest = %v, want capacity 0.01", got)
	}
	// Now burn at transmit: depletion must start from capacity, not from
	// capacity plus the surplus harvested above the ceiling.
	m.SetState(Transmit, 1000*time.Second)
	dieAt := 1000*time.Second + time.Duration(0.01/(0.081-1e-3)*float64(time.Second))
	if m.Depleted(dieAt - time.Millisecond) {
		t.Fatal("depleted before the capacity-bounded budget ran out")
	}
	if !m.Depleted(dieAt + time.Millisecond) {
		t.Fatal("clamped battery lasted longer than its capacity allows")
	}
}

func TestMeterHarvestAboveDrawIsImmortal(t *testing.T) {
	// Harvest above the idle draw: the node is energy-neutral and never
	// depletes no matter the horizon.
	m := New(Config{Profile: Mica2(), Initial: Idle, Budget: Budget{CapacityJ: 0.1, HarvestW: 0.031}})
	if m.Depleted(1e6 * time.Second) {
		t.Fatal("energy-neutral node depleted")
	}
}

// A Bank slot and a Meter fed the same state changes must agree on every
// battery question, budget included.
func TestBankMatchesMeterFinite(t *testing.T) {
	cfg := Config{
		Profile: Mica2(),
		Initial: Idle,
		Budget:  Budget{CapacityJ: 0.5, HarvestW: 2e-3},
	}
	m := New(cfg)
	b := NewBank()
	b.Init(1, cfg)
	steps := []struct {
		s  State
		at time.Duration
	}{
		{Transmit, 1 * time.Second},
		{Sleep, 3 * time.Second},
		{Idle, 9 * time.Second},
		{Receive, 12 * time.Second},
		{Sleep, 14 * time.Second},
	}
	for _, st := range steps {
		m.SetState(st.s, st.at)
		b.SetState(0, st.s, st.at)
		if mr, br := m.RemainingAt(st.at), b.RemainingAt(0, st.at); mr != br {
			t.Fatalf("at %v: meter remaining %v != bank remaining %v", st.at, mr, br)
		}
	}
	for _, at := range []time.Duration{15 * time.Second, 30 * time.Second, 300 * time.Second} {
		if mr, br := m.Depleted(at), b.Depleted(0, at); mr != br {
			t.Fatalf("at %v: meter depleted %v != bank depleted %v", at, mr, br)
		}
		if me, be := m.EnergyAt(at), b.EnergyAt(0, at); me != be {
			t.Fatalf("at %v: meter energy %v != bank energy %v", at, me, be)
		}
	}
}

func TestBankSetBudgetPerNode(t *testing.T) {
	b := NewBank()
	b.Init(2, Config{Profile: Mica2(), Initial: Idle})
	if b.Finite(0) || b.Finite(1) {
		t.Fatal("infinite Init produced finite slots")
	}
	b.SetBudget(1, Budget{CapacityJ: 0.03})
	if b.Finite(0) {
		t.Fatal("SetBudget leaked onto another slot")
	}
	if !b.Depleted(1, 2*time.Second) {
		t.Fatal("per-node budget not applied")
	}
	if b.Depleted(0, 1e6*time.Second) {
		t.Fatal("infinite slot depleted")
	}
}

// Reset (the deprecated alias) must keep meaning "infinite batteries", and a
// steady-state Init/Reset on a warm bank must not allocate: pooled runs call
// it once per run for fields of thousands of nodes.
func TestBankInitReuseNoAlloc(t *testing.T) {
	b := NewBank()
	cfg := Config{Profile: Mica2(), Initial: Idle, Budget: Budget{CapacityJ: 1}}
	b.Init(64, cfg)
	b.SetState(5, Transmit, time.Second)
	allocs := testing.AllocsPerRun(10, func() {
		b.Init(64, cfg)
		b.Reset(64, Mica2(), Idle, 0)
	})
	if allocs != 0 {
		t.Fatalf("warm Init+Reset allocated %v times per run, want 0", allocs)
	}
	if b.Finite(5) {
		t.Fatal("Reset kept a finite budget from the earlier Init")
	}
	if got := b.EnergyAt(5, 0); got != 0 {
		t.Fatalf("Reset did not clear accrued energy: %v", got)
	}
}
