package energy

import (
	"fmt"
	"math"
	"time"
)

// Budget bounds a node's battery. The zero value is the legacy infinite
// battery: the meter integrates consumption forever and never depletes.
type Budget struct {
	// CapacityJ is the battery's initial charge and clamp ceiling in
	// joules; 0 means an infinite battery.
	CapacityJ float64
	// HarvestW recharges the battery at a constant rate (solar/vibration
	// harvesting), credited lazily whenever an interval is accrued and
	// clamped at CapacityJ. Requires a finite battery.
	HarvestW float64
}

// Finite reports whether the battery can run out.
func (b Budget) Finite() bool { return b.CapacityJ > 0 }

// Validate checks the budget.
func (b Budget) Validate() error {
	if b.CapacityJ < 0 || math.IsNaN(b.CapacityJ) || math.IsInf(b.CapacityJ, 0) {
		return fmt.Errorf("energy: battery capacity %v must be finite and non-negative", b.CapacityJ)
	}
	if b.HarvestW < 0 || math.IsNaN(b.HarvestW) || math.IsInf(b.HarvestW, 0) {
		return fmt.Errorf("energy: harvest rate %v must be finite and non-negative", b.HarvestW)
	}
	if b.HarvestW > 0 && b.CapacityJ == 0 {
		return fmt.Errorf("energy: harvest rate %v requires a finite battery capacity", b.HarvestW)
	}
	return nil
}

// Config seeds a Meter or a Bank: the power profile, the opening radio
// state and clock, and the battery budget. It replaces the positional
// (profile, initial, start) constructor parameters so new knobs extend the
// struct instead of every call site.
type Config struct {
	Profile Profile
	Initial State
	Start   time.Duration
	Budget  Budget
}

// charge advances a battery level across one accrued interval: drain at the
// interval's power, credit harvest, clamp at capacity. Within an interval
// both rates are constant, so the level is linear and clamping the endpoint
// is exact: a level that touches the ceiling mid-interval under a positive
// net rate stays there.
func charge(level, capacity, harvestW, powerW, seconds float64) float64 {
	level += (harvestW - powerW) * seconds
	if level > capacity {
		level = capacity
	}
	return level
}
