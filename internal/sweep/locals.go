package sweep

import "context"

// WorkerLocals is a per-worker-goroutine cache MapCtx installs in the
// context it hands each point function. Point functions that need expensive
// reusable state — simulation pools, scratch arenas — stash it here once
// and find it again on every later point the same worker claims, without
// any cross-worker locking. Entries are keyed by comparable keys (use an
// unexported struct type, as with context keys) and looked up by linear
// scan: a worker holds a handful of entries at most.
//
// A WorkerLocals belongs to exactly one worker goroutine and must not be
// shared; registered cleanups run when the worker exits its claim loop.
type WorkerLocals struct {
	keys     []any
	vals     []any
	cleanups []func()
}

// Get returns the value stored under key, or nil.
func (w *WorkerLocals) Get(key any) any {
	for i, k := range w.keys {
		if k == key {
			return w.vals[i]
		}
	}
	return nil
}

// Put stores val under key (replacing any previous value) and registers an
// optional cleanup to run when the worker finishes.
func (w *WorkerLocals) Put(key, val any, cleanup func()) {
	for i, k := range w.keys {
		if k == key {
			w.vals[i] = val
			if cleanup != nil {
				w.cleanups = append(w.cleanups, cleanup)
			}
			return
		}
	}
	w.keys = append(w.keys, key)
	w.vals = append(w.vals, val)
	if cleanup != nil {
		w.cleanups = append(w.cleanups, cleanup)
	}
}

// finish runs the registered cleanups in reverse registration order.
func (w *WorkerLocals) finish() {
	for i := len(w.cleanups) - 1; i >= 0; i-- {
		w.cleanups[i]()
	}
	w.cleanups = nil
}

// localsCtxKey keys the WorkerLocals in worker contexts.
type localsCtxKey struct{}

// Locals returns the per-worker cache MapCtx installed in ctx, or nil when
// the computation is not running under a sweep worker (direct calls,
// tests, remote point execution).
func Locals(ctx context.Context) *WorkerLocals {
	w, _ := ctx.Value(localsCtxKey{}).(*WorkerLocals)
	return w
}
