package sweep

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapOrdering(t *testing.T) {
	got, err := Map(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d", i, v)
		}
	}
}

func TestMapZeroPoints(t *testing.T) {
	got, err := Map(0, 4, func(int) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestMapNegativeN(t *testing.T) {
	if _, err := Map(-1, 4, func(int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestMapNilFn(t *testing.T) {
	if _, err := Map[int](5, 4, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	got, err := Map(10, 0, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := Map(10, 4, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errA
		case 7:
			return 0, errB
		default:
			return i, nil
		}
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the smallest-index error", err)
	}
}

func TestMapRunsEveryPointOnce(t *testing.T) {
	var counts [64]int32
	_, err := Map(len(counts), 8, func(i int) (struct{}, error) {
		atomic.AddInt32(&counts[i], 1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("point %d ran %d times", i, c)
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var active, peak int32
	_, err := Map(50, workers, func(i int) (int, error) {
		cur := atomic.AddInt32(&active, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if cur <= old || atomic.CompareAndSwapInt32(&peak, old, cur) {
				break
			}
		}
		// Busy-yield to give other workers a chance to overlap.
		for j := 0; j < 1000; j++ {
			_ = j
		}
		atomic.AddInt32(&active, -1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt32(&peak); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// Property: results equal the sequential evaluation for any (n, workers).
func TestPropertyMatchesSequential(t *testing.T) {
	check := func(rawN, rawW uint8) bool {
		n := int(rawN) % 50
		w := int(rawW)%8 + 1
		got, err := Map(n, w, func(i int) (int, error) { return 3*i + 1, nil })
		if err != nil {
			return false
		}
		for i, v := range got {
			if v != 3*i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
