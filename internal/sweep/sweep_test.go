package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapOrdering(t *testing.T) {
	got, err := Map(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d", i, v)
		}
	}
}

func TestMapZeroPoints(t *testing.T) {
	got, err := Map(0, 4, func(int) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestMapNegativeN(t *testing.T) {
	if _, err := Map(-1, 4, func(int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestMapNilFn(t *testing.T) {
	if _, err := Map[int](5, 4, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	got, err := Map(10, 0, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := Map(10, 4, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errA
		case 7:
			return 0, errB
		default:
			return i, nil
		}
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the smallest-index error", err)
	}
}

func TestMapRunsEveryPointOnce(t *testing.T) {
	var counts [64]int32
	_, err := Map(len(counts), 8, func(i int) (struct{}, error) {
		atomic.AddInt32(&counts[i], 1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("point %d ran %d times", i, c)
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var active, peak int32
	_, err := Map(50, workers, func(i int) (int, error) {
		cur := atomic.AddInt32(&active, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if cur <= old || atomic.CompareAndSwapInt32(&peak, old, cur) {
				break
			}
		}
		// Busy-yield to give other workers a chance to overlap.
		for j := 0; j < 1000; j++ {
			_ = j
		}
		atomic.AddInt32(&active, -1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt32(&peak); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestMapCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	_, err := MapCtx(ctx, 1000, 2, func(_ context.Context, i int) (int, error) {
		if atomic.AddInt32(&ran, 1) == 3 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers stop claiming once the context is done: at most the points
	// already in flight when cancel fired can still complete.
	if n := atomic.LoadInt32(&ran); n >= 1000 {
		t.Fatalf("cancellation did not stop the sweep (%d points ran)", n)
	}
}

func TestMapCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	_, err := MapCtx(ctx, 100, 4, func(_ context.Context, i int) (int, error) {
		atomic.AddInt32(&ran, 1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if atomic.LoadInt32(&ran) != 0 {
		t.Fatal("points ran under an already-cancelled context")
	}
}

func TestMapCtxCancellationBeatsPointError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapCtx(ctx, 4, 1, func(_ context.Context, i int) (int, error) {
		return 0, errors.New("point failure")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want the context error to take precedence", err)
	}
}

func TestMapCtxNilContext(t *testing.T) {
	var nilCtx context.Context // the nil-context guard is what's under test
	if _, err := MapCtx[int](nilCtx, 5, 2, func(context.Context, int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("nil context accepted")
	}
}

// Property: results equal the sequential evaluation for any (n, workers).
func TestPropertyMatchesSequential(t *testing.T) {
	check := func(rawN, rawW uint8) bool {
		n := int(rawN) % 50
		w := int(rawW)%8 + 1
		got, err := Map(n, w, func(i int) (int, error) { return 3*i + 1, nil })
		if err != nil {
			return false
		}
		for i, v := range got {
			if v != 3*i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
