package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock steps a Reporter's clock deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func parseProgress(t *testing.T, stream []byte) []Progress {
	t.Helper()
	var out []Progress
	sc := bufio.NewScanner(bytes.NewReader(stream))
	for sc.Scan() {
		var p Progress
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("bad progress line %q: %v", sc.Text(), err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReporterIntervalGating: a 100-point sweep through a 10s-interval
// reporter must emit a handful of summary lines, not 100 — that is the
// whole point of replacing per-point progress.
func TestReporterIntervalGating(t *testing.T) {
	var buf bytes.Buffer
	clock := &fakeClock{t: time.Unix(1000, 0)}
	r := NewReporter(&buf, 10*time.Second)
	r.Now = clock.now

	const total = 100
	for i := 1; i <= total; i++ {
		clock.advance(500 * time.Millisecond) // 2 points/s
		r.Observe(i, total, i%4 == 0)
	}
	r.Finish()

	lines := parseProgress(t, buf.Bytes())
	// 100 points at 0.5s each = 50s = 4 interval boundaries + the final
	// done line (the first observation opens the window without emitting).
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	for i, p := range lines[:len(lines)-1] {
		if p.Type != "progress" {
			t.Errorf("line %d type %q, want progress", i, p.Type)
		}
		if p.Total != total {
			t.Errorf("line %d total %d, want %d", i, p.Total, total)
		}
		if p.RatePPS < 1.9 || p.RatePPS > 2.1 {
			t.Errorf("line %d rate %v pps, want ~2", i, p.RatePPS)
		}
		if p.Done < total && p.EtaS <= 0 {
			t.Errorf("line %d has no ETA: %+v", i, p)
		}
	}
	final := lines[len(lines)-1]
	if final.Type != "done" || final.Done != total || final.EtaS != 0 {
		t.Errorf("final line %+v", final)
	}
	if final.Cached != total/4 {
		t.Errorf("final cached %d, want %d", final.Cached, total/4)
	}
}

// TestReporterWorkers: an attached workers source contributes the
// per-worker view with derived throughput.
func TestReporterWorkers(t *testing.T) {
	var buf bytes.Buffer
	clock := &fakeClock{t: time.Unix(0, 0)}
	r := NewReporter(&buf, 0)
	r.Now = clock.now
	r.SetWorkers(func() []WorkerProgress {
		return []WorkerProgress{
			{ID: "w1", Name: "alpha", Alive: true, Leased: 2, Completed: 30},
			{ID: "w2", Alive: false, Quarantined: true, Completed: 10, Failed: 3},
		}
	})
	r.Observe(1, 80, false) // opens the clock window at t=0
	clock.advance(10 * time.Second)
	r.Observe(40, 80, false)

	lines := parseProgress(t, buf.Bytes())
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	ws := lines[1].Workers
	if len(ws) != 2 {
		t.Fatalf("got %d workers, want 2", len(ws))
	}
	if ws[0].RatePPS != 3 {
		t.Errorf("worker w1 rate %v, want 3", ws[0].RatePPS)
	}
	if !ws[1].Quarantined || ws[1].Failed != 3 {
		t.Errorf("worker w2 state lost: %+v", ws[1])
	}
	if !strings.Contains(buf.String(), `"id":"w1"`) {
		t.Errorf("missing worker id in %s", buf.String())
	}
}

// TestReporterFinishWithoutObserve: Finish on an untouched reporter must
// not panic or divide by zero.
func TestReporterFinishWithoutObserve(t *testing.T) {
	var buf bytes.Buffer
	r := NewReporter(&buf, time.Second)
	r.Finish()
	lines := parseProgress(t, buf.Bytes())
	if len(lines) != 1 || lines[0].Type != "done" || lines[0].RatePPS != 0 {
		t.Fatalf("unexpected final line: %s", buf.String())
	}
}
