// Package sweep runs independent experiment points concurrently with a
// bounded worker pool. Every data point in this repository derives its own
// seed and builds its own state, so points can execute in any order; the
// results are returned in index order, keeping experiment output
// deterministic regardless of scheduling.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Map evaluates fn(0..n-1) across at most workers goroutines and returns
// the results in index order. If any invocation fails, Map still waits for
// all in-flight work and returns the error from the smallest failing index
// (deterministic error reporting). workers <= 0 selects GOMAXPROCS.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil point function")
	}
	return MapCtx(context.Background(), n, workers, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// MapCtx is Map with cancellation: when ctx is done, workers stop claiming
// new indices, in-flight invocations are drained, and the context's error
// is returned. Cancellation takes precedence over point errors, so a
// cancelled run reports why it stopped rather than whichever point happened
// to fail while the pool wound down. fn receives ctx so long-running points
// can observe cancellation themselves.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		return nil, fmt.Errorf("sweep: nil context")
	}
	if n < 0 {
		return nil, fmt.Errorf("sweep: negative point count %d", n)
	}
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil point function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return results, ctx.Err()
	}

	var (
		wg   sync.WaitGroup
		next int
		mu   sync.Mutex
	)
	claim := func() (int, bool) {
		if ctx.Err() != nil {
			return 0, false
		}
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker carries its own WorkerLocals so point functions
			// can cache expensive reusable state (simulation pools) for the
			// points this goroutine claims; cleanups run at worker exit.
			locals := &WorkerLocals{}
			defer locals.finish()
			wctx := context.WithValue(ctx, localsCtxKey{}, locals)
			for {
				i, ok := claim()
				if !ok {
					return
				}
				results[i], errs[i] = fn(wctx, i)
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
