package sweep

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// WorkerProgress is one worker's contribution to a progress report — the
// distributed coordinator's per-worker throughput view, adapted from its
// snapshot by the caller.
type WorkerProgress struct {
	ID          string  `json:"id"`
	Name        string  `json:"name,omitempty"`
	Alive       bool    `json:"alive"`
	Quarantined bool    `json:"quarantined,omitempty"`
	Leased      int     `json:"leased"`
	Completed   int     `json:"completed"`
	Failed      int     `json:"failed,omitempty"`
	RatePPS     float64 `json:"rate_pps"`
}

// Progress is one structured progress line: the sweep's position, overall
// throughput, and the remaining-time estimate. Type is "progress" for
// periodic reports and "done" for the final line.
type Progress struct {
	Type     string           `json:"type"`
	Done     int              `json:"done"`
	Total    int              `json:"total"`
	Cached   int              `json:"cached,omitempty"`
	ElapsedS float64          `json:"elapsed_s"`
	RatePPS  float64          `json:"rate_pps"`
	EtaS     float64          `json:"eta_s,omitempty"`
	Workers  []WorkerProgress `json:"workers,omitempty"`
}

// Reporter replaces line-per-point progress spam with periodic structured
// summaries: at most one JSON line per interval carrying points done/total,
// completion rate, an ETA, and — when a workers source is attached — the
// per-worker throughput of a distributed sweep. Observe is safe for
// concurrent use (the scenario engine serializes OnPoint, but the reporter
// does not rely on it).
type Reporter struct {
	// Now is the reporter's clock; nil selects time.Now. Tests inject a
	// fake to make interval gating deterministic.
	Now func() time.Time

	mu       sync.Mutex
	w        io.Writer
	interval time.Duration
	workers  func() []WorkerProgress
	start    time.Time
	last     time.Time
	done     int
	total    int
	cached   int
}

// NewReporter returns a reporter writing to w at most once per interval
// (non-positive intervals report on every Observe).
func NewReporter(w io.Writer, interval time.Duration) *Reporter {
	return &Reporter{w: w, interval: interval}
}

// SetWorkers attaches the per-worker progress source (the distributed
// coordinator's snapshot adapter). fn is called during emission, at most
// once per interval.
func (r *Reporter) SetWorkers(fn func() []WorkerProgress) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workers = fn
}

// Observe records one completed point and emits a progress line when the
// interval has elapsed since the last one.
func (r *Reporter) Observe(done, total int, cached bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	if r.start.IsZero() {
		r.start = now
		r.last = now
	}
	r.done, r.total = done, total
	if cached {
		r.cached++
	}
	if now.Sub(r.last) < r.interval {
		return
	}
	r.last = now
	r.emitLocked(now, "progress")
}

// Finish emits the final "done" line with the sweep's overall stats.
func (r *Reporter) Finish() {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	if r.start.IsZero() {
		r.start = now
	}
	r.emitLocked(now, "done")
}

func (r *Reporter) now() time.Time {
	if r.Now != nil {
		return r.Now()
	}
	return time.Now()
}

// emitLocked writes one progress line; r.mu must be held.
func (r *Reporter) emitLocked(now time.Time, typ string) {
	elapsed := now.Sub(r.start).Seconds()
	p := Progress{
		Type:     typ,
		Done:     r.done,
		Total:    r.total,
		Cached:   r.cached,
		ElapsedS: elapsed,
	}
	if elapsed > 0 {
		p.RatePPS = float64(r.done) / elapsed
	}
	if remaining := r.total - r.done; remaining > 0 && p.RatePPS > 0 {
		p.EtaS = float64(remaining) / p.RatePPS
	}
	if r.workers != nil {
		p.Workers = r.workers()
		if elapsed > 0 {
			for i := range p.Workers {
				p.Workers[i].RatePPS = float64(p.Workers[i].Completed) / elapsed
			}
		}
	}
	// A progress line is advisory; if the writer fails there is nobody
	// better to tell, so the error is dropped by design.
	b, err := json.Marshal(p)
	if err != nil {
		return
	}
	r.w.Write(append(b, '\n'))
}
