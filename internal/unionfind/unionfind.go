// Package unionfind implements weighted quick-union with path halving, the
// core data structure of the Newman–Ziff fast Monte Carlo percolation
// algorithm (adding one bond at a time and tracking cluster sizes in
// near-constant amortized time).
package unionfind

import "fmt"

// UF is a disjoint-set forest over elements [0, n).
type UF struct {
	parent []int32
	size   []int32
	count  int
}

// New returns a forest of n singleton sets.
func New(n int) (*UF, error) {
	if n < 0 {
		return nil, fmt.Errorf("unionfind: negative size %d", n)
	}
	u := &UF{
		parent: make([]int32, n),
		size:   make([]int32, n),
		count:  n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u, nil
}

// Must is New for statically valid sizes.
func Must(n int) *UF {
	u, err := New(n)
	if err != nil {
		panic(err)
	}
	return u
}

// N returns the number of elements.
func (u *UF) N() int { return len(u.parent) }

// Count returns the number of disjoint sets.
func (u *UF) Count() int { return u.count }

// Find returns the canonical representative of x's set, applying path
// halving as it walks.
func (u *UF) Find(x int) int {
	p := int32(x)
	for u.parent[p] != p {
		u.parent[p] = u.parent[u.parent[p]]
		p = u.parent[p]
	}
	return int(p)
}

// Union merges the sets of a and b. Reports whether a merge happened
// (false if they were already joined).
func (u *UF) Union(a, b int) bool {
	ra, rb := int32(u.Find(a)), int32(u.Find(b))
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	u.count--
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UF) Connected(a, b int) bool { return u.Find(a) == u.Find(b) }

// SetSize returns the size of x's set.
func (u *UF) SetSize(x int) int { return int(u.size[u.Find(x)]) }

// Reset returns the forest to n singleton sets without reallocating,
// letting percolation sweeps reuse one structure across realizations.
func (u *UF) Reset() {
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	u.count = len(u.parent)
}
