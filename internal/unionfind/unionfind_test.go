package unionfind

import (
	"testing"
	"testing/quick"

	"pbbf/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Fatal("New(-1) succeeded")
	}
	u, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 0 || u.Count() != 0 {
		t.Fatal("empty forest wrong counts")
	}
}

func TestSingletons(t *testing.T) {
	u := Must(5)
	if u.Count() != 5 {
		t.Fatalf("count = %d", u.Count())
	}
	for i := 0; i < 5; i++ {
		if u.Find(i) != i {
			t.Fatalf("Find(%d) = %d", i, u.Find(i))
		}
		if u.SetSize(i) != 1 {
			t.Fatalf("SetSize(%d) = %d", i, u.SetSize(i))
		}
	}
}

func TestUnionBasics(t *testing.T) {
	u := Must(4)
	if !u.Union(0, 1) {
		t.Fatal("first union reported no-op")
	}
	if u.Union(1, 0) {
		t.Fatal("repeat union reported merge")
	}
	if !u.Connected(0, 1) {
		t.Fatal("0 and 1 not connected")
	}
	if u.Connected(0, 2) {
		t.Fatal("0 and 2 spuriously connected")
	}
	if u.Count() != 3 {
		t.Fatalf("count = %d, want 3", u.Count())
	}
	if u.SetSize(0) != 2 || u.SetSize(1) != 2 {
		t.Fatal("merged set size wrong")
	}
}

func TestTransitivity(t *testing.T) {
	u := Must(6)
	u.Union(0, 1)
	u.Union(2, 3)
	u.Union(1, 2)
	if !u.Connected(0, 3) {
		t.Fatal("transitive connection missing")
	}
	if u.SetSize(3) != 4 {
		t.Fatalf("set size = %d, want 4", u.SetSize(3))
	}
}

func TestReset(t *testing.T) {
	u := Must(10)
	for i := 0; i < 9; i++ {
		u.Union(i, i+1)
	}
	if u.Count() != 1 {
		t.Fatalf("count = %d before reset", u.Count())
	}
	u.Reset()
	if u.Count() != 10 {
		t.Fatalf("count = %d after reset", u.Count())
	}
	for i := 0; i < 10; i++ {
		if u.SetSize(i) != 1 {
			t.Fatalf("SetSize(%d) = %d after reset", i, u.SetSize(i))
		}
	}
	if u.Connected(0, 1) {
		t.Fatal("stale connection after reset")
	}
}

// Property: count decreases by exactly 1 per successful union, and total
// mass of distinct sets is n.
func TestPropertyCountAndMass(t *testing.T) {
	check := func(seed uint64, rawN uint8) bool {
		r := rng.New(seed)
		n := int(rawN)%100 + 2
		u := Must(n)
		merges := 0
		for i := 0; i < n*2; i++ {
			if u.Union(r.Intn(n), r.Intn(n)) {
				merges++
			}
		}
		if u.Count() != n-merges {
			return false
		}
		mass := 0
		seen := map[int]bool{}
		for i := 0; i < n; i++ {
			root := u.Find(i)
			if !seen[root] {
				seen[root] = true
				mass += u.SetSize(root)
			}
		}
		return mass == n && len(seen) == u.Count()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Connected agrees with reachability computed by brute force on a
// recorded edge list.
func TestPropertyMatchesBruteForce(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 30
		u := Must(n)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for i := 0; i < 40; i++ {
			a, b := r.Intn(n), r.Intn(n)
			u.Union(a, b)
			adj[a][b], adj[b][a] = true, true
		}
		// Floyd-Warshall style closure.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = make([]bool, n)
			reach[i][i] = true
			copy(reach[i], adj[i])
			reach[i][i] = true
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if !reach[i][k] {
					continue
				}
				for j := 0; j < n; j++ {
					if reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if u.Connected(i, j) != reach[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	r := rng.New(1)
	u := Must(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Union(r.Intn(10000), r.Intn(10000))
		if i%10000 == 9999 {
			u.Reset()
		}
	}
}
