package trace

import (
	"strconv"
	"time"
)

// NodeSummary aggregates one node's activity over a traced run: the
// per-node table the `pbbf trace` subcommand prints after the event
// stream.
type NodeSummary struct {
	// Node is the node ID.
	Node int32
	// Awake is total radio-on time over the run.
	Awake time.Duration
	// Frame counters, split by kind.
	TxData, TxATIM int
	RxData, RxATIM int
	Duplicates     int
	Delivered      int
	Drops          int
	// EnergyJ is cumulative joules at the node's last metered transition
	// (the run-final FinishMetering tail is not an event).
	EnergyJ float64
	// Died marks a fail-stop death during the run.
	Died bool
}

// Summarize folds a run's event stream into per-node summaries, indexed
// by node ID (every node in [0, maxNode] gets an entry). duration closes
// the awake accounting for radios still on at the end of the run; nodes
// start awake at t=0, which is the simulator's initial condition.
func Summarize(events []Event, duration time.Duration) []NodeSummary {
	max := int32(-1)
	for i := range events {
		if events[i].Node > max {
			max = events[i].Node
		}
	}
	if max < 0 {
		return nil
	}
	out := make([]NodeSummary, max+1)
	awakeSince := make([]time.Duration, max+1) // valid while awake[i]
	awake := make([]bool, max+1)
	for i := range out {
		out[i].Node = int32(i)
		awake[i] = true
	}
	for i := range events {
		ev := &events[i]
		s := &out[ev.Node]
		switch ev.Kind {
		case KindTxData:
			s.TxData++
		case KindTxATIM:
			s.TxATIM++
		case KindRxData:
			s.RxData++
		case KindRxATIM:
			s.RxATIM++
		case KindDuplicate:
			s.Duplicates++
		case KindDeliver:
			s.Delivered++
		case KindDropCollision, KindDropFade, KindDropLinkFade:
			s.Drops++
		case KindWake:
			if !awake[ev.Node] {
				awake[ev.Node] = true
				awakeSince[ev.Node] = ev.T
			}
		case KindSleep:
			if awake[ev.Node] {
				awake[ev.Node] = false
				s.Awake += ev.T - awakeSince[ev.Node]
			}
		case KindEnergy:
			s.EnergyJ = ev.Value
		case KindDeath:
			s.Died = true
		}
	}
	for i := range out {
		if awake[i] {
			out[i].Awake += duration - awakeSince[i]
		}
	}
	return out
}

// AppendSummaryNDJSON appends one node summary as a single NDJSON line
// (including the trailing newline) in the committed trace-golden schema.
func AppendSummaryNDJSON(dst []byte, run int, s NodeSummary) []byte {
	dst = append(dst, `{"type":"node","run":`...)
	dst = strconv.AppendInt(dst, int64(run), 10)
	dst = append(dst, `,"node":`...)
	dst = strconv.AppendInt(dst, int64(s.Node), 10)
	dst = append(dst, `,"awake_ns":`...)
	dst = strconv.AppendInt(dst, int64(s.Awake), 10)
	dst = append(dst, `,"tx_data":`...)
	dst = strconv.AppendInt(dst, int64(s.TxData), 10)
	dst = append(dst, `,"tx_atim":`...)
	dst = strconv.AppendInt(dst, int64(s.TxATIM), 10)
	dst = append(dst, `,"rx_data":`...)
	dst = strconv.AppendInt(dst, int64(s.RxData), 10)
	dst = append(dst, `,"rx_atim":`...)
	dst = strconv.AppendInt(dst, int64(s.RxATIM), 10)
	dst = append(dst, `,"duplicates":`...)
	dst = strconv.AppendInt(dst, int64(s.Duplicates), 10)
	dst = append(dst, `,"delivered":`...)
	dst = strconv.AppendInt(dst, int64(s.Delivered), 10)
	dst = append(dst, `,"drops":`...)
	dst = strconv.AppendInt(dst, int64(s.Drops), 10)
	dst = append(dst, `,"energy_j":`...)
	dst = strconv.AppendFloat(dst, s.EnergyJ, 'g', -1, 64)
	if s.Died {
		dst = append(dst, `,"died":true`...)
	}
	dst = append(dst, "}\n"...)
	return dst
}
