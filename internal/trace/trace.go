// Package trace is the simulator's event-level observability spine: a
// compact event record, a Sink interface the netsim/mac/phy hot path
// writes through, and in-memory sinks (slab, ring, discard) for the
// consumers — the `pbbf trace` subcommand, protocol-behavior regression
// tests, and the bench overhead gate.
//
// The contract with the hot path is zero overhead when disabled: every
// instrumentation site guards on a nil sink, events are plain structs
// passed by value (no boxing), and recording never draws randomness or
// mutates simulation state — so a traced run computes byte-identical
// results to an untraced one, and an untraced run allocates exactly what
// it did before tracing existed.
package trace

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// Kind discriminates trace events. The zero value is invalid so a zeroed
// Event is recognizable as "no event".
type Kind uint8

const (
	// KindTxData marks a data frame starting transmission (node = sender,
	// origin/seq identify the packet, value = airtime in seconds).
	KindTxData Kind = iota + 1
	// KindTxATIM marks an ATIM announcement starting transmission
	// (node = sender, value = airtime in seconds).
	KindTxATIM
	// KindTxEnd marks the sender's frame leaving the air (node = sender).
	KindTxEnd
	// KindRxData marks a first-copy data frame decode (node = receiver,
	// peer = sender, origin/seq identify the packet).
	KindRxData
	// KindRxATIM marks an ATIM decode (node = receiver, peer = sender).
	KindRxATIM
	// KindDuplicate marks a decoded data frame suppressed as a duplicate
	// (node = receiver, peer = sender, origin/seq identify the packet).
	KindDuplicate
	// KindDeliver marks a new packet reaching the application (node =
	// receiver, peer = forwarder, origin/seq, value = hop count).
	KindDeliver
	// KindDropCollision marks a reception lost to frame overlap
	// (node = receiver, peer = sender).
	KindDropCollision
	// KindDropFade marks a reception lost to iid loss injection
	// (node = receiver, peer = sender).
	KindDropFade
	// KindDropLinkFade marks a reception lost to the per-link loss table
	// (node = receiver, peer = sender).
	KindDropLinkFade
	// KindWake marks a radio turning on (node).
	KindWake
	// KindSleep marks a radio turning off (node).
	KindSleep
	// KindEnergy marks a radio power-state change on the energy meter
	// (node, peer = new state index per energy.State, value = cumulative
	// joules consumed so far).
	KindEnergy
	// KindDeath marks a fail-stop node death (node, value = the death
	// cause: DeathCauseChurn or DeathCauseDepleted).
	KindDeath

	kindCount
)

// Death causes carried in a KindDeath event's Value field. Churn is the
// zero value so pre-finite-energy death events — and their committed golden
// bytes, which omit zero values — are unchanged.
const (
	// DeathCauseChurn marks an externally injected fail-stop death.
	DeathCauseChurn = 0
	// DeathCauseDepleted marks a battery running dry; the NDJSON line
	// carries `"cause":"depleted"`.
	DeathCauseDepleted = 1
)

var kindNames = [kindCount]string{
	KindTxData:        "tx_data",
	KindTxATIM:        "tx_atim",
	KindTxEnd:         "tx_end",
	KindRxData:        "rx_data",
	KindRxATIM:        "rx_atim",
	KindDuplicate:     "duplicate",
	KindDeliver:       "deliver",
	KindDropCollision: "drop_collision",
	KindDropFade:      "drop_fade",
	KindDropLinkFade:  "drop_linkfade",
	KindWake:          "wake",
	KindSleep:         "sleep",
	KindEnergy:        "energy",
	KindDeath:         "death",
}

// String returns the kind's NDJSON name.
func (k Kind) String() string {
	if k == 0 || k >= kindCount {
		return "invalid"
	}
	return kindNames[k]
}

// Group classifies kinds for the trace command's -events filter.
type Group uint8

const (
	// GroupPacket covers frame lifecycle events: tx/rx/drops/duplicates/
	// application deliveries.
	GroupPacket Group = 1 << iota
	// GroupRadio covers radio schedule events: wake/sleep/death.
	GroupRadio
	// GroupEnergy covers energy meter state changes.
	GroupEnergy

	// GroupAll selects every event group.
	GroupAll = GroupPacket | GroupRadio | GroupEnergy
)

// Group returns the event group the kind belongs to.
func (k Kind) Group() Group {
	switch k {
	case KindWake, KindSleep, KindDeath:
		return GroupRadio
	case KindEnergy:
		return GroupEnergy
	default:
		return GroupPacket
	}
}

// Event is one simulation event. The struct is compact and fixed-size so
// a slab of a few hundred thousand events is one contiguous allocation.
// Field meaning varies by Kind (see the Kind constants); unused fields
// are zero, and Peer is -1 when no peer applies.
type Event struct {
	// T is the simulation time of the event.
	T time.Duration
	// Node is the node the event happened at.
	Node int32
	// Peer is the other party (sender for receptions/drops, the new
	// energy.State index for energy events), or -1.
	Peer int32
	// Origin and Seq identify the broadcast packet for packet-carrying
	// kinds (the duplicate-suppression key).
	Origin int32
	Seq    uint32
	// Kind discriminates the event.
	Kind Kind
	// Value is the kind-specific measurement (airtime seconds, cumulative
	// joules, hop count).
	Value float64
}

// Sink receives events from the simulation hot path. Record is called
// synchronously from the event loop and must not block or panic; it may
// not call back into the simulation.
type Sink interface {
	Record(ev Event)
}

// Slab is an append-only in-memory sink: the whole event stream of one
// run in one growing slice.
type Slab struct {
	// Run is the run index the slab captured (set by Collector).
	Run int
	// Events is the recorded stream in simulation order.
	Events []Event
}

// Record implements Sink.
func (s *Slab) Record(ev Event) { s.Events = append(s.Events, ev) }

// Ring is a fixed-capacity sink keeping the most recent events — a
// flight recorder for long runs where only the tail matters.
type Ring struct {
	buf   []Event
	next  int
	total int
}

// NewRing returns a ring holding at most n events; n must be positive.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Record implements Sink.
func (r *Ring) Record(ev Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Total returns how many events were recorded, including evicted ones.
func (r *Ring) Total() int { return r.total }

// Events returns the retained events in recording order.
func (r *Ring) Events() []Event {
	if len(r.buf) < cap(r.buf) || r.next == 0 {
		return r.buf
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// discard is the counting no-op sink behind Discard.
type discard struct{}

func (discard) Record(Event) {}

// Discard accepts and drops every event: the sink the bench overhead
// gate uses to measure the cost of tracing itself.
var Discard Sink = discard{}

// AppendNDJSON appends one event as a single NDJSON line (including the
// trailing newline) in the committed trace-golden schema. Zero-valued
// optional fields are omitted; encoding uses no maps or reflection, so
// identical events always produce identical bytes.
func AppendNDJSON(dst []byte, run int, ev Event) []byte {
	dst = append(dst, `{"type":"event","run":`...)
	dst = strconv.AppendInt(dst, int64(run), 10)
	dst = append(dst, `,"t_ns":`...)
	dst = strconv.AppendInt(dst, int64(ev.T), 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, ev.Kind.String()...)
	dst = append(dst, `","node":`...)
	dst = strconv.AppendInt(dst, int64(ev.Node), 10)
	if ev.Peer >= 0 {
		dst = append(dst, `,"peer":`...)
		dst = strconv.AppendInt(dst, int64(ev.Peer), 10)
	}
	if ev.Origin != 0 || ev.Seq != 0 || ev.Kind.carriesPacket() {
		dst = append(dst, `,"origin":`...)
		dst = strconv.AppendInt(dst, int64(ev.Origin), 10)
		dst = append(dst, `,"seq":`...)
		dst = strconv.AppendUint(dst, uint64(ev.Seq), 10)
	}
	switch {
	case ev.Kind == KindDeath:
		// The death cause rides in Value; name it instead of emitting a
		// bare number. Churn deaths (the zero cause) keep their original
		// bytes with no cause field at all.
		if ev.Value == DeathCauseDepleted {
			dst = append(dst, `,"cause":"depleted"`...)
		}
	case ev.Value != 0:
		dst = append(dst, `,"value":`...)
		dst = strconv.AppendFloat(dst, ev.Value, 'g', -1, 64)
	}
	dst = append(dst, "}\n"...)
	return dst
}

// carriesPacket reports whether the kind's origin/seq fields identify a
// packet (and so are emitted even when zero — origin 0 / seq 0 is the
// source's first update, not "unset").
func (k Kind) carriesPacket() bool {
	switch k {
	case KindTxData, KindRxData, KindDuplicate, KindDeliver:
		return true
	}
	return false
}

// Provider hands out per-run sinks: the simulation asks once per run
// whether (and where) to trace. A nil Provider — and a nil Sink returned
// from BeginRun — both mean "don't trace".
type Provider interface {
	// BeginRun returns the sink for the given zero-based run index of the
	// point being simulated, or nil to leave the run untraced.
	BeginRun(run int) Sink
}

// discardProvider traces every run into Discard.
type discardProvider struct{}

func (discardProvider) BeginRun(int) Sink { return Discard }

// DiscardProvider traces every run into the Discard sink — full
// instrumentation cost, no retention. The bench overhead gate runs with
// this provider to bound the ns/point cost of tracing.
var DiscardProvider Provider = discardProvider{}

// ctxKey carries the Provider through a context.
type ctxKey struct{}

// WithProvider returns a context carrying the trace provider; scenario
// points executed under it (ComputePoint → runNetPoint) trace their runs
// through the provider's sinks.
func WithProvider(ctx context.Context, p Provider) context.Context {
	return context.WithValue(ctx, ctxKey{}, p)
}

// ProviderFrom extracts the trace provider from ctx, or nil.
func ProviderFrom(ctx context.Context) Provider {
	p, _ := ctx.Value(ctxKey{}).(Provider)
	return p
}

// Collector is a Provider retaining every traced run's full stream in a
// slab — the `pbbf trace` subcommand's sink factory. MaxRuns caps how
// many runs are captured (0 = all); later runs go untraced.
type Collector struct {
	// MaxRuns bounds the number of captured runs; 0 captures every run.
	MaxRuns int

	mu   sync.Mutex
	runs []*Slab
}

// BeginRun implements Provider. BeginRun itself is safe for concurrent
// use; the returned slab is owned by the single run writing to it.
func (c *Collector) BeginRun(run int) Sink {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.MaxRuns > 0 && len(c.runs) >= c.MaxRuns {
		return nil
	}
	s := &Slab{Run: run}
	c.runs = append(c.runs, s)
	return s
}

// Runs returns the captured slabs in run order. Call only after every
// traced run has finished.
func (c *Collector) Runs() []*Slab {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}
