package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(1); k < kindCount; k++ {
		name := k.String()
		if name == "" || name == "invalid" {
			t.Fatalf("kind %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
	if got := Kind(0).String(); got != "invalid" {
		t.Fatalf("zero kind name = %q, want invalid", got)
	}
	if got := kindCount.String(); got != "invalid" {
		t.Fatalf("out-of-range kind name = %q, want invalid", got)
	}
}

func TestKindGroups(t *testing.T) {
	cases := map[Kind]Group{
		KindTxData:        GroupPacket,
		KindRxATIM:        GroupPacket,
		KindDropCollision: GroupPacket,
		KindDeliver:       GroupPacket,
		KindWake:          GroupRadio,
		KindSleep:         GroupRadio,
		KindDeath:         GroupRadio,
		KindEnergy:        GroupEnergy,
	}
	for k, want := range cases {
		if got := k.Group(); got != want {
			t.Errorf("%s group = %d, want %d", k, got, want)
		}
	}
}

func TestSlabAndDiscard(t *testing.T) {
	var s Slab
	for i := 0; i < 10; i++ {
		s.Record(Event{T: time.Duration(i), Kind: KindWake, Node: int32(i)})
	}
	if len(s.Events) != 10 {
		t.Fatalf("slab holds %d events, want 10", len(s.Events))
	}
	if s.Events[7].Node != 7 {
		t.Fatalf("slab order broken: %+v", s.Events[7])
	}
	Discard.Record(Event{Kind: KindSleep}) // must not panic or retain
}

func TestRingKeepsTail(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{T: time.Duration(i), Kind: KindWake})
	}
	if r.Total() != 10 {
		t.Fatalf("ring total %d, want 10", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := time.Duration(6 + i); ev.T != want {
			t.Fatalf("ring[%d].T = %v, want %v", i, ev.T, want)
		}
	}
	// Partially filled ring returns what it has, in order.
	r2 := NewRing(8)
	r2.Record(Event{T: 1})
	r2.Record(Event{T: 2})
	if evs := r2.Events(); len(evs) != 2 || evs[0].T != 1 || evs[1].T != 2 {
		t.Fatalf("partial ring events = %+v", evs)
	}
}

func TestAppendNDJSON(t *testing.T) {
	line := string(AppendNDJSON(nil, 2, Event{
		T: 1500000000, Kind: KindRxData, Node: 3, Peer: 7, Origin: 0, Seq: 0,
	}))
	want := `{"type":"event","run":2,"t_ns":1500000000,"kind":"rx_data","node":3,"peer":7,"origin":0,"seq":0}` + "\n"
	if line != want {
		t.Fatalf("rx line:\n got %q\nwant %q", line, want)
	}
	// Peer -1 and zero value are omitted; packet kinds keep origin/seq.
	line = string(AppendNDJSON(nil, 0, Event{
		T: 42, Kind: KindTxATIM, Node: 1, Peer: -1, Value: 0.0116,
	}))
	want = `{"type":"event","run":0,"t_ns":42,"kind":"tx_atim","node":1,"value":0.0116}` + "\n"
	if line != want {
		t.Fatalf("tx_atim line:\n got %q\nwant %q", line, want)
	}
	line = string(AppendNDJSON(nil, 0, Event{T: 0, Kind: KindWake, Node: 0, Peer: -1}))
	want = `{"type":"event","run":0,"t_ns":0,"kind":"wake","node":0}` + "\n"
	if line != want {
		t.Fatalf("wake line:\n got %q\nwant %q", line, want)
	}
}

func TestProviderContext(t *testing.T) {
	if ProviderFrom(context.Background()) != nil {
		t.Fatal("empty context yields a provider")
	}
	c := &Collector{MaxRuns: 2}
	ctx := WithProvider(context.Background(), c)
	p := ProviderFrom(ctx)
	if p == nil {
		t.Fatal("provider lost in context")
	}
	s0 := p.BeginRun(0)
	s1 := p.BeginRun(1)
	if s0 == nil || s1 == nil {
		t.Fatal("collector refused runs under MaxRuns")
	}
	if p.BeginRun(2) != nil {
		t.Fatal("collector exceeded MaxRuns")
	}
	s0.Record(Event{Kind: KindWake})
	runs := c.Runs()
	if len(runs) != 2 || runs[0].Run != 0 || runs[1].Run != 1 {
		t.Fatalf("collector runs = %+v", runs)
	}
	if len(runs[0].Events) != 1 {
		t.Fatalf("slab 0 has %d events, want 1", len(runs[0].Events))
	}
	if DiscardProvider.BeginRun(5) != Discard {
		t.Fatal("DiscardProvider must hand out the Discard sink")
	}
}

func TestSummarize(t *testing.T) {
	const sec = time.Second
	events := []Event{
		{T: 0, Kind: KindTxData, Node: 0, Peer: -1, Value: 0.0266},
		{T: 1 * sec, Kind: KindTxEnd, Node: 0, Peer: -1},
		{T: 1 * sec, Kind: KindRxData, Node: 1, Peer: 0},
		{T: 1 * sec, Kind: KindDeliver, Node: 1, Peer: 0, Value: 1},
		{T: 2 * sec, Kind: KindSleep, Node: 1},
		{T: 2 * sec, Kind: KindEnergy, Node: 1, Peer: 1, Value: 0.06},
		{T: 4 * sec, Kind: KindWake, Node: 1},
		{T: 5 * sec, Kind: KindDuplicate, Node: 1, Peer: 0},
		{T: 6 * sec, Kind: KindDropCollision, Node: 2, Peer: 0},
		{T: 7 * sec, Kind: KindDeath, Node: 2},
		{T: 7 * sec, Kind: KindSleep, Node: 2},
	}
	sums := Summarize(events, 10*sec)
	if len(sums) != 3 {
		t.Fatalf("got %d summaries, want 3", len(sums))
	}
	n0, n1, n2 := sums[0], sums[1], sums[2]
	if n0.TxData != 1 || n0.Awake != 10*sec {
		t.Fatalf("node 0 summary %+v", n0)
	}
	if n1.RxData != 1 || n1.Delivered != 1 || n1.Duplicates != 1 {
		t.Fatalf("node 1 counters %+v", n1)
	}
	// Node 1: awake [0,2), asleep [2,4), awake [4,10) = 8s.
	if n1.Awake != 8*sec {
		t.Fatalf("node 1 awake %v, want 8s", n1.Awake)
	}
	if n1.EnergyJ != 0.06 {
		t.Fatalf("node 1 energy %v", n1.EnergyJ)
	}
	if !n2.Died || n2.Drops != 1 || n2.Awake != 7*sec {
		t.Fatalf("node 2 summary %+v", n2)
	}
	if Summarize(nil, sec) != nil {
		t.Fatal("empty stream must summarize to nil")
	}
}

func TestAppendSummaryNDJSON(t *testing.T) {
	line := string(AppendSummaryNDJSON(nil, 1, NodeSummary{
		Node: 4, Awake: 2 * time.Second, TxData: 3, RxATIM: 2, EnergyJ: 0.125, Died: true,
	}))
	if !strings.HasPrefix(line, `{"type":"node","run":1,"node":4,"awake_ns":2000000000,`) {
		t.Fatalf("summary line prefix wrong: %q", line)
	}
	if !strings.Contains(line, `"energy_j":0.125`) || !strings.Contains(line, `"died":true`) {
		t.Fatalf("summary line missing fields: %q", line)
	}
	if strings.Contains(string(AppendSummaryNDJSON(nil, 0, NodeSummary{})), "died") {
		t.Fatal("living node must omit died")
	}
}

func TestRecordAllocFree(t *testing.T) {
	var sink Sink = Discard
	ev := Event{T: 1, Kind: KindTxData, Node: 1, Peer: -1, Value: 0.5}
	if n := testing.AllocsPerRun(1000, func() { sink.Record(ev) }); n != 0 {
		t.Fatalf("Discard.Record allocates %v per call", n)
	}
	slab := &Slab{Events: make([]Event, 0, 4096)}
	sink = slab
	if n := testing.AllocsPerRun(1000, func() {
		slab.Events = slab.Events[:0]
		sink.Record(ev)
	}); n != 0 {
		t.Fatalf("pre-sized Slab.Record allocates %v per call", n)
	}
}
