// Package cache is a content-addressed, sharded result cache for pure
// computations. Keys are canonical strings (see scenario.PointKey); values
// are whatever the computation produces. The key space is split across N
// independently locked shards by FNV-1a hash, each shard bounds its entry
// count with LRU eviction, and concurrent requests for the same key are
// de-duplicated singleflight-style: one caller computes, the rest wait and
// share the result. Hit, miss, in-flight-join, and eviction counters make
// the cache's behavior observable (served by /v1/stats).
package cache

import (
	"fmt"
	"sync"
)

// Stats is a point-in-time snapshot of the cache's counters, aggregated
// across shards.
type Stats struct {
	// Hits counts lookups served from a completed entry.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that had to compute.
	Misses uint64 `json:"misses"`
	// InflightJoins counts lookups that joined another caller's in-flight
	// computation instead of computing themselves.
	InflightJoins uint64 `json:"inflight_joins"`
	// Evictions counts entries dropped by the per-shard LRU bound.
	Evictions uint64 `json:"evictions"`
	// Entries is the current number of cached entries.
	Entries int `json:"entries"`
	// Capacity is the total entry bound across shards.
	Capacity int `json:"capacity"`
	// Shards is the shard count.
	Shards int `json:"shards"`
}

// Cache is a sharded LRU cache with singleflight de-duplication. The zero
// value is not usable; construct with New.
type Cache[V any] struct {
	shards []shard[V]
}

// entry is one cached (or in-flight) computation. done is closed when the
// computation finishes; until then val/err are owned by the computing
// goroutine. prev/next thread the shard's LRU list (most recent at head).
type entry[V any] struct {
	key        string
	val        V
	err        error
	done       chan struct{}
	computed   bool
	prev, next *entry[V]
}

type shard[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]
	// head is the most recently used entry, tail the least.
	head, tail *entry[V]
	capacity   int

	hits, misses, joins, evictions uint64
}

// New returns a cache with the given shard count and total entry capacity,
// split evenly across shards (each shard holds at least one entry).
func New[V any](shards, capacity int) (*Cache[V], error) {
	if shards <= 0 {
		return nil, fmt.Errorf("cache: shard count %d must be positive", shards)
	}
	if capacity < shards {
		return nil, fmt.Errorf("cache: capacity %d below shard count %d", capacity, shards)
	}
	c := &Cache[V]{shards: make([]shard[V], shards)}
	for i := range c.shards {
		per := capacity / shards
		if i < capacity%shards {
			per++
		}
		c.shards[i] = shard[V]{entries: make(map[string]*entry[V]), capacity: per}
	}
	return c, nil
}

// GetOrCompute returns the value cached under key, computing it with
// compute on a miss. Concurrent calls with the same key compute once: the
// first caller runs compute, the rest block until it finishes and share
// the outcome. cached reports whether the result existed before this call
// (a hit or an in-flight join). Errors are returned to every waiting
// caller but never cached — the next request retries.
func (c *Cache[V]) GetOrCompute(key string, compute func() (V, error)) (val V, cached bool, err error) {
	sh := &c.shards[fnv1a(key)%uint64(len(c.shards))]

	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		if e.computed {
			sh.hits++
			sh.moveToFront(e)
			sh.mu.Unlock()
			return e.val, true, nil
		}
		sh.joins++
		sh.mu.Unlock()
		<-e.done
		// The leader removed the entry on error; its outcome still lives
		// in the entry we hold.
		return e.val, e.err == nil, e.err
	}
	e := &entry[V]{key: key, done: make(chan struct{})}
	sh.misses++
	sh.entries[key] = e
	sh.pushFront(e)
	sh.mu.Unlock()

	e.val, e.err = compute()

	sh.mu.Lock()
	if e.err != nil {
		// Failed computations are not cached: unlink so the next request
		// recomputes instead of replaying the error forever.
		sh.unlink(e)
		delete(sh.entries, key)
	} else {
		e.computed = true
		sh.evict()
	}
	sh.mu.Unlock()
	close(e.done)
	return e.val, false, e.err
}

// Get returns the completed value cached under key. It never blocks: an
// entry still being computed by a GetOrCompute leader counts as a miss.
// Hits and misses feed the same counters as GetOrCompute, so a cache used
// through Get/Put (the store.Store tier API) stays observable.
func (c *Cache[V]) Get(key string) (V, bool) {
	sh := &c.shards[fnv1a(key)%uint64(len(c.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok && e.computed {
		sh.hits++
		sh.moveToFront(e)
		return e.val, true
	}
	sh.misses++
	var zero V
	return zero, false
}

// Put stores a completed value under key, evicting LRU entries as needed.
// An existing completed entry is overwritten in place; an in-flight entry
// (a GetOrCompute leader mid-computation) is left alone — the leader owns
// it and will publish the identical value, since keys address pure
// computations.
func (c *Cache[V]) Put(key string, val V) {
	sh := &c.shards[fnv1a(key)%uint64(len(c.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok {
		if e.computed {
			e.val = val
			sh.moveToFront(e)
		}
		return
	}
	e := &entry[V]{key: key, val: val, computed: true, done: make(chan struct{})}
	close(e.done)
	sh.entries[key] = e
	sh.pushFront(e)
	sh.evict()
}

// Stats aggregates the counters across shards.
func (c *Cache[V]) Stats() Stats {
	var s Stats
	s.Shards = len(c.shards)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.InflightJoins += sh.joins
		s.Evictions += sh.evictions
		s.Entries += len(sh.entries)
		s.Capacity += sh.capacity
		sh.mu.Unlock()
	}
	return s
}

// Len returns the current entry count.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// shardFor exposes the shard index of a key for distribution tests.
func (c *Cache[V]) shardFor(key string) int {
	return int(fnv1a(key) % uint64(len(c.shards)))
}

// evict drops least-recently-used completed entries until the shard is
// within capacity. In-flight entries are never evicted: other callers may
// be blocked on their done channel.
func (sh *shard[V]) evict() {
	for len(sh.entries) > sh.capacity {
		victim := sh.tail
		for victim != nil && !victim.computed {
			victim = victim.prev
		}
		if victim == nil {
			return // everything over capacity is in flight
		}
		sh.unlink(victim)
		delete(sh.entries, victim.key)
		sh.evictions++
	}
}

func (sh *shard[V]) pushFront(e *entry[V]) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard[V]) moveToFront(e *entry[V]) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// fnv1a is the 64-bit FNV-1a hash, inlined to keep key->shard routing
// allocation-free.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
