package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustNew(t *testing.T, shards, capacity int) *Cache[int] {
	t.Helper()
	c, err := New[int](shards, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidates(t *testing.T) {
	if _, err := New[int](0, 10); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := New[int](-1, 10); err == nil {
		t.Fatal("negative shards accepted")
	}
	if _, err := New[int](4, 3); err == nil {
		t.Fatal("capacity below shard count accepted")
	}
}

func TestGetOrComputeHitAndMiss(t *testing.T) {
	c := mustNew(t, 4, 16)
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }

	v, cached, err := c.GetOrCompute("k", compute)
	if err != nil || v != 42 || cached {
		t.Fatalf("first call: v=%d cached=%v err=%v", v, cached, err)
	}
	v, cached, err = c.GetOrCompute("k", compute)
	if err != nil || v != 42 || !cached {
		t.Fatalf("second call: v=%d cached=%v err=%v", v, cached, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := mustNew(t, 2, 8)
	boom := errors.New("boom")
	calls := 0
	fail := func() (int, error) { calls++; return 0, boom }

	if _, _, err := c.GetOrCompute("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.GetOrCompute("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Fatalf("failed compute cached (ran %d times, want 2)", calls)
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("failed entries remain cached: %d", n)
	}
	// The key still works once the computation succeeds.
	if v, _, err := c.GetOrCompute("k", func() (int, error) { return 7, nil }); err != nil || v != 7 {
		t.Fatalf("recovery failed: v=%d err=%v", v, err)
	}
}

func TestSingleflight(t *testing.T) {
	c := mustNew(t, 4, 16)
	const callers = 32
	var (
		computes atomic.Int32
		release  = make(chan struct{})
		start    sync.WaitGroup
		done     sync.WaitGroup
	)
	start.Add(callers)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer done.Done()
			start.Done()
			start.Wait() // maximize overlap
			v, _, err := c.GetOrCompute("shared", func() (int, error) {
				computes.Add(1)
				<-release // hold every concurrent caller in the join path
				return 99, nil
			})
			if err != nil || v != 99 {
				t.Errorf("v=%d err=%v", v, err)
			}
		}()
	}
	start.Wait()
	close(release)
	done.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("concurrent identical requests computed %d times, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.InflightJoins+st.Hits != callers-1 {
		t.Fatalf("joins+hits = %d+%d, want %d", st.InflightJoins, st.Hits, callers-1)
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard isolates the LRU order from hashing.
	c := mustNew(t, 1, 3)
	put := func(k string, v int) {
		t.Helper()
		if _, _, err := c.GetOrCompute(k, func() (int, error) { return v, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a", 1)
	put("b", 2)
	put("c", 3)
	put("a", 1) // touch a: LRU order is now b, c, a
	put("d", 4) // evicts b

	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats %+v", st)
	}
	calls := 0
	if _, cached, _ := c.GetOrCompute("b", func() (int, error) { calls++; return 2, nil }); cached || calls != 1 {
		t.Fatal("LRU victim b still cached")
	}
	// b's insert evicted c (the new LRU); a and d must still be resident.
	for _, k := range []string{"a", "d"} {
		if _, cached, _ := c.GetOrCompute(k, func() (int, error) { return 0, nil }); !cached {
			t.Fatalf("recently used %q was evicted", k)
		}
	}
}

func TestShardDistribution(t *testing.T) {
	const shards = 8
	c, err := New[int](shards, 8192)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	const keys = 4096
	for i := 0; i < keys; i++ {
		counts[c.shardFor(fmt.Sprintf("fig%d|scale|x=%d", i%20, i))]++
	}
	// FNV over realistic keys should spread well; allow generous slack
	// around the ideal keys/shards to keep the test robust.
	for i, n := range counts {
		if n < keys/shards/2 || n > keys/shards*2 {
			t.Fatalf("shard %d holds %d of %d keys (counts %v)", i, n, keys, counts)
		}
	}

	// Keys must land on stable shards, and the capacity split must cover
	// the whole configured bound.
	if got := c.Stats().Capacity; got != 8192 {
		t.Fatalf("capacity = %d, want 8192", got)
	}
}

func TestCapacitySplitCoversUnevenDivision(t *testing.T) {
	c, err := New[int](3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Capacity; got != 10 {
		t.Fatalf("capacity = %d, want 10", got)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := mustNew(t, 4, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%50)
				v, _, err := c.GetOrCompute(k, func() (int, error) { return i % 50, nil })
				if err != nil || v != i%50 {
					t.Errorf("k=%s v=%d err=%v", k, v, err)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 32 {
		t.Fatalf("cache exceeded capacity: %d entries", n)
	}
}

// TestGetPut covers the non-computing tier API (store.Store's memory
// backend): Put publishes immediately, Get never blocks, both feed the
// hit/miss counters, and Put respects the LRU bound.
func TestGetPut(t *testing.T) {
	c := mustNew(t, 2, 4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("get a: %d ok=%v", v, ok)
	}
	// Overwrite keeps one entry.
	c.Put("a", 2)
	if v, ok := c.Get("a"); !ok || v != 2 || c.Len() != 1 {
		t.Fatalf("after overwrite: %d ok=%v len=%d", v, ok, c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Put evicts beyond capacity.
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() > 4 {
		t.Fatalf("put overflowed the LRU bound: %d entries", c.Len())
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions counted")
	}
}

// TestGetDoesNotBlockOnInflight: a Get racing a GetOrCompute leader must
// see a miss, not wait for the computation.
func TestGetDoesNotBlockOnInflight(t *testing.T) {
	c := mustNew(t, 1, 4)
	started := make(chan struct{})
	release := make(chan struct{})
	go c.GetOrCompute("slow", func() (int, error) {
		close(started)
		<-release
		return 9, nil
	})
	<-started
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := c.Get("slow"); ok {
			t.Error("in-flight entry served as a hit")
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Get blocked on an in-flight computation")
	}
	close(release)
}

// TestPutThenGetOrCompute: a value Put through the tier API is a hit for
// the computing API, and vice versa — one cache, two entry points.
func TestPutThenGetOrCompute(t *testing.T) {
	c := mustNew(t, 2, 8)
	c.Put("x", 7)
	v, cached, err := c.GetOrCompute("x", func() (int, error) {
		t.Error("computed despite Put")
		return 0, nil
	})
	if err != nil || !cached || v != 7 {
		t.Fatalf("GetOrCompute after Put: %d cached=%v err=%v", v, cached, err)
	}
	if _, _, err := c.GetOrCompute("y", func() (int, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get("y"); !ok || v != 3 {
		t.Fatalf("Get after GetOrCompute: %d ok=%v", v, ok)
	}
}
