package gossip

import (
	"testing"
	"testing/quick"

	"pbbf/internal/rng"
	"pbbf/internal/topo"
)

func TestFloodValidation(t *testing.T) {
	g := topo.MustGrid(5, 5)
	r := rng.New(1)
	if _, err := Flood(g, 0, -0.1, 5, r); err == nil {
		t.Fatal("negative pg accepted")
	}
	if _, err := Flood(g, 0, 1.1, 5, r); err == nil {
		t.Fatal("pg > 1 accepted")
	}
	if _, err := Flood(g, 0, 0.5, 0, r); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := Flood(g, -1, 0.5, 5, r); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := Flood(nil, 0, 0.5, 5, r); err == nil {
		t.Fatal("nil topology accepted")
	}
}

func TestFloodExtremes(t *testing.T) {
	g := topo.MustGrid(10, 10)
	r := rng.New(2)
	// pg=1 is plain flooding: full coverage, every node forwards.
	full, err := Flood(g, g.Center(), 1, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if full.Coverage.Mean() != 1 {
		t.Fatalf("pg=1 coverage %v", full.Coverage.Mean())
	}
	if full.Forwarders.Mean() != 100 {
		t.Fatalf("pg=1 forwarders %v, want 100", full.Forwarders.Mean())
	}
	// pg=0: only the source forwards; coverage is 1 + deg(src) nodes.
	none, err := Flood(g, g.Center(), 0, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if want := 5.0 / 100; none.Coverage.Mean() != want {
		t.Fatalf("pg=0 coverage %v, want %v", none.Coverage.Mean(), want)
	}
}

func TestFloodPathsAreShortestAtFullGossip(t *testing.T) {
	g := topo.MustGrid(9, 9)
	r := rng.New(3)
	res, err := Flood(g, g.Center(), 1, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	// BFS flooding: every path is shortest, stretch exactly 1.
	if res.PathStretch.Mean() != 1 || res.PathStretch.Max() != 1 {
		t.Fatalf("full-flood stretch mean=%v max=%v", res.PathStretch.Mean(), res.PathStretch.Max())
	}
}

func TestBimodalCoverage(t *testing.T) {
	// The paper's §2.1: gossip coverage is bimodal in pg. The 4-neighbor
	// grid site-percolation threshold is ≈0.593.
	g := topo.MustGrid(30, 30)
	r := rng.New(4)
	low, err := Flood(g, g.Center(), 0.4, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Flood(g, g.Center(), 0.85, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	if low.Coverage.Mean() > 0.25 {
		t.Fatalf("subcritical gossip coverage %v", low.Coverage.Mean())
	}
	if high.Coverage.Mean() < 0.8 {
		t.Fatalf("supercritical gossip coverage %v", high.Coverage.Mean())
	}
}

func TestFewerForwardersThanFlooding(t *testing.T) {
	g := topo.MustGrid(20, 20)
	r := rng.New(5)
	res, err := Flood(g, g.Center(), 0.8, 20, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forwarders.Mean() >= 400*0.95 {
		t.Fatalf("gossip at 0.8 forwards %v times, expected savings", res.Forwarders.Mean())
	}
	if res.Coverage.Mean() < 0.85 {
		t.Fatalf("coverage %v too low for the savings comparison", res.Coverage.Mean())
	}
}

func TestCriticalForwardRatio(t *testing.T) {
	g := topo.MustGrid(25, 25)
	r := rng.New(6)
	pc, err := CriticalForwardRatio(g, g.Center(), 0.8, 20, r)
	if err != nil {
		t.Fatal(err)
	}
	// Site percolation threshold on the square lattice is ≈0.593; the
	// 80%-coverage finite-size ratio sits somewhat above it.
	if pc < 0.55 || pc > 0.9 {
		t.Fatalf("critical forward ratio %v outside [0.55, 0.9]", pc)
	}
}

func TestCriticalForwardRatioValidation(t *testing.T) {
	g := topo.MustGrid(5, 5)
	if _, err := CriticalForwardRatio(g, 0, 0, 5, rng.New(1)); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, err := CriticalForwardRatio(g, 0, 1.5, 5, rng.New(1)); err == nil {
		t.Fatal("target >1 accepted")
	}
}

// Property: coverage is monotone (within noise) in pg, and all metrics
// stay within their ranges.
func TestPropertyCoverageMonotone(t *testing.T) {
	check := func(seed uint64) bool {
		g := topo.MustGrid(12, 12)
		r := rng.New(seed)
		prev := -1.0
		for _, pg := range []float64{0.2, 0.5, 0.8, 1} {
			res, err := Flood(g, g.Center(), pg, 20, r)
			if err != nil {
				return false
			}
			c := res.Coverage.Mean()
			if c < 0 || c > 1 || c < prev-0.1 {
				return false
			}
			if res.PathStretch.N() > 0 && res.PathStretch.Min() < 1 {
				return false // a path shorter than BFS distance is impossible
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFlood30(b *testing.B) {
	g := topo.MustGrid(30, 30)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Flood(g, g.Center(), 0.7, 1, r); err != nil {
			b.Fatal(err)
		}
	}
}
