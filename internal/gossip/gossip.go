// Package gossip implements the gossip-based probabilistic flooding
// baseline the paper positions PBBF against (Section 2.1, Haas et al.):
// on first reception, a node forwards the broadcast to *all* neighbors
// with probability pg, and stays silent otherwise. This is a site
// percolation process — the coin removes the whole node from the
// dissemination — in contrast to PBBF's bond percolation, where each
// (link, time) pair flips its own coin.
//
// Gossip exhibits the same bimodal coverage but offers no energy-latency
// knob: it does not interact with sleep scheduling at all, so every hop
// pays the full sleep-induced delay and there is nothing to trade. The
// extension experiment extgossip contrasts the two thresholds.
package gossip

import (
	"fmt"

	"pbbf/internal/rng"
	"pbbf/internal/stats"
	"pbbf/internal/topo"
)

// Result summarizes a batch of gossip floods.
type Result struct {
	// Coverage is the distribution of per-flood covered fraction.
	Coverage stats.Accumulator
	// Forwarders is the distribution of per-flood forwarding node counts
	// (the energy proxy: each forwarder transmits once).
	Forwarders stats.Accumulator
	// PathStretch is the distribution of (tree path length / BFS
	// distance) over covered nodes.
	PathStretch stats.Accumulator
}

// Flood runs trials independent gossip floods from src with forwarding
// probability pg and returns aggregate metrics. The source always
// forwards (as in the gossip-routing literature).
func Flood(t topo.Topology, src topo.NodeID, pg float64, trials int, r *rng.Source) (*Result, error) {
	if pg < 0 || pg > 1 {
		return nil, fmt.Errorf("gossip: pg %v outside [0,1]", pg)
	}
	if trials <= 0 {
		return nil, fmt.Errorf("gossip: trials %d must be positive", trials)
	}
	if t == nil || t.N() == 0 {
		return nil, fmt.Errorf("gossip: empty topology")
	}
	if int(src) < 0 || int(src) >= t.N() {
		return nil, fmt.Errorf("gossip: source %d outside [0,%d)", src, t.N())
	}
	dist := topo.HopDistances(t, src)
	res := &Result{}
	hops := make([]int, t.N())
	received := make([]bool, t.N())
	for trial := 0; trial < trials; trial++ {
		for i := range received {
			received[i] = false
			hops[i] = 0
		}
		received[src] = true
		queue := []topo.NodeID{src}
		covered := 1
		forwarders := 0
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			// Site percolation: the node either rebroadcasts to every
			// neighbor or stays silent. The source always forwards.
			if cur != src && !r.Bool(pg) {
				continue
			}
			forwarders++
			for _, nb := range t.Neighbors(cur) {
				if received[nb] {
					continue
				}
				received[nb] = true
				hops[nb] = hops[cur] + 1
				covered++
				queue = append(queue, nb)
			}
		}
		res.Coverage.Add(float64(covered) / float64(t.N()))
		res.Forwarders.Add(float64(forwarders))
		for id := range received {
			if received[id] && dist[id] > 0 {
				res.PathStretch.Add(float64(hops[id]) / float64(dist[id]))
			}
		}
	}
	return res, nil
}

// CriticalForwardRatio estimates, by bisection over pg, the smallest
// forwarding probability whose mean coverage reaches the target fraction.
// It is the site-percolation analogue of percolation.CriticalBondRatio.
func CriticalForwardRatio(t topo.Topology, src topo.NodeID, target float64, trials int, r *rng.Source) (float64, error) {
	if target <= 0 || target > 1 {
		return 0, fmt.Errorf("gossip: target %v outside (0,1]", target)
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 20; iter++ {
		mid := (lo + hi) / 2
		res, err := Flood(t, src, mid, trials, r)
		if err != nil {
			return 0, err
		}
		if res.Coverage.Mean() >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
