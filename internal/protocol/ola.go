package protocol

import (
	"pbbf/internal/core"
	"pbbf/internal/topo"
)

// Default OLA thresholds: one expected full-strength reception decodes;
// a node that needed at most half a copy beyond the threshold counts as a
// boundary node and relays.
const (
	defaultDecodeThreshold = 1.0
	defaultRelayThreshold  = 1.5
)

// ola is a Kailas-style opportunistic large array (OLA) broadcast with
// cooperative energy accumulation: every receiver banks the gain of every
// overheard copy of a packet — duplicates included, which is why OnReceive
// consumes non-first copies — and decodes once the accumulated gain
// crosses DecodeThreshold. Of the decoders, only boundary nodes relay:
// those whose accumulated gain sits below RelayThreshold at decode time,
// the OLA analogue of "the decoding frontier retransmits, the saturated
// interior stays quiet". Radios never sleep (UsesATIM is false and the
// protocol never calls SetAwake(false)), so OLA anchors the always-on
// corner of the energy-latency frontier with a relay count throttled by
// the threshold pair.
//
// Each copy's gain is drawn uniformly in [0.5, 1.5) from the receiving
// node's stream — a unit-mean fading proxy standing in for the path-loss
// accumulation of the analog model, which keeps the port inside the
// repository's existing unit-disk PHY. The support straddles the default
// decode threshold on purpose: half of all single copies decode outright
// (the near field of a real OLA burst), the rest need a second overheard
// copy, which is what makes the accumulation — and the relay frontier it
// feeds — actually happen.
type ola struct {
	decodeAt float64
	relayAt  float64
	// acc banks per-packet accumulated gain until decode; decoded marks
	// packets past the threshold. Both retain their allocations across
	// pooled runs.
	acc     map[core.PacketKey]float64
	decoded map[core.PacketKey]struct{}
}

func (o *ola) Name() string             { return NameOLA }
func (o *ola) UsesATIM() bool           { return false }
func (o *ola) OnFrameStart(NodeAPI)     {}
func (o *ola) OnTimer(NodeAPI, int)     {}
func (o *ola) OnWindowEnd(NodeAPI) bool { return true } // never consulted: no ATIM substrate

func (o *ola) Reset(_ NodeAPI, spec Spec) error {
	o.decodeAt = spec.DecodeThreshold
	if o.decodeAt == 0 {
		o.decodeAt = defaultDecodeThreshold
	}
	o.relayAt = spec.RelayThreshold
	if o.relayAt == 0 {
		o.relayAt = defaultRelayThreshold
	}
	if o.acc == nil {
		o.acc = make(map[core.PacketKey]float64)
		o.decoded = make(map[core.PacketKey]struct{})
	} else {
		clear(o.acc)
		clear(o.decoded)
	}
	return nil
}

// OnOriginate: the source holds the packet by construction — transmit once
// and never accumulate against it.
func (o *ola) OnOriginate(api NodeAPI, pkt Packet) {
	o.decoded[pkt.Key] = struct{}{}
	api.SendNow(pkt)
}

// OnReceive accumulates this copy's gain and, on crossing the decode
// threshold, delivers the packet and applies the boundary relay test.
func (o *ola) OnReceive(api NodeAPI, pkt Packet, from topo.NodeID, firstCopy bool) {
	if _, done := o.decoded[pkt.Key]; done {
		return
	}
	gain := 0.5 + api.Rand().Float64()
	total := o.acc[pkt.Key] + gain
	if total < o.decodeAt {
		o.acc[pkt.Key] = total
		return
	}
	o.decoded[pkt.Key] = struct{}{}
	delete(o.acc, pkt.Key)
	api.DeliverToApp(pkt, from)
	if total < o.relayAt {
		api.SendNow(pkt)
	}
}
