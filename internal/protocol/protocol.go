// Package protocol defines the broadcast-protocol contract the MAC layer
// dispatches through: a narrow Protocol interface whose hooks make every
// forwarding, sleeping, and relaying decision, over a NodeAPI that exposes
// the node's radio, queue, timer, and randomness primitives. The MAC
// (internal/mac) remains the substrate — carrier sense, backoff, frame
// airtimes, energy metering, the PSM/ATIM schedule — while everything the
// paper calls "the protocol" lives behind this interface.
//
// Three protocols ship behind the contract:
//
//   - pbbf (the reference, and the default): the paper's Probability-Based
//     Broadcast Forwarding over 802.11 PSM. Byte-identical to the
//     pre-interface implementation — the p and q coins are drawn by the
//     hooks in exactly the order the monolithic MAC drew them.
//   - sleepsched: a King-style sleep-scheduled broadcast ("Sleeping on the
//     Job"): nodes wake on a fixed round-robin schedule and forwarders
//     repeat each packet across consecutive intervals, trading latency for
//     a hard duty-cycle energy bound.
//   - ola: a Kailas-style opportunistic-large-array scheme: always-awake
//     receivers accumulate energy across every overheard copy, decode at a
//     threshold, and only boundary nodes (low accumulated energy at decode
//     time) relay.
//
// See docs/PROTOCOLS.md for the contract's rules and the rival ports'
// modelling choices.
package protocol

import (
	"time"

	"pbbf/internal/core"
	"pbbf/internal/rng"
	"pbbf/internal/topo"
)

// Packet is a broadcast SDU as the protocol layer sees it. mac.Packet is
// an alias of this type, so the application payloads the MAC carries flow
// through protocol hooks unchanged.
type Packet struct {
	// Key identifies the broadcast for duplicate suppression.
	Key core.PacketKey
	// Hops counts MAC hops from the originator (0 at the source).
	Hops int
	// Payload is the application content (opaque to MAC and protocol).
	Payload any
}

// NodeAPI is the substrate surface a Protocol decides over: one MAC node's
// identity, clock, randomness, radio, transmit queue, and timers. All
// methods are single-threaded (the event kernel serializes everything);
// none may be retained across hook invocations except through the node
// itself. Implemented by *mac.Node.
type NodeAPI interface {
	// ID returns the node's identifier.
	ID() topo.NodeID
	// Now returns the current simulation time.
	Now() time.Duration
	// Rand returns the node's random source. Draw order is the determinism
	// contract: a protocol must draw exactly the same sequence for the
	// same inputs, or runs stop being reproducible.
	Rand() *rng.Source
	// Timing returns the PSM schedule (beacon interval and ATIM window).
	Timing() core.Timing
	// Params returns the node's live PBBF operating point — the static
	// configuration or the adaptive controller's current values. Rival
	// protocols may ignore it.
	Params() core.Params
	// SendNow queues the packet for immediate CSMA transmission, waking
	// the radio if needed and counting the send as protocol-immediate
	// (the PBBF p-coin path; stats.ImmediateSent).
	SendNow(pkt Packet)
	// Send queues the packet for CSMA transmission without waking the
	// radio or marking it immediate (scheduled retransmissions).
	Send(pkt Packet)
	// Announce defers the packet to the next ATIM window (PSM protocols
	// only; it is never drained when UsesATIM is false).
	Announce(pkt Packet)
	// DeliverToApp hands a decoded packet to the application exactly once
	// per packet, feeding the delivery/latency metrics (and, under the
	// adaptive extension, the loss observer).
	DeliverToApp(pkt Packet, from topo.NodeID)
	// SetAwake turns the radio on or off, metering the energy transition.
	// A no-op when the state already matches or the node is dead.
	SetAwake(awake bool)
	// StayThisFrame pins the node awake for the rest of the current beacon
	// interval (the PSM must-stay latch; meaningless when UsesATIM is
	// false).
	StayThisFrame()
	// ScheduleTimer calls the protocol's OnTimer(tag) after delay. Timers
	// on dead nodes are dropped. Scheduling is allocation-free in steady
	// state (the node pools timer records).
	ScheduleTimer(delay time.Duration, tag int)
	// TxSlack returns the worst-case time one data transmission needs
	// from release to end of airtime (DIFS + full contention window +
	// airtime) — the margin to leave when drawing send offsets inside an
	// interval.
	TxSlack() time.Duration
}

// Protocol makes the broadcast decisions for one node. Implementations
// are per-node state machines: the MAC calls Reset when a (possibly
// pooled) node is initialized for a run, then the On* hooks as events
// arrive. A protocol with no per-node state may be shared across nodes.
type Protocol interface {
	// Name returns the registered protocol name.
	Name() string
	// UsesATIM reports whether the node runs the 802.11 PSM substrate:
	// beacon-synchronized wakeups, ATIM announcements, the data embargo
	// during the ATIM window, and the end-of-window sleep decision. When
	// false the MAC runs none of that machinery and the protocol owns the
	// radio schedule entirely (via SetAwake and timers).
	UsesATIM() bool
	// Reset (re)initializes the protocol instance for a new run on the
	// given node with the given spec. It must clear all per-node state
	// while retaining allocations, mirroring the pooled kernel's idiom.
	Reset(api NodeAPI, spec Spec) error
	// OnOriginate is called once when the application broadcasts a new
	// packet from this node (already marked seen by the MAC).
	OnOriginate(api NodeAPI, pkt Packet)
	// OnReceive is called for every decoded data frame, duplicates
	// included; firstCopy is true for the first copy of a packet this node
	// has seen. Hops is already incremented for this hop.
	OnReceive(api NodeAPI, pkt Packet, from topo.NodeID, firstCopy bool)
	// OnFrameStart is called at every beacon-interval boundary, after the
	// PSM substrate's own frame work when UsesATIM is true, or as the only
	// per-frame hook when false.
	OnFrameStart(api NodeAPI)
	// OnWindowEnd is the end-of-ATIM-window sleep decision (PSM protocols
	// only): it is consulted only when the substrate has no reason to stay
	// awake, and returning true keeps the node awake for this interval.
	OnWindowEnd(api NodeAPI) bool
	// OnTimer is called when a timer scheduled via ScheduleTimer fires.
	OnTimer(api NodeAPI, tag int)
}
