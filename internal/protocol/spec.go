package protocol

import (
	"fmt"
	"strings"

	"pbbf/internal/match"
)

// Canonical protocol names. The empty string is the canonical spelling of
// the default: scenario keys, checkpoints, and the HTTP API all treat
// "no protocol named" and "pbbf" as the same identity (CanonicalName folds
// one onto the other), which is what keeps every pre-protocol-interface
// cache key and checkpoint valid.
const (
	NamePBBF       = "pbbf"
	NameSleepSched = "sleepsched"
	NameOLA        = "ola"
)

// Spec selects and parameterizes a protocol. The zero value selects PBBF
// with the MAC's configured Params — every configuration that predates the
// protocol interface is a valid zero Spec.
type Spec struct {
	// Name is the registered protocol name: "" or "pbbf", "sleepsched",
	// "ola".
	Name string

	// WakePeriod is the sleepsched round-robin period W: node i is
	// scheduled awake in beacon interval F iff (F+i) mod W == 0. 0 means
	// the default (4).
	WakePeriod int
	// Repeats is how many consecutive beacon intervals a sleepsched
	// forwarder retransmits each packet; W repeats guarantee every
	// neighbor's scheduled wakeup overlaps one transmission. 0 means the
	// default (= WakePeriod).
	Repeats int

	// DecodeThreshold is the accumulated gain at which an OLA node decodes
	// a packet. 0 means the default (1.0 — one expected full-strength
	// reception).
	DecodeThreshold float64
	// RelayThreshold is the OLA boundary test: a node relays a decoded
	// packet iff its accumulated gain at decode time is below this value
	// (barely-decoded nodes sit at the decoding boundary and extend it;
	// saturated interior nodes stay quiet). 0 means the default (1.5).
	RelayThreshold float64
}

// CanonicalName folds a protocol name to its key spelling: trimmed,
// lower-cased, and with the PBBF default rendered as the empty string.
func CanonicalName(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == NamePBBF {
		return ""
	}
	return name
}

// Canonical returns the spec's canonical name ("" for PBBF).
func (sp Spec) Canonical() string { return CanonicalName(sp.Name) }

// IsPBBF reports whether the spec selects the default PBBF protocol.
func (sp Spec) IsPBBF() bool { return sp.Canonical() == "" }

// Validate checks the spec: a known name and in-range knobs.
func (sp Spec) Validate() error {
	switch sp.Canonical() {
	case "", NameSleepSched, NameOLA:
	default:
		return UnknownError(sp.Name)
	}
	if sp.WakePeriod < 0 || sp.Repeats < 0 {
		return fmt.Errorf("protocol: sleepsched wake period %d / repeats %d must be non-negative",
			sp.WakePeriod, sp.Repeats)
	}
	if sp.DecodeThreshold < 0 || sp.RelayThreshold < 0 {
		return fmt.Errorf("protocol: ola thresholds decode=%v relay=%v must be non-negative",
			sp.DecodeThreshold, sp.RelayThreshold)
	}
	return nil
}

// New returns a protocol instance for one node. PBBF is stateless and
// shared (allocation-free); the rivals get a fresh per-node state machine.
// The caller must Reset the instance before use.
func New(sp Spec) (Protocol, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	switch sp.Canonical() {
	case "":
		return PBBF, nil
	case NameSleepSched:
		return &sleepSched{}, nil
	case NameOLA:
		return &ola{}, nil
	}
	return nil, UnknownError(sp.Name)
}

// SpecFor resolves a user-supplied protocol name (a -protocol flag, an
// HTTP request field, or Scale.Protocol) to its default spec. Unknown
// names fail with the registry's did-you-mean error.
func SpecFor(name string) (Spec, error) {
	c := CanonicalName(name)
	switch c {
	case "":
		return Spec{}, nil
	case NameSleepSched, NameOLA:
		return Spec{Name: c}, nil
	}
	return Spec{}, UnknownError(name)
}

// UnknownError builds the unknown-protocol error, with a did-you-mean
// suggestion when something registered is close — the same Levenshtein
// dialect scenario IDs use.
func UnknownError(name string) error {
	if close := match.Closest(name, Names(), 3); len(close) > 0 {
		return fmt.Errorf("protocol: unknown protocol %q (did you mean %s?)", name, strings.Join(close, ", "))
	}
	return fmt.Errorf("protocol: unknown protocol %q (known: %s)", name, strings.Join(Names(), ", "))
}

// Names returns the registered protocol names in documentation order.
func Names() []string {
	infos := Infos()
	names := make([]string, len(infos))
	for i, in := range infos {
		names[i] = in.Name
	}
	return names
}

// Knob documents one protocol parameter for the CLI and HTTP metadata.
type Knob struct {
	Name    string  `json:"name"`
	Desc    string  `json:"desc"`
	Default float64 `json:"default"`
}

// Info is one protocol's metadata: what GET /v1/protocols and `pbbf -list`
// show.
type Info struct {
	// Name is the registered name (the -protocol flag value).
	Name string `json:"name"`
	// Title is the one-line human name.
	Title string `json:"title"`
	// Summary describes the scheme and its energy-latency position.
	Summary string `json:"summary"`
	// Knobs documents the spec fields the protocol reads.
	Knobs []Knob `json:"knobs,omitempty"`
}

// Infos returns every registered protocol's metadata in documentation
// order, PBBF (the default) first.
func Infos() []Info {
	return []Info{
		{
			Name:  NamePBBF,
			Title: "Probability-Based Broadcast Forwarding (the paper's protocol; default)",
			Summary: "802.11 PSM with two coins: rebroadcast immediately with probability p, " +
				"stay awake past the ATIM window with probability q. (p,q) spans PSM (0,0) to always-on (1,1).",
			Knobs: []Knob{
				{Name: "p", Desc: "immediate-rebroadcast probability (from the PBBF params, not the spec)", Default: 0},
				{Name: "q", Desc: "stay-awake probability (from the PBBF params, not the spec)", Default: 0},
			},
		},
		{
			Name:  NameSleepSched,
			Title: "Sleep-scheduled broadcast (after King et al., \"Sleeping on the Job\")",
			Summary: "Nodes wake every W-th beacon interval on a staggered round-robin schedule; forwarders " +
				"repeat each packet for W consecutive intervals so every neighbor's wakeup sees a copy. " +
				"Duty-cycle-bounded energy, O(W) intervals of latency per hop.",
			Knobs: []Knob{
				{Name: "wake_period", Desc: "round-robin period W in beacon intervals", Default: defaultWakePeriod},
				{Name: "repeats", Desc: "consecutive intervals a forwarder retransmits (default W)", Default: defaultWakePeriod},
			},
		},
		{
			Name:  NameOLA,
			Title: "Opportunistic large array (after Kailas et al., cooperative energy accumulation)",
			Summary: "Always-awake receivers accumulate gain from every overheard copy and decode at a threshold; " +
				"only boundary nodes (accumulated gain below the relay threshold at decode time) retransmit. " +
				"Near-flooding latency at always-on energy, with relay count throttled by the threshold.",
			Knobs: []Knob{
				{Name: "decode_threshold", Desc: "accumulated gain needed to decode a packet", Default: defaultDecodeThreshold},
				{Name: "relay_threshold", Desc: "relay iff accumulated gain at decode time is below this", Default: defaultRelayThreshold},
			},
		},
	}
}
