package protocol

import (
	"strings"
	"testing"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"pbbf", ""},
		{" PBBF ", ""},
		{"sleepsched", "sleepsched"},
		{"SleepSched", "sleepsched"},
		{"ola", "ola"},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{},
		{Name: NamePBBF},
		{Name: NameSleepSched},
		{Name: NameSleepSched, WakePeriod: 8, Repeats: 2},
		{Name: NameOLA},
		{Name: NameOLA, DecodeThreshold: 2, RelayThreshold: 3},
	}
	for _, sp := range good {
		if err := sp.Validate(); err != nil {
			t.Errorf("valid spec %+v rejected: %v", sp, err)
		}
	}
	bad := []Spec{
		{Name: "flooding"},
		{Name: NameSleepSched, WakePeriod: -1},
		{Name: NameSleepSched, Repeats: -1},
		{Name: NameOLA, DecodeThreshold: -0.5},
		{Name: NameOLA, RelayThreshold: -1},
	}
	for _, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("invalid spec %+v accepted", sp)
		}
	}
}

func TestSpecForSuggestsOnTypo(t *testing.T) {
	if _, err := SpecFor("slepsched"); err == nil || !strings.Contains(err.Error(), "did you mean") ||
		!strings.Contains(err.Error(), NameSleepSched) {
		t.Fatalf("typo error should suggest sleepsched, got: %v", err)
	}
	if _, err := SpecFor("zzz"); err == nil || !strings.Contains(err.Error(), "known:") {
		t.Fatalf("hopeless typo should list known protocols, got: %v", err)
	}
	for _, name := range append(Names(), "", " PBBF ") {
		if _, err := SpecFor(name); err != nil {
			t.Errorf("SpecFor(%q): %v", name, err)
		}
	}
}

func TestNewSharesPBBFOnly(t *testing.T) {
	a, err := New(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Spec{Name: NamePBBF})
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a != PBBF {
		t.Fatal("PBBF must be the shared stateless instance")
	}
	s1, err := New(Spec{Name: NameSleepSched})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Spec{Name: NameSleepSched})
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("stateful rivals must be fresh per New call")
	}
	if _, err := New(Spec{Name: "bogus"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestInfosCoverEveryName(t *testing.T) {
	infos := Infos()
	if len(infos) != 3 {
		t.Fatalf("want 3 protocols, got %d", len(infos))
	}
	if infos[0].Name != NamePBBF {
		t.Fatalf("PBBF (the default) must list first, got %q", infos[0].Name)
	}
	for _, in := range infos {
		if in.Title == "" || in.Summary == "" || len(in.Knobs) == 0 {
			t.Errorf("protocol %q: incomplete metadata %+v", in.Name, in)
		}
		if sp, err := SpecFor(in.Name); err != nil || sp.Validate() != nil {
			t.Errorf("listed protocol %q does not resolve: %v", in.Name, err)
		}
		for _, k := range in.Knobs {
			if k.Name == "" || k.Desc == "" {
				t.Errorf("protocol %q: incomplete knob doc %+v", in.Name, k)
			}
		}
	}
}
