package protocol

import "pbbf/internal/topo"

// PBBF is the reference protocol: the paper's Probability-Based Broadcast
// Forwarding, Figure 3, over the MAC's PSM/ATIM substrate. It is stateless
// — the two coins read the node's live operating point — so one shared
// instance serves every node allocation-free.
//
// Determinism contract: these hooks draw exactly the random sequence the
// pre-interface MAC drew — one p coin per originated or newly received
// packet, one q coin per ATIM window that would otherwise sleep — so PBBF
// runs are byte-identical across the refactor (pinned by the golden test).
var PBBF Protocol = pbbf{}

type pbbf struct{}

func (pbbf) Name() string              { return NamePBBF }
func (pbbf) UsesATIM() bool            { return true }
func (pbbf) Reset(NodeAPI, Spec) error { return nil }
func (pbbf) OnFrameStart(NodeAPI)      {}
func (pbbf) OnTimer(NodeAPI, int)      {}

// OnOriginate applies the Receive-Broadcast decision at the source too
// (Figure 2: the source may send immediately instead of waiting for the
// next ATIM window).
func (pbbf) OnOriginate(api NodeAPI, pkt Packet) { pbbfRoute(api, pkt) }

// OnReceive delivers a first copy and routes it onward; duplicates were
// already suppressed by the p-coin's position after the filter.
func (pbbf) OnReceive(api NodeAPI, pkt Packet, from topo.NodeID, firstCopy bool) {
	if !firstCopy {
		return
	}
	api.DeliverToApp(pkt, from)
	pbbfRoute(api, pkt)
}

// OnWindowEnd is the Sleep-Decision-Handler's q coin: a node with no
// traffic stays awake anyway with probability q.
func (pbbf) OnWindowEnd(api NodeAPI) bool {
	return api.Params().StayAwake(api.Rand())
}

// pbbfRoute is the Receive-Broadcast decision of Figure 3: forward
// immediately with probability p, else queue for the next ATIM window.
func pbbfRoute(api NodeAPI, pkt Packet) {
	if api.Params().ForwardImmediately(api.Rand()) {
		api.SendNow(pkt)
		return
	}
	api.Announce(pkt)
}
