package protocol

import (
	"time"

	"pbbf/internal/topo"
)

// defaultWakePeriod is the sleepsched round-robin period when the spec
// leaves it zero: awake one beacon interval in four.
const defaultWakePeriod = 4

// sleepSched is a King-style sleep-scheduled broadcast ("Sleeping on the
// Job", King/Phillips/Saia/Young): node i is scheduled awake only in
// beacon intervals F with (F+i) mod W == 0, and a node holding a packet to
// forward retransmits it once per interval for R consecutive intervals
// (staying awake while it does). With R = W every neighbor's scheduled
// wakeup overlaps at least one retransmission, so the broadcast floods the
// connected field deterministically — at a latency of O(W) beacon
// intervals per hop and an idle-energy duty cycle of 1/W.
//
// The port keeps the MAC substrate's CSMA contention and collision model;
// what it does not use is the PSM/ATIM machinery (UsesATIM is false): no
// announcements, no window embargo, no end-of-window coin. The radio
// schedule is entirely this state machine's.
type sleepSched struct {
	period  int // W
	repeats int // R
	frame   int // beacon intervals seen; -1 before the first

	queue  []ssEntry // packets owing retransmissions in coming intervals
	txList []Packet  // this interval's sends, indexed by timer tag
}

// ssEntry is one packet with its remaining retransmission budget.
type ssEntry struct {
	pkt  Packet
	left int
}

func (s *sleepSched) Name() string             { return NameSleepSched }
func (s *sleepSched) UsesATIM() bool           { return false }
func (s *sleepSched) OnWindowEnd(NodeAPI) bool { return true } // never consulted: no ATIM substrate

func (s *sleepSched) Reset(_ NodeAPI, spec Spec) error {
	s.period = spec.WakePeriod
	if s.period == 0 {
		s.period = defaultWakePeriod
	}
	s.repeats = spec.Repeats
	if s.repeats == 0 {
		s.repeats = s.period
	}
	s.frame = -1
	s.queue = s.queue[:0]
	s.txList = s.txList[:0]
	return nil
}

// OnOriginate transmits the new packet immediately (the source is awake —
// it has traffic) and books the remaining repeats so neighbors asleep now
// still see a copy during their scheduled wakeup.
func (s *sleepSched) OnOriginate(api NodeAPI, pkt Packet) {
	api.SendNow(pkt)
	if s.repeats > 1 {
		s.queue = append(s.queue, ssEntry{pkt: pkt, left: s.repeats - 1})
	}
}

// OnReceive books a first copy for forwarding starting next interval;
// duplicate copies are ignored (the repeat schedule already covers every
// neighbor).
func (s *sleepSched) OnReceive(api NodeAPI, pkt Packet, from topo.NodeID, firstCopy bool) {
	if !firstCopy {
		return
	}
	api.DeliverToApp(pkt, from)
	s.queue = append(s.queue, ssEntry{pkt: pkt, left: s.repeats})
}

// OnFrameStart runs the schedule: wake if this is the node's round-robin
// interval or it has packets to forward; when forwarding, draw one random
// send offset per owed packet (de-synchronizing the per-hop storm exactly
// as PBBF's post-window release does) and decrement the repeat budgets.
func (s *sleepSched) OnFrameStart(api NodeAPI) {
	s.frame++
	forwarding := len(s.queue) > 0
	scheduled := (s.frame+int(api.ID()))%s.period == 0
	api.SetAwake(forwarding || scheduled)
	if !forwarding {
		return
	}
	s.txList = s.txList[:0]
	keep := s.queue[:0]
	for _, e := range s.queue {
		s.txList = append(s.txList, e.pkt)
		e.left--
		if e.left > 0 {
			keep = append(keep, e)
		}
	}
	s.queue = keep
	span := api.Timing().Frame - api.TxSlack()
	if span < 0 {
		span = 0
	}
	for i := range s.txList {
		offset := time.Duration(api.Rand().Float64() * float64(span))
		api.ScheduleTimer(offset, i)
	}
}

// OnTimer releases one of this interval's booked transmissions.
func (s *sleepSched) OnTimer(api NodeAPI, tag int) {
	api.Send(s.txList[tag])
}
