// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by every stochastic component of the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: a run is
// fully determined by its seed. The standard library's math/rand is avoided
// because its global functions are shared mutable state and because the
// simulator needs cheap, independent per-node streams that are stable across
// Go releases. The generator is xoshiro256** (Blackman & Vigna), seeded via
// SplitMix64.
package rng

import "math"

// Source is a deterministic xoshiro256** random number generator.
// The zero value is not usable; construct with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed using SplitMix64 so that nearby
// integer seeds still yield well-separated states.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed reinitializes the source in place from seed, producing exactly the
// state New(seed) would. It is the allocation-free path for pools that
// re-seed a long-lived Source once per run.
func (s *Source) Reseed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s.s0, s.s1, s.s2, s.s3 = next(), next(), next(), next()
	// xoshiro requires a nonzero state; SplitMix64 never produces all-zero
	// output for four consecutive draws, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s3 = 1
	}
}

// Split derives an independent child stream. The parent advances, so
// successive Split calls return distinct streams. Children are seeded from
// the parent's output, giving a tree of decorrelated generators (one per
// node, per experiment repetition, and so on).
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xd3c5f1b2a4e69780)
}

// SplitInto is Split writing the child stream into dst instead of
// allocating one: the parent advances by the same single draw, and dst
// receives exactly the state Split would have returned. Pools use it to
// re-seed per-node sources without a per-run allocation.
func (s *Source) SplitInto(dst *Source) {
	dst.Reseed(s.Uint64() ^ 0xd3c5f1b2a4e69780)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits scaled by 2^-53, the standard unbiased construction.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand; callers always pass structural sizes that are positive.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Bool returns true with probability p. Probabilities outside [0,1] clamp:
// p<=0 is always false, p>=1 always true, matching the protocol's semantics
// for degenerate parameter settings (p=0 is PSM, p=1 always forwards).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with mean 1, via
// inversion. Used for Poisson inter-arrival sampling in workloads.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	return s.PermInto(nil, n)
}

// PermInto fills buf with a uniformly random permutation of [0, n),
// growing it only when its capacity is insufficient. The draws are
// identical to Perm's, so pooled callers produce the same permutation a
// fresh Perm call would.
func (s *Source) PermInto(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	p := buf[:n]
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap (Fisher-Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
