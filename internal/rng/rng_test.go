package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		t.Fatal("state is all zero")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seed stream repeated values: %d unique of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling streams start identically")
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(7).Split()
	c2 := New(7).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split streams diverged at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	if err := quick.Check(func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d deviates from %v by more than 10%%", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolClamping(t *testing.T) {
	s := New(8)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !s.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(9)
	const n = 100000
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if s.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bool(%v) frequency %v", p, got)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(10)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v far from 1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	s := New(13)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		a := []int{0, 1, 2, 3, 4}
		s.Shuffle(len(a), func(x, y int) { a[x], a[y] = a[y], a[x] })
		counts[a[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("first-element bucket %d count %d", i, c)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Float64()
	}
}
