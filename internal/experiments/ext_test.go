package experiments

import (
	"testing"
)

func TestExtGossipThresholdOrdering(t *testing.T) {
	tbl, err := ExtGossip(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	site := tbl.SeriesByName("gossip (site percolation)")
	bond := tbl.SeriesByName("PBBF links (bond percolation)")
	if site == nil || bond == nil {
		t.Fatal("missing series")
	}
	// At probability 0.55 (between the bond pc 0.5 and site pc 0.593),
	// bond percolation must cover more than site percolation.
	ySite, ok1 := site.YAt(0.55)
	yBond, ok2 := bond.YAt(0.55)
	if !ok1 || !ok2 {
		// Sweep is fixed at 0.1 steps starting at 0.1; 0.55 not present.
		// Use 0.6 instead, still below the finite-size site threshold.
		ySite, ok1 = site.YAt(0.6)
		yBond, ok2 = bond.YAt(0.6)
	}
	if !ok1 || !ok2 {
		t.Fatal("comparison point missing from sweep")
	}
	if yBond <= ySite {
		t.Fatalf("bond coverage %v not above site coverage %v near the thresholds", yBond, ySite)
	}
	// Both models approach full coverage at probability 1.
	ySite1, _ := site.YAt(1)
	yBond1, _ := bond.YAt(1)
	if ySite1 < 0.99 || yBond1 < 0.99 {
		t.Fatalf("coverage at p=1: site=%v bond=%v", ySite1, yBond1)
	}
}

func TestExtKBatchingHelps(t *testing.T) {
	tbl, err := ExtK(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	k1 := tbl.SeriesByName("k=1")
	k4 := tbl.SeriesByName("k=4")
	if k1 == nil || k4 == nil {
		t.Fatal("missing series")
	}
	// Averaged over the sweep, batching must not hurt, and at the lossy
	// low-q end it should measurably help.
	var sum1, sum4 float64
	for i := range k1.Y {
		sum1 += k1.Y[i]
	}
	for i := range k4.Y {
		sum4 += k4.Y[i]
	}
	if sum4 < sum1-0.05*float64(len(k1.Y)) {
		t.Fatalf("k=4 mean %v below k=1 mean %v", sum4/float64(len(k4.Y)), sum1/float64(len(k1.Y)))
	}
}

func TestExtAdaptiveRecoversReliability(t *testing.T) {
	tbl, err := ExtAdaptive(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	static := tbl.SeriesByName("static PBBF-0.25 (q=0.25)")
	adaptive := tbl.SeriesByName("adaptive PBBF")
	if static == nil || adaptive == nil {
		t.Fatal("missing series")
	}
	// At the highest injected loss the adaptive controller must match or
	// beat the static setting.
	sHigh := static.Y[static.Len()-1]
	aHigh := adaptive.Y[adaptive.Len()-1]
	if aHigh < sHigh-0.05 {
		t.Fatalf("adaptive %v below static %v at max loss", aHigh, sHigh)
	}
	for _, y := range adaptive.Y {
		if y < 0 || y > 1 {
			t.Fatalf("adaptive fraction %v out of range", y)
		}
	}
}

func TestExtLossDegradesGracefully(t *testing.T) {
	tbl, err := ExtLoss(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	clean := tbl.SeriesByName("loss=0")
	noisy := tbl.SeriesByName("loss=0.3")
	if clean == nil || noisy == nil {
		t.Fatal("missing series")
	}
	// At the high-q end, loss must cost reliability but not collapse it
	// (redundant rebroadcasts absorb independent losses).
	cEnd := clean.Y[clean.Len()-1]
	nEnd := noisy.Y[noisy.Len()-1]
	if nEnd > cEnd+1e-9 {
		t.Fatalf("lossy channel beat clean channel: %v > %v", nEnd, cEnd)
	}
	if nEnd < 0.3 {
		t.Fatalf("reliability collapsed under 30%% loss: %v", nEnd)
	}
}
