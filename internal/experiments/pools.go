package experiments

import (
	"context"
	"sync"

	"pbbf/internal/netsim"
	"pbbf/internal/sweep"
	"pbbf/internal/topo"
)

// runPools bundles the reusable simulation state one worker needs to run
// net points allocation-free: a netsim run pool and a topology scratch.
// A runPools is single-threaded; ownership is what makes it safe.
type runPools struct {
	net  *netsim.RunPool
	topo *topo.Scratch
}

// poolFree is the global free list of idle pool bundles. Sweep workers
// check one out for the duration of a RunAllCtx call and return it when the
// worker exits, so repeated sweeps (the serve and bench paths) reuse the
// same warmed-up pools instead of growing new arenas per request. A plain
// mutex+slice list — NOT sync.Pool, whose contents any GC cycle may drop
// (and the bench harness runs a forced GC between repeats, which would
// defeat the reuse this exists to measure).
var poolFree struct {
	sync.Mutex
	list []*runPools
}

// acquirePools pops a pool bundle off the free list, or builds one.
func acquirePools() *runPools {
	poolFree.Lock()
	defer poolFree.Unlock()
	if n := len(poolFree.list); n > 0 {
		p := poolFree.list[n-1]
		poolFree.list[n-1] = nil
		poolFree.list = poolFree.list[:n-1]
		return p
	}
	return &runPools{net: netsim.NewRunPool(), topo: topo.NewScratch()}
}

// releasePools returns a bundle to the free list.
func releasePools(p *runPools) {
	poolFree.Lock()
	defer poolFree.Unlock()
	poolFree.list = append(poolFree.list, p)
}

// poolsCtxKey keys the worker-cached bundle in sweep.WorkerLocals.
type poolsCtxKey struct{}

// poolsFor returns the pool bundle the computation should use and a release
// function the caller must run when the point finishes. Under a sweep
// worker the bundle is cached in the worker's locals — checked out once,
// reused for every point the worker claims, returned at worker exit, so the
// per-point release is a no-op. Outside a sweep (direct PointSpec.Run,
// tests) the bundle is leased from the free list for just this point.
func poolsFor(ctx context.Context) (p *runPools, release func()) {
	if locals := sweep.Locals(ctx); locals != nil {
		if v := locals.Get(poolsCtxKey{}); v != nil {
			return v.(*runPools), func() {}
		}
		p := acquirePools()
		locals.Put(poolsCtxKey{}, p, func() { releasePools(p) })
		return p, func() {}
	}
	p = acquirePools()
	return p, func() { releasePools(p) }
}
