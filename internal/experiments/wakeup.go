package experiments

import (
	"time"

	"pbbf/internal/core"
	"pbbf/internal/idealsim"
	"pbbf/internal/scenario"
	"pbbf/internal/topo"
)

// extWakeupScenario is the first scenario born on the unified engine
// rather than ported to it: a duty-cycle wakeup-schedule sweep in the
// style of King et al.'s "Sleeping on the Job" and the Klonowski–Pajak
// time-vs-energy trade-off results. The paper fixes the wakeup schedule
// (Tactive=1 s, Tframe=10 s, duty cycle 10%) and sweeps p/q; this scenario
// holds the protocol operating point fixed and sweeps the schedule
// instead, stretching Tframe so the duty cycle Tactive/Tframe walks from
// deep sleep to always-awake. Latency is plotted; per-point energy rides
// along in the JSON result triple, so the schedule's own time-vs-energy
// frontier can be read from `pbbf -experiment extwakeup -format json`.
func extWakeupScenario() scenario.Scenario {
	operatingPoints := []struct {
		series string
		params core.Params
	}{
		{"PSM", core.PSM()},
		{"PBBF-0.5 (q=0.25)", core.Params{P: 0.5, Q: 0.25}},
		{"PBBF-0.75 (q=0.5)", core.Params{P: 0.75, Q: 0.5}},
	}
	return scenario.Scenario{
		ID:       "extwakeup",
		Title:    "Extension: per-hop latency vs wakeup-schedule duty cycle",
		Artifact: "extension",
		Summary:  "Duty-cycle sweep (King et al. style): fix the PBBF operating point, stretch Tframe so Tactive/Tframe walks from 5% to always-on, and trace how the wakeup schedule itself trades latency against energy.",
		Params: []scenario.ParamDoc{
			{Name: "p", Desc: "PBBF immediate-rebroadcast probability of the fixed operating point"},
			{Name: "q", Desc: "PBBF stay-awake probability of the fixed operating point"},
			{Name: "duty", Desc: "wakeup-schedule duty cycle Tactive/Tframe, swept on the x axis (Tactive fixed at 1 s)"},
		},
		XLabel: "duty cycle (Tactive/Tframe)",
		YLabel: "average per-hop update latency (s)",
		Points: func(s Scale) ([]scenario.Point, error) {
			pts := make([]scenario.Point, 0, len(operatingPoints)*len(s.DutySweep))
			for _, op := range operatingPoints {
				for _, duty := range s.DutySweep {
					pts = append(pts, scenario.Point{
						Series: op.series,
						X:      duty,
						Params: map[string]float64{
							"p": op.params.P, "q": op.params.Q, "duty": duty,
						},
					})
				}
			}
			return pts, nil
		},
		RunPoint: func(s Scale, pt scenario.Point) (scenario.Result, error) {
			g, err := topo.NewGrid(s.GridW, s.GridH)
			if err != nil {
				return scenario.Result{}, err
			}
			duty := pt.Params["duty"]
			active := time.Second
			cfg := idealsim.Defaults(g, g.Center())
			cfg.Params = core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
			cfg.Timing = core.Timing{
				Active: active,
				Frame:  time.Duration(float64(active) / duty),
			}
			cfg.Updates = s.IdealUpdates
			cfg.Seed = pointSeed(s.Seed, 108,
				fbits(cfg.Params.P), fbits(cfg.Params.Q), fbits(duty))
			res, err := idealsim.Run(cfg)
			if err != nil {
				return scenario.Result{}, err
			}
			out := scenario.Result{
				EnergyJ:  res.EnergyPerUpdateJ,
				Delivery: res.MeanCoverage(),
			}
			if res.PerHopLatency.N() == 0 {
				out.Skip = true
				return out, nil
			}
			out.Y = res.PerHopLatency.Mean()
			out.LatencyS = out.Y
			return out, nil
		},
	}
}
