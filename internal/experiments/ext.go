package experiments

import (
	"context"
	"fmt"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/gossip"
	"pbbf/internal/idealsim"
	"pbbf/internal/netsim"
	"pbbf/internal/percolation"
	"pbbf/internal/rng"
	"pbbf/internal/scenario"
	"pbbf/internal/topo"
)

// The ext* scenarios go beyond the paper's evaluation: the related-work
// gossip baseline (§2.1), the k>1 batching the paper ran but omitted
// (§5.1), the future-work adaptive controller (§6), a PHY-loss robustness
// probe, a T-MAC-style adaptive schedule, and a duty-cycle wakeup sweep
// (see wakeup.go). They register through the same scenario engine as the
// figure regenerators.

// extGossipScenario contrasts the two percolation models on one plot:
// gossip forwarding (site percolation — the node coin silences every
// outgoing link at once) versus PBBF's link availability (bond percolation
// — each link has its own coin). Bond percolation reaches full coverage at
// a lower probability (square-lattice p_c: 0.5 vs ≈0.593), which is the
// structural advantage PBBF inherits.
func extGossipScenario() scenario.Scenario {
	const (
		modelSite = 0
		modelBond = 1
	)
	return scenario.Scenario{
		ID:       "extgossip",
		Title:    "Extension: gossip (site) vs PBBF (bond) coverage on a 30x30 grid",
		Artifact: "extension",
		Summary:  "Site vs bond percolation coverage on one plot: gossip's node coin against PBBF's per-link availability, showing the lower threshold PBBF inherits (0.5 vs ≈0.593).",
		Params: []scenario.ParamDoc{
			{Name: "p", Desc: "forwarding probability (site model) / edge probability (bond model)"},
			{Name: "model", Desc: "0 = gossip site percolation, 1 = PBBF bond percolation"},
		},
		XLabel: "forwarding / edge probability",
		YLabel: "mean fraction of nodes covered",
		Points: func(s Scale) ([]scenario.Point, error) {
			models := []struct {
				series string
				id     float64
			}{
				{"gossip (site percolation)", modelSite},
				{"PBBF links (bond percolation)", modelBond},
			}
			var pts []scenario.Point
			for _, m := range models {
				for _, p := range sweepRange(0.1, 1, 0.1) {
					pts = append(pts, scenario.Point{
						Series: m.series,
						X:      p,
						Params: map[string]float64{"p": p, "model": m.id},
					})
				}
			}
			return pts, nil
		},
		RunPoint: func(s Scale, pt scenario.Point) (scenario.Result, error) {
			const side = 30
			g, err := topo.NewGrid(side, side)
			if err != nil {
				return scenario.Result{}, err
			}
			p := pt.Params["p"]
			r := rng.New(pointSeed(s.Seed, 101, fbits(p), uint64(pt.Params["model"])))
			var mean float64
			if pt.Params["model"] == modelSite {
				res, err := gossip.Flood(g, g.Center(), p, s.PercTrials, r)
				if err != nil {
					return scenario.Result{}, err
				}
				mean = res.Coverage.Mean()
			} else {
				res, err := percolation.ReachedFraction(g, g.Center(), p, s.PercTrials, r)
				if err != nil {
					return scenario.Result{}, err
				}
				mean = res.Mean
			}
			return scenario.Result{Y: mean, Delivery: mean}, nil
		},
	}
}

// extKScenario sweeps the code-distribution batching factor k (each packet
// carries the k most recent updates): at lossy operating points, k>1 lets
// nodes recover missed updates from later packets. The paper "experimented
// with different values of k" but only presented k=1.
func extKScenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "extk",
		Title:    "Extension: update batching k under PBBF-0.5",
		Artifact: "extension",
		Summary:  "Reliability versus q for packet batching factors k=1/2/4: carrying the k latest updates per packet recovers updates missed while asleep.",
		Params: []scenario.ParamDoc{
			{Name: "p", Desc: "PBBF immediate-rebroadcast probability, fixed at 0.5"},
			{Name: "q", Desc: "PBBF stay-awake probability, swept on the x axis"},
			{Name: "k", Desc: "number of recent updates batched per packet (1, 2, 4)"},
		},
		XLabel: "q",
		YLabel: "updates received / total updates sent at source",
		Points: func(s Scale) ([]scenario.Point, error) {
			var pts []scenario.Point
			for _, k := range []int{1, 2, 4} {
				for _, q := range s.QSweep {
					pts = append(pts, scenario.Point{
						Series: fmt.Sprintf("k=%d", k),
						X:      q,
						Params: map[string]float64{"p": 0.5, "q": q, "k": float64(k)},
					})
				}
			}
			return pts, nil
		},
		RunPointCtx: func(ctx context.Context, s Scale, pt scenario.Point) (scenario.Result, error) {
			point, err := runNetPoint(ctx, s, core.Params{P: pt.Params["p"], Q: pt.Params["q"]},
				10, 102, netOpts{k: int(pt.Params["k"])})
			if err != nil {
				return scenario.Result{}, err
			}
			return netResult(point, point.Received.Mean(), point.Received.N() > 0), nil
		},
	}
}

// extAdaptiveScenario compares the future-work adaptive controller
// (Section 6) against static operating points as the channel degrades:
// adaptive nodes raise q when sequence gaps reveal missed broadcasts,
// recovering reliability that static settings lose. All variants share the
// seeding tag (and, for static vs adaptive, the PBBF parameters), so they
// are evaluated on identical scenarios — a paired comparison rather than
// independent draws.
func extAdaptiveScenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "extadaptive",
		Title:    "Extension: adaptive p/q controller vs static settings under PHY loss",
		Artifact: "extension",
		Summary:  "Paired comparison of the Section 6 adaptive controller against static PBBF-0.25 and PSM as PHY loss rises 0→30%.",
		Params: []scenario.ParamDoc{
			{Name: "p", Desc: "initial immediate-rebroadcast probability"},
			{Name: "q", Desc: "initial stay-awake probability"},
			{Name: "loss", Desc: "injected independent per-reception PHY frame loss rate"},
			{Name: "adaptive", Desc: "1 enables the adaptive p/q controller, 0 keeps the static setting"},
		},
		XLabel: "PHY loss rate",
		YLabel: "updates received / total updates sent at source",
		Points: func(s Scale) ([]scenario.Point, error) {
			static := core.Params{P: 0.25, Q: 0.25}
			variants := []struct {
				series   string
				params   core.Params
				adaptive float64
			}{
				{"static PBBF-0.25 (q=0.25)", static, 0},
				{"adaptive PBBF", static, 1},
				{"PSM", core.PSM(), 0},
			}
			var pts []scenario.Point
			for _, v := range variants {
				for _, loss := range []float64{0, 0.1, 0.2, 0.3} {
					pts = append(pts, scenario.Point{
						Series: v.series,
						X:      loss,
						Params: map[string]float64{
							"p": v.params.P, "q": v.params.Q,
							"loss": loss, "adaptive": v.adaptive,
						},
					})
				}
			}
			return pts, nil
		},
		RunPointCtx: func(ctx context.Context, s Scale, pt scenario.Point) (scenario.Result, error) {
			opts := netOpts{loss: netsim.LossOptions{Rate: pt.Params["loss"]}}
			params := core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
			if pt.Params["adaptive"] == 1 {
				cfg := core.DefaultAdaptiveConfig()
				cfg.Initial = params
				opts.adaptive = &cfg
			}
			point, err := runNetPoint(ctx, s, params, 10, 103, opts)
			if err != nil {
				return scenario.Result{}, err
			}
			return netResult(point, point.Received.Mean(), point.Received.N() > 0), nil
		},
	}
}

// extLossScenario repeats Figure 16's reliability sweep under injected PHY
// frame loss, probing how much of PBBF's redundancy margin survives a
// noisy channel.
func extLossScenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "extloss",
		Title:    "Extension: Figure 16 under injected PHY loss (PBBF-0.5)",
		Artifact: "extension",
		Summary:  "Figure 16's delivered fraction versus q with 0/10/30% independent frame loss injected at the PHY — PBBF's rebroadcast redundancy absorbs most of it.",
		Params: []scenario.ParamDoc{
			{Name: "p", Desc: "PBBF immediate-rebroadcast probability, fixed at 0.5"},
			{Name: "q", Desc: "PBBF stay-awake probability, swept on the x axis"},
			{Name: "loss", Desc: "injected independent per-reception PHY frame loss rate"},
		},
		XLabel: "q",
		YLabel: "updates received / total updates sent at source",
		Points: func(s Scale) ([]scenario.Point, error) {
			var pts []scenario.Point
			for _, loss := range []float64{0, 0.1, 0.3} {
				for _, q := range s.QSweep {
					pts = append(pts, scenario.Point{
						Series: fmt.Sprintf("loss=%g", loss),
						X:      q,
						Params: map[string]float64{"p": 0.5, "q": q, "loss": loss},
					})
				}
			}
			return pts, nil
		},
		RunPointCtx: func(ctx context.Context, s Scale, pt scenario.Point) (scenario.Result, error) {
			point, err := runNetPoint(ctx, s, core.Params{P: pt.Params["p"], Q: pt.Params["q"]},
				10, 106, netOpts{loss: netsim.LossOptions{Rate: pt.Params["loss"]}})
			if err != nil {
				return scenario.Result{}, err
			}
			return netResult(point, point.Received.Mean(), point.Received.N() > 0), nil
		},
	}
}

// extTMACScenario compares PBBF over plain 802.11 PSM against PBBF over a
// T-MAC-style adaptive schedule (paper reference [19]) in which a node
// that hears traffic stays awake for a timeout afterwards. Adaptive wake
// extension recovers reliability at aggressive (high-p, low-q) operating
// points: immediate rebroadcast chains ride the extension window instead
// of depending on the q coin. This is the "comparing with other adaptive
// sleep protocols" item of the paper's future work (§6).
func extTMACScenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "exttmac",
		Title:    "Extension: PBBF over PSM vs over a T-MAC-style adaptive schedule",
		Artifact: "extension",
		Summary:  "Coverage of PBBF-0.75 versus q over plain PSM and over a T-MAC schedule whose 2 s wake extension catches immediate rebroadcast chains.",
		Params: []scenario.ParamDoc{
			{Name: "p", Desc: "PBBF immediate-rebroadcast probability, fixed at 0.75"},
			{Name: "q", Desc: "PBBF stay-awake probability, swept on the x axis"},
			{Name: "extend_s", Desc: "T-MAC wake extension after each reception, seconds (0 = plain PSM)"},
		},
		XLabel: "q",
		YLabel: "mean coverage (PBBF-0.75)",
		Points: func(s Scale) ([]scenario.Point, error) {
			variants := []struct {
				series string
				extend float64
			}{
				{"PSM schedule", 0},
				{"T-MAC schedule (2s extension)", 2},
			}
			var pts []scenario.Point
			for _, v := range variants {
				for _, q := range s.QSweep {
					pts = append(pts, scenario.Point{
						Series: v.series,
						X:      q,
						Params: map[string]float64{"p": 0.75, "q": q, "extend_s": v.extend},
					})
				}
			}
			return pts, nil
		},
		RunPoint: func(s Scale, pt scenario.Point) (scenario.Result, error) {
			g, err := topo.NewGrid(s.GridW, s.GridH)
			if err != nil {
				return scenario.Result{}, err
			}
			extend := time.Duration(pt.Params["extend_s"] * float64(time.Second))
			cfg := idealsim.Defaults(g, g.Center())
			cfg.Params = core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
			cfg.Updates = s.IdealUpdates
			cfg.ExtendOnReceive = extend
			cfg.Seed = pointSeed(s.Seed, 107, fbits(pt.X), uint64(extend))
			res, err := idealsim.Run(cfg)
			if err != nil {
				return scenario.Result{}, err
			}
			out := scenario.Result{
				Y:        res.MeanCoverage(),
				EnergyJ:  res.EnergyPerUpdateJ,
				Delivery: res.MeanCoverage(),
			}
			if res.PerHopLatency.N() > 0 {
				out.LatencyS = res.PerHopLatency.Mean()
			}
			return out, nil
		},
	}
}

// extScenarios returns the beyond-the-paper scenarios in presentation
// order.
func extScenarios() []scenario.Scenario {
	return []scenario.Scenario{
		extGossipScenario(),
		extKScenario(),
		extAdaptiveScenario(),
		extLossScenario(),
		extTMACScenario(),
		extWakeupScenario(),
	}
}
