package experiments

import (
	"fmt"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/gossip"
	"pbbf/internal/idealsim"
	"pbbf/internal/percolation"
	"pbbf/internal/rng"
	"pbbf/internal/stats"
	"pbbf/internal/topo"
)

// The ext* experiments go beyond the paper's evaluation: the related-work
// gossip baseline (§2.1), the k>1 batching the paper ran but omitted
// (§5.1), the future-work adaptive controller (§6), and a PHY-loss
// robustness probe. They follow the same Scale/Table conventions as the
// figure regenerators.

// ExtGossip contrasts the two percolation models on one plot: gossip
// forwarding (site percolation — the node coin silences every outgoing
// link at once) versus PBBF's link availability (bond percolation — each
// link has its own coin). Bond percolation reaches full coverage at a
// lower probability (square-lattice p_c: 0.5 vs ≈0.593), which is the
// structural advantage PBBF inherits.
func ExtGossip(s Scale) (*stats.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const side = 30
	g, err := topo.NewGrid(side, side)
	if err != nil {
		return nil, err
	}
	tbl := &stats.Table{
		Title:  "Extension: gossip (site) vs PBBF (bond) coverage on a 30x30 grid",
		XLabel: "forwarding / edge probability",
		YLabel: "mean fraction of nodes covered",
	}
	siteSeries := tbl.AddSeries("gossip (site percolation)")
	bondSeries := tbl.AddSeries("PBBF links (bond percolation)")
	for _, p := range sweepRange(0.1, 1, 0.1) {
		r := rng.New(pointSeed(s.Seed, 101, fbits(p)))
		siteRes, err := gossip.Flood(g, g.Center(), p, s.PercTrials, r)
		if err != nil {
			return nil, err
		}
		siteSeries.Append(p, siteRes.Coverage.Mean())
		bondRes, err := percolation.ReachedFraction(g, g.Center(), p, s.PercTrials, r)
		if err != nil {
			return nil, err
		}
		bondSeries.Append(p, bondRes.Mean)
	}
	return tbl, nil
}

// ExtK sweeps the code-distribution batching factor k (each packet carries
// the k most recent updates): at lossy operating points, k>1 lets nodes
// recover missed updates from later packets. The paper "experimented with
// different values of k" but only presented k=1.
func ExtK(s Scale) (*stats.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tbl := &stats.Table{
		Title:  "Extension: update batching k under PBBF-0.5",
		XLabel: "q",
		YLabel: "updates received / total updates sent at source",
	}
	for _, k := range []int{1, 2, 4} {
		series := tbl.AddSeries(fmt.Sprintf("k=%d", k))
		for _, q := range s.QSweep {
			point, err := runNetPoint(s, core.Params{P: 0.5, Q: q}, 10, 102,
				netOpts{k: k})
			if err != nil {
				return nil, err
			}
			series.Append(q, point.Received.Mean())
		}
	}
	return tbl, nil
}

// ExtAdaptive compares the future-work adaptive controller (Section 6)
// against static operating points as the channel degrades: adaptive nodes
// raise q when sequence gaps reveal missed broadcasts, recovering
// reliability that static settings lose.
func ExtAdaptive(s Scale) (*stats.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tbl := &stats.Table{
		Title:  "Extension: adaptive p/q controller vs static settings under PHY loss",
		XLabel: "PHY loss rate",
		YLabel: "updates received / total updates sent at source",
	}
	lossRates := []float64{0, 0.1, 0.2, 0.3}
	static := core.Params{P: 0.25, Q: 0.25}
	adaptiveCfg := core.DefaultAdaptiveConfig()
	adaptiveCfg.Initial = static

	staticSeries := tbl.AddSeries("static PBBF-0.25 (q=0.25)")
	adaptiveSeries := tbl.AddSeries("adaptive PBBF")
	psmSeries := tbl.AddSeries("PSM")
	// All three variants share the tag (and, for static vs adaptive, the
	// PBBF parameters), so they are evaluated on identical scenarios —
	// a paired comparison rather than independent draws.
	for _, loss := range lossRates {
		st, err := runNetPoint(s, static, 10, 103, netOpts{lossRate: loss})
		if err != nil {
			return nil, err
		}
		staticSeries.Append(loss, st.Received.Mean())
		ad, err := runNetPoint(s, static, 10, 103, netOpts{lossRate: loss, adaptive: &adaptiveCfg})
		if err != nil {
			return nil, err
		}
		adaptiveSeries.Append(loss, ad.Received.Mean())
		psm, err := runNetPoint(s, core.PSM(), 10, 103, netOpts{lossRate: loss})
		if err != nil {
			return nil, err
		}
		psmSeries.Append(loss, psm.Received.Mean())
	}
	return tbl, nil
}

// ExtTMAC compares PBBF over plain 802.11 PSM against PBBF over a
// T-MAC-style adaptive schedule (paper reference [19]) in which a node
// that hears traffic stays awake for a timeout afterwards. Adaptive wake
// extension recovers reliability at aggressive (high-p, low-q) operating
// points: immediate rebroadcast chains ride the extension window instead
// of depending on the q coin. This is the "comparing with other adaptive
// sleep protocols" item of the paper's future work (§6).
func ExtTMAC(s Scale) (*stats.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, err := topo.NewGrid(s.GridW, s.GridH)
	if err != nil {
		return nil, err
	}
	tbl := &stats.Table{
		Title:  "Extension: PBBF over PSM vs over a T-MAC-style adaptive schedule",
		XLabel: "q",
		YLabel: "mean coverage (PBBF-0.75)",
	}
	variants := []struct {
		name   string
		extend time.Duration
	}{
		{"PSM schedule", 0},
		{"T-MAC schedule (2s extension)", 2 * time.Second},
	}
	params := core.Params{P: 0.75}
	for _, v := range variants {
		series := tbl.AddSeries(v.name)
		for _, q := range s.QSweep {
			cfg := idealsim.Defaults(g, g.Center())
			cfg.Params = core.Params{P: params.P, Q: q}
			cfg.Updates = s.IdealUpdates
			cfg.ExtendOnReceive = v.extend
			cfg.Seed = pointSeed(s.Seed, 107, fbits(q), uint64(v.extend))
			res, err := idealsim.Run(cfg)
			if err != nil {
				return nil, err
			}
			series.Append(q, res.MeanCoverage())
		}
	}
	return tbl, nil
}

// ExtLoss repeats Figure 16's reliability sweep under injected PHY frame
// loss, probing how much of PBBF's redundancy margin survives a noisy
// channel.
func ExtLoss(s Scale) (*stats.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tbl := &stats.Table{
		Title:  "Extension: Figure 16 under injected PHY loss (PBBF-0.5)",
		XLabel: "q",
		YLabel: "updates received / total updates sent at source",
	}
	for _, loss := range []float64{0, 0.1, 0.3} {
		series := tbl.AddSeries(fmt.Sprintf("loss=%g", loss))
		for _, q := range s.QSweep {
			point, err := runNetPoint(s, core.Params{P: 0.5, Q: q}, 10, 106,
				netOpts{lossRate: loss})
			if err != nil {
				return nil, err
			}
			series.Append(q, point.Received.Mean())
		}
	}
	return tbl, nil
}
