package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"pbbf/internal/scenario"
)

// tinyScale is even smaller than QuickScale so the whole registry can be
// exercised in one test run.
func tinyScale() Scale {
	s := QuickScale()
	s.GridW, s.GridH = 15, 15
	s.IdealUpdates = 2
	s.PercTrials = 10
	s.PercGrids = []int{10, 15}
	s.NetNodes = 20
	s.NetRuns = 1
	s.NetDuration = 200 * time.Second
	s.QSweep = []float64{0, 0.5, 1}
	s.PSweepIdeal = []float64{0.25, 0.75}
	s.PSweepNet = []float64{0.5}
	s.DeltaSweep = []float64{10, 16}
	s.HopNear = 4
	s.HopFar = 8
	return s
}

func TestScaleValidate(t *testing.T) {
	for _, s := range []Scale{PaperScale(), QuickScale(), tinyScale()} {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	bad := QuickScale()
	bad.GridW = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero grid accepted")
	}
	bad2 := QuickScale()
	bad2.QSweep = nil
	if err := bad2.Validate(); err == nil {
		t.Fatal("empty sweep accepted")
	}
	bad3 := QuickScale()
	bad3.HopFar = bad3.HopNear
	if err := bad3.Validate(); err == nil {
		t.Fatal("HopFar == HopNear accepted")
	}
}

func TestSweep(t *testing.T) {
	got := sweepRange(0, 1, 0.25)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v", got)
		}
	}
}

func TestPointSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for a := uint64(0); a < 10; a++ {
		for b := uint64(0); b < 10; b++ {
			s := pointSeed(1, a, b)
			if seen[s] {
				t.Fatalf("seed collision at (%d,%d)", a, b)
			}
			seen[s] = true
		}
	}
	if pointSeed(1, 2, 3) == pointSeed(1, 3, 2) {
		t.Fatal("pointSeed ignores argument order")
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig4" {
		t.Fatalf("ID = %q", e.ID)
	}
	if _, err := ByID("  FIG6 "); err != nil {
		t.Fatalf("case/space-insensitive lookup failed: %v", err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	if len(seen) != 31 {
		t.Fatalf("registry has %d entries, want 31 (2 tables + 15 figures + 14 extensions)", len(seen))
	}
}

// TestRegistryMetadataComplete enforces the scenario metadata contract:
// every registered scenario carries an artifact mapping, a summary, and —
// for point-based scenarios — documentation for every parameter its
// points emit.
func TestRegistryMetadataComplete(t *testing.T) {
	s := tinyScale()
	for _, sc := range Registry().All() {
		if sc.Artifact == "" || sc.Summary == "" || sc.Title == "" {
			t.Fatalf("%s: incomplete metadata: %+v", sc.ID, sc)
		}
		if sc.Points == nil {
			continue
		}
		if len(sc.Params) == 0 {
			t.Fatalf("%s: point-based scenario without parameter docs", sc.ID)
		}
		docs := map[string]bool{}
		for _, d := range sc.Params {
			docs[d.Name] = true
		}
		pts, err := sc.Points(s)
		if err != nil {
			t.Fatalf("%s: Points: %v", sc.ID, err)
		}
		if len(pts) == 0 {
			t.Fatalf("%s: empty parameter space", sc.ID)
		}
		for _, pt := range pts {
			if pt.Series == "" {
				t.Fatalf("%s: point %+v without series", sc.ID, pt)
			}
			for name := range pt.Params {
				if !docs[name] {
					t.Fatalf("%s: parameter %q undocumented", sc.ID, name)
				}
			}
		}
	}
}

// TestExtWakeupDutyCycleTradeoff checks the new duty-cycle scenario: for
// PSM, stretching the frame (lower duty cycle) must cost per-hop latency,
// and the energy carried in the result triple must grow with the duty
// cycle — the wakeup schedule's own time-vs-energy trade-off.
func TestExtWakeupDutyCycleTradeoff(t *testing.T) {
	s := tinyScale()
	sc, err := Registry().ByID("extwakeup")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := scenario.RunAll([]scenario.Scenario{sc}, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := outs[0]
	psm := out.Table.SeriesByName("PSM")
	if psm == nil || psm.Len() < 2 {
		t.Fatalf("PSM series incomplete: %+v", out.Table)
	}
	// Latency at the lowest duty cycle must exceed latency at the highest.
	first, last := psm.Y[0], psm.Y[psm.Len()-1]
	if first <= last {
		t.Fatalf("PSM per-hop latency not decreasing with duty cycle: %v -> %v", first, last)
	}
	// Energy must rise with the duty cycle within each series.
	byDuty := map[string][]float64{}
	for _, po := range out.Points {
		byDuty[po.Series] = append(byDuty[po.Series], po.Result.EnergyJ)
	}
	for series, energies := range byDuty {
		if len(energies) != len(s.DutySweep) {
			t.Fatalf("%s: %d energy points, want %d", series, len(energies), len(s.DutySweep))
		}
		if energies[0] >= energies[len(energies)-1] {
			t.Fatalf("%s: energy not increasing with duty cycle: %v", series, energies)
		}
	}
}

func TestTables(t *testing.T) {
	for _, id := range []string{"table1", "table2"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := e.Run(tinyScale())
		if err != nil {
			t.Fatal(err)
		}
		out := tbl.Render()
		if !strings.Contains(out, "Table") {
			t.Fatalf("%s render missing title:\n%s", id, out)
		}
	}
}

func TestFig4ShowsThreshold(t *testing.T) {
	tbl, err := Fig4(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// PSM and NO PSM must be pinned at 1 for every q.
	for _, name := range []string{"PSM", "NO PSM"} {
		s := tbl.SeriesByName(name)
		if s == nil {
			t.Fatalf("missing series %q", name)
		}
		for i, y := range s.Y {
			if y != 1 {
				t.Fatalf("%s at x=%v is %v, want 1", name, s.X[i], y)
			}
		}
	}
	// PBBF-0.75 must be unreliable at q=0 and reliable at q=1.
	s := tbl.SeriesByName("PBBF-0.75")
	if s == nil {
		t.Fatal("missing PBBF-0.75")
	}
	y0, ok0 := s.YAt(0)
	y1, ok1 := s.YAt(1)
	if !ok0 || !ok1 {
		t.Fatal("sweep endpoints missing")
	}
	if y0 >= y1 || y1 < 0.99 {
		t.Fatalf("no threshold: y(0)=%v y(1)=%v", y0, y1)
	}
}

func TestFig6MonotoneReliability(t *testing.T) {
	tbl, err := Fig6(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// At each grid size, higher reliability needs at least as many bonds.
	lo := tbl.SeriesByName("80% Reliability")
	hi := tbl.SeriesByName("100% Reliability")
	if lo == nil || hi == nil {
		t.Fatal("missing reliability series")
	}
	for i := range lo.X {
		yLo := lo.Y[i]
		yHi, ok := hi.YAt(lo.X[i])
		if !ok {
			t.Fatalf("grid %v missing from 100%% series", lo.X[i])
		}
		if yHi < yLo {
			t.Fatalf("100%% ratio %v below 80%% ratio %v at grid %v", yHi, yLo, lo.X[i])
		}
	}
}

func TestFig7FrontierMonotoneInP(t *testing.T) {
	tbl, err := Fig7(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.SeriesByName("99% Reliability")
	if s == nil {
		t.Fatal("missing 99% series")
	}
	prev := -1.0
	for i, y := range s.Y {
		if y < prev-1e-9 {
			t.Fatalf("min q decreased at p=%v: %v after %v", s.X[i], y, prev)
		}
		prev = y
		if y < 0 || y > 1 {
			t.Fatalf("min q %v out of range", y)
		}
	}
}

func TestFig8LinearEnergy(t *testing.T) {
	tbl, err := Fig8(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// All PBBF series overlap (p-independence): compare at q=0.5.
	var at05 []float64
	for _, s := range tbl.Series {
		if strings.HasPrefix(s.Name, "PBBF") {
			if y, ok := s.YAt(0.5); ok {
				at05 = append(at05, y)
			}
		}
	}
	if len(at05) < 2 {
		t.Fatal("not enough PBBF series")
	}
	for _, y := range at05[1:] {
		if y < at05[0]*0.95 || y > at05[0]*1.05 {
			t.Fatalf("energy depends on p: %v", at05)
		}
	}
	// NO PSM ≈ 10x PSM at the Table 1 duty cycle.
	psm, _ := tbl.SeriesByName("PSM").YAt(0.5)
	on, _ := tbl.SeriesByName("NO PSM").YAt(0.5)
	if on < psm*8 {
		t.Fatalf("NO PSM %v not ≈10x PSM %v", on, psm)
	}
}

func TestFig12TradeoffShape(t *testing.T) {
	tbl, err := Fig12(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.Series[0]
	if s.Len() < 2 {
		t.Fatalf("trade-off has %d points", s.Len())
	}
	// Inverse relation: sort by latency, energy must not increase.
	type pt struct{ x, y float64 }
	pts := make([]pt, s.Len())
	for i := range s.X {
		pts[i] = pt{s.X[i], s.Y[i]}
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].x < pts[j].x && pts[i].y < pts[j].y-1e-9 {
				t.Fatalf("not inverse: (%v,%v) vs (%v,%v)", pts[i].x, pts[i].y, pts[j].x, pts[j].y)
			}
		}
	}
}

func TestFig13EnergyOrdering(t *testing.T) {
	tbl, err := Fig13(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	psm, ok1 := tbl.SeriesByName("PSM").YAt(0.5)
	on, ok2 := tbl.SeriesByName("NO PSM").YAt(0.5)
	if !ok1 || !ok2 {
		t.Fatal("baseline points missing")
	}
	if psm >= on {
		t.Fatalf("PSM energy %v not below NO PSM %v", psm, on)
	}
	// PBBF energy at q=1 must approach NO PSM, at q=0 approach PSM.
	pbbf := tbl.SeriesByName("PBBF-0.5")
	if pbbf == nil {
		t.Fatal("missing PBBF-0.5")
	}
	y0, _ := pbbf.YAt(0)
	y1, _ := pbbf.YAt(1)
	if y0 >= y1 {
		t.Fatalf("PBBF energy not increasing in q: %v -> %v", y0, y1)
	}
}

func TestFig16ReceivedBounds(t *testing.T) {
	tbl, err := Fig16(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tbl.Series {
		for i, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("%s at x=%v out of [0,1]: %v", s.Name, s.X[i], y)
			}
		}
	}
	// PSM stays near-perfect.
	for _, y := range tbl.SeriesByName("PSM").Y {
		if y < 0.9 {
			t.Fatalf("PSM reliability dipped to %v", y)
		}
	}
}

func TestFig17LatencyFallsWithDensity(t *testing.T) {
	tbl, err := Fig17(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.SeriesByName("PSM")
	if s == nil || s.Len() < 2 {
		t.Fatal("PSM series incomplete")
	}
	first, last := s.Y[0], s.Y[s.Len()-1]
	if last > first*1.25 {
		t.Fatalf("PSM latency rose with density: %v -> %v", first, last)
	}
}

func TestRegistrySmokeAll(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := tinyScale()
	for _, e := range All() {
		tbl, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if tbl.Title == "" || len(tbl.Series) == 0 {
			t.Fatalf("%s produced empty table", e.ID)
		}
		if out := tbl.Render(); len(out) == 0 || !strings.Contains(out, "#") {
			t.Fatalf("%s render empty", e.ID)
		}
		if csv := tbl.CSV(); !strings.Contains(csv, ",") {
			t.Fatalf("%s csv empty", e.ID)
		}
	}
}

// TestNetsimDeterministicAcrossWorkers is the pooled-kernel determinism
// gate: the Section 5 netsim scenario must produce byte-identical Results
// (tables, per-point energy/latency/delivery, everything that reaches the
// JSON output) no matter how the point sweep is scheduled. A kernel
// optimization that perturbed event order or RNG consumption would show up
// here before it could corrupt a paper artifact.
func TestNetsimDeterministicAcrossWorkers(t *testing.T) {
	sc, err := Registry().ByID("fig13")
	if err != nil {
		t.Fatal(err)
	}
	s := QuickScale()
	s.NetRuns = 1
	s.NetDuration = 200 * time.Second
	s.Seed = 42
	blobFor := func(workers int) []byte {
		outs, err := scenario.RunAll([]scenario.Scenario{sc}, s, workers)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(outs)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	want := blobFor(1)
	for _, workers := range []int{2, 8} {
		if got := blobFor(workers); !bytes.Equal(want, got) {
			t.Fatalf("workers=%d changed the netsim Result bytes", workers)
		}
	}
}

// seriesY returns the y values of the named series of a regenerated
// scenario, keyed by x, failing the test if the series is absent.
func seriesY(t *testing.T, id, series string, s Scale) map[float64]float64 {
	t.Helper()
	tbl, err := runByID(id, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, ser := range tbl.Series {
		if ser.Name != series {
			continue
		}
		out := make(map[float64]float64, ser.Len())
		for i := 0; i < ser.Len(); i++ {
			out[ser.X[i]] = ser.Y[i]
		}
		return out
	}
	t.Fatalf("%s: series %q missing", id, series)
	return nil
}

// TestExtChurnReliabilityFalls: killing nodes mid-run must never improve
// delivery — for every protocol, the churn-free point bounds the
// max-churn point from above.
func TestExtChurnReliabilityFalls(t *testing.T) {
	s := tinyScale()
	for _, series := range []string{"PSM", "PBBF-0.5", "NO PSM"} {
		y := seriesY(t, "extchurn", series, s)
		if y[0] < y[0.3]-1e-9 {
			t.Fatalf("%s: delivery rose under churn: %v -> %v", series, y[0], y[0.3])
		}
	}
}

// TestExtLinkLossShape: the always-on baseline out-delivers PSM once links
// get bad (awake nodes give every retransmission a chance), and PSM itself
// degrades from its clean-channel delivery.
func TestExtLinkLossShape(t *testing.T) {
	s := tinyScale()
	psm := seriesY(t, "extlinkloss", "PSM", s)
	noPSM := seriesY(t, "extlinkloss", "NO PSM", s)
	if noPSM[0.4] < psm[0.4]-1e-9 {
		t.Fatalf("NO PSM (%v) under PSM (%v) at 40%% mean link loss", noPSM[0.4], psm[0.4])
	}
	if psm[0] < psm[0.4]-1e-9 {
		t.Fatalf("PSM delivery rose with link loss: %v -> %v", psm[0], psm[0.4])
	}
}

// TestExtClusterLatencyGrowsWithSpread: for PSM, spreading the clusters
// apart stretches hop distances and therefore per-update latency, while
// the always-on baseline stays within a few seconds regardless — the
// spread axis stresses sleeping protocols, not the network itself.
func TestExtClusterLatencyGrowsWithSpread(t *testing.T) {
	s := tinyScale()
	psm := seriesY(t, "extcluster", "PSM", s)
	if psm[4] <= psm[0.5] {
		t.Fatalf("PSM latency did not grow with cluster spread: %v -> %v", psm[0.5], psm[4])
	}
	for x, y := range seriesY(t, "extcluster", "NO PSM", s) {
		if y > 3 {
			t.Fatalf("NO PSM latency %v at spread %v — always-on should be near-immediate", y, x)
		}
	}
}

// TestExtCorridorLatencyGrowsWithAspect: stretching the square into an 8:1
// strip lengthens the broadcast's hop chain under PSM.
func TestExtCorridorLatencyGrowsWithAspect(t *testing.T) {
	s := tinyScale()
	psm := seriesY(t, "extcorridor", "PSM", s)
	if psm[8] <= psm[1] {
		t.Fatalf("PSM latency did not grow with corridor aspect: %v -> %v", psm[1], psm[8])
	}
}
