package experiments

import (
	"fmt"

	"pbbf/internal/core"
	"pbbf/internal/percolation"
	"pbbf/internal/rng"
	"pbbf/internal/stats"
	"pbbf/internal/topo"
)

// reliabilityLevels are the reliability targets of Figures 6 and 7.
var reliabilityLevels = []float64{0.8, 0.9, 0.99, 1.0}

// Fig6 regenerates Figure 6: the critical fraction of occupied bonds
// needed for the source's cluster to cover each reliability level, across
// grid sizes, via the Newman–Ziff fast Monte Carlo algorithm.
func Fig6(s Scale) (*stats.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tbl := &stats.Table{
		Title:  "Figure 6: critical bond ratio for various grid sizes",
		XLabel: "grid side length",
		YLabel: "fraction of occupied bonds",
	}
	for _, rel := range reliabilityLevels {
		series := tbl.AddSeries(fmt.Sprintf("%g%% Reliability", rel*100))
		for _, side := range s.PercGrids {
			g, err := topo.NewGrid(side, side)
			if err != nil {
				return nil, err
			}
			r := rng.New(pointSeed(s.Seed, 6, uint64(side), fbits(rel)))
			res, err := percolation.CriticalBondRatio(g, g.Center(), rel, s.PercTrials, r)
			if err != nil {
				return nil, err
			}
			series.Append(float64(side), res.Mean)
		}
	}
	return tbl, nil
}

// Fig7 regenerates Figure 7: for each p, the minimum q that pushes the
// edge probability pedge = 1 − p(1 − q) past the critical bond ratio of a
// 30×30 grid, per reliability level.
func Fig7(s Scale) (*stats.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const side = 30 // the paper fixes Figure 7 to a 30×30 grid
	g, err := topo.NewGrid(side, side)
	if err != nil {
		return nil, err
	}
	tbl := &stats.Table{
		Title:  "Figure 7: p-q relationship per reliability level (30x30 grid)",
		XLabel: "p",
		YLabel: "minimum q crossing the reliability threshold",
	}
	for _, rel := range reliabilityLevels {
		r := rng.New(pointSeed(s.Seed, 7, fbits(rel)))
		pc, err := percolation.CriticalBondRatio(g, g.Center(), rel, s.PercTrials, r)
		if err != nil {
			return nil, err
		}
		series := tbl.AddSeries(fmt.Sprintf("%g%% Reliability", rel*100))
		for _, p := range sweepRange(0, 1, 0.1) {
			series.Append(p, core.MinQForEdgeProbability(p, pc.Mean))
		}
	}
	return tbl, nil
}
