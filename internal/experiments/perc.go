package experiments

import (
	"fmt"

	"pbbf/internal/core"
	"pbbf/internal/percolation"
	"pbbf/internal/rng"
	"pbbf/internal/scenario"
	"pbbf/internal/stats"
	"pbbf/internal/topo"
)

// reliabilityLevels are the reliability targets of Figures 6 and 7.
var reliabilityLevels = []float64{0.8, 0.9, 0.99, 1.0}

func reliabilityLabel(rel float64) string {
	return fmt.Sprintf("%g%% Reliability", rel*100)
}

// fig6Scenario regenerates Figure 6: the critical fraction of occupied
// bonds needed for the source's cluster to cover each reliability level,
// across grid sizes, via the Newman–Ziff fast Monte Carlo algorithm. Each
// (reliability, grid) pair is one independent point.
func fig6Scenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "fig6",
		Title:    "Figure 6: critical bond ratio for various grid sizes",
		Artifact: "Figure 6",
		Summary:  "Monte Carlo estimate (Newman–Ziff) of the bond fraction at which the source's cluster covers 80/90/99/100% of the grid, versus grid side length.",
		Params: []scenario.ParamDoc{
			{Name: "side", Desc: "square grid side length (paper: 10–40)"},
			{Name: "rel", Desc: "reliability target: fraction of nodes the source's cluster must cover"},
		},
		XLabel: "grid side length",
		YLabel: "fraction of occupied bonds",
		Points: func(s Scale) ([]scenario.Point, error) {
			pts := make([]scenario.Point, 0, len(reliabilityLevels)*len(s.PercGrids))
			for _, rel := range reliabilityLevels {
				for _, side := range s.PercGrids {
					pts = append(pts, scenario.Point{
						Series: reliabilityLabel(rel),
						X:      float64(side),
						Params: map[string]float64{"side": float64(side), "rel": rel},
					})
				}
			}
			return pts, nil
		},
		RunPoint: func(s Scale, pt scenario.Point) (scenario.Result, error) {
			side := int(pt.Params["side"])
			rel := pt.Params["rel"]
			g, err := topo.NewGrid(side, side)
			if err != nil {
				return scenario.Result{}, err
			}
			r := rng.New(pointSeed(s.Seed, 6, uint64(side), fbits(rel)))
			res, err := percolation.CriticalBondRatio(g, g.Center(), rel, s.PercTrials, r)
			if err != nil {
				return scenario.Result{}, err
			}
			// No delivery/energy/latency triple: the measured quantity is a
			// percolation threshold, not a broadcast outcome.
			return scenario.Result{Y: res.Mean}, nil
		},
	}
}

// fig7Scenario regenerates Figure 7: for each p, the minimum q that pushes
// the edge probability pedge = 1 − p(1 − q) past the critical bond ratio of
// a 30×30 grid, per reliability level. One Monte Carlo threshold estimate
// feeds a whole analytic series, so this runs as a whole-table scenario.
func fig7Scenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "fig7",
		Title:    "Figure 7: p-q relationship per reliability level (30x30 grid)",
		Artifact: "Figure 7",
		Summary:  "The p–q operating frontier: the cheapest q meeting each reliability target as p sweeps 0–1, from Remark 1 inverted at the measured critical bond ratio.",
		Params: []scenario.ParamDoc{
			{Name: "p", Desc: "PBBF immediate-rebroadcast probability, swept 0–1"},
			{Name: "rel", Desc: "reliability target of each frontier line"},
		},
		XLabel: "p",
		YLabel: "minimum q crossing the reliability threshold",
		TableFn: func(s Scale) (*stats.Table, error) {
			const side = 30 // the paper fixes Figure 7 to a 30×30 grid
			g, err := topo.NewGrid(side, side)
			if err != nil {
				return nil, err
			}
			tbl := &stats.Table{
				Title:  "Figure 7: p-q relationship per reliability level (30x30 grid)",
				XLabel: "p",
				YLabel: "minimum q crossing the reliability threshold",
			}
			for _, rel := range reliabilityLevels {
				r := rng.New(pointSeed(s.Seed, 7, fbits(rel)))
				pc, err := percolation.CriticalBondRatio(g, g.Center(), rel, s.PercTrials, r)
				if err != nil {
					return nil, err
				}
				series := tbl.AddSeries(reliabilityLabel(rel))
				for _, p := range sweepRange(0, 1, 0.1) {
					series.Append(p, core.MinQForEdgeProbability(p, pc.Mean))
				}
			}
			return tbl, nil
		},
	}
}
