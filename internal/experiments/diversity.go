package experiments

import (
	"context"

	"pbbf/internal/core"
	"pbbf/internal/mac"
	"pbbf/internal/netsim"
	"pbbf/internal/rng"
	"pbbf/internal/scenario"
	"pbbf/internal/topo"
)

// The scenario-diversity families. The paper measures the energy-latency
// trade-off only on uniform random disks and grids with homogeneous,
// always-reliable, immortal nodes; each family below relaxes exactly one of
// those assumptions and sweeps the relaxation as an axis, so the registry
// covers clustered, stretched, lossy, churning, and heterogeneous fields
// with the same protocols and metrics as the original figures. All five
// run through runNetPoint and the unchanged engine, so they compose with
// `pbbf sweep` (parallel, -checkpoint, -distribute), `pbbf serve` caching,
// and `pbbf bench` with no special cases.

// divProtocols is the protocol set the diversity sweeps compare: the two
// paper baselines bracketing a mid-range PBBF operating point.
func divProtocols() []core.Params {
	return []core.Params{core.PSM(), {P: 0.5, Q: 0.25}, core.AlwaysOn()}
}

// divPoints enumerates (protocol, x) for every protocol and sweep value,
// storing the protocol under "p"/"q" and the swept axis under name.
func divPoints(name string, sweep []float64) []scenario.Point {
	protos := divProtocols()
	pts := make([]scenario.Point, 0, len(protos)*len(sweep))
	for _, proto := range protos {
		for _, x := range sweep {
			pts = append(pts, scenario.Point{
				Series: proto.Label(),
				X:      x,
				Params: map[string]float64{"p": proto.P, "q": proto.Q, name: x},
			})
		}
	}
	return pts
}

// divProtocolDocs documents the shared protocol dimensions.
func divProtocolDocs(extra ...scenario.ParamDoc) []scenario.ParamDoc {
	docs := []scenario.ParamDoc{
		{Name: "p", Desc: "PBBF immediate-rebroadcast probability of the series' operating point"},
		{Name: "q", Desc: "PBBF stay-awake probability of the series' operating point"},
	}
	return append(docs, extra...)
}

// Densities for the structured deployments: clustering and corridors both
// concentrate disconnection risk, so they run denser than the paper's
// Δ=10 to keep the connected-retry loop reliable while preserving the
// shape each family is meant to stress.
const (
	clusterDelta  = 14
	corridorDelta = 16
	clusterCount  = 4
)

// extClusterScenario sweeps the spread of a Gaussian-clustered deployment:
// nodes scatter around four deployment sites with standard deviation
// sigma = (sigma/R)·R. Tight clusters (small sigma) are internally dense —
// rebroadcast storms collide — while the few inter-cluster links become
// bridges every broadcast must cross.
func extClusterScenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "extcluster",
		Title:    "Extension: Gaussian-clustered deployments (latency vs cluster spread)",
		Artifact: "extension",
		Summary:  "Relaxes the uniform-placement assumption: nodes scatter around 4 Gaussian deployment sites and the cluster spread σ/R is swept from tight blobs to near-uniform, tracing how inter-cluster bridge links reshape the energy-latency trade-off.",
		Params: divProtocolDocs(
			scenario.ParamDoc{Name: "sigma_r", Desc: "cluster spread: per-axis Gaussian stddev as a multiple of the radio range R"},
		),
		XLabel: "cluster spread sigma/R",
		YLabel: "average update latency (s)",
		Points: func(s Scale) ([]scenario.Point, error) {
			return divPoints("sigma_r", []float64{0.5, 1, 2, 4}), nil
		},
		RunPointCtx: func(ctx context.Context, s Scale, pt scenario.Point) (scenario.Result, error) {
			sigmaR := pt.Params["sigma_r"]
			build := func(s Scale, delta float64, r *rng.Source, sc *topo.Scratch) (topo.Topology, error) {
				cfg := topo.ClusterConfig{
					N:        s.NetNodes,
					Range:    30,
					Area:     topo.AreaForDensity(s.NetNodes, 30, delta),
					Clusters: clusterCount,
					Sigma:    sigmaR * 30,
				}
				return sc.ConnectedField(func(r *rng.Source) (*topo.Field, error) {
					return sc.GaussianClusters(cfg, r)
				}, r, 500)
			}
			params := core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
			point, err := runNetPoint(ctx, s, params, clusterDelta, 109,
				netOpts{field: build})
			if err != nil {
				return scenario.Result{}, err
			}
			return netResult(point, point.Latency.Mean(), point.Latency.N() > 0), nil
		},
	}
}

// extCorridorScenario stretches the deployment rectangle at fixed area and
// density: corridor networks (pipelines, tunnels, roadsides) force every
// broadcast through a chain of narrow gaps, so latency compounds per hop
// and a single sleepy bottleneck stalls the whole tail of the strip.
func extCorridorScenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "extcorridor",
		Title:    "Extension: corridor deployments (latency vs aspect ratio)",
		Artifact: "extension",
		Summary:  "Relaxes the square-region assumption: the deployment is stretched into a strip of swept length/width ratio at fixed area and density, the pipeline/roadside regime where hop counts grow and one asleep bottleneck stalls the broadcast.",
		Params: divProtocolDocs(
			scenario.ParamDoc{Name: "aspect", Desc: "corridor length/width ratio at fixed area (1 = the paper's square)"},
		),
		XLabel: "corridor aspect ratio (length/width)",
		YLabel: "average update latency (s)",
		Points: func(s Scale) ([]scenario.Point, error) {
			return divPoints("aspect", []float64{1, 4, 8, 16}), nil
		},
		RunPointCtx: func(ctx context.Context, s Scale, pt scenario.Point) (scenario.Result, error) {
			aspect := pt.Params["aspect"]
			build := func(s Scale, delta float64, r *rng.Source, sc *topo.Scratch) (topo.Topology, error) {
				cfg := topo.CorridorConfig{
					N:      s.NetNodes,
					Range:  30,
					Area:   topo.AreaForDensity(s.NetNodes, 30, delta),
					Aspect: aspect,
				}
				return sc.ConnectedField(func(r *rng.Source) (*topo.Field, error) {
					return sc.Corridor(cfg, r)
				}, r, 500)
			}
			params := core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
			point, err := runNetPoint(ctx, s, params, corridorDelta, 110,
				netOpts{field: build})
			if err != nil {
				return scenario.Result{}, err
			}
			return netResult(point, point.Latency.Mean(), point.Latency.N() > 0), nil
		},
	}
}

// extLinkLossScenario sweeps persistent per-link loss: every link draws
// its own rate uniformly in [0, 2·mean), so some links are clean and some
// nearly dead. Contrast with extloss, whose iid fading treats every
// reception identically — here the *topology of bad links* matters, and
// PBBF's redundant rebroadcasts route around them.
func extLinkLossScenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "extlinkloss",
		Title:    "Extension: per-link loss diversity (reliability vs mean link loss)",
		Artifact: "extension",
		Summary:  "Relaxes the reliable-link assumption: each link holds a persistent seeded loss rate drawn uniform in [0,2·mean), modelling quality diversity rather than iid fading; delivery is traced as the mean link loss rises.",
		Params: divProtocolDocs(
			scenario.ParamDoc{Name: "linkloss", Desc: "mean per-link loss probability; individual links draw uniform in [0, 2·mean)"},
		),
		XLabel: "mean per-link loss probability",
		YLabel: "updates received / total updates sent at source",
		Points: func(s Scale) ([]scenario.Point, error) {
			return divPoints("linkloss", []float64{0, 0.1, 0.2, 0.3, 0.4}), nil
		},
		RunPointCtx: func(ctx context.Context, s Scale, pt scenario.Point) (scenario.Result, error) {
			params := core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
			point, err := runNetPoint(ctx, s, params, 10, 111,
				netOpts{loss: netsim.LossOptions{LinkMean: pt.Params["linkloss"]}})
			if err != nil {
				return scenario.Result{}, err
			}
			return netResult(point, point.Received.Mean(), point.Received.N() > 0), nil
		},
	}
}

// extChurnScenario sweeps fail-stop node churn: a seeded fraction of
// non-source nodes dies permanently at uniform times mid-run. Dead nodes
// stop forwarding and receiving, so the delivered fraction bounds from
// above at the survivors' share — what the sweep shows is how much *extra*
// delivery each protocol loses to the forwarding holes the dead leave
// behind.
func extChurnScenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "extchurn",
		Title:    "Extension: fail-stop node churn (reliability vs death fraction)",
		Artifact: "extension",
		Summary:  "Relaxes the immortal-node assumption: a swept fraction of non-source nodes fail-stops at seeded uniform times mid-broadcast, and delivery shows how each protocol tolerates the forwarding holes the dead leave.",
		Params: divProtocolDocs(
			scenario.ParamDoc{Name: "churn", Desc: "fraction of non-source nodes that die (fail-stop) during the run"},
		),
		XLabel: "fraction of nodes dying during the run",
		YLabel: "updates received / total updates sent at source",
		Points: func(s Scale) ([]scenario.Point, error) {
			return divPoints("churn", []float64{0, 0.1, 0.2, 0.3}), nil
		},
		RunPointCtx: func(ctx context.Context, s Scale, pt scenario.Point) (scenario.Result, error) {
			params := core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
			point, err := runNetPoint(ctx, s, params, 10, 112,
				netOpts{churn: netsim.ChurnOptions{FailFraction: pt.Params["churn"]}})
			if err != nil {
				return scenario.Result{}, err
			}
			return netResult(point, point.Received.Mean(), point.Received.N() > 0), nil
		},
	}
}

// extHeteroScenario sweeps heterogeneous per-node duty cycles: each node's
// stay-awake probability is drawn uniform in q ± spread (clamped to [0,1])
// instead of the paper's single global q. The sweep holds the *mean* q
// fixed at 0.3 (spreads ≤ 0.3 never clamp), so any delivery or latency
// shift is pure heterogeneity: low-q nodes punch sleep holes that the
// high-q nodes' extra wakefulness cannot fully repair.
func extHeteroScenario() scenario.Scenario {
	const baseQ = 0.3
	operatingPoints := []struct {
		series string
		p      float64
	}{
		{"PSM (p=0, q=0.3±spread)", 0},
		{"PBBF-0.5 (q=0.3±spread)", 0.5},
	}
	return scenario.Scenario{
		ID:       "exthetero",
		Title:    "Extension: heterogeneous per-node duty cycles (reliability vs q spread)",
		Artifact: "extension",
		Summary:  "Relaxes the homogeneous-parameter assumption: each node draws its stay-awake probability uniform in 0.3±spread from a seeded distribution, holding the mean fixed, so the sweep isolates what parameter diversity alone does to delivery.",
		Params: divProtocolDocs(
			scenario.ParamDoc{Name: "spread", Desc: "half-width of the uniform per-node jitter on q around the 0.3 base (mean-preserving for spread ≤ 0.3)"},
		),
		XLabel: "per-node q jitter half-width",
		YLabel: "updates received / total updates sent at source",
		Points: func(s Scale) ([]scenario.Point, error) {
			var pts []scenario.Point
			for _, op := range operatingPoints {
				for _, spread := range []float64{0, 0.1, 0.2, 0.3} {
					pts = append(pts, scenario.Point{
						Series: op.series,
						X:      spread,
						Params: map[string]float64{"p": op.p, "q": baseQ, "spread": spread},
					})
				}
			}
			return pts, nil
		},
		RunPointCtx: func(ctx context.Context, s Scale, pt scenario.Point) (scenario.Result, error) {
			params := core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
			point, err := runNetPoint(ctx, s, params, 10, 113,
				netOpts{hetero: mac.HeteroConfig{QSpread: pt.Params["spread"]}})
			if err != nil {
				return scenario.Result{}, err
			}
			return netResult(point, point.Received.Mean(), point.Received.N() > 0), nil
		},
	}
}

// diversityScenarios returns the scenario-diversity families in
// presentation order.
func diversityScenarios() []scenario.Scenario {
	return []scenario.Scenario{
		extClusterScenario(),
		extCorridorScenario(),
		extLinkLossScenario(),
		extChurnScenario(),
		extHeteroScenario(),
	}
}
