package experiments

import (
	"fmt"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/idealsim"
	"pbbf/internal/percolation"
	"pbbf/internal/rng"
	"pbbf/internal/stats"
	"pbbf/internal/sweep"
	"pbbf/internal/topo"
)

// idealProtocols returns the protocol set plotted in the Section 4
// figures: PBBF at each p of the sweep, plus the PSM and NO PSM baselines.
// For the baselines q is pinned (0 and 1); for PBBF the caller sweeps q.
func idealProtocols(s Scale) []core.Params {
	out := make([]core.Params, 0, len(s.PSweepIdeal)+2)
	for _, p := range s.PSweepIdeal {
		out = append(out, core.Params{P: p})
	}
	out = append(out, core.PSM(), core.AlwaysOn())
	return out
}

// runIdealPoint executes one ideal-simulator run for (params) at the given
// q (ignored for the fixed baselines) and returns its result.
func runIdealPoint(s Scale, base core.Params, q float64, track []int, tag uint64) (*idealsim.Result, core.Params, error) {
	params := base
	fixed := base == core.PSM() || base == core.AlwaysOn()
	if !fixed {
		params.Q = q
	}
	g, err := topo.NewGrid(s.GridW, s.GridH)
	if err != nil {
		return nil, params, err
	}
	cfg := idealsim.Defaults(g, g.Center())
	cfg.Params = params
	cfg.Updates = s.IdealUpdates
	cfg.TrackHopDistances = track
	cfg.Seed = pointSeed(s.Seed, tag, fbits(base.P), fbits(q))
	res, err := idealsim.Run(cfg)
	return res, params, err
}

// qSweepIdeal renders a Section 4 q-sweep figure: one series per protocol,
// y computed by metric from the run result. Points are independent (each
// derives its own seed) and run on a bounded worker pool; results are
// assembled in sweep order, so the output is deterministic.
func qSweepIdeal(s Scale, title, ylabel string, track []int, tag uint64,
	metric func(*idealsim.Result) (float64, bool)) (*stats.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	protos := idealProtocols(s)
	nQ := len(s.QSweep)
	results, err := sweep.Map(len(protos)*nQ, 0, func(i int) (*idealsim.Result, error) {
		proto, q := protos[i/nQ], s.QSweep[i%nQ]
		res, _, err := runIdealPoint(s, proto, q, track, tag)
		return res, err
	})
	if err != nil {
		return nil, err
	}
	tbl := &stats.Table{Title: title, XLabel: "q", YLabel: ylabel}
	for pi, proto := range protos {
		series := tbl.AddSeries(proto.Label())
		for qi, q := range s.QSweep {
			if y, ok := metric(results[pi*nQ+qi]); ok {
				series.Append(q, y)
			}
		}
	}
	return tbl, nil
}

// Fig4 regenerates Figure 4: fraction of updates received by 90% of the
// nodes as a function of q, exhibiting the percolation threshold.
func Fig4(s Scale) (*stats.Table, error) {
	return qSweepIdeal(s, "Figure 4: threshold behavior for 90% reliability",
		"fraction of updates received by 90% of nodes", nil, 4,
		func(r *idealsim.Result) (float64, bool) {
			return r.FractionOfUpdatesReceivedBy(0.9), true
		})
}

// Fig5 regenerates Figure 5: the same threshold at 99% reliability.
func Fig5(s Scale) (*stats.Table, error) {
	return qSweepIdeal(s, "Figure 5: threshold behavior for 99% reliability",
		"fraction of updates received by 99% of nodes", nil, 5,
		func(r *idealsim.Result) (float64, bool) {
			return r.FractionOfUpdatesReceivedBy(0.99), true
		})
}

// Fig8 regenerates Figure 8: average per-node energy per update versus q.
// The paper's claims: linear in q, independent of p, PSM≈0.3 J and
// NO PSM≈3 J at Table 1 settings.
func Fig8(s Scale) (*stats.Table, error) {
	return qSweepIdeal(s, "Figure 8: average energy consumption",
		"joules consumed per update sent at source", nil, 8,
		func(r *idealsim.Result) (float64, bool) {
			return r.EnergyPerUpdateJ, true
		})
}

// Fig9 regenerates Figure 9: average hops traveled by an update to reach
// nodes HopNear away from the source (paper: 20).
func Fig9(s Scale) (*stats.Table, error) {
	return qSweepIdeal(s,
		fmt.Sprintf("Figure 9: average %d-hop flooding hop count", s.HopNear),
		fmt.Sprintf("average hops traveled to nodes %d hops from source", s.HopNear),
		[]int{s.HopNear}, 9,
		func(r *idealsim.Result) (float64, bool) {
			acc := r.HopsAtDistance[s.HopNear]
			if acc == nil || acc.N() == 0 {
				return 0, false
			}
			return acc.Mean(), true
		})
}

// Fig10 regenerates Figure 10: the same metric at HopFar (paper: 60).
func Fig10(s Scale) (*stats.Table, error) {
	return qSweepIdeal(s,
		fmt.Sprintf("Figure 10: average %d-hop flooding hop count", s.HopFar),
		fmt.Sprintf("average hops traveled to nodes %d hops from source", s.HopFar),
		[]int{s.HopFar}, 10,
		func(r *idealsim.Result) (float64, bool) {
			acc := r.HopsAtDistance[s.HopFar]
			if acc == nil || acc.N() == 0 {
				return 0, false
			}
			return acc.Mean(), true
		})
}

// Fig11 regenerates Figure 11: average per-hop update latency versus q.
func Fig11(s Scale) (*stats.Table, error) {
	return qSweepIdeal(s, "Figure 11: average per-hop update latency",
		"average per-hop update latency (s)", nil, 11,
		func(r *idealsim.Result) (float64, bool) {
			if r.PerHopLatency.N() == 0 {
				return 0, false
			}
			return r.PerHopLatency.Mean(), true
		})
}

// Fig12 regenerates Figure 12: the energy–latency trade-off at 99%
// reliability. For each p, the minimum q that crosses the 99% reliability
// boundary is derived from the bond-percolation critical ratio of the grid
// (Remark 1 inverted); energy then follows Equation 8 (scaled to joules
// per update) and latency Equation 9 with L1 from Table 1 and L2 = Tframe.
func Fig12(s Scale) (*stats.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, err := topo.NewGrid(s.GridW, s.GridH)
	if err != nil {
		return nil, err
	}
	r := rng.New(pointSeed(s.Seed, 12))
	pc, err := percolation.CriticalBondRatio(g, g.Center(), 0.99, s.PercTrials, r)
	if err != nil {
		return nil, err
	}
	timing := core.Timing{Active: time.Second, Frame: 10 * time.Second}
	lat := core.Latencies{L1: 1500 * time.Millisecond, L2: timing.Frame}
	cfg := idealsim.Defaults(g, g.Center())
	tbl := &stats.Table{
		Title:  "Figure 12: energy-latency trade-off for 99% reliability",
		XLabel: "average per-hop update latency (s)",
		YLabel: "joules consumed per update sent at source",
	}
	series := tbl.AddSeries("PBBF @ 99% reliability boundary")
	period := 1 / cfg.Lambda // seconds between updates
	for _, p := range s.PSweepIdeal {
		q := core.MinQForEdgeProbability(p, pc.Mean)
		perHop := core.ExpectedPerHopLatency(core.Params{P: p, Q: q}, lat)
		avgW := cfg.Profile.IdleW*core.EnergyPBBF(timing, q) +
			cfg.Profile.SleepW*(1-core.EnergyPBBF(timing, q))
		series.Append(perHop.Seconds(), avgW*period)
	}
	return tbl, nil
}
