package experiments

import (
	"fmt"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/idealsim"
	"pbbf/internal/percolation"
	"pbbf/internal/rng"
	"pbbf/internal/scenario"
	"pbbf/internal/stats"
	"pbbf/internal/topo"
)

// pqDocs documents the protocol q-sweep parameter space shared by every
// Section 4/5 figure: one PBBF line per p, the PSM and NO PSM baselines,
// and q on the x axis.
var pqDocs = []scenario.ParamDoc{
	{Name: "p", Desc: "PBBF immediate-rebroadcast probability (0 pins PSM, 1 pins NO PSM)"},
	{Name: "q", Desc: "PBBF stay-awake probability; swept on the x axis, pinned for the baselines"},
}

// idealProtocols returns the protocol set plotted in the Section 4
// figures: PBBF at each p of the sweep, plus the PSM and NO PSM baselines.
// For the baselines q is pinned (0 and 1); for PBBF the caller sweeps q.
func idealProtocols(s Scale) []core.Params {
	out := make([]core.Params, 0, len(s.PSweepIdeal)+2)
	for _, p := range s.PSweepIdeal {
		out = append(out, core.Params{P: p})
	}
	out = append(out, core.PSM(), core.AlwaysOn())
	return out
}

// protocolQPoints enumerates the (protocol, q) grid behind every q-sweep
// figure: one series per protocol, one point per q. Baselines keep their
// pinned parameters but still appear at every x so the lines span the plot.
func protocolQPoints(protos []core.Params, qs []float64) []scenario.Point {
	pts := make([]scenario.Point, 0, len(protos)*len(qs))
	for _, proto := range protos {
		fixed := proto == core.PSM() || proto == core.AlwaysOn()
		for _, q := range qs {
			params := proto
			if !fixed {
				params.Q = q
			}
			pts = append(pts, scenario.Point{
				Series: proto.Label(),
				X:      q,
				Params: map[string]float64{"p": params.P, "q": params.Q},
			})
		}
	}
	return pts
}

// idealQSweep builds a Section 4 q-sweep scenario: one ideal-simulator run
// per (protocol, q) point, y computed by metric from the run result. Every
// point derives its own seed, so the engine can run them in any order.
func idealQSweep(id, artifact, title, summary, ylabel string, tag uint64,
	track func(Scale) []int,
	metric func(Scale, *idealsim.Result) (float64, bool)) scenario.Scenario {
	if track == nil {
		track = func(Scale) []int { return nil }
	}
	return scenario.Scenario{
		ID:       id,
		Title:    title,
		Artifact: artifact,
		Summary:  summary,
		Params:   pqDocs,
		XLabel:   "q",
		YLabel:   ylabel,
		Points: func(s Scale) ([]scenario.Point, error) {
			return protocolQPoints(idealProtocols(s), s.QSweep), nil
		},
		RunPoint: func(s Scale, pt scenario.Point) (scenario.Result, error) {
			g, err := topo.NewGrid(s.GridW, s.GridH)
			if err != nil {
				return scenario.Result{}, err
			}
			cfg := idealsim.Defaults(g, g.Center())
			cfg.Params = core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
			cfg.Updates = s.IdealUpdates
			cfg.TrackHopDistances = track(s)
			cfg.Seed = pointSeed(s.Seed, tag, fbits(cfg.Params.P), fbits(pt.X))
			res, err := idealsim.Run(cfg)
			if err != nil {
				return scenario.Result{}, err
			}
			y, ok := metric(s, res)
			out := scenario.Result{
				Y:        y,
				Skip:     !ok,
				EnergyJ:  res.EnergyPerUpdateJ,
				Delivery: res.MeanCoverage(),
			}
			if res.PerHopLatency.N() > 0 {
				out.LatencyS = res.PerHopLatency.Mean()
			}
			return out, nil
		},
	}
}

// hopStretchMetric reads the mean dissemination-tree path length at one
// tracked BFS distance (Figures 9/10).
func hopStretchMetric(dist func(Scale) int) func(Scale, *idealsim.Result) (float64, bool) {
	return func(s Scale, r *idealsim.Result) (float64, bool) {
		acc := r.HopsAtDistance[dist(s)]
		if acc == nil || acc.N() == 0 {
			return 0, false
		}
		return acc.Mean(), true
	}
}

// hopStretchScenario builds Figure 9 or 10: the q-sweep of hop stretch at
// one tracked BFS distance, with titles and labels localized to the
// distance the scale actually tracks (paper: 20 near, 60 far).
func hopStretchScenario(id, artifact, title, summary string, tag uint64,
	dist func(Scale) int) scenario.Scenario {
	sc := idealQSweep(id, artifact, title, summary,
		"average hops traveled to nodes at the tracked distance", tag,
		func(s Scale) []int { return []int{dist(s)} },
		hopStretchMetric(dist))
	sc.Localize = func(s Scale, tbl *stats.Table) {
		tbl.Title = fmt.Sprintf("%s: average %d-hop flooding hop count", artifact, dist(s))
		tbl.YLabel = fmt.Sprintf("average hops traveled to nodes %d hops from source", dist(s))
	}
	return sc
}

// section4Scenarios returns the Section 4 scenarios in the paper's
// presentation order: the threshold figures, the percolation analysis
// (Figures 6/7), and the energy/latency/trade-off figures.
func section4Scenarios() []scenario.Scenario {
	return []scenario.Scenario{
		idealQSweep("fig4", "Figure 4",
			"Figure 4: threshold behavior for 90% reliability",
			"Fraction of broadcasts reaching ≥90% of nodes versus q; exhibits the bond-percolation threshold predicted by Remark 1.",
			"fraction of updates received by 90% of nodes", 4, nil,
			func(_ Scale, r *idealsim.Result) (float64, bool) {
				return r.FractionOfUpdatesReceivedBy(0.9), true
			}),
		idealQSweep("fig5", "Figure 5",
			"Figure 5: threshold behavior for 99% reliability",
			"The Figure 4 threshold at the stricter 99% reliability target.",
			"fraction of updates received by 99% of nodes", 5, nil,
			func(_ Scale, r *idealsim.Result) (float64, bool) {
				return r.FractionOfUpdatesReceivedBy(0.99), true
			}),
		fig6Scenario(),
		fig7Scenario(),
		idealQSweep("fig8", "Figure 8",
			"Figure 8: average energy consumption",
			"Per-node energy per update versus q: linear in q, independent of p, bracketed by the PSM and NO PSM baselines (Equation 8).",
			"joules consumed per update sent at source", 8, nil,
			func(_ Scale, r *idealsim.Result) (float64, bool) {
				return r.EnergyPerUpdateJ, true
			}),
		hopStretchScenario("fig9", "Figure 9",
			"Figure 9: hop stretch at the near tracked distance",
			"Average hops traveled by a broadcast to reach nodes HopNear (paper: 20) BFS hops from the source.", 9,
			func(s Scale) int { return s.HopNear }),
		hopStretchScenario("fig10", "Figure 10",
			"Figure 10: hop stretch at the far tracked distance",
			"The Figure 9 metric at HopFar (paper: 60) hops, where detours accumulate.", 10,
			func(s Scale) int { return s.HopFar }),
		idealQSweep("fig11", "Figure 11",
			"Figure 11: average per-hop update latency",
			"Latency divided by tree hops, averaged over every (update, node) pair, versus q (Equation 9's simulated counterpart).",
			"average per-hop update latency (s)", 11, nil,
			func(_ Scale, r *idealsim.Result) (float64, bool) {
				if r.PerHopLatency.N() == 0 {
					return 0, false
				}
				return r.PerHopLatency.Mean(), true
			}),
		fig12Scenario(),
	}
}

// fig12Scenario regenerates Figure 12: the energy–latency trade-off at 99%
// reliability. For each p, the minimum q that crosses the 99% reliability
// boundary is derived from the bond-percolation critical ratio of the grid
// (Remark 1 inverted); energy then follows Equation 8 (scaled to joules
// per update) and latency Equation 9 with L1 from Table 1 and L2 = Tframe.
// Analytic except for one Monte Carlo threshold estimate, so it runs as a
// whole-table scenario rather than a point sweep.
func fig12Scenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "fig12",
		Title:    "Figure 12: energy-latency trade-off for 99% reliability",
		Artifact: "Figure 12",
		Summary:  "The paper's headline curve: for each p, the cheapest q meeting 99% reliability, plotted as energy versus per-hop latency (Equations 8/9 at the percolation boundary).",
		Params: []scenario.ParamDoc{
			{Name: "p", Desc: "PBBF immediate-rebroadcast probability; sweeps the frontier"},
		},
		XLabel: "average per-hop update latency (s)",
		YLabel: "joules consumed per update sent at source",
		TableFn: func(s Scale) (*stats.Table, error) {
			g, err := topo.NewGrid(s.GridW, s.GridH)
			if err != nil {
				return nil, err
			}
			r := rng.New(pointSeed(s.Seed, 12))
			pc, err := percolation.CriticalBondRatio(g, g.Center(), 0.99, s.PercTrials, r)
			if err != nil {
				return nil, err
			}
			timing := core.Timing{Active: time.Second, Frame: 10 * time.Second}
			lat := core.Latencies{L1: 1500 * time.Millisecond, L2: timing.Frame}
			cfg := idealsim.Defaults(g, g.Center())
			tbl := &stats.Table{
				Title:  "Figure 12: energy-latency trade-off for 99% reliability",
				XLabel: "average per-hop update latency (s)",
				YLabel: "joules consumed per update sent at source",
			}
			series := tbl.AddSeries("PBBF @ 99% reliability boundary")
			period := 1 / cfg.Lambda // seconds between updates
			for _, p := range s.PSweepIdeal {
				q := core.MinQForEdgeProbability(p, pc.Mean)
				perHop := core.ExpectedPerHopLatency(core.Params{P: p, Q: q}, lat)
				avgW := cfg.Profile.IdleW*core.EnergyPBBF(timing, q) +
					cfg.Profile.SleepW*(1-core.EnergyPBBF(timing, q))
				series.Append(perHop.Seconds(), avgW*period)
			}
			return tbl, nil
		},
	}
}
