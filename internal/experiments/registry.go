package experiments

import (
	"sync"

	"pbbf/internal/scenario"
	"pbbf/internal/stats"
)

// table1Scenario renders the analysis parameters (Table 1) as a two-column
// table. Static by construction; included so every numbered artifact of
// the paper has a regenerator.
func table1Scenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "table1",
		Title:    "Table 1: analysis parameters",
		Artifact: "Table 1",
		Summary:  "The Section 4 analysis constants: grid size, Mica2 power levels, update rate, channel-access time, and the PSM schedule.",
		TableFn: func(Scale) (*stats.Table, error) {
			tbl := &stats.Table{
				Title:  "Table 1: analysis parameter values",
				XLabel: "row",
				YLabel: "see series names for units",
			}
			rows := []struct {
				name  string
				value float64
			}{
				{"N (nodes, 75x75 grid)", 5625},
				{"PTX (mW)", 81},
				{"PI (mW)", 30},
				{"PS (uW)", 3},
				{"lambda (packets/s)", 0.01},
				{"L1 (s)", 1.5},
				{"Tframe (s)", 10},
				{"Tactive (s)", 1},
			}
			for i, r := range rows {
				tbl.AddSeries(r.name).Append(float64(i), r.value)
			}
			return tbl, nil
		},
	}
}

// table2Scenario renders the code distribution parameters (Table 2).
func table2Scenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "table2",
		Title:    "Table 2: code distribution parameters",
		Artifact: "Table 2",
		Summary:  "The Section 5 workload constants: field size, density, packet sizes, bit rate, run length, and runs per point.",
		TableFn: func(Scale) (*stats.Table, error) {
			tbl := &stats.Table{
				Title:  "Table 2: code distribution parameter values",
				XLabel: "row",
				YLabel: "see series names for units",
			}
			rows := []struct {
				name  string
				value float64
			}{
				{"N (nodes)", 50},
				{"q (default)", 0.25},
				{"delta (density)", 10},
				{"total packet size (bytes)", 64},
				{"data packet payload (bytes)", 30},
				{"k (updates per packet)", 1},
				{"bitrate (kbps)", 19.2},
				{"run length (s)", 500},
				{"runs per point", 10},
			}
			for i, r := range rows {
				tbl.AddSeries(r.name).Append(float64(i), r.value)
			}
			return tbl, nil
		},
	}
}

var (
	registryOnce sync.Once
	registry     *scenario.Registry
)

// Registry returns the full scenario registry — every table and figure of
// the paper plus the ext* extension studies — built once, in presentation
// order. Registration panics on duplicate IDs or incomplete metadata, so a
// bad scenario definition fails every test run.
func Registry() *scenario.Registry {
	registryOnce.Do(func() {
		registry = scenario.NewRegistry()
		registry.MustRegister(table1Scenario())
		for _, sc := range section4Scenarios() {
			registry.MustRegister(sc)
		}
		registry.MustRegister(table2Scenario())
		for _, sc := range netScenarios() {
			registry.MustRegister(sc)
		}
		for _, sc := range extScenarios() {
			registry.MustRegister(sc)
		}
		for _, sc := range diversityScenarios() {
			registry.MustRegister(sc)
		}
		// extcompare and the lifetime families register last, newest at the
		// end: registration order is NDJSON output order, so appending keeps
		// every earlier golden line a stable prefix.
		for _, sc := range compareScenarios() {
			registry.MustRegister(sc)
		}
		for _, sc := range lifetimeScenarios() {
			registry.MustRegister(sc)
		}
	})
	return registry
}

// Experiment is the registry-facing view of one scenario, kept for callers
// (benchmarks, older tooling) written against the pre-engine API.
type Experiment struct {
	// ID is the short handle used by the CLI ("fig4", "table1", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Run regenerates the data at the given scale.
	Run func(Scale) (*stats.Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	scs := Registry().All()
	out := make([]Experiment, 0, len(scs))
	for _, sc := range scs {
		sc := sc
		out = append(out, Experiment{
			ID:    sc.ID,
			Title: sc.Title,
			Run:   func(s Scale) (*stats.Table, error) { return scenario.Run(sc, s) },
		})
	}
	return out
}

// ByID looks up an experiment (case- and space-insensitively).
func ByID(id string) (Experiment, error) {
	sc, err := Registry().ByID(id)
	if err != nil {
		return Experiment{}, err
	}
	return Experiment{
		ID:    sc.ID,
		Title: sc.Title,
		Run:   func(s Scale) (*stats.Table, error) { return scenario.Run(sc, s) },
	}, nil
}

// The named regenerators below are stable entry points for benchmarks and
// tests; each runs its registered scenario through the engine.

func Table1(s Scale) (*stats.Table, error) { return runByID("table1", s) }
func Table2(s Scale) (*stats.Table, error) { return runByID("table2", s) }
func Fig4(s Scale) (*stats.Table, error)   { return runByID("fig4", s) }
func Fig5(s Scale) (*stats.Table, error)   { return runByID("fig5", s) }
func Fig6(s Scale) (*stats.Table, error)   { return runByID("fig6", s) }
func Fig7(s Scale) (*stats.Table, error)   { return runByID("fig7", s) }
func Fig8(s Scale) (*stats.Table, error)   { return runByID("fig8", s) }
func Fig9(s Scale) (*stats.Table, error)   { return runByID("fig9", s) }
func Fig10(s Scale) (*stats.Table, error)  { return runByID("fig10", s) }
func Fig11(s Scale) (*stats.Table, error)  { return runByID("fig11", s) }
func Fig12(s Scale) (*stats.Table, error)  { return runByID("fig12", s) }
func Fig13(s Scale) (*stats.Table, error)  { return runByID("fig13", s) }
func Fig14(s Scale) (*stats.Table, error)  { return runByID("fig14", s) }
func Fig15(s Scale) (*stats.Table, error)  { return runByID("fig15", s) }
func Fig16(s Scale) (*stats.Table, error)  { return runByID("fig16", s) }
func Fig17(s Scale) (*stats.Table, error)  { return runByID("fig17", s) }
func Fig18(s Scale) (*stats.Table, error)  { return runByID("fig18", s) }

func ExtGossip(s Scale) (*stats.Table, error)   { return runByID("extgossip", s) }
func ExtK(s Scale) (*stats.Table, error)        { return runByID("extk", s) }
func ExtAdaptive(s Scale) (*stats.Table, error) { return runByID("extadaptive", s) }
func ExtLoss(s Scale) (*stats.Table, error)     { return runByID("extloss", s) }
func ExtTMAC(s Scale) (*stats.Table, error)     { return runByID("exttmac", s) }
func ExtWakeup(s Scale) (*stats.Table, error)   { return runByID("extwakeup", s) }

func ExtCluster(s Scale) (*stats.Table, error)  { return runByID("extcluster", s) }
func ExtCorridor(s Scale) (*stats.Table, error) { return runByID("extcorridor", s) }
func ExtLinkLoss(s Scale) (*stats.Table, error) { return runByID("extlinkloss", s) }
func ExtChurn(s Scale) (*stats.Table, error)    { return runByID("extchurn", s) }
func ExtHetero(s Scale) (*stats.Table, error)   { return runByID("exthetero", s) }

func ExtCompare(s Scale) (*stats.Table, error) { return runByID("extcompare", s) }

func ExtLifetime(s Scale) (*stats.Table, error) { return runByID("extlifetime", s) }
func ExtHarvest(s Scale) (*stats.Table, error)  { return runByID("extharvest", s) }
