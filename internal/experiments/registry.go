package experiments

import (
	"fmt"
	"sort"
	"strings"

	"pbbf/internal/stats"
)

// Experiment is one regenerable table or figure from the paper.
type Experiment struct {
	// ID is the short handle used by the CLI ("fig4", "table1", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Run regenerates the data at the given scale.
	Run func(Scale) (*stats.Table, error)
}

// Table1 renders the analysis parameters (Table 1) as a two-column table.
// Static by construction; included so every numbered artifact of the paper
// has a regenerator.
func Table1(Scale) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Table 1: analysis parameter values",
		XLabel: "row",
		YLabel: "see series names for units",
	}
	rows := []struct {
		name  string
		value float64
	}{
		{"N (nodes, 75x75 grid)", 5625},
		{"PTX (mW)", 81},
		{"PI (mW)", 30},
		{"PS (uW)", 3},
		{"lambda (packets/s)", 0.01},
		{"L1 (s)", 1.5},
		{"Tframe (s)", 10},
		{"Tactive (s)", 1},
	}
	for i, r := range rows {
		tbl.AddSeries(r.name).Append(float64(i), r.value)
	}
	return tbl, nil
}

// Table2 renders the code distribution parameters (Table 2).
func Table2(Scale) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Table 2: code distribution parameter values",
		XLabel: "row",
		YLabel: "see series names for units",
	}
	rows := []struct {
		name  string
		value float64
	}{
		{"N (nodes)", 50},
		{"q (default)", 0.25},
		{"delta (density)", 10},
		{"total packet size (bytes)", 64},
		{"data packet payload (bytes)", 30},
		{"k (updates per packet)", 1},
		{"bitrate (kbps)", 19.2},
		{"run length (s)", 500},
		{"runs per point", 10},
	}
	for i, r := range rows {
		tbl.AddSeries(r.name).Append(float64(i), r.value)
	}
	return tbl, nil
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: analysis parameters", Run: Table1},
		{ID: "fig4", Title: "Figure 4: threshold behavior, 90% reliability", Run: Fig4},
		{ID: "fig5", Title: "Figure 5: threshold behavior, 99% reliability", Run: Fig5},
		{ID: "fig6", Title: "Figure 6: critical bond ratio vs grid size", Run: Fig6},
		{ID: "fig7", Title: "Figure 7: p-q frontier per reliability level", Run: Fig7},
		{ID: "fig8", Title: "Figure 8: average energy consumption (ideal sim)", Run: Fig8},
		{ID: "fig9", Title: "Figure 9: hop stretch at the near tracked distance", Run: Fig9},
		{ID: "fig10", Title: "Figure 10: hop stretch at the far tracked distance", Run: Fig10},
		{ID: "fig11", Title: "Figure 11: average per-hop update latency", Run: Fig11},
		{ID: "fig12", Title: "Figure 12: energy-latency trade-off at 99% reliability", Run: Fig12},
		{ID: "table2", Title: "Table 2: code distribution parameters", Run: Table2},
		{ID: "fig13", Title: "Figure 13: average energy consumption (net sim)", Run: Fig13},
		{ID: "fig14", Title: "Figure 14: 2-hop average update latency", Run: Fig14},
		{ID: "fig15", Title: "Figure 15: 5-hop average update latency", Run: Fig15},
		{ID: "fig16", Title: "Figure 16: average updates received", Run: Fig16},
		{ID: "fig17", Title: "Figure 17: average update latency vs density", Run: Fig17},
		{ID: "fig18", Title: "Figure 18: average updates received vs density", Run: Fig18},
		{ID: "extgossip", Title: "Extension: gossip (site) vs PBBF (bond) percolation", Run: ExtGossip},
		{ID: "extk", Title: "Extension: update batching k under PBBF-0.5", Run: ExtK},
		{ID: "extadaptive", Title: "Extension: adaptive p/q controller under PHY loss", Run: ExtAdaptive},
		{ID: "extloss", Title: "Extension: Figure 16 under injected PHY loss", Run: ExtLoss},
		{ID: "exttmac", Title: "Extension: PBBF over a T-MAC-style adaptive schedule", Run: ExtTMAC},
	}
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, error) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(ids, ", "))
}
