package experiments

import (
	"fmt"

	"pbbf/internal/core"
	"pbbf/internal/mac"
	"pbbf/internal/netsim"
	"pbbf/internal/rng"
	"pbbf/internal/stats"
	"pbbf/internal/sweep"
	"pbbf/internal/topo"
)

// netProtocols returns the Section 5 protocol set: PBBF at each p of the
// net sweep plus the PSM and NO PSM baselines.
func netProtocols(s Scale) []core.Params {
	out := make([]core.Params, 0, len(s.PSweepNet)+2)
	for _, p := range s.PSweepNet {
		out = append(out, core.Params{P: p})
	}
	out = append(out, core.PSM(), core.AlwaysOn())
	return out
}

// netPoint aggregates NetRuns scenarios for (params, delta): each run
// draws a fresh connected random field and seed, mirroring the paper's
// "each data point is averaged over ten runs".
type netPoint struct {
	Energy       stats.Accumulator
	Received     stats.Accumulator
	Latency      stats.Accumulator
	LatencyAtHop map[int]*stats.Accumulator
	NodesAtHop   map[int]float64 // mean per scenario
}

// netOpts are extension hooks for runNetPoint; the zero value reproduces
// the paper's Table 2 settings.
type netOpts struct {
	k        int // updates per packet; 0 means 1
	lossRate float64
	adaptive *core.AdaptiveConfig
}

func runNetPoint(s Scale, params core.Params, delta float64, tag uint64, opts netOpts) (*netPoint, error) {
	if opts.k == 0 {
		opts.k = 1
	}
	point := &netPoint{
		LatencyAtHop: make(map[int]*stats.Accumulator, len(s.NetTrackHops)),
		NodesAtHop:   make(map[int]float64, len(s.NetTrackHops)),
	}
	for _, h := range s.NetTrackHops {
		point.LatencyAtHop[h] = &stats.Accumulator{}
	}
	for run := 0; run < s.NetRuns; run++ {
		seed := pointSeed(s.Seed, tag, fbits(params.P), fbits(params.Q), fbits(delta), uint64(run))
		r := rng.New(seed)
		diskCfg := topo.DiskConfig{
			N:     s.NetNodes,
			Range: 30,
			Area:  topo.AreaForDensity(s.NetNodes, 30, delta),
		}
		field, err := topo.NewConnectedRandomDisk(diskCfg, r, 500)
		if err != nil {
			return nil, fmt.Errorf("experiments: net point Δ=%v: %w", delta, err)
		}
		macCfg := mac.DefaultConfig(params)
		macCfg.Adaptive = opts.adaptive
		// The paper chooses one random node as source per scenario.
		source := topo.NodeID(r.Intn(field.N()))
		res, err := netsim.Run(netsim.Config{
			Topo:      field,
			Source:    source,
			MAC:       macCfg,
			Lambda:    0.01,
			Duration:  s.NetDuration,
			K:         opts.k,
			TrackHops: s.NetTrackHops,
			LossRate:  opts.lossRate,
			Seed:      seed,
		})
		if err != nil {
			return nil, err
		}
		point.Energy.Add(res.EnergyPerUpdateJ)
		point.Received.Add(res.UpdatesReceivedFraction)
		if res.Latency.N() > 0 {
			point.Latency.Add(res.Latency.Mean())
		}
		for _, h := range s.NetTrackHops {
			if acc := res.LatencyAtHop[h]; acc != nil && acc.N() > 0 {
				point.LatencyAtHop[h].Add(acc.Mean())
			}
			point.NodesAtHop[h] += float64(res.NodesAtHop[h]) / float64(s.NetRuns)
		}
	}
	return point, nil
}

// qSweepNet renders a Section 5 q-sweep figure at Δ=10 (Table 2). Points
// run on a bounded worker pool (each point derives its own seeds and
// topologies) and are assembled in sweep order.
func qSweepNet(s Scale, title, ylabel string, tag uint64,
	metric func(*netPoint) (float64, bool)) (*stats.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	protos := netProtocols(s)
	nQ := len(s.QSweep)
	points, err := sweep.Map(len(protos)*nQ, 0, func(i int) (*netPoint, error) {
		proto, q := protos[i/nQ], s.QSweep[i%nQ]
		params := proto
		if proto != core.PSM() && proto != core.AlwaysOn() {
			params.Q = q
		}
		return runNetPoint(s, params, 10, tag, netOpts{})
	})
	if err != nil {
		return nil, err
	}
	tbl := &stats.Table{Title: title, XLabel: "q", YLabel: ylabel}
	for pi, proto := range protos {
		series := tbl.AddSeries(proto.Label())
		for qi, q := range s.QSweep {
			if y, ok := metric(points[pi*nQ+qi]); ok {
				series.Append(q, y)
			}
		}
	}
	return tbl, nil
}

// deltaSweepNet renders a Section 5 density-sweep figure at q=0.25
// (Table 2).
func deltaSweepNet(s Scale, title, ylabel string, tag uint64,
	metric func(*netPoint) (float64, bool)) (*stats.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	protos := netProtocols(s)
	nD := len(s.DeltaSweep)
	points, err := sweep.Map(len(protos)*nD, 0, func(i int) (*netPoint, error) {
		proto, delta := protos[i/nD], s.DeltaSweep[i%nD]
		params := proto
		if proto != core.PSM() && proto != core.AlwaysOn() {
			params.Q = 0.25
		}
		return runNetPoint(s, params, delta, tag, netOpts{})
	})
	if err != nil {
		return nil, err
	}
	tbl := &stats.Table{Title: title, XLabel: "delta", YLabel: ylabel}
	for pi, proto := range protos {
		series := tbl.AddSeries(proto.Label())
		for di, delta := range s.DeltaSweep {
			if y, ok := metric(points[pi*nD+di]); ok {
				series.Append(delta, y)
			}
		}
	}
	return tbl, nil
}

// Fig13 regenerates Figure 13: per-update energy versus q under the
// realistic MAC.
func Fig13(s Scale) (*stats.Table, error) {
	return qSweepNet(s, "Figure 13: average energy consumption (ns-style sim)",
		"joules consumed per update sent at source", 13,
		func(p *netPoint) (float64, bool) { return p.Energy.Mean(), p.Energy.N() > 0 })
}

// Fig14 regenerates Figure 14: 2-hop average update latency versus q.
func Fig14(s Scale) (*stats.Table, error) {
	return qSweepNet(s, "Figure 14: 2-hop average update latency",
		"average 2-hop latency (s)", 14,
		func(p *netPoint) (float64, bool) {
			acc := p.LatencyAtHop[2]
			return acc.Mean(), acc.N() > 0
		})
}

// Fig15 regenerates Figure 15: 5-hop average update latency versus q.
func Fig15(s Scale) (*stats.Table, error) {
	return qSweepNet(s, "Figure 15: 5-hop average update latency",
		"average 5-hop latency (s)", 15,
		func(p *netPoint) (float64, bool) {
			acc := p.LatencyAtHop[5]
			return acc.Mean(), acc.N() > 0
		})
}

// Fig16 regenerates Figure 16: fraction of updates received versus q.
func Fig16(s Scale) (*stats.Table, error) {
	return qSweepNet(s, "Figure 16: average updates received",
		"updates received / total updates sent at source", 16,
		func(p *netPoint) (float64, bool) { return p.Received.Mean(), p.Received.N() > 0 })
}

// Fig17 regenerates Figure 17: average update latency versus density Δ.
func Fig17(s Scale) (*stats.Table, error) {
	return deltaSweepNet(s, "Figure 17: average update latency vs density",
		"average update latency (s)", 17,
		func(p *netPoint) (float64, bool) { return p.Latency.Mean(), p.Latency.N() > 0 })
}

// Fig18 regenerates Figure 18: fraction of updates received versus Δ.
func Fig18(s Scale) (*stats.Table, error) {
	return deltaSweepNet(s, "Figure 18: average updates received vs density",
		"updates received / total updates sent at source", 18,
		func(p *netPoint) (float64, bool) { return p.Received.Mean(), p.Received.N() > 0 })
}
