package experiments

import (
	"context"
	"fmt"

	"pbbf/internal/core"
	"pbbf/internal/mac"
	"pbbf/internal/netsim"
	"pbbf/internal/protocol"
	"pbbf/internal/rng"
	"pbbf/internal/scenario"
	"pbbf/internal/stats"
	"pbbf/internal/topo"
	"pbbf/internal/trace"
)

// netDocs documents the Section 5 sweep space: the pq protocol grid plus
// the field density.
var netDocs = []scenario.ParamDoc{
	{Name: "p", Desc: "PBBF immediate-rebroadcast probability (0 pins PSM, 1 pins NO PSM)"},
	{Name: "q", Desc: "PBBF stay-awake probability; swept or pinned at the Table 2 default 0.25"},
	{Name: "delta", Desc: "field density Δ (expected neighbors per node); Table 2 default 10"},
}

// netProtocols returns the Section 5 protocol set: PBBF at each p of the
// net sweep plus the PSM and NO PSM baselines.
func netProtocols(s Scale) []core.Params {
	out := make([]core.Params, 0, len(s.PSweepNet)+2)
	for _, p := range s.PSweepNet {
		out = append(out, core.Params{P: p})
	}
	out = append(out, core.PSM(), core.AlwaysOn())
	return out
}

// netPoint aggregates NetRuns scenarios for (params, delta): each run
// draws a fresh connected random field and seed, mirroring the paper's
// "each data point is averaged over ten runs".
type netPoint struct {
	Energy       stats.Accumulator
	Received     stats.Accumulator
	Latency      stats.Accumulator
	LatencyAtHop map[int]*stats.Accumulator
	NodesAtHop   map[int]float64 // mean per scenario

	// Network-lifetime accumulators, fed only on finite-energy runs
	// (per-run seconds / fractions / counts from netsim.Result).
	FirstDeath stats.Accumulator // time to first death, censored at horizon
	HalfDead   stats.Accumulator // time to half the nodes dead, censored
	AliveFrac  stats.Accumulator // alive-node fraction at the horizon
	Depleted   stats.Accumulator // battery-depletion death count
	EnergyVar  stats.Accumulator // per-node consumed-joules variance
}

// netOpts are extension hooks for runNetPoint; the zero value reproduces
// the paper's Table 2 settings.
type netOpts struct {
	k        int // updates per packet; 0 means 1
	adaptive *core.AdaptiveConfig

	// protocol pins the broadcast protocol for this scenario regardless of
	// the scale-wide selection (the extcompare family sweeps it per
	// series). Zero means: honor Scale.Protocol, except for adaptive runs,
	// which tune the PBBF coins and therefore always run PBBF.
	protocol protocol.Spec

	// Scenario-diversity knobs (see diversity.go). field replaces the
	// default connected uniform random disk; the option structs thread
	// straight into netsim.Config.
	field  fieldBuilder
	loss   netsim.LossOptions
	churn  netsim.ChurnOptions
	hetero mac.HeteroConfig

	// energy pins the finite-battery options for this scenario (the
	// lifetime/harvest families sweep them per point). Zero means: honor
	// the scale-wide Scale.EnergyJ/HarvestW axis.
	energy netsim.EnergyOptions
}

// fieldBuilder draws one deployment for a run. delta is the target density
// Δ; the builder must keep retrying until the placement is connected (or
// fail), mirroring NewConnectedRandomDisk. Builders construct through the
// worker's topology scratch sc, so the topology is valid only until the
// scratch's next build — runNetPoint consumes it before the next run draws.
type fieldBuilder func(s Scale, delta float64, r *rng.Source, sc *topo.Scratch) (topo.Topology, error)

// runNetPoint aggregates NetRuns simulations for one data point on the
// worker's pooled simulation state (ctx carries the pool cache; results are
// identical with or without it).
func runNetPoint(ctx context.Context, s Scale, params core.Params, delta float64, tag uint64, opts netOpts) (*netPoint, error) {
	if opts.k == 0 {
		opts.k = 1
	}
	// Resolve the protocol: a scenario pin wins, then the scale-wide
	// selection — except under adaptive control, which exists to tune the
	// PBBF coins and would reject any rival, so `-protocol X -experiment
	// all` still runs the adaptive family (as PBBF) instead of failing.
	proto := opts.protocol
	if proto.Name == "" && opts.adaptive == nil && s.Protocol != "" {
		var err error
		if proto, err = protocol.SpecFor(s.Protocol); err != nil {
			return nil, err
		}
	}
	// Resolve the energy axis the same way: a scenario pin wins, then the
	// scale-wide selection.
	energyOpts := opts.energy
	if !energyOpts.Enabled() && s.EnergyJ > 0 {
		energyOpts = netsim.EnergyOptions{InitialJ: s.EnergyJ, HarvestW: s.HarvestW}
	}
	pools, release := poolsFor(ctx)
	defer release()
	// A context-carried trace provider hands out one sink per run — the
	// `pbbf trace` subcommand and the bench overhead gate. No provider
	// (every sweep/serve path) leaves every Config.Trace nil.
	tracer := trace.ProviderFrom(ctx)
	point := &netPoint{
		LatencyAtHop: make(map[int]*stats.Accumulator, len(s.NetTrackHops)),
		NodesAtHop:   make(map[int]float64, len(s.NetTrackHops)),
	}
	for _, h := range s.NetTrackHops {
		point.LatencyAtHop[h] = &stats.Accumulator{}
	}
	for run := 0; run < s.NetRuns; run++ {
		seed := pointSeed(s.Seed, tag, fbits(params.P), fbits(params.Q), fbits(delta), uint64(run))
		r := rng.New(seed)
		var field topo.Topology
		var err error
		if opts.field != nil {
			field, err = opts.field(s, delta, r, pools.topo)
		} else {
			field, err = pools.topo.ConnectedRandomDisk(topo.DiskConfig{
				N:     s.NetNodes,
				Range: 30,
				Area:  topo.AreaForDensity(s.NetNodes, 30, delta),
			}, r, 500)
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: net point Δ=%v: %w", delta, err)
		}
		macCfg := mac.DefaultConfig(params)
		macCfg.Adaptive = opts.adaptive
		// The paper chooses one random node as source per scenario.
		source := topo.NodeID(r.Intn(field.N()))
		var sink trace.Sink
		if tracer != nil {
			sink = tracer.BeginRun(run)
		}
		res, err := pools.net.Run(netsim.Config{
			Topo:      field,
			Source:    source,
			MAC:       macCfg,
			Protocol:  proto,
			Lambda:    0.01,
			Duration:  s.NetDuration,
			K:         opts.k,
			TrackHops: s.NetTrackHops,
			Loss:      opts.loss,
			Churn:     opts.churn,
			Hetero:    opts.hetero,
			Energy:    energyOpts,
			Trace:     sink,
			Seed:      seed,
		})
		if err != nil {
			return nil, err
		}
		point.Energy.Add(res.EnergyPerUpdateJ)
		point.Received.Add(res.UpdatesReceivedFraction)
		if res.Latency.N() > 0 {
			point.Latency.Add(res.Latency.Mean())
		}
		for _, h := range s.NetTrackHops {
			if acc := res.LatencyAtHop[h]; acc != nil && acc.N() > 0 {
				point.LatencyAtHop[h].Add(acc.Mean())
			}
			point.NodesAtHop[h] += float64(res.NodesAtHop[h]) / float64(s.NetRuns)
		}
		if energyOpts.Enabled() {
			point.FirstDeath.Add(res.TimeToFirstDeathS)
			point.HalfDead.Add(res.TimeToHalfDeadS)
			point.AliveFrac.Add(res.CoverageOverTime[len(res.CoverageOverTime)-1])
			point.Depleted.Add(float64(res.NodesDepleted))
			point.EnergyVar.Add(res.EnergyVarianceJ2)
		}
	}
	return point, nil
}

// netResult shapes one aggregated net point into the engine's common
// result: the figure's y value plus the standard metric triple.
func netResult(point *netPoint, y float64, ok bool) scenario.Result {
	out := scenario.Result{
		Y:        y,
		Skip:     !ok,
		EnergyJ:  point.Energy.Mean(),
		Delivery: point.Received.Mean(),
	}
	if point.Latency.N() > 0 {
		out.LatencyS = point.Latency.Mean()
	}
	if point.FirstDeath.N() > 0 {
		out.FirstDeathS = point.FirstDeath.Mean()
		out.HalfDeadS = point.HalfDead.Mean()
		out.AliveFrac = point.AliveFrac.Mean()
		out.Depleted = point.Depleted.Mean()
		out.EnergyVarJ2 = point.EnergyVar.Mean()
	}
	return out
}

// netQSweep builds a Section 5 q-sweep scenario at Δ=10 (Table 2): one
// aggregated netPoint per (protocol, q), parallelized by the engine.
func netQSweep(id, artifact, title, summary, ylabel string, tag uint64,
	metric func(*netPoint) (float64, bool)) scenario.Scenario {
	return scenario.Scenario{
		ID:       id,
		Title:    title,
		Artifact: artifact,
		Summary:  summary,
		Params:   netDocs,
		XLabel:   "q",
		YLabel:   ylabel,
		Points: func(s Scale) ([]scenario.Point, error) {
			pts := protocolQPoints(netProtocols(s), s.QSweep)
			for i := range pts {
				pts[i].Params["delta"] = 10
			}
			return pts, nil
		},
		RunPointCtx: func(ctx context.Context, s Scale, pt scenario.Point) (scenario.Result, error) {
			params := core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
			point, err := runNetPoint(ctx, s, params, pt.Params["delta"], tag, netOpts{})
			if err != nil {
				return scenario.Result{}, err
			}
			y, ok := metric(point)
			return netResult(point, y, ok), nil
		},
	}
}

// netDeltaSweep builds a Section 5 density-sweep scenario at q=0.25
// (Table 2).
func netDeltaSweep(id, artifact, title, summary, ylabel string, tag uint64,
	metric func(*netPoint) (float64, bool)) scenario.Scenario {
	return scenario.Scenario{
		ID:       id,
		Title:    title,
		Artifact: artifact,
		Summary:  summary,
		Params:   netDocs,
		XLabel:   "delta",
		YLabel:   ylabel,
		Points: func(s Scale) ([]scenario.Point, error) {
			protos := netProtocols(s)
			pts := make([]scenario.Point, 0, len(protos)*len(s.DeltaSweep))
			for _, proto := range protos {
				params := proto
				if proto != core.PSM() && proto != core.AlwaysOn() {
					params.Q = 0.25
				}
				for _, delta := range s.DeltaSweep {
					pts = append(pts, scenario.Point{
						Series: proto.Label(),
						X:      delta,
						Params: map[string]float64{"p": params.P, "q": params.Q, "delta": delta},
					})
				}
			}
			return pts, nil
		},
		RunPointCtx: func(ctx context.Context, s Scale, pt scenario.Point) (scenario.Result, error) {
			params := core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
			point, err := runNetPoint(ctx, s, params, pt.Params["delta"], tag, netOpts{})
			if err != nil {
				return scenario.Result{}, err
			}
			y, ok := metric(point)
			return netResult(point, y, ok), nil
		},
	}
}

// netScenarios returns the Section 5 simulator scenarios in presentation
// order (Figures 13–18).
func netScenarios() []scenario.Scenario {
	return []scenario.Scenario{
		netQSweep("fig13", "Figure 13",
			"Figure 13: average energy consumption (ns-style sim)",
			"Figure 8's energy sweep under the realistic MAC: collisions and ATIM traffic shift the curves but preserve the PSM…NO PSM bracketing.",
			"joules consumed per update sent at source", 13,
			func(p *netPoint) (float64, bool) { return p.Energy.Mean(), p.Energy.N() > 0 }),
		netQSweep("fig14", "Figure 14",
			"Figure 14: 2-hop average update latency",
			"Mean update latency at nodes two BFS hops from the source versus q; falls steeply once immediate rebroadcasts start landing.",
			"average 2-hop latency (s)", 14,
			func(p *netPoint) (float64, bool) {
				acc := p.LatencyAtHop[2]
				return acc.Mean(), acc.N() > 0
			}),
		netQSweep("fig15", "Figure 15",
			"Figure 15: 5-hop average update latency",
			"The Figure 14 metric at five hops, where latency differences compound per hop.",
			"average 5-hop latency (s)", 15,
			func(p *netPoint) (float64, bool) {
				acc := p.LatencyAtHop[5]
				return acc.Mean(), acc.N() > 0
			}),
		netQSweep("fig16", "Figure 16",
			"Figure 16: average updates received",
			"Delivered fraction of generated updates versus q under the realistic MAC — reliability including collisions and sleep misses.",
			"updates received / total updates sent at source", 16,
			func(p *netPoint) (float64, bool) { return p.Received.Mean(), p.Received.N() > 0 }),
		netDeltaSweep("fig17", "Figure 17",
			"Figure 17: average update latency vs density",
			"Update latency versus field density Δ at q=0.25: denser fields offer more awake forwarders, cutting latency.",
			"average update latency (s)", 17,
			func(p *netPoint) (float64, bool) { return p.Latency.Mean(), p.Latency.N() > 0 }),
		netDeltaSweep("fig18", "Figure 18",
			"Figure 18: average updates received vs density",
			"Delivered fraction versus density Δ at q=0.25 — the reliability counterpart of Figure 17.",
			"updates received / total updates sent at source", 18,
			func(p *netPoint) (float64, bool) { return p.Received.Mean(), p.Received.N() > 0 }),
	}
}
