package experiments

import (
	"context"

	"pbbf/internal/core"
	"pbbf/internal/netsim"
	"pbbf/internal/scenario"
)

// The network-lifetime families. The paper's energy metric is joules per
// update on immortal nodes; these scenarios give every node a finite
// battery (with per-node jitter, so the fleet does not die in lockstep)
// and measure when the network starts to die instead of how much it
// spends. extlifetime sweeps the battery budget itself; extharvest holds
// the budget fixed and sweeps a constant recharge rate across the regime
// from pure drain to energy-neutral duty cycling. Both run through
// runNetPoint and the unchanged engine, so they compose with `pbbf sweep`
// (parallel, -checkpoint, -distribute), `pbbf serve` caching, `pbbf
// bench`, and `pbbf trace` with no special cases.

// lifetimeJitter is the per-node initial-energy jitter fraction shared by
// both families: capacities draw uniform in mean·(1±0.2), enough to
// stagger deaths without moving the mean.
const lifetimeJitter = 0.2

// extLifetimeScenario sweeps the mean initial battery capacity and plots
// the time until the first node dies of depletion. The ordering the paper
// proves for energy *rate* (PSM cheapest, NO PSM dearest) reappears as a
// lifetime ordering — but compressed or stretched by how evenly each
// protocol spreads its spending across the fleet.
func extLifetimeScenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "extlifetime",
		Title:    "Extension: finite batteries (network lifetime vs initial energy)",
		Artifact: "extension",
		Summary:  "Relaxes the infinite-battery assumption: every node starts with a finite jittered energy budget and dies fail-stop at depletion, and the sweep traces time-to-first-death against the mean initial capacity for the paper's protocol bracket.",
		Params: divProtocolDocs(
			scenario.ParamDoc{Name: "energy_j", Desc: "mean initial battery capacity in joules; per-node capacities draw uniform in mean·(1±0.2)"},
		),
		XLabel: "mean initial energy per node (J)",
		YLabel: "time to first depletion death (s, censored at horizon)",
		Points: func(s Scale) ([]scenario.Point, error) {
			return divPoints("energy_j", []float64{0.5, 1, 2, 4}), nil
		},
		RunPointCtx: func(ctx context.Context, s Scale, pt scenario.Point) (scenario.Result, error) {
			params := core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
			point, err := runNetPoint(ctx, s, params, 10, 115, netOpts{
				energy: netsim.EnergyOptions{
					InitialJ:   pt.Params["energy_j"],
					JitterFrac: lifetimeJitter,
				},
			})
			if err != nil {
				return scenario.Result{}, err
			}
			return netResult(point, point.FirstDeath.Mean(), point.FirstDeath.N() > 0), nil
		},
	}
}

// harvestEnergyJ is the fixed mean battery capacity of the harvest sweep:
// small enough that AlwaysOn drains it well inside the quick horizon, so
// the harvest axis visibly separates the protocols.
const harvestEnergyJ = 1

// extHarvestScenario holds the battery at 1 J and sweeps a constant
// per-node harvest rate (solar/vibration scavenging, idealized to a
// constant wattage, credited continuously and clamped at capacity). The
// interesting landmark is each protocol's mean draw: harvest below it
// only delays depletion, harvest above it makes the protocol immortal —
// so the same sweep strands NO PSM while PSM crosses into energy
// neutrality almost immediately.
func extHarvestScenario() scenario.Scenario {
	return scenario.Scenario{
		ID:       "extharvest",
		Title:    "Extension: energy harvesting (network lifetime vs harvest rate)",
		Artifact: "extension",
		Summary:  "Adds idealized constant-rate energy harvesting to 1 J finite batteries: recharge is credited continuously and clamped at capacity, and the sweep traces time-to-half-dead as the harvest rate crosses each protocol's mean power draw.",
		Params: divProtocolDocs(
			scenario.ParamDoc{Name: "energy_j", Desc: "mean initial battery capacity in joules (fixed at 1; jittered per node by ±0.2)"},
			scenario.ParamDoc{Name: "harvest_w", Desc: "constant per-node harvest rate in watts, credited continuously and clamped at capacity"},
		),
		XLabel: "harvest rate per node (W)",
		YLabel: "time to half the nodes dead (s, censored at horizon)",
		Points: func(s Scale) ([]scenario.Point, error) {
			pts := divPoints("harvest_w", []float64{0, 0.002, 0.005, 0.015})
			for i := range pts {
				pts[i].Params["energy_j"] = harvestEnergyJ
			}
			return pts, nil
		},
		RunPointCtx: func(ctx context.Context, s Scale, pt scenario.Point) (scenario.Result, error) {
			params := core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
			point, err := runNetPoint(ctx, s, params, 10, 116, netOpts{
				energy: netsim.EnergyOptions{
					InitialJ:   pt.Params["energy_j"],
					JitterFrac: lifetimeJitter,
					HarvestW:   pt.Params["harvest_w"],
				},
			})
			if err != nil {
				return scenario.Result{}, err
			}
			return netResult(point, point.HalfDead.Mean(), point.HalfDead.N() > 0), nil
		},
	}
}

// lifetimeScenarios returns the network-lifetime families in presentation
// order.
func lifetimeScenarios() []scenario.Scenario {
	return []scenario.Scenario{
		extLifetimeScenario(),
		extHarvestScenario(),
	}
}
