package experiments

import (
	"context"
	"fmt"

	"pbbf/internal/core"
	"pbbf/internal/protocol"
	"pbbf/internal/scenario"
)

// extCompareScenario races the three broadcast protocols of
// internal/protocol in one arena: identical random fields, identical
// sources, identical update workloads — only the forwarding logic differs.
// Each protocol traces its own energy-latency frontier by sweeping its
// native energy dial over four operating points, from most energy-saving
// (op 0) to most latency-saving (op 3):
//
//   - PBBF holds p=0.25 and sweeps the stay-awake coin q ∈ {0, 0.25, 0.5, 1}
//     (the paper's Figure 13/14 axis);
//   - sleepsched sweeps the wake period W ∈ {8, 4, 2, 1} — duty cycle 1/W,
//     flood latency O(W) intervals per hop;
//   - OLA is always-on and sweeps the relay threshold τ ∈ {1.25, 1.5, 2,
//     10}: a higher τ means more boundary nodes relay, trading transmit
//     energy for faster energy accumulation downstream.
//
// Runs are paired: point seeding ignores the protocol, so op i of every
// series simulates the same deployments and the frontiers differ only by
// protocol behavior. The scale-wide -protocol selection is ignored here —
// the scenario's whole point is to run all three.
func extCompareScenario() scenario.Scenario {
	const (
		protoPBBF       = 0
		protoSleepSched = 1
		protoOLA        = 2
	)
	const ops = 4
	series := []struct {
		name  string
		proto float64
		knob  string
		vals  [ops]float64
	}{
		{"PBBF (p=0.25, q swept)", protoPBBF, "q", [ops]float64{0, 0.25, 0.5, 1}},
		{"sleepsched (W swept)", protoSleepSched, "wake_period", [ops]float64{8, 4, 2, 1}},
		{"OLA (relay threshold swept)", protoOLA, "relay_threshold", [ops]float64{1.25, 1.5, 2, 10}},
	}
	return scenario.Scenario{
		ID:       "extcompare",
		Title:    "Extension: rival broadcast protocols in one arena (energy vs operating point)",
		Artifact: "extension",
		Summary:  "PBBF, King-style sleep-scheduled flooding, and OLA cooperative accumulation race on identical seeded fields; each sweeps its native energy dial over four operating points, tracing comparable energy-latency frontiers.",
		Params: []scenario.ParamDoc{
			{Name: "proto", Desc: "protocol under test: 0 = PBBF, 1 = sleepsched, 2 = OLA"},
			{Name: "op", Desc: "operating point index, 0 (most energy-saving) to 3 (most latency-saving)"},
			{Name: "p", Desc: "PBBF immediate-rebroadcast probability, fixed at 0.25 (PBBF series only)"},
			{Name: "q", Desc: "PBBF stay-awake probability, the PBBF series' energy dial"},
			{Name: "wake_period", Desc: "sleepsched wake period W (duty cycle 1/W), the sleepsched series' energy dial"},
			{Name: "relay_threshold", Desc: "OLA relay threshold τ (relay while accumulated gain < τ), the OLA series' energy dial"},
		},
		Protocols: protocol.Names(),
		XLabel:    "operating point (0 = most energy-saving)",
		YLabel:    "joules consumed per update sent at source",
		Points: func(s Scale) ([]scenario.Point, error) {
			pts := make([]scenario.Point, 0, len(series)*ops)
			for _, ser := range series {
				for op := 0; op < ops; op++ {
					params := map[string]float64{
						"proto":  ser.proto,
						"op":     float64(op),
						ser.knob: ser.vals[op],
					}
					if ser.proto == protoPBBF {
						params["p"] = 0.25
					}
					pts = append(pts, scenario.Point{Series: ser.name, X: float64(op), Params: params})
				}
			}
			return pts, nil
		},
		RunPointCtx: func(ctx context.Context, s Scale, pt scenario.Point) (scenario.Result, error) {
			var params core.Params
			var opts netOpts
			switch pt.Params["proto"] {
			case protoPBBF:
				params = core.Params{P: pt.Params["p"], Q: pt.Params["q"]}
				opts.protocol = protocol.Spec{Name: protocol.NamePBBF}
			case protoSleepSched:
				opts.protocol = protocol.Spec{
					Name:       protocol.NameSleepSched,
					WakePeriod: int(pt.Params["wake_period"]),
				}
			case protoOLA:
				opts.protocol = protocol.Spec{
					Name:           protocol.NameOLA,
					RelayThreshold: pt.Params["relay_threshold"],
				}
			default:
				return scenario.Result{}, fmt.Errorf("extcompare: unknown proto code %v", pt.Params["proto"])
			}
			point, err := runNetPoint(ctx, s, params, 10, 114, opts)
			if err != nil {
				return scenario.Result{}, err
			}
			return netResult(point, point.Energy.Mean(), point.Energy.N() > 0), nil
		},
	}
}

// compareScenarios returns the cross-protocol comparison family in
// presentation order.
func compareScenarios() []scenario.Scenario {
	return []scenario.Scenario{extCompareScenario()}
}
