// Package experiments maps every table and figure of the paper's
// evaluation — plus the ext* extension studies — to a scenario registered
// in the unified scenario engine (internal/scenario). Each scenario
// regenerates a stats.Table whose series mirror the lines of the original
// plot; the CLI (cmd/pbbf) and the benchmark harness (bench_test.go) are
// thin wrappers around the registry this package builds.
//
// Scenarios run at a configurable scenario.Scale: PaperScale reproduces
// the paper's dimensions (75×75 grids, 10 runs per point); QuickScale
// shrinks everything so the full suite finishes in seconds for CI and
// benchmarks. Shapes — thresholds, orderings, crossovers — are preserved
// at both scales; see docs/EXPERIMENTS.md for the recorded outcomes.
package experiments

import (
	"pbbf/internal/scenario"
	"pbbf/internal/stats"
)

// Scale aliases scenario.Scale so existing callers (benchmarks, tests)
// keep their spelling; new code can use either name.
type Scale = scenario.Scale

// PaperScale returns the paper's dimensions (scenario.Paper).
func PaperScale() Scale { return scenario.Paper() }

// QuickScale returns the CI-sized dimensions (scenario.Quick).
func QuickScale() Scale { return scenario.Quick() }

// sweepRange, pointSeed, and fbits forward to the scenario engine's
// shared helpers; the scenario definitions below use them constantly.
func sweepRange(from, to, step float64) []float64 { return scenario.SweepRange(from, to, step) }

func pointSeed(base uint64, parts ...uint64) uint64 { return scenario.PointSeed(base, parts...) }

func fbits(f float64) uint64 { return scenario.FloatBits(f) }

// runByID runs one registered scenario through the engine — the shared
// implementation behind the exported Fig*/Table*/Ext* functions.
func runByID(id string, s Scale) (*stats.Table, error) {
	sc, err := Registry().ByID(id)
	if err != nil {
		return nil, err
	}
	return scenario.Run(sc, s)
}
