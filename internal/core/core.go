// Package core implements the paper's primary contribution: PBBF
// (Probability-Based Broadcast Forwarding), a MAC-layer probabilistic
// broadcast scheme that can be integrated into any sleep scheduling
// protocol (Section 3), together with the closed-form analysis of its
// energy, latency, and reliability (Section 4, Equations 3–12).
//
// PBBF adds two parameters to a sleep-scheduling MAC:
//
//   - p: the probability that a node rebroadcasts a received broadcast
//     immediately, without waiting for the next ATIM window that would
//     guarantee all neighbors are awake.
//   - q: the probability that a node stays awake through a sleep period it
//     would otherwise sleep through, in the hope of catching an immediate
//     rebroadcast.
//
// The original sleep-scheduling protocol is PBBF with p=0, q=0; always-on
// operation is approximated by p=1, q=1.
package core

import (
	"fmt"
	"math"
	"time"

	"pbbf/internal/rng"
)

// Params are the two PBBF knobs.
type Params struct {
	// P is the immediate-rebroadcast probability.
	P float64
	// Q is the stay-awake probability.
	Q float64
}

// PSM returns the parameters reducing PBBF to the unmodified sleep
// scheduling protocol (p=0, q=0).
func PSM() Params { return Params{P: 0, Q: 0} }

// AlwaysOn returns the parameters approximating a protocol with no
// power-save mode (p=1, q=1). Per Section 3, this still differs from true
// always-on by the beacon/ATIM overhead of the underlying protocol.
func AlwaysOn() Params { return Params{P: 1, Q: 1} }

// Validate checks that both probabilities lie in [0, 1].
func (pr Params) Validate() error {
	if pr.P < 0 || pr.P > 1 || math.IsNaN(pr.P) {
		return fmt.Errorf("core: p=%v outside [0,1]", pr.P)
	}
	if pr.Q < 0 || pr.Q > 1 || math.IsNaN(pr.Q) {
		return fmt.Errorf("core: q=%v outside [0,1]", pr.Q)
	}
	return nil
}

// Label renders the conventional series name used in the paper's figures:
// "PSM" for (0,0), "NO PSM" for (1,1), else "PBBF-<p>".
func (pr Params) Label() string {
	switch {
	case pr.P == 0 && pr.Q == 0:
		return "PSM"
	case pr.P == 1 && pr.Q == 1:
		return "NO PSM"
	default:
		return fmt.Sprintf("PBBF-%v", pr.P)
	}
}

// ForwardImmediately implements the Receive-Broadcast coin of Figure 3: on
// packet reception, with probability p the packet is rebroadcast in the
// current active time; otherwise it is queued for the next ATIM window.
func (pr Params) ForwardImmediately(r *rng.Source) bool {
	return r.Bool(pr.P)
}

// StayAwake implements the probabilistic branch of Sleep-Decision-Handler
// in Figure 3: with probability q the node remains on through a sleep
// period despite having no announced traffic.
func (pr Params) StayAwake(r *rng.Source) bool {
	return r.Bool(pr.Q)
}

// SleepDecision implements the full Sleep-Decision-Handler of Figure 3,
// called at the end of each active time: a node stays on if it has data to
// send or receive, and otherwise stays on with probability q.
func (pr Params) SleepDecision(dataToSend, dataToRecv bool, r *rng.Source) bool {
	if dataToSend || dataToRecv {
		return true
	}
	return pr.StayAwake(r)
}

// EdgeProbability returns pedge = 1 − p·(1 − q), the probability that a
// given directed link delivers a broadcast copy (Remark 1). The first term
// of the underlying sum, p·q, is an immediate broadcast caught by an awake
// neighbor; the second, 1−p, is a normal broadcast that all neighbors wake
// for.
func EdgeProbability(p, q float64) float64 {
	return 1 - p*(1-q)
}

// MinQForEdgeProbability inverts EdgeProbability: the smallest q such that
// 1 − p·(1−q) ≥ pedge, clamped to [0, 1]. For p ≤ 1−pedge any q works
// (returns 0); for p = 0 the edge probability is 1 regardless of q.
func MinQForEdgeProbability(p, pedge float64) float64 {
	if p <= 0 {
		return 0
	}
	q := 1 - (1-pedge)/p
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// Timing captures the sleep-schedule geometry of the underlying protocol.
type Timing struct {
	// Active is Tactive, the awake portion of each frame (the ATIM window
	// in 802.11 PSM terms).
	Active time.Duration
	// Frame is Tframe = Tactive + Tsleep, the full beacon interval.
	Frame time.Duration
}

// Validate checks 0 < Active <= Frame.
func (t Timing) Validate() error {
	if t.Active <= 0 {
		return fmt.Errorf("core: Tactive %v must be positive", t.Active)
	}
	if t.Frame < t.Active {
		return fmt.Errorf("core: Tframe %v < Tactive %v", t.Frame, t.Active)
	}
	return nil
}

// Sleep returns Tsleep = Tframe − Tactive.
func (t Timing) Sleep() time.Duration { return t.Frame - t.Active }

// EnergyOriginal is Equation 3: the relative energy consumption of the
// unmodified sleep-scheduling protocol versus an always-on protocol,
// Tactive/Tframe.
func EnergyOriginal(t Timing) float64 {
	return t.Active.Seconds() / t.Frame.Seconds()
}

// ActiveTimePBBF is Equation 5: expected awake time per frame under PBBF,
// Tactive + q·Tsleep.
func ActiveTimePBBF(t Timing, q float64) time.Duration {
	return t.Active + time.Duration(q*float64(t.Sleep()))
}

// SleepTimePBBF is Equation 6: expected sleep time per frame under PBBF,
// (1−q)·Tsleep.
func SleepTimePBBF(t Timing, q float64) time.Duration {
	return time.Duration((1 - q) * float64(t.Sleep()))
}

// EnergyPBBF is Equation 7: relative energy consumption of PBBF,
// (Tactive + q·Tsleep)/Tframe. It does not depend on p.
func EnergyPBBF(t Timing, q float64) float64 {
	return ActiveTimePBBF(t, q).Seconds() / t.Frame.Seconds()
}

// EnergyIncreaseFactor is Equation 8: EPBBF/Eoriginal = 1 + q·Tsleep/Tactive.
func EnergyIncreaseFactor(t Timing, q float64) float64 {
	return 1 + q*t.Sleep().Seconds()/t.Active.Seconds()
}

// Latencies carries the two per-hop latency constituents of Equation 9.
type Latencies struct {
	// L1 is the channel-access time for an immediate data transmission
	// (Table 1 uses ≈1.5 s, an empirical value from the simulations).
	L1 time.Duration
	// L2 is the additional delay of a normal broadcast — the time to wake
	// all neighbors, i.e. waiting for the next beacon interval.
	L2 time.Duration
}

// ExpectedPerHopLatency is Equation 9: the expected time between a node
// sending a broadcast and a given neighbor receiving it, conditioned on
// successful delivery over that link:
//
//	L = L1 + L2·(1−p)/(1−p+p·q)
//
// For p=1, q=0 the link never delivers (denominator 0); the function
// returns L1 in that degenerate case, matching the limit of immediate-only
// delivery.
func ExpectedPerHopLatency(pr Params, l Latencies) time.Duration {
	denom := 1 - pr.P + pr.P*pr.Q
	if denom <= 0 {
		return l.L1
	}
	return l.L1 + time.Duration(float64(l.L2)*(1-pr.P)/denom)
}

// LatencyToNode is Equation 10: source-to-node latency as per-hop latency
// times the dissemination path length.
func LatencyToNode(perHop time.Duration, pathHops float64) time.Duration {
	return time.Duration(float64(perHop) * pathHops)
}

// LatencyUpperBoundHops is the loop-erased-random-walk exponent bound used
// in Equation 11: on the uniform spanning tree built by a flood, the path
// to a node at shortest distance d has expected length at most d^(5/4+o(1)).
func LatencyUpperBoundHops(d float64) float64 {
	return math.Pow(d, 1.25)
}

// EnergyForLatency is Equation 12: the direct energy–latency relation at
// fixed p, obtained by eliminating q between Equations 8 and 9:
//
//	EPBBF = (1 + (L2+L1−L)/(L−L1) · (1−p)/p · Tsleep/Tactive) · Eoriginal
//
// Note: the paper prints this with a minus sign, which contradicts
// Equations 8 and 9 (substituting q from Eq. 9 into Eq. 8 yields the plus
// form, and only the plus form reproduces Eq. 8 numerically). We implement
// the corrected formula; see EXPERIMENTS.md.
//
// L must exceed L1 (some normal-broadcast delay remains) and p must be in
// (0, 1]; otherwise an error is returned.
func EnergyForLatency(l Latencies, t Timing, p float64, perHop time.Duration) (float64, error) {
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("core: p=%v outside (0,1]", p)
	}
	if perHop <= l.L1 {
		return 0, fmt.Errorf("core: latency %v must exceed L1 %v", perHop, l.L1)
	}
	lf := perHop.Seconds()
	l1 := l.L1.Seconds()
	l2 := l.L2.Seconds()
	factor := 1 + (l2+l1-lf)/(lf-l1)*((1-p)/p)*(t.Sleep().Seconds()/t.Active.Seconds())
	return factor * EnergyOriginal(t), nil
}

// QForLatency inverts Equation 9: the q achieving a target expected per-hop
// latency at fixed p. Returns an error when the target is unreachable
// (below L1, or above the p-determined maximum).
func QForLatency(l Latencies, p float64, perHop time.Duration) (float64, error) {
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("core: p=%v outside (0,1]", p)
	}
	if perHop < l.L1 {
		return 0, fmt.Errorf("core: latency %v below L1 %v", perHop, l.L1)
	}
	// L = L1 + L2(1-p)/(1-p+pq)  =>  1-p+pq = L2(1-p)/(L-L1)
	excess := (perHop - l.L1).Seconds()
	if excess == 0 {
		// L = L1 exactly requires the normal-broadcast term to vanish,
		// which only happens at p=1.
		if p == 1 {
			return 0, nil
		}
		return 0, fmt.Errorf("core: latency L1 reachable only with p=1")
	}
	q := (l.L2.Seconds()*(1-p)/excess - (1 - p)) / p
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("core: required q=%v outside [0,1]", q)
	}
	return q, nil
}
