package core

import "fmt"

// PacketKey identifies a broadcast payload for duplicate suppression.
// The paper's protocols drop duplicate broadcast packets, so each broadcast
// traverses a link at most once and the dissemination forms a spanning tree.
type PacketKey struct {
	// Origin is the node that created the broadcast.
	Origin int
	// Seq is the origin-local sequence number.
	Seq uint64
}

// DuplicateFilter remembers which broadcasts a node has already handled.
// Origins assign sequence numbers densely from zero, so the filter keeps
// one growable bitset per origin: the duplicate check on the reception hot
// path is an array bit test instead of a map probe, and the single-origin
// common case (one broadcast source per scenario) skips the origin lookup
// through a one-entry cache.
//
// The zero value is not usable; construct with NewDuplicateFilter.
type DuplicateFilter struct {
	byOrigin map[int]*seqBits
	// cache of the most recently used origin's bitset.
	lastOrigin int
	last       *seqBits
	count      int
}

// maxSeq bounds the sequence numbers the filter accepts (1<<26 bits = 8 MB
// of bitset per origin). Origins assign seqs densely from zero, so hitting
// the bound means a caller broke the dense-seq invariant — e.g. used a hash
// or timestamp as Seq — and the filter fails loudly instead of growing
// toward OOM.
const maxSeq = 1 << 26

// seqBits is a growable bitset over sequence numbers.
type seqBits struct {
	words []uint64
}

func (b *seqBits) has(seq uint64) bool {
	w := seq / 64
	return w < uint64(len(b.words)) && b.words[w]&(1<<(seq%64)) != 0
}

func (b *seqBits) set(seq uint64) {
	if seq >= maxSeq {
		panic(fmt.Sprintf("core: DuplicateFilter sequence %d breaks the dense-seq invariant (max %d)", seq, maxSeq-1))
	}
	w := seq / 64
	if need := int(w) + 1; need > len(b.words) {
		b.words = append(b.words, make([]uint64, need-len(b.words))...)
	}
	b.words[w] |= 1 << (seq % 64)
}

// NewDuplicateFilter returns an empty filter.
func NewDuplicateFilter() *DuplicateFilter {
	return &DuplicateFilter{byOrigin: make(map[int]*seqBits)}
}

// bits returns the origin's bitset, creating it if asked.
func (f *DuplicateFilter) bits(origin int, create bool) *seqBits {
	if f.last != nil && f.lastOrigin == origin {
		return f.last
	}
	b := f.byOrigin[origin]
	if b == nil && create {
		b = &seqBits{}
		f.byOrigin[origin] = b
	}
	if b != nil {
		f.lastOrigin, f.last = origin, b
	}
	return b
}

// Seen reports whether key was already marked.
func (f *DuplicateFilter) Seen(key PacketKey) bool {
	b := f.bits(key.Origin, false)
	return b != nil && b.has(key.Seq)
}

// MarkSeen records key and reports whether it was new (true = first sight).
func (f *DuplicateFilter) MarkSeen(key PacketKey) bool {
	b := f.bits(key.Origin, true)
	if b.has(key.Seq) {
		return false
	}
	b.set(key.Seq)
	f.count++
	return true
}

// Len returns the number of distinct broadcasts recorded.
func (f *DuplicateFilter) Len() int { return f.count }

// Reset clears the filter for reuse across simulation runs. Per-origin
// bitsets are zeroed but kept: a pooled filter that sees the same origins
// again (each netsim run has one broadcast source) marks them with no
// allocation, where dropping the map entries would rebuild a bitset per
// origin per run.
func (f *DuplicateFilter) Reset() {
	for _, b := range f.byOrigin {
		clear(b.words)
	}
	f.last = nil
	f.count = 0
}
