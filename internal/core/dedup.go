package core

// PacketKey identifies a broadcast payload for duplicate suppression.
// The paper's protocols drop duplicate broadcast packets, so each broadcast
// traverses a link at most once and the dissemination forms a spanning tree.
type PacketKey struct {
	// Origin is the node that created the broadcast.
	Origin int
	// Seq is the origin-local sequence number.
	Seq uint64
}

// DuplicateFilter remembers which broadcasts a node has already handled.
// The zero value is not usable; construct with NewDuplicateFilter.
type DuplicateFilter struct {
	seen map[PacketKey]struct{}
}

// NewDuplicateFilter returns an empty filter.
func NewDuplicateFilter() *DuplicateFilter {
	return &DuplicateFilter{seen: make(map[PacketKey]struct{})}
}

// Seen reports whether key was already marked.
func (f *DuplicateFilter) Seen(key PacketKey) bool {
	_, ok := f.seen[key]
	return ok
}

// MarkSeen records key and reports whether it was new (true = first sight).
func (f *DuplicateFilter) MarkSeen(key PacketKey) bool {
	if _, ok := f.seen[key]; ok {
		return false
	}
	f.seen[key] = struct{}{}
	return true
}

// Len returns the number of distinct broadcasts recorded.
func (f *DuplicateFilter) Len() int { return len(f.seen) }

// Reset clears the filter for reuse across simulation runs.
func (f *DuplicateFilter) Reset() {
	clear(f.seen)
}
