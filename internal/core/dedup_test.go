package core

import (
	"testing"
	"testing/quick"
)

func TestDuplicateFilterBasics(t *testing.T) {
	f := NewDuplicateFilter()
	key := PacketKey{Origin: 3, Seq: 7}
	if f.Seen(key) {
		t.Fatal("fresh filter reported seen")
	}
	if !f.MarkSeen(key) {
		t.Fatal("first MarkSeen returned false")
	}
	if !f.Seen(key) {
		t.Fatal("marked key not seen")
	}
	if f.MarkSeen(key) {
		t.Fatal("second MarkSeen returned true")
	}
	if f.Len() != 1 {
		t.Fatalf("len = %d", f.Len())
	}
}

func TestDuplicateFilterDistinguishesKeys(t *testing.T) {
	f := NewDuplicateFilter()
	f.MarkSeen(PacketKey{Origin: 1, Seq: 1})
	if f.Seen(PacketKey{Origin: 1, Seq: 2}) {
		t.Fatal("different seq reported seen")
	}
	if f.Seen(PacketKey{Origin: 2, Seq: 1}) {
		t.Fatal("different origin reported seen")
	}
}

func TestDuplicateFilterReset(t *testing.T) {
	f := NewDuplicateFilter()
	f.MarkSeen(PacketKey{Origin: 1, Seq: 1})
	f.Reset()
	if f.Len() != 0 {
		t.Fatalf("len after reset = %d", f.Len())
	}
	if f.Seen(PacketKey{Origin: 1, Seq: 1}) {
		t.Fatal("key survived reset")
	}
}

// Property: MarkSeen returns true exactly once per distinct key.
func TestPropertyMarkSeenOnce(t *testing.T) {
	check := func(keys []uint16) bool {
		f := NewDuplicateFilter()
		firsts := map[PacketKey]int{}
		for _, k := range keys {
			key := PacketKey{Origin: int(k % 16), Seq: uint64(k / 16)}
			if f.MarkSeen(key) {
				firsts[key]++
			}
		}
		for _, n := range firsts {
			if n != 1 {
				return false
			}
		}
		return f.Len() == len(firsts)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateFilterRejectsSparseSeq pins the dense-seq invariant: a
// sequence number far outside the dense range must fail loudly instead of
// growing the bitset toward OOM. Seen (read-only) stays safe.
func TestDuplicateFilterRejectsSparseSeq(t *testing.T) {
	f := NewDuplicateFilter()
	huge := PacketKey{Origin: 1, Seq: 1 << 40}
	if f.Seen(huge) {
		t.Fatal("unmarked huge seq reported seen")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MarkSeen with a sparse sequence number did not panic")
		}
	}()
	f.MarkSeen(huge)
}
