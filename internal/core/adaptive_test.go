package core

import (
	"testing"
)

func TestAdaptiveConfigValidate(t *testing.T) {
	if err := DefaultAdaptiveConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*AdaptiveConfig){
		func(c *AdaptiveConfig) { c.Initial.P = 2 },
		func(c *AdaptiveConfig) { c.Step = 0 },
		func(c *AdaptiveConfig) { c.Step = 1.5 },
		func(c *AdaptiveConfig) { c.Alpha = 0 },
		func(c *AdaptiveConfig) { c.ActivityTarget = -1 },
		func(c *AdaptiveConfig) { c.LossTarget = 1 },
	}
	for i, mutate := range bad {
		cfg := DefaultAdaptiveConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestNewAdaptiveControllerRejectsBadConfig(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	cfg.Step = -1
	if _, err := NewAdaptiveController(cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestAdaptiveRaisesPUnderActivity(t *testing.T) {
	c, err := NewAdaptiveController(DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	start := c.Params().P
	for i := 0; i < 50; i++ {
		c.ObserveActivity(10) // far above target
	}
	if c.Params().P <= start {
		t.Fatalf("p did not rise: %v -> %v", start, c.Params().P)
	}
	if c.Params().P > 1 {
		t.Fatalf("p exceeded 1: %v", c.Params().P)
	}
}

func TestAdaptiveLowersPWhenQuiet(t *testing.T) {
	c, err := NewAdaptiveController(DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	start := c.Params().P
	for i := 0; i < 50; i++ {
		c.ObserveActivity(0)
	}
	if c.Params().P >= start {
		t.Fatalf("p did not fall: %v -> %v", start, c.Params().P)
	}
	if c.Params().P < 0 {
		t.Fatalf("p below 0: %v", c.Params().P)
	}
}

func TestAdaptiveRaisesQUnderLoss(t *testing.T) {
	c, err := NewAdaptiveController(DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	start := c.Params().Q
	for i := 0; i < 50; i++ {
		c.ObserveDelivery(false)
	}
	if c.Params().Q <= start {
		t.Fatalf("q did not rise under loss: %v -> %v", start, c.Params().Q)
	}
	if c.Params().Q > 1 {
		t.Fatalf("q exceeded 1: %v", c.Params().Q)
	}
}

func TestAdaptiveLowersQWhenClean(t *testing.T) {
	c, err := NewAdaptiveController(DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		c.ObserveDelivery(true)
	}
	if c.Params().Q >= DefaultAdaptiveConfig().Initial.Q {
		t.Fatalf("q did not decay on clean delivery: %v", c.Params().Q)
	}
	if c.Params().Q < 0 {
		t.Fatalf("q below 0: %v", c.Params().Q)
	}
}

func TestAdaptiveConverged(t *testing.T) {
	c, err := NewAdaptiveController(DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Converged() {
		t.Fatal("converged before any observation")
	}
	for i := 0; i < 5; i++ {
		c.ObserveDelivery(true)
	}
	if !c.Converged() {
		t.Fatal("not converged after 1/alpha observations")
	}
}

func TestAdaptiveParamsAlwaysValid(t *testing.T) {
	c, err := NewAdaptiveController(DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		c.ObserveActivity(i % 7)
		c.ObserveDelivery(i%3 == 0)
		if err := c.Params().Validate(); err != nil {
			t.Fatalf("params became invalid at step %d: %v", i, err)
		}
	}
	activity, loss := c.Observations()
	if activity < 0 || loss < 0 || loss > 1 {
		t.Fatalf("observations out of range: activity=%v loss=%v", activity, loss)
	}
}
