package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"pbbf/internal/rng"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

var tableTiming = Timing{Active: time.Second, Frame: 10 * time.Second}

func TestParamsValidate(t *testing.T) {
	good := []Params{{0, 0}, {1, 1}, {0.5, 0.25}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Fatalf("%+v rejected: %v", p, err)
		}
	}
	bad := []Params{{-0.1, 0}, {1.1, 0}, {0, -0.1}, {0, 1.1}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("%+v accepted", p)
		}
	}
}

func TestLabels(t *testing.T) {
	cases := map[Params]string{
		PSM():              "PSM",
		AlwaysOn():         "NO PSM",
		{P: 0.5, Q: 0.25}:  "PBBF-0.5",
		{P: 0.05, Q: 0.25}: "PBBF-0.05",
	}
	for p, want := range cases {
		if got := p.Label(); got != want {
			t.Fatalf("%+v.Label() = %q, want %q", p, got, want)
		}
	}
}

func TestCoinFrequencies(t *testing.T) {
	r := rng.New(1)
	p := Params{P: 0.3, Q: 0.7}
	const n = 100000
	fwd, awake := 0, 0
	for i := 0; i < n; i++ {
		if p.ForwardImmediately(r) {
			fwd++
		}
		if p.StayAwake(r) {
			awake++
		}
	}
	if got := float64(fwd) / n; !almostEqual(got, 0.3, 0.01) {
		t.Fatalf("forward frequency %v", got)
	}
	if got := float64(awake) / n; !almostEqual(got, 0.7, 0.01) {
		t.Fatalf("stay-awake frequency %v", got)
	}
}

func TestSleepDecisionDataOverrides(t *testing.T) {
	r := rng.New(2)
	p := Params{P: 0, Q: 0}
	for i := 0; i < 100; i++ {
		if !p.SleepDecision(true, false, r) {
			t.Fatal("node with data to send slept")
		}
		if !p.SleepDecision(false, true, r) {
			t.Fatal("node with data to receive slept")
		}
		if p.SleepDecision(false, false, r) {
			t.Fatal("q=0 node stayed awake without data")
		}
	}
}

func TestEdgeProbability(t *testing.T) {
	cases := []struct {
		p, q, want float64
	}{
		{0, 0, 1},     // PSM: every edge open
		{1, 1, 1},     // always-on: every edge open
		{1, 0, 0},     // immediate-only with everyone asleep: no edges
		{0.5, 0, 0.5}, // Remark 1
		{0.5, 0.5, 0.75},
	}
	for _, c := range cases {
		if got := EdgeProbability(c.p, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("EdgeProbability(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestMinQForEdgeProbability(t *testing.T) {
	// Round trip: pedge(p, MinQ(p, target)) >= target.
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 1} {
		for _, target := range []float64{0.5, 0.7, 0.9, 0.99} {
			q := MinQForEdgeProbability(p, target)
			if q < 0 || q > 1 {
				t.Fatalf("MinQ(%v,%v) = %v out of range", p, target, q)
			}
			got := EdgeProbability(p, q)
			if got < target-1e-9 && q < 1 {
				t.Fatalf("MinQ(%v,%v)=%v gives pedge %v < target", p, target, q, got)
			}
		}
	}
	if got := MinQForEdgeProbability(0, 0.99); got != 0 {
		t.Fatalf("MinQ(0, .99) = %v, want 0 (p=0 always satisfies)", got)
	}
	// Small p needs no q at all when 1-p >= target.
	if got := MinQForEdgeProbability(0.05, 0.9); got != 0 {
		t.Fatalf("MinQ(0.05, 0.9) = %v, want 0", got)
	}
}

func TestTimingValidate(t *testing.T) {
	if err := tableTiming.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Timing{
		{Active: 0, Frame: time.Second},
		{Active: 2 * time.Second, Frame: time.Second},
		{Active: -time.Second, Frame: time.Second},
	}
	for _, tm := range bad {
		if err := tm.Validate(); err == nil {
			t.Fatalf("%+v accepted", tm)
		}
	}
}

func TestTimingSleep(t *testing.T) {
	if got := tableTiming.Sleep(); got != 9*time.Second {
		t.Fatalf("Tsleep = %v", got)
	}
}

func TestEnergyEquations(t *testing.T) {
	// Equation 3: Tactive/Tframe = 0.1 for Table 1 values.
	if got := EnergyOriginal(tableTiming); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("Eoriginal = %v", got)
	}
	// Equation 5/6 at q=0.5: active 1+4.5=5.5s, sleep 4.5s.
	if got := ActiveTimePBBF(tableTiming, 0.5); got != 5500*time.Millisecond {
		t.Fatalf("ActiveTimePBBF = %v", got)
	}
	if got := SleepTimePBBF(tableTiming, 0.5); got != 4500*time.Millisecond {
		t.Fatalf("SleepTimePBBF = %v", got)
	}
	// Equation 7: 5.5/10.
	if got := EnergyPBBF(tableTiming, 0.5); !almostEqual(got, 0.55, 1e-12) {
		t.Fatalf("EPBBF = %v", got)
	}
	// Equation 8: 1 + 0.5*9 = 5.5.
	if got := EnergyIncreaseFactor(tableTiming, 0.5); !almostEqual(got, 5.5, 1e-12) {
		t.Fatalf("factor = %v", got)
	}
	// Endpoints: q=0 reduces to PSM, q=1 to always-on.
	if got := EnergyPBBF(tableTiming, 0); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("EPBBF(0) = %v", got)
	}
	if got := EnergyPBBF(tableTiming, 1); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("EPBBF(1) = %v", got)
	}
}

func TestPerHopLatency(t *testing.T) {
	l := Latencies{L1: 1500 * time.Millisecond, L2: 10 * time.Second}
	// p=0: every hop is a normal broadcast, L = L1+L2.
	if got := ExpectedPerHopLatency(Params{P: 0, Q: 0}, l); got != 11500*time.Millisecond {
		t.Fatalf("PSM latency = %v", got)
	}
	// p=1, q=1: all immediate, L = L1.
	if got := ExpectedPerHopLatency(Params{P: 1, Q: 1}, l); got != 1500*time.Millisecond {
		t.Fatalf("always-on latency = %v", got)
	}
	// Degenerate p=1, q=0: returns L1.
	if got := ExpectedPerHopLatency(Params{P: 1, Q: 0}, l); got != 1500*time.Millisecond {
		t.Fatalf("degenerate latency = %v", got)
	}
	// Equation 9 midpoint: p=0.5, q=0.5 → L1 + L2*(0.5)/(0.75).
	want := l.L1 + time.Duration(float64(l.L2)*0.5/0.75)
	if got := ExpectedPerHopLatency(Params{P: 0.5, Q: 0.5}, l); got != want {
		t.Fatalf("latency = %v, want %v", got, want)
	}
}

func TestLatencyMonotoneInPQ(t *testing.T) {
	l := Latencies{L1: time.Second, L2: 10 * time.Second}
	// Higher q at fixed p lowers latency (more immediate deliveries land).
	prev := time.Duration(math.MaxInt64)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := ExpectedPerHopLatency(Params{P: 0.5, Q: q}, l)
		if got > prev {
			t.Fatalf("latency increased with q: %v after %v", got, prev)
		}
		prev = got
	}
	// Higher p at fixed q>0 lowers latency.
	prev = time.Duration(math.MaxInt64)
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := ExpectedPerHopLatency(Params{P: p, Q: 0.5}, l)
		if got > prev {
			t.Fatalf("latency increased with p: %v after %v", got, prev)
		}
		prev = got
	}
}

func TestLatencyToNode(t *testing.T) {
	if got := LatencyToNode(2*time.Second, 5); got != 10*time.Second {
		t.Fatalf("LatencyToNode = %v", got)
	}
}

func TestLatencyUpperBoundHops(t *testing.T) {
	if got := LatencyUpperBoundHops(16); !almostEqual(got, 32, 1e-9) {
		t.Fatalf("bound(16) = %v, want 32 (16^1.25)", got)
	}
	if got := LatencyUpperBoundHops(1); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("bound(1) = %v", got)
	}
}

func TestEnergyForLatencyConsistency(t *testing.T) {
	// Pick (p, q), compute L from Eq 9 and E from Eq 8; Eq 12 must
	// reproduce E from (p, L).
	l := Latencies{L1: 1500 * time.Millisecond, L2: 10 * time.Second}
	for _, p := range []float64{0.25, 0.5, 0.75} {
		for _, q := range []float64{0.2, 0.5, 0.8} {
			pr := Params{P: p, Q: q}
			lat := ExpectedPerHopLatency(pr, l)
			wantE := EnergyPBBF(tableTiming, q)
			gotE, err := EnergyForLatency(l, tableTiming, p, lat)
			if err != nil {
				t.Fatalf("EnergyForLatency(%v,%v): %v", p, q, err)
			}
			if !almostEqual(gotE, wantE, 1e-6) {
				t.Fatalf("Eq12 gives %v, Eq8 gives %v at p=%v q=%v", gotE, wantE, p, q)
			}
		}
	}
}

func TestEnergyForLatencyValidation(t *testing.T) {
	l := Latencies{L1: time.Second, L2: 10 * time.Second}
	if _, err := EnergyForLatency(l, tableTiming, 0, 5*time.Second); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := EnergyForLatency(l, tableTiming, 0.5, time.Second); err == nil {
		t.Fatal("latency <= L1 accepted")
	}
}

func TestQForLatencyRoundTrip(t *testing.T) {
	l := Latencies{L1: 1500 * time.Millisecond, L2: 10 * time.Second}
	for _, p := range []float64{0.25, 0.5, 0.75} {
		for _, q := range []float64{0.1, 0.5, 0.9} {
			lat := ExpectedPerHopLatency(Params{P: p, Q: q}, l)
			got, err := QForLatency(l, p, lat)
			if err != nil {
				t.Fatalf("QForLatency(%v): %v", p, err)
			}
			if !almostEqual(got, q, 1e-9) {
				t.Fatalf("QForLatency round trip: got %v, want %v", got, q)
			}
		}
	}
}

func TestQForLatencyErrors(t *testing.T) {
	l := Latencies{L1: time.Second, L2: 10 * time.Second}
	if _, err := QForLatency(l, 0, 5*time.Second); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := QForLatency(l, 0.5, 500*time.Millisecond); err == nil {
		t.Fatal("latency below L1 accepted")
	}
	if _, err := QForLatency(l, 0.5, time.Second); err == nil {
		t.Fatal("latency == L1 with p<1 accepted")
	}
	if q, err := QForLatency(l, 1, time.Second); err != nil || q != 0 {
		t.Fatalf("p=1 at L1: q=%v err=%v", q, err)
	}
	// Latency longer than the p-maximum (q would be negative).
	if _, err := QForLatency(l, 0.5, time.Hour); err == nil {
		t.Fatal("unreachable long latency accepted")
	}
}

// Property: energy (Eq 8) increases with q while latency (Eq 9) decreases —
// the inverse relation the paper's title is about.
func TestPropertyInverseTradeoff(t *testing.T) {
	l := Latencies{L1: 1500 * time.Millisecond, L2: 10 * time.Second}
	check := func(rawP, rawQ1, rawQ2 uint8) bool {
		p := float64(rawP%90+10) / 100 // p in [0.1, 0.99]
		q1 := float64(rawQ1%100) / 100
		q2 := float64(rawQ2%100) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		if q1 == q2 {
			return true
		}
		e1 := EnergyPBBF(tableTiming, q1)
		e2 := EnergyPBBF(tableTiming, q2)
		l1 := ExpectedPerHopLatency(Params{P: p, Q: q1}, l)
		l2 := ExpectedPerHopLatency(Params{P: p, Q: q2}, l)
		return e1 <= e2 && l1 >= l2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: EdgeProbability is within [min(1-p, 1), 1] and MinQ inverts it.
func TestPropertyEdgeProbabilityBounds(t *testing.T) {
	check := func(rawP, rawQ uint8) bool {
		p := float64(rawP%101) / 100
		q := float64(rawQ%101) / 100
		pe := EdgeProbability(p, q)
		if pe < 0 || pe > 1 {
			return false
		}
		if pe < 1-p-1e-12 {
			return false
		}
		minQ := MinQForEdgeProbability(p, pe)
		return EdgeProbability(p, minQ) >= pe-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
