package core

import (
	"fmt"
	"math"
)

// AdaptiveConfig tunes the AdaptiveController, the paper's future-work
// extension (Section 6): nodes adjust p and q dynamically instead of using
// fixed global values.
type AdaptiveConfig struct {
	// Initial is the starting operating point.
	Initial Params
	// Step is the multiplicative-increase / additive-decrease step size.
	Step float64
	// ActivityTarget is the neighbor-activity level (smoothed count of
	// overheard transmissions per active period) above which p is raised:
	// "when a node overhears more nodes involved in communication, p could
	// be increased since more nodes will be active to receive the
	// broadcast."
	ActivityTarget float64
	// LossTarget is the tolerated fraction of missed broadcasts; observed
	// loss above it raises q: "the q parameter could be increased in
	// response to a node detecting a large fraction of broadcast packets
	// are not being received."
	LossTarget float64
	// Alpha is the EWMA smoothing factor in (0, 1] for both signals.
	Alpha float64
}

// DefaultAdaptiveConfig returns a conservative configuration: start at the
// reliability-safe corner (p=0.25, q=0.5), 0.05 steps, EWMA alpha 0.2.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		Initial:        Params{P: 0.25, Q: 0.5},
		Step:           0.05,
		ActivityTarget: 2,
		LossTarget:     0.01,
		Alpha:          0.2,
	}
}

// Validate checks the configuration invariants.
func (c AdaptiveConfig) Validate() error {
	if err := c.Initial.Validate(); err != nil {
		return err
	}
	if c.Step <= 0 || c.Step > 1 {
		return fmt.Errorf("core: adaptive step %v outside (0,1]", c.Step)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("core: adaptive alpha %v outside (0,1]", c.Alpha)
	}
	if c.ActivityTarget < 0 {
		return fmt.Errorf("core: activity target %v negative", c.ActivityTarget)
	}
	if c.LossTarget < 0 || c.LossTarget >= 1 {
		return fmt.Errorf("core: loss target %v outside [0,1)", c.LossTarget)
	}
	return nil
}

// AdaptiveController adjusts a node's local (p, q) from two observations:
// overheard neighbor activity and broadcast delivery success. It is a pure
// state machine; the MAC feeds it observations and reads Params.
type AdaptiveController struct {
	cfg      AdaptiveConfig
	params   Params
	activity float64 // EWMA of overheard transmissions per observation window
	loss     float64 // EWMA of miss indicator
	observed int
}

// NewAdaptiveController constructs a controller; the config must validate.
func NewAdaptiveController(cfg AdaptiveConfig) (*AdaptiveController, error) {
	a := &AdaptiveController{}
	if err := a.Reset(cfg); err != nil {
		return nil, err
	}
	return a, nil
}

// Reset reinitializes the controller in place for a new run — the pooled
// counterpart of NewAdaptiveController.
func (a *AdaptiveController) Reset(cfg AdaptiveConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	*a = AdaptiveController{cfg: cfg, params: cfg.Initial, loss: cfg.LossTarget}
	return nil
}

// Params returns the current operating point.
func (a *AdaptiveController) Params() Params { return a.params }

// Observations returns the smoothed activity and loss signals (diagnostics).
func (a *AdaptiveController) Observations() (activity, loss float64) {
	return a.activity, a.loss
}

// ObserveActivity feeds the number of distinct transmissions overheard in
// the last active period. High activity means many neighbors are awake, so
// immediate broadcasts are likely to be received: raise p — but only while
// observed loss is under control (reliability-first: aggressive immediate
// forwarding is never worth missing broadcasts). Low activity or excess
// loss lowers p back toward the reliable normal-broadcast path.
func (a *AdaptiveController) ObserveActivity(transmissions int) {
	a.activity = (1-a.cfg.Alpha)*a.activity + a.cfg.Alpha*float64(transmissions)
	switch {
	case a.loss > a.cfg.LossTarget:
		a.params.P = clamp01(a.params.P - a.cfg.Step)
	case a.activity > a.cfg.ActivityTarget:
		a.params.P = clamp01(a.params.P + a.cfg.Step)
	case a.activity < a.cfg.ActivityTarget/2:
		a.params.P = clamp01(a.params.P - a.cfg.Step)
	}
}

// ObserveDelivery feeds one broadcast outcome: received=false means the
// node learned (e.g. from a sequence-number gap) that it missed a
// broadcast. Sustained loss above the target raises q; loss well under
// the target lets q decay to save energy.
func (a *AdaptiveController) ObserveDelivery(received bool) {
	miss := 0.0
	if !received {
		miss = 1
	}
	a.loss = (1-a.cfg.Alpha)*a.loss + a.cfg.Alpha*miss
	a.observed++
	switch {
	case a.loss > a.cfg.LossTarget:
		a.params.Q = clamp01(a.params.Q + a.cfg.Step)
	case a.loss < a.cfg.LossTarget/2:
		a.params.Q = clamp01(a.params.Q - a.cfg.Step)
	}
}

// Converged reports whether the controller has seen enough deliveries for
// the loss EWMA to be meaningful (a fixed warm-up of 1/alpha samples).
func (a *AdaptiveController) Converged() bool {
	return float64(a.observed) >= 1/a.cfg.Alpha
}

func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}
