package scenario

import (
	"fmt"
	"strings"
	"time"
)

// Scale sets the dimensions every scenario runs at. One Scale drives the
// whole registry, so "run everything at CI size" or "run everything at the
// paper's size" is a single knob; individual scenarios read only the fields
// they need.
type Scale struct {
	// GridW, GridH size the ideal-simulator grid (Table 1: 75×75).
	GridW, GridH int
	// IdealUpdates is the number of broadcasts per ideal-sim run.
	IdealUpdates int
	// PercTrials is the Monte Carlo trial count for percolation sweeps.
	PercTrials int
	// PercGrids lists the square grid sizes of Figure 6.
	PercGrids []int
	// NetNodes is the random-field size (Table 2: 50).
	NetNodes int
	// NetRuns is the number of scenarios averaged per data point
	// (Section 5: 10).
	NetRuns int
	// NetDuration is the simulated time per scenario (Section 5: 500 s).
	NetDuration time.Duration
	// QSweep lists the q values on the x axis of the q-sweep figures.
	QSweep []float64
	// PSweepIdeal lists the PBBF p values of the Section 4 figures.
	PSweepIdeal []float64
	// PSweepNet lists the PBBF p values of the Section 5 figures.
	PSweepNet []float64
	// DeltaSweep lists the densities of Figures 17/18.
	DeltaSweep []float64
	// HopNear and HopFar are the tracked BFS distances of Figures 9/10
	// (paper: 20 and 60 on the 75×75 grid).
	HopNear, HopFar int
	// NetTrackHops are the BFS distances of Figures 14/15 (paper: 2, 5).
	NetTrackHops []int
	// DutySweep lists the wakeup-schedule duty cycles (Tactive/Tframe) of
	// the duty-cycle sweep scenarios.
	DutySweep []float64
	// Seed is the root of every run's randomness.
	Seed uint64
	// Protocol selects the broadcast protocol network scenarios simulate
	// (see internal/protocol). Empty means PBBF, the paper's protocol; the
	// canonical spelling "pbbf" is folded to empty before a Scale is keyed,
	// so every pre-protocol cache key, checkpoint, and golden file remains
	// valid. Scenarios that pin their own protocol (the adaptive-control
	// family, the cross-protocol comparison) ignore it.
	Protocol string `json:",omitempty"`
	// EnergyJ, when positive, gives every node of a network scenario a
	// finite battery with this mean initial capacity in joules; 0 keeps
	// the paper's infinite battery. Like Protocol, the zero value is
	// omitted from keys and checkpoints so every pre-finite-energy
	// identity remains valid. Scenarios that pin their own energy axis
	// (the lifetime/harvest families) ignore it.
	EnergyJ float64 `json:",omitempty"`
	// HarvestW recharges finite batteries at a constant per-node rate in
	// watts (requires EnergyJ > 0).
	HarvestW float64 `json:",omitempty"`
}

// Paper returns the paper's dimensions. A full run of every scenario at
// this scale takes on the order of minutes.
func Paper() Scale {
	return Scale{
		GridW: 75, GridH: 75,
		IdealUpdates: 10,
		PercTrials:   200,
		PercGrids:    []int{10, 20, 30, 40},
		NetNodes:     50,
		NetRuns:      10,
		NetDuration:  500 * time.Second,
		QSweep:       SweepRange(0, 1, 0.1),
		PSweepIdeal:  []float64{0.05, 0.25, 0.375, 0.5, 0.75},
		PSweepNet:    []float64{0.05, 0.1, 0.25, 0.5},
		DeltaSweep:   []float64{8, 10, 12, 14, 16, 18},
		HopNear:      20,
		HopFar:       60,
		NetTrackHops: []int{2, 5},
		DutySweep:    []float64{0.05, 0.1, 0.2, 1.0 / 3, 0.5, 1},
		Seed:         1,
	}
}

// Quick returns a reduced configuration for CI and benchmarks: 30×30
// grids, 3 runs per point, shorter scenarios, coarser sweeps.
func Quick() Scale {
	return Scale{
		GridW: 30, GridH: 30,
		IdealUpdates: 4,
		PercTrials:   40,
		PercGrids:    []int{10, 20, 30},
		NetNodes:     30,
		NetRuns:      3,
		NetDuration:  300 * time.Second,
		QSweep:       SweepRange(0, 1, 0.25),
		PSweepIdeal:  []float64{0.05, 0.25, 0.5, 0.75},
		PSweepNet:    []float64{0.1, 0.5},
		DeltaSweep:   []float64{8, 12, 16},
		HopNear:      10,
		HopFar:       20,
		NetTrackHops: []int{2, 5},
		DutySweep:    []float64{0.1, 0.2, 0.5, 1},
		Seed:         1,
	}
}

// Bench returns the fixed benchmark configuration behind BENCH.json: large
// enough that the netsim kernel dominates (the large-n, long-horizon regime
// the paper's Section 5 cares about), small enough that the full registry
// finishes in CI time. Changing these dimensions invalidates every recorded
// baseline, so treat them as frozen; add a new preset instead of editing.
func Bench() Scale {
	return Scale{
		GridW: 40, GridH: 40,
		IdealUpdates: 4,
		PercTrials:   60,
		PercGrids:    []int{10, 20, 30},
		NetNodes:     100,
		NetRuns:      2,
		NetDuration:  1000 * time.Second,
		QSweep:       SweepRange(0, 1, 0.5),
		PSweepIdeal:  []float64{0.05, 0.5},
		PSweepNet:    []float64{0.1, 0.5},
		DeltaSweep:   []float64{8, 12, 16},
		HopNear:      10,
		HopFar:       25,
		NetTrackHops: []int{2, 5},
		DutySweep:    []float64{0.1, 0.5, 1},
		Seed:         1,
	}
}

// Large returns the scale-stress configuration: random fields of 10,000
// nodes — two hundred times the paper's Table 2 and past the point where
// per-run allocation would dominate wall time if the kernel still allocated
// per node. One run per point and a short horizon keep a single flagship
// scenario inside a CI smoke budget; the full registry at this scale is an
// overnight job, not a CI job. The pooled kernel is what makes this preset
// usable at all: steady-state points reuse the node arrays, adjacency
// buffers, and duplicate-filter bitsets of the points before them.
func Large() Scale {
	return Scale{
		GridW: 100, GridH: 100,
		IdealUpdates: 2,
		PercTrials:   40,
		PercGrids:    []int{20, 40},
		NetNodes:     10000,
		NetRuns:      1,
		NetDuration:  200 * time.Second,
		QSweep:       []float64{0, 0.5, 1},
		PSweepIdeal:  []float64{0.5},
		PSweepNet:    []float64{0.25},
		DeltaSweep:   []float64{10, 12},
		HopNear:      25,
		HopFar:       70,
		NetTrackHops: []int{2, 5},
		DutySweep:    []float64{0.1, 0.5, 1},
		Seed:         1,
	}
}

// Presets maps the scale names the CLI accepts to their constructors, in
// the order they should be documented.
func Presets() []struct {
	Name  string
	Scale Scale
} {
	return []struct {
		Name  string
		Scale Scale
	}{
		{"quick", Quick()},
		{"paper", Paper()},
		{"bench", Bench()},
		{"large", Large()},
	}
}

// ScaleNames returns the preset names the CLI accepts, in documentation
// order.
func ScaleNames() []string {
	presets := Presets()
	names := make([]string, len(presets))
	for i, p := range presets {
		names[i] = p.Name
	}
	return names
}

// ByName returns the named scale preset ("quick", "paper", "bench", or "large").
func ByName(name string) (Scale, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p.Scale, nil
		}
	}
	return Scale{}, fmt.Errorf("scenario: unknown scale %q (want %s)", name, strings.Join(ScaleNames(), ", "))
}

// Validate checks the scale's structural invariants.
func (s Scale) Validate() error {
	if s.GridW <= 0 || s.GridH <= 0 {
		return fmt.Errorf("scenario: grid %dx%d invalid", s.GridW, s.GridH)
	}
	if s.IdealUpdates <= 0 || s.PercTrials <= 0 || s.NetNodes <= 0 || s.NetRuns <= 0 {
		return fmt.Errorf("scenario: counts must be positive")
	}
	if s.NetDuration <= 0 {
		return fmt.Errorf("scenario: duration %v invalid", s.NetDuration)
	}
	if len(s.QSweep) == 0 || len(s.PSweepIdeal) == 0 || len(s.PSweepNet) == 0 {
		return fmt.Errorf("scenario: empty sweep")
	}
	if len(s.PercGrids) == 0 || len(s.DeltaSweep) == 0 {
		return fmt.Errorf("scenario: empty grid or density sweep")
	}
	if s.HopNear <= 0 || s.HopFar <= s.HopNear {
		return fmt.Errorf("scenario: hop distances %d/%d invalid", s.HopNear, s.HopFar)
	}
	if len(s.DutySweep) == 0 {
		return fmt.Errorf("scenario: empty duty-cycle sweep")
	}
	for _, d := range s.DutySweep {
		if d <= 0 || d > 1 {
			return fmt.Errorf("scenario: duty cycle %v outside (0,1]", d)
		}
	}
	if s.EnergyJ < 0 {
		return fmt.Errorf("scenario: initial energy %v must be non-negative", s.EnergyJ)
	}
	if s.HarvestW < 0 {
		return fmt.Errorf("scenario: harvest rate %v must be non-negative", s.HarvestW)
	}
	if s.HarvestW > 0 && s.EnergyJ == 0 {
		return fmt.Errorf("scenario: harvest rate %v requires a positive initial energy", s.HarvestW)
	}
	return nil
}

// SweepRange returns {from, from+step, ..., to} inclusive (within epsilon).
func SweepRange(from, to, step float64) []float64 {
	var out []float64
	for v := from; v <= to+1e-9; v += step {
		// Round to avoid 0.30000000000000004-style x values.
		out = append(out, float64(int(v*1000+0.5))/1000)
	}
	return out
}

// PointSeed derives a deterministic seed for one data point from the scale
// seed and the point's coordinates, so adding sweep values does not perturb
// other points.
func PointSeed(base uint64, parts ...uint64) uint64 {
	h := base ^ 0x9e3779b97f4a7c15
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xbf58476d1ce4e5b9
	}
	return h
}

// FloatBits maps a float in [0,1]-ish sweeps to stable integer coordinates
// for seeding (3 decimal places of resolution).
func FloatBits(f float64) uint64 {
	return uint64(int64(f*1000 + 0.5))
}
