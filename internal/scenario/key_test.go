package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func samplePoint() Point {
	return Point{Series: "p=0.5", X: 0.3, Params: map[string]float64{"q": 0.3, "p": 0.5}}
}

func TestPointKeyDeterministic(t *testing.T) {
	s := Quick()
	a := PointKey("fig8", s, samplePoint())
	for i := 0; i < 10; i++ {
		if b := PointKey("fig8", s, samplePoint()); b != a {
			t.Fatalf("key not deterministic: %q vs %q", a, b)
		}
	}
}

func TestPointKeyDiscriminates(t *testing.T) {
	s := Quick()
	base := PointKey("fig8", s, samplePoint())

	other := samplePoint()
	other.Params["q"] = 0.4
	seeded := s
	seeded.Seed = 2
	scaled := s
	scaled.NetNodes++
	variants := map[string]string{
		"scenario ID": PointKey("fig9", s, samplePoint()),
		"param value": PointKey("fig8", s, other),
		"seed":        PointKey("fig8", seeded, samplePoint()),
		"scale field": PointKey("fig8", scaled, samplePoint()),
		"series": PointKey("fig8", s, Point{
			Series: "p=0.75", X: 0.3, Params: samplePoint().Params,
		}),
	}
	for what, key := range variants {
		if key == base {
			t.Fatalf("changing the %s did not change the key", what)
		}
	}
}

func TestPointKeySortsParams(t *testing.T) {
	s := Quick()
	key := PointKey("fig8", s, samplePoint())
	if !strings.Contains(key, "|p=0.5|q=0.3") {
		t.Fatalf("params not in sorted order: %q", key)
	}
}

// TestScaleKeyCoversEveryField pins the Scale field count: adding a
// dimension to Scale without extending writeScaleKey would silently alias
// distinct workloads to one cache/checkpoint key. When this fails, extend
// writeScaleKey and bump scaleKeyFields together.
func TestScaleKeyCoversEveryField(t *testing.T) {
	if n := reflect.TypeOf(Scale{}).NumField(); n != scaleKeyFields {
		t.Fatalf("Scale has %d fields but writeScaleKey serializes %d — extend the key serialization",
			n, scaleKeyFields)
	}
}
