package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func samplePoint() Point {
	return Point{Series: "p=0.5", X: 0.3, Params: map[string]float64{"q": 0.3, "p": 0.5}}
}

func TestPointKeyDeterministic(t *testing.T) {
	s := Quick()
	a := PointKey("fig8", s, samplePoint())
	for i := 0; i < 10; i++ {
		if b := PointKey("fig8", s, samplePoint()); b != a {
			t.Fatalf("key not deterministic: %q vs %q", a, b)
		}
	}
}

func TestPointKeyDiscriminates(t *testing.T) {
	s := Quick()
	base := PointKey("fig8", s, samplePoint())

	other := samplePoint()
	other.Params["q"] = 0.4
	seeded := s
	seeded.Seed = 2
	scaled := s
	scaled.NetNodes++
	protocoled := s
	protocoled.Protocol = "ola"
	energized := s
	energized.EnergyJ = 2
	harvesting := energized
	harvesting.HarvestW = 0.005
	variants := map[string]string{
		"scenario ID": PointKey("fig9", s, samplePoint()),
		"param value": PointKey("fig8", s, other),
		"seed":        PointKey("fig8", seeded, samplePoint()),
		"scale field": PointKey("fig8", scaled, samplePoint()),
		"protocol":    PointKey("fig8", protocoled, samplePoint()),
		"energy":      PointKey("fig8", energized, samplePoint()),
		"harvest":     PointKey("fig8", harvesting, samplePoint()),
		"series": PointKey("fig8", s, Point{
			Series: "p=0.75", X: 0.3, Params: samplePoint().Params,
		}),
	}
	for what, key := range variants {
		if key == base {
			t.Fatalf("changing the %s did not change the key", what)
		}
	}
}

func TestPointKeySortsParams(t *testing.T) {
	s := Quick()
	key := PointKey("fig8", s, samplePoint())
	if !strings.Contains(key, "|p=0.5|q=0.3") {
		t.Fatalf("params not in sorted order: %q", key)
	}
}

// TestPointKeyProtocolBackCompat pins the backward-compatibility contract
// of the protocol dimension: a Scale with an empty Protocol (the PBBF
// default) must derive the exact key string it derived before the field
// existed, so every pre-protocol checkpoint, cache entry, and golden file
// still addresses the same computations. The full expected key is spelled
// out byte for byte — if this test fails, old checkpoints are orphaned.
func TestPointKeyProtocolBackCompat(t *testing.T) {
	s := Quick()
	got := PointKey("fig8", s, samplePoint())
	want := "fig8|grid=30x30|iu=4|pt=40|pg=10,20,30|nn=30|nr=3|nd=300000000000" +
		"|q=0,0.25,0.5,0.75,1|pi=0.05,0.25,0.5,0.75|pn=0.1,0.5|ds=8,12,16" +
		"|hop=10,20|nth=2,5|duty=0.1,0.2,0.5,1|seed=1" +
		"|series=p=0.5|x=0.3|p=0.5|q=0.3"
	if got != want {
		t.Fatalf("default-protocol key changed — old checkpoints orphaned:\ngot  %q\nwant %q", got, want)
	}
	if strings.Contains(got, "proto=") {
		t.Fatalf("empty protocol leaked into the key: %q", got)
	}
	s.Protocol = "sleepsched"
	keyed := PointKey("fig8", s, samplePoint())
	if !strings.Contains(keyed, "|seed=1|proto=sleepsched|series=") {
		t.Fatalf("non-default protocol missing from the key: %q", keyed)
	}
}

// TestPointKeyEnergyBackCompat pins the same contract for the finite-energy
// axis: the zero value (infinite batteries, the only workload that existed
// before the axis) must not appear in the key, and a finite budget must.
func TestPointKeyEnergyBackCompat(t *testing.T) {
	s := Quick()
	base := PointKey("fig8", s, samplePoint())
	if strings.Contains(base, "energy=") || strings.Contains(base, "harvest=") {
		t.Fatalf("zero energy axis leaked into the key: %q", base)
	}
	s.EnergyJ = 1.5
	energized := PointKey("fig8", s, samplePoint())
	if !strings.Contains(energized, "|seed=1|energy=1.5|series=") {
		t.Fatalf("finite energy missing from the key: %q", energized)
	}
	s.HarvestW = 0.005
	harvesting := PointKey("fig8", s, samplePoint())
	if !strings.Contains(harvesting, "|energy=1.5|harvest=0.005|series=") {
		t.Fatalf("harvest rate missing from the key: %q", harvesting)
	}
	// All three variants must parse back into the same three segments.
	for _, key := range []string{base, energized, harvesting} {
		id, scaleKey, pointKey, err := SplitKey(key)
		if err != nil {
			t.Fatal(err)
		}
		if id+"|"+scaleKey+"|"+pointKey != key {
			t.Fatalf("segments do not reassemble %q", key)
		}
	}
}

// TestScaleKeyCoversEveryField pins the Scale field count: adding a
// dimension to Scale without extending writeScaleKey would silently alias
// distinct workloads to one cache/checkpoint key. When this fails, extend
// writeScaleKey and bump scaleKeyFields together.
func TestScaleKeyCoversEveryField(t *testing.T) {
	if n := reflect.TypeOf(Scale{}).NumField(); n != scaleKeyFields {
		t.Fatalf("Scale has %d fields but writeScaleKey serializes %d — extend the key serialization",
			n, scaleKeyFields)
	}
}

// TestSplitKey: SplitKey must invert PointKey's segment layout for default
// and non-default protocols, and reject strings that are not keys.
func TestSplitKey(t *testing.T) {
	s := Quick()
	pt := Point{Series: "p=0.05", X: 0.5, Params: map[string]float64{"p": 0.05, "q": 0.5}}
	for _, proto := range []string{"", "sleepsched"} {
		s.Protocol = proto
		key := PointKey("fig8", s, pt)
		id, scaleKey, pointKey, err := SplitKey(key)
		if err != nil {
			t.Fatal(err)
		}
		if id != "fig8" {
			t.Fatalf("scenario %q", id)
		}
		if id+"|"+scaleKey+"|"+pointKey != key {
			t.Fatalf("segments do not reassemble the key:\n%s\n%s|%s|%s", key, id, scaleKey, pointKey)
		}
		if !strings.HasPrefix(pointKey, "series=p=0.05") {
			t.Fatalf("point segment %q", pointKey)
		}
		if proto != "" && !strings.Contains(scaleKey, "proto="+proto) {
			t.Fatalf("scale segment %q lost the protocol", scaleKey)
		}
	}
	for _, bad := range []string{"", "noscale", "fig8|", "fig8|series=a", "fig8|grid=1x1"} {
		if _, _, _, err := SplitKey(bad); err == nil {
			t.Fatalf("SplitKey(%q) accepted", bad)
		}
	}
}
