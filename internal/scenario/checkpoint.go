package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// CheckpointVersion identifies the checkpoint journal layout.
// LoadCheckpoint rejects files written by an incompatible version.
const CheckpointVersion = 1

// Checkpoint is the in-memory state of a resumable sweep: the run's
// identity (experiment selector, scale name, seed — a checkpoint must
// never resume a different workload) plus every completed point result
// keyed by its canonical PointKey.
//
// On disk a checkpoint is an append-only NDJSON journal: one header line
// with the identity, then one line per completed point. Appending is O(1)
// per point — the journal never rewrites prior results — and a process
// killed mid-append loses at most its torn final line, which
// LoadCheckpoint tolerates and the resumed run recomputes.
type Checkpoint struct {
	Version int
	Identity
	// Results maps PointKey to the completed result.
	Results map[string]Result
}

// Identity is the workload a resumable sweep computes: everything that
// selects which points exist and what their results are. A checkpoint must
// never resume a different workload. New axes extend this struct (with a
// zero value meaning the pre-axis default) instead of growing positional
// constructor parameters.
type Identity struct {
	Experiment string
	Scale      string
	Seed       uint64
	// Protocol is the canonical protocol selection the sweep ran under
	// (empty = PBBF). A PBBF checkpoint must not resume a sleepsched
	// sweep even when every other flag matches.
	Protocol string
	// EnergyJ and HarvestW are the Scale's finite-energy axis
	// (0 = infinite battery, the only workload older journals describe).
	EnergyJ  float64
	HarvestW float64
}

// checkpointHeader is the journal's first line. Protocol and the energy
// fields are omitempty so journals written for the defaults keep the exact
// header bytes of the earlier formats — old files load, and default files
// written today load in old builds.
type checkpointHeader struct {
	Version    int     `json:"version"`
	Experiment string  `json:"experiment"`
	Scale      string  `json:"scale"`
	Seed       uint64  `json:"seed"`
	Protocol   string  `json:"protocol,omitempty"`
	EnergyJ    float64 `json:"energy_j,omitempty"`
	HarvestW   float64 `json:"harvest_w,omitempty"`
}

// checkpointEntry is one completed point, one journal line.
type checkpointEntry struct {
	Key    string `json:"key"`
	Result Result `json:"result"`
}

// NewCheckpointFor returns an empty checkpoint for the given run identity.
func NewCheckpointFor(id Identity) *Checkpoint {
	return &Checkpoint{
		Version:  CheckpointVersion,
		Identity: id,
		Results:  make(map[string]Result),
	}
}

// NewCheckpoint returns an empty checkpoint for the given run identity
// with the default (infinite-battery) energy axis.
//
// Deprecated: use NewCheckpointFor with an Identity.
func NewCheckpoint(experiment, scale string, seed uint64, protocol string) *Checkpoint {
	return NewCheckpointFor(Identity{Experiment: experiment, Scale: scale, Seed: seed, Protocol: protocol})
}

// MatchesIdentity reports whether the checkpoint was recorded for the same
// run identity, with a descriptive error when it was not.
func (c *Checkpoint) MatchesIdentity(id Identity) error {
	if c.Identity != id {
		return fmt.Errorf("checkpoint records run (experiment=%s scale=%s seed=%d protocol=%s energy=%g harvest=%g), requested (experiment=%s scale=%s seed=%d protocol=%s energy=%g harvest=%g): delete the file or match its flags",
			c.Experiment, c.Scale, c.Seed, protoLabel(c.Protocol), c.EnergyJ, c.HarvestW,
			id.Experiment, id.Scale, id.Seed, protoLabel(id.Protocol), id.EnergyJ, id.HarvestW)
	}
	return nil
}

// Matches reports whether the checkpoint was recorded for the same run
// identity with the default energy axis.
//
// Deprecated: use MatchesIdentity with an Identity.
func (c *Checkpoint) Matches(experiment, scale string, seed uint64, protocol string) error {
	return c.MatchesIdentity(Identity{Experiment: experiment, Scale: scale, Seed: seed, Protocol: protocol})
}

// protoLabel names the default protocol in error messages; an empty string
// would read like a missing value.
func protoLabel(p string) string {
	if p == "" {
		return "pbbf"
	}
	return p
}

// LoadCheckpoint reads a checkpoint journal. A missing file is not an
// error: it returns (nil, nil) so callers start fresh. A torn final line
// (the mark of a kill mid-append) is skipped; corruption anywhere else is
// an error.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	lines := bytes.Split(data, []byte("\n"))
	// Trim trailing empty lines (the journal ends with one newline).
	for len(lines) > 0 && len(bytes.TrimSpace(lines[len(lines)-1])) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("checkpoint %s: empty journal", path)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("checkpoint %s: bad header: %w", path, err)
	}
	if hdr.Version != CheckpointVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d", path, hdr.Version, CheckpointVersion)
	}
	c := NewCheckpointFor(Identity{
		Experiment: hdr.Experiment, Scale: hdr.Scale, Seed: hdr.Seed,
		Protocol: hdr.Protocol, EnergyJ: hdr.EnergyJ, HarvestW: hdr.HarvestW,
	})
	for i, line := range lines[1:] {
		var e checkpointEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if i == len(lines[1:])-1 {
				break // torn final line from a kill mid-append
			}
			return nil, fmt.Errorf("checkpoint %s: bad entry on line %d: %w", path, i+2, err)
		}
		c.Results[e.Key] = e.Result
	}
	return c, nil
}

// WriteFile persists the whole checkpoint as a fresh journal, atomically
// (temp file + rename), with entries in sorted-key order so the same
// result set always produces the same bytes. Running sweeps append via
// CheckpointWriter instead; WriteFile is the compaction path — `pbbf
// sweep` calls it after a successful resumed run, so a completed run
// leaves a minimal, canonical journal instead of the accumulated
// append-only history (torn tails, whatever append order the worker pool
// produced).
func (c *Checkpoint) WriteFile(path string) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(checkpointHeader{
		Version: c.Version, Experiment: c.Experiment, Scale: c.Scale, Seed: c.Seed,
		Protocol: c.Protocol, EnergyJ: c.EnergyJ, HarvestW: c.HarvestW,
	}); err != nil {
		return err
	}
	keys := make([]string, 0, len(c.Results))
	for key := range c.Results {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if err := enc.Encode(checkpointEntry{Key: key, Result: c.Results[key]}); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// CheckpointWriter appends completed points to a checkpoint journal.
// Append is safe for concurrent use and costs one small write per point,
// so checkpointing never rewrites earlier results and workers only
// contend on the line write itself.
type CheckpointWriter struct {
	mu sync.Mutex
	f  *os.File
}

// OpenWriter opens the checkpoint's journal for appending, writing the
// identity header first when the file is new or empty. A torn final line
// left by a kill mid-append is truncated away first — appending directly
// after it would merge two entries into one invalid line and corrupt the
// journal for every later load.
func (c *Checkpoint) OpenWriter(path string) (*CheckpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size > 0 {
		if size, err = truncateTornTail(f, size); err != nil {
			f.Close()
			return nil, err
		}
	}
	if size == 0 {
		hdr, err := json.Marshal(checkpointHeader{
			Version: c.Version, Experiment: c.Experiment, Scale: c.Scale, Seed: c.Seed,
			Protocol: c.Protocol, EnergyJ: c.EnergyJ, HarvestW: c.HarvestW,
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, err
		}
	} else if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &CheckpointWriter{f: f}, nil
}

// truncateTornTail drops an unterminated final line from the journal:
// everything after the last newline is the torn remains of an append the
// writing process never finished. Returns the journal's size after the
// truncation.
func truncateTornTail(f *os.File, size int64) (int64, error) {
	const chunk = 64 << 10
	end := size
	for end > 0 {
		start := end - chunk
		if start < 0 {
			start = 0
		}
		buf := make([]byte, end-start)
		if _, err := f.ReadAt(buf, start); err != nil {
			return 0, err
		}
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			keep := start + int64(i) + 1
			if keep == size {
				return size, nil // journal already ends cleanly
			}
			return keep, f.Truncate(keep)
		}
		end = start
	}
	// No newline anywhere: the whole file is one torn header write.
	return 0, f.Truncate(0)
}

// Append journals one completed point.
func (w *CheckpointWriter) Append(key string, res Result) error {
	line, err := json.Marshal(checkpointEntry{Key: key, Result: res})
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err = w.f.Write(append(line, '\n'))
	return err
}

// Close closes the journal.
func (w *CheckpointWriter) Close() error {
	return w.f.Close()
}
