package scenario

import (
	"fmt"
	"sort"
	"strings"

	"pbbf/internal/match"
)

// Registry holds the scenarios a binary can run, in registration
// (presentation) order. The zero value is not usable; construct with
// NewRegistry.
type Registry struct {
	order []string
	byID  map[string]Scenario
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]Scenario)}
}

// Register validates the scenario and adds it. Duplicate IDs (after
// normalization) and structurally invalid scenarios are rejected.
func (r *Registry) Register(sc Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	id := normalizeID(sc.ID)
	if id != sc.ID {
		return fmt.Errorf("scenario: ID %q not lower-case/trimmed", sc.ID)
	}
	if _, dup := r.byID[id]; dup {
		return fmt.Errorf("scenario: duplicate ID %q", id)
	}
	if len(sc.Protocols) == 0 {
		// Every scenario predating the protocol interface simulates PBBF.
		sc.Protocols = []string{"pbbf"}
	}
	r.byID[id] = sc
	r.order = append(r.order, id)
	return nil
}

// MustRegister is Register for static registration lists; it panics on
// error, which turns a bad registration into a startup failure every test
// run catches.
func (r *Registry) MustRegister(sc Scenario) {
	if err := r.Register(sc); err != nil {
		panic(err)
	}
}

// All returns every scenario in registration order.
func (r *Registry) All() []Scenario {
	out := make([]Scenario, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id])
	}
	return out
}

// Len returns the number of registered scenarios.
func (r *Registry) Len() int { return len(r.order) }

// ByID looks a scenario up, tolerating case and surrounding space. Unknown
// IDs fail with a did-you-mean list of the closest registered IDs (falling
// back to the full listing when nothing is close), so a typo'd
// `pbbf -experiment figg8` exits with an actionable message.
func (r *Registry) ByID(id string) (Scenario, error) {
	if sc, ok := r.byID[normalizeID(id)]; ok {
		return sc, nil
	}
	if close := r.Suggest(id); len(close) > 0 {
		return Scenario{}, fmt.Errorf("scenario: unknown id %q (did you mean %s?)", id, strings.Join(close, ", "))
	}
	ids := make([]string, len(r.order))
	copy(ids, r.order)
	sort.Strings(ids)
	return Scenario{}, fmt.Errorf("scenario: unknown id %q (known: %s)", id, strings.Join(ids, ", "))
}

// Suggest returns up to three registered IDs close to the given (unknown)
// ID, nearest first: prefix matches, then small edit distances. An empty
// slice means nothing plausible is registered. The ranking lives in
// internal/match, shared with the protocol-name lookup so every registry
// in the binary speaks the same did-you-mean dialect.
func (r *Registry) Suggest(id string) []string {
	return match.Closest(normalizeID(id), r.order, 3)
}

func normalizeID(id string) string {
	return strings.ToLower(strings.TrimSpace(id))
}
