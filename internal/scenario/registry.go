package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// Registry holds the scenarios a binary can run, in registration
// (presentation) order. The zero value is not usable; construct with
// NewRegistry.
type Registry struct {
	order []string
	byID  map[string]Scenario
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]Scenario)}
}

// Register validates the scenario and adds it. Duplicate IDs (after
// normalization) and structurally invalid scenarios are rejected.
func (r *Registry) Register(sc Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	id := normalizeID(sc.ID)
	if id != sc.ID {
		return fmt.Errorf("scenario: ID %q not lower-case/trimmed", sc.ID)
	}
	if _, dup := r.byID[id]; dup {
		return fmt.Errorf("scenario: duplicate ID %q", id)
	}
	r.byID[id] = sc
	r.order = append(r.order, id)
	return nil
}

// MustRegister is Register for static registration lists; it panics on
// error, which turns a bad registration into a startup failure every test
// run catches.
func (r *Registry) MustRegister(sc Scenario) {
	if err := r.Register(sc); err != nil {
		panic(err)
	}
}

// All returns every scenario in registration order.
func (r *Registry) All() []Scenario {
	out := make([]Scenario, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id])
	}
	return out
}

// Len returns the number of registered scenarios.
func (r *Registry) Len() int { return len(r.order) }

// ByID looks a scenario up, tolerating case and surrounding space. Unknown
// IDs fail with a did-you-mean list of the closest registered IDs (falling
// back to the full listing when nothing is close), so a typo'd
// `pbbf -experiment figg8` exits with an actionable message.
func (r *Registry) ByID(id string) (Scenario, error) {
	if sc, ok := r.byID[normalizeID(id)]; ok {
		return sc, nil
	}
	if close := r.Suggest(id); len(close) > 0 {
		return Scenario{}, fmt.Errorf("scenario: unknown id %q (did you mean %s?)", id, strings.Join(close, ", "))
	}
	ids := make([]string, len(r.order))
	copy(ids, r.order)
	sort.Strings(ids)
	return Scenario{}, fmt.Errorf("scenario: unknown id %q (known: %s)", id, strings.Join(ids, ", "))
}

// Suggest returns up to three registered IDs close to the given (unknown)
// ID, nearest first: prefix matches, then small edit distances. An empty
// slice means nothing plausible is registered.
func (r *Registry) Suggest(id string) []string {
	id = normalizeID(id)
	if id == "" {
		return nil
	}
	type candidate struct {
		id   string
		dist int
	}
	var cands []candidate
	for _, known := range r.order {
		d := editDistance(id, known)
		// Accept near misses (≤2 edits), or ≤3 for longer IDs, or a
		// shared prefix of at least three characters ("extclu" → the
		// extcluster family).
		limit := 2
		if len(known) >= 8 {
			limit = 3
		}
		if d <= limit || (len(id) >= 3 && strings.HasPrefix(known, id)) {
			cands = append(cands, candidate{known, d})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	if len(cands) > 3 {
		cands = cands[:3]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// editDistance is the Levenshtein distance between two short IDs.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func normalizeID(id string) string {
	return strings.ToLower(strings.TrimSpace(id))
}
