package scenario

import (
	"strings"
	"testing"

	"pbbf/internal/stats"
)

func suggestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	for _, id := range []string{"fig8", "fig9", "fig18", "extcluster", "extchurn", "table1"} {
		r.MustRegister(Scenario{
			ID: id, Title: "t", Artifact: "a", Summary: "s",
			TableFn: func(Scale) (*stats.Table, error) { return &stats.Table{}, nil },
		})
	}
	return r
}

func TestSuggestRanksClosestFirst(t *testing.T) {
	r := suggestRegistry(t)
	got := r.Suggest("figg8")
	if len(got) == 0 || got[0] != "fig8" {
		t.Fatalf("Suggest(figg8) = %v, want fig8 first", got)
	}
	if len(got) > 3 {
		t.Fatalf("Suggest returned %d candidates, cap is 3", len(got))
	}
}

func TestSuggestPrefixesMatch(t *testing.T) {
	r := suggestRegistry(t)
	got := r.Suggest("extc")
	joined := strings.Join(got, ",")
	if !strings.Contains(joined, "extcluster") || !strings.Contains(joined, "extchurn") {
		t.Fatalf("Suggest(extc) = %v, want the extc* family", got)
	}
}

func TestSuggestNothingClose(t *testing.T) {
	r := suggestRegistry(t)
	for _, q := range []string{"zzzzzzzz", ""} {
		if got := r.Suggest(q); len(got) != 0 {
			t.Fatalf("Suggest(%q) = %v, want none", q, got)
		}
	}
}

func TestByIDErrorCarriesSuggestions(t *testing.T) {
	r := suggestRegistry(t)
	_, err := r.ByID("figg8")
	if err == nil || !strings.Contains(err.Error(), "did you mean") || !strings.Contains(err.Error(), "fig8") {
		t.Fatalf("ByID(figg8) error lacks suggestion: %v", err)
	}
	_, err = r.ByID("qqqqqq")
	if err == nil || !strings.Contains(err.Error(), "known:") {
		t.Fatalf("ByID(qqqqqq) error lacks the known list: %v", err)
	}
}
