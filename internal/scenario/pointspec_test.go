package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// specScenario is a minimal point-based scenario for wire-format tests.
func specScenario() Scenario {
	return Scenario{
		ID: "spec", Title: "spec scenario", Artifact: "extension",
		Summary: "point-spec test scenario",
		Params:  []ParamDoc{{Name: "p", Desc: "probability"}},
		XLabel:  "x", YLabel: "y",
		Points: func(s Scale) ([]Point, error) {
			return []Point{{Series: "a", X: 1, Params: map[string]float64{"p": 0.25}}}, nil
		},
		RunPoint: func(s Scale, pt Point) (Result, error) {
			// Seed-dependent so a spec that dropped the scale would show.
			return Result{Y: pt.X + float64(s.Seed)/1000, Delivery: 1}, nil
		},
	}
}

func TestPointSpecRoundTrip(t *testing.T) {
	sc := specScenario()
	s := Quick()
	s.Seed = 42
	pts, err := sc.Points(s)
	if err != nil {
		t.Fatal(err)
	}
	spec := NewPointSpec(sc, s, pts[0])
	if err := spec.Verify(); err != nil {
		t.Fatal(err)
	}

	// JSON round-trip must preserve the identity exactly: the re-derived
	// key on the far side must match the carried one.
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var got PointSpec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("round-tripped spec fails verification: %v", err)
	}
	if got.Key != spec.Key {
		t.Fatalf("key changed across the wire: %q vs %q", got.Key, spec.Key)
	}

	reg := NewRegistry()
	reg.MustRegister(sc)
	res, err := got.Run(reg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.RunPoint(s, pts[0])
	if err != nil {
		t.Fatal(err)
	}
	if res != want {
		t.Fatalf("remote result %+v differs from local %+v", res, want)
	}
}

func TestPointSpecVerifyCatchesTampering(t *testing.T) {
	sc := specScenario()
	s := Quick()
	pts, _ := sc.Points(s)
	spec := NewPointSpec(sc, s, pts[0])

	// A changed seed (a different computation) must not pass under the old
	// key — this is the coordinator/worker skew guard.
	tampered := spec
	tampered.Scale.Seed = 999
	if err := tampered.Verify(); err == nil || !strings.Contains(err.Error(), "key mismatch") {
		t.Fatalf("seed change passed verification: %v", err)
	}
	missing := spec
	missing.Key = ""
	if err := missing.Verify(); err == nil {
		t.Fatal("empty key passed verification")
	}
}

func TestPointSpecRunErrors(t *testing.T) {
	sc := specScenario()
	s := Quick()
	pts, _ := sc.Points(s)
	spec := NewPointSpec(sc, s, pts[0])

	if _, err := spec.Run(nil); err == nil {
		t.Fatal("nil registry accepted")
	}
	empty := NewRegistry()
	if _, err := spec.Run(empty); err == nil {
		t.Fatal("unknown scenario accepted")
	}

	reg := NewRegistry()
	reg.MustRegister(sc)
	bad := spec
	bad.Scale.GridW = -1
	bad.Key = PointKey(bad.ScenarioID, bad.Scale, bad.Point) // re-key so Verify passes
	if _, err := bad.Run(reg); err == nil {
		t.Fatal("invalid scale accepted")
	}
}
