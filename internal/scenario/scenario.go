// Package scenario is the unified experiment engine: it defines what a
// runnable scenario is (an identifier, metadata, a parameter space, and a
// per-point run function), a registry that holds every scenario the binary
// knows about, and a parallel runner that fans every parameter point of
// every selected scenario out across one bounded worker pool
// (internal/sweep) with deterministic, index-ordered assembly.
//
// The layering is:
//
//	core/mac/phy/...  →  idealsim, netsim     (simulation engines)
//	idealsim, netsim  →  experiments          (scenario definitions)
//	experiments       →  scenario.Registry    (registration + metadata)
//	scenario.RunAll   →  cmd/pbbf, tests      (parallel execution, output)
//
// Adding a workload means registering one Scenario value: the engine takes
// care of concurrency, seeding conventions, table assembly, and the
// table/CSV/JSON output paths.
package scenario

import (
	"context"
	"fmt"

	"pbbf/internal/stats"
)

// ParamDoc documents one dimension of a scenario's parameter space. The
// registry requires every point-based scenario to document each parameter
// it emits in Point.Params.
type ParamDoc struct {
	// Name is the key used in Point.Params.
	Name string `json:"name"`
	// Desc says what the parameter means and what range it sweeps.
	Desc string `json:"desc"`
}

// Point is one coordinate assignment in a scenario's parameter space: one
// simulated data point of one plotted line.
type Point struct {
	// Series names the plotted line this point belongs to.
	Series string `json:"series"`
	// X is the point's x coordinate in the output table.
	X float64 `json:"x"`
	// Params is the full parameter assignment, keyed by ParamDoc names.
	Params map[string]float64 `json:"params"`
}

// Result is the common shape of one simulated point: the plotted value
// plus the standard energy/latency/delivery triple every broadcast
// scenario in this repository can report. The triple feeds the JSON
// output so dashboards can cut across scenarios without knowing each
// figure's y axis.
type Result struct {
	// Y is the value plotted on the scenario's y axis.
	Y float64 `json:"y"`
	// Skip marks a point that produced no data (omitted from the series).
	Skip bool `json:"skip,omitempty"`
	// EnergyJ is joules consumed per update sent at the source (0 when the
	// scenario does not measure energy).
	EnergyJ float64 `json:"energy_j,omitempty"`
	// LatencyS is the scenario's latency metric in seconds (0 when not
	// measured).
	LatencyS float64 `json:"latency_s,omitempty"`
	// Delivery is the delivered fraction in [0,1] (0 when not measured).
	Delivery float64 `json:"delivery,omitempty"`

	// Network-lifetime block, populated only on finite-energy workloads
	// (all zero — and omitted from the wire — on the infinite-battery
	// runs that existed before the energy axis).
	//
	// FirstDeathS and HalfDeadS are censored at the simulation horizon.
	FirstDeathS float64 `json:"first_death_s,omitempty"`
	HalfDeadS   float64 `json:"half_dead_s,omitempty"`
	// AliveFrac is the alive-node fraction at the horizon.
	AliveFrac float64 `json:"alive_frac,omitempty"`
	// Depleted is the mean battery-depletion death count per run.
	Depleted float64 `json:"depleted,omitempty"`
	// EnergyVarJ2 is the population variance of per-node consumed joules
	// — how (un)evenly the protocol spreads its spending.
	EnergyVarJ2 float64 `json:"energy_var_j2,omitempty"`
}

// Scenario is one registrable workload. Exactly one execution mode must be
// set: either the point-based pair (Points + RunPoint), which the engine
// parallelizes per parameter point, or TableFn for artifacts that are
// static or analytic (Table 1/2, closed-form curves) and produce their
// table directly.
type Scenario struct {
	// ID is the short handle used by the CLI ("fig4", "table1", ...).
	ID string `json:"id"`
	// Title describes the regenerated artifact.
	Title string `json:"title"`
	// Artifact maps the scenario to the paper: "Table 1", "Figure 8",
	// "extension" for beyond-the-paper scenarios.
	Artifact string `json:"artifact"`
	// Summary is one or two sentences of metadata for -list and the docs.
	Summary string `json:"summary"`
	// Params documents the scenario's parameter space.
	Params []ParamDoc `json:"params,omitempty"`
	// XLabel and YLabel name the output table's columns.
	XLabel string `json:"x_label"`
	YLabel string `json:"y_label"`
	// Protocols lists the broadcast protocols the scenario exercises, for
	// -list and the HTTP scenario metadata. The registry fills the default
	// (PBBF only) at registration; scenarios that sweep or pin something
	// else declare it themselves.
	Protocols []string `json:"protocols,omitempty"`

	// Points enumerates the parameter space at the given scale.
	Points func(Scale) ([]Point, error) `json:"-"`
	// RunPoint simulates one point. It must derive all randomness from
	// Scale.Seed (via PointSeed) so points are order-independent.
	RunPoint func(Scale, Point) (Result, error) `json:"-"`
	// RunPointCtx is RunPoint for scenarios that want the worker context —
	// in particular sweep.Locals, where the engine's workers cache
	// simulation pools across the points they claim. Set exactly one of
	// RunPoint and RunPointCtx; the context never changes the result, only
	// how much the computation allocates.
	RunPointCtx func(context.Context, Scale, Point) (Result, error) `json:"-"`
	// TableFn produces the whole table directly (static/analytic artifacts).
	TableFn func(Scale) (*stats.Table, error) `json:"-"`
	// Localize, when set on a point-based scenario, rewrites the assembled
	// table's title and axis labels for the scale that actually ran (e.g.
	// Figures 9/10 embed the scale's tracked hop distance). TableFn
	// scenarios control their table directly and ignore it.
	Localize func(Scale, *stats.Table) `json:"-"`
}

// Validate checks the scenario's structural and metadata completeness
// requirements for registration.
func (sc Scenario) Validate() error {
	if sc.ID == "" {
		return fmt.Errorf("scenario: empty ID")
	}
	if sc.Title == "" || sc.Artifact == "" || sc.Summary == "" {
		return fmt.Errorf("scenario %s: missing metadata (title/artifact/summary)", sc.ID)
	}
	pointBased := sc.Points != nil || sc.RunPoint != nil || sc.RunPointCtx != nil
	if pointBased && (sc.Points == nil || (sc.RunPoint == nil && sc.RunPointCtx == nil)) {
		return fmt.Errorf("scenario %s: Points and RunPoint/RunPointCtx must be set together", sc.ID)
	}
	if sc.RunPoint != nil && sc.RunPointCtx != nil {
		return fmt.Errorf("scenario %s: RunPoint and RunPointCtx are mutually exclusive", sc.ID)
	}
	if pointBased == (sc.TableFn != nil) {
		return fmt.Errorf("scenario %s: exactly one of Points/RunPoint or TableFn must be set", sc.ID)
	}
	if pointBased {
		if len(sc.Params) == 0 {
			return fmt.Errorf("scenario %s: point-based scenario must document its parameters", sc.ID)
		}
		if sc.XLabel == "" || sc.YLabel == "" {
			return fmt.Errorf("scenario %s: missing axis labels", sc.ID)
		}
	}
	for _, p := range sc.Params {
		if p.Name == "" || p.Desc == "" {
			return fmt.Errorf("scenario %s: incomplete parameter doc %+v", sc.ID, p)
		}
	}
	return nil
}

// PointBased reports whether the scenario runs through the per-point path.
func (sc Scenario) PointBased() bool {
	return sc.RunPoint != nil || sc.RunPointCtx != nil
}

// ComputePoint simulates one parameter point through whichever entry point
// the scenario defines. ctx only carries execution environment (the sweep
// worker's pool cache); it cannot change the computed result.
func (sc Scenario) ComputePoint(ctx context.Context, s Scale, pt Point) (Result, error) {
	if sc.RunPointCtx != nil {
		return sc.RunPointCtx(ctx, s, pt)
	}
	if sc.RunPoint == nil {
		return Result{}, fmt.Errorf("scenario %s: not point-based", sc.ID)
	}
	return sc.RunPoint(s, pt)
}

// paramDoc returns whether the scenario documents the named parameter.
func (sc Scenario) paramDoc(name string) bool {
	for _, p := range sc.Params {
		if p.Name == name {
			return true
		}
	}
	return false
}
