package scenario

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"pbbf/internal/stats"
)

func TestRunAllCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunAllCtx(ctx, []Scenario{fake("cancel")}, Quick(), RunOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunAllCtxIntercept(t *testing.T) {
	s := Quick()
	sc := fake("memo")
	want, err := RunAll([]Scenario{sc}, s, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Record every result on the first pass, then replay the recording on
	// the second: zero computations, identical output, Cached events.
	recorded := make(map[string]Result)
	var computes atomic.Int32
	runWith := func(replay bool) ([]Output, []PointEvent) {
		var events []PointEvent
		outs, err := RunAllCtx(context.Background(), []Scenario{sc}, s, RunOptions{
			Workers: 3,
			Intercept: func(sc Scenario, pt Point, compute func() (Result, error)) (Result, bool, error) {
				key := PointKey(sc.ID, s, pt)
				if replay {
					res, ok := recorded[key]
					if !ok {
						t.Errorf("point %s not recorded", pt.Label())
					}
					return res, true, nil
				}
				computes.Add(1)
				res, err := compute()
				recorded[key] = res
				return res, false, err
			},
			OnPoint: func(ev PointEvent) { events = append(events, ev) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return outs, events
	}

	outs, events := runWith(false)
	if !reflect.DeepEqual(outs[0].Table, want[0].Table) {
		t.Fatal("intercepted run changed the table")
	}
	if got := computes.Load(); got != 6 {
		t.Fatalf("computed %d points, want 6", got)
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	seen := make(map[int]bool)
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != 6 {
			t.Fatalf("event %d has Done/Total %d/%d", i, ev.Done, ev.Total)
		}
		if ev.Cached {
			t.Fatalf("fresh computation flagged cached: %+v", ev)
		}
		if ev.Point == nil || ev.ScenarioID != "memo" {
			t.Fatalf("malformed event %+v", ev)
		}
		seen[ev.Index] = true
	}
	for i := 0; i < 6; i++ {
		if !seen[i] {
			t.Fatalf("no event for job index %d", i)
		}
	}

	outs, events = runWith(true)
	if !reflect.DeepEqual(outs[0].Table, want[0].Table) {
		t.Fatal("replayed run changed the table")
	}
	if got := computes.Load(); got != 6 {
		t.Fatalf("replay recomputed (%d total computes)", got)
	}
	for _, ev := range events {
		if !ev.Cached {
			t.Fatalf("replayed event not flagged cached: %+v", ev)
		}
	}
}

func TestRunAllCtxTableEvents(t *testing.T) {
	static := Scenario{
		ID: "static", Title: "static", Artifact: "Table 9", Summary: "static table",
		TableFn: func(Scale) (*stats.Table, error) {
			tbl := &stats.Table{Title: "static", XLabel: "x", YLabel: "y"}
			tbl.AddSeries("s").Append(1, 2)
			return tbl, nil
		},
	}
	var events []PointEvent
	outs, err := RunAllCtx(context.Background(), []Scenario{static}, Quick(), RunOptions{
		Workers: 1,
		OnPoint: func(ev PointEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Table == nil || events[0].Point != nil {
		t.Fatalf("TableFn events wrong: %+v", events)
	}
	if outs[0].Table.Title != "static" {
		t.Fatalf("table lost: %+v", outs[0])
	}
}

func TestPointLabel(t *testing.T) {
	pt := Point{Series: "g=10", X: 0.5, Params: map[string]float64{"q": 0.3, "p": 0.05}}
	if got, want := pt.Label(), `series "g=10" x=0.5 [p=0.05 q=0.3]`; got != want {
		t.Fatalf("Label() = %q, want %q", got, want)
	}
	bare := Point{Series: "a", X: 2}
	if got, want := bare.Label(), `series "a" x=2`; got != want {
		t.Fatalf("Label() = %q, want %q", got, want)
	}
}

func TestInterceptErrorAttribution(t *testing.T) {
	sc := fake("inter")
	_, err := RunAllCtx(context.Background(), []Scenario{sc}, Quick(), RunOptions{
		Workers: 1,
		Intercept: func(sc Scenario, pt Point, compute func() (Result, error)) (Result, bool, error) {
			return Result{}, false, fmt.Errorf("store unavailable")
		},
	})
	if err == nil || !strings.Contains(err.Error(), "inter: point series") {
		t.Fatalf("intercept error not attributed: %v", err)
	}
}
