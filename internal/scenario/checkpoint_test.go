package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt.json")
	cp := NewCheckpoint("all", "quick", 7, "")
	cp.Results["k1"] = Result{Y: 1.5, EnergyJ: 2, Delivery: 1}
	cp.Results["k2"] = Result{Skip: true}
	if err := cp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if back == nil || !reflect.DeepEqual(cp, back) {
		t.Fatalf("round trip lost data:\n%+v\nvs\n%+v", cp, back)
	}
	// The atomic write must not leave temporaries behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files after atomic write: %v", entries)
	}
}

func TestCheckpointMissingFileIsFresh(t *testing.T) {
	cp, err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || cp != nil {
		t.Fatalf("missing file: cp=%v err=%v, want nil/nil", cp, err)
	}
}

func TestCheckpointRejectsCorruptAndWrongVersion(t *testing.T) {
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(corrupt); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}

	old := filepath.Join(dir, "old.json")
	cp := NewCheckpoint("all", "quick", 1, "")
	cp.Version = CheckpointVersion + 1
	if err := cp.WriteFile(old); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(old); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
}

func TestCheckpointWriterAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ckpt")
	cp := NewCheckpoint("all", "quick", 1, "")
	w, err := cp.OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("k1", Result{Y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("k2", Result{Y: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 2 || back.Results["k2"].Y != 2 {
		t.Fatalf("journal lost entries: %+v", back.Results)
	}

	// Reopening must append after the existing entries, not re-header.
	w, err = back.OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("k3", Result{Y: 3}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	back, err = LoadCheckpoint(path)
	if err != nil || len(back.Results) != 3 {
		t.Fatalf("resumed journal: %+v err=%v", back, err)
	}
}

// TestCheckpointToleratesTornFinalLine simulates a kill mid-append: the
// truncated trailing entry is skipped, everything before it survives.
func TestCheckpointToleratesTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	cp := NewCheckpoint("all", "quick", 1, "")
	w, err := cp.OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("k1", Result{Y: 1}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"k2","res`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	back, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("torn final line rejected: %v", err)
	}
	if len(back.Results) != 1 || back.Results["k1"].Y != 1 {
		t.Fatalf("intact entries lost: %+v", back.Results)
	}

	// Resuming after a torn line must drop it before appending: merging
	// new entries onto the torn remains would corrupt the journal for
	// every later load.
	w, err = back.OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("k3", Result{Y: 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("k4", Result{Y: 4}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	back, err = LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("journal corrupted by resume-after-torn: %v", err)
	}
	if len(back.Results) != 3 || back.Results["k3"].Y != 3 || back.Results["k4"].Y != 4 {
		t.Fatalf("resume-after-torn lost entries: %+v", back.Results)
	}

	// Corruption before the end is real corruption, not a torn write.
	mid := filepath.Join(t.TempDir(), "mid.ckpt")
	cp2 := NewCheckpoint("all", "quick", 1, "")
	if err := cp2.WriteFile(mid); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(mid)
	data = append(data, []byte("{garbage\n{\"key\":\"k9\",\"result\":{\"y\":9}}\n")...)
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(mid); err == nil {
		t.Fatal("mid-journal corruption accepted")
	}
}

// TestCheckpointCompaction: WriteFile is the compaction path — it must
// emit a canonical journal (header + sorted entries, same bytes for the
// same result set) and erase a torn tail left by a kill.
func TestCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	cp := NewCheckpoint("all", "quick", 1, "")
	w, err := cp.OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append in non-sorted order, as a parallel pool would.
	for _, k := range []string{"kz", "ka", "km"} {
		if err := w.Append(k, Result{Y: float64(len(k))}); err != nil {
			t.Fatal(err)
		}
		cp.Results[k] = Result{Y: float64(len(k))}
	}
	w.Close()
	// Simulate a kill mid-append: a torn tail the compaction must drop.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	grown, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := cp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	compact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(compact)) >= grown.Size() {
		t.Fatalf("compaction did not shrink the journal: %d -> %d bytes", grown.Size(), len(compact))
	}
	lines := strings.Split(strings.TrimRight(string(compact), "\n"), "\n")
	if len(lines) != 4 { // header + one line per unique key
		t.Fatalf("compacted journal has %d lines:\n%s", len(lines), compact)
	}
	// Entries must be in sorted-key order so identical result sets always
	// compact to identical bytes.
	for i, want := range []string{"ka", "km", "kz"} {
		if !strings.Contains(lines[i+1], `"key":"`+want+`"`) {
			t.Fatalf("line %d not %q:\n%s", i+1, want, compact)
		}
	}
	if err := cp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(compact) {
		t.Fatal("compaction output not deterministic")
	}
	back, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Results, cp.Results) {
		t.Fatalf("compaction lost results: %+v vs %+v", back.Results, cp.Results)
	}
}

func TestCheckpointMatches(t *testing.T) {
	cp := NewCheckpoint("all", "quick", 1, "")
	if err := cp.Matches("all", "quick", 1, ""); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		exp, scale string
		seed       uint64
		proto      string
	}{
		{"fig8", "quick", 1, ""},
		{"all", "paper", 1, ""},
		{"all", "quick", 2, ""},
		{"all", "quick", 1, "ola"},
	} {
		if err := cp.Matches(c.exp, c.scale, c.seed, c.proto); err == nil {
			t.Fatalf("mismatched identity %+v accepted", c)
		}
	}
}

// TestCheckpointIdentityEnergy: the energy axis is part of the run
// identity — a default-axis checkpoint must not resume a finite-energy
// sweep or vice versa — while the default axis stays interchangeable with
// the deprecated four-field constructors (old journals keep loading).
func TestCheckpointIdentityEnergy(t *testing.T) {
	id := Identity{Experiment: "all", Scale: "quick", Seed: 1}
	cp := NewCheckpointFor(id)
	if err := cp.MatchesIdentity(id); err != nil {
		t.Fatal(err)
	}
	if err := cp.Matches("all", "quick", 1, ""); err != nil {
		t.Fatalf("deprecated Matches rejected the default axis: %v", err)
	}
	energized := id
	energized.EnergyJ = 1.5
	if err := cp.MatchesIdentity(energized); err == nil {
		t.Fatal("default-axis checkpoint accepted a finite-energy workload")
	}
	harvest := energized
	harvest.HarvestW = 0.005
	ecp := NewCheckpointFor(energized)
	if err := ecp.MatchesIdentity(harvest); err == nil {
		t.Fatal("harvest-free checkpoint accepted a harvesting workload")
	}
	if err := ecp.MatchesIdentity(energized); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointHeaderBackCompat: a default-axis header written today must
// byte-match the pre-energy format (omitempty keeps old builds reading new
// defaults and vice versa), and a finite-energy header must round-trip.
func TestCheckpointHeaderBackCompat(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.ckpt")
	cp := NewCheckpoint("all", "quick", 7, "")
	if err := cp.WriteFile(plain); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := `{"version":1,"experiment":"all","scale":"quick","seed":7}` + "\n"
	if string(data) != wantHeader {
		t.Fatalf("default header changed — old journals orphaned:\ngot  %q\nwant %q", data, wantHeader)
	}

	keyed := filepath.Join(dir, "energy.ckpt")
	id := Identity{Experiment: "all", Scale: "quick", Seed: 7, EnergyJ: 1.5, HarvestW: 0.005}
	ecp := NewCheckpointFor(id)
	ecp.Results["k"] = Result{Y: 2}
	if err := ecp.WriteFile(keyed); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCheckpoint(keyed)
	if err != nil {
		t.Fatal(err)
	}
	if back == nil || back.Identity != id {
		t.Fatalf("energy identity lost in round trip: %+v", back)
	}
}
