package scenario

import (
	"fmt"

	"pbbf/internal/stats"
	"pbbf/internal/sweep"
)

// PointOutput pairs one enumerated point with its simulated result — the
// per-point record behind the JSON output.
type PointOutput struct {
	Point
	Result Result `json:"result"`
}

// Output is one scenario's complete run: the assembled table plus, for
// point-based scenarios, every point's result.
type Output struct {
	// Scenario carries the metadata of the scenario that ran.
	Scenario Scenario `json:"scenario"`
	// Table is the assembled figure/table data.
	Table *stats.Table `json:"table"`
	// Points holds the per-point results (nil for TableFn scenarios).
	Points []PointOutput `json:"points,omitempty"`
}

// Run executes one scenario at the given scale and returns its table,
// fanning its parameter points out across the default worker pool.
func Run(sc Scenario, s Scale) (*stats.Table, error) {
	outs, err := RunAll([]Scenario{sc}, s, 0)
	if err != nil {
		return nil, err
	}
	return outs[0].Table, nil
}

// RunAll executes the given scenarios at one scale. Every parameter point
// of every point-based scenario — and every TableFn — becomes one job in a
// single flattened sweep.Map call, so `-experiment all` saturates the
// worker pool across figure boundaries instead of running figures one at a
// time. Output order matches the input order and is fully deterministic:
// points are enumerated scenario by scenario, results are assembled by
// index, and errors surface from the smallest failing job index.
// workers <= 0 selects GOMAXPROCS.
func RunAll(scenarios []Scenario, s Scale, workers int) ([]Output, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	type job struct {
		si int // scenario index
		pi int // point index; -1 runs the scenario's TableFn
	}
	var jobs []job
	points := make([][]Point, len(scenarios))
	for si, sc := range scenarios {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		if sc.TableFn != nil {
			jobs = append(jobs, job{si, -1})
			continue
		}
		pts, err := sc.Points(s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.ID, err)
		}
		for _, pt := range pts {
			if pt.Series == "" {
				return nil, fmt.Errorf("%s: point %+v has no series", sc.ID, pt)
			}
			for name := range pt.Params {
				if !sc.paramDoc(name) {
					return nil, fmt.Errorf("%s: point parameter %q undocumented", sc.ID, name)
				}
			}
		}
		points[si] = pts
		for pi := range pts {
			jobs = append(jobs, job{si, pi})
		}
	}

	type jobOut struct {
		table *stats.Table // TableFn jobs
		res   Result       // point jobs
	}
	results, err := sweep.Map(len(jobs), workers, func(i int) (jobOut, error) {
		j := jobs[i]
		sc := scenarios[j.si]
		if j.pi < 0 {
			tbl, err := sc.TableFn(s)
			if err != nil {
				return jobOut{}, fmt.Errorf("%s: %w", sc.ID, err)
			}
			return jobOut{table: tbl}, nil
		}
		res, err := sc.RunPoint(s, points[j.si][j.pi])
		if err != nil {
			return jobOut{}, fmt.Errorf("%s: %w", sc.ID, err)
		}
		return jobOut{res: res}, nil
	})
	if err != nil {
		return nil, err
	}

	outs := make([]Output, len(scenarios))
	for si, sc := range scenarios {
		outs[si] = Output{Scenario: sc}
	}
	for ji, j := range jobs {
		out := &outs[j.si]
		if j.pi < 0 {
			out.Table = results[ji].table
			continue
		}
		out.Points = append(out.Points, PointOutput{
			Point:  points[j.si][j.pi],
			Result: results[ji].res,
		})
	}
	for si := range outs {
		if outs[si].Table != nil {
			continue // TableFn scenario
		}
		outs[si].Table = assemble(scenarios[si], outs[si].Points)
		if loc := scenarios[si].Localize; loc != nil {
			loc(s, outs[si].Table)
		}
	}
	return outs, nil
}

// assemble folds per-point results into the scenario's output table.
// Series appear in first-point order; points append in enumeration order,
// so the table is identical however the jobs were scheduled.
func assemble(sc Scenario, pts []PointOutput) *stats.Table {
	tbl := &stats.Table{Title: sc.Title, XLabel: sc.XLabel, YLabel: sc.YLabel}
	series := make(map[string]*stats.Series)
	for _, po := range pts {
		line, ok := series[po.Series]
		if !ok {
			line = tbl.AddSeries(po.Series)
			series[po.Series] = line
		}
		if !po.Result.Skip {
			line.Append(po.X, po.Result.Y)
		}
	}
	return tbl
}
