package scenario

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"pbbf/internal/stats"
	"pbbf/internal/sweep"
)

// PointOutput pairs one enumerated point with its simulated result — the
// per-point record behind the JSON output.
type PointOutput struct {
	Point
	Result Result `json:"result"`
}

// Output is one scenario's complete run: the assembled table plus, for
// point-based scenarios, every point's result.
type Output struct {
	// Scenario carries the metadata of the scenario that ran.
	Scenario Scenario `json:"scenario"`
	// Table is the assembled figure/table data.
	Table *stats.Table `json:"table"`
	// Points holds the per-point results (nil for TableFn scenarios).
	Points []PointOutput `json:"points,omitempty"`
}

// PointEvent reports one completed job of a run to RunOptions.OnPoint.
// Exactly one of Point or Table is non-nil: Point for a parameter point,
// Table for a TableFn scenario's whole artifact.
type PointEvent struct {
	// ScenarioID names the scenario the job belongs to.
	ScenarioID string
	// Index is the job's position in the flattened run — the deterministic
	// enumeration order (scenario by scenario, point by point). Consumers
	// that need ordered delivery can reorder on it.
	Index int
	// Done and Total count completed jobs and the run's job count.
	Done, Total int
	// Point is the completed point with its result (nil for TableFn jobs).
	Point *PointOutput
	// Table is the completed TableFn artifact (nil for point jobs).
	Table *stats.Table
	// Cached reports that the result came from RunOptions.Intercept's
	// record rather than a fresh computation.
	Cached bool
}

// RunOptions tunes a RunAllCtx call beyond the scale itself.
type RunOptions struct {
	// Workers sizes the sweep pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Intercept, when non-nil, wraps every point computation. It may
	// return a previously recorded result (recorded=true) instead of
	// calling compute — the hook behind the result cache and resumable
	// checkpoints. It is called concurrently from worker goroutines and
	// must be safe for concurrent use. TableFn jobs are deliberately not
	// intercepted: the static/analytic artifacts (Table 1/2, closed-form
	// curves) are sub-millisecond and recompute on every run.
	Intercept func(sc Scenario, pt Point, compute func() (Result, error)) (res Result, recorded bool, err error)
	// OnPoint, when non-nil, is invoked after each job completes. Calls
	// are serialized by the engine (no locking needed inside) but arrive
	// in completion order, not enumeration order.
	OnPoint func(PointEvent)
}

// Run executes one scenario at the given scale and returns its table,
// fanning its parameter points out across the default worker pool.
func Run(sc Scenario, s Scale) (*stats.Table, error) {
	outs, err := RunAll([]Scenario{sc}, s, 0)
	if err != nil {
		return nil, err
	}
	return outs[0].Table, nil
}

// RunAll executes the given scenarios at one scale with the given worker
// count (<= 0 selects GOMAXPROCS). It is RunAllCtx without cancellation or
// hooks — the batch path used by the CLI, benchmarks, and tests.
func RunAll(scenarios []Scenario, s Scale, workers int) ([]Output, error) {
	return RunAllCtx(context.Background(), scenarios, s, RunOptions{Workers: workers})
}

// RunAllCtx executes the given scenarios at one scale. Every parameter
// point of every point-based scenario — and every TableFn — becomes one job
// in a single flattened sweep.MapCtx call, so `-experiment all` saturates
// the worker pool across figure boundaries instead of running figures one
// at a time. Output order matches the input order and is fully
// deterministic: points are enumerated scenario by scenario, results are
// assembled by index, and errors surface from the smallest failing job
// index, wrapped with the scenario ID and the point's full parameter
// assignment. Cancelling ctx stops the run after in-flight points drain
// and returns the context's error.
func RunAllCtx(ctx context.Context, scenarios []Scenario, s Scale, opts RunOptions) ([]Output, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	type job struct {
		si int // scenario index
		pi int // point index; -1 runs the scenario's TableFn
	}
	var jobs []job
	points := make([][]Point, len(scenarios))
	for si, sc := range scenarios {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		if sc.TableFn != nil {
			jobs = append(jobs, job{si, -1})
			continue
		}
		pts, err := sc.Points(s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.ID, err)
		}
		for _, pt := range pts {
			if pt.Series == "" {
				return nil, fmt.Errorf("%s: point %+v has no series", sc.ID, pt)
			}
			for name := range pt.Params {
				if !sc.paramDoc(name) {
					return nil, fmt.Errorf("%s: point parameter %q undocumented", sc.ID, name)
				}
			}
		}
		points[si] = pts
		for pi := range pts {
			jobs = append(jobs, job{si, pi})
		}
	}

	// done counts completed jobs; eventMu serializes OnPoint so consumers
	// never see interleaved or out-of-count events.
	var (
		eventMu sync.Mutex
		done    int
	)
	emit := func(ev PointEvent) {
		if opts.OnPoint == nil {
			return
		}
		eventMu.Lock()
		done++
		ev.Done, ev.Total = done, len(jobs)
		opts.OnPoint(ev)
		eventMu.Unlock()
	}

	type jobOut struct {
		table *stats.Table // TableFn jobs
		res   Result       // point jobs
	}
	results, err := sweep.MapCtx(ctx, len(jobs), opts.Workers, func(wctx context.Context, i int) (jobOut, error) {
		j := jobs[i]
		sc := scenarios[j.si]
		if j.pi < 0 {
			tbl, err := sc.TableFn(s)
			if err != nil {
				return jobOut{}, fmt.Errorf("%s: %w", sc.ID, err)
			}
			emit(PointEvent{ScenarioID: sc.ID, Index: i, Table: tbl})
			return jobOut{table: tbl}, nil
		}
		pt := points[j.si][j.pi]
		// wctx carries the worker's pool cache (sweep.Locals), letting
		// context-aware scenarios reuse simulation state across the points
		// this worker claims.
		compute := func() (Result, error) { return sc.ComputePoint(wctx, s, pt) }
		var (
			res      Result
			recorded bool
			err      error
		)
		if opts.Intercept != nil {
			res, recorded, err = opts.Intercept(sc, pt, compute)
		} else {
			res, err = compute()
		}
		if err != nil {
			return jobOut{}, fmt.Errorf("%s: point %s: %w", sc.ID, pt.Label(), err)
		}
		emit(PointEvent{
			ScenarioID: sc.ID,
			Index:      i,
			Point:      &PointOutput{Point: pt, Result: res},
			Cached:     recorded,
		})
		return jobOut{res: res}, nil
	})
	if err != nil {
		return nil, err
	}

	outs := make([]Output, len(scenarios))
	for si, sc := range scenarios {
		outs[si] = Output{Scenario: sc}
	}
	for ji, j := range jobs {
		out := &outs[j.si]
		if j.pi < 0 {
			out.Table = results[ji].table
			continue
		}
		out.Points = append(out.Points, PointOutput{
			Point:  points[j.si][j.pi],
			Result: results[ji].res,
		})
	}
	for si := range outs {
		if outs[si].Table != nil {
			continue // TableFn scenario
		}
		outs[si].Table = assemble(scenarios[si], outs[si].Points)
		if loc := scenarios[si].Localize; loc != nil {
			loc(s, outs[si].Table)
		}
	}
	return outs, nil
}

// Label renders the point's coordinates for error and progress messages:
// the series, the x value, and the full parameter assignment with sorted
// keys, so a failing point in a multi-figure run is attributable from the
// message alone.
func (p Point) Label() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "series %q x=%g", p.Series, p.X)
	if len(p.Params) > 0 {
		sb.WriteString(" [")
		writeSortedParams(&sb, p.Params, ' ')
		sb.WriteByte(']')
	}
	return sb.String()
}

// assemble folds per-point results into the scenario's output table.
// Series appear in first-point order; points append in enumeration order,
// so the table is identical however the jobs were scheduled.
func assemble(sc Scenario, pts []PointOutput) *stats.Table {
	tbl := &stats.Table{Title: sc.Title, XLabel: sc.XLabel, YLabel: sc.YLabel}
	series := make(map[string]*stats.Series)
	for _, po := range pts {
		line, ok := series[po.Series]
		if !ok {
			line = tbl.AddSeries(po.Series)
			series[po.Series] = line
		}
		if !po.Result.Skip {
			line.Append(po.X, po.Result.Y)
		}
	}
	return tbl
}
