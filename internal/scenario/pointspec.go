package scenario

import (
	"context"
	"fmt"
)

// PointSpec is the wire form of one point computation: everything a remote
// worker needs to reproduce the point — the scenario ID (resolved against
// the worker's own registry), the complete scale including the seed, and
// the point's coordinates — plus the canonical PointKey the sender derived
// from them. Carrying the key redundantly lets the receiver re-derive and
// compare it, so a coordinator/worker version skew that changes point
// identity (a new Scale dimension, a renamed parameter) fails loudly at
// dispatch instead of silently merging results from two different
// computations.
type PointSpec struct {
	// ScenarioID names the scenario in the registry ("fig8", ...).
	ScenarioID string `json:"scenario"`
	// Scale is the complete scale the point runs at, seed included.
	Scale Scale `json:"scale"`
	// Point is the parameter assignment to compute.
	Point Point `json:"point"`
	// Key is the sender's canonical PointKey for this computation.
	Key string `json:"key"`
}

// NewPointSpec builds the wire spec for one point of one scenario run.
func NewPointSpec(sc Scenario, s Scale, pt Point) PointSpec {
	return PointSpec{
		ScenarioID: sc.ID,
		Scale:      s,
		Point:      pt,
		Key:        PointKey(sc.ID, s, pt),
	}
}

// Verify re-derives the canonical key from the spec's own fields and
// checks it against the carried key.
func (ps PointSpec) Verify() error {
	if ps.Key == "" {
		return fmt.Errorf("point spec %s: missing key", ps.ScenarioID)
	}
	if derived := PointKey(ps.ScenarioID, ps.Scale, ps.Point); derived != ps.Key {
		return fmt.Errorf("point spec %s: key mismatch: carried %q, derived %q (coordinator/worker version skew?)",
			ps.ScenarioID, ps.Key, derived)
	}
	return nil
}

// Run resolves the spec against the registry, verifies its identity, and
// computes the point. The result is exactly what a local RunPoint call
// would have produced: RunPoint derives all randomness from the scale seed
// and the point coordinates, so where the point runs cannot change its
// value.
func (ps PointSpec) Run(reg *Registry) (Result, error) {
	if reg == nil {
		return Result{}, fmt.Errorf("point spec %s: nil registry", ps.ScenarioID)
	}
	if err := ps.Verify(); err != nil {
		return Result{}, err
	}
	sc, err := reg.ByID(ps.ScenarioID)
	if err != nil {
		return Result{}, err
	}
	if !sc.PointBased() {
		return Result{}, fmt.Errorf("point spec %s: scenario is not point-based", ps.ScenarioID)
	}
	if err := ps.Scale.Validate(); err != nil {
		return Result{}, fmt.Errorf("point spec %s: %w", ps.ScenarioID, err)
	}
	return sc.ComputePoint(context.Background(), ps.Scale, ps.Point)
}
