package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PointKey returns the canonical content address of one computed point:
// the scenario ID, the complete scale (including the seed), and the
// point's series, x, and full parameter assignment with sorted keys. Two
// identical keys denote the same pure computation — RunPoint derives all
// randomness from the scale seed and the point coordinates — so the key is
// safe to use for cross-request result caching and resumable checkpoints.
func PointKey(scenarioID string, s Scale, pt Point) string {
	var sb strings.Builder
	sb.Grow(192)
	sb.WriteString(scenarioID)
	sb.WriteByte('|')
	writeScaleKey(&sb, s)
	fmt.Fprintf(&sb, "|series=%s|x=%g", pt.Series, pt.X)
	if len(pt.Params) > 0 {
		sb.WriteByte('|')
		writeSortedParams(&sb, pt.Params, '|')
	}
	return sb.String()
}

// writeSortedParams renders a parameter assignment as name=value pairs in
// sorted-name order, separated by sep. It is the one rendering shared by
// PointKey (cache/checkpoint identity) and Point.Label (error and
// progress messages), so a reported point always names the same identity
// its cached result is stored under.
func writeSortedParams(sb *strings.Builder, params map[string]float64, sep byte) {
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		if i > 0 {
			sb.WriteByte(sep)
		}
		fmt.Fprintf(sb, "%s=%g", name, params[name])
	}
}

// writeScaleKey serializes every Scale field in a fixed order. The
// scaleKeyFields test constant pins the field count so adding a Scale
// dimension without extending this serialization fails the build's tests
// instead of silently aliasing distinct workloads to one key.
func writeScaleKey(sb *strings.Builder, s Scale) {
	fmt.Fprintf(sb, "grid=%dx%d|iu=%d|pt=%d|pg=", s.GridW, s.GridH, s.IdealUpdates, s.PercTrials)
	writeInts(sb, s.PercGrids)
	fmt.Fprintf(sb, "|nn=%d|nr=%d|nd=%d|q=", s.NetNodes, s.NetRuns, s.NetDuration.Nanoseconds())
	writeFloats(sb, s.QSweep)
	sb.WriteString("|pi=")
	writeFloats(sb, s.PSweepIdeal)
	sb.WriteString("|pn=")
	writeFloats(sb, s.PSweepNet)
	sb.WriteString("|ds=")
	writeFloats(sb, s.DeltaSweep)
	fmt.Fprintf(sb, "|hop=%d,%d|nth=", s.HopNear, s.HopFar)
	writeInts(sb, s.NetTrackHops)
	sb.WriteString("|duty=")
	writeFloats(sb, s.DutySweep)
	fmt.Fprintf(sb, "|seed=%d", s.Seed)
	// The protocol field is omitted when empty (= PBBF, the default) so
	// every key minted before protocols existed stays byte-identical to the
	// key the same workload derives today. Callers canonicalize "pbbf" to
	// empty before keying (protocol.Spec.Canonical); a literal "pbbf" here
	// would mint a second identity for the same computation.
	if s.Protocol != "" {
		fmt.Fprintf(sb, "|proto=%s", s.Protocol)
	}
	// The energy fields follow the same omit-when-default rule: an
	// infinite-battery workload (the only kind that existed before finite
	// energy) keys exactly as it always did.
	if s.EnergyJ != 0 {
		fmt.Fprintf(sb, "|energy=%s", strconv.FormatFloat(s.EnergyJ, 'g', -1, 64))
	}
	if s.HarvestW != 0 {
		fmt.Fprintf(sb, "|harvest=%s", strconv.FormatFloat(s.HarvestW, 'g', -1, 64))
	}
}

// scaleKeyFields is the number of Scale fields writeScaleKey serializes.
const scaleKeyFields = 20

// SplitKey decomposes a canonical PointKey into its three segments: the
// scenario ID, the scale serialization (everything from the grid field up
// to the seed/protocol), and the point coordinates (series, x, parameters).
// It is the inverse boundary walk of PointKey's construction and exists so
// stored records can carry the scenario ID and scale redundantly and
// self-verify them against the key they claim to belong to (internal/store
// quarantines records where the segments disagree).
func SplitKey(key string) (scenarioID, scaleKey, pointKey string, err error) {
	bar := strings.IndexByte(key, '|')
	if bar <= 0 {
		return "", "", "", fmt.Errorf("scenario: key %q has no scale segment", key)
	}
	scenarioID, rest := key[:bar], key[bar+1:]
	// The scale segment always starts at "grid=" and the point segment at
	// "|series=": writeScaleKey emits grid first, PointKey emits series
	// first, and neither marker can occur earlier (scale field names are
	// fixed, and the scenario ID cannot contain '|').
	if !strings.HasPrefix(rest, "grid=") {
		return "", "", "", fmt.Errorf("scenario: key %q: scale segment does not start at grid=", key)
	}
	sep := strings.Index(rest, "|series=")
	if sep < 0 {
		return "", "", "", fmt.Errorf("scenario: key %q has no point segment", key)
	}
	return scenarioID, rest[:sep], rest[sep+1:], nil
}

func writeInts(sb *strings.Builder, vs []int) {
	for i, v := range vs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(v))
	}
}

func writeFloats(sb *strings.Builder, vs []float64) {
	for i, v := range vs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
}
