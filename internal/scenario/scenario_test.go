package scenario

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"pbbf/internal/stats"
)

// fake returns a minimal valid point-based scenario whose result encodes
// the point it ran, so assembly order can be asserted.
func fake(id string) Scenario {
	return Scenario{
		ID:       id,
		Title:    "fake " + id,
		Artifact: "extension",
		Summary:  "engine test scenario",
		Params:   []ParamDoc{{Name: "x", Desc: "the x coordinate"}},
		XLabel:   "x",
		YLabel:   "y",
		Points: func(s Scale) ([]Point, error) {
			var pts []Point
			for _, series := range []string{"a", "b"} {
				for x := 0.0; x < 3; x++ {
					pts = append(pts, Point{Series: series, X: x, Params: map[string]float64{"x": x}})
				}
			}
			return pts, nil
		},
		RunPoint: func(s Scale, pt Point) (Result, error) {
			return Result{Y: pt.X * 10, EnergyJ: pt.X, Delivery: 1}, nil
		},
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(fake("dup")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(fake("dup")); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if err := r.Register(fake("DUP")); err == nil {
		t.Fatal("case-variant duplicate accepted (IDs must be lower-case and unique)")
	}
	if r.Len() != 1 {
		t.Fatalf("registry has %d entries after rejections, want 1", r.Len())
	}
}

func TestRegistryRejectsIncompleteMetadata(t *testing.T) {
	broken := []func(*Scenario){
		func(sc *Scenario) { sc.ID = "" },
		func(sc *Scenario) { sc.ID = "  Mixed Case " },
		func(sc *Scenario) { sc.Title = "" },
		func(sc *Scenario) { sc.Artifact = "" },
		func(sc *Scenario) { sc.Summary = "" },
		func(sc *Scenario) { sc.Params = nil },
		func(sc *Scenario) { sc.Params = []ParamDoc{{Name: "x"}} },
		func(sc *Scenario) { sc.XLabel = "" },
		func(sc *Scenario) { sc.RunPoint = nil },
		func(sc *Scenario) { sc.Points = nil },
		func(sc *Scenario) {
			// Both execution modes at once.
			sc.TableFn = func(Scale) (*stats.Table, error) { return &stats.Table{}, nil }
		},
		func(sc *Scenario) {
			// Neither execution mode.
			sc.Points, sc.RunPoint = nil, nil
		},
	}
	for i, mutate := range broken {
		r := NewRegistry()
		sc := fake("fake")
		mutate(&sc)
		if err := r.Register(sc); err == nil {
			t.Fatalf("case %d: invalid scenario accepted: %+v", i, sc)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(fake("one"))
	r.MustRegister(fake("two"))
	if got := r.All(); len(got) != 2 || got[0].ID != "one" || got[1].ID != "two" {
		t.Fatalf("All() lost registration order: %+v", got)
	}
	if _, err := r.ByID("  ONE "); err != nil {
		t.Fatalf("case/space-insensitive lookup failed: %v", err)
	}
	_, err := r.ByID("three")
	if err == nil || !strings.Contains(err.Error(), "one") {
		t.Fatalf("unknown-ID error should list known IDs, got %v", err)
	}
}

func TestRunAssemblesDeterministically(t *testing.T) {
	s := Quick()
	// Whatever the worker count, the assembled table must be identical.
	want, err := Run(fake("det"), s)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		outs, err := RunAll([]Scenario{fake("det")}, s, workers)
		if err != nil {
			t.Fatal(err)
		}
		got := outs[0].Table
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d changed output:\n%s\nvs\n%s", workers, want.Render(), got.Render())
		}
	}
	if a := want.SeriesByName("a"); a == nil || a.Len() != 3 || a.Y[2] != 20 {
		t.Fatalf("series a wrong: %+v", want.Series)
	}
	if want.Series[0].Name != "a" || want.Series[1].Name != "b" {
		t.Fatalf("series order not first-appearance: %+v", want.Series)
	}
}

func TestRunAllFlattensScenarios(t *testing.T) {
	tableRan := false
	static := Scenario{
		ID: "static", Title: "static", Artifact: "Table 9", Summary: "static table",
		TableFn: func(Scale) (*stats.Table, error) {
			tableRan = true
			tbl := &stats.Table{Title: "static", XLabel: "x", YLabel: "y"}
			tbl.AddSeries("s").Append(1, 2)
			return tbl, nil
		},
	}
	outs, err := RunAll([]Scenario{fake("p1"), static, fake("p2")}, Quick(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 || !tableRan {
		t.Fatalf("outputs %d, tableRan %v", len(outs), tableRan)
	}
	if outs[1].Points != nil || outs[1].Table.Title != "static" {
		t.Fatalf("TableFn output wrong: %+v", outs[1])
	}
	for _, i := range []int{0, 2} {
		if len(outs[i].Points) != 6 {
			t.Fatalf("output %d has %d points, want 6", i, len(outs[i].Points))
		}
		if outs[i].Table.Title != "fake "+outs[i].Scenario.ID {
			t.Fatalf("output %d title %q", i, outs[i].Table.Title)
		}
	}
}

func TestRunAllErrorIsDeterministic(t *testing.T) {
	bad := fake("bad")
	bad.RunPoint = func(s Scale, pt Point) (Result, error) {
		if pt.Series == "b" {
			return Result{}, fmt.Errorf("boom at x=%v", pt.X)
		}
		return Result{Y: pt.X}, nil
	}
	for i := 0; i < 3; i++ {
		_, err := RunAll([]Scenario{bad}, Quick(), 4)
		if err == nil {
			t.Fatal("failing point accepted")
		}
		// The smallest failing index is series "b" at x=0, and the error
		// must attribute it fully: scenario ID, series, x, and parameters.
		for _, want := range []string{`bad: point series "b" x=0 [x=0]`, "boom at x=0"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q missing %q", err, want)
			}
		}
	}
}

func TestRunRejectsUndocumentedParams(t *testing.T) {
	sc := fake("undoc")
	points := sc.Points
	sc.Points = func(s Scale) ([]Point, error) {
		pts, _ := points(s)
		pts[0].Params["mystery"] = 1
		return pts, nil
	}
	if _, err := Run(sc, Quick()); err == nil || !strings.Contains(err.Error(), "mystery") {
		t.Fatalf("undocumented parameter accepted: %v", err)
	}
}

func TestRunValidatesScale(t *testing.T) {
	s := Quick()
	s.GridW = 0
	if _, err := Run(fake("scale"), s); err == nil {
		t.Fatal("invalid scale accepted")
	}
}

func TestScalePresets(t *testing.T) {
	for _, p := range Presets() {
		if err := p.Scale.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got, err := ByName(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, p.Scale) {
			t.Fatalf("ByName(%q) mismatch", p.Name)
		}
	}
	if _, err := ByName("huge"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestOutputJSONRoundTrip checks the dashboard-facing contract: an Output
// marshals to JSON and unmarshals back to the same table and point data.
func TestOutputJSONRoundTrip(t *testing.T) {
	outs, err := RunAll([]Scenario{fake("json")}, Quick(), 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(outs[0])
	if err != nil {
		t.Fatal(err)
	}
	var back Output
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs[0].Table, back.Table) {
		t.Fatalf("table did not survive JSON:\n%+v\nvs\n%+v", outs[0].Table, back.Table)
	}
	if !reflect.DeepEqual(outs[0].Points, back.Points) {
		t.Fatalf("points did not survive JSON:\n%+v\nvs\n%+v", outs[0].Points, back.Points)
	}
	if back.Scenario.ID != "json" || back.Scenario.Summary == "" {
		t.Fatalf("metadata did not survive JSON: %+v", back.Scenario)
	}
}
