package scenario

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"unicode/utf8"
)

// FuzzPointKeyRoundTrip drives the point-identity machinery with arbitrary
// scenario IDs, point coordinates, and scale mutations: a spec built from
// any inputs must verify against its own key, survive a JSON round trip
// (the wire format of the distributed sweep) with its identity intact, and
// reject a tampered key. This is the property the result cache, resumable
// checkpoints, and coordinator/worker dispatch all lean on.
func FuzzPointKeyRoundTrip(f *testing.F) {
	f.Add("fig13", "PBBF-0.25", "delta", 0.5, 10.0, uint64(1), 30, "", 0.0, 0.0)
	f.Add("extchurn", "PSM", "churn", 0.25, 0.3, uint64(42), 10000, "sleepsched", 0.0, 0.0)
	f.Add("fig8", "NO PSM", "q", 1.0, 0.0, uint64(0), 1, "ola", 0.0, 0.0)
	f.Add("extlifetime", "PBBF-0.5", "energy_j", 1.0, 1.0, uint64(3), 30, "", 1.5, 0.005)
	f.Add("", "series with spaces|x=9", "", math.Copysign(0, -1), math.MaxFloat64, uint64(1)<<63, 0, "proto=|x", -1.0, 1e300)
	f.Fuzz(func(t *testing.T, id, series, pname string, x, pval float64, seed uint64, nodes int, proto string, energyJ, harvestW float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(pval) || math.IsInf(pval, 0) ||
			math.IsNaN(energyJ) || math.IsInf(energyJ, 0) || math.IsNaN(harvestW) || math.IsInf(harvestW, 0) {
			t.Skip("JSON cannot carry non-finite floats")
		}
		// JSON cannot carry invalid UTF-8 either: encoding/json replaces
		// such bytes with U+FFFD on marshal, which would silently rewrite
		// the identity. The wire contract is that scenario IDs, series, and
		// parameter names are UTF-8 — all registry values are Go source
		// literals, so this only excludes inputs no real spec can contain.
		if !utf8.ValidString(id) || !utf8.ValidString(series) || !utf8.ValidString(pname) || !utf8.ValidString(proto) {
			t.Skip("JSON cannot carry invalid UTF-8")
		}
		s := Quick()
		s.Seed = seed
		s.NetNodes = nodes
		s.Protocol = proto
		s.EnergyJ = energyJ
		s.HarvestW = harvestW
		pt := Point{Series: series, X: x, Params: map[string]float64{pname: pval}}
		spec := NewPointSpec(Scenario{ID: id}, s, pt)
		if err := spec.Verify(); err != nil {
			t.Fatalf("fresh spec failed verification: %v", err)
		}

		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back PointSpec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if back.Key != spec.Key {
			t.Fatalf("JSON round trip changed the key:\nbefore %q\nafter  %q", spec.Key, back.Key)
		}
		if err := back.Verify(); err != nil {
			t.Fatalf("round-tripped spec failed verification: %v", err)
		}
		if rederived := PointKey(back.ScenarioID, back.Scale, back.Point); rederived != spec.Key {
			t.Fatalf("re-derived key diverged:\nsent      %q\nrederived %q", spec.Key, rederived)
		}
		// A second marshal of the reconstructed spec must be byte-identical:
		// the wire form itself is canonical, not just the key.
		again, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("marshal not canonical:\nfirst  %s\nsecond %s", data, again)
		}

		back.Key += "?"
		if back.Verify() == nil {
			t.Fatal("tampered key accepted")
		}
	})
}
