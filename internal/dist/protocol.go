// Package dist shards a sweep's point set across remote workers over
// HTTP. The coordinator side (Coordinator) owns the work queue and the
// fault-tolerance state machine: points are handed out in leases with a
// deadline, a lease that expires — or whose worker stops heartbeating —
// is requeued, a point that keeps failing fails the sweep with its error,
// and a worker that keeps failing is quarantined and excluded from
// further leases. The worker side (RunWorker) registers, leases batches
// of point specs, computes them with a local pool, and reports results.
//
// Determinism is the design anchor: every point is a pure function of its
// scenario.PointSpec (the engine derives all randomness from the scale
// seed and the point coordinates), results are merged by canonical
// PointKey, and the output is assembled locally by the unchanged scenario
// engine — so a distributed run is byte-identical to a local one
// regardless of worker count, scheduling, or failure order. See
// docs/DISTRIBUTED.md.
package dist

import "pbbf/internal/scenario"

// RegisterRequest is the POST /v1/workers body.
type RegisterRequest struct {
	// Name is a human-readable label for logs and GET /v1/workers
	// (defaulted by the coordinator when empty).
	Name string `json:"name,omitempty"`
}

// RegisterResponse assigns the worker its identity and cadence.
type RegisterResponse struct {
	// WorkerID identifies the worker in every later request.
	WorkerID string `json:"worker_id"`
	// LeaseTTLMS is how long the coordinator holds leased points before
	// requeueing them.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// HeartbeatMS is the interval the worker should heartbeat at.
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// LeaseRequest is the POST /v1/work/lease body.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	// Max caps the number of points in the lease (clamped by the
	// coordinator's batch bound; <= 0 means the coordinator's bound).
	Max int `json:"max"`
}

// LeaseResponse hands out a batch of points, or tells the worker to wait
// or exit.
type LeaseResponse struct {
	// LeaseID identifies the lease when reporting results (empty when no
	// points were granted).
	LeaseID string `json:"lease_id,omitempty"`
	// Points are the granted point specs, verified and computed by the
	// worker.
	Points []scenario.PointSpec `json:"points,omitempty"`
	// RetryMS, on an empty grant, is how long to wait before polling
	// again — the queue is momentarily empty but the sweep is not done.
	RetryMS int64 `json:"retry_ms,omitempty"`
	// Done reports that the sweep has completed; the worker should exit.
	Done bool `json:"done,omitempty"`
}

// PointResult is one computed point reported back to the coordinator.
// Exactly one of Result or Error is meaningful.
type PointResult struct {
	// Key is the point's canonical scenario.PointKey.
	Key string `json:"key"`
	// Result is the computed value when Error is empty.
	Result scenario.Result `json:"result"`
	// Error carries the point's computation failure, if any.
	Error string `json:"error,omitempty"`
}

// ResultRequest is the POST /v1/work/result body.
type ResultRequest struct {
	WorkerID string        `json:"worker_id"`
	LeaseID  string        `json:"lease_id"`
	Results  []PointResult `json:"results"`
}

// ResultResponse acknowledges a result batch.
type ResultResponse struct {
	// Accepted counts results merged into the sweep.
	Accepted int `json:"accepted"`
	// Stale counts results for points already resolved elsewhere (a
	// requeued point both workers finished) — harmless duplicates.
	Stale int `json:"stale"`
	// Done reports that the sweep has completed.
	Done bool `json:"done,omitempty"`
}

// WorkerInfo is one worker's row in GET /v1/workers.
type WorkerInfo struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// Alive is false once the worker has missed heartbeats for longer
	// than the death threshold (its leased work has been requeued).
	Alive bool `json:"alive"`
	// Quarantined workers are excluded from further leases.
	Quarantined bool `json:"quarantined"`
	// LastSeenAgoMS is the time since the worker's last request.
	LastSeenAgoMS int64 `json:"last_seen_ago_ms"`
	// Leased, Completed, and Failed count the worker's points.
	Leased    int `json:"leased"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
}

// QueueStats summarizes the coordinator's work queue.
type QueueStats struct {
	// Pending points await a lease; Leased are out with workers; Done
	// and Failed are resolved. Total = Pending + Leased + Done + Failed.
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Total   int `json:"total"`
	// Requeues counts points returned to the queue by lease expiry,
	// worker death, worker quarantine, or a retryable failure.
	Requeues uint64 `json:"requeues"`
	// StaleResults counts duplicate/late results that were ignored.
	StaleResults uint64 `json:"stale_results"`
	// Closed reports that the sweep has completed and workers are being
	// told to exit.
	Closed bool `json:"closed"`
}

// WorkersResponse is the GET /v1/workers payload.
type WorkersResponse struct {
	Workers []WorkerInfo `json:"workers"`
	Queue   QueueStats   `json:"queue"`
}
