package dist_test

// Distributed-vs-local equivalence: the acceptance property of the
// subsystem. The same sweep run (a) locally, (b) through a coordinator
// with one worker, and (c) through a coordinator with three workers — one
// of them killed mid-run, its lease requeued — must produce byte-identical
// JSON output. The scenario engine assembles output from merged results by
// index, and every point is a pure function of its spec, so worker count
// and failure order must be invisible in the bytes.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pbbf/internal/dist"
	"pbbf/internal/scenario"
	"pbbf/internal/server"
)

// eqRegistry builds a registry whose single scenario has enough points to
// keep three workers busy and a per-point delay long enough for a
// mid-run kill to land while leases are outstanding.
func eqRegistry(points int, delay time.Duration) *scenario.Registry {
	reg := scenario.NewRegistry()
	reg.MustRegister(scenario.Scenario{
		ID: "eq", Title: "equivalence scenario", Artifact: "extension",
		Summary: "distributed-vs-local equivalence workload",
		Params:  []scenario.ParamDoc{{Name: "p", Desc: "probability knob"}},
		XLabel:  "x", YLabel: "y",
		Points: func(s scenario.Scale) ([]scenario.Point, error) {
			pts := make([]scenario.Point, 0, points)
			for i := 0; i < points; i++ {
				pts = append(pts, scenario.Point{
					Series: fmt.Sprintf("s%d", i%3),
					X:      float64(i),
					Params: map[string]float64{"p": float64(i) / float64(points)},
				})
			}
			return pts, nil
		},
		RunPoint: func(s scenario.Scale, pt scenario.Point) (scenario.Result, error) {
			time.Sleep(delay)
			// Awkward floats on purpose: byte identity must survive the
			// JSON round-trip through the wire protocol.
			seed := scenario.PointSeed(s.Seed, scenario.FloatBits(pt.X))
			y := math.Sin(pt.X*0.37+float64(seed%1000)/997) / 3
			return scenario.Result{
				Y:        y,
				EnergyJ:  y * 0.123456789,
				LatencyS: pt.X / 7,
				Delivery: 1 - pt.Params["p"]/2,
			}, nil
		},
	})
	return reg
}

func marshalOutputs(t *testing.T, outs []scenario.Output) []byte {
	t.Helper()
	data, err := json.MarshalIndent(outs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runDistributed executes the registry's sweep through a coordinator over
// real HTTP with the given number of workers. With killOne, the first
// worker is cancelled as soon as it holds a lease and some results have
// landed — simulating a worker death mid-run; its unreported points are
// requeued on lease expiry and finished by the survivors.
func runDistributed(t *testing.T, reg *scenario.Registry, s scenario.Scale, workers int, killOne bool) []byte {
	t.Helper()
	coord := dist.NewCoordinator(dist.Config{LeaseTTL: 300 * time.Millisecond})
	srv, err := server.New(server.Config{Registry: reg, Coordinator: coord})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	workerErrs := make([]error, workers)
	kill := make([]context.CancelFunc, workers)
	for i := 0; i < workers; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		kill[i] = cancel
		wg.Add(1)
		go func() {
			defer wg.Done()
			workerErrs[i] = dist.RunWorker(ctx, dist.WorkerConfig{
				CoordinatorURL: ts.URL,
				Registry:       reg,
				Name:           fmt.Sprintf("eqw%d", i),
				Parallelism:    2,
				Batch:          4,
				RetryAttempts:  3,
				RetryDelay:     50 * time.Millisecond,
			})
		}()
	}
	if killOne {
		go func() {
			// Kill eqw0 once it demonstrably holds work and the sweep is
			// mid-flight, so its lease dies unreported and must requeue.
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				snap := coord.Snapshot()
				for _, w := range snap.Workers {
					if w.Name == "eqw0" && w.Leased > 0 && snap.Queue.Done > 0 {
						kill[0]()
						return
					}
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	outs, err := scenario.RunAllCtx(context.Background(), reg.All(), s, scenario.RunOptions{
		Workers: 64,
		Intercept: func(sc scenario.Scenario, pt scenario.Point, _ func() (scenario.Result, error)) (scenario.Result, bool, error) {
			res, err := coord.Do(context.Background(), scenario.NewPointSpec(sc, s, pt))
			return res, false, err
		},
	})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	coord.Close()
	coord.Quiesce(context.Background(), 5*time.Second)
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("worker %d exited with error: %v", i, werr)
		}
	}
	return marshalOutputs(t, outs)
}

func TestDistributedMatchesLocalByteForByte(t *testing.T) {
	reg := eqRegistry(42, 3*time.Millisecond)
	s := scenario.Quick()
	s.Seed = 7

	localOuts, err := scenario.RunAll(reg.All(), s, 4)
	if err != nil {
		t.Fatal(err)
	}
	local := marshalOutputs(t, localOuts)

	oneWorker := runDistributed(t, reg, s, 1, false)
	if !bytes.Equal(local, oneWorker) {
		t.Fatalf("1-worker distributed output differs from local:\nlocal:\n%s\ndist:\n%s", local, oneWorker)
	}

	threeWithKill := runDistributed(t, reg, s, 3, true)
	if !bytes.Equal(local, threeWithKill) {
		t.Fatalf("3-worker (one killed) output differs from local:\nlocal:\n%s\ndist:\n%s", local, threeWithKill)
	}
}

// TestWorkerReregistersAfterCoordinatorRestart: a restarted coordinator
// (the -checkpoint resume story) loses its worker registrations; running
// workers must respond to the 404 unknown-worker by re-registering and
// carrying on, not by exiting.
func TestWorkerReregistersAfterCoordinatorRestart(t *testing.T) {
	reg := eqRegistry(20, time.Millisecond)
	s := scenario.Quick()
	newHandler := func(coord *dist.Coordinator) *server.Server {
		srv, err := server.New(server.Config{Registry: reg, Coordinator: coord})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	coord1 := dist.NewCoordinator(dist.Config{LeaseTTL: time.Second})
	var (
		hmu     sync.Mutex
		handler = newHandler(coord1)
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hmu.Lock()
		h := handler
		hmu.Unlock()
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	workerDone := make(chan error, 1)
	go func() {
		workerDone <- dist.RunWorker(context.Background(), dist.WorkerConfig{
			CoordinatorURL: ts.URL, Registry: reg, Name: "phoenix",
			Parallelism: 1, Batch: 1,
			RetryAttempts: 3, RetryDelay: 20 * time.Millisecond,
		})
	}()

	runPoints := func(coord *dist.Coordinator, from, to int) {
		t.Helper()
		sc := reg.All()[0]
		pts, err := sc.Points(s)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, to-from)
		for i := from; i < to; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, errs[i-from] = coord.Do(context.Background(), scenario.NewPointSpec(sc, s, pts[i]))
			}()
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("point %d: %v", from+i, err)
			}
		}
	}
	runPoints(coord1, 0, 3)

	// "Restart": a fresh coordinator that never saw the worker takes over
	// the same address.
	coord2 := dist.NewCoordinator(dist.Config{LeaseTTL: time.Second})
	hmu.Lock()
	handler = newHandler(coord2)
	hmu.Unlock()
	runPoints(coord2, 3, 6) // only completes if the worker re-registered

	snap := coord2.Snapshot()
	if len(snap.Workers) == 0 || snap.Workers[0].Name != "phoenix" {
		t.Fatalf("worker did not re-register with the restarted coordinator: %+v", snap.Workers)
	}
	coord2.Close()
	coord2.Quiesce(context.Background(), 5*time.Second)
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("worker exited with error across the restart: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never exited")
	}
	coord1.Close()
}

// TestWorkerSurfacesCoordinatorErrors pins the worker's terminal error
// paths: an unreachable coordinator and a quarantine rejection both end
// the worker with a descriptive error instead of a silent spin.
func TestWorkerSurfacesCoordinatorErrors(t *testing.T) {
	err := dist.RunWorker(context.Background(), dist.WorkerConfig{
		CoordinatorURL: "http://127.0.0.1:1", // reserved port, nothing listens
		Registry:       eqRegistry(1, 0),
		RetryAttempts:  2,
		RetryDelay:     10 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "register") {
		t.Fatalf("unreachable coordinator: %v", err)
	}

	if err := dist.RunWorker(context.Background(), dist.WorkerConfig{}); err == nil {
		t.Fatal("missing coordinator URL accepted")
	}
	if err := dist.RunWorker(context.Background(), dist.WorkerConfig{CoordinatorURL: "http://x"}); err == nil {
		t.Fatal("nil registry accepted")
	}
}

// TestWorkerComputesFailingPointGracefully: a point whose RunPoint errors
// is reported as a failure, retried per the coordinator's budget, and the
// sweep fails with the point's error while the worker exits cleanly.
func TestWorkerReportsPointFailures(t *testing.T) {
	reg := scenario.NewRegistry()
	reg.MustRegister(scenario.Scenario{
		ID: "boom", Title: "failing scenario", Artifact: "extension",
		Summary: "always fails",
		Params:  []scenario.ParamDoc{{Name: "p", Desc: "unused"}},
		XLabel:  "x", YLabel: "y",
		Points: func(scenario.Scale) ([]scenario.Point, error) {
			return []scenario.Point{{Series: "a", X: 1, Params: map[string]float64{"p": 1}}}, nil
		},
		RunPoint: func(scenario.Scale, scenario.Point) (scenario.Result, error) {
			return scenario.Result{}, fmt.Errorf("deterministic explosion")
		},
	})
	coord := dist.NewCoordinator(dist.Config{
		LeaseTTL: time.Second, MaxPointAttempts: 2, MaxWorkerFailures: 100,
	})
	srv, err := server.New(server.Config{Registry: reg, Coordinator: coord})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	workerDone := make(chan error, 1)
	go func() {
		workerDone <- dist.RunWorker(context.Background(), dist.WorkerConfig{
			CoordinatorURL: ts.URL, Registry: reg, Parallelism: 1,
			RetryAttempts: 2, RetryDelay: 10 * time.Millisecond,
		})
	}()

	s := scenario.Quick()
	_, err = scenario.RunAllCtx(context.Background(), reg.All(), s, scenario.RunOptions{
		Workers: 4,
		Intercept: func(sc scenario.Scenario, pt scenario.Point, _ func() (scenario.Result, error)) (scenario.Result, bool, error) {
			res, err := coord.Do(context.Background(), scenario.NewPointSpec(sc, s, pt))
			return res, false, err
		},
	})
	if err == nil || !strings.Contains(err.Error(), "deterministic explosion") {
		t.Fatalf("sweep error: %v", err)
	}
	coord.Close()
	coord.Quiesce(context.Background(), 5*time.Second)
	select {
	case werr := <-workerDone:
		if werr != nil {
			t.Fatalf("worker exit: %v", werr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never exited")
	}
}
