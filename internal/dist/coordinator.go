package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pbbf/internal/scenario"
)

// Defaults for Config fields left zero.
const (
	DefaultLeaseTTL          = 30 * time.Second
	DefaultMaxBatch          = 64
	DefaultMaxPointAttempts  = 3
	DefaultMaxWorkerFailures = 3
	DefaultRetryDelay        = 500 * time.Millisecond
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrUnknownWorker marks a request naming a worker ID the coordinator
	// never issued (or a coordinator restart — workers must re-register).
	ErrUnknownWorker = errors.New("unknown worker")
	// ErrQuarantined marks a worker excluded after repeated failures; it
	// receives no further leases and should exit.
	ErrQuarantined = errors.New("worker quarantined")
)

// Config tunes the coordinator's fault-tolerance state machine.
type Config struct {
	// LeaseTTL is how long a worker holds leased points before the
	// coordinator requeues them. A worker that dies loses its lease at
	// most LeaseTTL after its last request.
	LeaseTTL time.Duration
	// MaxBatch caps the points granted per lease.
	MaxBatch int
	// MaxPointAttempts is how many reported failures one point tolerates
	// before the sweep fails with that point's error.
	MaxPointAttempts int
	// MaxWorkerFailures is how many consecutive failed points one worker
	// may report before it is quarantined (excluded from further
	// leases). A success resets the count, so a small transient error
	// rate on a long sweep never quarantines a mostly-healthy worker.
	MaxWorkerFailures int
	// RetryDelay is the poll backoff told to workers when the queue is
	// momentarily empty.
	RetryDelay time.Duration

	// clock overrides time.Now for deterministic expiry tests.
	clock func() time.Time
}

func (cfg Config) withDefaults() Config {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxPointAttempts <= 0 {
		cfg.MaxPointAttempts = DefaultMaxPointAttempts
	}
	if cfg.MaxWorkerFailures <= 0 {
		cfg.MaxWorkerFailures = DefaultMaxWorkerFailures
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = DefaultRetryDelay
	}
	if cfg.clock == nil {
		cfg.clock = time.Now
	}
	return cfg
}

// task is one point's life in the queue: pending (in queue), leased (out
// with a worker), or resolved (result or terminal error set, done closed).
type task struct {
	spec     scenario.PointSpec
	lease    *lease          // non-nil while leased
	pending  bool            // true while the task sits in the queue
	attempts int             // reported failures so far
	failedBy map[string]bool // worker IDs that failed this point
	resolved bool
	result   scenario.Result
	err      error
	done     chan struct{} // closed on resolution
}

// lease is one granted batch with its requeue deadline.
type lease struct {
	id       string
	deadline time.Time
	tasks    map[string]*task // by point key; shrinks as results land
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id, name    string
	lastSeen    time.Time
	alive       bool
	quarantined bool
	sawDone     bool // the worker has been told the sweep is done
	leases      map[string]*lease
	completed   int
	failed      int // lifetime failures, for observability
	// streak counts consecutive failures — the quarantine budget. A
	// success resets it, so a small transient error rate on a long sweep
	// never quarantines a mostly-healthy worker.
	streak int
}

// Coordinator owns a distributed sweep's work queue. Points enter through
// Do (called concurrently by the scenario engine's intercept hook), are
// handed to workers in leases, and resolve back through Result — or
// through the requeue paths when leases expire, workers die, or points
// fail. All methods are safe for concurrent use.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	tasks    map[string]*task // every task ever submitted, by point key
	queue    []*task          // pending tasks, FIFO (requeues go to the front)
	workers  map[string]*workerState
	order    []string // worker registration order, for stable snapshots
	seq      int
	requeues uint64
	stale    uint64
	doneN    int
	failedN  int
	closed   bool
}

// NewCoordinator returns a coordinator with an empty queue.
func NewCoordinator(cfg Config) *Coordinator {
	return &Coordinator{
		cfg:     cfg.withDefaults(),
		tasks:   make(map[string]*task),
		workers: make(map[string]*workerState),
	}
}

// Do submits one point for remote computation and blocks until a worker
// resolves it or ctx is cancelled. Concurrent calls with the same key
// join the same task (and a key already resolved returns immediately), so
// the queue never holds duplicates.
func (c *Coordinator) Do(ctx context.Context, spec scenario.PointSpec) (scenario.Result, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return scenario.Result{}, fmt.Errorf("dist: coordinator closed")
	}
	t, ok := c.tasks[spec.Key]
	if !ok {
		t = &task{spec: spec, pending: true, done: make(chan struct{})}
		c.tasks[spec.Key] = t
		c.queue = append(c.queue, t)
	}
	c.mu.Unlock()

	select {
	case <-t.done:
		return t.result, t.err
	case <-ctx.Done():
		return scenario.Result{}, ctx.Err()
	}
}

// Register admits a worker and returns its identity and cadence. An empty
// name gets a generated one.
func (c *Coordinator) Register(name string) RegisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	id := fmt.Sprintf("w%d", c.seq)
	if name == "" {
		name = id
	}
	c.workers[id] = &workerState{
		id: id, name: name,
		lastSeen: c.cfg.clock(),
		alive:    true,
		leases:   make(map[string]*lease),
	}
	c.order = append(c.order, id)
	return RegisterResponse{
		WorkerID:    id,
		LeaseTTLMS:  c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMS: (c.cfg.LeaseTTL / 3).Milliseconds(),
	}
}

// Lease grants the worker up to req.Max pending points. An empty grant
// carries a retry delay; once the sweep is closed it reports Done so the
// worker exits.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.clock()
	c.expireLocked(now)
	w, err := c.touchLocked(req.WorkerID, now)
	if err != nil {
		return LeaseResponse{}, err
	}
	if c.closed {
		w.sawDone = true
		return LeaseResponse{Done: true}, nil
	}
	max := req.Max
	if max <= 0 || max > c.cfg.MaxBatch {
		max = c.cfg.MaxBatch
	}
	c.seq++
	l := &lease{
		id:       fmt.Sprintf("l%d", c.seq),
		deadline: now.Add(c.cfg.LeaseTTL),
		tasks:    make(map[string]*task),
	}
	resp := LeaseResponse{LeaseID: l.id}
	// Grant up to max pending tasks, dropping any resolved while queued
	// (a requeued point whose original worker reported late after all)
	// and routing a point's retries away from workers that already
	// failed it, so one broken environment cannot burn a point's whole
	// attempt budget while healthy workers idle. The exclusion cannot
	// deadlock: once every live, non-quarantined worker has failed a
	// point, it is grantable to any of them again — the attempt budget
	// stays the hard stop.
	grantable := func(t *task) bool {
		if !t.failedBy[w.id] {
			return true
		}
		for _, ow := range c.workers {
			if ow.alive && !ow.quarantined && !t.failedBy[ow.id] {
				return false // a worker that hasn't failed it should get it
			}
		}
		return true
	}
	kept := c.queue[:0]
	for _, t := range c.queue {
		switch {
		case t.resolved:
			t.pending = false
		case len(l.tasks) >= max || !grantable(t):
			kept = append(kept, t)
		default:
			t.pending = false
			t.lease = l
			l.tasks[t.spec.Key] = t
			resp.Points = append(resp.Points, t.spec)
		}
	}
	c.queue = kept
	if len(l.tasks) == 0 {
		return LeaseResponse{RetryMS: c.cfg.RetryDelay.Milliseconds()}, nil
	}
	w.leases[l.id] = l
	return resp, nil
}

// Result merges a batch of computed points. Results for already-resolved
// points (a requeued point both workers finished) are counted stale and
// ignored — they are byte-identical by construction, so dropping either
// copy is safe. A reported failure requeues the point until its attempt
// budget is spent, then fails the sweep; a worker crossing its failure
// budget is quarantined and its outstanding leases requeued.
func (c *Coordinator) Result(req ResultRequest) (ResultResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.clock()
	c.expireLocked(now)
	w, err := c.touchLocked(req.WorkerID, now)
	if err != nil {
		return ResultResponse{}, err
	}
	var resp ResultResponse
	for _, pr := range req.Results {
		t := c.tasks[pr.Key]
		if t == nil || t.resolved {
			c.stale++
			resp.Stale++
			continue
		}
		c.detachLocked(t)
		resp.Accepted++
		if pr.Error == "" {
			w.completed++
			w.streak = 0
			c.resolveLocked(t, pr.Result, nil)
			continue
		}
		t.attempts++
		if t.failedBy == nil {
			t.failedBy = make(map[string]bool)
		}
		t.failedBy[w.id] = true
		w.failed++
		w.streak++
		if w.streak >= c.cfg.MaxWorkerFailures && !w.quarantined {
			c.quarantineLocked(w)
		}
		if t.attempts >= c.cfg.MaxPointAttempts {
			// The sweep is now doomed — the engine will surface this
			// error once every job resolves. Abort the remaining tasks
			// instead of waiting for workers to compute results that can
			// no longer be used (or hanging forever if none are left).
			c.abortLocked(fmt.Errorf(
				"dist: point failed on %d attempt(s), last on %s: %s", t.attempts, w.name, pr.Error), t)
		} else {
			c.requeueLocked(t)
		}
	}
	resp.Done = c.closed
	return resp, nil
}

// abortLocked resolves culprit with err and every other unresolved task
// with a wrapper naming it, so no Do call blocks on a sweep that has
// already failed.
func (c *Coordinator) abortLocked(err error, culprit *task) {
	c.resolveLocked(culprit, scenario.Result{}, err)
	for _, t := range c.tasks {
		if !t.resolved {
			c.detachLocked(t)
			c.resolveLocked(t, scenario.Result{}, fmt.Errorf("dist: sweep aborted (%s)", err))
		}
	}
	c.queue = nil
}

// Heartbeat records worker liveness between leases.
func (c *Coordinator) Heartbeat(workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.clock()
	c.expireLocked(now)
	_, err := c.touchLocked(workerID, now)
	return err
}

// Snapshot reports the workers and queue for GET /v1/workers.
func (c *Coordinator) Snapshot() WorkersResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.clock()
	c.expireLocked(now)
	resp := WorkersResponse{
		Workers: make([]WorkerInfo, 0, len(c.order)),
		Queue: QueueStats{
			Pending:      len(c.queue),
			Done:         c.doneN,
			Failed:       c.failedN,
			Total:        len(c.tasks),
			Requeues:     c.requeues,
			StaleResults: c.stale,
			Closed:       c.closed,
		},
	}
	for _, id := range c.order {
		w := c.workers[id]
		leased := 0
		for _, l := range w.leases {
			leased += len(l.tasks)
		}
		resp.Queue.Leased += leased
		resp.Workers = append(resp.Workers, WorkerInfo{
			ID: w.id, Name: w.name,
			Alive: w.alive, Quarantined: w.quarantined,
			LastSeenAgoMS: now.Sub(w.lastSeen).Milliseconds(),
			Leased:        leased, Completed: w.completed, Failed: w.failed,
		})
	}
	return resp
}

// Close marks the sweep complete: subsequent leases answer Done so
// workers drain and exit. Unresolved tasks (a failed run's leftovers) are
// resolved with an error so no Do call blocks forever.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, t := range c.tasks {
		if !t.resolved {
			c.detachLocked(t)
			c.resolveLocked(t, scenario.Result{}, fmt.Errorf("dist: coordinator closed"))
		}
	}
	c.queue = nil
}

// Quiesce waits (up to timeout, or until ctx cancels) for every live,
// non-quarantined worker to observe the sweep's completion through a
// Done lease response, so workers exit cleanly before the coordinator's
// HTTP listener goes away. Call after Close. Only workers seen within
// the last few poll intervals count: one that stopped contacting us
// (Ctrl-C'd, crashed, network gone) will never poll again and must not
// hold the process exit hostage for the full timeout.
func (c *Coordinator) Quiesce(ctx context.Context, timeout time.Duration) {
	// The grace must cover the slowest advertised contact cadence — the
	// heartbeat interval (LeaseTTL/3) — plus poll slack, or a worker
	// alive between heartbeats would be abandoned mid-drain.
	grace := c.cfg.LeaseTTL/3 + 4*c.cfg.RetryDelay + time.Second
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		c.mu.Lock()
		waiting := false
		now := c.cfg.clock()
		c.expireLocked(now)
		for _, w := range c.workers {
			if w.alive && !w.quarantined && !w.sawDone && now.Sub(w.lastSeen) <= grace {
				waiting = true
			}
		}
		c.mu.Unlock()
		if !waiting {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// touchLocked resolves a worker ID, bumps its liveness, and enforces
// quarantine. Any contact — lease, result, heartbeat — renews the
// worker's outstanding lease deadlines, so a lease only expires when its
// worker goes silent for the TTL, never merely because a batch computes
// slowly while the worker keeps heartbeating.
func (c *Coordinator) touchLocked(id string, now time.Time) (*workerState, error) {
	w := c.workers[id]
	if w == nil {
		return nil, fmt.Errorf("dist: %w: %q", ErrUnknownWorker, id)
	}
	w.lastSeen = now
	w.alive = true
	if w.quarantined {
		return nil, fmt.Errorf("dist: %w: %s failed %d point(s)", ErrQuarantined, w.name, w.failed)
	}
	for _, l := range w.leases {
		l.deadline = now.Add(c.cfg.LeaseTTL)
	}
	return w, nil
}

// expireLocked runs the requeue paths: leases past their deadline, and
// workers silent past the death threshold (twice the lease TTL — missed
// heartbeats many times over), whose leases are requeued immediately.
func (c *Coordinator) expireLocked(now time.Time) {
	deadAfter := 2 * c.cfg.LeaseTTL
	for _, w := range c.workers {
		if w.alive && now.Sub(w.lastSeen) > deadAfter {
			w.alive = false
			c.requeueWorkerLocked(w)
			continue
		}
		for id, l := range w.leases {
			if now.After(l.deadline) {
				for _, t := range l.tasks {
					t.lease = nil
					c.requeueLocked(t)
				}
				delete(w.leases, id)
			}
		}
	}
}

// requeueWorkerLocked returns every point leased to w to the queue.
func (c *Coordinator) requeueWorkerLocked(w *workerState) {
	for id, l := range w.leases {
		for _, t := range l.tasks {
			t.lease = nil
			c.requeueLocked(t)
		}
		delete(w.leases, id)
	}
}

// quarantineLocked excludes the worker and requeues its outstanding work.
func (c *Coordinator) quarantineLocked(w *workerState) {
	w.quarantined = true
	c.requeueWorkerLocked(w)
}

// detachLocked removes the task from its lease's bookkeeping (dropping
// the lease once empty).
func (c *Coordinator) detachLocked(t *task) {
	l := t.lease
	if l == nil {
		return
	}
	t.lease = nil
	delete(l.tasks, t.spec.Key)
	if len(l.tasks) == 0 {
		for _, w := range c.workers {
			delete(w.leases, l.id)
		}
	}
}

// requeueLocked puts an unresolved task back at the front of the queue,
// so retried points clear before fresh ones stack behind them. A task
// already queued stays put — e.g. a failure report arriving after the
// point's lease expired and requeued it — so the queue never holds
// duplicates.
func (c *Coordinator) requeueLocked(t *task) {
	if t.pending || t.resolved {
		return
	}
	t.pending = true
	c.requeues++
	c.queue = append([]*task{t}, c.queue...)
}

// resolveLocked finishes a task and wakes its Do caller.
func (c *Coordinator) resolveLocked(t *task, res scenario.Result, err error) {
	t.resolved = true
	t.result = res
	t.err = err
	if err != nil {
		c.failedN++
	} else {
		c.doneN++
	}
	close(t.done)
}
