package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"pbbf/internal/scenario"
	"pbbf/internal/sweep"
)

// WorkerConfig assembles one worker process's connection to a
// coordinator.
type WorkerConfig struct {
	// CoordinatorURL is the coordinator's base URL, e.g.
	// "http://host:8099". Required.
	CoordinatorURL string
	// Registry resolves leased point specs to runnable scenarios; it must
	// register the same scenarios as the coordinator's (the per-point key
	// check catches skew). Required.
	Registry *scenario.Registry
	// Name labels the worker in coordinator logs and GET /v1/workers.
	Name string
	// Parallelism is the local point-computation pool size; <= 0 selects
	// GOMAXPROCS.
	Parallelism int
	// Batch is the number of points requested per lease; <= 0 selects
	// twice the parallelism, so the pool never idles while a lease is in
	// flight.
	Batch int
	// Logw receives progress lines (nil discards them).
	Logw io.Writer
	// Client issues the HTTP requests; nil uses a default with a
	// per-request timeout.
	Client *http.Client

	// RetryAttempts and RetryDelay govern transport-level retries: a
	// coordinator briefly unreachable (restart, network blip) is retried
	// that many times with that delay before the worker gives up. Zero
	// values select 5 attempts, 1 s apart.
	RetryAttempts int
	RetryDelay    time.Duration
}

// RunWorker registers with the coordinator and computes leased points
// until the coordinator reports the sweep done (returns nil), the worker
// is quarantined or the coordinator becomes unreachable (returns the
// error), or ctx is cancelled (returns nil after a graceful stop: the
// in-flight lease is abandoned unreported, and the coordinator requeues
// it when the lease expires — exactly the kill-mid-run path).
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.CoordinatorURL == "" {
		return fmt.Errorf("dist: missing coordinator URL")
	}
	if cfg.Registry == nil {
		return fmt.Errorf("dist: nil registry")
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 2 * cfg.Parallelism
	}
	if cfg.Logw == nil {
		cfg.Logw = io.Discard
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 5
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = time.Second
	}
	w := &workerClient{cfg: cfg, base: strings.TrimRight(cfg.CoordinatorURL, "/")}

	// The worker ID changes when a restarted coordinator forces a
	// re-registration, and the heartbeat goroutine reads it concurrently.
	var (
		idMu        sync.Mutex
		workerID    string
		heartbeatMS int64
	)
	id := func() string {
		idMu.Lock()
		defer idMu.Unlock()
		return workerID
	}
	register := func() error {
		var rr RegisterResponse
		if err := w.post(ctx, "/v1/workers", RegisterRequest{Name: cfg.Name}, &rr); err != nil {
			return err
		}
		idMu.Lock()
		workerID = rr.WorkerID
		heartbeatMS = rr.HeartbeatMS
		idMu.Unlock()
		fmt.Fprintf(cfg.Logw, "worker %s: registered with %s (lease ttl %dms)\n",
			rr.WorkerID, cfg.CoordinatorURL, rr.LeaseTTLMS)
		return nil
	}
	if err := register(); err != nil {
		return fmt.Errorf("dist: register with %s: %w", cfg.CoordinatorURL, err)
	}

	// A 404 unknown-worker means the coordinator restarted (resuming from
	// its checkpoint) and lost our registration: re-register and carry
	// on, as the error's contract promises.
	reregistered := func(err error) bool {
		var he *httpStatusError
		if !errors.As(err, &he) || he.status != http.StatusNotFound || !strings.Contains(he.msg, "unknown worker") {
			return false
		}
		if rerr := register(); rerr != nil {
			return false
		}
		fmt.Fprintf(cfg.Logw, "worker %s: coordinator lost our registration (restart?); re-registered\n", id())
		return true
	}

	// Heartbeat in the background at the coordinator's cadence, so leases
	// survive long point computations. Transient failures are ignored —
	// the next lease or result call also counts as liveness.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	idMu.Lock()
	interval := time.Duration(heartbeatMS) * time.Millisecond
	idMu.Unlock()
	go func() {
		if interval <= 0 {
			interval = 10 * time.Second
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				w.post(hbCtx, "/v1/workers/"+id()+"/heartbeat", struct{}{}, nil) //nolint:errcheck
			}
		}
	}()

	computed := 0
	for {
		if ctx.Err() != nil {
			return nil // graceful stop; the lease TTL requeues anything in flight
		}
		var grant LeaseResponse
		err := w.post(ctx, "/v1/work/lease", LeaseRequest{WorkerID: id(), Max: cfg.Batch}, &grant)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if reregistered(err) {
				continue
			}
			return fmt.Errorf("dist: lease from %s: %w", cfg.CoordinatorURL, err)
		}
		if grant.Done {
			fmt.Fprintf(cfg.Logw, "worker %s: sweep done after %d point(s)\n", id(), computed)
			return nil
		}
		if len(grant.Points) == 0 {
			delay := time.Duration(grant.RetryMS) * time.Millisecond
			if delay <= 0 {
				delay = DefaultRetryDelay
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(delay):
			}
			continue
		}

		results := computeBatch(ctx, cfg, grant.Points)
		if ctx.Err() != nil {
			return nil // killed mid-batch: report nothing, let the lease expire
		}
		report := func() (ResultResponse, error) {
			var ack ResultResponse
			err := w.post(ctx, "/v1/work/result",
				ResultRequest{WorkerID: id(), LeaseID: grant.LeaseID, Results: results}, &ack)
			return ack, err
		}
		ack, err := report()
		if err != nil && reregistered(err) {
			// Results are merged by point key, not lease, so a restarted
			// coordinator still accepts them under the new registration.
			ack, err = report()
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("dist: report results to %s: %w", cfg.CoordinatorURL, err)
		}
		computed += ack.Accepted
		fmt.Fprintf(cfg.Logw, "worker %s: lease %s: %d point(s) reported (%d accepted, %d stale)\n",
			id(), grant.LeaseID, len(results), ack.Accepted, ack.Stale)
	}
}

// computeBatch runs a lease's points across the local pool. Point-level
// failures become PointResult.Error entries — the coordinator decides
// between retry and sweep failure — so one bad point never aborts its
// batchmates.
func computeBatch(ctx context.Context, cfg WorkerConfig, specs []scenario.PointSpec) []PointResult {
	// The per-point fn never errors, so MapCtx only fails on ctx
	// cancellation — in which case results are discarded anyway.
	results, _ := sweep.MapCtx(ctx, len(specs), cfg.Parallelism,
		func(ctx context.Context, i int) (PointResult, error) {
			pr := PointResult{Key: specs[i].Key}
			res, err := specs[i].Run(cfg.Registry)
			if err != nil {
				pr.Error = err.Error()
			} else {
				pr.Result = res
			}
			return pr, nil
		})
	// A cancelled pool returns nil results; the caller checks ctx and
	// abandons the batch.
	return results
}

// httpStatusError is a non-2xx coordinator response: the status decides
// whether the worker exits (403 quarantine), re-registers (404 unknown
// worker after a coordinator restart), or fails.
type httpStatusError struct {
	status int
	msg    string
}

func (e *httpStatusError) Error() string { return e.msg }

// workerClient is the worker's thin JSON-over-HTTP client with transport
// retries.
type workerClient struct {
	cfg  WorkerConfig
	base string
}

// post sends one JSON request and decodes the JSON response into out
// (when non-nil). Transport errors retry with a delay; HTTP error
// statuses are terminal and carry the server's {"error": ...} message.
func (w *workerClient) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	var last error
	for attempt := 0; attempt < w.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.cfg.RetryDelay):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.cfg.Client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			last = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			last = err
			continue
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
			var e struct {
				Error string `json:"error"`
			}
			msg := strings.TrimSpace(string(data))
			if json.Unmarshal(data, &e) == nil && e.Error != "" {
				msg = e.Error
			}
			return &httpStatusError{status: resp.StatusCode, msg: fmt.Sprintf("%s: %s", resp.Status, msg)}
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(data, out)
	}
	return fmt.Errorf("after %d attempt(s): %w", w.cfg.RetryAttempts, last)
}
