package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pbbf/internal/scenario"
)

// fakeClock is a manually advanced clock for deterministic expiry tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// testSpec builds a distinct, verifiable point spec per index.
func testSpec(i int) scenario.PointSpec {
	s := scenario.Quick()
	pt := scenario.Point{Series: "a", X: float64(i), Params: map[string]float64{"p": 0.5}}
	return scenario.PointSpec{
		ScenarioID: "spec",
		Scale:      s,
		Point:      pt,
		Key:        scenario.PointKey("spec", s, pt),
	}
}

// submit launches Do calls for n specs and returns a channel per point.
func submit(t *testing.T, c *Coordinator, n int) []chan error {
	t.Helper()
	chans := make([]chan error, n)
	for i := range chans {
		ch := make(chan error, 1)
		chans[i] = ch
		spec := testSpec(i)
		go func() {
			res, err := c.Do(context.Background(), spec)
			if err == nil && res.Y != float64(100) {
				err = fmt.Errorf("unexpected result %+v", res)
			}
			ch <- err
		}()
	}
	// Wait until all tasks are queued so leases see the full set.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c.mu.Lock()
		queued := len(c.tasks)
		c.mu.Unlock()
		if queued >= n {
			return chans
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d tasks queued", queued, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// okResults answers every point in the lease with Y=100.
func okResults(grant LeaseResponse) []PointResult {
	prs := make([]PointResult, len(grant.Points))
	for i, sp := range grant.Points {
		prs[i] = PointResult{Key: sp.Key, Result: scenario.Result{Y: 100}}
	}
	return prs
}

func newTestCoordinator(clk *fakeClock) *Coordinator {
	return NewCoordinator(Config{
		LeaseTTL:          10 * time.Second,
		MaxBatch:          4,
		MaxPointAttempts:  3,
		MaxWorkerFailures: 3,
		clock:             clk.Now,
	})
}

func TestLeaseResultHappyPath(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(clk)
	waits := submit(t, c, 3)
	reg := c.Register("w")
	if reg.WorkerID == "" || reg.LeaseTTLMS != 10_000 || reg.HeartbeatMS <= 0 {
		t.Fatalf("registration: %+v", reg)
	}

	grant, err := c.Lease(LeaseRequest{WorkerID: reg.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if len(grant.Points) != 3 || grant.LeaseID == "" {
		t.Fatalf("grant: %+v", grant)
	}
	ack, err := c.Result(ResultRequest{WorkerID: reg.WorkerID, LeaseID: grant.LeaseID, Results: okResults(grant)})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 3 || ack.Stale != 0 {
		t.Fatalf("ack: %+v", ack)
	}
	for i, ch := range waits {
		if err := <-ch; err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}

	snap := c.Snapshot()
	if snap.Queue.Done != 3 || snap.Queue.Pending != 0 || snap.Queue.Leased != 0 {
		t.Fatalf("queue: %+v", snap.Queue)
	}
	if len(snap.Workers) != 1 || snap.Workers[0].Completed != 3 || !snap.Workers[0].Alive {
		t.Fatalf("workers: %+v", snap.Workers)
	}
}

func TestLeaseBatchBound(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(clk) // MaxBatch 4
	waits := submit(t, c, 6)
	w := c.Register("w")

	g1, err := c.Lease(LeaseRequest{WorkerID: w.WorkerID, Max: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Points) != 4 {
		t.Fatalf("batch bound not enforced: %d points", len(g1.Points))
	}
	g2, _ := c.Lease(LeaseRequest{WorkerID: w.WorkerID, Max: 1})
	if len(g2.Points) != 1 {
		t.Fatalf("explicit max ignored: %d points", len(g2.Points))
	}
	g3, _ := c.Lease(LeaseRequest{WorkerID: w.WorkerID})
	if len(g3.Points) != 1 {
		t.Fatalf("remaining point not granted: %+v", g3)
	}
	// Queue empty, sweep live: the worker is told to poll again.
	g4, _ := c.Lease(LeaseRequest{WorkerID: w.WorkerID})
	if g4.RetryMS <= 0 || g4.Done || len(g4.Points) != 0 {
		t.Fatalf("empty grant: %+v", g4)
	}
	for _, g := range []LeaseResponse{g1, g2, g3} {
		if _, err := c.Result(ResultRequest{WorkerID: w.WorkerID, LeaseID: g.LeaseID, Results: okResults(g)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ch := range waits {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
}

func TestLeaseExpiryRequeues(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(clk)
	waits := submit(t, c, 2)
	w1 := c.Register("w1")
	w2 := c.Register("w2")

	g1, err := c.Lease(LeaseRequest{WorkerID: w1.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Points) != 2 {
		t.Fatalf("grant: %+v", g1)
	}
	// w1 goes silent past the TTL: the lease expires and the points go
	// to w2. The late heartbeat arrives after the expiry already ran, so
	// it revives the worker but cannot resurrect the lease.
	clk.Advance(11 * time.Second)
	if err := c.Heartbeat(w1.WorkerID); err != nil {
		t.Fatal(err)
	}
	g2, err := c.Lease(LeaseRequest{WorkerID: w2.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Points) != 2 {
		t.Fatalf("expired lease not requeued: %+v", g2)
	}
	if _, err := c.Result(ResultRequest{WorkerID: w2.WorkerID, LeaseID: g2.LeaseID, Results: okResults(g2)}); err != nil {
		t.Fatal(err)
	}
	for _, ch := range waits {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	if snap := c.Snapshot(); snap.Queue.Requeues != 2 {
		t.Fatalf("requeues not counted: %+v", snap.Queue)
	}
}

// TestHeartbeatExtendsLease: a slow batch must survive as long as its
// worker keeps heartbeating — leases expire on silence, not on wall
// time since the grant.
func TestHeartbeatExtendsLease(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(clk) // TTL 10s
	waits := submit(t, c, 1)
	w1 := c.Register("w1")
	w2 := c.Register("w2")

	g1, err := c.Lease(LeaseRequest{WorkerID: w1.WorkerID})
	if err != nil || len(g1.Points) != 1 {
		t.Fatalf("grant: %+v, %v", g1, err)
	}
	// 12s elapse since the grant — past the original deadline — but a
	// heartbeat at 6s renewed the lease, so w2 must not steal the point.
	clk.Advance(6 * time.Second)
	if err := c.Heartbeat(w1.WorkerID); err != nil {
		t.Fatal(err)
	}
	clk.Advance(6 * time.Second)
	g2, err := c.Lease(LeaseRequest{WorkerID: w2.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Points) != 0 || g2.RetryMS <= 0 {
		t.Fatalf("heartbeated lease was stolen: %+v", g2)
	}
	if _, err := c.Result(ResultRequest{WorkerID: w1.WorkerID, LeaseID: g1.LeaseID, Results: okResults(g1)}); err != nil {
		t.Fatal(err)
	}
	if err := <-waits[0]; err != nil {
		t.Fatal(err)
	}
	if snap := c.Snapshot(); snap.Queue.Requeues != 0 {
		t.Fatalf("slow-but-alive batch was requeued: %+v", snap.Queue)
	}
}

func TestDeadWorkerRequeuesBeforeLeaseExpiry(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{
		LeaseTTL: 10 * time.Second, MaxBatch: 4, clock: clk.Now,
	})
	waits := submit(t, c, 1)
	w1 := c.Register("w1")
	w2 := c.Register("w2")

	// w2 leases at t+15s so its own lease (deadline t+25s) outlives w1's
	// death threshold (2xTTL = 20s of silence).
	g1, err := c.Lease(LeaseRequest{WorkerID: w1.WorkerID})
	if err != nil || len(g1.Points) != 1 {
		t.Fatalf("grant: %+v, %v", g1, err)
	}
	clk.Advance(21 * time.Second)
	g2, err := c.Lease(LeaseRequest{WorkerID: w2.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Points) != 1 {
		t.Fatalf("dead worker's lease not requeued: %+v", g2)
	}
	snap := c.Snapshot()
	if snap.Workers[0].Alive {
		t.Fatalf("silent worker still alive: %+v", snap.Workers[0])
	}
	if !snap.Workers[1].Alive {
		t.Fatalf("active worker marked dead: %+v", snap.Workers[1])
	}
	if _, err := c.Result(ResultRequest{WorkerID: w2.WorkerID, LeaseID: g2.LeaseID, Results: okResults(g2)}); err != nil {
		t.Fatal(err)
	}
	if err := <-waits[0]; err != nil {
		t.Fatal(err)
	}
	// The dead worker revives on its next contact.
	if err := c.Heartbeat(w1.WorkerID); err != nil {
		t.Fatal(err)
	}
	if snap := c.Snapshot(); !snap.Workers[0].Alive {
		t.Fatal("heartbeat did not revive the worker")
	}
}

func TestPointFailureRetriesThenFailsSweep(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{
		LeaseTTL: 10 * time.Second, MaxPointAttempts: 2, MaxWorkerFailures: 100, clock: clk.Now,
	})
	waits := submit(t, c, 1)
	w := c.Register("w")

	fail := func() ResultResponse {
		g, err := c.Lease(LeaseRequest{WorkerID: w.WorkerID})
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Points) != 1 {
			t.Fatalf("grant: %+v", g)
		}
		ack, err := c.Result(ResultRequest{WorkerID: w.WorkerID, LeaseID: g.LeaseID,
			Results: []PointResult{{Key: g.Points[0].Key, Error: "simulated crash"}}})
		if err != nil {
			t.Fatal(err)
		}
		return ack
	}
	fail() // attempt 1: requeued
	select {
	case err := <-waits[0]:
		t.Fatalf("point resolved after first failure: %v", err)
	default:
	}
	fail() // attempt 2: budget spent, sweep fails
	err := <-waits[0]
	if err == nil || !strings.Contains(err.Error(), "simulated crash") || !strings.Contains(err.Error(), "2 attempt(s)") {
		t.Fatalf("terminal failure not surfaced: %v", err)
	}
	if snap := c.Snapshot(); snap.Queue.Failed != 1 {
		t.Fatalf("failed count: %+v", snap.Queue)
	}
}

// TestTerminalFailureAbortsPendingTasks: once any point exhausts its
// attempt budget the sweep is doomed; every other pending task must
// resolve immediately (with an abort error naming the culprit) instead
// of waiting on workers that may never come — a version-skewed fleet
// whose workers all quarantine and exit must fail the sweep, not hang
// it.
func TestTerminalFailureAbortsPendingTasks(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{
		LeaseTTL: 10 * time.Second, MaxBatch: 2,
		MaxPointAttempts: 1, MaxWorkerFailures: 100, clock: clk.Now,
	})
	waits := submit(t, c, 3)
	w := c.Register("w")
	g, err := c.Lease(LeaseRequest{WorkerID: w.WorkerID}) // 2 of 3 points
	if err != nil || len(g.Points) != 2 {
		t.Fatalf("grant: %+v, %v", g, err)
	}
	if _, err := c.Result(ResultRequest{WorkerID: w.WorkerID, LeaseID: g.LeaseID,
		Results: []PointResult{{Key: g.Points[0].Key, Error: "boom"}}}); err != nil {
		t.Fatal(err)
	}
	sawCulprit := 0
	for i, ch := range waits {
		select {
		case err := <-ch:
			if err == nil {
				t.Fatalf("point %d resolved without error on a doomed sweep", i)
			}
			if strings.Contains(err.Error(), "boom") && !strings.Contains(err.Error(), "aborted") {
				sawCulprit++
			} else if !strings.Contains(err.Error(), "sweep aborted") {
				t.Fatalf("point %d: %v", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("point %d still blocked after terminal failure", i)
		}
	}
	if sawCulprit != 1 {
		t.Fatalf("culprit error surfaced %d times", sawCulprit)
	}
}

func TestWorkerQuarantine(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{
		LeaseTTL: 10 * time.Second, MaxBatch: 2,
		MaxPointAttempts: 100, MaxWorkerFailures: 2, clock: clk.Now,
	})
	waits := submit(t, c, 3)
	bad := c.Register("bad")
	good := c.Register("good")

	g, err := c.Lease(LeaseRequest{WorkerID: bad.WorkerID}) // 2 points
	if err != nil {
		t.Fatal(err)
	}
	// Both fail: the worker crosses its failure budget and is quarantined.
	prs := []PointResult{
		{Key: g.Points[0].Key, Error: "bad env"},
		{Key: g.Points[1].Key, Error: "bad env"},
	}
	if _, err := c.Result(ResultRequest{WorkerID: bad.WorkerID, LeaseID: g.LeaseID, Results: prs}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lease(LeaseRequest{WorkerID: bad.WorkerID}); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined worker leased again: %v", err)
	}
	if _, err := c.Result(ResultRequest{WorkerID: bad.WorkerID}); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined worker's results accepted: %v", err)
	}
	// The healthy worker finishes everything, including the requeues.
	for {
		g, err := c.Lease(LeaseRequest{WorkerID: good.WorkerID})
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Points) == 0 {
			break
		}
		if _, err := c.Result(ResultRequest{WorkerID: good.WorkerID, LeaseID: g.LeaseID, Results: okResults(g)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ch := range waits {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	if !snap.Workers[0].Quarantined || snap.Workers[1].Quarantined {
		t.Fatalf("quarantine flags: %+v", snap.Workers)
	}
}

// TestFailedWorkerRoutedAway: a point's retry must go to a worker that
// has not failed it while one exists, even though the failing worker
// polls again first — one broken environment must not burn the point's
// attempt budget while a healthy worker idles.
func TestFailedWorkerRoutedAway(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{
		LeaseTTL: 10 * time.Second, MaxBatch: 1,
		MaxPointAttempts: 3, MaxWorkerFailures: 100, clock: clk.Now,
	})
	waits := submit(t, c, 2)
	a := c.Register("a")
	b := c.Register("b")

	g1, err := c.Lease(LeaseRequest{WorkerID: a.WorkerID})
	if err != nil || len(g1.Points) != 1 {
		t.Fatalf("grant: %+v, %v", g1, err)
	}
	failedKey := g1.Points[0].Key
	if _, err := c.Result(ResultRequest{WorkerID: a.WorkerID, LeaseID: g1.LeaseID,
		Results: []PointResult{{Key: failedKey, Error: "bad env"}}}); err != nil {
		t.Fatal(err)
	}
	// a polls again immediately: it must get the other point, not its
	// own requeued failure.
	g2, err := c.Lease(LeaseRequest{WorkerID: a.WorkerID})
	if err != nil || len(g2.Points) != 1 || g2.Points[0].Key == failedKey {
		t.Fatalf("failed point re-leased to the failing worker: %+v, %v", g2, err)
	}
	g3, err := c.Lease(LeaseRequest{WorkerID: b.WorkerID})
	if err != nil || len(g3.Points) != 1 || g3.Points[0].Key != failedKey {
		t.Fatalf("healthy worker did not get the retry: %+v, %v", g3, err)
	}
	for _, g := range []LeaseResponse{g2, g3} {
		wid := a.WorkerID
		if g.LeaseID == g3.LeaseID {
			wid = b.WorkerID
		}
		if _, err := c.Result(ResultRequest{WorkerID: wid, LeaseID: g.LeaseID, Results: okResults(g)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ch := range waits {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
}

// TestExclusionFallbackSingleWorker: when every live worker has failed a
// point, it is grantable again — exclusion must never deadlock a
// single-worker sweep.
func TestExclusionFallbackSingleWorker(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{
		LeaseTTL: 10 * time.Second, MaxBatch: 1,
		MaxPointAttempts: 3, MaxWorkerFailures: 100, clock: clk.Now,
	})
	waits := submit(t, c, 1)
	w := c.Register("w")
	g1, _ := c.Lease(LeaseRequest{WorkerID: w.WorkerID})
	if _, err := c.Result(ResultRequest{WorkerID: w.WorkerID, LeaseID: g1.LeaseID,
		Results: []PointResult{{Key: g1.Points[0].Key, Error: "flaky"}}}); err != nil {
		t.Fatal(err)
	}
	g2, err := c.Lease(LeaseRequest{WorkerID: w.WorkerID})
	if err != nil || len(g2.Points) != 1 {
		t.Fatalf("only worker starved of its own retry: %+v, %v", g2, err)
	}
	if _, err := c.Result(ResultRequest{WorkerID: w.WorkerID, LeaseID: g2.LeaseID, Results: okResults(g2)}); err != nil {
		t.Fatal(err)
	}
	if err := <-waits[0]; err != nil {
		t.Fatal(err)
	}
}

// TestStreakResetOnSuccess: the quarantine budget counts consecutive
// failures; interleaved successes reset it, so a long sweep with a small
// transient error rate keeps its workers.
func TestStreakResetOnSuccess(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{
		LeaseTTL: 10 * time.Second, MaxBatch: 1,
		MaxPointAttempts: 100, MaxWorkerFailures: 2, clock: clk.Now,
	})
	waits := submit(t, c, 4)
	w := c.Register("w")
	report := func(fail bool) {
		t.Helper()
		g, err := c.Lease(LeaseRequest{WorkerID: w.WorkerID})
		if err != nil || len(g.Points) != 1 {
			t.Fatalf("grant: %+v, %v", g, err)
		}
		pr := PointResult{Key: g.Points[0].Key, Result: scenario.Result{Y: 100}}
		if fail {
			pr = PointResult{Key: g.Points[0].Key, Error: "transient"}
		}
		if _, err := c.Result(ResultRequest{WorkerID: w.WorkerID, LeaseID: g.LeaseID,
			Results: []PointResult{pr}}); err != nil {
			t.Fatal(err)
		}
	}
	report(true)  // streak 1
	report(false) // success resets the streak
	report(true)  // streak 1 again — not quarantined
	if _, err := c.Lease(LeaseRequest{WorkerID: w.WorkerID}); errors.Is(err, ErrQuarantined) {
		t.Fatal("worker quarantined despite interleaved successes")
	}
	report(true) // streak 2: now quarantined
	if _, err := c.Lease(LeaseRequest{WorkerID: w.WorkerID}); !errors.Is(err, ErrQuarantined) {
		t.Fatal("consecutive failure budget never fired")
	}
	// Lifetime failures stay visible for observability.
	if snap := c.Snapshot(); snap.Workers[0].Failed != 3 {
		t.Fatalf("lifetime failure count: %+v", snap.Workers[0])
	}
	// Close releases the Do calls still blocked on the unfinished points.
	c.Close()
	for _, ch := range waits {
		<-ch
	}
}

// TestQuiesceSkipsSilentWorkers: a worker that stopped contacting the
// coordinator (crash, Ctrl-C) must not hold Quiesce for the full
// timeout after the sweep completes.
func TestQuiesceSkipsSilentWorkers(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(clk) // RetryDelay default 500ms → grace 3s
	c.Register("ghost")          // registers, then never polls again
	clk.Advance(10 * time.Second)
	c.Close()
	start := time.Now()
	c.Quiesce(context.Background(), 10*time.Second)
	if time.Since(start) > time.Second {
		t.Fatal("quiesce waited on a long-silent worker")
	}
}

func TestStaleAndLateResults(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(clk)
	waits := submit(t, c, 1)
	w1 := c.Register("w1")
	w2 := c.Register("w2")

	g1, err := c.Lease(LeaseRequest{WorkerID: w1.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	// The lease expires and the point is re-leased to w2 ...
	clk.Advance(11 * time.Second)
	g2, err := c.Lease(LeaseRequest{WorkerID: w2.WorkerID})
	if err != nil || len(g2.Points) != 1 {
		t.Fatalf("requeue grant: %+v, %v", g2, err)
	}
	// ... but w1 finishes after all. The late result is accepted — the
	// computation is deterministic, so either copy is the right answer.
	ack, err := c.Result(ResultRequest{WorkerID: w1.WorkerID, LeaseID: g1.LeaseID, Results: okResults(g1)})
	if err != nil || ack.Accepted != 1 {
		t.Fatalf("late result rejected: %+v, %v", ack, err)
	}
	if err := <-waits[0]; err != nil {
		t.Fatal(err)
	}
	// w2's copy is now a duplicate: counted stale, ignored.
	ack2, err := c.Result(ResultRequest{WorkerID: w2.WorkerID, LeaseID: g2.LeaseID, Results: okResults(g2)})
	if err != nil || ack2.Stale != 1 || ack2.Accepted != 0 {
		t.Fatalf("duplicate not stale: %+v, %v", ack2, err)
	}
	// Unknown keys are also stale, never a crash.
	ack3, err := c.Result(ResultRequest{WorkerID: w2.WorkerID, LeaseID: "l999",
		Results: []PointResult{{Key: "no such key", Result: scenario.Result{Y: 1}}}})
	if err != nil || ack3.Stale != 1 {
		t.Fatalf("unknown key not stale: %+v, %v", ack3, err)
	}
}

func TestUnknownWorker(t *testing.T) {
	c := NewCoordinator(Config{})
	if _, err := c.Lease(LeaseRequest{WorkerID: "w99"}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("lease: %v", err)
	}
	if _, err := c.Result(ResultRequest{WorkerID: "w99"}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("result: %v", err)
	}
	if err := c.Heartbeat("w99"); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("heartbeat: %v", err)
	}
}

func TestCloseDrainsWorkersAndBlockedCalls(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(clk)
	waits := submit(t, c, 1)
	w := c.Register("w")

	c.Close()
	g, err := c.Lease(LeaseRequest{WorkerID: w.WorkerID})
	if err != nil || !g.Done {
		t.Fatalf("post-close lease: %+v, %v", g, err)
	}
	// The unresolved Do call is released with an error, never stranded.
	if err := <-waits[0]; err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("blocked Do after close: %v", err)
	}
	if _, err := c.Do(context.Background(), testSpec(9)); err == nil {
		t.Fatal("Do accepted after close")
	}
	// Quiesce returns immediately: the only worker saw Done.
	start := time.Now()
	c.Quiesce(context.Background(), 5*time.Second)
	if time.Since(start) > time.Second {
		t.Fatal("quiesce waited despite all workers drained")
	}
	if snap := c.Snapshot(); !snap.Queue.Closed {
		t.Fatalf("snapshot not closed: %+v", snap.Queue)
	}
}

func TestDoCtxCancellation(t *testing.T) {
	c := NewCoordinator(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, testSpec(0))
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do ignored cancellation")
	}
}

func TestDoJoinsDuplicateKeys(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(clk)
	spec := testSpec(0)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = c.Do(context.Background(), spec)
		}()
	}
	// Wait for the single task to appear, then serve it once.
	for {
		c.mu.Lock()
		n := len(c.tasks)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	w := c.Register("w")
	g, err := c.Lease(LeaseRequest{WorkerID: w.WorkerID})
	if err != nil || len(g.Points) != 1 {
		t.Fatalf("duplicate keys queued separately: %+v, %v", g, err)
	}
	if _, err := c.Result(ResultRequest{WorkerID: w.WorkerID, LeaseID: g.LeaseID, Results: okResults(g)}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
}
