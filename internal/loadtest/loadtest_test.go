package loadtest

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pbbf/internal/scenario"
	"pbbf/internal/server"
)

// testServer spins an in-process serving stack with one fast scenario, so
// load tests exercise the real HTTP path without simulation cost.
func testServer(t *testing.T, limits server.LimitOptions) *httptest.Server {
	t.Helper()
	reg := scenario.NewRegistry()
	reg.MustRegister(scenario.Scenario{
		ID: "fast", Title: "fast scenario", Artifact: "extension",
		Summary: "loadtest scenario",
		Params:  []scenario.ParamDoc{{Name: "x", Desc: "x coordinate"}},
		XLabel:  "x", YLabel: "y",
		Points: func(scenario.Scale) ([]scenario.Point, error) {
			return []scenario.Point{
				{Series: "a", X: 0, Params: map[string]float64{"x": 0}},
				{Series: "a", X: 1, Params: map[string]float64{"x": 1}},
			}, nil
		},
		RunPoint: func(s scenario.Scale, pt scenario.Point) (scenario.Result, error) {
			return scenario.Result{Y: pt.X, Delivery: 1}, nil
		},
	})
	srv, err := server.New(server.Options{Registry: reg, Limits: limits})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestRunAndReport(t *testing.T) {
	ts := testServer(t, server.LimitOptions{})
	rep, err := Run(Config{
		Target:      ts.URL,
		Experiment:  "fast",
		Scale:       "quick",
		Requests:    40,
		Concurrency: 4,
		HitFraction: 0.5,
		WarmSeeds:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion || rep.Completed != 40 || rep.Errors != 0 || rep.Throttled != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.HitRequests != 20 || rep.MissRequests != 20 {
		t.Fatalf("mix: %d hits / %d misses", rep.HitRequests, rep.MissRequests)
	}
	if rep.P50NS <= 0 || rep.P99NS < rep.P50NS || rep.MaxNS < rep.P99NS {
		t.Fatalf("percentiles out of order: %+v", rep)
	}
	if rep.RPS <= 0 || rep.MeanNS <= 0 {
		t.Fatalf("throughput: %+v", rep)
	}

	// Round trip through the file format.
	path := filepath.Join(t.TempDir(), "LOADTEST.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *rep {
		t.Fatalf("round trip changed the report:\n%+v\n%+v", got, rep)
	}
}

func TestRunCountsThrottled(t *testing.T) {
	// One warm token plus a burst of two: the warm phase succeeds, then
	// the measured phase drains the bucket and the rest are throttled.
	ts := testServer(t, server.LimitOptions{RatePerSec: 0.001, Burst: 3})
	rep, err := Run(Config{
		Target:      ts.URL,
		Experiment:  "fast",
		Scale:       "quick",
		Requests:    5,
		Concurrency: 1,
		HitFraction: 1,
		WarmSeeds:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throttled < 1 {
		t.Fatalf("no request throttled: %+v", rep)
	}
	if rep.Completed+rep.Errors+rep.Throttled != 5 {
		t.Fatalf("outcome counts do not add up: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("throttles miscounted as errors: %+v", rep)
	}
}

func TestRunRejectsBrokenWorkload(t *testing.T) {
	ts := testServer(t, server.LimitOptions{})
	if _, err := Run(Config{
		Target: ts.URL, Experiment: "nope", Scale: "quick",
		Requests: 2, Concurrency: 1,
	}); err == nil || !strings.Contains(err.Error(), "warm request") {
		t.Fatalf("unknown experiment accepted: %v", err)
	}
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(Config{Target: "x", Experiment: "e", Scale: "s", Requests: 1, Concurrency: 1, HitFraction: 2}); err == nil {
		t.Fatal("hit fraction 2 accepted")
	}
}

func baseReport() *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Experiment:    "fast", Scale: "quick",
		Requests: 100, Concurrency: 8, HitFraction: 0.8,
		Completed: 100,
		P50NS:     20_000_000, P95NS: 60_000_000, P99NS: 80_000_000,
	}
}

func TestCompareGatesTail(t *testing.T) {
	base := baseReport()

	same := *base
	if regs, err := Compare(base, &same, 0.30); err != nil || len(regs) != 0 {
		t.Fatalf("identical reports gated: %v %v", regs, err)
	}

	slower := *base
	slower.P99NS = base.P99NS * 2
	regs, err := Compare(base, &slower, 0.30)
	if err != nil || len(regs) != 1 || regs[0].Metric != "p99" || regs[0].Ratio != 2 {
		t.Fatalf("p99 doubling not gated: %v %v", regs, err)
	}

	// Inside the threshold: no gate.
	slight := *base
	slight.P99NS = base.P99NS * 5 / 4
	if regs, _ := Compare(base, &slight, 0.30); len(regs) != 0 {
		t.Fatalf("+25%% gated at 30%% threshold: %v", regs)
	}

	// Below the noise floor the percentile is recorded but never gated.
	noisy := *base
	noisy.P50NS = LatencyNoiseFloorNS - 1
	cur := noisy
	cur.P50NS = noisy.P50NS * 100
	cur.P99NS = noisy.P99NS
	if regs, _ := Compare(&noisy, &cur, 0.30); len(regs) != 0 {
		t.Fatalf("sub-floor percentile gated: %v", regs)
	}
}

func TestCompareRejectsMismatchedWorkloads(t *testing.T) {
	base := baseReport()
	cases := []func(*Report){
		func(r *Report) { r.SchemaVersion = 99 },
		func(r *Report) { r.Experiment = "other" },
		func(r *Report) { r.Scale = "paper" },
		func(r *Report) { r.Requests = 1 },
		func(r *Report) { r.Concurrency = 1 },
		func(r *Report) { r.HitFraction = 0.1 },
	}
	for i, mutate := range cases {
		cur := *base
		mutate(&cur)
		if _, err := Compare(base, &cur, 0.30); err == nil {
			t.Errorf("case %d: mismatched workload compared", i)
		}
	}
	if _, err := Compare(base, base, 0); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestCheckErrorRate(t *testing.T) {
	rep := baseReport()
	rep.Errors = 2 // 2%
	if err := CheckErrorRate(rep, 0.05); err != nil {
		t.Fatalf("2%% errors failed a 5%% ceiling: %v", err)
	}
	if err := CheckErrorRate(rep, 0.01); err == nil {
		t.Fatal("2% errors passed a 1% ceiling")
	}
	if err := CheckErrorRate(rep, 1.5); err == nil {
		t.Fatal("nonsense ceiling accepted")
	}
}

func TestReadFileRejectsJunk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.json")
	if err := (&Report{}).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("empty report accepted")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWaitReady(t *testing.T) {
	ts := testServer(t, server.LimitOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := WaitReady(ctx, ts.URL); err != nil {
		t.Fatal(err)
	}
	dead, deadCancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer deadCancel()
	if err := WaitReady(dead, "http://127.0.0.1:1"); err == nil {
		t.Fatal("dead target reported ready")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.95, 100}, {0.99, 100}, {0.10, 10}}
	for _, c := range cases {
		if got := percentile(sorted, c.q); got != c.want {
			t.Errorf("p%g = %d, want %d", c.q*100, got, c.want)
		}
	}
	if percentile(nil, 0.5) != 0 {
		t.Error("empty percentile not 0")
	}
}
