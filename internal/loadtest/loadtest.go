// Package loadtest is the serving-path analogue of internal/bench: it
// drives a running pbbf server with thousands of concurrent mixed
// hit/miss POST /v1/run requests, measures client-observed latency
// percentiles and error rates, and serializes the result as a
// machine-readable report (LOADTEST.json). CI replays the committed
// workload against a freshly started server and fails the build when the
// tail latency regresses beyond the configured threshold against the
// committed baseline — the serving stack's performance is enforced the
// same way the simulation kernel's is.
package loadtest

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SchemaVersion identifies the report layout. Bump when fields change
// incompatibly; Compare refuses to diff reports with different versions.
const SchemaVersion = 1

// LatencyNoiseFloorNS is the baseline percentile below which Compare
// records but does not gate: a single-digit-millisecond cache-hit
// percentile measures scheduler and loopback jitter, not serving cost.
const LatencyNoiseFloorNS = 5_000_000

// missSeedBase offsets the unique per-miss seeds away from the warm pool
// (seeds 1..WarmSeeds), so a "miss" request can never collide with a
// warmed computation.
const missSeedBase = 1_000_000

// Config parameterizes a load test against a running server.
type Config struct {
	// Target is the base URL of the server (e.g. http://127.0.0.1:8080).
	Target string
	// Experiment and Scale form the request body workload.
	Experiment string
	Scale      string
	// Requests is the measured request count.
	Requests int
	// Concurrency is the number of client workers issuing them.
	Concurrency int
	// HitFraction in [0,1] is the fraction of requests that reuse a seed
	// from the warm pool (store hits); the rest get unique seeds (full
	// computations). The mix is deterministic in the request index.
	HitFraction float64
	// WarmSeeds is the warm pool size; that many distinct seeds are run
	// once, unmeasured, before the clock starts. 0 means 8.
	WarmSeeds int
	// Timeout bounds each request. 0 means 120s.
	Timeout time.Duration
	// Progress, when non-nil, receives a line every few hundred requests.
	Progress io.Writer
}

func (c Config) validated() (Config, error) {
	if c.Target == "" {
		return c, fmt.Errorf("loadtest: missing target URL")
	}
	if c.Experiment == "" {
		return c, fmt.Errorf("loadtest: missing experiment")
	}
	if c.Scale == "" {
		return c, fmt.Errorf("loadtest: missing scale")
	}
	if c.Requests <= 0 {
		return c, fmt.Errorf("loadtest: requests %d must be positive", c.Requests)
	}
	if c.Concurrency <= 0 {
		return c, fmt.Errorf("loadtest: concurrency %d must be positive", c.Concurrency)
	}
	if c.HitFraction < 0 || c.HitFraction > 1 {
		return c, fmt.Errorf("loadtest: hit fraction %v must be in [0,1]", c.HitFraction)
	}
	if c.WarmSeeds == 0 {
		c.WarmSeeds = 8
	}
	if c.WarmSeeds < 0 {
		return c, fmt.Errorf("loadtest: warm seeds %d must be positive", c.WarmSeeds)
	}
	if c.Timeout == 0 {
		c.Timeout = 120 * time.Second
	}
	if c.Timeout < 0 {
		return c, fmt.Errorf("loadtest: timeout %v must be positive", c.Timeout)
	}
	return c, nil
}

// Report is the full load-test record serialized to LOADTEST.json.
// Latencies are client-observed: request start to stream fully drained.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	// CPU and NumCPU describe the recording machine; absolute latencies
	// are only comparable between similar hardware.
	CPU    string `json:"cpu,omitempty"`
	NumCPU int    `json:"num_cpu"`

	// The workload identity — Compare refuses to diff different workloads.
	Experiment  string  `json:"experiment"`
	Scale       string  `json:"scale"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	HitFraction float64 `json:"hit_fraction"`
	WarmSeeds   int     `json:"warm_seeds"`

	// Outcome counts. Completed + Errors + Throttled == Requests.
	Completed    int `json:"completed"`
	Errors       int `json:"errors"`
	Throttled    int `json:"throttled"`
	HitRequests  int `json:"hit_requests"`
	MissRequests int `json:"miss_requests"`

	// WallNS is the measured phase's end-to-end time; RPS the completed
	// request throughput over it.
	WallNS int64   `json:"wall_ns"`
	RPS    float64 `json:"rps"`

	// Latency percentiles over completed requests, nanoseconds.
	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
	MeanNS int64 `json:"mean_ns"`
}

// ErrorRate is the fraction of measured requests that failed outright
// (throttled 429s are counted separately — shedding is the server working
// as designed, not an error).
func (r *Report) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

// runBody is the POST /v1/run payload for one request.
type runBody struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"`
	Seed       uint64 `json:"seed"`
}

// outcome classifies one request.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeThrottled
	outcomeError
)

// Run executes the load test and assembles the report. The warm phase
// runs each warm seed once (unmeasured) so the hit portion of the
// workload actually hits; the measured phase then issues cfg.Requests
// requests across cfg.Concurrency workers with a deterministic hit/miss
// mix.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.validated()
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: cfg.Timeout}
	target := strings.TrimSuffix(cfg.Target, "/")

	// Warm phase: populate the store for the hit seeds. Failures here are
	// fatal — a load test against a server that cannot serve the workload
	// at all would report nonsense.
	for seed := 1; seed <= cfg.WarmSeeds; seed++ {
		if out, err := issue(client, target, runBody{cfg.Experiment, cfg.Scale, uint64(seed)}); err != nil || out != outcomeOK {
			return nil, fmt.Errorf("loadtest: warm request seed %d failed (outcome %d): %v", seed, out, err)
		}
	}

	rep := &Report{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPU:           cpuModel(),
		NumCPU:        runtime.NumCPU(),
		Experiment:    cfg.Experiment,
		Scale:         cfg.Scale,
		Requests:      cfg.Requests,
		Concurrency:   cfg.Concurrency,
		HitFraction:   cfg.HitFraction,
		WarmSeeds:     cfg.WarmSeeds,
	}

	latencies := make([]int64, cfg.Requests) // indexed by request, 0 = not completed
	outcomes := make([]outcome, cfg.Requests)
	var next atomic.Int64
	var done atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests {
					return
				}
				body := runBody{Experiment: cfg.Experiment, Scale: cfg.Scale}
				if isHit(i, cfg.HitFraction) {
					body.Seed = uint64(1 + i%cfg.WarmSeeds)
				} else {
					body.Seed = uint64(missSeedBase + i)
				}
				t0 := time.Now()
				out, err := issue(client, target, body)
				if err != nil {
					out = outcomeError
				}
				outcomes[i] = out
				if out == outcomeOK {
					latencies[i] = time.Since(t0).Nanoseconds()
				}
				if n := done.Add(1); cfg.Progress != nil && n%500 == 0 {
					fmt.Fprintf(cfg.Progress, "loadtest: %d/%d requests\n", n, cfg.Requests)
				}
			}
		}()
	}
	wg.Wait()
	rep.WallNS = time.Since(start).Nanoseconds()

	completed := make([]int64, 0, cfg.Requests)
	for i := range latencies {
		switch outcomes[i] {
		case outcomeOK:
			rep.Completed++
			completed = append(completed, latencies[i])
		case outcomeThrottled:
			rep.Throttled++
		case outcomeError:
			rep.Errors++
		}
		if isHit(i, cfg.HitFraction) {
			rep.HitRequests++
		} else {
			rep.MissRequests++
		}
	}
	if rep.Completed == 0 {
		return nil, fmt.Errorf("loadtest: no request completed (%d errors, %d throttled)", rep.Errors, rep.Throttled)
	}
	sort.Slice(completed, func(i, j int) bool { return completed[i] < completed[j] })
	rep.P50NS = percentile(completed, 0.50)
	rep.P95NS = percentile(completed, 0.95)
	rep.P99NS = percentile(completed, 0.99)
	rep.MaxNS = completed[len(completed)-1]
	var sum int64
	for _, l := range completed {
		sum += l
	}
	rep.MeanNS = sum / int64(len(completed))
	rep.RPS = float64(rep.Completed) / (float64(rep.WallNS) / 1e9)
	return rep, nil
}

// isHit is the deterministic hit/miss mix: hits are interleaved evenly at
// rate hitFraction by integer accumulation (request i is a hit iff the
// running hit budget crosses a whole number at i). Deterministic in i, so
// the baseline and the gating run issue the identical workload at any
// request count.
func isHit(i int, hitFraction float64) bool {
	return math.Floor(float64(i+1)*hitFraction) > math.Floor(float64(i)*hitFraction)
}

// issue posts one run request and drains the NDJSON stream to its final
// line. A request only counts as OK when the stream terminates with a
// "done" line — a 200 whose stream ends in an error line is an error.
func issue(client *http.Client, target string, body runBody) (outcome, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return outcomeError, err
	}
	resp, err := client.Post(target+"/v1/run", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		return outcomeError, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return outcomeThrottled, nil
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return outcomeError, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var last string
	for sc.Scan() {
		last = sc.Text()
	}
	if err := sc.Err(); err != nil {
		return outcomeError, err
	}
	if !strings.Contains(last, `"type":"done"`) {
		return outcomeError, fmt.Errorf("stream ended without done line: %s", last)
	}
	return outcomeOK, nil
}

// percentile is the nearest-rank percentile of a sorted slice.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// cpuModel returns the processor model string on Linux (best effort;
// empty elsewhere or on read failure).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// WriteFile serializes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("loadtest: %s: %w", path, err)
	}
	if r.SchemaVersion == 0 || r.Requests == 0 {
		return nil, fmt.Errorf("loadtest: %s: not a load-test report", path)
	}
	return &r, nil
}

// Regression is one latency percentile that got worse than the baseline
// allows.
type Regression struct {
	// Metric names the gated percentile: "p50" or "p99".
	Metric string `json:"metric"`
	BaseNS int64  `json:"base_ns"`
	CurNS  int64  `json:"cur_ns"`
	// Ratio is Cur/Base (1.30 = 30% worse).
	Ratio float64 `json:"ratio"`
}

// Compare diffs current against base and returns every gated percentile
// that grew by more than threshold (0.30 = fail above +30%). Baselines
// below LatencyNoiseFloorNS are recorded but not gated, mirroring the
// bench gate's noise-floor policy. The workload identities must match —
// comparing different workloads would gate two different jobs.
func Compare(base, current *Report, threshold float64) ([]Regression, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("loadtest: threshold %v must be positive", threshold)
	}
	if base.SchemaVersion != current.SchemaVersion {
		return nil, fmt.Errorf("loadtest: schema mismatch: baseline v%d vs current v%d",
			base.SchemaVersion, current.SchemaVersion)
	}
	switch {
	case base.Experiment != current.Experiment:
		return nil, fmt.Errorf("loadtest: experiment mismatch: baseline %q vs current %q", base.Experiment, current.Experiment)
	case base.Scale != current.Scale:
		return nil, fmt.Errorf("loadtest: scale mismatch: baseline %q vs current %q", base.Scale, current.Scale)
	case base.Requests != current.Requests:
		return nil, fmt.Errorf("loadtest: request-count mismatch: baseline %d vs current %d", base.Requests, current.Requests)
	case base.Concurrency != current.Concurrency:
		return nil, fmt.Errorf("loadtest: concurrency mismatch: baseline %d vs current %d", base.Concurrency, current.Concurrency)
	case base.HitFraction != current.HitFraction:
		return nil, fmt.Errorf("loadtest: hit-fraction mismatch: baseline %v vs current %v", base.HitFraction, current.HitFraction)
	}
	var regs []Regression
	gates := []struct {
		metric string
		b, c   int64
	}{
		{"p50", base.P50NS, current.P50NS},
		{"p99", base.P99NS, current.P99NS},
	}
	for _, g := range gates {
		if g.b < LatencyNoiseFloorNS || g.b == 0 {
			continue
		}
		if ratio := float64(g.c) / float64(g.b); ratio > 1+threshold {
			regs = append(regs, Regression{Metric: g.metric, BaseNS: g.b, CurNS: g.c, Ratio: ratio})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Ratio > regs[j].Ratio })
	return regs, nil
}

// CheckErrorRate enforces an absolute error-rate ceiling on a report.
// Like bench.CheckCeilings it needs no baseline: a load test with failing
// requests is broken regardless of how fast the survivors were.
func CheckErrorRate(rep *Report, maxRate float64) error {
	if maxRate < 0 || maxRate >= 1 {
		return fmt.Errorf("loadtest: max error rate %v must be in [0,1)", maxRate)
	}
	if rate := rep.ErrorRate(); rate > maxRate {
		return fmt.Errorf("loadtest: error rate %.4f (%d/%d) exceeds the %.4f ceiling",
			rate, rep.Errors, rep.Requests, maxRate)
	}
	return nil
}

// WaitReady polls the target's /healthz until it answers 200 or the
// context ends — the hand-off between `pbbf serve` starting in the
// background and the load test beginning.
func WaitReady(ctx context.Context, target string) error {
	target = strings.TrimSuffix(target, "/")
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("loadtest: server at %s never became ready: %w", target, ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
}
