package match

import (
	"reflect"
	"testing"
)

func TestDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"fig8", "figg8", 1},
		{"pbbf", "obbf", 1},
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestClosest(t *testing.T) {
	known := []string{"pbbf", "sleepsched", "ola"}
	cases := []struct {
		in   string
		want []string
	}{
		{"pbfb", []string{"pbbf"}},
		{"sleepshed", []string{"sleepsched"}},
		{"sleep", []string{"sleepsched"}}, // prefix match
		{"OLA ", []string{"ola"}},         // case/space insensitive
		{"zzzzzzzz", nil},
		{"", nil},
	}
	for _, c := range cases {
		if got := Closest(c.in, known, 3); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Closest(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClosestOrdersByDistance(t *testing.T) {
	known := []string{"extcluster", "extcorridor", "extchurn"}
	got := Closest("extchurm", known, 3)
	if len(got) == 0 || got[0] != "extchurn" {
		t.Fatalf("Closest(extchurm) = %v, want extchurn first", got)
	}
}

func TestClosestRespectsMax(t *testing.T) {
	known := []string{"fig13", "fig14", "fig15", "fig16"}
	if got := Closest("fig1", known, 2); len(got) != 2 {
		t.Fatalf("Closest with max=2 returned %v", got)
	}
}
