// Package match provides the did-you-mean suggestion logic shared by every
// name registry in this repository: scenario IDs, protocol names, and any
// future keyed namespace. One implementation keeps the CLI's error style
// uniform — a typo'd -experiment and a typo'd -protocol produce the same
// kind of actionable message.
package match

import (
	"sort"
	"strings"
)

// Closest returns up to max known names close to the given (unknown) name,
// nearest first: small edit distances, plus prefix matches of at least
// three characters ("extclu" suggests the extcluster family). An empty
// slice means nothing plausible is known. Matching is case- and
// surrounding-space-insensitive; results keep the known names' spelling.
func Closest(name string, known []string, max int) []string {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" || max <= 0 {
		return nil
	}
	type candidate struct {
		name string
		dist int
	}
	var cands []candidate
	for _, k := range known {
		d := Distance(name, strings.ToLower(k))
		// Accept near misses (≤2 edits), or ≤3 for longer names, or a
		// shared prefix of at least three characters.
		limit := 2
		if len(k) >= 8 {
			limit = 3
		}
		if d <= limit || (len(name) >= 3 && strings.HasPrefix(strings.ToLower(k), name)) {
			cands = append(cands, candidate{k, d})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	if len(cands) > max {
		cands = cands[:max]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// Distance is the Levenshtein edit distance between two short names.
func Distance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
