// Package idealsim implements the Section 4 simulator: PBBF on a grid with
// an ideal MAC and physical layer — no collisions, no interference, no
// losses other than sleeping receivers. The paper uses this engine for the
// threshold plots (Figures 4 and 5), the energy verification of Equation 8
// (Figure 8), the hop-stretch plots (Figures 9 and 10), the per-hop latency
// plot (Figure 11), and the trade-off curve (Figure 12).
//
// # Model
//
// Time is divided into beacon intervals (frames) of length Tframe; the
// first Tactive of each frame is the ATIM window, during which every node
// is awake. Whether a node stays awake through the *sleep* portion of frame
// k is an independent coin with bias q, deterministic per (run, node,
// frame) so that reception decisions and energy accounting observe the
// same coin.
//
// A node holding a fresh broadcast either:
//
//   - forwards immediately (probability p): the packet is delivered L1
//     later to each neighbor awake at the send time (awake = inside the
//     ATIM window, or its stay-awake coin for the frame is true); or
//   - forwards normally: it announces the packet in the next ATIM window
//     and the packet is delivered to all neighbors L1 after that window
//     ends.
//
// Nodes drop duplicates, so each broadcast builds a spanning tree rooted at
// the source, exactly the structure the paper's bond-percolation analysis
// assumes.
package idealsim

import (
	"fmt"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/energy"
	"pbbf/internal/rng"
	"pbbf/internal/sim"
	"pbbf/internal/stats"
	"pbbf/internal/topo"
)

// Config parameterizes one ideal-simulator run. Zero values are invalid;
// use Defaults for the paper's Table 1 settings and override as needed.
type Config struct {
	// Topo is the network; the paper uses square grids.
	Topo topo.Topology
	// Source is the broadcast origin (paper: grid center).
	Source topo.NodeID
	// Params are the PBBF knobs.
	Params core.Params
	// Timing is the sleep schedule (Table 1: Tactive=1s, Tframe=10s).
	Timing core.Timing
	// L1 is the channel-access time for a data transmission (Table 1: ≈1.5s).
	L1 time.Duration
	// Lambda is the source's update generation rate in updates/second
	// (Table 1: 0.01).
	Lambda float64
	// Updates is the number of broadcasts the source generates.
	Updates int
	// Profile is the radio power model (Table 1: Mica2).
	Profile energy.Profile
	// TxTime is the on-air time of one data packet, used only for the
	// transmit-energy surcharge (64 B at 19.2 kbps ≈ 26.7 ms).
	TxTime time.Duration
	// TrackHopDistances lists BFS distances from the source at which hop
	// stretch and absolute latency are recorded (Figures 9/10 use 20, 60).
	TrackHopDistances []int
	// ExtendOnReceive, when positive, models a T-MAC-style adaptive sleep
	// schedule (van Dam & Langendoen, cited as [19] in the paper): a node
	// that receives a broadcast stays awake for this long afterwards, so
	// immediate rebroadcasts within the window land regardless of the q
	// coin. Zero reproduces plain 802.11 PSM semantics.
	ExtendOnReceive time.Duration
	// Seed drives all coins in the run.
	Seed uint64
}

// Defaults returns the Table 1 configuration on the given topology,
// leaving Params zero (PSM) for the caller to override.
func Defaults(t topo.Topology, src topo.NodeID) Config {
	return Config{
		Topo:    t,
		Source:  src,
		Timing:  core.Timing{Active: time.Second, Frame: 10 * time.Second},
		L1:      1500 * time.Millisecond,
		Lambda:  0.01,
		Updates: 5,
		Profile: energy.Mica2(),
		TxTime:  (64 * 8 * time.Second) / 19200,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Topo == nil || c.Topo.N() == 0 {
		return fmt.Errorf("idealsim: empty topology")
	}
	if int(c.Source) < 0 || int(c.Source) >= c.Topo.N() {
		return fmt.Errorf("idealsim: source %d outside [0,%d)", c.Source, c.Topo.N())
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.L1 <= 0 {
		return fmt.Errorf("idealsim: L1 %v must be positive", c.L1)
	}
	if c.Lambda <= 0 {
		return fmt.Errorf("idealsim: lambda %v must be positive", c.Lambda)
	}
	if c.Updates <= 0 {
		return fmt.Errorf("idealsim: updates %d must be positive", c.Updates)
	}
	if c.TxTime < 0 {
		return fmt.Errorf("idealsim: TxTime %v negative", c.TxTime)
	}
	if c.ExtendOnReceive < 0 {
		return fmt.Errorf("idealsim: ExtendOnReceive %v negative", c.ExtendOnReceive)
	}
	return nil
}

// Result aggregates the metrics of one run.
type Result struct {
	// Coverage[i] is the fraction of nodes that received update i.
	Coverage []float64
	// PerHopLatency accumulates latency/hops (in seconds) over every
	// (update, receiving node) pair.
	PerHopLatency stats.Accumulator
	// HopsAtDistance maps a tracked BFS distance d to the distribution of
	// dissemination-tree path lengths for nodes at distance d (Figs 9/10).
	HopsAtDistance map[int]*stats.Accumulator
	// LatencyAtDistance maps a tracked BFS distance to absolute update
	// latency in seconds.
	LatencyAtDistance map[int]*stats.Accumulator
	// EnergyPerUpdateJ is the mean per-node energy per generated update.
	EnergyPerUpdateJ float64
	// NodesAtDistance reports how many nodes sit at each tracked distance.
	NodesAtDistance map[int]int
}

// FractionOfUpdatesReceivedBy returns the fraction of updates whose
// coverage reached at least the given fraction of nodes — the y axis of
// Figures 4 and 5.
func (r *Result) FractionOfUpdatesReceivedBy(fraction float64) float64 {
	if len(r.Coverage) == 0 {
		return 0
	}
	hit := 0
	for _, c := range r.Coverage {
		if c >= fraction {
			hit++
		}
	}
	return float64(hit) / float64(len(r.Coverage))
}

// MeanCoverage returns the average per-update coverage (Figure 16's metric
// in the ideal setting).
func (r *Result) MeanCoverage() float64 {
	var acc stats.Accumulator
	for _, c := range r.Coverage {
		acc.Add(c)
	}
	return acc.Mean()
}

// Run executes the simulation and returns its metrics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := newSimulator(cfg)
	return s.run()
}

type nodeState struct {
	received bool
	hops     int
	recvAt   time.Duration
	// wakeUntil is the end of the node's T-MAC-style wake extension
	// within the current update (zero when disabled).
	wakeUntil time.Duration
}

type simulator struct {
	cfg    Config
	kernel *sim.Kernel
	fwdRNG *rng.Source // drives p coins (order-dependent, per run)
	nodes  []nodeState
	sent   []int // transmissions per node across all updates (TX energy)
	// extraAwake accrues T-MAC wake-extension time not already covered by
	// the ATIM window or the q coin (energy accounting).
	extraAwake []time.Duration
	dist       []int // BFS distances from source
	result     *Result
	originT    time.Duration // generation time of the in-flight update
}

func newSimulator(cfg Config) *simulator {
	base := rng.New(cfg.Seed)
	s := &simulator{
		cfg:        cfg,
		fwdRNG:     base.Split(),
		nodes:      make([]nodeState, cfg.Topo.N()),
		sent:       make([]int, cfg.Topo.N()),
		extraAwake: make([]time.Duration, cfg.Topo.N()),
		dist:       topo.HopDistances(cfg.Topo, cfg.Source),
		result: &Result{
			HopsAtDistance:    make(map[int]*stats.Accumulator, len(cfg.TrackHopDistances)),
			LatencyAtDistance: make(map[int]*stats.Accumulator, len(cfg.TrackHopDistances)),
			NodesAtDistance:   make(map[int]int, len(cfg.TrackHopDistances)),
		},
	}
	for _, d := range cfg.TrackHopDistances {
		s.result.HopsAtDistance[d] = &stats.Accumulator{}
		s.result.LatencyAtDistance[d] = &stats.Accumulator{}
		count := 0
		for _, dd := range s.dist {
			if dd == d {
				count++
			}
		}
		s.result.NodesAtDistance[d] = count
	}
	return s
}

// stayAwakeCoin is the deterministic per-(node, frame) q coin. It is a
// pure function of the run seed so that packet delivery and energy
// accounting always agree, regardless of evaluation order.
func (s *simulator) stayAwakeCoin(node topo.NodeID, frame int64) bool {
	if s.cfg.Params.Q <= 0 {
		return false
	}
	if s.cfg.Params.Q >= 1 {
		return true
	}
	mix := s.cfg.Seed ^ uint64(node)*0x9e3779b97f4a7c15 ^ uint64(frame)*0xc2b2ae3d27d4eb4f
	return rng.New(mix).Float64() < s.cfg.Params.Q
}

func (s *simulator) frameIndex(t time.Duration) int64 {
	return int64(t / s.cfg.Timing.Frame)
}

// inATIMWindow reports whether t falls in the awake-for-everyone window.
func (s *simulator) inATIMWindow(t time.Duration) bool {
	return t-time.Duration(s.frameIndex(t))*s.cfg.Timing.Frame < s.cfg.Timing.Active
}

// awake reports whether node is listening at time t.
func (s *simulator) awake(node topo.NodeID, t time.Duration) bool {
	if s.inATIMWindow(t) {
		return true
	}
	if s.cfg.ExtendOnReceive > 0 {
		// T-MAC: idle-listen for the timeout after every ATIM window, and
		// for the timeout after the last heard channel activity.
		frameStart := time.Duration(s.frameIndex(t)) * s.cfg.Timing.Frame
		if t < frameStart+s.cfg.Timing.Active+s.cfg.ExtendOnReceive {
			return true
		}
		if t < s.nodes[node].wakeUntil {
			return true
		}
	}
	return s.stayAwakeCoin(node, s.frameIndex(t))
}

// extendWake charges a node's T-MAC wake extension to the energy account
// and records the new wake horizon. Only the portion not already covered
// by a previous extension, the ATIM window, or the node's q coin is
// charged.
func (s *simulator) extendWake(node topo.NodeID, from time.Duration) {
	if s.cfg.ExtendOnReceive <= 0 {
		return
	}
	st := &s.nodes[node]
	until := from + s.cfg.ExtendOnReceive
	start := from
	if st.wakeUntil > start {
		start = st.wakeUntil // already awake through here; charge only the tail
	}
	if until > st.wakeUntil {
		st.wakeUntil = until
	}
	for t := start; t < until; {
		frame := s.frameIndex(t)
		frameStart := time.Duration(frame) * s.cfg.Timing.Frame
		// The ATIM window plus the per-frame base idle-listen timeout are
		// charged by accountEnergy already.
		if freeEnd := frameStart + s.cfg.Timing.Active + s.cfg.ExtendOnReceive; t < freeEnd {
			t = freeEnd
			continue
		}
		segEnd := frameStart + s.cfg.Timing.Frame
		if until < segEnd {
			segEnd = until
		}
		if !s.stayAwakeCoin(node, frame) {
			s.extraAwake[node] += segEnd - t
		}
		t = segEnd
	}
}

// nextNormalDelivery returns the delivery time of a normal broadcast held
// at time t: the packet is announced in the next usable ATIM window and
// transmitted L1 after that window ends.
func (s *simulator) nextNormalDelivery(t time.Duration) time.Duration {
	frame := s.frameIndex(t)
	windowEnd := time.Duration(frame)*s.cfg.Timing.Frame + s.cfg.Timing.Active
	if t >= windowEnd {
		// Missed this frame's window; use the next frame's.
		windowEnd += s.cfg.Timing.Frame
	}
	return windowEnd + s.cfg.L1
}

func (s *simulator) run() (*Result, error) {
	interval := time.Duration(float64(time.Second) / s.cfg.Lambda)
	for u := 0; u < s.cfg.Updates; u++ {
		s.originT = time.Duration(u) * interval
		s.kernel = sim.NewKernel()
		for i := range s.nodes {
			s.nodes[i] = nodeState{}
		}
		s.deliverToSource()
		if err := s.kernel.RunUntilIdle(); err != nil {
			return nil, err
		}
		s.harvestUpdate()
	}
	s.accountEnergy(time.Duration(s.cfg.Updates) * interval)
	return s.result, nil
}

// deliverToSource injects the update at the source. Updates arrive during
// the ATIM window (the paper generates them deterministically on frame
// boundaries), so the source announces in the same window and transmits
// when it ends.
func (s *simulator) deliverToSource() {
	src := s.cfg.Source
	s.nodes[src] = nodeState{received: true, hops: 0, recvAt: s.originT}
	s.kernel.ScheduleAt(s.originT, func() {
		s.transmit(src, s.nextNormalDelivery(s.kernel.Now()), true)
	})
}

// transmit delivers the packet from sender at the given absolute time.
// normal=true means an ATIM-announced broadcast every neighbor wakes for;
// normal=false is an immediate broadcast only awake neighbors catch.
func (s *simulator) transmit(sender topo.NodeID, at time.Duration, normal bool) {
	s.sent[sender]++
	s.kernel.ScheduleAt(at, func() {
		now := s.kernel.Now()
		// For immediate broadcasts the receiver must be listening when the
		// carrier starts (one channel-access time before delivery); nodes
		// that catch the carrier also renew their T-MAC wake timeout.
		carrierStart := now - s.cfg.L1
		if carrierStart < 0 {
			carrierStart = 0
		}
		for _, nb := range s.cfg.Topo.Neighbors(sender) {
			if normal || s.awake(nb, carrierStart) {
				s.extendWake(nb, now)
				s.receive(nb, sender, now)
			}
		}
	})
}

// receive handles first receptions: record metrics and make the Figure 3
// forwarding decision.
func (s *simulator) receive(node, from topo.NodeID, now time.Duration) {
	st := &s.nodes[node]
	if st.received {
		return // duplicate: dropped, not forwarded
	}
	st.received = true
	st.hops = s.nodes[from].hops + 1
	st.recvAt = now
	if s.cfg.Params.ForwardImmediately(s.fwdRNG) {
		s.transmit(node, now+s.cfg.L1, false)
	} else {
		s.transmit(node, s.nextNormalDelivery(now), true)
	}
}

// harvestUpdate folds the finished update's reception state into Result.
func (s *simulator) harvestUpdate() {
	received := 0
	for id := range s.nodes {
		st := &s.nodes[id]
		if !st.received {
			continue
		}
		received++
		if topo.NodeID(id) == s.cfg.Source {
			continue
		}
		latency := (st.recvAt - s.originT).Seconds()
		s.result.PerHopLatency.Add(latency / float64(st.hops))
		if acc, ok := s.result.HopsAtDistance[s.dist[id]]; ok {
			acc.Add(float64(st.hops))
			s.result.LatencyAtDistance[s.dist[id]].Add(latency)
		}
	}
	s.result.Coverage = append(s.result.Coverage, float64(received)/float64(len(s.nodes)))
}

// accountEnergy charges each node for its awake time over the horizon plus
// the transmit surcharge, and normalizes per node per update. The duty
// cycle term reproduces Equation 8; transmissions add (PTX−PI)·TxTime each.
func (s *simulator) accountEnergy(horizon time.Duration) {
	frames := int64(horizon / s.cfg.Timing.Frame)
	if time.Duration(frames)*s.cfg.Timing.Frame < horizon {
		frames++
	}
	var total float64
	sleep := s.cfg.Timing.Sleep()
	// T-MAC base idle-listen timeout, charged every frame the q coin
	// would otherwise sleep through.
	baseExt := s.cfg.ExtendOnReceive
	if baseExt > sleep {
		baseExt = sleep
	}
	for id := range s.nodes {
		var awakeTime, sleepTime time.Duration
		for f := int64(0); f < frames; f++ {
			if s.stayAwakeCoin(topo.NodeID(id), f) {
				awakeTime += s.cfg.Timing.Frame
			} else {
				awakeTime += s.cfg.Timing.Active + baseExt
				sleepTime += sleep - baseExt
			}
		}
		joules := s.cfg.Profile.IdleW*awakeTime.Seconds() +
			s.cfg.Profile.SleepW*sleepTime.Seconds() +
			(s.cfg.Profile.IdleW-s.cfg.Profile.SleepW)*s.extraAwake[id].Seconds() +
			(s.cfg.Profile.TransmitW-s.cfg.Profile.IdleW)*s.cfg.TxTime.Seconds()*float64(s.sent[id])
		total += joules
	}
	s.result.EnergyPerUpdateJ = total / float64(len(s.nodes)) / float64(s.cfg.Updates)
}
