package idealsim

import (
	"testing"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/topo"
)

func TestExtendOnReceiveValidation(t *testing.T) {
	cfg := testConfig(10, 10, core.PSM(), 1)
	cfg.ExtendOnReceive = -time.Second
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative extension accepted")
	}
}

func TestTMACExtensionImprovesCoverage(t *testing.T) {
	// p=1, q=0 over plain PSM: immediate broadcasts find everyone asleep
	// and the flood dies at hop 1. A T-MAC-style extension lets nodes that
	// heard the ATIM-announced first hop stay awake, so immediate chains
	// can ride the extension window.
	psm := testConfig(15, 15, core.Params{P: 1, Q: 0}, 5)
	resPSM, err := Run(psm)
	if err != nil {
		t.Fatal(err)
	}
	tmac := testConfig(15, 15, core.Params{P: 1, Q: 0}, 5)
	tmac.ExtendOnReceive = 3200 * time.Millisecond
	resTMAC, err := Run(tmac)
	if err != nil {
		t.Fatal(err)
	}
	if resTMAC.MeanCoverage() <= resPSM.MeanCoverage() {
		t.Fatalf("extension did not help: PSM=%v TMAC=%v",
			resPSM.MeanCoverage(), resTMAC.MeanCoverage())
	}
}

func TestTMACExtensionCostsEnergy(t *testing.T) {
	base := testConfig(15, 15, core.Params{P: 0.75, Q: 0.25}, 6)
	resBase, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ext := testConfig(15, 15, core.Params{P: 0.75, Q: 0.25}, 6)
	ext.ExtendOnReceive = 3 * time.Second
	resExt, err := Run(ext)
	if err != nil {
		t.Fatal(err)
	}
	if resExt.EnergyPerUpdateJ <= resBase.EnergyPerUpdateJ {
		t.Fatalf("extension energy %v not above baseline %v",
			resExt.EnergyPerUpdateJ, resBase.EnergyPerUpdateJ)
	}
	// The extension is bounded: a few seconds per reception per update
	// cannot exceed the always-on bound.
	on := testConfig(15, 15, core.AlwaysOn(), 6)
	resOn, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	if resExt.EnergyPerUpdateJ > resOn.EnergyPerUpdateJ*1.01 {
		t.Fatalf("extension energy %v exceeds always-on %v",
			resExt.EnergyPerUpdateJ, resOn.EnergyPerUpdateJ)
	}
}

func TestTMACZeroExtensionIsPSM(t *testing.T) {
	a := testConfig(12, 12, core.Params{P: 0.5, Q: 0.5}, 7)
	resA, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	b := testConfig(12, 12, core.Params{P: 0.5, Q: 0.5}, 7)
	b.ExtendOnReceive = 0
	resB, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if resA.EnergyPerUpdateJ != resB.EnergyPerUpdateJ ||
		resA.MeanCoverage() != resB.MeanCoverage() {
		t.Fatal("zero extension changed behaviour")
	}
}

func TestTMACExtensionDeterministic(t *testing.T) {
	run := func() (float64, float64) {
		cfg := testConfig(12, 12, core.Params{P: 0.75, Q: 0.1}, 8)
		cfg.ExtendOnReceive = 2 * time.Second
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanCoverage(), res.EnergyPerUpdateJ
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 || e1 != e2 {
		t.Fatal("T-MAC runs with identical seeds diverged")
	}
}

func TestTMACEnergyAccountingCharged(t *testing.T) {
	// With q=0 the only awake time beyond the ATIM window is the
	// extension; energy must exceed plain PSM's whenever coverage did.
	cfg := testConfig(12, 12, core.Params{P: 1, Q: 0}, 9)
	cfg.ExtendOnReceive = 5 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	psm := testConfig(12, 12, core.PSM(), 9)
	resPSM, err := Run(psm)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCoverage() > resPSM.MeanCoverage()*0.2 &&
		res.EnergyPerUpdateJ <= resPSM.EnergyPerUpdateJ {
		t.Fatalf("extension time not charged: ext=%v psm=%v",
			res.EnergyPerUpdateJ, resPSM.EnergyPerUpdateJ)
	}
}

// dummy reference to topo to keep the import used if tests shrink.
var _ = topo.NodeID(0)
