package idealsim

import (
	"math"
	"testing"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/topo"
)

func testConfig(w, h int, params core.Params, seed uint64) Config {
	g := topo.MustGrid(w, h)
	cfg := Defaults(g, g.Center())
	cfg.Params = params
	cfg.Seed = seed
	return cfg
}

func TestValidate(t *testing.T) {
	good := testConfig(10, 10, core.PSM(), 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Topo = nil },
		func(c *Config) { c.Source = -1 },
		func(c *Config) { c.Source = topo.NodeID(c.Topo.N()) },
		func(c *Config) { c.Params.P = 2 },
		func(c *Config) { c.Timing.Active = 0 },
		func(c *Config) { c.L1 = 0 },
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.Updates = 0 },
		func(c *Config) { c.TxTime = -time.Second },
	}
	for i, mutate := range mutations {
		cfg := testConfig(10, 10, core.PSM(), 1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestPSMFullCoverage(t *testing.T) {
	// PSM (p=0): every forward is a normal broadcast all neighbors wake
	// for; on a connected grid every update reaches every node.
	res, err := Run(testConfig(15, 15, core.PSM(), 1))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Coverage {
		if c != 1 {
			t.Fatalf("update %d coverage %v, want 1", i, c)
		}
	}
	if got := res.FractionOfUpdatesReceivedBy(0.99); got != 1 {
		t.Fatalf("fraction received by 99%% = %v", got)
	}
}

func TestAlwaysOnFullCoverageAndLowLatency(t *testing.T) {
	res, err := Run(testConfig(15, 15, core.AlwaysOn(), 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MeanCoverage(); got != 1 {
		t.Fatalf("coverage = %v", got)
	}
	// All hops are immediate: per-hop latency ≈ L1 = 1.5 s (the first hop
	// carries the source's ATIM-window delay, so allow some slack).
	if got := res.PerHopLatency.Mean(); got > 3 {
		t.Fatalf("always-on per-hop latency %v s, want ≈1.5", got)
	}
}

func TestPSMPerHopLatencyNearBeaconInterval(t *testing.T) {
	cfg := testConfig(15, 15, core.PSM(), 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each hop beyond the first waits a full beacon interval; the per-hop
	// mean converges toward Tframe = 10 s from below.
	got := res.PerHopLatency.Mean()
	if got < 5 || got > 11.5 {
		t.Fatalf("PSM per-hop latency %v s, want within (5, 11.5)", got)
	}
}

func TestHighPZeroQLosesCoverage(t *testing.T) {
	// p=0.75, q=0: edge probability 0.25 < pc(0.5); the broadcast dies
	// near the source.
	res, err := Run(testConfig(20, 20, core.Params{P: 0.75, Q: 0}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MeanCoverage(); got > 0.5 {
		t.Fatalf("subcritical coverage %v, want small", got)
	}
}

func TestThresholdBehaviorInQ(t *testing.T) {
	// At p=0.5: q=0 gives pedge=0.5 (critical, unreliable for 99%);
	// q=0.8 gives pedge=0.9 (deep in the supercritical region).
	low, err := Run(testConfig(20, 20, core.Params{P: 0.5, Q: 0.1}, 5))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(testConfig(20, 20, core.Params{P: 0.5, Q: 0.8}, 5))
	if err != nil {
		t.Fatal(err)
	}
	if low.FractionOfUpdatesReceivedBy(0.99) >= high.FractionOfUpdatesReceivedBy(0.99) &&
		low.MeanCoverage() >= high.MeanCoverage() {
		t.Fatalf("no threshold: low-q coverage %v >= high-q coverage %v",
			low.MeanCoverage(), high.MeanCoverage())
	}
	if got := high.FractionOfUpdatesReceivedBy(0.99); got < 0.99 {
		t.Fatalf("supercritical reliability %v, want ≈1", got)
	}
}

func TestEnergyMatchesEquation8(t *testing.T) {
	// Figure 8's claim: measured energy is linear in q and matches the
	// duty-cycle analysis; p does not matter.
	timing := core.Timing{Active: time.Second, Frame: 10 * time.Second}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		cfg := testConfig(15, 15, core.Params{P: 0.25, Q: q}, 6)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Expected per-node per-update energy: average power × 1/λ.
		period := 1 / cfg.Lambda
		wantW := cfg.Profile.IdleW*core.EnergyPBBF(timing, q) +
			cfg.Profile.SleepW*(1-core.EnergyPBBF(timing, q))
		want := wantW * period
		// Coin noise across 225 nodes × 50 frames stays within a few
		// percent; TX surcharge adds a hair.
		if math.Abs(res.EnergyPerUpdateJ-want) > want*0.08+0.01 {
			t.Fatalf("q=%v: energy %v J, analysis %v J", q, res.EnergyPerUpdateJ, want)
		}
	}
}

func TestEnergyIndependentOfP(t *testing.T) {
	a, err := Run(testConfig(15, 15, core.Params{P: 0.05, Q: 0.5}, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(15, 15, core.Params{P: 0.75, Q: 0.5}, 7))
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(a.EnergyPerUpdateJ - b.EnergyPerUpdateJ)
	if diff > a.EnergyPerUpdateJ*0.02 {
		t.Fatalf("energy depends on p: %v vs %v", a.EnergyPerUpdateJ, b.EnergyPerUpdateJ)
	}
}

func TestEnergyMonotoneInQ(t *testing.T) {
	prev := -1.0
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		res, err := Run(testConfig(12, 12, core.Params{P: 0.25, Q: q}, 8))
		if err != nil {
			t.Fatal(err)
		}
		if res.EnergyPerUpdateJ < prev {
			t.Fatalf("energy decreased at q=%v: %v after %v", q, res.EnergyPerUpdateJ, prev)
		}
		prev = res.EnergyPerUpdateJ
	}
}

func TestLatencyDecreasesWithQ(t *testing.T) {
	// Figure 11's right side: at supercritical q, higher q lowers per-hop
	// latency because more hops are immediate.
	slow, err := Run(testConfig(15, 15, core.Params{P: 0.75, Q: 0.6}, 9))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(testConfig(15, 15, core.Params{P: 0.75, Q: 1}, 9))
	if err != nil {
		t.Fatal(err)
	}
	if fast.PerHopLatency.Mean() >= slow.PerHopLatency.Mean() {
		t.Fatalf("latency did not fall with q: %v -> %v",
			slow.PerHopLatency.Mean(), fast.PerHopLatency.Mean())
	}
}

func TestHopStretchAtHighReliability(t *testing.T) {
	// Figures 9/10: at q=1 every node receives along shortest-ish paths,
	// so path length ≈ BFS distance.
	cfg := testConfig(21, 21, core.Params{P: 0.5, Q: 1}, 10)
	cfg.TrackHopDistances = []int{8}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := res.HopsAtDistance[8]
	if acc.N() == 0 {
		t.Fatal("no samples at distance 8")
	}
	if got := acc.Mean(); got > 8*1.3 {
		t.Fatalf("hop stretch at q=1: %v hops for distance 8", got)
	}
	if res.NodesAtDistance[8] == 0 {
		t.Fatal("NodesAtDistance not populated")
	}
}

func TestHopStretchGrowsAtLowQ(t *testing.T) {
	// Near the reliability boundary the spanning tree takes detours:
	// average path length at a tracked distance exceeds the distance.
	base := testConfig(21, 21, core.Params{P: 0.5, Q: 0.35}, 11)
	base.TrackHopDistances = []int{8}
	base.Updates = 20
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	acc := res.HopsAtDistance[8]
	if acc.N() == 0 {
		t.Skip("no node at distance 8 reached at this q; subcritical run")
	}
	direct := testConfig(21, 21, core.Params{P: 0.5, Q: 1}, 11)
	direct.TrackHopDistances = []int{8}
	resDirect, err := Run(direct)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Mean() < resDirect.HopsAtDistance[8].Mean() {
		t.Fatalf("low-q stretch %v below high-q stretch %v",
			acc.Mean(), resDirect.HopsAtDistance[8].Mean())
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(testConfig(12, 12, core.Params{P: 0.5, Q: 0.5}, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(12, 12, core.Params{P: 0.5, Q: 0.5}, 42))
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyPerUpdateJ != b.EnergyPerUpdateJ {
		t.Fatal("energy differs across identical seeds")
	}
	if a.PerHopLatency.Mean() != b.PerHopLatency.Mean() {
		t.Fatal("latency differs across identical seeds")
	}
	for i := range a.Coverage {
		if a.Coverage[i] != b.Coverage[i] {
			t.Fatal("coverage differs across identical seeds")
		}
	}
}

func TestSeedsChangeOutcomes(t *testing.T) {
	a, err := Run(testConfig(15, 15, core.Params{P: 0.5, Q: 0.45}, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(15, 15, core.Params{P: 0.5, Q: 0.45}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.PerHopLatency.Mean() == b.PerHopLatency.Mean() &&
		a.MeanCoverage() == b.MeanCoverage() {
		t.Fatal("different seeds produced identical stochastic outcomes")
	}
}

func TestCoverageBounds(t *testing.T) {
	res, err := Run(testConfig(10, 10, core.Params{P: 0.375, Q: 0.5}, 12))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Coverage {
		if c < 1.0/100 || c > 1 {
			t.Fatalf("coverage %v out of range", c)
		}
	}
}

func BenchmarkRunGrid30PSM(b *testing.B) {
	cfg := testConfig(30, 30, core.PSM(), 1)
	cfg.Updates = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunGrid30PBBF(b *testing.B) {
	cfg := testConfig(30, 30, core.Params{P: 0.5, Q: 0.5}, 1)
	cfg.Updates = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
