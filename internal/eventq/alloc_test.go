package eventq

import (
	"testing"
	"time"

	"pbbf/internal/raceflag"
)

// TestQueueSteadyStateZeroAlloc pins the event-queue hot path to zero
// allocations: once the slab has grown to the working set, the
// push/cancel/pop cycle every simulated event goes through must recycle
// slots instead of allocating. The callback is bound once outside the
// measured loop — in the simulator all recurring callbacks are pre-bound
// the same way.
func TestQueueSteadyStateZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	var q Queue
	fn := func() {}
	// Warm the slab and heap to the loop's working set.
	for i := 0; i < 64; i++ {
		q.Push(time.Duration(i), fn)
	}
	for {
		if _, _, ok := q.Pop(); !ok {
			break
		}
	}
	at := time.Duration(0)
	allocs := testing.AllocsPerRun(200, func() {
		at++
		q.Push(at, fn)
		h := q.Push(at+1, fn)
		q.Cancel(h)
		if _, _, ok := q.Pop(); !ok {
			t.Fatal("queue unexpectedly empty")
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state push/cancel/pop allocated %v times, want 0", allocs)
	}
}
