package eventq

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"pbbf/internal/rng"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatal("empty queue has nonzero length")
	}
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue returned event")
	}
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue returned event")
	}
}

func TestOrderedPop(t *testing.T) {
	var q Queue
	times := []time.Duration{5, 1, 3, 2, 4}
	for _, d := range times {
		q.Push(d*time.Second, nil)
	}
	var got []time.Duration
	for q.Len() > 0 {
		got = append(got, q.Pop().At)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order: %v", got)
		}
	}
	if len(got) != len(times) {
		t.Fatalf("popped %d events, pushed %d", len(got), len(times))
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	var q Queue
	const n = 50
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		i := i
		q.Push(time.Second, func() { order = append(order, i) })
	}
	for q.Len() > 0 {
		q.Pop().Fn()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of insertion order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	e1 := q.Push(1*time.Second, nil)
	e2 := q.Push(2*time.Second, nil)
	e3 := q.Push(3*time.Second, nil)
	if !q.Cancel(e2) {
		t.Fatal("Cancel returned false for pending event")
	}
	if q.Cancel(e2) {
		t.Fatal("double Cancel returned true")
	}
	if !e2.Cancelled() {
		t.Fatal("cancelled event not marked cancelled")
	}
	if got := q.Pop(); got != e1 {
		t.Fatalf("first pop = %v, want e1", got.At)
	}
	if got := q.Pop(); got != e3 {
		t.Fatalf("second pop = %v, want e3", got.At)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty: %d", q.Len())
	}
}

func TestCancelHead(t *testing.T) {
	var q Queue
	e1 := q.Push(1*time.Second, nil)
	e2 := q.Push(2*time.Second, nil)
	q.Cancel(e1)
	if got := q.Peek(); got != e2 {
		t.Fatal("head cancel did not promote next event")
	}
}

func TestCancelNil(t *testing.T) {
	var q Queue
	if q.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestPoppedEventCancelled(t *testing.T) {
	var q Queue
	e := q.Push(time.Second, nil)
	q.Pop()
	if !e.Cancelled() {
		t.Fatal("popped event still claims to be pending")
	}
	if q.Cancel(e) {
		t.Fatal("Cancel after Pop returned true")
	}
}

// Property: interleaved pushes and cancels always drain in sorted order and
// cancelled events never appear.
func TestPropertyHeapOrder(t *testing.T) {
	check := func(seed uint64, rawN uint8) bool {
		r := rng.New(seed)
		n := int(rawN)%200 + 1
		var q Queue
		handles := make([]*Event, 0, n)
		for i := 0; i < n; i++ {
			at := time.Duration(r.Intn(50)) * time.Millisecond
			handles = append(handles, q.Push(at, nil))
		}
		cancelled := map[*Event]bool{}
		for _, h := range handles {
			if r.Bool(0.3) {
				q.Cancel(h)
				cancelled[h] = true
			}
		}
		var want []time.Duration
		for _, h := range handles {
			if !cancelled[h] {
				want = append(want, h.At)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := 0; q.Len() > 0; i++ {
			e := q.Pop()
			if cancelled[e] {
				return false
			}
			if i >= len(want) || e.At != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sequence numbers preserve FIFO among equal timestamps even with
// interleaved cancellations.
func TestPropertyStableOrder(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		var q Queue
		type tagged struct {
			e   *Event
			tag int
		}
		var items []tagged
		for i := 0; i < 100; i++ {
			at := time.Duration(r.Intn(5)) * time.Second
			items = append(items, tagged{q.Push(at, nil), i})
		}
		byEvent := map[*Event]int{}
		for _, it := range items {
			byEvent[it.e] = it.tag
		}
		lastTagAtTime := map[time.Duration]int{}
		for q.Len() > 0 {
			e := q.Pop()
			if prev, ok := lastTagAtTime[e.At]; ok && byEvent[e] < prev {
				return false
			}
			lastTagAtTime[e.At] = byEvent[e]
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := rng.New(1)
	var q Queue
	for i := 0; i < b.N; i++ {
		q.Push(time.Duration(r.Intn(1000))*time.Millisecond, nil)
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}
