package eventq

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"pbbf/internal/rng"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatal("empty queue has nonzero length")
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned event")
	}
	if _, ok := q.PeekAt(); ok {
		t.Fatal("PeekAt on empty queue returned event")
	}
}

func TestOrderedPop(t *testing.T) {
	var q Queue
	times := []time.Duration{5, 1, 3, 2, 4}
	for _, d := range times {
		q.Push(d*time.Second, nil)
	}
	var got []time.Duration
	for q.Len() > 0 {
		at, _, ok := q.Pop()
		if !ok {
			t.Fatal("Pop failed with events pending")
		}
		got = append(got, at)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order: %v", got)
		}
	}
	if len(got) != len(times) {
		t.Fatalf("popped %d events, pushed %d", len(got), len(times))
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	var q Queue
	const n = 50
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		i := i
		q.Push(time.Second, func() { order = append(order, i) })
	}
	for q.Len() > 0 {
		_, fn, _ := q.Pop()
		fn()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of insertion order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	q.Push(1*time.Second, nil)
	e2 := q.Push(2*time.Second, nil)
	q.Push(3*time.Second, nil)
	if !q.Cancel(e2) {
		t.Fatal("Cancel returned false for pending event")
	}
	if q.Cancel(e2) {
		t.Fatal("double Cancel returned true")
	}
	if q.Pending(e2) {
		t.Fatal("cancelled event still pending")
	}
	if at, _, _ := q.Pop(); at != 1*time.Second {
		t.Fatalf("first pop = %v, want 1s", at)
	}
	if at, _, _ := q.Pop(); at != 3*time.Second {
		t.Fatalf("second pop = %v, want 3s", at)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty: %d", q.Len())
	}
}

func TestCancelHead(t *testing.T) {
	var q Queue
	e1 := q.Push(1*time.Second, nil)
	q.Push(2*time.Second, nil)
	q.Cancel(e1)
	if at, ok := q.PeekAt(); !ok || at != 2*time.Second {
		t.Fatal("head cancel did not promote next event")
	}
}

func TestCancelZeroHandle(t *testing.T) {
	var q Queue
	if q.Cancel(Handle{}) {
		t.Fatal("Cancel of zero Handle returned true")
	}
	if (Handle{}).Valid() {
		t.Fatal("zero Handle claims validity")
	}
}

func TestPoppedEventNotPending(t *testing.T) {
	var q Queue
	e := q.Push(time.Second, nil)
	q.Pop()
	if q.Pending(e) {
		t.Fatal("popped event still claims to be pending")
	}
	if q.Cancel(e) {
		t.Fatal("Cancel after Pop returned true")
	}
}

func TestAt(t *testing.T) {
	var q Queue
	e := q.Push(7*time.Second, nil)
	if at, ok := q.At(e); !ok || at != 7*time.Second {
		t.Fatalf("At = %v, %v", at, ok)
	}
	q.Pop()
	if _, ok := q.At(e); ok {
		t.Fatal("At succeeded on fired event")
	}
}

// TestSlotReuseAfterPop is the pool-behaviour contract: a fire/schedule
// steady state must recycle slots instead of growing the slab.
func TestSlotReuseAfterPop(t *testing.T) {
	var q Queue
	for i := 0; i < 8; i++ {
		q.Push(time.Duration(i)*time.Second, nil)
	}
	grown := q.Cap()
	for cycle := 0; cycle < 1000; cycle++ {
		at, _, ok := q.Pop()
		if !ok {
			t.Fatal("pool drained unexpectedly")
		}
		q.Push(at+8*time.Second, nil)
	}
	if q.Cap() != grown {
		t.Fatalf("slab grew from %d to %d slots during steady-state churn", grown, q.Cap())
	}
}

// TestSlotReuseAfterCancel checks that cancellation also returns slots to
// the pool and that a handle whose slot was reused is recognised as stale.
func TestSlotReuseAfterCancel(t *testing.T) {
	var q Queue
	stale := q.Push(time.Second, nil)
	if !q.Cancel(stale) {
		t.Fatal("Cancel failed")
	}
	grown := q.Cap()
	fresh := q.Push(2*time.Second, nil)
	if q.Cap() != grown {
		t.Fatalf("cancelled slot not reused: cap %d -> %d", grown, q.Cap())
	}
	if q.Pending(stale) {
		t.Fatal("stale handle reports pending after its slot was reused")
	}
	if q.Cancel(stale) {
		t.Fatal("stale handle cancelled the reused slot's event")
	}
	if !q.Pending(fresh) {
		t.Fatal("fresh event lost")
	}
}

// TestSteadyStateAllocFree verifies the headline property: scheduling into
// recycled slots does not allocate.
func TestSteadyStateAllocFree(t *testing.T) {
	var q Queue
	fn := func() {}
	for i := 0; i < 64; i++ {
		q.Push(time.Duration(i)*time.Millisecond, fn)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		at, _, _ := q.Pop()
		q.Push(at+64*time.Millisecond, fn)
	})
	if allocs != 0 {
		t.Fatalf("steady-state pop/push allocates %.1f times per cycle", allocs)
	}
}

// Property: interleaved pushes and cancels always drain in sorted order and
// cancelled events never appear.
func TestPropertyHeapOrder(t *testing.T) {
	check := func(seed uint64, rawN uint8) bool {
		r := rng.New(seed)
		n := int(rawN)%200 + 1
		var q Queue
		handles := make([]Handle, 0, n)
		ats := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			at := time.Duration(r.Intn(50)) * time.Millisecond
			handles = append(handles, q.Push(at, nil))
			ats = append(ats, at)
		}
		var want []time.Duration
		for i, h := range handles {
			if r.Bool(0.3) {
				q.Cancel(h)
			} else {
				want = append(want, ats[i])
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := 0; q.Len() > 0; i++ {
			at, _, ok := q.Pop()
			if !ok || i >= len(want) || at != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sequence numbers preserve FIFO among equal timestamps even with
// slot reuse in between.
func TestPropertyStableOrder(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		var q Queue
		// Churn the pool first so pushes land in recycled slots.
		for i := 0; i < 20; i++ {
			q.Cancel(q.Push(time.Second, nil))
		}
		tags := make([]int, 0, 100)
		for i := 0; i < 100; i++ {
			i := i
			at := time.Duration(r.Intn(5)) * time.Second
			q.Push(at, func() { tags = append(tags, i) })
		}
		lastTagAtTime := map[time.Duration]int{}
		for q.Len() > 0 {
			at, fn, _ := q.Pop()
			fn()
			tag := tags[len(tags)-1]
			if prev, ok := lastTagAtTime[at]; ok && tag < prev {
				return false
			}
			lastTagAtTime[at] = tag
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := rng.New(1)
	var q Queue
	for i := 0; i < b.N; i++ {
		q.Push(time.Duration(r.Intn(1000))*time.Millisecond, nil)
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}
