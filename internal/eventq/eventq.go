// Package eventq implements the pending-event set of a discrete-event
// simulator: an indexed binary min-heap of timed events supporting O(log n)
// push, pop, and cancellation.
//
// Two events with equal timestamps are ordered by insertion sequence, which
// makes simulation runs fully deterministic: the same schedule of calls
// always dequeues in the same order regardless of heap internals.
package eventq

import "time"

// Event is a scheduled callback. The queue owns the heap bookkeeping fields;
// callers treat an *Event as an opaque cancellation handle.
type Event struct {
	// At is the simulation time at which the event fires.
	At time.Duration
	// Fn is invoked when the event is dequeued by the simulation loop.
	Fn func()

	seq   uint64
	index int // position in the heap, -1 once removed
}

// Cancelled reports whether the event has been removed from its queue
// (either fired or explicitly cancelled).
func (e *Event) Cancelled() bool { return e.index < 0 }

// Queue is a min-heap of events ordered by (At, insertion sequence).
// The zero value is ready to use. Queue is not safe for concurrent use;
// the simulation kernel is single-threaded by design.
type Queue struct {
	events  []*Event
	nextSeq uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.events) }

// Push schedules fn at time at and returns a handle usable with Cancel.
func (q *Queue) Push(at time.Duration, fn func()) *Event {
	e := &Event{At: at, Fn: fn, seq: q.nextSeq, index: len(q.events)}
	q.nextSeq++
	q.events = append(q.events, e)
	q.up(e.index)
	return e
}

// Pop removes and returns the earliest event, or nil if the queue is empty.
func (q *Queue) Pop() *Event {
	if len(q.events) == 0 {
		return nil
	}
	top := q.events[0]
	q.remove(0)
	return top
}

// Peek returns the earliest event without removing it, or nil if empty.
func (q *Queue) Peek() *Event {
	if len(q.events) == 0 {
		return nil
	}
	return q.events[0]
}

// Cancel removes e from the queue. It is a no-op if e already fired or was
// cancelled, so callers may cancel unconditionally. Returns whether the
// event was actually removed.
func (q *Queue) Cancel(e *Event) bool {
	if e == nil || e.index < 0 || e.index >= len(q.events) || q.events[e.index] != e {
		return false
	}
	q.remove(e.index)
	return true
}

func (q *Queue) less(i, j int) bool {
	a, b := q.events[i], q.events[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.events[i], q.events[j] = q.events[j], q.events[i]
	q.events[i].index = i
	q.events[j].index = j
}

func (q *Queue) remove(i int) {
	last := len(q.events) - 1
	removed := q.events[i]
	if i != last {
		q.swap(i, last)
	}
	q.events[last] = nil
	q.events = q.events[:last]
	removed.index = -1
	if i < last {
		q.down(i)
		q.up(i)
	}
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.events)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
