// Package eventq implements the pending-event set of a discrete-event
// simulator: an indexed binary min-heap of timed events supporting O(log n)
// push, pop, and cancellation.
//
// Events live in a pooled slab indexed by small integers; firing or
// cancelling an event returns its slot to a free list, so steady-state
// simulation (including recurring timers that fire and reschedule forever)
// performs no per-event heap allocation. Callers hold Handle values —
// generation-stamped indices — instead of pointers, which makes stale
// handles (an event that already fired, or whose slot was reused) cheap and
// safe to detect. The ordering keys (time, sequence) are stored inline in
// the heap entries, so sift comparisons stay within one cache-friendly
// array instead of chasing per-event pointers.
//
// Two events with equal timestamps are ordered by insertion sequence, which
// makes simulation runs fully deterministic: the same schedule of calls
// always dequeues in the same order regardless of heap internals.
package eventq

import "time"

// Handle identifies one scheduled event. The zero Handle is invalid (never
// pending). Handles are values: they can be copied, compared, and retained
// after the event fires without keeping any memory alive.
type Handle struct {
	idx int32  // slot index + 1, so the zero Handle is invalid
	gen uint32 // slot generation at scheduling time
}

// Valid reports whether h was ever issued by a Push (the zero Handle is
// not). A valid handle may still be stale; use Queue.Pending.
func (h Handle) Valid() bool { return h.idx != 0 }

// slot is one pooled event record. Free slots are chained through the
// queue's free list; live slots record their heap position.
type slot struct {
	fn   func()
	gen  uint32
	heap int32 // position in q.heap, -1 while free
}

// entry is one heap element: the ordering keys plus the owning slot.
type entry struct {
	at  time.Duration
	seq uint64
	idx int32
}

// Queue is a min-heap of events ordered by (At, insertion sequence).
// The zero value is ready to use. Queue is not safe for concurrent use;
// the simulation kernel is single-threaded by design.
type Queue struct {
	slots   []slot
	heap    []entry
	free    []int32 // recycled slot indices (LIFO)
	nextSeq uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Cap returns the number of event slots currently allocated (pooled +
// pending); diagnostics for pool-reuse tests.
func (q *Queue) Cap() int { return len(q.slots) }

// Reset discards every pending event and restores the queue to its initial
// state while keeping the slot slab, heap array, and free list capacity for
// reuse. The insertion sequence restarts at zero, so a reused queue orders
// equal-timestamp events exactly like a fresh one — the property the
// simulation pools rely on for byte-identical reruns.
func (q *Queue) Reset() {
	for i := range q.heap {
		q.release(q.heap[i].idx)
	}
	q.heap = q.heap[:0]
	q.nextSeq = 0
}

// Push schedules fn at time at and returns a handle usable with Cancel.
func (q *Queue) Push(at time.Duration, fn func()) Handle {
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		q.slots = append(q.slots, slot{})
		idx = int32(len(q.slots) - 1)
	}
	s := &q.slots[idx]
	s.fn = fn
	s.heap = int32(len(q.heap))
	q.heap = append(q.heap, entry{at: at, seq: q.nextSeq, idx: idx})
	q.nextSeq++
	q.up(int(s.heap))
	return Handle{idx: idx + 1, gen: s.gen}
}

// Pop removes the earliest event and returns its time and callback;
// ok is false if the queue is empty. The event's slot is recycled before
// returning, so the callback must not assume its handle is still pending.
func (q *Queue) Pop() (at time.Duration, fn func(), ok bool) {
	if len(q.heap) == 0 {
		return 0, nil, false
	}
	head := q.heap[0]
	fn = q.slots[head.idx].fn
	q.removeHeap(0)
	q.release(head.idx)
	return head.at, fn, true
}

// PeekAt returns the earliest pending event time; ok is false if empty.
func (q *Queue) PeekAt() (at time.Duration, ok bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].at, true
}

// Pending reports whether the event identified by h is still scheduled.
// Stale handles (fired, cancelled, or slot since reused) report false.
func (q *Queue) Pending(h Handle) bool {
	if h.idx <= 0 || int(h.idx) > len(q.slots) {
		return false
	}
	s := &q.slots[h.idx-1]
	return s.gen == h.gen && s.heap >= 0
}

// At returns the scheduled firing time of a pending event; ok is false for
// stale handles.
func (q *Queue) At(h Handle) (at time.Duration, ok bool) {
	if !q.Pending(h) {
		return 0, false
	}
	return q.heap[q.slots[h.idx-1].heap].at, true
}

// Cancel removes the event identified by h from the queue. It is a no-op
// for stale handles, so callers may cancel unconditionally. Returns whether
// a pending event was actually removed.
func (q *Queue) Cancel(h Handle) bool {
	if !q.Pending(h) {
		return false
	}
	idx := h.idx - 1
	q.removeHeap(int(q.slots[idx].heap))
	q.release(idx)
	return true
}

// release invalidates outstanding handles for the slot, drops the callback
// reference, and returns the slot to the free list.
func (q *Queue) release(idx int32) {
	s := &q.slots[idx]
	s.gen++
	s.fn = nil
	s.heap = -1
	q.free = append(q.free, idx)
}

func (q *Queue) less(a, b *entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.slots[q.heap[i].idx].heap = int32(i)
	q.slots[q.heap[j].idx].heap = int32(j)
}

// removeHeap detaches heap position i, restoring the heap invariant.
func (q *Queue) removeHeap(i int) {
	last := len(q.heap) - 1
	if i != last {
		q.swap(i, last)
	}
	q.heap = q.heap[:last]
	if i < last {
		q.down(i)
		q.up(i)
	}
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(&q.heap[i], &q.heap[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(&q.heap[right], &q.heap[left]) {
			smallest = right
		}
		if !q.less(&q.heap[smallest], &q.heap[i]) {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
