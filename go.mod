module pbbf

go 1.24
