package pbbf

// Cross-engine integration tests: the analysis (internal/core), the
// percolation engine, the ideal simulator, and the fine-grained network
// simulator must agree with each other where their domains overlap. These
// are the consistency checks that give confidence the reproduced figures
// mean what the paper's figures mean.

import (
	"math"
	"testing"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/idealsim"
	"pbbf/internal/mac"
	"pbbf/internal/netsim"
	"pbbf/internal/percolation"
	"pbbf/internal/rng"
	"pbbf/internal/topo"
)

// TestThresholdMatchesPercolation verifies Remark 1 end to end: the q at
// which the ideal simulator's coverage crosses 50% must bracket the q
// predicted by inverting pedge = 1 − p(1−q) at the measured critical bond
// ratio.
func TestThresholdMatchesPercolation(t *testing.T) {
	g := topo.MustGrid(25, 25)
	r := rng.New(3)
	const p = 0.5
	pc, err := percolation.CriticalBondRatio(g, g.Center(), 0.9, 60, r)
	if err != nil {
		t.Fatal(err)
	}
	predicted := core.MinQForEdgeProbability(p, pc.Mean)

	coverageAt := func(q float64) float64 {
		cfg := idealsim.Defaults(g, g.Center())
		cfg.Params = core.Params{P: p, Q: q}
		cfg.Updates = 10
		cfg.Seed = 11
		res, err := idealsim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanCoverage()
	}
	below := coverageAt(clamp(predicted-0.25, 0, 1))
	above := coverageAt(clamp(predicted+0.25, 0, 1))
	if below >= 0.9 {
		t.Fatalf("coverage %.2f well below predicted threshold q=%.2f already supercritical", below, predicted)
	}
	if above < 0.9 {
		t.Fatalf("coverage %.2f above predicted threshold q=%.2f still subcritical", above, predicted)
	}
}

// TestEquation8AcrossEngines verifies the energy analysis against both
// simulators at the PSM and always-on endpoints, where no stochastic
// margin is needed.
func TestEquation8AcrossEngines(t *testing.T) {
	timing := core.Timing{Active: time.Second, Frame: 10 * time.Second}
	period := 100.0 // seconds per update at λ=0.01

	// Ideal simulator endpoints.
	g := topo.MustGrid(15, 15)
	for _, tc := range []struct {
		params core.Params
		wantW  float64
	}{
		{core.PSM(), 0.030 * core.EnergyPBBF(timing, 0)},
		{core.AlwaysOn(), 0.030 * core.EnergyPBBF(timing, 1)},
	} {
		cfg := idealsim.Defaults(g, g.Center())
		cfg.Params = tc.params
		cfg.Seed = 5
		res, err := idealsim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := tc.wantW * period
		if math.Abs(res.EnergyPerUpdateJ-want) > want*0.05+0.02 {
			t.Fatalf("%s ideal energy %v J, analysis %v J", tc.params.Label(), res.EnergyPerUpdateJ, want)
		}
	}

	// Fine-grained simulator: NO PSM matches the always-on analysis (the
	// radio idles at PI all the time; TX surcharge is tiny). PSM sits above
	// the zero-traffic analysis because ATIM receivers stay awake, but
	// must stay well below half of always-on.
	field, err := topo.NewConnectedRandomDisk(
		topo.DiskConfig{N: 25, Range: 30, Area: topo.AreaForDensity(25, 30, 10)},
		rng.New(9), 200)
	if err != nil {
		t.Fatal(err)
	}
	run := func(params core.Params) float64 {
		res, err := netsim.Run(netsim.Config{
			Topo:     field,
			Source:   0,
			MAC:      mac.DefaultConfig(params),
			Lambda:   0.01,
			Duration: 300 * time.Second,
			K:        1,
			Seed:     9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.EnergyPerUpdateJ
	}
	on := run(core.AlwaysOn())
	wantOn := 0.030 * period
	if math.Abs(on-wantOn) > wantOn*0.05 {
		t.Fatalf("NO PSM netsim energy %v J, analysis %v J", on, wantOn)
	}
	if psm := run(core.PSM()); psm > on/2 {
		t.Fatalf("PSM netsim energy %v J not well below always-on %v J", psm, on)
	}
}

// TestEquation9MatchesIdealSim verifies the per-hop latency analysis
// against the ideal simulator at the deterministic endpoints.
func TestEquation9MatchesIdealSim(t *testing.T) {
	g := topo.MustGrid(21, 1) // a line: per-hop latency is unambiguous
	cfg := idealsim.Defaults(g, 0)
	cfg.Params = core.PSM()
	cfg.Seed = 13
	res, err := idealsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// PSM per-hop latency converges to Tframe for long paths; the line's
	// average over 20 hops sits between L1+Tactive and Tframe+L1.
	got := res.PerHopLatency.Mean()
	if got < 2.5 || got > 11.5 {
		t.Fatalf("PSM line per-hop latency %v s", got)
	}

	cfg2 := idealsim.Defaults(g, 0)
	cfg2.Params = core.AlwaysOn()
	cfg2.Seed = 13
	res2, err := idealsim.Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// Always-on: every hop costs exactly L1 after the first; Equation 9
	// gives L = L1 = 1.5 s.
	if got := res2.PerHopLatency.Mean(); math.Abs(got-1.5) > 0.6 {
		t.Fatalf("always-on per-hop latency %v s, Eq. 9 gives 1.5", got)
	}
}

// TestMACLatencyConsistentWithIdealSim cross-validates the two engines:
// at matching settings, PSM 2-hop latency in the fine-grained simulator
// must land within the ideal simulator's AW..AW+2·BI window.
func TestMACLatencyConsistentWithIdealSim(t *testing.T) {
	field, err := topo.NewConnectedRandomDisk(
		topo.DiskConfig{N: 30, Range: 30, Area: topo.AreaForDensity(30, 30, 10)},
		rng.New(17), 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := netsim.Run(netsim.Config{
		Topo:      field,
		Source:    0,
		MAC:       mac.DefaultConfig(core.PSM()),
		Lambda:    0.01,
		Duration:  400 * time.Second,
		K:         1,
		TrackHops: []int{2},
		Seed:      17,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := res.LatencyAtHop[2]
	if acc == nil || acc.N() == 0 {
		t.Skip("no 2-hop nodes in this scenario")
	}
	got := acc.Mean()
	// Expectation ≈ AW + BI = 11 s with spreading variance either side.
	if got < 6 || got > 21 {
		t.Fatalf("netsim 2-hop PSM latency %v s, expected ≈11", got)
	}
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}
