package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"pbbf/internal/loadtest"
)

// runLoadtest implements the loadtest subcommand: drive a running pbbf
// server with a mixed hit/miss /v1/run workload, write the latency report
// (LOADTEST.json), and — when -baseline is given — gate the tail
// percentiles against it the way `pbbf bench` gates ns/point. The
// error-rate ceiling needs no baseline and always applies.
func runLoadtest(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pbbf loadtest", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		target      = fs.String("target", "http://127.0.0.1:8080", "base URL of the running pbbf serve instance")
		experiment  = fs.String("experiment", "fig6", "scenario id to request")
		scaleName   = fs.String("scale", "quick", "scenario scale to request")
		requests    = fs.Int("requests", 2000, "measured request count")
		concurrency = fs.Int("concurrency", 64, "concurrent client workers")
		hitFraction = fs.Float64("hit-fraction", 0.8, "fraction of requests reusing warm seeds (store hits)")
		warmSeeds   = fs.Int("warm-seeds", 8, "distinct seeds warmed before measuring")
		timeout     = fs.Duration("timeout", 120*time.Second, "per-request timeout")
		wait        = fs.Duration("wait", 30*time.Second, "how long to wait for the target's /healthz before starting")
		outPath     = fs.String("out", "LOADTEST.json", "path to write the load-test report")
		baseline    = fs.String("baseline", "", "baseline report to compare against (empty = no latency gate)")
		threshold   = fs.Float64("threshold", 0.30, "p50/p99 latency regression tolerance vs the baseline")
		maxErrRate  = fs.Float64("max-error-rate", 0, "error-rate ceiling over measured requests (0 = none allowed)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("loadtest: unexpected arguments %v", fs.Args())
	}
	if *outPath == "" {
		return fmt.Errorf("missing -out path")
	}
	// Validate the workload flags before waiting on the target, so a bad
	// value fails immediately instead of after the readiness timeout.
	if *requests <= 0 {
		return fmt.Errorf("requests must be positive, got %d", *requests)
	}
	if *concurrency <= 0 {
		return fmt.Errorf("concurrency must be positive, got %d", *concurrency)
	}
	if *hitFraction < 0 || *hitFraction > 1 {
		return fmt.Errorf("hit-fraction must be in [0,1], got %v", *hitFraction)
	}
	// Load the baseline before spending load-test time, so a bad path
	// fails fast and never leaves a half-recorded report behind.
	var base *loadtest.Report
	if *baseline != "" {
		var err error
		if base, err = loadtest.ReadFile(*baseline); err != nil {
			return err
		}
	}

	waitCtx, cancel := context.WithTimeout(ctx, *wait)
	defer cancel()
	if err := loadtest.WaitReady(waitCtx, *target); err != nil {
		return err
	}
	rep, err := loadtest.Run(loadtest.Config{
		Target:      *target,
		Experiment:  *experiment,
		Scale:       *scaleName,
		Requests:    *requests,
		Concurrency: *concurrency,
		HitFraction: *hitFraction,
		WarmSeeds:   *warmSeeds,
		Timeout:     *timeout,
		Progress:    errOut,
	})
	if err != nil {
		return err
	}
	if err := rep.WriteFile(*outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d requests (%d completed, %d throttled, %d errors) in %.2fs\n",
		*outPath, rep.Requests, rep.Completed, rep.Throttled, rep.Errors, float64(rep.WallNS)/1e9)
	fmt.Fprintf(out, "latency p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms  (%.0f req/s)\n",
		float64(rep.P50NS)/1e6, float64(rep.P95NS)/1e6, float64(rep.P99NS)/1e6,
		float64(rep.MaxNS)/1e6, rep.RPS)

	if err := loadtest.CheckErrorRate(rep, *maxErrRate); err != nil {
		return err
	}
	if base == nil {
		return nil
	}
	if base.CPU != rep.CPU || base.NumCPU != rep.NumCPU {
		fmt.Fprintf(out, "WARNING: hardware mismatch vs baseline (%q/%d cores vs %q/%d cores): "+
			"absolute latencies are not comparable; see docs/SERVING.md for the refresh procedure\n",
			base.CPU, base.NumCPU, rep.CPU, rep.NumCPU)
	}
	regs, err := loadtest.Compare(base, rep, *threshold)
	if err != nil {
		return err
	}
	if len(regs) == 0 {
		fmt.Fprintf(out, "no latency regressions beyond %.0f%% vs %s\n", *threshold*100, *baseline)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintf(out, "REGRESSION %-4s %.2fms -> %.2fms (%.2fx)\n",
			r.Metric, float64(r.BaseNS)/1e6, float64(r.CurNS)/1e6, r.Ratio)
	}
	return fmt.Errorf("%d latency percentile(s) regressed more than %.0f%% vs %s",
		len(regs), *threshold*100, *baseline)
}
