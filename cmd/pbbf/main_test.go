package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"pbbf/internal/bench"
	"pbbf/internal/scenario"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"fig4", "fig12", "fig18", "table1", "table2", "extwakeup"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
	// Metadata must be visible: the paper-artifact column and parameter docs.
	for _, meta := range []string{"Figure 8", "Table 2", "stay-awake probability"} {
		if !strings.Contains(out, meta) {
			t.Fatalf("list missing metadata %q:\n%s", meta, out)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig6", "-format", "json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var outputs []scenario.Output
	if err := json.Unmarshal([]byte(sb.String()), &outputs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(outputs) != 1 || outputs[0].Scenario.ID != "fig6" {
		t.Fatalf("outputs: %+v", outputs)
	}
	o := outputs[0]
	if o.Table == nil || len(o.Table.Series) == 0 {
		t.Fatalf("JSON output lost the table: %+v", o)
	}
	if len(o.Points) == 0 || o.Points[0].Params["side"] == 0 {
		t.Fatalf("JSON output lost the per-point results: %+v", o.Points)
	}
}

func TestWorkersFlagDeterministic(t *testing.T) {
	outFor := func(workers string) string {
		var sb strings.Builder
		args := []string{"-experiment", "fig6", "-workers", workers}
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if outFor("1") != outFor("4") {
		t.Fatal("worker count changed experiment output")
	}
}

func TestRunSingleExperimentTable(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "table1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunFigureCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig7", "-format", "csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "p,") || !strings.Contains(out, "99% Reliability") {
		t.Fatalf("csv output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                      // missing -experiment
		{"-experiment", "nope"}, // unknown experiment
		{"-experiment", "fig4", "-scale", "huge"},   // unknown scale
		{"-experiment", "fig4", "-format", "xml"},   // unknown format
		{"-experiment", "fig4", "-workers", "0"},    // zero workers
		{"-experiment", "fig4", "-workers", "-3"},   // negative workers
		{"-scale", "huge", "-experiment", "fig4"},   // order must not matter
		{"bench", "-workers", "0"},                  // bench: zero workers
		{"bench", "-scale", "huge"},                 // bench: unknown scale
		{"bench", "-threshold", "0"},                // bench: bad threshold
		{"bench", "-repeats", "0"},                  // bench: bad repeats
		{"bench", "-out", ""},                       // bench: empty output path
		{"bench", "stray"},                          // bench: positional junk
		{"bench", "-baseline", "/nonexistent.json"}, // bench: missing baseline
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// benchArgs runs the bench subcommand at quick scale (the frozen bench
// scale is too slow for unit tests) and returns the report path.
func benchArgs(t *testing.T, dir string, extra ...string) (string, error) {
	t.Helper()
	path := filepath.Join(dir, "BENCH.json")
	args := append([]string{"bench", "-out", path, "-scale", "quick", "-repeats", "1"}, extra...)
	var sb strings.Builder
	err := run(args, &sb)
	return path, err
}

func TestBenchWritesValidReport(t *testing.T) {
	path, err := benchArgs(t, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bench.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scale != "quick" || rep.Workers != 1 {
		t.Fatalf("report header: %+v", rep)
	}
	ids := make(map[string]bool)
	var sawEvents bool
	for _, s := range rep.Scenarios {
		ids[s.ID] = true
		if s.WallNS <= 0 || s.Points <= 0 {
			t.Fatalf("unmeasured scenario: %+v", s)
		}
		if s.EventsFired > 0 {
			sawEvents = true
		}
	}
	for _, id := range []string{"fig4", "fig13", "table1", "extwakeup"} {
		if !ids[id] {
			t.Fatalf("report missing %s (got %v)", id, ids)
		}
	}
	if !sawEvents {
		t.Fatal("no scenario recorded kernel events")
	}
}

func TestBenchGatesOnBaseline(t *testing.T) {
	dir := t.TempDir()
	path, err := benchArgs(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Against its own report nothing regresses by construction (identical
	// seeds, same machine, moments apart) at a generous threshold.
	if _, err := benchArgs(t, dir, "-baseline", path, "-threshold", "3.0"); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
	// Inflate the current run's cost bound: a baseline claiming everything
	// used to be instant must trip the gate.
	base, err := bench.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Scenarios {
		base.Scenarios[i].NSPerPoint = 1
	}
	fast := filepath.Join(dir, "fast.json")
	if err := base.WriteFile(fast); err != nil {
		t.Fatal(err)
	}
	if _, err := benchArgs(t, dir, "-baseline", fast); err == nil {
		t.Fatal("regression vs instant baseline not detected")
	}
}

func TestSeedFlagChangesOutput(t *testing.T) {
	outFor := func(seed string) string {
		var sb strings.Builder
		if err := run([]string{"-experiment", "fig6", "-seed", seed}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if outFor("1") == outFor("2") {
		t.Fatal("different seeds produced identical Monte Carlo output")
	}
	if outFor("1") != outFor("1") {
		t.Fatal("same seed produced different output")
	}
}
