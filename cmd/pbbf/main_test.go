package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"fig4", "fig12", "fig18", "table1", "table2"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperimentTable(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "table1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunFigureCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig7", "-format", "csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "p,") || !strings.Contains(out, "99% Reliability") {
		t.Fatalf("csv output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                      // missing -experiment
		{"-experiment", "nope"}, // unknown experiment
		{"-experiment", "fig4", "-scale", "huge"}, // unknown scale
		{"-experiment", "fig4", "-format", "xml"}, // unknown format
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestSeedFlagChangesOutput(t *testing.T) {
	outFor := func(seed string) string {
		var sb strings.Builder
		if err := run([]string{"-experiment", "fig6", "-seed", seed}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if outFor("1") == outFor("2") {
		t.Fatal("different seeds produced identical Monte Carlo output")
	}
	if outFor("1") != outFor("1") {
		t.Fatal("same seed produced different output")
	}
}
