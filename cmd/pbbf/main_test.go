package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pbbf/internal/bench"
	"pbbf/internal/scenario"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"fig4", "fig12", "fig18", "table1", "table2", "extwakeup"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
	// Metadata must be visible: the paper-artifact column and parameter docs.
	for _, meta := range []string{"Figure 8", "Table 2", "stay-awake probability"} {
		if !strings.Contains(out, meta) {
			t.Fatalf("list missing metadata %q:\n%s", meta, out)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig6", "-format", "json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var outputs []scenario.Output
	if err := json.Unmarshal([]byte(sb.String()), &outputs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(outputs) != 1 || outputs[0].Scenario.ID != "fig6" {
		t.Fatalf("outputs: %+v", outputs)
	}
	o := outputs[0]
	if o.Table == nil || len(o.Table.Series) == 0 {
		t.Fatalf("JSON output lost the table: %+v", o)
	}
	if len(o.Points) == 0 || o.Points[0].Params["side"] == 0 {
		t.Fatalf("JSON output lost the per-point results: %+v", o.Points)
	}
}

func TestWorkersFlagDeterministic(t *testing.T) {
	outFor := func(workers string) string {
		var sb strings.Builder
		args := []string{"-experiment", "fig6", "-workers", workers}
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if outFor("1") != outFor("4") {
		t.Fatal("worker count changed experiment output")
	}
}

func TestRunSingleExperimentTable(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "table1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunFigureCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig7", "-format", "csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "p,") || !strings.Contains(out, "99% Reliability") {
		t.Fatalf("csv output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                      // missing -experiment
		{"-experiment", "nope"}, // unknown experiment
		{"-experiment", "fig4", "-scale", "huge"},   // unknown scale
		{"-experiment", "fig4", "-format", "xml"},   // unknown format
		{"-experiment", "fig4", "-workers", "0"},    // zero workers
		{"-experiment", "fig4", "-workers", "-3"},   // negative workers
		{"-scale", "huge", "-experiment", "fig4"},   // order must not matter
		{"bench", "-workers", "0"},                  // bench: zero workers
		{"bench", "-scale", "huge"},                 // bench: unknown scale
		{"bench", "-threshold", "0"},                // bench: bad threshold
		{"bench", "-repeats", "0"},                  // bench: bad repeats
		{"bench", "-out", ""},                       // bench: empty output path
		{"bench", "stray"},                          // bench: positional junk
		{"bench", "-baseline", "/nonexistent.json"}, // bench: missing baseline
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestUnknownExperimentSuggests pins the did-you-mean behaviour: a typo'd
// scenario ID must fail (non-zero exit through main) with the closest
// registered IDs in the message, in every mode that takes -experiment.
func TestUnknownExperimentSuggests(t *testing.T) {
	for _, args := range [][]string{
		{"-experiment", "figg8"},
		{"sweep", "-experiment", "figg8", "-progress=false"},
	} {
		var sb strings.Builder
		err := runCtx(context.Background(), args, &sb, io.Discard)
		if err == nil {
			t.Fatalf("args %v accepted", args)
		}
		if !strings.Contains(err.Error(), "did you mean") || !strings.Contains(err.Error(), "fig8") {
			t.Fatalf("args %v: error lacks a fig8 suggestion: %v", args, err)
		}
	}
	// Nothing close: fall back to the full known-ID list.
	var sb strings.Builder
	err := run([]string{"-experiment", "zzzzzz"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "known:") {
		t.Fatalf("no-suggestion error should list known IDs: %v", err)
	}
}

// TestRunNDJSON checks the ndjson format: one parseable JSON object per
// line, per-point lines in enumeration order, and a whole-table line for
// static artifacts.
func TestRunNDJSON(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig6", "-format", "ndjson"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("ndjson produced %d lines", len(lines))
	}
	for _, line := range lines {
		var rec struct {
			Scenario string                `json:"scenario"`
			Point    *scenario.PointOutput `json:"point"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid ndjson line %q: %v", line, err)
		}
		if rec.Scenario != "fig6" || rec.Point == nil {
			t.Fatalf("unexpected ndjson line %q", line)
		}
	}

	sb.Reset()
	if err := run([]string{"-experiment", "table1", "-format", "ndjson"}, &sb); err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Table any `json:"table"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &rec); err != nil || rec.Table == nil {
		t.Fatalf("table scenario ndjson line bad (%v): %s", err, sb.String())
	}

	// Determinism across worker counts — the property the nightly CI
	// byte-diff depends on.
	outFor := func(workers string) string {
		var b strings.Builder
		if err := run([]string{"-experiment", "extlinkloss", "-format", "ndjson", "-workers", workers}, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if outFor("1") != outFor("4") {
		t.Fatal("ndjson output differs across worker counts")
	}
}

// benchArgs runs the bench subcommand at quick scale (the frozen bench
// scale is too slow for unit tests) and returns the report path.
func benchArgs(t *testing.T, dir string, extra ...string) (string, error) {
	t.Helper()
	path := filepath.Join(dir, "BENCH.json")
	args := append([]string{"bench", "-out", path, "-scale", "quick", "-repeats", "1"}, extra...)
	var sb strings.Builder
	err := run(args, &sb)
	return path, err
}

func TestBenchWritesValidReport(t *testing.T) {
	path, err := benchArgs(t, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bench.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scale != "quick" || rep.Workers != 1 {
		t.Fatalf("report header: %+v", rep)
	}
	ids := make(map[string]bool)
	var sawEvents bool
	for _, s := range rep.Scenarios {
		ids[s.ID] = true
		if s.WallNS <= 0 || s.Points <= 0 {
			t.Fatalf("unmeasured scenario: %+v", s)
		}
		if s.EventsFired > 0 {
			sawEvents = true
		}
	}
	for _, id := range []string{"fig4", "fig13", "table1", "extwakeup"} {
		if !ids[id] {
			t.Fatalf("report missing %s (got %v)", id, ids)
		}
	}
	if !sawEvents {
		t.Fatal("no scenario recorded kernel events")
	}
}

func TestBenchGatesOnBaseline(t *testing.T) {
	dir := t.TempDir()
	path, err := benchArgs(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Against its own report nothing regresses by construction (identical
	// seeds, same machine, moments apart) at a generous threshold.
	if _, err := benchArgs(t, dir, "-baseline", path, "-threshold", "3.0"); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
	// Inflate the current run's cost bound: a baseline claiming everything
	// used to be instant must trip the gate.
	base, err := bench.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Scenarios {
		base.Scenarios[i].NSPerPoint = 1
	}
	fast := filepath.Join(dir, "fast.json")
	if err := base.WriteFile(fast); err != nil {
		t.Fatal(err)
	}
	if _, err := benchArgs(t, dir, "-baseline", fast); err == nil {
		t.Fatal("regression vs instant baseline not detected")
	}
}

func TestBenchOverheadGate(t *testing.T) {
	dir := t.TempDir()
	// A gate of 100 (10000%) cannot trip: this exercises the interleaved
	// measurement and the report write, not the bound.
	path, err := benchArgs(t, dir, "-overhead-gate", "100")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.OverheadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scale != "quick" || rep.Workers != 1 || len(rep.Results) == 0 {
		t.Fatalf("overhead report header: %+v", rep)
	}
	for _, r := range rep.Results {
		if r.UntracedNSPerPoint <= 0 || r.TracedNSPerPoint <= 0 || r.Points <= 0 {
			t.Fatalf("unmeasured scenario: %+v", r)
		}
	}

	// The gate measures both arms itself; combining it with the
	// cross-invocation comparison flags is a contradiction, not a noop.
	if _, err := benchArgs(t, dir, "-overhead-gate", "0.15", "-baseline", path); err == nil {
		t.Fatal("-overhead-gate with -baseline accepted")
	}
	if _, err := benchArgs(t, dir, "-overhead-gate", "0.15", "-trace", "discard"); err == nil {
		t.Fatal("-overhead-gate with -trace accepted")
	}
	// A negative gate must be rejected, not silently fall through to a
	// normal (ungated) bench run.
	if _, err := benchArgs(t, dir, "-overhead-gate", "-1"); err == nil {
		t.Fatal("negative -overhead-gate accepted")
	}
}

func TestSweepMatchesRunOutput(t *testing.T) {
	var direct, swept strings.Builder
	if err := run([]string{"-experiment", "fig6", "-format", "json"}, &direct); err != nil {
		t.Fatal(err)
	}
	err := runSweep(context.Background(),
		[]string{"-experiment", "fig6", "-format", "json", "-progress=false"},
		&swept, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if direct.String() != swept.String() {
		t.Fatal("sweep subcommand changed experiment output")
	}
}

// sweepArgs runs the sweep subcommand against a checkpoint file and
// returns (experiment output, progress/summary output).
func sweepArgs(t *testing.T, ckpt string, extra ...string) (string, string) {
	t.Helper()
	var out, errOut strings.Builder
	args := append([]string{"-experiment", "fig6", "-format", "json", "-checkpoint", ckpt}, extra...)
	if err := runSweep(context.Background(), args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	return out.String(), errOut.String()
}

// TestSweepCheckpointResume is the resumability acceptance test: a sweep
// interrupted mid-run (simulated by deleting part of a completed
// checkpoint, exactly the state an atomic per-point flush leaves behind)
// resumes without recomputing the surviving points and reproduces the
// uninterrupted output byte for byte.
func TestSweepCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fig6.ckpt.json")

	first, progress := sweepArgs(t, ckpt)
	if !strings.Contains(progress, "resumed 0 point(s) from checkpoint") {
		t.Fatalf("first run progress: %q", progress)
	}
	cp, err := scenario.LoadCheckpoint(ckpt)
	if err != nil || cp == nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	total := len(cp.Results)
	if total == 0 {
		t.Fatal("checkpoint recorded no points")
	}

	// Simulate a kill partway through: keep only some completed points.
	kept := 0
	for key := range cp.Results {
		if kept >= total/2 {
			delete(cp.Results, key)
			continue
		}
		kept++
	}
	if err := cp.WriteFile(ckpt); err != nil {
		t.Fatal(err)
	}

	second, progress := sweepArgs(t, ckpt)
	if second != first {
		t.Fatal("resumed sweep changed experiment output")
	}
	want := fmt.Sprintf("resumed %d point(s) from checkpoint, computed %d", kept, total-kept)
	if !strings.Contains(progress, want) {
		t.Fatalf("resume summary %q missing %q", progress, want)
	}

	// A third run replays everything from the checkpoint.
	_, progress = sweepArgs(t, ckpt)
	if !strings.Contains(progress, fmt.Sprintf("resumed %d point(s) from checkpoint, computed 0", total)) {
		t.Fatalf("full resume summary: %q", progress)
	}
}

func TestSweepCheckpointRejectsMismatchedRun(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fig6.ckpt.json")
	sweepArgs(t, ckpt)
	err := runSweep(context.Background(),
		[]string{"-experiment", "fig6", "-seed", "2", "-checkpoint", ckpt},
		io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "checkpoint records run") {
		t.Fatalf("mismatched checkpoint accepted: %v", err)
	}
}

func TestSweepProgressSummary(t *testing.T) {
	// The default progress mode is the periodic structured summary: the
	// run always ends with one "done" line carrying position and rate,
	// and never emits the classic per-point lines.
	var out, errOut strings.Builder
	if err := runSweep(context.Background(), []string{"-experiment", "fig6"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	progress := errOut.String()
	if !strings.Contains(progress, `"type":"done"`) || !strings.Contains(progress, `"rate_pps"`) {
		t.Fatalf("no summary progress line:\n%s", progress)
	}
	if strings.Contains(progress, "[1/") {
		t.Fatalf("per-point lines leaked into summary mode:\n%s", progress)
	}
	// Progress must stay off the experiment-output stream.
	if strings.Contains(out.String(), `"type":"done"`) {
		t.Fatal("progress leaked into experiment output")
	}
}

func TestSweepProgressEvery(t *testing.T) {
	// -progress-every N restores the classic per-point lines, thinned to
	// every Nth completion (plus the final one).
	var out, errOut strings.Builder
	if err := runSweep(context.Background(), []string{"-experiment", "fig6", "-progress-every", "1"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	progress := errOut.String()
	if !strings.Contains(progress, "fig6 series") || !strings.Contains(progress, "[1/") {
		t.Fatalf("no per-point progress lines:\n%s", progress)
	}
	if strings.Contains(progress, `"type":"done"`) {
		t.Fatalf("summary line leaked into per-point mode:\n%s", progress)
	}
	if strings.Contains(out.String(), "[1/") {
		t.Fatal("progress leaked into experiment output")
	}

	// Thinned: every 4th of fig6's points plus the final line.
	errOut.Reset()
	if err := runSweep(context.Background(), []string{"-experiment", "fig6", "-progress-every", "4"}, io.Discard, &errOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(errOut.String(), "[")
	if lines == 0 || lines >= strings.Count(progress, "[") {
		t.Fatalf("progress-every 4 emitted %d lines, want fewer than every-1's %d and more than 0",
			lines, strings.Count(progress, "["))
	}

	// A negative thinning interval is rejected.
	if err := runSweep(context.Background(), []string{"-experiment", "fig6", "-progress-every", "-1"}, io.Discard, io.Discard); err == nil {
		t.Fatal("negative -progress-every accepted")
	}
}

func TestSweepPprofRequiresDistribute(t *testing.T) {
	err := runSweep(context.Background(), []string{"-experiment", "fig6", "-pprof"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-pprof requires -distribute") {
		t.Fatalf("err = %v, want -pprof requires -distribute", err)
	}
}

func TestSweepCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := runSweep(ctx, []string{"-experiment", "fig6"}, io.Discard, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestServeListensAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var logs strings.Builder
	w := lockedWriter{mu: &mu, w: &logs}
	served := make(chan error, 1)
	go func() {
		served <- runServe(ctx, []string{"-addr", "127.0.0.1:0"}, io.Discard, w)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		s := logs.String()
		mu.Unlock()
		if strings.Contains(s, "listening on http://") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never reported listening: %q", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down")
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestSubcommandErrors(t *testing.T) {
	cases := [][]string{
		{"sweep", "stray"},                                      // positional junk
		{"sweep", "-experiment", "nope"},                        // unknown experiment
		{"sweep", "-scale", "huge"},                             // unknown scale
		{"sweep", "-format", "xml"},                             // unknown format
		{"sweep", "-workers", "0"},                              // zero workers
		{"sweep", "-outstanding", "0"},                          // zero outstanding leases
		{"sweep", "-lease-ttl", "-3s"},                          // negative lease TTL
		{"sweep", "-distribute", "bad:addr:99"},                 // unbindable coordinator address
		{"serve", "stray"},                                      // positional junk
		{"serve", "-cache-shards", "0"},                         // bad shard count
		{"serve", "-cache-entries", "1"},                        // capacity below shards
		{"serve", "-max-workers", "0"},                          // bad worker cap
		{"serve", "-addr", "not-a-valid:addr"},                  // unbindable address
		{"worker", "stray"},                                     // positional junk
		{"worker"},                                              // missing coordinator URL
		{"worker", "-coordinator", "http://x", "-workers", "0"}, // zero workers
		{"worker", "-coordinator", "http://x", "-batch", "-1"},  // negative batch
		{"serve", "-rate-limit", "-1"},                          // negative rate limit
		{"serve", "-run-queue", "-1"},                           // negative queue depth
		{"loadtest", "stray"},                                   // positional junk
		{"loadtest", "-requests", "0"},                          // zero requests
		{"loadtest", "-hit-fraction", "2"},                      // fraction out of range
		{"loadtest", "-out", ""},                                // missing report path
		{"loadtest", "-baseline", "no-such-file.json"},          // unreadable baseline
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := runCtx(context.Background(), args, &sb, io.Discard); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestSweepDistributedMatchesLocal drives the whole CLI path: a sweep in
// coordinator mode, two worker subcommands attached over real HTTP (one
// cancelled mid-run), and the merged output compared byte-for-byte with a
// plain local sweep.
func TestSweepDistributedMatchesLocal(t *testing.T) {
	var local strings.Builder
	if err := runSweep(context.Background(),
		[]string{"-experiment", "fig6", "-format", "json", "-progress=false"},
		&local, io.Discard); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var out, errOut strings.Builder
	sweepDone := make(chan error, 1)
	go func() {
		sweepDone <- runSweep(context.Background(),
			[]string{"-experiment", "fig6", "-format", "json", "-progress=false",
				"-distribute", "127.0.0.1:0", "-lease-ttl", "500ms"},
			lockedWriter{mu: &mu, w: &out}, lockedWriter{mu: &mu, w: &errOut})
	}()

	// The coordinator announces its bound address on the progress stream.
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never announced its address: %q", errOut.String())
		}
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		if s := errOut.String(); strings.Contains(s, "listening on http://") {
			url = "http://" + strings.TrimSpace(strings.SplitAfter(s, "listening on http://")[1])
		}
		mu.Unlock()
	}

	workerCtx, killWorker := context.WithCancel(context.Background())
	defer killWorker()
	w1 := make(chan error, 1)
	go func() {
		w1 <- runWorker(context.Background(),
			[]string{"-coordinator", url, "-name", "w1", "-workers", "2"},
			io.Discard, io.Discard)
	}()
	go runWorker(workerCtx, // killed mid-run below; exit value irrelevant
		[]string{"-coordinator", url, "-name", "w2", "-workers", "1", "-batch", "2"},
		io.Discard, io.Discard)
	// Let w2 join the sweep, then kill it mid-run; its unreported lease
	// expires and the points are finished by w1.
	time.Sleep(300 * time.Millisecond)
	killWorker()

	select {
	case err := <-sweepDone:
		if err != nil {
			t.Fatalf("distributed sweep: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("distributed sweep never finished")
	}
	select {
	case err := <-w1:
		if err != nil {
			t.Fatalf("worker: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker never exited after sweep completion")
	}

	mu.Lock()
	got := out.String()
	mu.Unlock()
	if got != local.String() {
		t.Fatalf("distributed output differs from local:\nlocal:\n%s\ndistributed:\n%s", local.String(), got)
	}
}

func TestSeedFlagChangesOutput(t *testing.T) {
	outFor := func(seed string) string {
		var sb strings.Builder
		if err := run([]string{"-experiment", "fig6", "-seed", seed}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if outFor("1") == outFor("2") {
		t.Fatal("different seeds produced identical Monte Carlo output")
	}
	if outFor("1") != outFor("1") {
		t.Fatal("same seed produced different output")
	}
}

// TestServeAndLoadtest drives the full production-serving loop through the
// CLI: serve with a persistent store, load-test it, gate a second run
// against the first run's report, then restart the server on the same
// store directory and prove the warmed workload needs no recomputation.
func TestServeAndLoadtest(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "results.store")

	startServe := func() (cancel context.CancelFunc, url string, served chan error) {
		ctx, stop := context.WithCancel(context.Background())
		var mu sync.Mutex
		var logs strings.Builder
		served = make(chan error, 1)
		go func() {
			served <- runServe(ctx, []string{"-addr", "127.0.0.1:0", "-store", storeDir}, io.Discard, lockedWriter{mu: &mu, w: &logs})
		}()
		deadline := time.Now().Add(10 * time.Second)
		for {
			mu.Lock()
			s := logs.String()
			mu.Unlock()
			if i := strings.Index(s, "http://"); i >= 0 {
				url = strings.TrimSpace(strings.SplitN(s[i:], "\n", 2)[0])
				return stop, url, served
			}
			if time.Now().After(deadline) {
				stop()
				t.Fatalf("serve never reported listening: %q", s)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	stop1, url, served1 := startServe()
	reportPath := filepath.Join(dir, "LOADTEST.json")
	args := []string{
		"loadtest", "-target", url, "-experiment", "fig6", "-scale", "quick",
		"-requests", "30", "-concurrency", "4", "-warm-seeds", "2", "-out", reportPath,
	}
	var out strings.Builder
	if err := runCtx(context.Background(), args, &out, io.Discard); err != nil {
		t.Fatalf("loadtest: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "latency p50") {
		t.Fatalf("no latency summary:\n%s", out.String())
	}

	// A second run against its own report must pass the gate.
	out.Reset()
	gated := append(args, "-baseline", reportPath, "-threshold", "10", "-out", filepath.Join(dir, "LOADTEST2.json"))
	if err := runCtx(context.Background(), gated, &out, io.Discard); err != nil {
		t.Fatalf("gated loadtest: %v\n%s", err, out.String())
	}

	stop1()
	if err := <-served1; err != nil {
		t.Fatalf("serve shutdown: %v", err)
	}

	// Restart on the same store: the whole warmed workload is served from
	// disk — the done lines must report every point cached.
	stop2, url2, served2 := startServe()
	defer func() {
		stop2()
		if err := <-served2; err != nil {
			t.Fatalf("restarted serve shutdown: %v", err)
		}
	}()
	resp, err := http.Post(url2+"/v1/run", "application/json",
		strings.NewReader(`{"experiment":"fig6","scale":"quick","seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"cached":false`) {
		t.Fatalf("restarted server recomputed points:\n%s", raw)
	}
	if !strings.Contains(string(raw), `"type":"done"`) {
		t.Fatalf("restarted run did not complete:\n%s", raw)
	}
}
