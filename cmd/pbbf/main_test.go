package main

import (
	"encoding/json"
	"strings"
	"testing"

	"pbbf/internal/scenario"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"fig4", "fig12", "fig18", "table1", "table2", "extwakeup"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
	// Metadata must be visible: the paper-artifact column and parameter docs.
	for _, meta := range []string{"Figure 8", "Table 2", "stay-awake probability"} {
		if !strings.Contains(out, meta) {
			t.Fatalf("list missing metadata %q:\n%s", meta, out)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig6", "-format", "json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var outputs []scenario.Output
	if err := json.Unmarshal([]byte(sb.String()), &outputs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(outputs) != 1 || outputs[0].Scenario.ID != "fig6" {
		t.Fatalf("outputs: %+v", outputs)
	}
	o := outputs[0]
	if o.Table == nil || len(o.Table.Series) == 0 {
		t.Fatalf("JSON output lost the table: %+v", o)
	}
	if len(o.Points) == 0 || o.Points[0].Params["side"] == 0 {
		t.Fatalf("JSON output lost the per-point results: %+v", o.Points)
	}
}

func TestWorkersFlagDeterministic(t *testing.T) {
	outFor := func(workers string) string {
		var sb strings.Builder
		args := []string{"-experiment", "fig6", "-workers", workers}
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if outFor("1") != outFor("4") {
		t.Fatal("worker count changed experiment output")
	}
}

func TestRunSingleExperimentTable(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "table1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunFigureCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig7", "-format", "csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "p,") || !strings.Contains(out, "99% Reliability") {
		t.Fatalf("csv output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                      // missing -experiment
		{"-experiment", "nope"}, // unknown experiment
		{"-experiment", "fig4", "-scale", "huge"}, // unknown scale
		{"-experiment", "fig4", "-format", "xml"}, // unknown format
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestSeedFlagChangesOutput(t *testing.T) {
	outFor := func(seed string) string {
		var sb strings.Builder
		if err := run([]string{"-experiment", "fig6", "-seed", seed}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if outFor("1") == outFor("2") {
		t.Fatal("different seeds produced identical Monte Carlo output")
	}
	if outFor("1") != outFor("1") {
		t.Fatal("same seed produced different output")
	}
}
